// Package astrx is a from-scratch Go reproduction of ASTRX/OBLX
// (Ochotta, Rutenbar, Carley, DAC 1994): equation-free synthesis of
// high-performance analog circuits.
//
// The root package is a thin façade over the full system:
//
//   - internal/netlist — the ASTRX problem-description language
//   - internal/astrx   — the compiler: deck → cost function C(x) with
//     the relaxed-dc formulation
//   - internal/oblx    — the solver: simulated annealing (Lam schedule,
//     Hustin move selection, Newton-Raphson moves)
//   - internal/awe     — Asymptotic Waveform Evaluation
//   - internal/devices — encapsulated device evaluators (MOS L1/L3,
//     BSIM-style, Gummel-Poon)
//   - internal/verify  — reference simulation (Newton bias + AC sweeps)
//   - internal/bench   — the paper's benchmark suite and every table
//     and figure of its evaluation section
//
// Quick start:
//
//	result, err := astrx.Synthesize(deckSource, astrx.SynthConfig{})
//	report, err := astrx.Verify(result)
//
// See README.md, DESIGN.md, and EXPERIMENTS.md.
package astrx
