package astrx

import (
	"context"
	"errors"
	"fmt"

	iastrx "astrx/internal/astrx"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/verify"
)

// SynthConfig tunes a synthesis run through the façade.
type SynthConfig struct {
	// Seed is the base random seed (default 1).
	Seed int64
	// MaxMoves is the annealing move budget per run (default 120 000).
	MaxMoves int
	// Runs is the number of independent seeded runs; the best is kept
	// (default 1). The paper used "5-10 annealing runs overnight".
	Runs int
}

// Result is a completed synthesis.
type Result struct {
	// Run is the winning OBLX run (variables, cost, trace, timings).
	Run *oblx.Result
	// Deck is the parsed problem description.
	Deck *netlist.Deck
}

// Variables returns the synthesized user design variables by name.
func (r *Result) Variables() map[string]float64 {
	out := make(map[string]float64, r.Run.Compiled.NUser)
	for i := 0; i < r.Run.Compiled.NUser; i++ {
		out[r.Run.Compiled.Vars()[i].Name] = r.Run.X[i]
	}
	return out
}

// Specs returns OBLX's predicted spec values.
func (r *Result) Specs() map[string]float64 {
	out := make(map[string]float64, len(r.Run.State.SpecVals))
	for k, v := range r.Run.State.SpecVals {
		out[k] = v
	}
	return out
}

// Compile parses and compiles a deck without synthesizing — the ASTRX
// half on its own. The returned Stats carry the Table-1-style analysis.
func Compile(deckSource string) (*iastrx.Compiled, error) {
	d, err := netlist.Parse(deckSource)
	if err != nil {
		return nil, err
	}
	return iastrx.Compile(d, iastrx.CostOptions{})
}

// Synthesize runs the full ASTRX→OBLX flow on a problem description.
func Synthesize(deckSource string, cfg SynthConfig) (*Result, error) {
	return SynthesizeContext(context.Background(), deckSource, cfg)
}

// SynthesizeContext is Synthesize with cancellation: when ctx is
// cancelled or its deadline passes, the run stops early and the
// best-so-far design is returned (Run.Cancelled is set) instead of an
// error. With Runs > 1 a run that fails is retried once with a fresh
// seed; surviving runs still compete, and an error is only returned when
// every run failed.
func SynthesizeContext(ctx context.Context, deckSource string, cfg SynthConfig) (*Result, error) {
	d, err := netlist.Parse(deckSource)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxMoves == 0 {
		cfg.MaxMoves = 120_000
	}
	opt := oblx.Options{Seed: cfg.Seed, MaxMoves: cfg.MaxMoves}
	var run *oblx.Result
	if cfg.Runs > 1 {
		var errs []error
		run, _, errs = oblx.RunBest(ctx, d, cfg.Runs, opt)
		if run == nil {
			err = errors.Join(errs...)
		}
	} else {
		run, err = oblx.Run(ctx, d, opt)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Run: run, Deck: d}, nil
}

// Verify measures a synthesized design with the reference simulator
// (full Newton bias solve plus direct AC sweeps) and compares it with
// OBLX's predictions spec by spec.
func Verify(r *Result) (*verify.Report, error) {
	if r == nil || r.Run == nil {
		return nil, fmt.Errorf("astrx: nil result")
	}
	return verify.Design(r.Run.Compiled, r.Run.X, r.Run.State.SpecVals)
}
