# Developer entry points. `make ci` is the gate: vet + build + full test
# suite + race detector on the concurrency-bearing packages.

GO ?= go

.PHONY: ci vet build test race

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/anneal ./internal/oblx ./internal/faults
