# Developer entry points. `make ci` is the gate: vet + build + full test
# suite + race detector on the concurrency-bearing packages.

GO ?= go

.PHONY: ci vet build test race bench-json

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/anneal ./internal/oblx ./internal/faults ./internal/server ./internal/metrics

# bench-json runs the Table 2 cost-evaluation benchmarks and records
# ns/eval + evals/sec per benchmark deck in BENCH_oblx.json, so the
# paper's headline throughput figure is trackable across commits.
bench-json:
	$(GO) test -run '^$$' -bench Table2Eval . | $(GO) run ./cmd/benchjson -filter Table2Eval -out BENCH_oblx.json
