# Developer entry points. `make ci` is the gate: vet + build + full test
# suite + race detector on the concurrency-bearing packages.

GO ?= go

.PHONY: ci vet build test race bench-json bench-check

# bench-check is advisory in ci (benchmark timings on shared CI hardware
# are too noisy to gate merges on); run it locally before perf-sensitive
# changes and regenerate the baseline with bench-json when a speedup or
# an accepted regression lands.
ci: vet build test race
	-$(MAKE) bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/anneal ./internal/oblx ./internal/faults ./internal/server ./internal/metrics

# bench-json runs the Table 2 cost-evaluation benchmarks and records
# ns/eval + evals/sec + allocs/eval per benchmark deck in
# BENCH_oblx.json, so the paper's headline throughput figure is
# trackable across commits. The bench output is staged through a temp
# file: piping straight into `go run` would compile benchjson while the
# benchmarks execute and skew the timings.
bench-json:
	@tmp=$$(mktemp) && \
	$(GO) test -run '^$$' -bench Table2Eval -benchmem . > $$tmp && \
	$(GO) run ./cmd/benchjson -filter Table2Eval -out BENCH_oblx.json < $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# bench-check re-runs the same benchmarks and fails when any deck's
# ns/eval regressed more than 15% against the committed BENCH_oblx.json.
bench-check:
	@tmp=$$(mktemp) && \
	$(GO) test -run '^$$' -bench Table2Eval -benchmem . > $$tmp && \
	$(GO) run ./cmd/benchjson -filter Table2Eval -check BENCH_oblx.json < $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc
