# Developer entry points. `make ci` is the gate: vet + build + full test
# suite + race detector on the concurrency-bearing packages.

GO ?= go
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: ci vet build test race chaos fleet-chaos tenancy-chaos corner-chaos trace-chaos lint bench-json bench-check telemetry-guard

# bench-check is a required gate: the sparse eval plans bought a large
# ns/eval margin over the committed baseline, so the 15% regression
# budget no longer trips on CI-hardware noise — a failure means a real
# slowdown (or a deck falling off the sparse factorization path, which
# benchjson flags separately). Regenerate the baseline with bench-json
# when a speedup or an accepted regression lands. lint stays advisory
# (the tools need network access to download on first run).
# telemetry-guard also gates: its allocs/eval comparison is
# deterministic, unlike timings.
ci: vet build test race fleet-chaos tenancy-chaos corner-chaos trace-chaos telemetry-guard bench-check
	-$(MAKE) lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/anneal ./internal/oblx ./internal/faults ./internal/server ./internal/fleet ./internal/metrics ./internal/telemetry ./internal/tenancy ./internal/rescache ./internal/trace

# chaos runs the fault-injection suites under the race detector: durable
# envelope/atomic-write tests, the injector itself (filesystem and
# network faults), retry/backoff, the oblxd restart-under-faults tests
# that assert no job is ever lost or double-completed, and the fleet
# partition/worker-kill scenarios. Slower than `make race`; run before
# touching the persistence or supervision layers.
chaos:
	$(GO) test -race -count=1 ./internal/durable ./internal/faults ./internal/retry ./internal/server ./internal/fleet ./internal/tenancy ./internal/rescache

# tenancy-chaos runs the multi-tenant serving drills under the race
# detector: the key-file reload race (readers authenticating through
# hundreds of concurrent SIGHUP-style reloads), quota exhaustion under
# racing submissions (exactly MaxQueued admitted, never more), and
# result-cache corruption (a flipped byte quarantines the entry and
# re-runs the job — never a wrong answer from the cache). Run it before
# touching the auth, scheduler, or cache layers.
tenancy-chaos:
	$(GO) test -race -count=1 ./internal/tenancy ./internal/rescache
	$(GO) test -race -count=1 -run 'TestCacheCorruptionChaos|TestQuotaExhaustionConcurrentSubmits|TestCacheHitSkipsEval|TestCancelQueuedReleasesQuota' ./internal/server

# fleet-chaos runs just the coordinator/worker supervision drills under
# the race detector: heartbeat loss, partition-then-heal fencing,
# kill -9 with checkpoint resume, coordinator restart, and stall
# poisoning — the exactly-once acceptance suite for distributed mode.
fleet-chaos:
	$(GO) test -race -count=1 ./internal/fleet

# trace-chaos runs the distributed-tracing acceptance drills under the
# race detector: a job submitted with a client traceparent, killed on
# one worker mid-anneal, and resumed on another must serve one span
# tree under the original trace ID with a resume event on the second
# attempt — plus the propagation table (claim handoff, span shipping,
# fencing) and the single-daemon trace lifecycle and snapshot fallback.
trace-chaos:
	$(GO) test -race -count=1 -run 'TestFleetTraceKillResume|TestFleetTraceparentPropagation' ./internal/fleet
	$(GO) test -race -count=1 -run 'TestTraceEndpointLifecycle|TestTraceConcurrentSnapshot|TestTraceLegacyJob409|TestTraceparentRequestID' ./internal/server

# corner-chaos runs the worst-case-over-corners robustness drills under
# the race detector: a multi-corner anneal must meet the specs at every
# corner; with one corner fault-injected to fail permanently, the run
# must retry, quarantine it, and finish degraded with per-corner
# failure counts; and a kill/resume of that degraded run must reproduce
# the uninterrupted run bit-exactly from its checkpoint.
corner-chaos:
	$(GO) test -race -count=1 -run 'TestCorner|TestDeriveCorner|TestCompileCorners|TestWorstCase|TestBatchRun' ./internal/oblx ./internal/astrx

# lint is advisory: staticcheck and govulncheck run via `go run`, which
# downloads them on first use. In an offline or hermetic environment the
# download fails and the `-` prefix keeps ci green; the tools still gate
# in any networked dev loop.
lint:
	-$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	-$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# bench-json runs the Table 2 cost-evaluation benchmarks and records
# ns/eval + evals/sec + allocs/eval per benchmark deck in
# BENCH_oblx.json, so the paper's headline throughput figure is
# trackable across commits. The bench output is staged through a temp
# file: piping straight into `go run` would compile benchjson while the
# benchmarks execute and skew the timings.
bench-json:
	@tmp=$$(mktemp) && \
	$(GO) test -run '^$$' -bench Table2Eval -benchmem . > $$tmp && \
	$(GO) run ./cmd/benchjson -filter Table2Eval -out BENCH_oblx.json < $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# bench-check re-runs the same benchmarks and fails when any deck's
# ns/eval regressed more than 15% against the committed BENCH_oblx.json,
# or when its allocs/eval exceeds the (zero-alloc) baseline.
bench-check:
	@tmp=$$(mktemp) && \
	$(GO) test -run '^$$' -bench Table2Eval -benchmem . > $$tmp && \
	$(GO) run ./cmd/benchjson -filter Table2Eval -check BENCH_oblx.json < $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# telemetry-guard proves stage-timing instrumentation stays off the
# zero-alloc hot path: a short -benchtime run (allocs/op is exact even
# at low iteration counts) checked against the baseline with a timing
# budget wide enough to absorb CI noise — it trips only on the
# catastrophic case, e.g. sampling accidentally enabled by default.
# The second step pins the batched K-candidate evaluator and the sparse
# single-candidate workspace to zero allocations via their dedicated
# alloc-count tests (testing.AllocsPerRun is exact and timing-free),
# and proves tracing compiled in but disabled (nil recorder) adds zero
# allocations to the eval hot path.
telemetry-guard:
	@tmp=$$(mktemp) && \
	$(GO) test -run '^$$' -bench Table2Eval -benchmem -benchtime 100x . > $$tmp && \
	$(GO) run ./cmd/benchjson -filter Table2Eval -check BENCH_oblx.json -max-regress 2.0 < $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc
	$(GO) test -run 'TestBatchZeroAlloc|TestWorkspaceZeroAlloc|TestTraceOffZeroAlloc' -count=1 ./internal/bench
