// Corners demonstrates worst-case synthesis over operating corners: the
// Section IV differential amplifier with two `.corner` cards — a hot
// slow corner (raised NMOS threshold, sagging supply) and a cold fast
// one — annealed on the worst spec value over every corner, so the
// returned design meets its specs at all of them, not just nominal.
//
// Run with: go run ./examples/corners
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"astrx/internal/netlist"
	"astrx/internal/oblx"
)

// The quickstart amplifier plus two operating corners. A corner names a
// temperature, per-source supply overrides, and per-model parameter
// overrides; everything unnamed is derived from the nominal process
// (mobility and threshold temperature derates are applied
// automatically).
const deck = `
.lib c2u

.module amp (in+ in- out+ out- vdd vss)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=Wp l=2u
m4 out+ nb  vdd vdd pmos3 w=Wp l=2u
vb  nb vdd '0-Vb'
ib  a vss I
.ends

.var W  min=2u  max=500u grid
.var Wp min=2u  max=500u grid
.var L  min=2u  max=20u  grid
.var I  min=2u  max=500u cont
.var Vb min=0.5 max=2.2  cont

.const Cl 1p

.jig main
xamp in+ in- out+ out- nvdd nvss amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vin  in+ 0 0 ac 1
ein  in- 0 in+ 0 -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vi1  in+ 0 0
vi2  in- 0 0
.ends

.obj  adm 'db(dc_gain(tf))' good=40 bad=5
.spec ugf 'ugf(tf)'         good=300k bad=10k
.region xamp.m1 sat margin=0.05
.region xamp.m2 sat margin=0.05
.region xamp.m3 sat margin=0.05
.region xamp.m4 sat margin=0.05

.corner slow temp=85  nmos3.vto=0.95 vdd=2.4
.corner fast temp=-40 vdd=2.6
`

func main() {
	d, err := netlist.Parse(deck)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Corners: nil selects every corner the deck declares — a cornered
	// deck is robust by default. (Corners: []string{} would force a
	// nominal-only run; the CLI spelling is `oblx -corners none`.)
	fmt.Println("annealing on the worst case over nominal + slow + fast…")
	res, err := oblx.Run(ctx, d, oblx.Options{Seed: 7, MaxMoves: 60_000})
	if err != nil {
		log.Fatal(err)
	}
	if res.Cancelled {
		fmt.Println("interrupted — reporting the best design found so far")
	}
	fmt.Printf("done in %v (%d worst-case evaluations)\n\n",
		res.Duration.Round(time.Millisecond), res.EvalCount)

	fmt.Println("synthesized design:")
	for i := 0; i < res.Compiled.NUser; i++ {
		fmt.Printf("  %-4s = %.4g\n", res.Compiled.Vars()[i].Name, res.X[i])
	}

	if res.Degraded {
		fmt.Println("\nDEGRADED: at least one corner was quarantined mid-run;")
		fmt.Println("the design is optimal only over the surviving corners.")
	}
	fmt.Println("\ncorner     status                    adm [dB]   ugf [Hz]")
	for _, cr := range res.Corners {
		status := "all specs met"
		switch {
		case cr.Quarantined:
			status = fmt.Sprintf("QUARANTINED (%d fails)", cr.Fails)
		case !cr.Evaluated:
			status = "evaluation FAILED"
		case !cr.AllMet:
			status = "specs NOT met"
		}
		fmt.Printf("  %-8s %-25s %8.4g %10.4g\n",
			cr.Name, status, cr.SpecVals["adm"], cr.SpecVals["ugf"])
	}
}
