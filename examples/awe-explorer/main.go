// awe-explorer demonstrates the Asymptotic Waveform Evaluation engine on
// its own: it analyzes RC ladders with AWE, compares the reduced-order
// model against exact AC analysis across six decades of frequency, and
// prints the extracted pole/zero sets — the machinery that lets
// ASTRX/OBLX evaluate circuit performance without designer equations.
//
// Run with: go run ./examples/awe-explorer
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"astrx/internal/acsim"
	"astrx/internal/awe"
	"astrx/internal/ckttest"
	"astrx/internal/expr"
	"astrx/internal/mna"
)

func main() {
	for _, n := range []int{2, 5, 10} {
		fmt.Printf("=== %d-stage RC ladder (R=1k, C=1n) ===\n", n)
		nl := ckttest.RCLadder(n, 1e3, 1e-9)
		sys, err := mna.Build(nl, expr.MapEnv{})
		if err != nil {
			log.Fatal(err)
		}
		an, err := awe.NewAnalyzer(sys)
		if err != nil {
			log.Fatal(err)
		}
		out := fmt.Sprintf("n%d", n)
		tf, err := an.TransferFunction("vin", out, "", 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reduced model order: %d (requested 8)\n", tf.Order)
		fmt.Printf("dc gain: %.6g   3dB bandwidth: %.4g rad/s\n", tf.DCGain(), tf.BW3dB())
		fmt.Println("poles (rad/s):")
		for _, p := range tf.Poles {
			fmt.Printf("   %12.5g %+12.5gj\n", real(p), imag(p))
		}
		if len(tf.Zeros) > 0 {
			fmt.Println("zeros (rad/s):")
			for _, z := range tf.Zeros {
				fmt.Printf("   %12.5g %+12.5gj\n", real(z), imag(z))
			}
		}

		// Accuracy vs the exact AC solution. The error is meaningful
		// in-band; deep in the stopband (|H| below ~-60 dB) a reduced
		// model has, by construction, fewer poles than the rolloff
		// order and floors out — no synthesis measure ever looks there.
		ac := acsim.NewAnalyzer(sys)
		fmt.Println("  ω(rad/s)      |H|exact     |H|AWE      rel.err")
		worst := 0.0
		for w := 1e3; w <= 1e8; w *= 100 {
			exact, err := ac.TransferAt("vin", out, "", w)
			if err != nil {
				log.Fatal(err)
			}
			approx := tf.Eval(complex(0, w))
			rel := cmplx.Abs(approx-exact) / math.Max(cmplx.Abs(exact), 1e-30)
			note := ""
			if cmplx.Abs(exact) < 1e-3 {
				note = " (stopband)"
			} else if rel > worst {
				worst = rel
			}
			fmt.Printf("  %8.0e  %12.5g %12.5g  %10.2e%s\n",
				w, cmplx.Abs(exact), cmplx.Abs(approx), rel, note)
		}
		fmt.Printf("worst in-band relative error: %.3g\n\n", worst)
	}
}
