// modelcompare reruns the paper's §VI device-model experiment at small
// scale: the same Simple OTA specification synthesized under three
// model/process combinations (BSIM/2µ, BSIM/1.2µ, MOS3/1.2µ), minimizing
// active area. The paper's point: the synthesized area differs sharply —
// 580 vs 300 vs 140 µm² in the original — even between two models of the
// *same* process, so supporting real device models is not optional.
//
// Run with: go run ./examples/modelcompare   (several minutes)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"astrx/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("synthesizing the Simple OTA under three model/process combinations…")
	rs, err := bench.ModelComparison(ctx, bench.SynthOptions{
		Seed: 5, MaxMoves: 60_000, Runs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(bench.FormatModelComparison(rs))

	fmt.Println("\npaper's result on its proprietary process: 580 / 300 / 140 µm²")
	fmt.Println("(absolute numbers differ on our synthetic process; the point is the spread)")
	if len(rs) == 3 {
		spread := rs[0].AreaUm2 / rs[2].AreaUm2
		fmt.Printf("area ratio BSIM/2u : MOS3/1.2u here = %.2f\n", spread)
	}
}
