// Quickstart reproduces the paper's Section IV walk-through: describe a
// simple differential amplifier, its test jig, bias circuit, and three
// specifications in a few dozen lines, then let ASTRX compile the cost
// function and OBLX size the circuit — no designer-derived equations
// anywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/verify"
)

// The problem description, start to finish. The unknowns are the pair's
// W/L, the tail current I, and the load-gate bias Vb — exactly the
// paper's example, with the load devices sized automatically too.
const deck = `
.lib c2u

.module amp (in+ in- out+ out- vdd vss)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=Wp l=2u
m4 out+ nb  vdd vdd pmos3 w=Wp l=2u
vb  nb vdd '0-Vb'
ib  a vss I
.ends

.var W  min=2u  max=500u grid
.var Wp min=2u  max=500u grid
.var L  min=2u  max=20u  grid
.var I  min=2u  max=500u cont
.var Vb min=0.5 max=2.2  cont

.const Cl 1p

.jig main
xamp in+ in- out+ out- nvdd nvss amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vin  in+ 0 0 ac 1
ein  in- 0 in+ 0 -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vi1  in+ 0 0
vi2  in- 0 0
.ends

.obj  adm 'db(dc_gain(tf))' good=40 bad=5
.spec ugf 'ugf(tf)'         good=1Meg bad=10k
.spec sr  'I/(2*(Cl+xamp.m1.cdb+xamp.m3.cdb))' good=1Meg bad=10k
.region xamp.m1 sat margin=0.05
.region xamp.m2 sat margin=0.05
.region xamp.m3 sat margin=0.05
.region xamp.m4 sat margin=0.05
`

func main() {
	d, err := netlist.Parse(deck)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C stops the annealing early and keeps the best design so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("ASTRX: compiling the problem and OBLX: annealing…")
	res, err := oblx.Run(ctx, d, oblx.Options{Seed: 7, MaxMoves: 60_000})
	if err != nil {
		log.Fatal(err)
	}
	if res.Cancelled {
		fmt.Println("interrupted — reporting the best design found so far")
	}

	fmt.Printf("done in %v (%d circuit evaluations, %v each)\n\n",
		res.Duration.Round(time.Millisecond), res.EvalCount,
		res.TimePerEval().Round(time.Microsecond))

	fmt.Println("synthesized design:")
	for i := 0; i < res.Compiled.NUser; i++ {
		fmt.Printf("  %-4s = %.4g\n", res.Compiled.Vars()[i].Name, res.X[i])
	}

	rep, err := verify.Design(res.Compiled, res.X, res.State.SpecVals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nspec       OBLX prediction / detailed simulation")
	for _, row := range rep.Specs {
		fmt.Printf("  %-4s %16.5g / %-16.5g (rel err %.2g)\n",
			row.Name, row.Predicted, row.Simulated, row.RelErr)
	}
	fmt.Printf("\nreference bias solved in %d Newton iterations; max |KCL| = %.2g A\n",
		rep.BiasIterations, rep.MaxKCL)
}
