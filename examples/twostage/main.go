// twostage synthesizes the Miller-compensated two-stage op-amp from the
// benchmark suite and prints the Table-2-style result, including the
// OBLX-vs-simulation accuracy comparison that is the paper's central
// claim.
//
// Run with: go run ./examples/twostage   (takes a minute or two)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"astrx/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("synthesizing the two-stage op-amp (two parallel runs, best kept)…")
	res, err := bench.Synthesize(ctx, bench.TwoStage, bench.SynthOptions{
		Seed: 11, MaxMoves: 80_000, Runs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nCPU %v, %v per circuit evaluation, froze=%v\n",
		res.Run.Duration.Round(time.Millisecond),
		res.Run.TimePerEval().Round(time.Microsecond), res.Run.Froze)

	fmt.Println("\ndevice sizes:")
	for i := 0; i < res.Run.Compiled.NUser; i++ {
		fmt.Printf("  %-4s = %.4g\n", res.Run.Compiled.Vars()[i].Name, res.Run.X[i])
	}

	fmt.Println("\nspec        target        OBLX / Simulation")
	deck := res.Run.Compiled.Deck
	for _, s := range deck.Specs {
		row := res.Report.Spec(s.Name)
		if row == nil {
			continue
		}
		status := "met"
		if !row.Met {
			status = "NOT met"
		}
		if s.Objective {
			status = "objective"
		}
		fmt.Printf("  %-6s %10.4g  %12.5g / %-12.5g %s\n",
			s.Name, s.Good, row.Predicted, row.Simulated, status)
	}
	fmt.Printf("\nworst prediction-vs-simulation error: %.3g%%\n", res.Report.WorstRelErr*100)

	// How the annealer spent its moves (Hustin move-class statistics).
	fmt.Println("\nmove-class statistics:")
	for _, ms := range res.Run.MoveStats {
		fmt.Printf("  %-12s proposed %7d accepted %7d\n", ms.Name, ms.Proposed, ms.Accepted)
	}
}
