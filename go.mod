module astrx

go 1.22
