package astrx_test

import (
	"testing"

	root "astrx"
	"astrx/internal/bench"
)

const facadeDeck = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends

.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
`

func TestFacadeCompile(t *testing.T) {
	comp, err := root.Compile(facadeDeck)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Stats().UserVars != 1 {
		t.Errorf("stats = %+v", comp.Stats())
	}
	if _, err := root.Compile("garbage ("); err == nil {
		t.Error("bad deck must error")
	}
}

func TestFacadeSynthesizeAndVerify(t *testing.T) {
	res, err := root.Synthesize(facadeDeck, root.SynthConfig{Seed: 2, MaxMoves: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	vars := res.Variables()
	if vars["R2"] < 5000 {
		t.Errorf("synthesized R2 = %g, want large (gain→0.99)", vars["R2"])
	}
	specs := res.Specs()
	if specs["gain"] < 0.85 {
		t.Errorf("gain = %g", specs["gain"])
	}
	rep, err := root.Verify(res)
	if err != nil {
		t.Fatal(err)
	}
	if row := rep.Spec("gain"); row == nil || row.RelErr > 1e-6 {
		t.Errorf("verification row = %+v", row)
	}
	if _, err := root.Verify(nil); err == nil {
		t.Error("nil result must error")
	}
	// Multi-run path.
	res2, err := root.Synthesize(facadeDeck, root.SynthConfig{Seed: 3, MaxMoves: 5000, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Run == nil {
		t.Error("multi-run returned nil run")
	}
}

func TestBenchTableFormatters(t *testing.T) {
	rows, err := bench.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := bench.FormatTable1(rows)
	for _, c := range bench.Suite {
		if !containsStr(out, string(c)) {
			t.Errorf("Table 1 missing %s", c)
		}
	}
	// Fig. 3 merge.
	pts := bench.Fig3(bench.SynthOptions{}, 20, 3, 50, 0, 0.01, 0, 15)
	if len(pts) != len(bench.Fig3Literature)+2 {
		t.Errorf("fig3 points = %d", len(pts))
	}
	txt := bench.FormatFig3(pts)
	if !containsStr(txt, "ASTRX/OBLX (this repo)") || !containsStr(txt, "OASYS") {
		t.Error("fig3 rendering incomplete")
	}
}

func TestAWEScalingExperiment(t *testing.T) {
	pts, err := bench.AWEScaling([]int{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MaxRelErr > 0.2 {
			t.Errorf("n=%d: AWE error %g too large", p.Nodes, p.MaxRelErr)
		}
	}
	// Timing asserted only at the largest size: small-circuit wall times
	// are scheduler noise when the machine is loaded.
	if last := pts[len(pts)-1]; last.Speedup < 2 {
		t.Errorf("n=%d: AWE speedup %gx, want ≥ 2x", last.Nodes, last.Speedup)
	}
	txt := bench.FormatAWEScaling(pts)
	if !containsStr(txt, "speedup") {
		t.Error("formatting broken")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
