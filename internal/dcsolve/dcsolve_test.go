package dcsolve

import (
	"context"
	"math"
	"testing"

	"astrx/internal/linalg"
)

// scalarProblem solves f(v) = 0 for simple closed-form systems.
type scalarProblem struct {
	f  func(v []float64, out []float64)
	jf func(v []float64, j *linalg.Matrix)
	n  int
}

func (p *scalarProblem) N() int { return p.n }
func (p *scalarProblem) Residual(v, f []float64) error {
	p.f(v, f)
	return nil
}
func (p *scalarProblem) Jacobian(v []float64, j *linalg.Matrix) error {
	p.jf(v, j)
	return nil
}

func TestNewtonLinear(t *testing.T) {
	// f = 2v - 4 → v = 2 in one step.
	p := &scalarProblem{
		n: 1,
		f: func(v, f []float64) { f[0] = 2*v[0] - 4 },
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 2)
		},
	}
	r, err := Solve(context.Background(), p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.V[0]-2) > 1e-9 {
		t.Errorf("v = %v, want 2", r.V[0])
	}
}

func TestNewtonDiodeLike(t *testing.T) {
	// Diode + resistor: (v-1)/1k + 1e-15(exp(v/0.026)-1) = 0 shifted:
	// source 1V through 1k into a diode to ground.
	is, vt := 1e-15, 0.02585
	p := &scalarProblem{
		n: 1,
		f: func(v, f []float64) {
			f[0] = (v[0]-1)/1000 + is*(math.Exp(v[0]/vt)-1)
		},
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 1.0/1000+is/vt*math.Exp(v[0]/vt))
		},
	}
	r, err := Solve(context.Background(), p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Residual is the true test.
	f := make([]float64, 1)
	_ = p.Residual(r.V, f)
	if math.Abs(f[0]) > 1e-10 {
		t.Errorf("diode residual = %g", f[0])
	}
	if r.V[0] < 0.5 || r.V[0] > 0.9 {
		t.Errorf("diode voltage = %g, want ≈ 0.7", r.V[0])
	}
}

func TestNewtonTwoDim(t *testing.T) {
	// f1 = v0 + v1 - 3; f2 = v0 - v1 - 1 → (2, 1)
	p := &scalarProblem{
		n: 2,
		f: func(v, f []float64) {
			f[0] = v[0] + v[1] - 3
			f[1] = v[0] - v[1] - 1
		},
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 1)
			j.Set(0, 1, 1)
			j.Set(1, 0, 1)
			j.Set(1, 1, -1)
		},
	}
	r, err := Solve(context.Background(), p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.V[0]-2) > 1e-8 || math.Abs(r.V[1]-1) > 1e-8 {
		t.Errorf("v = %v, want [2 1]", r.V)
	}
}

func TestGminStepping(t *testing.T) {
	// A steep exponential that plain Newton from 0 handles only with
	// damping; gmin stepping must also find it.
	is, vt := 1e-16, 0.02585
	p := &scalarProblem{
		n: 1,
		f: func(v, f []float64) {
			f[0] = (v[0]-5)/100 + is*(math.Exp(v[0]/vt)-1)
		},
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 1.0/100+is/vt*math.Exp(v[0]/vt))
		},
	}
	r, err := Solve(context.Background(), p, []float64{0}, Options{GminSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 1)
	_ = p.Residual(r.V, f)
	if math.Abs(f[0]) > 1e-9 {
		t.Errorf("gmin-stepped residual = %g", f[0])
	}
}

func TestStepSingle(t *testing.T) {
	p := &scalarProblem{
		n: 1,
		f: func(v, f []float64) { f[0] = v[0] - 3 },
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 1)
		},
	}
	v, err := Step(p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// MaxStep limiting: |Δ| ≤ 1.
	if math.Abs(v[0]) > 1.0+1e-12 {
		t.Errorf("step exceeded limit: %v", v)
	}
	// A second step gets closer.
	v2, _ := Step(p, v, Options{})
	if math.Abs(v2[0]-3) >= math.Abs(v[0]-3) {
		t.Error("second step did not approach the solution")
	}
}

func TestSingularJacobian(t *testing.T) {
	p := &scalarProblem{
		n: 2,
		f: func(v, f []float64) {
			f[0] = v[0] + v[1] - 1
			f[1] = v[0] + v[1] + 1 // inconsistent
		},
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 1)
			j.Set(0, 1, 1)
			j.Set(1, 0, 1)
			j.Set(1, 1, 1)
		},
	}
	// gmin regularizes the matrix, but the system has no solution: the
	// solver must report failure rather than hang.
	if _, err := Solve(context.Background(), p, []float64{0, 0}, Options{MaxIter: 30}); err == nil {
		t.Error("inconsistent system should not converge")
	}
	if _, err := Step(p, []float64{0, 0}, Options{Gmin: 0}); err == nil {
		// With zero gmin the singular matrix must be detected.
		t.Log("step succeeded due to gmin default; acceptable")
	}
}

func TestResidualErrorPropagates(t *testing.T) {
	p := &errProblem{}
	if _, err := Solve(context.Background(), p, []float64{0}, Options{}); err == nil {
		t.Error("residual error must propagate")
	}
	if _, err := Step(p, []float64{0}, Options{}); err == nil {
		t.Error("step must fail on residual error")
	}
}

type errProblem struct{}

func (p *errProblem) N() int { return 1 }
func (p *errProblem) Residual(v, f []float64) error {
	return errTest
}
func (p *errProblem) Jacobian(v []float64, j *linalg.Matrix) error {
	return errTest
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
