// Package dcsolve implements a damped Newton-Raphson solver for nonlinear
// DC operating points. OBLX uses it two ways, following §V-A of the
// paper: as full and partial *moves* inside the annealing (gradient-
// directed steps toward dc-correctness on the relaxed-dc formulation),
// and — in package verify — as the reference simulator's bias solver for
// checking finished designs. Gmin stepping provides the continuation
// safety net a detailed circuit simulator would have.
package dcsolve

import (
	"context"
	"errors"
	"fmt"
	"math"

	"astrx/internal/linalg"
)

// Problem is a nonlinear nodal system F(v) = 0 with Jacobian.
type Problem interface {
	// N returns the number of unknowns.
	N() int
	// Residual fills f with F(v).
	Residual(v, f []float64) error
	// Jacobian fills j (N×N) with ∂F/∂v.
	Jacobian(v []float64, j *linalg.Matrix) error
}

// Options tunes the solve.
type Options struct {
	MaxIter int     // 0 → 120
	AbsTol  float64 // residual tolerance (0 → 1e-12)
	RelTol  float64 // per-unknown relative step tolerance (0 → 1e-9)
	MaxStep float64 // voltage-step limit per iteration (0 → 1.0 V)
	// GminSteps enables continuation: the solver first solves with a
	// large diagonal conductance and re-solves while stepping it down to
	// Gmin over this many decades (0 → direct solve only).
	GminSteps int
	Gmin      float64 // final diagonal conductance (0 → 1e-12)
	// BestEffort makes Solve return the last iterate (with a non-nil
	// *Result alongside ErrNoConvergence) instead of discarding partial
	// progress — what OBLX's gradient-directed moves want.
	BestEffort bool
	// FailHook, when set, is polled once per Newton iteration; returning
	// true aborts the solve immediately with ErrNoConvergence (no
	// best-effort iterate — a simulated catastrophic failure). It exists
	// for fault injection; see internal/faults.
	FailHook func() bool
	// Work, when set, supplies reusable iteration storage so repeated
	// solves on same-sized problems allocate nothing (OBLX performs one
	// small solve per Newton annealing move). With Work set, Result.V
	// and Step's return alias the workspace and are only valid until the
	// next solve that uses it — copy what must be kept.
	Work *Workspace
}

// Workspace holds the per-solve scratch of the Newton iteration: the
// iterate, residual and trial vectors, the Jacobian, and its LU factor.
// The zero value is ready to use; buffers grow to the largest problem
// seen. It is single-goroutine state.
type Workspace struct {
	v, f, dv, trial, ftrial []float64
	j                       linalg.Matrix
	// lu routes through the sparse path when the Jacobian's scanned
	// pattern has a cached symbolic analysis — after the first move on a
	// reused Workspace, every subsequent factor is a sparse replay — and
	// falls back to dense partial pivoting when a pivot guard trips, so
	// singular-Jacobian verdicts are identical to the dense-only solver.
	lu linalg.AutoLU
}

// size readies every buffer for an n-unknown solve.
func (w *Workspace) size(n int) {
	if cap(w.v) < n {
		w.v = make([]float64, n)
		w.f = make([]float64, n)
		w.dv = make([]float64, n)
		w.trial = make([]float64, n)
		w.ftrial = make([]float64, n)
	}
	w.v, w.f, w.dv = w.v[:n], w.f[:n], w.dv[:n]
	w.trial, w.ftrial = w.trial[:n], w.ftrial[:n]
	if w.j.Rows != n || w.j.Cols != n {
		w.j = *linalg.NewMatrix(n, n)
	}
}

func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 120
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-12
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-9
	}
	if o.MaxStep == 0 {
		o.MaxStep = 1.0
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
}

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("dcsolve: no convergence")

// ErrNonFinite is returned when the starting vector contains NaN or ±Inf
// — a poisoned input must be rejected at the boundary, not propagated
// through the Jacobian where it corrupts every unknown.
var ErrNonFinite = errors.New("dcsolve: non-finite value in input vector")

// checkFinite returns a wrapped ErrNonFinite for the first bad entry.
func checkFinite(v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: v[%d] = %g", ErrNonFinite, i, x)
		}
	}
	return nil
}

// Result reports a solve.
type Result struct {
	V          []float64
	Iterations int
	ResidNorm  float64
}

// Solve runs (optionally gmin-stepped) damped Newton-Raphson from v0.
// Cancelling ctx aborts the solve between iterations; with BestEffort
// the last iterate is returned alongside the context error.
func Solve(ctx context.Context, p Problem, v0 []float64, opt Options) (*Result, error) {
	opt.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkFinite(v0); err != nil {
		return nil, err
	}
	// newton copies its input into the workspace and never mutates it,
	// so v0 can be handed over directly.
	v := v0
	if opt.GminSteps > 0 {
		// Continuation from a heavily loaded system down to Gmin.
		g := 1e-3
		target := opt.Gmin
		steps := opt.GminSteps
		factor := math.Pow(target/g, 1/float64(steps))
		for i := 0; i < steps; i++ {
			if ctx.Err() != nil {
				break
			}
			r, err := newton(ctx, p, v, g, opt)
			if err == nil || (opt.BestEffort && r != nil) {
				v = r.V
			}
			g *= factor
		}
	}
	return newton(ctx, p, v, opt.Gmin, opt)
}

// Step performs exactly one damped Newton iteration from v0 and returns
// the stepped vector (used by OBLX's partial-Newton move class). A nil
// error reports that a usable step was produced; a poisoned input
// returns ErrNonFinite.
func Step(p Problem, v0 []float64, opt Options) ([]float64, error) {
	opt.defaults()
	if err := checkFinite(v0); err != nil {
		return nil, err
	}
	if opt.FailHook != nil && opt.FailHook() {
		return nil, fmt.Errorf("%w (injected)", ErrNoConvergence)
	}
	n := p.N()
	w := opt.Work
	if w == nil {
		w = new(Workspace)
	}
	w.size(n)
	f := w.f
	if err := p.Residual(v0, f); err != nil {
		return nil, fmt.Errorf("dcsolve: %w", err)
	}
	j := &w.j
	j.Zero()
	if err := p.Jacobian(v0, j); err != nil {
		return nil, fmt.Errorf("dcsolve: %w", err)
	}
	for i := 0; i < n; i++ {
		j.Add(i, i, opt.Gmin)
	}
	if err := w.lu.Factor(j); err != nil {
		return nil, fmt.Errorf("dcsolve: singular Jacobian: %w", err)
	}
	w.lu.SolveInto(w.dv, f)
	dv := w.dv
	out := append(w.trial[:0], v0...)
	for i := range out {
		step := dv[i]
		if step > opt.MaxStep {
			step = opt.MaxStep
		}
		if step < -opt.MaxStep {
			step = -opt.MaxStep
		}
		out[i] -= step
	}
	return out, nil
}

func newton(ctx context.Context, p Problem, v0 []float64, gmin float64, opt Options) (*Result, error) {
	n := p.N()
	w := opt.Work
	if w == nil {
		w = new(Workspace)
	}
	w.size(n)
	// v0 may alias w.v (Solve's continuation loop feeds each stage's
	// result back in); the append is then an identity copy with no
	// growth, so the self-alias is harmless.
	v := append(w.v[:0], v0...)
	f := w.f
	j := &w.j
	trial := w.trial
	ftrial := w.ftrial

	if err := p.Residual(v, f); err != nil {
		return nil, fmt.Errorf("dcsolve: %w", err)
	}
	norm := residNorm(v, f, gmin)

	for it := 1; it <= opt.MaxIter; it++ {
		if norm < opt.AbsTol {
			return &Result{V: v, Iterations: it - 1, ResidNorm: norm}, nil
		}
		select {
		case <-ctx.Done():
			err := fmt.Errorf("dcsolve: %w", ctx.Err())
			if opt.BestEffort {
				return &Result{V: v, Iterations: it - 1, ResidNorm: norm}, err
			}
			return nil, err
		default:
		}
		if opt.FailHook != nil && opt.FailHook() {
			return nil, fmt.Errorf("%w (injected)", ErrNoConvergence)
		}
		j.Zero()
		if err := p.Jacobian(v, j); err != nil {
			return nil, fmt.Errorf("dcsolve: %w", err)
		}
		for i := 0; i < n; i++ {
			j.Add(i, i, gmin)
		}
		if err := w.lu.Factor(j); err != nil {
			return nil, fmt.Errorf("dcsolve: singular Jacobian: %w", err)
		}
		// Residual including the gmin load.
		for i := 0; i < n; i++ {
			f[i] += gmin * v[i]
		}
		w.lu.SolveInto(w.dv, f)
		dv := w.dv

		// Voltage-step limiting.
		maxdv := linalg.VecNormInf(dv)
		scale := 1.0
		if maxdv > opt.MaxStep {
			scale = opt.MaxStep / maxdv
		}

		// Backtracking line search on the residual norm.
		alpha := scale
		improved := false
		var bestNorm float64
		for bt := 0; bt < 12; bt++ {
			for i := range v {
				trial[i] = v[i] - alpha*dv[i]
			}
			if err := p.Residual(trial, ftrial); err != nil {
				alpha /= 2
				continue
			}
			tn := residNorm(trial, ftrial, gmin)
			if tn < norm || tn < opt.AbsTol {
				copy(v, trial)
				copy(f, ftrial)
				bestNorm = tn
				improved = true
				break
			}
			alpha /= 2
		}
		if !improved {
			// Accept the tiny step anyway — near machine precision the
			// norm can stagnate while still being acceptable.
			if norm < 1e3*opt.AbsTol {
				return &Result{V: v, Iterations: it, ResidNorm: norm}, nil
			}
			err := fmt.Errorf("%w: stalled at |F| = %g after %d iterations", ErrNoConvergence, norm, it)
			if opt.BestEffort {
				return &Result{V: v, Iterations: it, ResidNorm: norm}, err
			}
			return nil, err
		}
		norm = bestNorm
		// Relative step convergence.
		stepMax := 0.0
		for i := range dv {
			s := math.Abs(alpha * dv[i])
			if s > stepMax {
				stepMax = s
			}
		}
		if stepMax < opt.RelTol && norm < 1e6*opt.AbsTol {
			return &Result{V: v, Iterations: it, ResidNorm: norm}, nil
		}
	}
	if norm < 1e3*opt.AbsTol {
		return &Result{V: v, Iterations: opt.MaxIter, ResidNorm: norm}, nil
	}
	err := fmt.Errorf("%w: |F| = %g after %d iterations", ErrNoConvergence, norm, opt.MaxIter)
	if opt.BestEffort {
		return &Result{V: v, Iterations: opt.MaxIter, ResidNorm: norm}, err
	}
	return nil, err
}

// residNorm is the infinity norm of F(v) + gmin·v.
func residNorm(v, f []float64, gmin float64) float64 {
	m := 0.0
	for i := range f {
		r := math.Abs(f[i] + gmin*v[i])
		if r > m {
			m = r
		}
	}
	return m
}
