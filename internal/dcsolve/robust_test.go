package dcsolve

import (
	"context"
	"errors"
	"math"
	"testing"

	"astrx/internal/linalg"
)

func linProblem() *scalarProblem {
	return &scalarProblem{
		n: 1,
		f: func(v, f []float64) { f[0] = 2*v[0] - 4 },
		jf: func(v []float64, j *linalg.Matrix) {
			j.Set(0, 0, 2)
		},
	}
}

func TestSolveRejectsNonFiniteInput(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := Solve(context.Background(), linProblem(), []float64{bad}, Options{})
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("Solve(v0=%g): err = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestStepRejectsNonFiniteInput(t *testing.T) {
	_, err := Step(linProblem(), []float64{0, math.NaN()}, Options{})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, linProblem(), []float64{0}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCancelledBestEffort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Solve(ctx, linProblem(), []float64{0}, Options{BestEffort: true})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if r == nil || len(r.V) != 1 {
		t.Error("best-effort cancellation must still return the last iterate")
	}
}

func TestFailHookAbortsSolve(t *testing.T) {
	hook := func() bool { return true }
	_, err := Solve(context.Background(), linProblem(), []float64{0}, Options{FailHook: hook})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
	if _, err := Step(linProblem(), []float64{0}, Options{FailHook: hook}); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("Step err = %v, want ErrNoConvergence", err)
	}
}

func TestFailHookRateZeroEquivalent(t *testing.T) {
	// A hook that never fires must not change the solve.
	calls := 0
	hook := func() bool { calls++; return false }
	r, err := Solve(context.Background(), linProblem(), []float64{0}, Options{FailHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.V[0]-2) > 1e-9 {
		t.Errorf("v = %g, want 2", r.V[0])
	}
	if calls == 0 {
		t.Error("hook was never polled")
	}
}
