// Package acsim performs direct AC small-signal analysis: at each
// frequency point the complex system (G + jωC)·x = b is factored and
// solved exactly. This is the SPICE-style reference analysis that AWE
// (package awe) approximates — several orders of magnitude faster — and
// it is what package verify uses to produce the "/ Simulation" columns of
// the paper's Tables 2 and 3.
package acsim

import (
	"fmt"
	"math"
	"math/cmplx"

	"astrx/internal/linalg"
	"astrx/internal/mna"
)

// Point is one frequency-response sample.
type Point struct {
	Omega float64    // rad/s
	H     complex128 // transfer function value
}

// Sweep holds an AC analysis result for one output.
type Sweep struct {
	Points []Point
}

// Analyzer runs direct AC solves of an MNA system.
type Analyzer struct {
	sys *mna.System
	a   *linalg.CMatrix // scratch (G + jωC)
	// lu is reused across frequency points: the (G + jωC) sparsity
	// pattern is frequency-independent away from exact cancellations, so
	// after the first point every factorization is a sparse replay over
	// the cached symbolic analysis instead of a fresh dense allocation.
	lu linalg.AutoCLU
}

// NewAnalyzer prepares an analyzer for the given system.
func NewAnalyzer(sys *mna.System) *Analyzer {
	return &Analyzer{sys: sys, a: linalg.NewCMatrix(sys.Size, sys.Size)}
}

// SolveAt computes the full unknown vector at angular frequency w for the
// named input source.
func (an *Analyzer) SolveAt(src string, w float64) ([]complex128, error) {
	b, err := an.sys.InputVector(src)
	if err != nil {
		return nil, err
	}
	n := an.sys.Size
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			an.a.Set(i, j, complex(an.sys.G.At(i, j), w*an.sys.C.At(i, j)))
		}
	}
	if err := an.lu.Factor(an.a); err != nil {
		return nil, fmt.Errorf("acsim: singular system at ω=%g: %w", w, err)
	}
	cb := make([]complex128, n)
	for i := range b {
		cb[i] = complex(b[i], 0)
	}
	an.lu.SolveInPlace(cb)
	return cb, nil
}

// TransferAt returns H(jω) = (v(outPos) - v(outNeg)) / u for the named
// source; outNeg may be "" or "0".
func (an *Analyzer) TransferAt(src, outPos, outNeg string, w float64) (complex128, error) {
	x, err := an.SolveAt(src, w)
	if err != nil {
		return 0, err
	}
	ip, ok := an.sys.NodeUnknown(outPos)
	if !ok {
		return 0, fmt.Errorf("acsim: output node %q unknown or ground", outPos)
	}
	h := x[ip]
	if outNeg != "" && outNeg != "0" {
		in, ok := an.sys.NodeUnknown(outNeg)
		if !ok {
			return 0, fmt.Errorf("acsim: output node %q unknown or ground", outNeg)
		}
		h -= x[in]
	}
	return h, nil
}

// LogSweep runs a logarithmic frequency sweep from wLo to wHi (rad/s)
// with n points.
func (an *Analyzer) LogSweep(src, outPos, outNeg string, wLo, wHi float64, n int) (*Sweep, error) {
	if n < 2 || wLo <= 0 || wHi <= wLo {
		return nil, fmt.Errorf("acsim: bad sweep parameters [%g,%g] n=%d", wLo, wHi, n)
	}
	s := &Sweep{Points: make([]Point, n)}
	ratio := math.Pow(wHi/wLo, 1/float64(n-1))
	w := wLo
	for i := 0; i < n; i++ {
		h, err := an.TransferAt(src, outPos, outNeg, w)
		if err != nil {
			return nil, err
		}
		s.Points[i] = Point{Omega: w, H: h}
		w *= ratio
	}
	return s, nil
}

// UGF locates the unity-gain frequency by log scan plus bisection using
// exact complex solves. Returns 0 when the response never crosses unity.
func (an *Analyzer) UGF(src, outPos, outNeg string, wLo, wHi float64) (float64, error) {
	magAt := func(w float64) (float64, error) {
		h, err := an.TransferAt(src, outPos, outNeg, w)
		return cmplx.Abs(h), err
	}
	m, err := magAt(wLo)
	if err != nil {
		return 0, err
	}
	if m <= 1 {
		return 0, nil
	}
	const steps = 200
	ratio := math.Pow(wHi/wLo, 1.0/steps)
	prev := wLo
	w := wLo
	for i := 0; i < steps; i++ {
		w *= ratio
		m, err = magAt(w)
		if err != nil {
			return 0, err
		}
		if m <= 1 {
			a, b := prev, w
			for it := 0; it < 60; it++ {
				mid := math.Sqrt(a * b)
				mm, err := magAt(mid)
				if err != nil {
					return 0, err
				}
				if mm > 1 {
					a = mid
				} else {
					b = mid
				}
			}
			return math.Sqrt(a * b), nil
		}
		prev = w
	}
	return 0, nil
}

// PhaseMarginDeg measures 180° + unwrapped ∠H at the unity-gain
// frequency by tracking phase continuously along a log sweep from wStart
// (well below the first pole) up to the UGF.
func (an *Analyzer) PhaseMarginDeg(src, outPos, outNeg string, wStart, wHi float64) (float64, error) {
	wu, err := an.UGF(src, outPos, outNeg, wStart, wHi)
	if err != nil || wu == 0 {
		return 0, err
	}
	// Unwrap along a log grid from wStart to wu, adaptively refining any
	// interval where the phase moves more than 60°: a high-Q complex
	// pole pair can swing the phase through ~180° in a few percent of
	// bandwidth, and naive fixed-step unwrapping across such a jump is
	// off by a full turn.
	const ptsPerDecade = 50
	decades := math.Log10(wu / wStart)
	n := int(decades*ptsPerDecade) + 2
	ratio := math.Pow(wu/wStart, 1/float64(n-1))
	w := wStart
	h0, err := an.TransferAt(src, outPos, outNeg, w)
	if err != nil {
		return 0, err
	}
	phase := cmplx.Phase(h0) // start in (-π, π]
	prevW, prevP := w, phase
	for i := 1; i < n; i++ {
		w *= ratio
		p, err := an.unwrapTo(src, outPos, outNeg, prevW, prevP, w, 0)
		if err != nil {
			return 0, err
		}
		phase = p
		prevW, prevP = w, p
	}
	return 180 + phase*180/math.Pi, nil
}

// unwrapTo continues the phase from (wA, phaseA) to wB, bisecting the
// interval whenever the principal-value step exceeds 60° (up to a
// recursion depth that resolves Q factors into the thousands).
func (an *Analyzer) unwrapTo(src, outPos, outNeg string, wA, phaseA, wB float64, depth int) (float64, error) {
	h, err := an.TransferAt(src, outPos, outNeg, wB)
	if err != nil {
		return 0, err
	}
	p := cmplx.Phase(h)
	for p-phaseA > math.Pi {
		p -= 2 * math.Pi
	}
	for p-phaseA < -math.Pi {
		p += 2 * math.Pi
	}
	if math.Abs(p-phaseA) <= math.Pi/3 || depth >= 12 {
		return p, nil
	}
	mid := math.Sqrt(wA * wB)
	pm, err := an.unwrapTo(src, outPos, outNeg, wA, phaseA, mid, depth+1)
	if err != nil {
		return 0, err
	}
	return an.unwrapTo(src, outPos, outNeg, mid, pm, wB, depth+1)
}
