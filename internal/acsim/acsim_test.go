package acsim

import (
	"math"
	"math/cmplx"
	"testing"

	"astrx/internal/ckttest"
	"astrx/internal/expr"
	"astrx/internal/mna"
)

func sysFor(t *testing.T, n int, r, c float64) *mna.System {
	t.Helper()
	nl := ckttest.RCLadder(n, r, c)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRCTransferExact(t *testing.T) {
	sys := sysFor(t, 1, 1e3, 1e-9)
	an := NewAnalyzer(sys)
	for _, w := range []float64{1e3, 1e6, 1e9} {
		h, err := an.TransferAt("vin", "n1", "", w)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / complex(1, w*1e-6)
		if cmplx.Abs(h-want) > 1e-12 {
			t.Errorf("ω=%g: H = %v, want %v", w, h, want)
		}
	}
}

func TestLogSweep(t *testing.T) {
	sys := sysFor(t, 1, 1e3, 1e-9)
	an := NewAnalyzer(sys)
	sw, err := an.LogSweep("vin", "n1", "", 1e3, 1e9, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 13 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	if math.Abs(sw.Points[0].Omega-1e3) > 1e-6 || math.Abs(sw.Points[12].Omega-1e9)/1e9 > 1e-9 {
		t.Errorf("sweep endpoints wrong: %g .. %g", sw.Points[0].Omega, sw.Points[12].Omega)
	}
	// Magnitude must be monotonically nonincreasing for an RC lowpass.
	prev := math.Inf(1)
	for _, p := range sw.Points {
		m := cmplx.Abs(p.H)
		if m > prev+1e-12 {
			t.Errorf("magnitude not monotone at ω=%g", p.Omega)
		}
		prev = m
	}
	// Bad parameters.
	if _, err := an.LogSweep("vin", "n1", "", 0, 1e9, 10); err == nil {
		t.Error("wLo=0 must error")
	}
	if _, err := an.LogSweep("vin", "n1", "", 1e3, 1e2, 10); err == nil {
		t.Error("wHi<wLo must error")
	}
	if _, err := an.LogSweep("vin", "n1", "", 1e3, 1e9, 1); err == nil {
		t.Error("n<2 must error")
	}
}

func TestUGFSinglePoleAmp(t *testing.T) {
	// gm=1m into 100k∥1p: A0=100, pole=1e7 → UGF = 1e7·sqrt(100²-1)
	g1 := ckttest.E("g1", []string{"0", "out", "in", "0"}, "1m")
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		g1,
		ckttest.E("r1", []string{"out", "0"}, "100k"),
		ckttest.E("c1", []string{"out", "0"}, "1p"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(sys)
	wu, err := an.UGF("vin", "out", "", 1e3, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e7 * math.Sqrt(100*100-1)
	if math.Abs(wu-want)/want > 1e-6 {
		t.Errorf("UGF = %g, want %g", wu, want)
	}
	pm, err := an.PhaseMarginDeg("vin", "out", "", 1e3, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	wantPM := 180 - math.Atan2(wu, 1e7)*180/math.Pi
	if math.Abs(pm-wantPM) > 0.2 {
		t.Errorf("PM = %v, want %v", pm, wantPM)
	}
}

func TestUGFNoCrossing(t *testing.T) {
	sys := sysFor(t, 1, 1e3, 1e-9) // unity DC gain lowpass
	an := NewAnalyzer(sys)
	wu, err := an.UGF("vin", "n1", "", 1e3, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if wu != 0 {
		t.Errorf("UGF = %g, want 0", wu)
	}
	pm, err := an.PhaseMarginDeg("vin", "n1", "", 1e3, 1e12)
	if err != nil || pm != 0 {
		t.Errorf("PM = %v, %v; want 0, nil", pm, err)
	}
}

func TestErrors(t *testing.T) {
	sys := sysFor(t, 1, 1e3, 1e-9)
	an := NewAnalyzer(sys)
	if _, err := an.TransferAt("nope", "n1", "", 1e3); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := an.TransferAt("vin", "nope", "", 1e3); err == nil {
		t.Error("unknown output must error")
	}
	if _, err := an.TransferAt("vin", "n1", "nope", 1e3); err == nil {
		t.Error("unknown neg output must error")
	}
}

func TestDifferentialTransfer(t *testing.T) {
	e1 := ckttest.E("e1", []string{"mid", "0", "in", "0"}, "-1")
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		e1,
		ckttest.E("r1", []string{"in", "op"}, "1k"),
		ckttest.E("r2", []string{"op", "0"}, "1k"),
		ckttest.E("r3", []string{"mid", "on"}, "1k"),
		ckttest.E("r4", []string{"on", "0"}, "1k"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(sys)
	h, err := an.TransferAt("vin", "op", "on", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-1) > 1e-12 {
		t.Errorf("differential H = %v, want 1", h)
	}
}
