package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultFlightRecords is the ring capacity used when a caller passes a
// non-positive size to NewFlightRecorder.
const DefaultFlightRecords = 2048

// MoveRecord is one flight-recorder entry, captured from the annealer's
// progress/trace stream. It is deliberately flat and JSON-friendly: the
// JSONL dump of a crashed job should be greppable with standard tools.
type MoveRecord struct {
	Run       int     `json:"run,omitempty"`
	Move      int     `json:"move"`
	MoveClass string  `json:"move_class,omitempty"`
	Accepted  bool    `json:"accepted"`
	DCost     float64 `json:"dcost"`
	Temp      float64 `json:"temp"`
	LamTarget float64 `json:"lam_target"`
	AccRatio  float64 `json:"acc_ratio"`
	Cost      float64 `json:"cost"`
	BestCost  float64 `json:"best_cost"`
	// Hustin holds the selector's per-move-class quality weights at the
	// time of the record.
	Hustin map[string]float64 `json:"hustin,omitempty"`
	// MaxKCLError is the largest KCL residual across nodes (the KCL
	// penalty driver).
	MaxKCLError float64 `json:"max_kcl_error,omitempty"`
	// WorstSpec names the most-violated non-objective spec at this move
	// and WorstSpecU its violation in normalized units (positive ⇒ failing).
	WorstSpec  string  `json:"worst_spec,omitempty"`
	WorstSpecU float64 `json:"worst_spec_u,omitempty"`
	Evals      int64   `json:"evals,omitempty"`
	// SpanID is the anneal span this record occurred under (empty when
	// tracing is off) — the exemplar link from a flight-recorder record
	// into the job's distributed trace.
	SpanID string `json:"span_id,omitempty"`
}

// FlightRecorder is a fixed-size ring buffer of MoveRecords, safe for
// one writer and any number of concurrent snapshot readers.
type FlightRecorder struct {
	mu    sync.Mutex
	recs  []MoveRecord
	start int
	n     int
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last `capacity`
// records (DefaultFlightRecords if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecords
	}
	return &FlightRecorder{recs: make([]MoveRecord, capacity)}
}

// Record appends rec, evicting the oldest entry once the ring is full.
func (r *FlightRecorder) Record(rec MoveRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.recs) {
		r.recs[(r.start+r.n)%len(r.recs)] = rec
		r.n++
	} else {
		r.recs[r.start] = rec
		r.start = (r.start + 1) % len(r.recs)
	}
	r.total++
}

// Snapshot returns the buffered records oldest-first.
func (r *FlightRecorder) Snapshot() []MoveRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MoveRecord, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.recs[(r.start+i)%len(r.recs)]
	}
	return out
}

// Len reports how many records are currently buffered.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total reports how many records were ever recorded, including evicted ones.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap reports the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.recs) }

// FlightSnapshot is the durable post-mortem artifact written to the state
// dir when the supervisor stalls, poisons, or deadline-kills a job, and
// the payload served for jobs whose live telemetry is gone (restart).
type FlightSnapshot struct {
	Version       int              `json:"version"`
	JobID         string           `json:"job_id,omitempty"`
	Cause         string           `json:"cause,omitempty"`
	Time          time.Time        `json:"time"`
	Attempt       int              `json:"attempt,omitempty"`
	SampleEvery   int              `json:"sample_every,omitempty"`
	TotalRecorded uint64           `json:"total_recorded"`
	Stages        []StageBreakdown `json:"stages,omitempty"`
	Moves         []MoveRecord     `json:"moves"`
}

// FlightSnapshotVersion is the current FlightSnapshot schema version.
const FlightSnapshotVersion = 1

// DecodeFlightSnapshot parses a snapshot previously produced with
// json.Marshal, rejecting payloads from a future schema.
func DecodeFlightSnapshot(data []byte) (*FlightSnapshot, error) {
	var snap FlightSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("flight snapshot: %w", err)
	}
	if snap.Version > FlightSnapshotVersion {
		return nil, fmt.Errorf("flight snapshot: version %d is newer than supported %d", snap.Version, FlightSnapshotVersion)
	}
	return &snap, nil
}

// WriteJSONL writes one JSON object per line for each record, the flight
// recorder's interchange format (served by /v1/jobs/{id}/telemetry/moves
// and written by oblx -trace-out).
func WriteJSONL(w io.Writer, recs []MoveRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}
