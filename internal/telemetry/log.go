package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the shared slog.Logger used by oblxd and the CLIs.
// format is "text" or "json"; level is "debug", "info", "warn", or
// "error". Callers attach request/job correlation attributes (req, job,
// attempt, state) per log site.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// discardHandler drops every record without formatting it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops everything; the default when
// a component is given no logger.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
