// Package telemetry provides the observability primitives shared by the
// synthesis engine and the oblxd daemon: sampled per-stage timing of the
// compiled cost-evaluation pipeline, a fixed-size flight recorder of
// annealer moves, and structured-logging construction helpers. Everything
// here is stdlib-only and designed to stay off the zero-allocation hot
// path: when sampling is disabled the instrumentation reduces to a nil
// check, and even an active sample performs no heap allocation.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage identifies one phase of the compiled evaluation pipeline, in
// execution order. The names mirror the ASTRX cost-evaluation flow:
// bias point, matrix stamping, LU refactorization, AWE moment
// recursion, Padé fit + root finding, and spec expression evaluation.
type Stage uint8

const (
	// StageBias covers node-voltage assignment, device operating-point
	// models, and KCL residual accumulation.
	StageBias Stage = iota
	// StageStamp covers per-jig G/C matrix stamping.
	StageStamp
	// StageFactor covers the numeric LU refactorization (sparse replay
	// or dense fallback).
	StageFactor
	// StageSolve covers triangular solves against the factorization:
	// the DC solve plus one back/forward substitution per AWE moment.
	StageSolve
	// StageMoments covers the AWE moment recursion per transfer function
	// (right-hand-side assembly between solves).
	StageMoments
	// StageFit covers the Padé fit, root finding, and stability check.
	StageFit
	// StageSpecs covers evaluation of the compiled spec expressions.
	StageSpecs

	// NumStages is the number of pipeline stages.
	NumStages = int(StageSpecs) + 1
)

var stageNames = [NumStages]string{"bias", "stamp", "factor", "solve", "moments", "fit", "specs"}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage names in pipeline order, indexed by Stage.
func StageNames() [NumStages]string { return stageNames }

// StageBuckets are histogram bucket bounds (seconds) suited to per-stage
// eval timings, which run from sub-microsecond stamps to multi-millisecond
// root-finding on large decks.
var StageBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
}

// StageBreakdown is one row of a cumulative per-stage timing summary.
type StageBreakdown struct {
	Stage        string  `json:"stage"`
	SampledEvals int64   `json:"sampled_evals"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// EvalTimer accumulates sampled per-stage timings across every evaluation
// workspace attached to it. One timer serves a whole job: RunBest's
// parallel runs each attach their own Clock, and the clocks funnel into
// the timer's atomic totals. The zero EvalTimer (and a nil one) is inert.
type EvalTimer struct {
	every    int
	totals   [NumStages]atomic.Int64 // nanoseconds
	counts   [NumStages]atomic.Int64 // sampled evals that exercised the stage
	onSample func(Stage, time.Duration)
}

// NewEvalTimer returns a timer that samples one in every `every`
// evaluations per attached clock. every <= 0 disables sampling entirely:
// the timer still exists but records nothing and its clocks are no-ops.
func NewEvalTimer(every int) *EvalTimer {
	return &EvalTimer{every: every}
}

// SampleEvery reports the sampling cadence (0 when disabled).
func (t *EvalTimer) SampleEvery() int {
	if t == nil || t.every <= 0 {
		return 0
	}
	return t.every
}

// OnSample registers fn to be called once per stage per sampled
// evaluation with the stage's measured duration. fn must be safe for
// concurrent use and must not allocate if the surrounding benchmark
// asserts a zero-alloc hot path. Set it before any clock runs; it is
// read without synchronization afterwards.
func (t *EvalTimer) OnSample(fn func(Stage, time.Duration)) { t.onSample = fn }

// Breakdown returns the cumulative per-stage summary for every stage
// that recorded at least one sample, in pipeline order.
func (t *EvalTimer) Breakdown() []StageBreakdown {
	if t == nil {
		return nil
	}
	var out []StageBreakdown
	for s := 0; s < NumStages; s++ {
		n := t.counts[s].Load()
		if n == 0 {
			continue
		}
		tot := float64(t.totals[s].Load()) * 1e-9
		out = append(out, StageBreakdown{
			Stage:        Stage(s).String(),
			SampledEvals: n,
			TotalSeconds: tot,
			MeanSeconds:  tot / float64(n),
		})
	}
	return out
}

// NewClock returns a clock feeding this timer. Each evaluation workspace
// (one per concurrent annealing run) needs its own clock; clocks are not
// safe for concurrent use, timers are.
func (t *EvalTimer) NewClock() *Clock {
	if t == nil || t.every <= 0 {
		return nil
	}
	return &Clock{t: t, every: t.every}
}

// Clock is the per-workspace half of the stage timer: unsynchronized
// scratch state written from exactly one goroutine. A nil *Clock is a
// valid no-op receiver for every method, so instrumented code can call
// Begin/Mark/End unconditionally.
type Clock struct {
	t       *EvalTimer
	every   int
	n       int
	active  bool
	mark    time.Time
	scratch [NumStages]int64
}

// Begin starts an evaluation. One in every `every` calls arms the clock;
// the rest (and every call on a nil clock) return immediately.
func (c *Clock) Begin() {
	if c == nil {
		return
	}
	c.n++
	if c.n%c.every != 0 {
		c.active = false
		return
	}
	c.active = true
	for i := range c.scratch {
		c.scratch[i] = 0
	}
	c.mark = time.Now()
}

// Mark attributes the time elapsed since the previous Mark (or Begin) to
// stage s. Stages hit multiple times per evaluation (per-jig stamping,
// per-TF moments) accumulate.
func (c *Clock) Mark(s Stage) {
	if c == nil || !c.active {
		return
	}
	now := time.Now()
	c.scratch[s] += now.Sub(c.mark).Nanoseconds()
	c.mark = now
}

// End finishes an armed evaluation, flushing the scratch timings into the
// shared timer and firing the timer's OnSample callback per stage hit.
// Evaluations abandoned mid-pipeline (error paths return before End) are
// discarded at the next Begin.
func (c *Clock) End() {
	if c == nil || !c.active {
		return
	}
	c.active = false
	fn := c.t.onSample
	for s := 0; s < NumStages; s++ {
		ns := c.scratch[s]
		if ns == 0 {
			continue
		}
		c.t.totals[s].Add(ns)
		c.t.counts[s].Add(1)
		if fn != nil {
			fn(Stage(s), time.Duration(ns))
		}
	}
}
