package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"bias", "stamp", "factor", "solve", "moments", "fit", "specs"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Errorf("out-of-range stage should stringify as unknown")
	}
	if len(want) != NumStages {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
}

func TestEvalTimerSamplingCadence(t *testing.T) {
	timer := NewEvalTimer(4)
	c := timer.NewClock()
	const evals = 40
	for i := 0; i < evals; i++ {
		c.Begin()
		c.Mark(StageBias)
		c.Mark(StageSpecs)
		c.End()
	}
	bd := timer.Breakdown()
	if len(bd) != 2 {
		t.Fatalf("breakdown has %d stages, want 2: %+v", len(bd), bd)
	}
	for _, row := range bd {
		if row.SampledEvals != evals/4 {
			t.Errorf("stage %s sampled %d evals, want %d", row.Stage, row.SampledEvals, evals/4)
		}
		if row.TotalSeconds < 0 || row.MeanSeconds < 0 {
			t.Errorf("stage %s has negative timing: %+v", row.Stage, row)
		}
	}
	if got := timer.SampleEvery(); got != 4 {
		t.Errorf("SampleEvery = %d, want 4", got)
	}
}

func TestEvalTimerDisabledAndNil(t *testing.T) {
	if c := NewEvalTimer(0).NewClock(); c != nil {
		t.Fatalf("disabled timer should hand out nil clocks")
	}
	var timer *EvalTimer
	if timer.SampleEvery() != 0 || timer.Breakdown() != nil || timer.NewClock() != nil {
		t.Fatalf("nil timer methods should be inert")
	}
	// All clock methods must be safe on a nil receiver.
	var c *Clock
	c.Begin()
	c.Mark(StageFactor)
	c.End()
}

func TestEvalTimerAbandonedEvalDiscarded(t *testing.T) {
	timer := NewEvalTimer(1)
	c := timer.NewClock()
	c.Begin()
	c.Mark(StageBias)
	// No End: simulates an error path bailing out mid-pipeline.
	c.Begin()
	c.Mark(StageStamp)
	c.End()
	bd := timer.Breakdown()
	if len(bd) != 1 || bd[0].Stage != "stamp" {
		t.Fatalf("abandoned eval leaked into breakdown: %+v", bd)
	}
}

func TestEvalTimerOnSample(t *testing.T) {
	timer := NewEvalTimer(1)
	var mu sync.Mutex
	seen := map[Stage]int{}
	timer.OnSample(func(s Stage, d time.Duration) {
		if d <= 0 {
			t.Errorf("non-positive sample duration for %s", s)
		}
		mu.Lock()
		seen[s]++
		mu.Unlock()
	})
	c := timer.NewClock()
	for i := 0; i < 3; i++ {
		c.Begin()
		time.Sleep(time.Microsecond)
		c.Mark(StageFit)
		c.End()
	}
	if seen[StageFit] != 3 {
		t.Fatalf("OnSample fired %d times for fit, want 3", seen[StageFit])
	}
}

func TestEvalTimerConcurrentClocks(t *testing.T) {
	timer := NewEvalTimer(1)
	const workers, evals = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := timer.NewClock()
			for i := 0; i < evals; i++ {
				c.Begin()
				c.Mark(StageFactor)
				c.End()
			}
		}()
	}
	wg.Wait()
	bd := timer.Breakdown()
	if len(bd) != 1 || bd[0].SampledEvals != workers*evals {
		t.Fatalf("want %d lu samples, got %+v", workers*evals, bd)
	}
}

func TestClockZeroAlloc(t *testing.T) {
	timer := NewEvalTimer(1)
	c := timer.NewClock()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Begin()
		c.Mark(StageBias)
		c.Mark(StageFactor)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("armed clock allocates %.1f/op, want 0", allocs)
	}
	var nilClock *Clock
	allocs = testing.AllocsPerRun(1000, func() {
		nilClock.Begin()
		nilClock.Mark(StageBias)
		nilClock.End()
	})
	if allocs != 0 {
		t.Fatalf("nil clock allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightRecorderWrapOrder(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(MoveRecord{Move: i})
	}
	if r.Len() != 4 || r.Total() != 10 || r.Cap() != 4 {
		t.Fatalf("len=%d total=%d cap=%d, want 4/10/4", r.Len(), r.Total(), r.Cap())
	}
	snap := r.Snapshot()
	for i, rec := range snap {
		if want := 7 + i; rec.Move != want {
			t.Fatalf("snapshot[%d].Move = %d, want %d (snap %+v)", i, rec.Move, want, snap)
		}
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightRecords {
		t.Fatalf("default capacity %d, want %d", got, DefaultFlightRecords)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Record(MoveRecord{Move: i})
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap := r.Snapshot()
				for j := 1; j < len(snap); j++ {
					if snap[j].Move != snap[j-1].Move+1 {
						t.Errorf("snapshot out of order at %d: %d then %d", j, snap[j-1].Move, snap[j].Move)
						return
					}
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestFlightSnapshotRoundTrip(t *testing.T) {
	snap := &FlightSnapshot{
		Version:       FlightSnapshotVersion,
		JobID:         "job-1",
		Cause:         "stall",
		Time:          time.Unix(1700000000, 0).UTC(),
		Attempt:       2,
		SampleEvery:   64,
		TotalRecorded: 12,
		Stages:        []StageBreakdown{{Stage: "factor", SampledEvals: 3, TotalSeconds: 0.5, MeanSeconds: 0.5 / 3}},
		Moves:         []MoveRecord{{Move: 500, MoveClass: "var", Accepted: true, DCost: -0.25}},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFlightSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != snap.JobID || got.Cause != snap.Cause || len(got.Moves) != 1 || got.Moves[0].Move != 500 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeFlightSnapshot([]byte(`{"version": 99}`)); err == nil {
		t.Fatalf("future snapshot version should be rejected")
	}
	if _, err := DecodeFlightSnapshot([]byte(`{garbage`)); err == nil {
		t.Fatalf("garbage snapshot should be rejected")
	}
}

func TestWriteJSONL(t *testing.T) {
	recs := []MoveRecord{
		{Move: 1, MoveClass: "var", Accepted: true, DCost: -1, Hustin: map[string]float64{"var": 0.5}},
		{Move: 2, MoveClass: "swap", Accepted: false, DCost: 2.5, WorstSpec: "gain", WorstSpecU: 1.5},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var rec MoveRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines+1, err)
		}
		lines++
		if rec.Move != lines {
			t.Errorf("line %d decoded Move %d", lines, rec.Move)
		}
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "job", "j1", "attempt", 2)
	var rec map[string]any
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("output not one JSON line (%q): %v", line, err)
	}
	if rec["msg"] != "kept" || rec["job"] != "j1" {
		t.Fatalf("unexpected record: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("dropped at default level")
	lg.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") || strings.Contains(buf.String(), "dropped") {
		t.Fatalf("text logger output wrong: %q", buf.String())
	}

	for _, bad := range [][2]string{{"yaml", "info"}, {"text", "loud"}} {
		if _, err := NewLogger(&buf, bad[0], bad[1]); err == nil {
			t.Errorf("NewLogger(%q, %q) should fail", bad[0], bad[1])
		}
	}
}

func TestDiscardLogger(t *testing.T) {
	lg := DiscardLogger()
	// Must be usable (no panic) and genuinely disabled at every level.
	lg.Debug("x")
	lg.With("k", "v").WithGroup("g").Error("y", "err", fmt.Errorf("boom"))
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatalf("discard logger claims to be enabled")
	}
}
