// Package eqbase is the equation-based prior-approach stand-in used by
// experiment E5 (Fig. 3): a miniature OASYS/OPASYN-style synthesis
// procedure for the Simple OTA built from hand-derived square-law design
// equations. It embodies the workflow the paper argues against — the
// equations below took "designer effort" to derive and are only as
// accurate as the square-law model, so their performance predictions
// diverge from detailed simulation on a short-channel process. The
// divergence, measured against the same reference simulator used to
// verify OBLX results, reproduces the left-hand cluster of Fig. 3.
package eqbase

import (
	"fmt"
	"math"

	"astrx/internal/astrx"
	"astrx/internal/bench"
	"astrx/internal/devices"
	"astrx/internal/netlist"
	"astrx/internal/verify"
)

// EquationLines is the size of the hand-derived design-equation "library"
// below, in source lines — the preparatory-effort proxy Fig. 3 plots.
// (The paper equates 1000 lines of circuit-specific code to a month of
// designer time; these ~140 lines for ONE fixed topology make the point
// at miniature scale. An industrial equation library covers many corner
// cases and runs to thousands of lines.)
const EquationLines = 140

// Targets are the user's performance targets for the OTA design
// procedure.
type Targets struct {
	GBWHz   float64 // unity-gain bandwidth target (Hz)
	SR      float64 // slew rate (V/s)
	CL      float64 // load capacitance (F)
	VovLoad float64 // chosen load overdrive (V); 0 → 0.3
	L       float64 // channel length to use everywhere; 0 → 4 µm
}

// SquareLawProcess is the designer's simplified view of the process: the
// handful of numbers a textbook flow extracts from the full model deck.
type SquareLawProcess struct {
	KPn, KPp         float64 // µ·Cox (A/V²)
	VTn, VTp         float64 // thresholds (V)
	LambdaN, LambdaP float64 // channel-length modulation (1/V)
	Vdd, Vss         float64
}

// ExtractSquareLaw pulls square-law parameters out of a process
// library's Level-1 cards, the way a designer reads nominal numbers off
// a process summary sheet.
func ExtractSquareLaw(lib string) (SquareLawProcess, error) {
	cards, err := devices.Library(lib)
	if err != nil {
		return SquareLawProcess{}, err
	}
	n, p := cards["nmos1"], cards["pmos1"]
	if n == nil || p == nil {
		return SquareLawProcess{}, fmt.Errorf("eqbase: library %q lacks level-1 cards", lib)
	}
	cox := devices.EpsOx / n.P("tox", 40e-9)
	coxP := devices.EpsOx / p.P("tox", 40e-9)
	return SquareLawProcess{
		KPn:     n.P("u0", 600) * 1e-4 * cox,
		KPp:     p.P("u0", 250) * 1e-4 * coxP,
		VTn:     n.P("vto", 0.8),
		VTp:     p.P("vto", 0.9),
		LambdaN: n.P("lambda", 0.04),
		LambdaP: p.P("lambda", 0.05),
		Vdd:     2.5,
		Vss:     -2.5,
	}, nil
}

// Design is the sized OTA with the equations' performance predictions.
type Design struct {
	// Device sizes and bias (deck variable values).
	W1, L1, W3, L3, W5, L5, Ib float64

	// Performance as the equations predict it.
	PredGainDB float64
	PredGBWHz  float64
	PredPM     float64
	PredSR     float64
	PredPower  float64
	PredSwing  float64
}

// DesignOTA runs the square-law design procedure — the equation core a
// prior-approach tool executes in milliseconds once someone has spent
// the weeks deriving and coding it.
func DesignOTA(t Targets, p SquareLawProcess) (*Design, error) {
	if t.CL <= 0 || t.GBWHz <= 0 || t.SR <= 0 {
		return nil, fmt.Errorf("eqbase: targets must be positive")
	}
	if t.VovLoad == 0 {
		t.VovLoad = 0.3
	}
	if t.L == 0 {
		t.L = 4e-6
	}

	d := &Design{L1: t.L, L3: t.L, L5: t.L}

	// 1. Tail current from the slew-rate requirement: SR = I/CL.
	itail := t.SR * t.CL

	// 2. Input-pair transconductance from GBW: gm1 = 2π·GBW·CL.
	gm1 := 2 * math.Pi * t.GBWHz * t.CL

	// A feasibility nudge a real tool would also make: gm/Id is bounded
	// in strong inversion, so raise the tail current until vov1 ≥ 150 mV.
	if vov := 2 * (itail / 2) / gm1; vov < 0.15 {
		itail = 0.15 * gm1
	}
	id1 := itail / 2

	// 3. Pair sizing from the square law: W/L = gm²/(2·kp·Id).
	wl1 := gm1 * gm1 / (2 * p.KPn * id1)
	d.W1 = wl1 * d.L1

	// 4. Mirror load sized for the chosen overdrive.
	wl3 := itail / (p.KPp * t.VovLoad * t.VovLoad)
	d.W3 = wl3 * d.L3

	// 5. Tail and reference devices at the same overdrive.
	wl5 := 2 * itail / (p.KPn * t.VovLoad * t.VovLoad)
	d.W5 = wl5 * d.L5
	d.Ib = itail

	// 6. Performance prediction — with the classic simplifications:
	// square-law output conductance gds = λ·Id, a single-pole response,
	// and a 90° phase margin by assumption.
	gain := gm1 / ((p.LambdaN + p.LambdaP) * id1)
	d.PredGainDB = 20 * math.Log10(gain)
	d.PredGBWHz = gm1 / (2 * math.Pi * t.CL) // = t.GBWHz by construction
	d.PredPM = 90
	d.PredSR = itail / t.CL
	d.PredPower = (p.Vdd - p.Vss) * 2 * itail
	vov1 := 2 * id1 / gm1
	d.PredSwing = (p.Vdd - p.Vss) - 2*t.VovLoad - vov1

	// Clamp sizes into the deck's variable ranges.
	clamp := func(v, lo, hi float64) float64 {
		return math.Max(lo, math.Min(hi, v))
	}
	d.W1 = clamp(d.W1, 2e-6, 500e-6)
	d.W3 = clamp(d.W3, 2e-6, 500e-6)
	d.W5 = clamp(d.W5, 2e-6, 500e-6)
	d.Ib = clamp(d.Ib, 2e-6, 250e-6)
	return d, nil
}

// Evaluation compares the equations' predictions with the reference
// simulator on the real (Level 3) models.
type Evaluation struct {
	Design *Design
	// Simulated performance of the equation-designed circuit.
	SimGainDB, SimGBWHz, SimPM, SimSR, SimPower, SimSwing float64
	// Errors: |pred - sim| / |sim| per metric, and the worst case —
	// the "prediction error" axis of Fig. 3.
	GainErr, GBWErr, PMErr, SRErr, PowerErr float64
	WorstErr                                float64
}

// Evaluate instantiates the equation-based design into the Simple OTA
// benchmark deck and measures its true performance with the reference
// simulator (Newton bias + AC sweeps on the Level 3 models).
func Evaluate(d *Design) (*Evaluation, error) {
	src := bench.SimpleOTASource("c2u", "nmos3", "pmos3")
	deck, err := netlist.Parse(src)
	if err != nil {
		return nil, err
	}
	comp, err := astrx.Compile(deck, astrx.CostOptions{})
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(comp.Vars()))
	vals := map[string]float64{
		"W1": d.W1, "L1": d.L1, "W3": d.W3, "L3": d.L3,
		"W5": d.W5, "L5": d.L5, "Ib": d.Ib,
	}
	for i, v := range comp.Vars() {
		if i < comp.NUser {
			x[i] = vals[v.Name]
			continue
		}
		x[i] = 0 // node voltages: let the reference Newton solve find them
	}
	st := comp.Evaluate(x)
	rep, err := verify.Design(comp, x, st.SpecVals)
	if err != nil {
		return nil, fmt.Errorf("eqbase: reference simulation: %w", err)
	}

	ev := &Evaluation{Design: d}
	get := func(name string) float64 {
		if row := rep.Spec(name); row != nil {
			return row.Simulated
		}
		return math.NaN()
	}
	ev.SimGainDB = get("adm")
	ev.SimGBWHz = get("gbw")
	ev.SimPM = get("pm")
	ev.SimSR = get("sr")
	ev.SimPower = get("pwr")
	ev.SimSwing = get("swing")

	rel := func(pred, sim float64) float64 {
		if sim == 0 || math.IsNaN(sim) {
			return math.NaN()
		}
		return math.Abs(pred-sim) / math.Abs(sim)
	}
	ev.GainErr = rel(d.PredGainDB, ev.SimGainDB) // dB-vs-dB, like Fig. 3
	ev.GBWErr = rel(d.PredGBWHz, ev.SimGBWHz)
	ev.PMErr = rel(d.PredPM, ev.SimPM)
	ev.SRErr = rel(d.PredSR, ev.SimSR)
	ev.PowerErr = rel(d.PredPower, ev.SimPower)
	for _, e := range []float64{ev.GainErr, ev.GBWErr, ev.PMErr, ev.SRErr, ev.PowerErr} {
		if !math.IsNaN(e) && e > ev.WorstErr {
			ev.WorstErr = e
		}
	}
	return ev, nil
}
