package eqbase

import (
	"math"
	"testing"
)

func TestExtractSquareLaw(t *testing.T) {
	p, err := ExtractSquareLaw("c2u")
	if err != nil {
		t.Fatal(err)
	}
	if p.KPn <= p.KPp {
		t.Errorf("KPn (%g) should exceed KPp (%g)", p.KPn, p.KPp)
	}
	if p.VTn <= 0 || p.VTp <= 0 {
		t.Error("thresholds must be positive (magnitude convention)")
	}
	if _, err := ExtractSquareLaw("nosuch"); err == nil {
		t.Error("unknown library must error")
	}
}

func TestDesignOTAEquations(t *testing.T) {
	p, _ := ExtractSquareLaw("c2u")
	d, err := DesignOTA(Targets{GBWHz: 10e6, SR: 10e6, CL: 1e-12}, p)
	if err != nil {
		t.Fatal(err)
	}
	// The procedure honors its own equations.
	gm1 := 2 * math.Pi * 10e6 * 1e-12
	wl1 := d.W1 / d.L1
	id1 := d.Ib / 2
	gmCheck := math.Sqrt(2 * p.KPn * wl1 * id1)
	if math.Abs(gmCheck-gm1)/gm1 > 0.05 {
		t.Errorf("pair sizing inconsistent: gm = %g, want %g", gmCheck, gm1)
	}
	if math.Abs(d.PredGBWHz-10e6) > 1 {
		t.Errorf("PredGBW = %g", d.PredGBWHz)
	}
	if d.PredPM != 90 {
		t.Errorf("PredPM = %g — the single-pole assumption is the point", d.PredPM)
	}
	if d.PredSR < 10e6*0.99 {
		t.Errorf("PredSR = %g", d.PredSR)
	}
	// Errors.
	if _, err := DesignOTA(Targets{}, p); err == nil {
		t.Error("zero targets must error")
	}
}

func TestEquationPredictionsDivergeFromSimulation(t *testing.T) {
	// The Fig. 3 story: square-law predictions on a short-channel
	// process are substantially wrong, while (tested elsewhere) the
	// AWE-based flow matches simulation almost exactly.
	p, _ := ExtractSquareLaw("c2u")
	d, err := DesignOTA(Targets{GBWHz: 20e6, SR: 15e6, CL: 1e-12}, p)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	// The circuit must at least function as an amplifier…
	if ev.SimGainDB < 10 {
		t.Fatalf("equation-based design is dead: gain %g dB", ev.SimGainDB)
	}
	// …but the predictions should be off by at least several percent
	// worst-case (the paper's prior-work cluster sits at 10–200%).
	if ev.WorstErr < 0.05 {
		t.Errorf("worst prediction error = %.1f%% — square law should not be this good on Level 3 models", ev.WorstErr*100)
	}
	if ev.WorstErr > 5 {
		t.Errorf("worst prediction error = %.0f%% — implausibly broken", ev.WorstErr*100)
	}
}
