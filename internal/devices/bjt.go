package devices

import "math"

// BJTParams is the Gummel-Poon model card parameter set.
type BJTParams struct {
	Name string
	Kind DeviceType // NPN or PNP

	IS  float64 // transport saturation current (A)
	BF  float64 // forward beta
	BR  float64 // reverse beta
	VAF float64 // forward Early voltage (V); 0 → infinite
	VAR float64 // reverse Early voltage (V); 0 → infinite
	NF  float64 // forward emission coefficient
	NR  float64 // reverse emission coefficient
	TF  float64 // forward transit time (s)
	CJE float64 // B-E zero-bias junction cap (F)
	VJE float64 // B-E junction potential (V)
	MJE float64 // B-E grading
	CJC float64 // B-C zero-bias junction cap (F)
	VJC float64 // B-C junction potential (V)
	MJC float64 // B-C grading
}

// Normalize applies SPICE defaults in place.
func (p *BJTParams) Normalize() *BJTParams {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.IS, 1e-16)
	def(&p.BF, 100)
	def(&p.BR, 1)
	def(&p.NF, 1)
	def(&p.NR, 1)
	def(&p.VJE, 0.75)
	def(&p.MJE, 0.33)
	def(&p.VJC, 0.75)
	def(&p.MJC, 0.33)
	return p
}

// BJTModel is the encapsulated Gummel-Poon evaluator.
type BJTModel struct {
	P BJTParams
}

// NewBJT builds a Gummel-Poon model from parameters.
func NewBJT(p BJTParams) *BJTModel {
	p.Normalize()
	return &BJTModel{P: p}
}

// ModelName returns the model card name.
func (m *BJTModel) ModelName() string { return m.P.Name }

// Type returns NPN or PNP.
func (m *BJTModel) Type() DeviceType { return m.P.Kind }

// BJTCore holds polarity-normalized collector and base currents.
type BJTCore struct {
	Ic, Ib float64
}

// Core evaluates the DC Gummel-Poon equations at polarity-normalized
// junction voltages (vbe, vbc).
func (m *BJTModel) Core(vbe, vbc, area float64) BJTCore {
	p := &m.P
	if area <= 0 {
		area = 1
	}
	is := p.IS * area
	ef := limexp(vbe/(p.NF*Vt)) - 1
	er := limexp(vbc/(p.NR*Vt)) - 1
	// Base-width modulation (Early effect) via qb.
	qb := 1.0
	if p.VAF > 0 {
		qb /= (1 - vbc/p.VAF)
	}
	if p.VAR > 0 {
		qb /= (1 - vbe/p.VAR)
	}
	if qb < 1e-3 {
		qb = 1e-3
	}
	icc := is * (ef - er) / qb
	ic := icc - is/p.BR*er
	ib := is/p.BF*ef + is/p.BR*er
	return BJTCore{Ic: ic, Ib: ib}
}

// BJTOp is the full terminal-polarity operating point of a BJT
// instance.
type BJTOp struct {
	// Ic and Ib are signed terminal currents into collector and base.
	Ic, Ib float64
	// Small-signal parameters (S and F), polarity-invariant.
	Gm, Gpi, Go, Gmu float64
	Cpi, Cmu         float64
	// Vbe, Vbc echo the normalized junction voltages.
	Vbe, Vbc float64
	// Forward reports normal forward-active operation.
	Forward bool
}

// EvalBJT evaluates the model at raw terminal voltages (vc, vb, ve),
// handling polarity and deriving small-signal parameters by finite
// differences.
func EvalBJT(m *BJTModel, area float64, vc, vb, ve float64) BJTOp {
	pol := m.Type().Polarity()
	vbe := pol * (vb - ve)
	vbc := pol * (vb - vc)
	core := m.Core(vbe, vbc, area)

	const dv = 1e-6
	ic := func(e, c float64) float64 { return m.Core(e, c, area).Ic }
	ib := func(e, c float64) float64 { return m.Core(e, c, area).Ib }
	gmE := (ic(vbe+dv, vbc) - ic(vbe-dv, vbc)) / (2 * dv) // ∂Ic/∂Vbe
	gmC := (ic(vbe, vbc+dv) - ic(vbe, vbc-dv)) / (2 * dv) // ∂Ic/∂Vbc
	gpi := (ib(vbe+dv, vbc) - ib(vbe-dv, vbc)) / (2 * dv) // ∂Ib/∂Vbe
	gmu := (ib(vbe, vbc+dv) - ib(vbe, vbc-dv)) / (2 * dv) // ∂Ib/∂Vbc

	// Map junction-referenced derivatives to hybrid-π parameters:
	// Ic(vbe, vbc) with vce = vbe - vbc. go = ∂Ic/∂Vce|vbe = -gmC,
	// gm = ∂Ic/∂Vbe|vce = gmE + gmC.
	op := BJTOp{
		Ic:      pol * core.Ic,
		Ib:      pol * core.Ib,
		Gm:      gmE + gmC,
		Gpi:     gpi,
		Go:      -gmC,
		Gmu:     gmu,
		Vbe:     vbe,
		Vbc:     vbc,
		Forward: vbe > 0.4 && vbc < 0.2,
	}
	p := &m.P
	if area <= 0 {
		area = 1
	}
	// Diffusion + junction capacitances.
	op.Cpi = p.TF*math.Abs(op.Gm) + junctionCap(p.CJE*area, 0, vbe, p.VJE, p.MJE, 0.33)
	op.Cmu = junctionCap(p.CJC*area, 0, vbc, p.VJC, p.MJC, 0.33)
	return op
}
