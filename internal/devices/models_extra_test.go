package devices

import (
	"math"
	"testing"
	"testing/quick"
)

// Small-signal consistency: the finite-difference conductances reported
// by EvalMOS must match independent finite differences of the terminal
// current for all three models, across random biases.
func TestSmallSignalConsistencyProperty(t *testing.T) {
	models := []MOSModel{
		NewLevel1(MOSParams{Name: "n1", Kind: NMOS, VTO: 0.8, KP: 50e-6, Lambda: 0.04}),
		NewLevel3(MOSParams{Name: "n3", Kind: NMOS, VTO: 0.8, U0: 620,
			Theta: 0.055, Vmax: 1.6e5, Kappa: 0.05, Eta: 0.25}),
		NewBSIM(MOSParams{Name: "nb", Kind: NMOS, VTO: 0.83, U0: 570, K1: 0.52}),
	}
	g := MOSGeom{W: 20e-6, L: 2e-6}
	f := func(a, b, c uint16) bool {
		vd := 0.3 + float64(a%40)/10 // 0.3..4.2 (forward region, no swap)
		vg := 0.5 + float64(b%35)/10
		vb := -float64(c%20) / 10
		for _, m := range models {
			op := EvalMOS(m, g, vd, vg, 0, vb)
			const dv = 1e-4
			up := EvalMOS(m, g, vd, vg+dv, 0, vb).Ids
			dn := EvalMOS(m, g, vd, vg-dv, 0, vb).Ids
			gmFD := (up - dn) / (2 * dv)
			scale := math.Abs(op.Gm) + math.Abs(gmFD) + 1e-12
			if math.Abs(op.Gm-gmFD)/scale > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The three models must agree on broad physics even while disagreeing in
// detail: current through zero at vds=0, and gm > 0 in strong inversion.
func TestModelsPhysicalInvariants(t *testing.T) {
	models := []MOSModel{
		NewLevel1(MOSParams{Name: "n1", Kind: NMOS, VTO: 0.8, KP: 50e-6}),
		NewLevel3(MOSParams{Name: "n3", Kind: NMOS, VTO: 0.8, U0: 620,
			Theta: 0.055, Vmax: 1.6e5, Eta: 0.25}),
		NewBSIM(MOSParams{Name: "nb", Kind: NMOS, VTO: 0.83, U0: 570, K1: 0.52}),
	}
	g := MOSGeom{W: 20e-6, L: 2e-6}
	for _, m := range models {
		core := m.Core(MOSBias{Vgs: 2, Vds: 0, Vbs: 0}, g)
		if core.Ids != 0 {
			t.Errorf("%s: Ids(vds=0) = %g, want 0", m.ModelName(), core.Ids)
		}
		op := EvalMOS(m, g, 2.5, 2, 0, 0)
		if op.Gm <= 0 {
			t.Errorf("%s: gm = %g in strong inversion", m.ModelName(), op.Gm)
		}
		if op.Vdsat <= 0 {
			t.Errorf("%s: vdsat = %g", m.ModelName(), op.Vdsat)
		}
	}
}

// Body effect raises the threshold under reverse body bias in all models.
func TestBodyEffect(t *testing.T) {
	models := []MOSModel{
		NewLevel1(MOSParams{Name: "n1", Kind: NMOS, VTO: 0.8, Gamma: 0.45, Phi: 0.66}),
		NewLevel3(MOSParams{Name: "n3", Kind: NMOS, VTO: 0.8, Gamma: 0.45, Phi: 0.66, U0: 620}),
		NewBSIM(MOSParams{Name: "nb", Kind: NMOS, VTO: 0.8, Gamma: 0.45, Phi: 0.66, K1: 0.5}),
	}
	g := MOSGeom{W: 10e-6, L: 2e-6}
	for _, m := range models {
		v0 := m.Core(MOSBias{Vgs: 1.5, Vds: 2, Vbs: 0}, g).Vth
		vr := m.Core(MOSBias{Vgs: 1.5, Vds: 2, Vbs: -2}, g).Vth
		if vr <= v0 {
			t.Errorf("%s: Vth(vbs=-2) = %g not above Vth(0) = %g", m.ModelName(), vr, v0)
		}
	}
}

// Gate-area capacitance scales with W·L; junction caps with W.
func TestCapScaling(t *testing.T) {
	m := NewLevel1(MOSParams{Name: "n", Kind: NMOS, VTO: 0.8, KP: 50e-6, CJ: 2.4e-4})
	small := EvalMOS(m, MOSGeom{W: 10e-6, L: 2e-6}, 2.5, 2, 0, 0)
	big := EvalMOS(m, MOSGeom{W: 20e-6, L: 4e-6}, 2.5, 2, 0, 0)
	if r := big.Caps.Cgs / small.Caps.Cgs; math.Abs(r-4) > 0.3 {
		t.Errorf("Cgs scaling = %g, want ≈ 4 (2x W · 2x L)", r)
	}
	if r := big.Caps.Cdb / small.Caps.Cdb; math.Abs(r-2) > 0.2 {
		t.Errorf("Cdb scaling = %g, want ≈ 2 (2x W)", r)
	}
	// Multiplier acts like parallel devices.
	m2 := EvalMOS(m, MOSGeom{W: 10e-6, L: 2e-6, M: 2}, 2.5, 2, 0, 0)
	if r := m2.Ids / small.Ids; math.Abs(r-2) > 0.01 {
		t.Errorf("M=2 current scaling = %g, want 2", r)
	}
}

// BSIM DIBL: Vth falls with Vds.
func TestBSIMDIBL(t *testing.T) {
	m := NewBSIM(MOSParams{Name: "nb", Kind: NMOS, VTO: 0.8, K1: 0.5, Eta: 0.02, U0: 570})
	g := MOSGeom{W: 10e-6, L: 1.2e-6}
	lo := m.Core(MOSBias{Vgs: 1.2, Vds: 0.1}, g).Vth
	hi := m.Core(MOSBias{Vgs: 1.2, Vds: 4}, g).Vth
	if hi >= lo {
		t.Errorf("BSIM DIBL missing: Vth %g → %g", lo, hi)
	}
}

// Softplus helper sanity: smooth, positive, asymptotically linear.
func TestSoftplus(t *testing.T) {
	nvt := 0.036
	if v := softplus2(1.0, nvt); math.Abs(v-1.0) > 0.01 {
		t.Errorf("softplus2(1) = %g, want ≈ 1", v)
	}
	if v := softplus2(-1.0, nvt); v <= 0 || v > 1e-5 {
		t.Errorf("softplus2(-1) = %g, want tiny positive", v)
	}
	if v := softplus2(100, nvt); v != 100 {
		t.Errorf("softplus2(100) = %g (overflow guard)", v)
	}
	if v := softplus2(-100, nvt); v <= 0 {
		t.Errorf("softplus2(-100) = %g must stay positive", v)
	}
	// sqrtPos: smooth clamped sqrt.
	if v := sqrtPos(4, 1e-3); math.Abs(v-2) > 1e-3 {
		t.Errorf("sqrtPos(4) = %g", v)
	}
	if v := sqrtPos(-5, 1e-3); v <= 0 || v > 0.1 {
		t.Errorf("sqrtPos(-5) = %g, want small positive", v)
	}
}
