package devices

// Level1 is the classic square-law MOS model (SPICE Level 1 / Shichman-
// Hodges) with channel-length modulation and an EKV-style smooth
// subthreshold tail. It is the model whose simplifications the paper
// argues are "grossly inaccurate" for submicron devices — included both
// as a baseline and because the equation-based prior approaches the
// benchmarks compare against are built on it.
type Level1 struct {
	P MOSParams
}

// NewLevel1 builds a Level 1 model from parameters (normalizing
// defaults).
func NewLevel1(p MOSParams) *Level1 {
	p.Normalize()
	return &Level1{P: p}
}

// ModelName returns the model card name.
func (m *Level1) ModelName() string { return m.P.Name }

// Type returns the device polarity.
func (m *Level1) Type() DeviceType { return m.P.Kind }

// Level returns 1.
func (m *Level1) Level() int { return 1 }

// Series returns the per-instance parasitic resistances.
func (m *Level1) Series(g MOSGeom) (rd, rs float64) {
	w := g.W * g.Mult()
	if w <= 0 {
		return 0, 0
	}
	return m.P.RDW / w, m.P.RSW / w
}

// Core evaluates the square-law equations.
func (m *Level1) Core(b MOSBias, g MOSGeom) MOSCore {
	p := &m.P
	vth := p.VTO + p.vthBody(b.Vbs)
	nvt := p.NSub * Vt
	voveff := softplus2(b.Vgs-vth, nvt)
	beta := p.KP * g.W * g.Mult() / p.Leff(g.L)

	vdsat := voveff
	var ids float64
	if b.Vds < vdsat {
		ids = beta * (voveff - b.Vds/2) * b.Vds * (1 + p.Lambda*b.Vds)
	} else {
		ids = beta / 2 * voveff * voveff * (1 + p.Lambda*b.Vds)
	}
	return MOSCore{Ids: ids, Vth: vth, Vdsat: vdsat}
}

// Caps returns Meyer + junction capacitances.
func (m *Level1) Caps(b MOSBias, g MOSGeom, core MOSCore) MOSCaps {
	return m.P.meyerCaps(b, g, core)
}
