package devices

import "math"

// MOSParams is the superset of model-card parameters used by the three
// MOS models. Unset parameters keep SPICE-style defaults applied by
// Normalize.
type MOSParams struct {
	Name string
	Kind DeviceType // NMOS or PMOS

	// Threshold / body effect.
	VTO   float64 // zero-bias threshold (V, positive for both types)
	Gamma float64 // body-effect coefficient (V^0.5)
	Phi   float64 // surface potential (V)

	// Transconductance.
	KP  float64 // intrinsic transconductance (A/V²); 0 → derived from U0
	U0  float64 // low-field mobility (cm²/V·s)
	Tox float64 // oxide thickness (m)

	// Second-order effects.
	Lambda float64 // channel-length modulation (1/V) — Level 1
	Theta  float64 // mobility degradation (1/V) — Level 3
	Vmax   float64 // velocity saturation (m/s) — Level 3
	Kappa  float64 // saturation-region slope — Level 3
	Eta    float64 // static feedback on Vth — Level 3 / BSIM
	K1     float64 // BSIM body effect, first order (V^0.5)
	K2     float64 // BSIM body effect, second order
	MobDeg float64 // BSIM gate-field mobility degradation (1/V)
	PCLM   float64 // BSIM output-conductance (channel-length modulation)

	// Subthreshold.
	NSub float64 // subthreshold slope factor n (dimensionless, ≥ 1)

	// Geometry adjustments.
	LD float64 // lateral diffusion (m)

	// Parasitic series resistance (Ω·m of width: R = RSH/W form kept
	// simple: RDW/W).
	RDW, RSW float64 // Ω·m; per-instance RD = RDW / W

	// Capacitance.
	CGSO, CGDO, CGBO float64 // overlap caps (F/m)
	CJ               float64 // junction area cap (F/m²)
	MJ               float64 // junction grading
	CJSW             float64 // junction sidewall cap (F/m)
	MJSW             float64 // sidewall grading
	PB               float64 // junction potential (V)
	DiffL            float64 // source/drain diffusion length (m)
}

// Normalize fills defaulted parameters in place and returns the receiver
// for chaining.
func (p *MOSParams) Normalize() *MOSParams {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.VTO, 0.8)
	def(&p.Gamma, 0.4)
	def(&p.Phi, 0.65)
	def(&p.Tox, 40e-9)
	if p.U0 == 0 {
		if p.Kind == PMOS {
			p.U0 = 250
		} else {
			p.U0 = 600
		}
	}
	if p.KP == 0 {
		p.KP = p.U0 * 1e-4 * p.Cox() // U0 in cm²/Vs → m²/Vs
	}
	def(&p.NSub, 1.4)
	def(&p.PB, 0.8)
	def(&p.MJ, 0.5)
	def(&p.MJSW, 0.33)
	def(&p.DiffL, 2.5e-6)
	def(&p.Kappa, 0.04)
	def(&p.PCLM, 0.04)
	return p
}

// Cox returns the oxide capacitance per area (F/m²).
func (p *MOSParams) Cox() float64 {
	if p.Tox <= 0 {
		return EpsOx / 40e-9
	}
	return EpsOx / p.Tox
}

// Leff returns the effective channel length for a drawn length.
func (p *MOSParams) Leff(l float64) float64 {
	le := l - 2*p.LD
	if le < 50e-9 {
		le = 50e-9
	}
	return le
}

// vthBody returns the body-effect threshold shift term
// gamma·(sqrt(phi - vbs) - sqrt(phi)) with smooth clamping for forward
// body bias.
func (p *MOSParams) vthBody(vbs float64) float64 {
	return p.Gamma * (sqrtPos(p.Phi-vbs, 1e-3) - math.Sqrt(p.Phi))
}

// meyerCaps computes the Meyer intrinsic gate capacitances plus overlap
// and junction capacitances. It is shared by all MOS models.
func (p *MOSParams) meyerCaps(b MOSBias, g MOSGeom, core MOSCore) MOSCaps {
	m := g.Mult()
	w := g.W * m
	leff := p.Leff(g.L)
	c0 := p.Cox() * w * leff

	var cgs, cgd, cgb float64
	vov := b.Vgs - core.Vth
	switch {
	case vov < -6*Vt: // accumulation / cutoff: gate sees the body
		cgb = c0
	case vov < 0: // weak inversion: interpolate bulk→channel
		f := (vov + 6*Vt) / (6 * Vt) // 0..1
		cgb = c0 * (1 - f)
		cgs = 2.0 / 3.0 * c0 * f
	case b.Vds >= core.Vdsat: // saturation
		cgs = 2.0 / 3.0 * c0
	default: // triode (Meyer)
		vd := b.Vds
		vsat := core.Vdsat
		if vsat < 1e-9 {
			vsat = 1e-9
		}
		x := vd / vsat // 0..1
		den := 2 - x
		cgs = 2.0 / 3.0 * c0 * (1 - ((1-x)/den)*((1-x)/den))
		cgd = 2.0 / 3.0 * c0 * (1 - (1/den)*(1/den))
	}
	cgs += p.CGSO * w
	cgd += p.CGDO * w
	cgb += p.CGBO * leff * m

	// Junction caps: reverse-biased in normal operation. Use the
	// polarity-normalized reverse bias (vbd = vbs - vds, vbs; both
	// negative when reverse biased).
	ad := w * p.DiffL
	pd := 2 * (w + p.DiffL)
	cdb := junctionCap(p.CJ*ad+0, p.CJSW*pd, b.Vbs-b.Vds, p.PB, p.MJ, p.MJSW)
	csb := junctionCap(p.CJ*ad+0, p.CJSW*pd, b.Vbs, p.PB, p.MJ, p.MJSW)
	return MOSCaps{Cgs: cgs, Cgd: cgd, Cgb: cgb, Cdb: cdb, Csb: csb}
}

// junctionCap evaluates the graded-junction capacitance with the usual
// linearization for forward bias beyond PB/2.
func junctionCap(cj0, cjsw0, v, pb, mj, mjsw float64) float64 {
	one := func(c0, m float64) float64 {
		if c0 <= 0 {
			return 0
		}
		if v < pb/2 {
			return c0 / math.Pow(1-v/pb, m)
		}
		// Linearize above pb/2 (SPICE FC=0.5 style): C(pb/2) = c0·2^m.
		f := math.Pow(2, m)
		return c0 * f * (1 + m*(v-pb/2)/(pb/2))
	}
	return one(cj0, mj) + one(cjsw0, mjsw)
}
