package devices

import "math"

// BSIM is a BSIM1-style MOS model (SPICE "level 4"): two-coefficient
// body effect (K1, K2), drain-induced barrier lowering (ETA), gate-field
// mobility degradation, and a body-charge-sharing saturation factor. It
// is deliberately a *different* fit of device behaviour than Level 3 —
// the paper's model-comparison experiment (Simple OTA under BSIM vs MOS3)
// depends on the two models disagreeing about the same silicon.
type BSIM struct {
	P MOSParams
}

// NewBSIM builds a BSIM-style model from parameters. K1 defaults to
// Gamma and K2 to a small positive value when unset.
func NewBSIM(p MOSParams) *BSIM {
	p.Normalize()
	if p.K1 == 0 {
		p.K1 = p.Gamma
	}
	if p.K2 == 0 {
		p.K2 = 0.02
	}
	if p.MobDeg == 0 {
		p.MobDeg = 0.1
	}
	return &BSIM{P: p}
}

// ModelName returns the model card name.
func (m *BSIM) ModelName() string { return m.P.Name }

// Type returns the device polarity.
func (m *BSIM) Type() DeviceType { return m.P.Kind }

// Level returns 4 (the SPICE level number BSIM1 was shipped under).
func (m *BSIM) Level() int { return 4 }

// Series returns the per-instance parasitic resistances.
func (m *BSIM) Series(g MOSGeom) (rd, rs float64) {
	w := g.W * g.Mult()
	if w <= 0 {
		return 0, 0
	}
	return m.P.RDW / w, m.P.RSW / w
}

// Core evaluates the BSIM1-style DC equations.
func (m *BSIM) Core(b MOSBias, g MOSGeom) MOSCore {
	p := &m.P
	leff := p.Leff(g.L)
	cox := p.Cox()

	phiB := sqrtPos(p.Phi-b.Vbs, 1e-3)
	vth := p.VTO + p.K1*(phiB-math.Sqrt(p.Phi)) - p.K2*(p.Phi-b.Vbs-p.Phi) - p.Eta*b.Vds
	// (The K2 term is written so it vanishes at Vbs=0, matching VTO.)

	nvt := p.NSub * Vt
	voveff := softplus2(b.Vgs-vth, nvt)

	// Body-charge sharing factor a ≥ 1.
	gg := 1 - 1/(1.744+0.8364*(p.Phi-b.Vbs))
	a := 1 + gg*p.K1/(2*phiB)
	if a < 1 {
		a = 1
	}

	// Gate-field mobility degradation.
	beta := p.U0 * 1e-4 * cox * g.W * g.Mult() / leff / (1 + p.MobDeg*voveff)

	vdsat := voveff / a
	var ids float64
	if b.Vds < vdsat {
		ids = beta * (voveff - a*b.Vds/2) * b.Vds
	} else {
		ids = beta * voveff * voveff / (2 * a) * (1 + p.PCLM*(b.Vds-vdsat))
	}
	return MOSCore{Ids: ids, Vth: vth, Vdsat: vdsat}
}

// Caps returns Meyer + junction capacitances.
func (m *BSIM) Caps(b MOSBias, g MOSGeom, core MOSCore) MOSCaps {
	return m.P.meyerCaps(b, g, core)
}
