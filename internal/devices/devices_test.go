package devices

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"astrx/internal/circuit"
)

func nmosL1() *Level1 {
	return NewLevel1(MOSParams{Name: "n1", Kind: NMOS, VTO: 0.8, KP: 50e-6,
		Gamma: 0.45, Phi: 0.66, Lambda: 0.04})
}

func pmosL1() *Level1 {
	return NewLevel1(MOSParams{Name: "p1", Kind: PMOS, VTO: 0.9, KP: 20e-6,
		Gamma: 0.55, Phi: 0.62, Lambda: 0.05})
}

var geom = MOSGeom{W: 20e-6, L: 2e-6}

func TestLevel1SquareLaw(t *testing.T) {
	m := nmosL1()
	// Saturation: vgs=2, vds=3, vbs=0; vov=1.2 ≫ nvt so softplus ≈ vov.
	op := EvalMOS(m, geom, 3, 2, 0, 0)
	want := 0.5 * 50e-6 * (20.0 / 2.0) * 1.2 * 1.2 * (1 + 0.04*3)
	if math.Abs(op.Ids-want)/want > 0.02 {
		t.Errorf("Ids = %g, want ≈ %g", op.Ids, want)
	}
	if op.Region != RegionSaturation {
		t.Errorf("region = %v, want saturation", op.Region)
	}
	// gm ≈ 2 Ids/vov for square law.
	if gmWant := 2 * op.Ids / 1.2; math.Abs(op.Gm-gmWant)/gmWant > 0.05 {
		t.Errorf("Gm = %g, want ≈ %g", op.Gm, gmWant)
	}
	// gds ≈ λ·Ids/(1+λvds).
	gdsWant := 0.04 * op.Ids / (1 + 0.04*3)
	if math.Abs(op.Gds-gdsWant)/gdsWant > 0.05 {
		t.Errorf("Gds = %g, want ≈ %g", op.Gds, gdsWant)
	}
}

func TestLevel1Triode(t *testing.T) {
	m := nmosL1()
	op := EvalMOS(m, geom, 0.2, 2, 0, 0) // vds=0.2 < vov=1.2
	if op.Region != RegionTriode {
		t.Errorf("region = %v, want triode", op.Region)
	}
	want := 50e-6 * 10 * (1.2 - 0.1) * 0.2 * (1 + 0.04*0.2)
	if math.Abs(op.Ids-want)/want > 0.03 {
		t.Errorf("triode Ids = %g, want ≈ %g", op.Ids, want)
	}
}

func TestSubthresholdSlope(t *testing.T) {
	m := nmosL1()
	// Below threshold the current must follow exp(vgs/(n·vt)).
	op1 := EvalMOS(m, geom, 2, 0.5, 0, 0)
	op2 := EvalMOS(m, geom, 2, 0.5+m.P.NSub*Vt*math.Ln2, 0, 0)
	if op1.Ids <= 0 {
		t.Fatalf("subthreshold Ids = %g, want > 0", op1.Ids)
	}
	ratio := op2.Ids / op1.Ids
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("subthreshold ratio = %g, want ≈ 2 per n·vt·ln2", ratio)
	}
	if op1.Region != RegionCutoff && op1.Region != RegionSubthreshold {
		t.Errorf("region = %v, want cutoff/subthreshold", op1.Region)
	}
}

func TestPMOSPolarity(t *testing.T) {
	mp := pmosL1()
	// PMOS with source at 5V, gate 3V, drain 1V: |vgs|=2, |vds|=4 → on,
	// current flows source→drain, i.e. *out* of the drain: Ids < 0.
	op := EvalMOS(mp, geom, 1, 3, 5, 5)
	if op.Ids >= 0 {
		t.Fatalf("PMOS Ids = %g, want negative (current out of drain)", op.Ids)
	}
	if op.Region != RegionSaturation {
		t.Errorf("region = %v, want saturation", op.Region)
	}
	// Small-signal conductances stay positive in terminal frame.
	if op.Gm <= 0 || op.Gds <= 0 {
		t.Errorf("PMOS small-signal not positive: gm=%g gds=%g", op.Gm, op.Gds)
	}
	// Mirror symmetry with an equivalent NMOS.
	mn := NewLevel1(MOSParams{Name: "n", Kind: NMOS, VTO: 0.9, KP: 20e-6,
		Gamma: 0.55, Phi: 0.62, Lambda: 0.05})
	opn := EvalMOS(mn, geom, 4, 2, 0, 0)
	if math.Abs(op.Ids+opn.Ids)/opn.Ids > 1e-9 {
		t.Errorf("PMOS/NMOS mirror mismatch: %g vs %g", op.Ids, opn.Ids)
	}
}

func TestSourceDrainSwap(t *testing.T) {
	m := nmosL1()
	// Reverse operation: drain at 0, source at 2 (gate 3): conducts in
	// reverse, current out of the drain terminal.
	op := EvalMOS(m, geom, 0, 3, 2, 0)
	if !op.Swapped {
		t.Error("expected source/drain swap")
	}
	if op.Ids >= 0 {
		t.Errorf("reverse Ids = %g, want negative", op.Ids)
	}
	// Magnitude equals the forward evaluation with relabeled terminals
	// (note vbs differs after swap; use vb equal to the new source).
	fwd := EvalMOS(m, geom, 2, 3, 0, 0)
	if math.Abs(op.Ids+fwd.Ids)/fwd.Ids > 1e-9 {
		t.Errorf("swap magnitude mismatch: %g vs %g", op.Ids, fwd.Ids)
	}
}

// Property: Ids is monotone nondecreasing in vgs and vds for all models.
func TestMonotonicityProperty(t *testing.T) {
	models := []MOSModel{
		nmosL1(),
		NewLevel3(MOSParams{Name: "n3", Kind: NMOS, VTO: 0.8, U0: 620,
			Gamma: 0.45, Phi: 0.66, Theta: 0.055, Vmax: 1.6e5, Kappa: 0.05, Eta: 0.25}),
		NewBSIM(MOSParams{Name: "nb", Kind: NMOS, VTO: 0.83, U0: 570,
			Gamma: 0.45, Phi: 0.66, K1: 0.52, K2: 0.03, Eta: 0.015}),
	}
	rng := rand.New(rand.NewSource(17))
	f := func(vg1, vd1, seed uint16) bool {
		vgsA := float64(vg1%500) / 100 // 0..5
		vdsA := float64(vd1%500) / 100
		r := rand.New(rand.NewSource(int64(seed)))
		vbs := -2 * r.Float64()
		for _, m := range models {
			b := MOSBias{Vgs: vgsA, Vds: vdsA, Vbs: vbs}
			i1 := m.Core(b, geom).Ids
			i2 := m.Core(MOSBias{Vgs: vgsA + 0.01, Vds: vdsA, Vbs: vbs}, geom).Ids
			i3 := m.Core(MOSBias{Vgs: vgsA, Vds: vdsA + 0.01, Vbs: vbs}, geom).Ids
			if i2 < i1-1e-15 || i3 < i1-1e-15 {
				return false
			}
			if i1 < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLevel3ShortChannelEffects(t *testing.T) {
	long := NewLevel3(MOSParams{Name: "n3", Kind: NMOS, VTO: 0.8, U0: 620,
		Gamma: 0.45, Phi: 0.66, Theta: 0.055, Vmax: 1.6e5, Kappa: 0.05, Eta: 0.25})
	// Velocity saturation: Ids grows sublinearly vs square law at high vov.
	g := MOSGeom{W: 10e-6, L: 1.2e-6}
	i1 := long.Core(MOSBias{Vgs: 1.8, Vds: 3, Vbs: 0}, g).Ids
	i2 := long.Core(MOSBias{Vgs: 2.8, Vds: 3, Vbs: 0}, g).Ids
	// Square law predicts (2/1)² = 4×; velocity saturation must reduce it.
	if r := i2 / i1; r > 3.6 {
		t.Errorf("short-channel ratio = %g, want < 3.6 (velocity saturation)", r)
	}
	// DIBL: threshold drops with vds.
	c1 := long.Core(MOSBias{Vgs: 1.5, Vds: 0.1, Vbs: 0}, g)
	c2 := long.Core(MOSBias{Vgs: 1.5, Vds: 4, Vbs: 0}, g)
	if c2.Vth >= c1.Vth {
		t.Errorf("DIBL missing: Vth(vds=4) = %g ≥ Vth(vds=0.1) = %g", c2.Vth, c1.Vth)
	}
}

func TestModelsDisagree(t *testing.T) {
	// The model-comparison experiment requires Level 3 and BSIM to give
	// meaningfully different currents for the same bias and geometry.
	lib, err := Library("c1.2u")
	if err != nil {
		t.Fatal(err)
	}
	m3raw, err := FromModel(lib["nmos3"])
	if err != nil {
		t.Fatal(err)
	}
	mbraw, err := FromModel(lib["nbsim"])
	if err != nil {
		t.Fatal(err)
	}
	m3 := m3raw.(MOSModel)
	mb := mbraw.(MOSModel)
	g := MOSGeom{W: 20e-6, L: 1.2e-6}
	b := MOSBias{Vgs: 1.5, Vds: 2.5, Vbs: -1}
	i3 := m3.Core(b, g).Ids
	ib := mb.Core(b, g).Ids
	rel := math.Abs(i3-ib) / math.Max(i3, ib)
	if rel < 0.05 {
		t.Errorf("Level3 and BSIM agree to %.1f%% — models too similar for E6", rel*100)
	}
	if rel > 0.9 {
		t.Errorf("Level3 and BSIM differ by %.0f%% — implausible for one process", rel*100)
	}
}

func TestCapsSaturation(t *testing.T) {
	m := nmosL1()
	op := EvalMOS(m, geom, 3, 2, 0, 0) // saturation
	c0 := m.P.Cox() * geom.W * m.P.Leff(geom.L)
	if math.Abs(op.Caps.Cgs-(2.0/3.0)*c0)/c0 > 0.01 {
		t.Errorf("sat Cgs = %g, want 2/3·C0 = %g", op.Caps.Cgs, 2.0/3.0*c0)
	}
	if op.Caps.Cgd != 0 {
		t.Errorf("sat Cgd = %g, want 0 (no overlap in this card)", op.Caps.Cgd)
	}
	all := []float64{op.Caps.Cgs, op.Caps.Cgd, op.Caps.Cgb, op.Caps.Cdb, op.Caps.Csb}
	for i, c := range all {
		if c < 0 {
			t.Errorf("cap %d negative: %g", i, c)
		}
	}
	// Cutoff: gate-bulk cap dominates.
	opOff := EvalMOS(m, geom, 3, 0, 0, 0)
	if opOff.Caps.Cgb < 0.9*c0 {
		t.Errorf("cutoff Cgb = %g, want ≈ C0 = %g", opOff.Caps.Cgb, c0)
	}
}

func TestJunctionCapReverseBias(t *testing.T) {
	c0 := junctionCap(1e-12, 0, 0, 0.8, 0.5, 0.33)
	cRev := junctionCap(1e-12, 0, -5, 0.8, 0.5, 0.33)
	cFwd := junctionCap(1e-12, 0, 0.6, 0.8, 0.5, 0.33)
	if !(cRev < c0 && c0 < cFwd) {
		t.Errorf("junction cap ordering wrong: rev %g, zero %g, fwd %g", cRev, c0, cFwd)
	}
	if junctionCap(0, 0, -1, 0.8, 0.5, 0.33) != 0 {
		t.Error("zero cj0 must give zero cap")
	}
}

func TestSeriesResistance(t *testing.T) {
	m := NewLevel1(MOSParams{Name: "n", Kind: NMOS, RDW: 8e-4, RSW: 8e-4})
	rd, rs := m.Series(MOSGeom{W: 10e-6, L: 2e-6})
	if math.Abs(rd-80) > 1e-9 || math.Abs(rs-80) > 1e-9 {
		t.Errorf("series R = %g/%g, want 80/80", rd, rs)
	}
	rd, rs = m.Series(MOSGeom{W: 10e-6, L: 2e-6, M: 2})
	if math.Abs(rd-40) > 1e-9 {
		t.Errorf("series R with M=2 = %g, want 40", rd)
	}
	rd, rs = m.Series(MOSGeom{})
	if rd != 0 || rs != 0 {
		t.Error("zero-width geometry must give zero series R")
	}
}

func TestBJTForwardActive(t *testing.T) {
	m := NewBJT(BJTParams{Name: "q", Kind: NPN, IS: 1e-16, BF: 100, VAF: 50})
	op := EvalBJT(m, 1, 3, 0.7, 0) // vc=3, vb=0.7, ve=0
	if !op.Forward {
		t.Error("expected forward-active")
	}
	if op.Ic <= 0 || op.Ib <= 0 {
		t.Fatalf("Ic=%g Ib=%g, want positive", op.Ic, op.Ib)
	}
	// gm = Ic/Vt within Early-effect correction.
	if r := op.Gm / (op.Ic / Vt); math.Abs(r-1) > 0.05 {
		t.Errorf("gm/(Ic/Vt) = %g, want ≈ 1", r)
	}
	// Current gain ≈ BF.
	if beta := op.Ic / op.Ib; math.Abs(beta-100)/100 > 0.15 {
		t.Errorf("beta = %g, want ≈ 100", beta)
	}
	// Output conductance ≈ Ic/VAF.
	if r := op.Go / (op.Ic / 50); r < 0.5 || r > 2 {
		t.Errorf("go = %g, want ≈ Ic/VAF = %g", op.Go, op.Ic/50)
	}
	// Ic scales with area.
	op2 := EvalBJT(m, 2, 3, 0.7, 0)
	if math.Abs(op2.Ic/op.Ic-2) > 1e-6 {
		t.Errorf("area scaling: %g, want 2", op2.Ic/op.Ic)
	}
}

func TestBJTPNPPolarity(t *testing.T) {
	m := NewBJT(BJTParams{Name: "q", Kind: PNP, IS: 1e-16, BF: 50})
	// PNP: emitter at 5, base 4.3, collector 1 → forward active,
	// collector current flows *out* of the collector: Ic < 0.
	op := EvalBJT(m, 1, 1, 4.3, 5)
	if op.Ic >= 0 {
		t.Errorf("PNP Ic = %g, want negative", op.Ic)
	}
	if !op.Forward {
		t.Error("PNP should be forward active")
	}
	if op.Gm <= 0 || op.Gpi <= 0 {
		t.Errorf("PNP small-signal not positive: gm=%g gpi=%g", op.Gm, op.Gpi)
	}
}

func TestBJTSaturationAndCutoff(t *testing.T) {
	m := NewBJT(BJTParams{Name: "q", Kind: NPN, IS: 1e-16, BF: 100, BR: 2})
	// Cutoff: both junctions reverse biased → tiny currents.
	op := EvalBJT(m, 1, 3, -1, 0)
	if math.Abs(op.Ic) > 1e-12 {
		t.Errorf("cutoff Ic = %g, want ≈ 0", op.Ic)
	}
	if op.Forward {
		t.Error("cutoff must not report forward")
	}
	// Deep saturation: vbc > 0 pulls Ic down vs forward active.
	fwd := EvalBJT(m, 1, 3, 0.7, 0)
	sat := EvalBJT(m, 1, 0.05, 0.7, 0)
	if sat.Ic >= fwd.Ic {
		t.Errorf("saturation Ic %g not below forward %g", sat.Ic, fwd.Ic)
	}
}

func TestBJTCaps(t *testing.T) {
	m := NewBJT(BJTParams{Name: "q", Kind: NPN, IS: 1e-16, BF: 100,
		TF: 20e-12, CJE: 60e-15, CJC: 40e-15})
	op := EvalBJT(m, 1, 3, 0.7, 0)
	if op.Cpi <= 60e-15 {
		t.Errorf("Cpi = %g, want > CJE (diffusion term)", op.Cpi)
	}
	if op.Cmu <= 0 || op.Cmu > 40e-15 {
		t.Errorf("Cmu = %g, want in (0, CJC] for reverse-biased BC", op.Cmu)
	}
}

func TestLimexp(t *testing.T) {
	if limexp(1) != math.Exp(1) {
		t.Error("limexp below limit must equal exp")
	}
	big := limexp(100)
	if math.IsInf(big, 1) || big <= math.Exp(40) {
		t.Errorf("limexp(100) = %g, want finite and > exp(40)", big)
	}
}

func TestFromModelErrors(t *testing.T) {
	if _, err := FromModel(&circuit.Model{Name: "x", Type: "weird"}); err == nil {
		t.Error("unknown type must error")
	}
	if _, err := FromModel(&circuit.Model{Name: "x", Type: "nmos", Level: 7}); err == nil {
		t.Error("unsupported MOS level must error")
	}
}

func TestLibraryErrors(t *testing.T) {
	if _, err := Library("c90nm"); err == nil {
		t.Error("unknown process must error")
	}
	for _, p := range []string{"c2u", "c1.2u", "c1p2u", "bicmos"} {
		lib, err := Library(p)
		if err != nil {
			t.Fatalf("Library(%s): %v", p, err)
		}
		for name, mc := range lib {
			if _, err := FromModel(mc); err != nil {
				t.Errorf("process %s model %s: %v", p, name, err)
			}
		}
	}
	// bicmos includes BJTs.
	lib, _ := Library("bicmos")
	if lib["npn"] == nil || lib["pnp"] == nil {
		t.Error("bicmos must include npn and pnp")
	}
}

func TestDeviceTypeStrings(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" ||
		NPN.String() != "npn" || PNP.String() != "pnp" {
		t.Error("DeviceType.String broken")
	}
	if DeviceType(99).String() != "unknown" {
		t.Error("unknown DeviceType string")
	}
	if NMOS.Polarity() != 1 || PMOS.Polarity() != -1 || PNP.Polarity() != -1 {
		t.Error("polarity wrong")
	}
	for _, r := range []Region{RegionCutoff, RegionSubthreshold, RegionTriode, RegionSaturation} {
		if r.String() == "unknown" {
			t.Errorf("region %d has no name", r)
		}
	}
}
