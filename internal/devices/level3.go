package devices

// Level3 is a SPICE-Level-3-style semi-empirical short-channel model:
// static-feedback threshold reduction (ETA), vertical-field mobility
// degradation (THETA), velocity saturation (VMAX), and an empirical
// saturation-region conductance (KAPPA). It reproduces the qualitative
// short-channel behaviour that invalidates square-law design equations —
// the paper's central accuracy argument.
type Level3 struct {
	P MOSParams
}

// NewLevel3 builds a Level 3 model from parameters.
func NewLevel3(p MOSParams) *Level3 {
	p.Normalize()
	return &Level3{P: p}
}

// ModelName returns the model card name.
func (m *Level3) ModelName() string { return m.P.Name }

// Type returns the device polarity.
func (m *Level3) Type() DeviceType { return m.P.Kind }

// Level returns 3.
func (m *Level3) Level() int { return 3 }

// Series returns the per-instance parasitic resistances.
func (m *Level3) Series(g MOSGeom) (rd, rs float64) {
	w := g.W * g.Mult()
	if w <= 0 {
		return 0, 0
	}
	return m.P.RDW / w, m.P.RSW / w
}

// Core evaluates the Level-3 DC equations.
func (m *Level3) Core(b MOSBias, g MOSGeom) MOSCore {
	p := &m.P
	leff := p.Leff(g.L)
	cox := p.Cox()

	// Static feedback (DIBL-like) threshold reduction.
	sigma := p.Eta * 8.15e-22 / (cox * leff * leff * leff)
	vth := p.VTO + p.vthBody(b.Vbs) - sigma*b.Vds

	nvt := p.NSub * Vt
	voveff := softplus2(b.Vgs-vth, nvt)

	// Vertical-field mobility degradation.
	ueff := p.U0 * 1e-4 / (1 + p.Theta*voveff) // m²/V·s
	beta := ueff * cox * g.W * g.Mult() / leff

	// Velocity saturation limits Vdsat below Vov.
	vdsat := voveff
	if p.Vmax > 0 {
		vc := p.Vmax * leff / ueff
		vdsat = voveff * vc / (voveff + vc)
	}

	var ids float64
	if b.Vds < vdsat {
		ids = beta * (voveff - b.Vds/2) * b.Vds
	} else {
		ids = beta * (voveff - vdsat/2) * vdsat * (1 + p.Kappa*(b.Vds-vdsat))
	}
	return MOSCore{Ids: ids, Vth: vth, Vdsat: vdsat}
}

// Caps returns Meyer + junction capacitances.
func (m *Level3) Caps(b MOSBias, g MOSGeom, core MOSCore) MOSCaps {
	return m.P.meyerCaps(b, g, core)
}
