package devices

import (
	"fmt"
	"strings"

	"astrx/internal/circuit"
)

// FromModel converts a parsed .model card into an encapsulated evaluator.
// MOS cards select the implementation via level (1, 3, or 4/BSIM); BJT
// cards always build a Gummel-Poon model. The returned value is either a
// MOSModel or a *BJTModel.
func FromModel(mc *circuit.Model) (interface{}, error) {
	switch strings.ToLower(mc.Type) {
	case "nmos", "pmos":
		kind := NMOS
		if strings.ToLower(mc.Type) == "pmos" {
			kind = PMOS
		}
		p := MOSParams{
			Name:   mc.Name,
			Kind:   kind,
			VTO:    mc.P("vto", 0),
			Gamma:  mc.P("gamma", 0),
			Phi:    mc.P("phi", 0),
			KP:     mc.P("kp", 0),
			U0:     mc.P("u0", 0),
			Tox:    mc.P("tox", 0),
			Lambda: mc.P("lambda", 0),
			Theta:  mc.P("theta", 0),
			Vmax:   mc.P("vmax", 0),
			Kappa:  mc.P("kappa", 0),
			Eta:    mc.P("eta", 0),
			K1:     mc.P("k1", 0),
			K2:     mc.P("k2", 0),
			MobDeg: mc.P("u1", 0),
			PCLM:   mc.P("pclm", 0),
			NSub:   mc.P("n", 0),
			LD:     mc.P("ld", 0),
			RDW:    mc.P("rdw", 0),
			RSW:    mc.P("rsw", 0),
			CGSO:   mc.P("cgso", 0),
			CGDO:   mc.P("cgdo", 0),
			CGBO:   mc.P("cgbo", 0),
			CJ:     mc.P("cj", 0),
			MJ:     mc.P("mj", 0),
			CJSW:   mc.P("cjsw", 0),
			MJSW:   mc.P("mjsw", 0),
			PB:     mc.P("pb", 0),
			DiffL:  mc.P("diffl", 0),
		}
		switch mc.Level {
		case 0, 1:
			return NewLevel1(p), nil
		case 3:
			return NewLevel3(p), nil
		case 4:
			return NewBSIM(p), nil
		default:
			return nil, fmt.Errorf("devices: unsupported MOS level %d in model %s", mc.Level, mc.Name)
		}
	case "npn", "pnp":
		kind := NPN
		if strings.ToLower(mc.Type) == "pnp" {
			kind = PNP
		}
		p := BJTParams{
			Name: mc.Name,
			Kind: kind,
			IS:   mc.P("is", 0),
			BF:   mc.P("bf", 0),
			BR:   mc.P("br", 0),
			VAF:  mc.P("vaf", 0),
			VAR:  mc.P("var", 0),
			NF:   mc.P("nf", 0),
			NR:   mc.P("nr", 0),
			TF:   mc.P("tf", 0),
			CJE:  mc.P("cje", 0),
			VJE:  mc.P("vje", 0),
			MJE:  mc.P("mje", 0),
			CJC:  mc.P("cjc", 0),
			VJC:  mc.P("vjc", 0),
			MJC:  mc.P("mjc", 0),
		}
		return NewBJT(p), nil
	}
	return nil, fmt.Errorf("devices: unknown model type %q in model %s", mc.Type, mc.Name)
}

// Library returns the builtin model cards for a named process, for use
// with the deck-level `.lib` card. Available processes:
//
//	c2u    — a 2µ CMOS process (tox 40 nm): nmos1/pmos1, nmos3/pmos3,
//	         nbsim/pbsim
//	c1.2u  — a 1.2µ CMOS process (tox 25 nm): same model names
//	bicmos — c2u plus npn/pnp Gummel-Poon devices
//
// The parameter values are synthetic but physically plausible stand-ins
// for the proprietary decks the paper used (see DESIGN.md §4); what the
// experiments rely on is that the three MOS models disagree in realistic
// ways and that the two processes differ in threshold, tox, and caps.
func Library(process string) (map[string]*circuit.Model, error) {
	switch strings.ToLower(process) {
	case "c2u":
		return cmosLibrary(2.0), nil
	case "c1.2u", "c1p2u":
		return cmosLibrary(1.2), nil
	case "bicmos":
		lib := cmosLibrary(2.0)
		for k, v := range bjtLibrary() {
			lib[k] = v
		}
		return lib, nil
	}
	return nil, fmt.Errorf("devices: unknown process library %q", process)
}

// cmosLibrary builds the model set for a CMOS process with the given
// drawn feature size in µm (2.0 or 1.2).
func cmosLibrary(feature float64) map[string]*circuit.Model {
	// Process scaling: thinner oxide, lower VTO, higher caps at 1.2µ.
	tox := 40e-9
	vton, vtop := 0.80, 0.90
	ld := 0.25e-6
	cj := 2.4e-4
	cjsw := 3.0e-10
	etaScale := 1.0
	if feature < 1.5 {
		tox = 25e-9
		vton, vtop = 0.70, 0.85
		ld = 0.15e-6
		cj = 3.2e-4
		cjsw = 3.5e-10
		etaScale = 0.45 // same sigma-ish despite the L³ in the formula
	}
	cox := EpsOx / tox
	cgso := 0.6 * cox * ld // overlap ~ Cox·LD with fringing factor

	base := func(name string, kind string, level int, extra map[string]float64) *circuit.Model {
		p := map[string]float64{
			"tox": tox, "ld": ld,
			"cgso": cgso, "cgdo": cgso,
			"cj": cj, "cjsw": cjsw, "pb": 0.8, "mj": 0.5, "mjsw": 0.33,
			"rdw": 8e-4, "rsw": 8e-4,
			"diffl": feature * 1.25e-6,
		}
		for k, v := range extra {
			p[k] = v
		}
		return &circuit.Model{Name: name, Type: kind, Level: level, Params: p}
	}

	lib := map[string]*circuit.Model{
		"nmos1": base("nmos1", "nmos", 1, map[string]float64{
			"vto": vton, "u0": 620, "gamma": 0.45, "phi": 0.66,
			"lambda": 0.04 * 2.0 / feature,
		}),
		"pmos1": base("pmos1", "pmos", 1, map[string]float64{
			"vto": vtop, "u0": 240, "gamma": 0.55, "phi": 0.62,
			"lambda": 0.05 * 2.0 / feature,
		}),
		"nmos3": base("nmos3", "nmos", 3, map[string]float64{
			"vto": vton, "u0": 620, "gamma": 0.45, "phi": 0.66,
			"theta": 0.055, "vmax": 1.6e5, "kappa": 0.05, "eta": 0.25 * etaScale,
		}),
		"pmos3": base("pmos3", "pmos", 3, map[string]float64{
			"vto": vtop, "u0": 240, "gamma": 0.55, "phi": 0.62,
			"theta": 0.09, "vmax": 9e4, "kappa": 0.06, "eta": 0.18 * etaScale,
		}),
		"nbsim": base("nbsim", "nmos", 4, map[string]float64{
			"vto": vton + 0.03, "u0": 570, "gamma": 0.45, "phi": 0.66,
			"k1": 0.52, "k2": 0.03, "u1": 0.13, "pclm": 0.05, "eta": 0.015,
		}),
		"pbsim": base("pbsim", "pmos", 4, map[string]float64{
			"vto": vtop + 0.02, "u0": 215, "gamma": 0.55, "phi": 0.62,
			"k1": 0.62, "k2": 0.035, "u1": 0.16, "pclm": 0.06, "eta": 0.012,
		}),
	}
	return lib
}

func bjtLibrary() map[string]*circuit.Model {
	return map[string]*circuit.Model{
		"npn": {Name: "npn", Type: "npn", Params: map[string]float64{
			"is": 5e-16, "bf": 120, "br": 2, "vaf": 60, "tf": 20e-12,
			"cje": 60e-15, "cjc": 40e-15, "vje": 0.75, "vjc": 0.70,
			"mje": 0.33, "mjc": 0.4,
		}},
		"pnp": {Name: "pnp", Type: "pnp", Params: map[string]float64{
			"is": 2e-16, "bf": 50, "br": 1.5, "vaf": 40, "tf": 40e-12,
			"cje": 80e-15, "cjc": 60e-15, "vje": 0.75, "vjc": 0.70,
			"mje": 0.33, "mjc": 0.4,
		}},
	}
}
