// Package devices implements the paper's "encapsulated device
// evaluators": compiled-in, SPICE-class device models that convert a
// device's geometry and terminal voltages into (a) large-signal terminal
// currents for the relaxed-dc KCL constraints and (b) a small-signal
// linear model (gm, gds, gmbs, capacitances) for the AWE circuits. All
// aspects of a model are hidden behind the MOSModel/BJTModel interfaces,
// so the synthesis machinery is completely independent of model
// complexity — the property the paper identifies as essential for
// supporting industrial models.
//
// Three MOS models are provided, mirroring the paper: a Level 1
// square-law model, a SPICE Level-3-style semi-empirical short-channel
// model, and a BSIM1-style model; BJTs use a Gummel-Poon model. All
// models are C¹-smooth across region boundaries (EKV-style softplus
// blending into subthreshold), which the annealer's Newton-Raphson moves
// rely on.
package devices

import (
	"math"
)

// Physical constants (SI, 300 K).
const (
	// Vt is the thermal voltage kT/q at 300 K.
	Vt = 0.025852
	// EpsOx is the permittivity of SiO2 (F/m).
	EpsOx = 3.453e-11
	// EpsSi is the permittivity of silicon (F/m).
	EpsSi = 1.0359e-10
	// Q is the elementary charge (C).
	Q = 1.602176e-19
)

// DeviceType distinguishes device polarity.
type DeviceType int

// Device polarities.
const (
	NMOS DeviceType = iota
	PMOS
	NPN
	PNP
)

// String names the device type.
func (d DeviceType) String() string {
	switch d {
	case NMOS:
		return "nmos"
	case PMOS:
		return "pmos"
	case NPN:
		return "npn"
	case PNP:
		return "pnp"
	}
	return "unknown"
}

// Polarity returns +1 for NMOS/NPN and -1 for PMOS/PNP.
func (d DeviceType) Polarity() float64 {
	if d == PMOS || d == PNP {
		return -1
	}
	return 1
}

// MOSGeom is the instance geometry of a MOSFET.
type MOSGeom struct {
	W, L float64 // drawn width and length (m)
	M    float64 // parallel multiplier (0 → 1)
}

// Mult returns the effective multiplier.
func (g MOSGeom) Mult() float64 {
	if g.M <= 0 {
		return 1
	}
	return g.M
}

// MOSBias holds device-polarity-normalized bias voltages (i.e. already
// multiplied by the type polarity and source/drain swapped so Vds >= 0 in
// the normal regime).
type MOSBias struct {
	Vgs, Vds, Vbs float64
}

// MOSCore is the polarity-normalized evaluation result of a MOS model's
// DC equations: the drain current and the quantities needed to derive
// charge storage.
type MOSCore struct {
	Ids   float64 // drain-source channel current (A), >= 0 in normal use
	Vth   float64 // threshold voltage (V)
	Vdsat float64 // saturation voltage (V)
}

// MOSModel is one encapsulated MOS evaluator. Core must be smooth in all
// three bias voltages; small-signal conductances are derived from it by
// the shared wrapper via finite differences, guaranteeing consistency
// between the large-signal and small-signal views.
type MOSModel interface {
	// ModelName returns the model card name.
	ModelName() string
	// Type returns NMOS or PMOS.
	Type() DeviceType
	// Level returns the SPICE level number (1, 3, or 4 for BSIM-style).
	Level() int
	// Core evaluates the DC equations at a normalized bias.
	Core(b MOSBias, g MOSGeom) MOSCore
	// Caps returns terminal capacitances at a normalized bias.
	Caps(b MOSBias, g MOSGeom, core MOSCore) MOSCaps
	// Series returns the parasitic drain/source series resistances for
	// one instance (Ω); zero values mean no internal node is created.
	Series(g MOSGeom) (rd, rs float64)
}

// MOSCaps collects the five MOS terminal capacitances (F, all >= 0).
type MOSCaps struct {
	Cgs, Cgd, Cgb, Cdb, Csb float64
}

// MOSOp is the full operating-point picture of a MOS instance in
// *terminal* polarity: Ids is the current flowing into the drain terminal
// and out of the source terminal (negative for PMOS in normal operation).
type MOSOp struct {
	// Ids is the signed drain terminal current (A).
	Ids float64
	// Gm, Gds, Gmbs are small-signal conductances (S); by construction
	// they are the derivatives of Ids w.r.t. terminal Vgs, Vds, Vbs and
	// are polarity-invariant (positive in normal operation).
	Gm, Gds, Gmbs float64
	// Vth and Vdsat are polarity-normalized (positive) values.
	Vth, Vdsat float64
	// Vgs, Vds, Vbs echo the polarity-normalized bias.
	Vgs, Vds, Vbs float64
	// Caps are the terminal capacitances.
	Caps MOSCaps
	// Region is the operating region.
	Region Region
	// Swapped reports that source and drain were exchanged (Vds < 0 at
	// the terminals) before evaluation; stamping must use the effective
	// terminals.
	Swapped bool
}

// Region is a MOS operating region.
type Region int

// Operating regions.
const (
	RegionCutoff Region = iota
	RegionSubthreshold
	RegionTriode
	RegionSaturation
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionCutoff:
		return "cutoff"
	case RegionSubthreshold:
		return "subthreshold"
	case RegionTriode:
		return "triode"
	case RegionSaturation:
		return "saturation"
	}
	return "unknown"
}

// EvalMOS evaluates a MOS model at raw terminal voltages (vd, vg, vs, vb
// relative to ground), handling polarity and source/drain swap, and
// derives the small-signal conductances by central finite differences of
// the model's Core. This is the single entry point the compiler, the
// Newton solver, and the verifier all share.
func EvalMOS(m MOSModel, g MOSGeom, vd, vg, vs, vb float64) MOSOp {
	pol := m.Type().Polarity()
	// Normalize polarity: for PMOS all voltages flip.
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swapped := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swapped = true
	}
	b := MOSBias{Vgs: nvg - nvs, Vds: nvd - nvs, Vbs: nvb - nvs}

	core := m.Core(b, g)

	// Central differences; steps sized for volt-scale signals.
	const dv = 1e-5
	dIds := func(db MOSBias) float64 { return m.Core(db, g).Ids }
	gm := (dIds(MOSBias{b.Vgs + dv, b.Vds, b.Vbs}) - dIds(MOSBias{b.Vgs - dv, b.Vds, b.Vbs})) / (2 * dv)
	gds := (dIds(MOSBias{b.Vgs, b.Vds + dv, b.Vbs}) - dIds(MOSBias{b.Vgs, b.Vds - dv, b.Vbs})) / (2 * dv)
	gmbs := (dIds(MOSBias{b.Vgs, b.Vds, b.Vbs + dv}) - dIds(MOSBias{b.Vgs, b.Vds, b.Vbs - dv})) / (2 * dv)

	op := MOSOp{
		Ids:     pol * core.Ids,
		Gm:      gm,
		Gds:     gds,
		Gmbs:    gmbs,
		Vth:     core.Vth,
		Vdsat:   core.Vdsat,
		Vgs:     b.Vgs,
		Vds:     b.Vds,
		Vbs:     b.Vbs,
		Caps:    m.Caps(b, g, core),
		Swapped: swapped,
	}
	if swapped {
		// Terminal current direction flips with the effective terminals.
		op.Ids = -op.Ids
	}
	op.Region = classify(b, core)
	return op
}

func classify(b MOSBias, core MOSCore) Region {
	vov := b.Vgs - core.Vth
	switch {
	case vov < -6*Vt:
		return RegionCutoff
	case vov < 0:
		return RegionSubthreshold
	case b.Vds >= core.Vdsat:
		return RegionSaturation
	default:
		return RegionTriode
	}
}

// ---------------------------------------------------------------------------
// Shared numeric helpers for the model implementations.

// softplus2 is the EKV-style smoothing 2nvt·ln(1+exp(x/(2nvt))): it tends
// to x for x ≫ 0 and to 2nvt·exp(x/(2nvt)) below threshold, making the
// square-law current C∞-smooth with an exponential subthreshold tail.
func softplus2(x, nvt float64) float64 {
	t := 2 * nvt
	a := x / t
	if a > 40 {
		return x
	}
	if a < -40 {
		return t * math.Exp(-40) // effectively zero but nonzero-smooth
	}
	return t * math.Log1p(math.Exp(a))
}

// sqrtPos is a smooth version of sqrt(max(x, eps)).
func sqrtPos(x, eps float64) float64 {
	return math.Sqrt(0.5 * (x + math.Sqrt(x*x+eps*eps)))
}

// limexp is SPICE's exp with linear continuation above x = 40 to avoid
// overflow while keeping C¹ continuity.
func limexp(x float64) float64 {
	const lim = 40.0
	if x <= lim {
		return math.Exp(x)
	}
	e := math.Exp(lim)
	return e * (1 + (x - lim))
}
