// Package tenancy is oblxd's multi-tenant serving layer: API-key
// authentication, per-tenant quotas, and the fair-share scheduler that
// replaces the daemon's single FIFO queue.
//
// A daemon serving heavy traffic from many users needs to know *who*
// submitted each job — so one tenant's parameter sweep can be rate-
// limited and fair-shared instead of starving everyone else — and the
// unit of identity is the tenant: a named principal with one or more
// API keys, a scheduling weight, and a quota (max queued jobs, max
// concurrently running jobs, an evaluation-rate budget).
//
// Tenants come from a JSON key file (-api-keys-file), reloaded on
// SIGHUP without a restart. No key file → "open mode": every request
// maps to the built-in default tenant with unlimited quota, which is
// byte-for-byte the pre-tenancy behavior.
package tenancy

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// DefaultTenantName is the tenant every request maps to in open mode
// (no key file configured).
const DefaultTenantName = "default"

// Quota bounds one tenant's load on the daemon. Zero fields mean
// unlimited — the default tenant's quota is all zeros.
type Quota struct {
	// MaxQueued bounds jobs waiting in this tenant's lane; submissions
	// beyond it get 429 with a Retry-After estimate.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning bounds this tenant's concurrently running jobs; the
	// scheduler holds further jobs in the lane until one finishes.
	MaxRunning int `json:"max_running,omitempty"`
	// EvalsPerSec budgets the tenant's long-run evaluation rate. Each
	// submission charges its requested move budget against a token
	// bucket refilled at this rate; an overdrawn bucket rejects the
	// submission (429) until it refills.
	EvalsPerSec float64 `json:"evals_per_sec,omitempty"`
}

// Tenant is one named principal.
type Tenant struct {
	Name string `json:"name"`
	// Keys are the API keys that authenticate as this tenant.
	Keys []string `json:"keys"`
	// Weight is the fair-share scheduling weight (0 → 1): a weight-3
	// tenant drains three jobs for every one of a weight-1 tenant when
	// both are backlogged.
	Weight int   `json:"weight,omitempty"`
	Quota  Quota `json:"quota,omitempty"`
}

// keyFile is the -api-keys-file schema. See docs/operations.md.
type keyFile struct {
	Tenants []*Tenant `json:"tenants"`
}

// Authentication errors. The HTTP layer maps both to 401.
var (
	ErrNoKey      = errors.New("tenancy: request carries no API key")
	ErrUnknownKey = errors.New("tenancy: unknown API key")
)

// Authenticator maps API keys to tenants and owns the per-tenant
// rate-budget buckets. Safe for concurrent use; Reload swaps the key
// table atomically under writers.
type Authenticator struct {
	path string
	// now is the clock seam for bucket tests.
	now func() time.Time

	mu     sync.RWMutex
	open   bool
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	// buckets persist across reloads so a reload cannot be used to
	// reset a tenant's spent budget.
	buckets map[string]*bucket
}

// Open returns an open-mode authenticator: every key (including none)
// authenticates as the unlimited default tenant.
func Open() *Authenticator {
	return &Authenticator{
		now:     time.Now,
		open:    true,
		byKey:   map[string]*Tenant{},
		byName:  map[string]*Tenant{DefaultTenantName: {Name: DefaultTenantName, Weight: 1}},
		buckets: map[string]*bucket{},
	}
}

// NewAuthenticator loads the key file at path. Unlike Reload, a broken
// file at startup is a hard error: better to refuse to start than to
// silently run open.
func NewAuthenticator(path string) (*Authenticator, error) {
	a := &Authenticator{
		path:    path,
		now:     time.Now,
		byKey:   map[string]*Tenant{},
		byName:  map[string]*Tenant{},
		buckets: map[string]*bucket{},
	}
	if err := a.Reload(); err != nil {
		return nil, err
	}
	return a, nil
}

// Reload re-reads the key file (the SIGHUP path). On any error the
// previous table stays in effect and the error is returned for
// logging — a fat-fingered edit must not lock every tenant out.
func (a *Authenticator) Reload() error {
	if a.path == "" {
		return nil // open mode has nothing to reload
	}
	data, err := os.ReadFile(a.path)
	if err != nil {
		return fmt.Errorf("tenancy: read key file: %w", err)
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return fmt.Errorf("tenancy: parse key file %s: %w", a.path, err)
	}
	byKey := make(map[string]*Tenant)
	byName := make(map[string]*Tenant)
	for i, t := range kf.Tenants {
		if t.Name == "" {
			return fmt.Errorf("tenancy: key file %s: tenant %d has no name", a.path, i)
		}
		if _, dup := byName[t.Name]; dup {
			return fmt.Errorf("tenancy: key file %s: duplicate tenant %q", a.path, t.Name)
		}
		if len(t.Keys) == 0 {
			return fmt.Errorf("tenancy: key file %s: tenant %q has no keys", a.path, t.Name)
		}
		if t.Weight < 0 || t.Quota.MaxQueued < 0 || t.Quota.MaxRunning < 0 || t.Quota.EvalsPerSec < 0 {
			return fmt.Errorf("tenancy: key file %s: tenant %q has negative weight or quota", a.path, t.Name)
		}
		byName[t.Name] = t
		for _, k := range t.Keys {
			if k == "" {
				return fmt.Errorf("tenancy: key file %s: tenant %q has an empty key", a.path, t.Name)
			}
			if owner, dup := byKey[k]; dup {
				return fmt.Errorf("tenancy: key file %s: key %q… belongs to both %q and %q",
					a.path, k[:min(4, len(k))], owner.Name, t.Name)
			}
			byKey[k] = t
		}
	}
	a.mu.Lock()
	a.byKey, a.byName = byKey, byName
	a.mu.Unlock()
	return nil
}

// OpenMode reports whether every request maps to the default tenant.
func (a *Authenticator) OpenMode() bool { return a.open }

// Authenticate resolves an API key to its tenant. In open mode every
// key — including the empty one — resolves to the default tenant.
// Returned tenants are shared and must be treated as immutable.
func (a *Authenticator) Authenticate(key string) (*Tenant, error) {
	if a.open {
		a.mu.RLock()
		defer a.mu.RUnlock()
		return a.byName[DefaultTenantName], nil
	}
	if key == "" {
		return nil, ErrNoKey
	}
	a.mu.RLock()
	t := a.byKey[key]
	a.mu.RUnlock()
	if t == nil {
		return nil, ErrUnknownKey
	}
	return t, nil
}

// Tenant looks a tenant up by name (nil if unknown). Recovery uses it
// to re-attach persisted jobs to their tenants' current quotas.
func (a *Authenticator) Tenant(name string) *Tenant {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.byName[name]
}

// Limits returns the scheduling limits for a tenant by name. A tenant
// that vanished from the key file (removed, then reloaded) keeps
// draining at weight 1 with no running bound: already-accepted jobs
// still finish, the key just stops authenticating new ones.
func (a *Authenticator) Limits(name string) Limits {
	a.mu.RLock()
	t := a.byName[name]
	a.mu.RUnlock()
	if t == nil {
		return Limits{Weight: 1}
	}
	w := t.Weight
	if w <= 0 {
		w = 1
	}
	return Limits{Weight: w, MaxRunning: t.Quota.MaxRunning}
}

// bucket is a token bucket with a debt floor: a submission is allowed
// whenever the balance is positive and then charged in full, so one
// job larger than the burst capacity still gets through — the bucket
// just goes negative and blocks the tenant until it refills. Long-run
// throughput converges to the configured rate either way.
type bucket struct {
	tokens float64
	last   time.Time
}

// burstSeconds sizes a bucket's capacity: rate × this.
const burstSeconds = 60

// AllowEvals charges n evaluations against the tenant's rate budget,
// reporting whether the submission is admitted. Tenants with no
// EvalsPerSec quota are always admitted and never charged.
func (a *Authenticator) AllowEvals(name string, n float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.byName[name]
	if t == nil || t.Quota.EvalsPerSec <= 0 {
		return true
	}
	rate := t.Quota.EvalsPerSec
	cap := rate * burstSeconds
	b := a.buckets[name]
	now := a.now()
	if b == nil {
		b = &bucket{tokens: cap, last: now}
		a.buckets[name] = b
	} else {
		b.tokens += rate * now.Sub(b.last).Seconds()
		if b.tokens > cap {
			b.tokens = cap
		}
		b.last = now
	}
	if b.tokens <= 0 {
		return false
	}
	b.tokens -= n
	return true
}
