package tenancy

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func writeKeyFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const twoTenants = `{
  "tenants": [
    {"name": "acme", "keys": ["k-acme-1", "k-acme-2"], "weight": 3,
     "quota": {"max_queued": 10, "max_running": 2, "evals_per_sec": 1000}},
    {"name": "bob", "keys": ["k-bob"]}
  ]
}`

func TestAuthenticateKeyFile(t *testing.T) {
	a, err := NewAuthenticator(writeKeyFile(t, twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	if a.OpenMode() {
		t.Fatal("key-file authenticator reports open mode")
	}
	for key, want := range map[string]string{"k-acme-1": "acme", "k-acme-2": "acme", "k-bob": "bob"} {
		tn, err := a.Authenticate(key)
		if err != nil || tn.Name != want {
			t.Errorf("Authenticate(%s) = %v, %v; want %s", key, tn, err, want)
		}
	}
	if _, err := a.Authenticate(""); err != ErrNoKey {
		t.Errorf("empty key: %v, want ErrNoKey", err)
	}
	if _, err := a.Authenticate("nope"); err != ErrUnknownKey {
		t.Errorf("unknown key: %v, want ErrUnknownKey", err)
	}
	if lim := a.Limits("acme"); lim.Weight != 3 || lim.MaxRunning != 2 {
		t.Errorf("Limits(acme) = %+v", lim)
	}
	if lim := a.Limits("bob"); lim.Weight != 1 || lim.MaxRunning != 0 {
		t.Errorf("Limits(bob) = %+v", lim)
	}
	if lim := a.Limits("ghost"); lim.Weight != 1 {
		t.Errorf("Limits(ghost) = %+v", lim)
	}
}

func TestOpenMode(t *testing.T) {
	a := Open()
	for _, key := range []string{"", "anything"} {
		tn, err := a.Authenticate(key)
		if err != nil || tn.Name != DefaultTenantName {
			t.Fatalf("open mode Authenticate(%q) = %v, %v", key, tn, err)
		}
	}
	if !a.AllowEvals(DefaultTenantName, 1e12) {
		t.Error("open mode rate-limited the default tenant")
	}
	if err := a.Reload(); err != nil {
		t.Errorf("open-mode reload: %v", err)
	}
}

func TestKeyFileValidation(t *testing.T) {
	bad := map[string]string{
		"no name":        `{"tenants":[{"keys":["k"]}]}`,
		"no keys":        `{"tenants":[{"name":"a"}]}`,
		"empty key":      `{"tenants":[{"name":"a","keys":[""]}]}`,
		"dup tenant":     `{"tenants":[{"name":"a","keys":["k1"]},{"name":"a","keys":["k2"]}]}`,
		"dup key":        `{"tenants":[{"name":"a","keys":["k"]},{"name":"b","keys":["k"]}]}`,
		"negative quota": `{"tenants":[{"name":"a","keys":["k"],"quota":{"max_queued":-1}}]}`,
		"not json":       `tenants: [a]`,
	}
	for name, content := range bad {
		if _, err := NewAuthenticator(writeKeyFile(t, content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReloadKeepsOldTableOnError: a broken edit must not lock tenants
// out; the previous table survives a failed reload.
func TestReloadKeepsOldTableOnError(t *testing.T) {
	path := writeKeyFile(t, twoTenants)
	a, err := NewAuthenticator(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{broken"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := a.Reload(); err == nil {
		t.Fatal("broken reload succeeded")
	}
	if tn, err := a.Authenticate("k-bob"); err != nil || tn.Name != "bob" {
		t.Errorf("old table lost after failed reload: %v, %v", tn, err)
	}
}

func TestReloadSwapsKeys(t *testing.T) {
	path := writeKeyFile(t, twoTenants)
	a, err := NewAuthenticator(path)
	if err != nil {
		t.Fatal(err)
	}
	next := `{"tenants":[{"name":"carol","keys":["k-carol"],"weight":2}]}`
	if err := os.WriteFile(path, []byte(next), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := a.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Authenticate("k-bob"); err != ErrUnknownKey {
		t.Error("removed key still authenticates")
	}
	if tn, err := a.Authenticate("k-carol"); err != nil || tn.Name != "carol" {
		t.Errorf("new key: %v, %v", tn, err)
	}
}

// TestReloadRace hammers Authenticate/Limits/AllowEvals concurrently
// with Reload; run under -race this is the key-file reload race drill
// of the tenancy chaos suite.
func TestReloadRace(t *testing.T) {
	path := writeKeyFile(t, twoTenants)
	a, err := NewAuthenticator(path)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Authenticate("k-acme-1")
				a.Authenticate("nope")
				a.Limits("acme")
				a.AllowEvals("acme", 10)
			}
		}()
	}
	alt := `{"tenants":[{"name":"acme","keys":["k-acme-1"],"weight":1}]}`
	for i := 0; i < 200; i++ {
		content := twoTenants
		if i%2 == 0 {
			content = alt
		}
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := a.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEvalBudget exercises the token bucket: a tenant with 1000
// evals/sec and a 60s burst admits ~60k evals up front, goes into
// debt on one oversized job, then recovers at the configured rate.
func TestEvalBudget(t *testing.T) {
	a, err := NewAuthenticator(writeKeyFile(t, twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	// Bucket starts full: 1000/s * 60s = 60k tokens.
	if !a.AllowEvals("acme", 50_000) {
		t.Fatal("burst submission rejected with a full bucket")
	}
	// 10k left: a 120k job is still admitted (debt model) ...
	if !a.AllowEvals("acme", 120_000) {
		t.Fatal("positive-balance submission rejected")
	}
	// ... but the bucket is now deeply negative: nothing else passes.
	if a.AllowEvals("acme", 1) {
		t.Fatal("overdrawn bucket admitted a submission")
	}
	// 110 seconds at 1000/s pays the debt off with 0 balance; one more
	// second turns it positive.
	now = now.Add(111 * time.Second)
	if !a.AllowEvals("acme", 1000) {
		t.Fatal("refilled bucket rejected a submission")
	}
	// No budget configured → never limited.
	for i := 0; i < 100; i++ {
		if !a.AllowEvals("bob", 1e9) {
			t.Fatal("unbudgeted tenant rate-limited")
		}
	}
}

// --- scheduler ---

func TestSchedulerSingleLaneIsFIFO(t *testing.T) {
	s := NewScheduler[int](nil)
	for i := 1; i <= 100; i++ {
		s.Push("default", i)
	}
	for i := 1; i <= 100; i++ {
		v, tn, ok := s.Pop()
		if !ok || v != i || tn != "default" {
			t.Fatalf("Pop %d = %d,%s,%v", i, v, tn, ok)
		}
		s.DoneRunning(tn)
	}
	if _, _, ok := s.Pop(); ok {
		t.Fatal("Pop from empty scheduler succeeded")
	}
}

// TestSchedulerFairShare is the fairness property test: two tenants
// with skewed submission rates and 3:1 weights; the drain ratio over
// any window where both are backlogged must track the weights within
// tolerance, and per-lane FIFO order must hold.
func TestSchedulerFairShare(t *testing.T) {
	limits := map[string]Limits{
		"heavy": {Weight: 3},
		"light": {Weight: 1},
	}
	s := NewScheduler[string](func(tn string) Limits { return limits[tn] })

	// Skewed submission: heavy floods 2000 jobs, light trickles 300.
	for i := 0; i < 2000; i++ {
		s.Push("heavy", fmt.Sprintf("h%04d", i))
	}
	for i := 0; i < 300; i++ {
		s.Push("light", fmt.Sprintf("l%04d", i))
	}

	counts := map[string]int{}
	lastPerLane := map[string]string{}
	// Drain 400 jobs — both lanes stay backlogged throughout.
	for i := 0; i < 400; i++ {
		item, tn, ok := s.Pop()
		if !ok {
			t.Fatalf("Pop %d failed with %d queued", i, s.Len())
		}
		if prev := lastPerLane[tn]; prev != "" && item <= prev {
			t.Fatalf("lane %s out of FIFO order: %s after %s", tn, item, prev)
		}
		lastPerLane[tn] = item
		counts[tn]++
		s.DoneRunning(tn)
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("drain ratio %.2f (heavy=%d light=%d), want ~3.0",
			ratio, counts["heavy"], counts["light"])
	}

	// Once light runs dry, heavy gets everything (work conservation).
	for s.Depth("light") > 0 {
		_, tn, ok := s.Pop()
		if !ok {
			t.Fatal("Pop failed while lanes non-empty")
		}
		s.DoneRunning(tn)
	}
	for i := 0; i < 50; i++ {
		_, tn, ok := s.Pop()
		if !ok || tn != "heavy" {
			t.Fatalf("idle-lane Pop = %s, %v; want heavy", tn, ok)
		}
		s.DoneRunning(tn)
	}
}

// TestSchedulerNoStarvationUnderFlood: a weight-1 tenant behind a
// weight-10 flood still gets served within one replenish cycle.
func TestSchedulerNoStarvationUnderFlood(t *testing.T) {
	s := NewScheduler[int](func(tn string) Limits {
		if tn == "flood" {
			return Limits{Weight: 10}
		}
		return Limits{Weight: 1}
	})
	for i := 0; i < 1000; i++ {
		s.Push("flood", i)
	}
	s.Push("tiny", 42)
	served := -1
	for i := 0; i < 12; i++ {
		v, tn, ok := s.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		if tn == "tiny" {
			served = i
			if v != 42 {
				t.Fatalf("tiny served wrong item %d", v)
			}
			break
		}
		s.DoneRunning(tn)
	}
	if served < 0 {
		t.Fatal("tiny tenant starved past a full replenish cycle")
	}
}

func TestSchedulerRunningCap(t *testing.T) {
	s := NewScheduler[int](func(tn string) Limits { return Limits{Weight: 1, MaxRunning: 2} })
	for i := 0; i < 5; i++ {
		s.Push("a", i)
	}
	if _, _, ok := s.Pop(); !ok {
		t.Fatal("Pop 1")
	}
	if _, _, ok := s.Pop(); !ok {
		t.Fatal("Pop 2")
	}
	if _, _, ok := s.Pop(); ok {
		t.Fatal("Pop past the running cap succeeded")
	}
	s.DoneRunning("a")
	if v, _, ok := s.Pop(); !ok || v != 2 {
		t.Fatalf("Pop after release = %d, %v", v, ok)
	}
	if s.Running("a") != 2 || s.Depth("a") != 2 {
		t.Errorf("running=%d depth=%d", s.Running("a"), s.Depth("a"))
	}
}

func TestSchedulerRemove(t *testing.T) {
	s := NewScheduler[int](nil)
	s.Push("a", 1)
	s.Push("a", 2)
	s.Push("a", 3)
	if !s.Remove("a", 2) {
		t.Fatal("Remove failed")
	}
	if s.Remove("a", 2) {
		t.Fatal("double Remove succeeded")
	}
	if s.Len() != 2 || s.Depth("a") != 2 {
		t.Fatalf("Len=%d Depth=%d", s.Len(), s.Depth("a"))
	}
	v1, _, _ := s.Pop()
	v2, _, _ := s.Pop()
	if v1 != 1 || v2 != 3 {
		t.Errorf("pops after remove = %d,%d; want 1,3", v1, v2)
	}
}

func TestSchedulerPushFront(t *testing.T) {
	s := NewScheduler[int](nil)
	s.Push("a", 1)
	s.Push("a", 2)
	v, _, _ := s.Pop()
	if v != 1 {
		t.Fatal("first pop")
	}
	s.DoneRunning("a")
	s.PushFront("a", 1)
	if v, _, _ := s.Pop(); v != 1 {
		t.Errorf("PushFront item not popped first (got %d)", v)
	}
}
