package tenancy

// Limits are the scheduling parameters of one tenant's lane.
type Limits struct {
	// Weight is the deficit-round-robin quantum (≥ 1): jobs drained per
	// replenish cycle while backlogged.
	Weight int
	// MaxRunning caps the tenant's concurrently running jobs
	// (0 → unlimited); a lane at its cap is skipped, not drained.
	MaxRunning int
}

// lane is one tenant's FIFO queue plus its DRR deficit counter.
type lane[T comparable] struct {
	items   []T
	deficit int
}

// Scheduler is a weighted deficit-round-robin fair-share queue:
// per-tenant FIFO lanes, drained in proportion to tenant weights, with
// per-tenant running caps. With a single tenant it degenerates to the
// plain FIFO it replaced — same pop order, same semantics.
//
// The scheduler is NOT internally locked: the job manager already
// serializes queue access under its own mutex, and double-locking
// would only hide ordering bugs. All methods must be called under the
// owner's lock.
type Scheduler[T comparable] struct {
	limits func(tenant string) Limits

	lanes map[string]*lane[T]
	// order fixes the lane scan sequence (insertion order) so draining
	// is deterministic; lanes are never removed — tenant cardinality is
	// bounded by the key file.
	order  []string
	cursor int

	running map[string]int
	queued  int
}

// NewScheduler builds a scheduler; limits supplies each tenant's
// weight and running cap at drain time (nil → weight 1, no cap), so a
// key-file reload changes behavior without rebuilding lanes.
func NewScheduler[T comparable](limits func(tenant string) Limits) *Scheduler[T] {
	if limits == nil {
		limits = func(string) Limits { return Limits{Weight: 1} }
	}
	return &Scheduler[T]{
		limits:  limits,
		lanes:   make(map[string]*lane[T]),
		running: make(map[string]int),
	}
}

func (s *Scheduler[T]) lane(tenant string) *lane[T] {
	l := s.lanes[tenant]
	if l == nil {
		l = &lane[T]{}
		s.lanes[tenant] = l
		s.order = append(s.order, tenant)
	}
	return l
}

// Push appends an item to the tenant's lane.
func (s *Scheduler[T]) Push(tenant string, item T) {
	l := s.lane(tenant)
	l.items = append(l.items, item)
	s.queued++
}

// PushFront returns an item to the head of the tenant's lane — the
// graceful-release path, where the job was claimed first and must be
// claimed first again.
func (s *Scheduler[T]) PushFront(tenant string, item T) {
	l := s.lane(tenant)
	l.items = append([]T{item}, l.items...)
	s.queued++
}

// Pop drains the next item under weighted deficit round-robin,
// skipping lanes whose tenant is at its running cap, and counts the
// item as running for its tenant (undo with DoneRunning). ok is false
// when nothing is drainable — every lane empty or capped.
func (s *Scheduler[T]) Pop() (item T, tenant string, ok bool) {
	var zero T
	if s.queued == 0 || len(s.order) == 0 {
		return zero, "", false
	}
	// At most two full passes: one spending existing deficits, then a
	// replenish and one more. Two replenishes cannot both yield nothing
	// unless every non-empty lane is capped.
	for round := 0; round < 2; round++ {
		for scanned := 0; scanned < len(s.order); scanned++ {
			t := s.order[s.cursor]
			l := s.lanes[t]
			if len(l.items) == 0 {
				// An empty lane's deficit resets: credit must not hoard
				// across idle periods or a returning tenant would burst
				// past its share.
				l.deficit = 0
				s.cursor = (s.cursor + 1) % len(s.order)
				continue
			}
			lim := s.limits(t)
			if lim.MaxRunning > 0 && s.running[t] >= lim.MaxRunning {
				s.cursor = (s.cursor + 1) % len(s.order)
				continue
			}
			if l.deficit > 0 {
				l.deficit--
				item = l.items[0]
				l.items = l.items[1:]
				s.queued--
				if len(l.items) == 0 {
					l.deficit = 0
				}
				s.running[t]++
				// Exhausted deficit → move on, so the next Pop serves the
				// next lane instead of re-scanning from this one.
				if l.deficit == 0 {
					s.cursor = (s.cursor + 1) % len(s.order)
				}
				return item, t, true
			}
			s.cursor = (s.cursor + 1) % len(s.order)
		}
		// Full pass with nothing drainable on deficit: replenish every
		// backlogged, uncapped lane by its weight and try once more.
		replenished := false
		for _, t := range s.order {
			l := s.lanes[t]
			if len(l.items) == 0 {
				continue
			}
			lim := s.limits(t)
			if lim.MaxRunning > 0 && s.running[t] >= lim.MaxRunning {
				continue
			}
			w := lim.Weight
			if w <= 0 {
				w = 1
			}
			l.deficit += w
			replenished = true
		}
		if !replenished {
			return zero, "", false
		}
	}
	return zero, "", false
}

// DoneRunning releases one running slot for the tenant — call exactly
// once per successful Pop, when the item finishes, fails, is released,
// or turns out to have been cancelled while queued.
func (s *Scheduler[T]) DoneRunning(tenant string) {
	if s.running[tenant] > 0 {
		s.running[tenant]--
	}
}

// Remove deletes a queued item from its tenant's lane (the
// cancel-while-queued path). The tenant's queue depth — and with it
// the MaxQueued quota — frees immediately, not at drain time.
func (s *Scheduler[T]) Remove(tenant string, item T) bool {
	l := s.lanes[tenant]
	if l == nil {
		return false
	}
	for i, it := range l.items {
		if it == item {
			l.items = append(l.items[:i], l.items[i+1:]...)
			s.queued--
			if len(l.items) == 0 {
				l.deficit = 0
			}
			return true
		}
	}
	return false
}

// Len is the total queued count across lanes.
func (s *Scheduler[T]) Len() int { return s.queued }

// Depth is one tenant's queued count.
func (s *Scheduler[T]) Depth(tenant string) int {
	if l := s.lanes[tenant]; l != nil {
		return len(l.items)
	}
	return 0
}

// Running is one tenant's running count.
func (s *Scheduler[T]) Running(tenant string) int { return s.running[tenant] }

// Tenants lists every lane ever created, in creation order.
func (s *Scheduler[T]) Tenants() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}
