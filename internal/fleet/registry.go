package fleet

import (
	"time"

	"astrx/internal/server"
)

// Worker liveness states, derived from the time since a worker's last
// message rather than stored: "alive" within suspectAfter, "suspect"
// until the lease TTL, "dead" past it. A dead worker's leases have
// expired (or are about to), so its jobs are already being re-leased.
const (
	WorkerAlive   = "alive"
	WorkerSuspect = "suspect"
	WorkerDead    = "dead"
)

// workerStates lists the liveness states for metrics registration.
var workerStates = []string{WorkerAlive, WorkerSuspect, WorkerDead}

// workerInfo is the registry's record of one worker.
type workerInfo struct {
	lastSeen time.Time
}

// noteWorker records that a worker was heard from (any fleet message).
func (c *Coordinator) noteWorker(id string) {
	if id == "" {
		return
	}
	c.mu.Lock()
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{}
		c.workers[id] = w
		c.log.Info("fleet: worker registered", "worker", id)
	}
	w.lastSeen = time.Now()
	c.mu.Unlock()
}

// livenessOf classifies one worker's state at time now.
func (c *Coordinator) livenessOf(w *workerInfo, now time.Time) string {
	since := now.Sub(w.lastSeen)
	switch {
	case since <= c.suspectAfter:
		return WorkerAlive
	case since <= c.opt.LeaseTTL:
		return WorkerSuspect
	default:
		return WorkerDead
	}
}

// workerBreakdown counts registered workers by liveness state.
func (c *Coordinator) workerBreakdown() (total int, byState map[string]int) {
	byState = make(map[string]int, len(workerStates))
	for _, st := range workerStates {
		byState[st] = 0
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		byState[c.livenessOf(w, now)]++
		total++
	}
	return total, byState
}

// fleetHealth builds the /healthz fleet section; installed on the
// manager via SetFleetHealth.
func (c *Coordinator) fleetHealth() *server.FleetHealth {
	total, byState := c.workerBreakdown()
	return &server.FleetHealth{
		Workers:        total,
		WorkersByState: byState,
		QueueDepth:     c.mgr.QueueDepth(),
	}
}
