package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"astrx/internal/faults"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/retry"
	"astrx/internal/server"
)

// The fleet chaos suite proves the exactly-once contract under the
// failure modes ROADMAP.md lists for distributed supervision: dropped
// and duplicated messages, partitions that heal after the lease TTL,
// kill -9 mid-anneal, coordinator restart, and eval-progress stalls.
// Every scenario ends with the job completed, resumed, or quarantined —
// never lost, never committed twice.

// fleetPost drives the fleet protocol by hand — the deterministic
// "partitioned worker" whose messages the test controls exactly.
func fleetPost(t *testing.T, base, path string, body, out any) int {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitMetric polls the exposition until the named sample line reports a
// value (any line containing prefix), failing after timeout.
func (f *testFleet) waitMetric(prefix string, timeout time.Duration) {
	f.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if strings.Contains(f.metricsText(), prefix) {
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("metric %q not observed within %s; exposition:\n%s",
				prefix, timeout, grepMetrics(f.metricsText(), "oblxd_"))
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// TestFleetChaosDroppedDuplicatedHeartbeats runs a worker whose every
// fleet call crosses a lossy, duplicating network. Dropped heartbeats
// must not expire a healthy lease (several beats fit in one TTL), and a
// duplicated complete must ack idempotently — the job finishes exactly
// once.
func TestFleetChaosDroppedDuplicatedHeartbeats(t *testing.T) {
	f := startFleet(t, server.Options{}, Options{
		LeaseTTL:       5 * time.Second,
		HeartbeatEvery: 30 * time.Millisecond,
	})
	in := faults.New(7, faults.Rates{})
	client := &http.Client{Transport: in.Transport(nil, faults.NetRates{Drop: 0.15, Dup: 0.15})}
	f.startWorker(WorkerOptions{ID: "lossy", Client: client})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 3000})
	f.waitState(id, server.StateDone, 120*time.Second)

	if n := in.Count(faults.NetDrop) + in.Count(faults.NetDup); n == 0 {
		t.Error("no network faults fired — chaos rates not applied")
	}
	text := f.metricsText()
	if !strings.Contains(text, `oblxd_jobs_finished_total{state="done"} 1`) {
		t.Errorf("job must finish exactly once under loss; exposition:\n%s",
			grepMetrics(text, "oblxd_jobs_finished_total"))
	}
}

// TestFleetPartitionFencing walks the canonical partition story: a
// worker claims a job and goes silent (partitioned before its first
// heartbeat). The lease expires, the job is requeued and re-leased to a
// healthy worker. Then the partition heals and the stale worker tries
// to heartbeat and to commit a result with its old epoch — both must be
// rejected by fencing, and only the healthy worker's completion lands.
func TestFleetPartitionFencing(t *testing.T) {
	f := startFleet(t, server.Options{
		Retry: retry.Policy{Base: 10 * time.Millisecond, Multiplier: 1, MaxAttempts: 5},
	}, Options{
		LeaseTTL:       250 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
	})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 8000})

	// The doomed claim: the worker partitions immediately after claiming.
	var cr ClaimResponse
	if code := fleetPost(t, f.ts.URL, "/v1/fleet/claim", ClaimRequest{Worker: "stale"}, &cr); code != http.StatusOK {
		t.Fatalf("claim: HTTP %d", code)
	}
	if cr.JobID != id {
		t.Fatalf("claimed %s, want %s", cr.JobID, id)
	}

	// Silence → lease expiry → requeue with one attempt burned.
	f.waitMetric("oblxd_lease_expirations_total 1", 30*time.Second)

	// A healthy worker picks the job back up.
	f.startWorker(WorkerOptions{ID: "healthy"})
	waitRunning := time.Now().Add(30 * time.Second)
	for f.status(id).State != server.StateRunning {
		if time.Now().After(waitRunning) {
			t.Fatalf("job not re-leased; state %s", f.status(id).State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The partition heals: the stale worker's heartbeat and commit carry
	// a fenced epoch and must bounce off 409.
	hbCode := fleetPost(t, f.ts.URL, "/v1/fleet/jobs/"+id+"/heartbeat",
		HeartbeatRequest{Worker: "stale", Run: cr.Run, Epoch: cr.Epoch}, nil)
	if hbCode != http.StatusConflict {
		t.Errorf("stale heartbeat: HTTP %d, want 409", hbCode)
	}
	cmCode := fleetPost(t, f.ts.URL, "/v1/fleet/jobs/"+id+"/complete",
		CompleteRequest{Worker: "stale", Run: cr.Run, Epoch: cr.Epoch,
			Result: &server.JobResult{State: server.StateFailed, Error: "stale result, must never land"}},
		nil)
	if cmCode != http.StatusConflict {
		t.Errorf("stale complete: HTTP %d, want 409", cmCode)
	}

	// Only the healthy completion counts.
	f.waitState(id, server.StateDone, 120*time.Second)
	text := f.metricsText()
	if !strings.Contains(text, `oblxd_jobs_finished_total{state="done"} 1`) ||
		strings.Contains(text, `oblxd_jobs_finished_total{state="failed"}`) {
		t.Errorf("exactly-once violated; exposition:\n%s", grepMetrics(text, "oblxd_jobs_finished_total"))
	}
	if !strings.Contains(text, "oblxd_fenced_commits_total") || strings.Contains(text, "oblxd_fenced_commits_total 0\n") {
		t.Errorf("fenced commit not counted; exposition:\n%s", grepMetrics(text, "oblxd_fenced"))
	}
}

// TestFleetKillResume kills a worker mid-anneal (kill -9: total
// silence) after it shipped a checkpoint. The lease must expire, the
// job requeue, and a second worker resume from the shipped checkpoint
// rather than move zero — completing the job exactly once.
func TestFleetKillResume(t *testing.T) {
	f := startFleet(t, server.Options{
		StateDir: t.TempDir(),
		Retry:    retry.Policy{Base: 10 * time.Millisecond, Multiplier: 1, MaxAttempts: 5},
	}, Options{
		LeaseTTL:        400 * time.Millisecond,
		HeartbeatEvery:  40 * time.Millisecond,
		CheckpointEvery: 200,
	})
	victim, _ := f.startWorker(WorkerOptions{ID: "victim", Dir: t.TempDir()})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 60_000})

	// Wait until the coordinator holds a shipped checkpoint, then kill.
	j := f.mgr.Get(id)
	if j == nil {
		t.Fatal("job not found")
	}
	shipped := time.Now().Add(60 * time.Second)
	for f.mgr.ResumePayload(j) == nil {
		if time.Now().After(shipped) {
			t.Fatal("no checkpoint shipped before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.Kill()

	// Death is discovered by lease expiry alone.
	f.waitMetric("oblxd_lease_expirations_total 1", 30*time.Second)

	var log lockedBuffer
	f.startWorker(WorkerOptions{ID: "rescuer", Dir: t.TempDir(), Logger: bufferLogger(&log)})
	f.waitState(id, server.StateDone, 300*time.Second)

	if !strings.Contains(log.String(), "resuming from shipped checkpoint") {
		t.Error("rescuer did not resume from the shipped checkpoint")
	}
	text := f.metricsText()
	if !strings.Contains(text, `oblxd_jobs_finished_total{state="done"} 1`) {
		t.Errorf("job must finish exactly once after kill; exposition:\n%s",
			grepMetrics(text, "oblxd_jobs_finished_total"))
	}
}

// TestFleetCoordinatorRestartFencing restarts the coordinator over the
// same state directory while a worker holds a lease. The persisted
// fencing epoch must make every post-restart lease strictly newer: the
// pre-restart worker's late commit is rejected, the job is re-leased
// and completed exactly once, and a duplicated delivery of the winning
// commit acks idempotently.
func TestFleetCoordinatorRestartFencing(t *testing.T) {
	dir := t.TempDir()
	mgrOpt := server.Options{
		StateDir:     dir,
		ExternalExec: true,
		Registry:     nil, // fresh per incarnation
		Logger:       testLogger(t),
	}
	fOpt := Options{LeaseTTL: 30 * time.Second, HeartbeatEvery: time.Second, StateDir: dir}

	mgr1, err := server.New(mgrOpt)
	if err != nil {
		t.Fatal(err)
	}
	coord1 := NewCoordinator(mgr1, fOpt)
	ts1 := serveFleet(coord1)

	f1 := &testFleet{t: t, mgr: mgr1, coord: coord1, ts: ts1}
	id := f1.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 1000})

	var cr1 ClaimResponse
	if code := fleetPost(t, ts1.URL, "/v1/fleet/claim", ClaimRequest{Worker: "before"}, &cr1); code != http.StatusOK {
		t.Fatalf("claim: HTTP %d", code)
	}

	// Coordinator and store go down mid-lease.
	ts1.Close()
	coord1.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	mgr1.Shutdown(ctx)
	cancel()

	// Second incarnation over the same state directory: the job record
	// is recovered and requeued, the epoch high-water mark reloaded.
	mgr2, err := server.New(mgrOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr2.Shutdown(ctx)
	})
	coord2 := NewCoordinator(mgr2, fOpt)
	t.Cleanup(coord2.Stop)
	ts2 := serveFleet(coord2)
	t.Cleanup(ts2.Close)
	f2 := &testFleet{t: t, mgr: mgr2, coord: coord2, ts: ts2}

	var cr2 ClaimResponse
	if code := fleetPost(t, ts2.URL, "/v1/fleet/claim", ClaimRequest{Worker: "after"}, &cr2); code != http.StatusOK {
		t.Fatalf("re-claim: HTTP %d (job not recovered?)", code)
	}
	if cr2.JobID != id {
		t.Fatalf("re-claimed %s, want %s", cr2.JobID, id)
	}
	if cr2.Epoch <= cr1.Epoch {
		t.Fatalf("post-restart epoch %d does not outfence pre-restart epoch %d", cr2.Epoch, cr1.Epoch)
	}

	// The pre-restart worker finally reports in: fenced.
	code := fleetPost(t, ts2.URL, "/v1/fleet/jobs/"+id+"/complete",
		CompleteRequest{Worker: "before", Run: cr1.Run, Epoch: cr1.Epoch,
			Result: &server.JobResult{State: server.StateFailed, Error: "pre-restart result"}}, nil)
	if code != http.StatusConflict {
		t.Fatalf("pre-restart commit: HTTP %d, want 409", code)
	}

	// The new leaseholder commits; a duplicated delivery acks.
	win := &server.JobResult{State: server.StateDone}
	for i := 0; i < 2; i++ {
		code = fleetPost(t, ts2.URL, "/v1/fleet/jobs/"+id+"/complete",
			CompleteRequest{Worker: "after", Run: cr2.Run, Epoch: cr2.Epoch, Result: win}, nil)
		if code != http.StatusOK {
			t.Fatalf("commit delivery %d: HTTP %d, want 200", i+1, code)
		}
	}

	if st := f2.status(id); st.State != server.StateDone {
		t.Fatalf("job state %s, want done", st.State)
	}
	text := f2.metricsText()
	if !strings.Contains(text, `oblxd_jobs_finished_total{state="done"} 1`) {
		t.Errorf("exactly-once across restart violated; exposition:\n%s",
			grepMetrics(text, "oblxd_jobs_finished_total"))
	}
	if !strings.Contains(text, "oblxd_fenced_commits_total 1") {
		t.Errorf("fenced commit not counted; exposition:\n%s", grepMetrics(text, "oblxd_fenced"))
	}
}

// TestFleetStallRequeuedThenPoisoned swaps the worker's synthesis for a
// run that ticks progress once and then hangs. Heartbeats keep flowing
// — the worker is alive — but the eval watermark freezes, so the
// coordinator must revoke the lease as stalled, requeue with backoff,
// and poison the job when attempts run out, with the stall causes in
// its persisted history.
func TestFleetStallRequeuedThenPoisoned(t *testing.T) {
	orig := workerSynth
	defer func() { workerSynth = orig }()
	workerSynth = func(ctx context.Context, deck *netlist.Deck, opt oblx.Options) (*oblx.Result, error) {
		if opt.Progress != nil {
			opt.Progress(oblx.ProgressEvent{Move: 1, MaxMoves: opt.MaxMoves, Evals: 50, BestCost: 1})
		}
		<-ctx.Done() // heartbeats continue, evals never advance
		return nil, ctx.Err()
	}

	f := startFleet(t, server.Options{
		Retry: retry.Policy{Base: 10 * time.Millisecond, Multiplier: 1, MaxAttempts: 2},
	}, Options{
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: 25 * time.Millisecond,
		StallTimeout:   100 * time.Millisecond,
	})
	f.startWorker(WorkerOptions{ID: "stuck"})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 1000})
	st := f.waitState(id, server.StatePoisoned, 60*time.Second)
	if !strings.Contains(st.Error, "stalled") {
		t.Errorf("poison cause %q, want a stall", st.Error)
	}

	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr server.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.History) == 0 {
		t.Error("poisoned job has no failure history")
	}
	text := f.metricsText()
	if !strings.Contains(text, "oblxd_stalls_total 2") {
		t.Errorf("stall supervision fired %s, want 2 stalls",
			grepMetrics(text, "oblxd_stalls_total"))
	}
}
