package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"astrx/internal/retry"
	"astrx/internal/server"
	"astrx/internal/trace"
)

// submitTraced posts a deck with a W3C traceparent header, so the job
// joins the client's trace.
func (f *testFleet) submitTraced(deck string, opt server.JobOptions, traceparent string) string {
	f.t.Helper()
	body, _ := json.Marshal(map[string]any{"deck": deck, "options": opt})
	req, _ := http.NewRequest("POST", f.ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		f.t.Fatal(err)
	}
	return st.ID
}

// getTrace fetches and decodes GET /v1/jobs/{id}/trace.
func (f *testFleet) getTrace(id string) server.TraceSummary {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("trace: status %d: %s", resp.StatusCode, b)
	}
	var sum server.TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		f.t.Fatal(err)
	}
	return sum
}

// flatten walks a span forest into name → nodes.
func flatten(nodes []*trace.Node, into map[string][]*trace.Node) {
	for _, n := range nodes {
		into[n.Name] = append(into[n.Name], n)
		flatten(n.Children, into)
	}
}

// TestFleetTraceparentPropagation covers the propagation table: how the
// job's trace ID derives from the submit headers, how the claim
// response hands the context to workers, and how shipped spans are
// accepted (matching trace, fenced epoch rejected; foreign trace IDs
// dropped).
func TestFleetTraceparentPropagation(t *testing.T) {
	const (
		clientTID  = "0af7651916cd43dd8448eb211c80319c"
		clientSpan = "b7ad6b7169203331"
	)
	cases := []struct {
		name, tp string
		// wantClient: the job must adopt the client's trace ID verbatim.
		wantClient bool
	}{
		{"valid header", "00-" + clientTID + "-" + clientSpan + "-01", true},
		{"no header", "", false},
		{"garbage header", "not-a-traceparent", false},
		{"forbidden version ff", "ff-" + clientTID + "-" + clientSpan + "-01", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := startFleet(t, server.Options{}, fastFleetOptions())
			id := f.submitTraced(testDeck, server.JobOptions{Seed: 1, MaxMoves: 1000}, c.tp)

			sum := f.getTrace(id)
			if c.wantClient && sum.TraceID != clientTID {
				t.Fatalf("trace ID %q, want the client's %s", sum.TraceID, clientTID)
			}
			if !c.wantClient && (sum.TraceID == clientTID || sum.TraceID == "") {
				t.Fatalf("trace ID %q, want a derived non-client ID", sum.TraceID)
			}

			// The claim response carries the job's context: same trace ID,
			// parent = the deterministic root span ID.
			var cr ClaimResponse
			if code := fleetPost(t, f.ts.URL, "/v1/fleet/claim", ClaimRequest{Worker: "w"}, &cr); code != http.StatusOK {
				t.Fatalf("claim: HTTP %d", code)
			}
			tc, err := trace.Parse(cr.Traceparent)
			if err != nil {
				t.Fatalf("claim traceparent %q does not parse: %v", cr.Traceparent, err)
			}
			if tc.TraceID != sum.TraceID || tc.SpanID != trace.RootSpanID(sum.TraceID) {
				t.Fatalf("claim context %+v, want trace %s root %s", tc, sum.TraceID, trace.RootSpanID(sum.TraceID))
			}

			// A shipped span with the right trace lands in the tree…
			ship := trace.Span{
				TraceID: tc.TraceID, SpanID: "aaaaaaaaaaaaaaa1", Parent: tc.SpanID,
				Name: "shipped-test-span", Start: time.Now(), Status: "ok",
			}
			// …a foreign trace ID is silently dropped…
			foreign := trace.Span{
				TraceID: "ffffffffffffffffffffffffffffffff", SpanID: "aaaaaaaaaaaaaaa2",
				Name: "foreign-span", Start: time.Now(), Status: "ok",
			}
			code := fleetPost(t, f.ts.URL, "/v1/fleet/jobs/"+id+"/heartbeat",
				HeartbeatRequest{Worker: "w", Run: cr.Run, Epoch: cr.Epoch,
					Spans: []trace.Span{ship, foreign}}, nil)
			if code != http.StatusOK {
				t.Fatalf("heartbeat: HTTP %d", code)
			}
			// …and a fenced (stale-epoch) ship is rejected wholesale.
			fenced := trace.Span{
				TraceID: tc.TraceID, SpanID: "aaaaaaaaaaaaaaa3", Parent: tc.SpanID,
				Name: "fenced-span", Start: time.Now(), Status: "ok",
			}
			code = fleetPost(t, f.ts.URL, "/v1/fleet/jobs/"+id+"/heartbeat",
				HeartbeatRequest{Worker: "zombie", Run: cr.Run, Epoch: cr.Epoch + 7,
					Spans: []trace.Span{fenced}}, nil)
			if code != http.StatusConflict {
				t.Fatalf("fenced heartbeat: HTTP %d, want 409", code)
			}

			byName := map[string][]*trace.Node{}
			flatten(f.getTrace(id).Tree, byName)
			if len(byName["shipped-test-span"]) != 1 {
				t.Error("shipped span with matching trace ID not ingested")
			}
			if len(byName["foreign-span"]) != 0 {
				t.Error("span from a foreign trace was ingested")
			}
			if len(byName["fenced-span"]) != 0 {
				t.Error("span from a fenced worker was ingested")
			}
			if len(byName["claim"]) != 1 {
				t.Errorf("claim spans: %d, want 1", len(byName["claim"]))
			}
		})
	}
}

// TestFleetTraceKillResume is the acceptance drill from the issue: a
// job submitted with a client traceparent is claimed by a worker that
// is killed mid-anneal after shipping a checkpoint; a second worker
// resumes from the checkpoint and completes. The trace served at
// GET /v1/jobs/{id}/trace must be a single tree under the original
// trace ID, spanning both workers, with a resume event on the second
// attempt's anneal span.
func TestFleetTraceKillResume(t *testing.T) {
	const (
		clientTID  = "4bf92f3577b34da6a3ce929d0e0e4736"
		clientSpan = "00f067aa0ba902b7"
	)
	f := startFleet(t, server.Options{
		StateDir: t.TempDir(),
		Retry:    retry.Policy{Base: 10 * time.Millisecond, Multiplier: 1, MaxAttempts: 5},
	}, Options{
		LeaseTTL:        400 * time.Millisecond,
		HeartbeatEvery:  40 * time.Millisecond,
		CheckpointEvery: 200,
	})
	victim, _ := f.startWorker(WorkerOptions{ID: "victim", Dir: t.TempDir()})

	id := f.submitTraced(testDeck, server.JobOptions{Seed: 1, MaxMoves: 60_000},
		"00-"+clientTID+"-"+clientSpan+"-01")

	j := f.mgr.Get(id)
	if j == nil {
		t.Fatal("job not found")
	}
	shipped := time.Now().Add(60 * time.Second)
	for f.mgr.ResumePayload(j) == nil {
		if time.Now().After(shipped) {
			t.Fatal("no checkpoint shipped before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.Kill()
	f.waitMetric("oblxd_lease_expirations_total 1", 30*time.Second)

	f.startWorker(WorkerOptions{ID: "rescuer", Dir: t.TempDir()})
	f.waitState(id, server.StateDone, 300*time.Second)

	// The trace closes just after the terminal state publishes.
	var sum server.TraceSummary
	settle := time.Now().Add(10 * time.Second)
	for {
		sum = f.getTrace(id)
		if len(sum.Tree) == 1 && sum.Tree[0].Status == "ok" || time.Now().After(settle) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if sum.TraceID != clientTID {
		t.Fatalf("trace ID %q, want the original client trace %s", sum.TraceID, clientTID)
	}
	if len(sum.Tree) != 1 {
		t.Fatalf("trace has %d roots, want one tree; spans %d", len(sum.Tree), sum.Spans)
	}
	root := sum.Tree[0]
	if root.Name != "job" || root.SpanID != trace.RootSpanID(clientTID) || root.Parent != clientSpan {
		t.Fatalf("root %q id %q parent %q, want job/%s/%s",
			root.Name, root.SpanID, root.Parent, trace.RootSpanID(clientTID), clientSpan)
	}

	byName := map[string][]*trace.Node{}
	flatten(sum.Tree, byName)

	// Both incarnations claimed: two claim spans naming the two workers.
	workers := map[string]bool{}
	for _, n := range byName["claim"] {
		workers[n.Attrs["worker"]] = true
	}
	if len(byName["claim"]) < 2 || !workers["victim"] || !workers["rescuer"] {
		t.Errorf("claim spans %d with workers %v, want both victim and rescuer", len(byName["claim"]), workers)
	}

	// The rescuer's anneal span completed under the same root and
	// carries the resume event (the victim's open span died with it).
	annealSpans := byName["anneal"]
	if len(annealSpans) == 0 {
		t.Fatal("no anneal span shipped home")
	}
	resumed := false
	for _, n := range annealSpans {
		if n.Parent != root.SpanID {
			t.Errorf("anneal span parented to %q, want the job root", n.Parent)
		}
		for _, ev := range n.Events {
			if ev.Name == "resume" {
				resumed = true
				if ev.Attrs["move"] == "" {
					t.Error("resume event has no move attr")
				}
			}
		}
	}
	if !resumed {
		t.Error("no anneal span carries a resume event — the resumed attempt's trace is missing")
	}

	if !strings.Contains(f.metricsText(), "oblxd_span_duration_seconds") {
		t.Error("span duration histogram absent from exposition")
	}
}
