package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"astrx/internal/metrics"
	"astrx/internal/server"

	"log/slog"
)

// testDeck is the same relaxed Simple OTA problem the server tests use:
// the paper's Table 2 topology with spec anchors loose enough that a few
// thousand moves finish (and usually succeed). Fleet tests need runs
// measured in fractions of a second, not the paper's overnight budgets.
const testDeck = `
.lib c2u
.module ota (inp inn out vdd vss)
m1 n1  inp ntail ntail nmos3 w=W1 l=L1
m2 out inn ntail ntail nmos3 w=W1 l=L1
m3 n1  n1  vdd  vdd  pmos3 w=W3 l=L3
m4 out n1  vdd  vdd  pmos3 w=W3 l=L3
m5 ntail nbias vss vss nmos3 w=W5 l=L5
m6 nbias nbias vss vss nmos3 w=W5 l=L5
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=500u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=500u grid
.var L5 min=2u max=20u  grid
.var Ib min=2u max=250u cont

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.bias
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm 'db(dc_gain(tf))' good=30 bad=5
.spec gbw 'ugf(tf)' good=1Meg bad=10k
.spec pm  'phase_margin(tf)' good=45 bad=15
.spec pwr 'power()' good=5m bad=50m
.region xamp.m1 sat
.region xamp.m2 sat
`

// tWriter adapts t.Logf to io.Writer; writes after test completion are
// dropped (late goroutines may still log).
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	defer func() { recover() }()
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(tWriter{t: t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// lockedBuffer is a concurrency-safe log sink tests can grep.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// bufferLogger returns a debug logger writing into a greppable buffer.
func bufferLogger(buf *lockedBuffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// serveFleet mounts a coordinator's handler on a test HTTP server.
func serveFleet(c *Coordinator) *httptest.Server {
	return httptest.NewServer(c.Handler())
}

// testFleet is one coordinator (manager + HTTP server) under test.
type testFleet struct {
	t     *testing.T
	mgr   *server.Manager
	coord *Coordinator
	ts    *httptest.Server
}

// startFleet builds an external-exec manager, a coordinator on top, and
// an HTTP server exposing both APIs. Cleanup runs in reverse order:
// server, coordinator, manager.
func startFleet(t *testing.T, mgrOpt server.Options, fOpt Options) *testFleet {
	t.Helper()
	mgrOpt.ExternalExec = true
	if mgrOpt.ProgressEvery == 0 {
		mgrOpt.ProgressEvery = 200
	}
	if mgrOpt.Registry == nil {
		mgrOpt.Registry = metrics.New()
	}
	if mgrOpt.Logger == nil {
		mgrOpt.Logger = testLogger(t)
	}
	mgr, err := server.New(mgrOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	if fOpt.Logger == nil {
		fOpt.Logger = testLogger(t)
	}
	coord := NewCoordinator(mgr, fOpt)
	t.Cleanup(coord.Stop)
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return &testFleet{t: t, mgr: mgr, coord: coord, ts: ts}
}

// startWorker runs a fleet worker against the coordinator; the returned
// stop function drains it gracefully and waits for exit.
func (f *testFleet) startWorker(opt WorkerOptions) (*Worker, func()) {
	f.t.Helper()
	opt.Coordinator = f.ts.URL
	if opt.Poll <= 0 {
		opt.Poll = 20 * time.Millisecond
	}
	if opt.Logger == nil {
		opt.Logger = testLogger(f.t)
	}
	w := NewWorker(opt)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				f.t.Error("worker did not stop")
			}
		})
	}
	f.t.Cleanup(stop)
	return w, stop
}

// submit posts a deck through the client API and returns the job ID.
func (f *testFleet) submit(deck string, opt server.JobOptions) string {
	f.t.Helper()
	body, _ := json.Marshal(map[string]any{"deck": deck, "options": opt})
	resp, err := http.Post(f.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		f.t.Fatal(err)
	}
	return st.ID
}

// status fetches the job's current status.
func (f *testFleet) status(id string) server.Status {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		f.t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want, failing fast when it
// lands in a different terminal state.
func (f *testFleet) waitState(id string, want server.State, timeout time.Duration) server.Status {
	f.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := f.status(id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			f.t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("job %s stuck in %s after %s, want %s", id, st.State, timeout, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricsText fetches the Prometheus exposition.
func (f *testFleet) metricsText() string {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/debug/metrics")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// healthz fetches and parses /healthz.
func (f *testFleet) healthz() server.Health {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		f.t.Fatal(err)
	}
	return h
}

// fastFleetOptions are lease timings tuned for single-CPU race-detector
// test runs: heartbeats fast enough to observe, TTLs generous enough
// that a healthy worker never expires by accident.
func fastFleetOptions() Options {
	return Options{
		LeaseTTL:        3 * time.Second,
		HeartbeatEvery:  50 * time.Millisecond,
		CheckpointEvery: 500,
	}
}

// TestFleetLifecycle runs one job through a real coordinator + worker
// pair over HTTP: claim, heartbeats with progress, completion — then
// checks the operational surfaces (healthz fleet section, metrics).
func TestFleetLifecycle(t *testing.T) {
	f := startFleet(t, server.Options{StateDir: t.TempDir()}, fastFleetOptions())
	f.startWorker(WorkerOptions{ID: "w1", Dir: t.TempDir()})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 3000})
	st := f.waitState(id, server.StateDone, 120*time.Second)
	if st.BestCost == nil {
		t.Error("no best cost recorded — progress events did not flow through heartbeats")
	}

	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr server.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.State != server.StateDone || jr.Result == nil {
		t.Fatalf("result: state %s, view nil=%v", jr.State, jr.Result == nil)
	}

	h := f.healthz()
	if h.Fleet == nil {
		t.Fatal("healthz: no fleet section in coordinator mode")
	}
	if h.Fleet.Workers != 1 || h.Fleet.WorkersByState[WorkerAlive] != 1 {
		t.Errorf("healthz fleet: %+v, want 1 alive worker", h.Fleet)
	}
	if h.Fleet.QueueDepth != 0 {
		t.Errorf("healthz fleet queue_depth = %d, want 0", h.Fleet.QueueDepth)
	}

	text := f.metricsText()
	for _, want := range []string{
		`oblxd_workers{state="alive"} 1`,
		`oblxd_heartbeats_total{outcome="ok"}`,
		`oblxd_jobs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestFleetMultiRunFanOut checks that a Runs=3 job fans out as per-run
// leases across two workers and commits exactly one final result.
func TestFleetMultiRunFanOut(t *testing.T) {
	f := startFleet(t, server.Options{}, fastFleetOptions())
	f.startWorker(WorkerOptions{ID: "w1"})
	f.startWorker(WorkerOptions{ID: "w2"})

	id := f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 2000, Runs: 3})
	f.waitState(id, server.StateDone, 180*time.Second)

	text := f.metricsText()
	if !strings.Contains(text, `oblxd_jobs_finished_total{state="done"} 1`) {
		t.Errorf("multi-run job must finish exactly once; metrics:\n%s", grepMetrics(text, "oblxd_jobs_finished_total"))
	}
	f.coord.mu.Lock()
	nMultis, nLeases := len(f.coord.multis), len(f.coord.leases)
	f.coord.mu.Unlock()
	if nMultis != 0 || nLeases != 0 {
		t.Errorf("leaked fan-out state: %d multis, %d leases", nMultis, nLeases)
	}
}

// TestWorkerRegistryLiveness drives the liveness classification off
// synthetic last-seen times.
func TestWorkerRegistryLiveness(t *testing.T) {
	f := startFleet(t, server.Options{}, Options{LeaseTTL: time.Second, HeartbeatEvery: 100 * time.Millisecond})
	c := f.coord

	c.noteWorker("fresh")
	now := time.Now()
	c.mu.Lock()
	c.workers["lagging"] = &workerInfo{lastSeen: now.Add(-500 * time.Millisecond)} // past 3× heartbeat
	c.workers["gone"] = &workerInfo{lastSeen: now.Add(-2 * time.Second)}           // past the TTL
	c.mu.Unlock()

	total, by := c.workerBreakdown()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	for state, want := range map[string]int{WorkerAlive: 1, WorkerSuspect: 1, WorkerDead: 1} {
		if by[state] != want {
			t.Errorf("breakdown[%s] = %d, want %d (all: %v)", state, by[state], want, by)
		}
	}

	h := f.healthz()
	if h.Fleet == nil || h.Fleet.Workers != 3 {
		t.Errorf("healthz fleet = %+v, want 3 workers", h.Fleet)
	}
}

// TestFleetQueueDepthInHealth checks queue_depth surfaces jobs waiting
// for a claim (no worker is running in this test).
func TestFleetQueueDepthInHealth(t *testing.T) {
	f := startFleet(t, server.Options{}, fastFleetOptions())
	f.submit(testDeck, server.JobOptions{Seed: 1, MaxMoves: 1000})
	f.submit(testDeck, server.JobOptions{Seed: 2, MaxMoves: 1000})

	if h := f.healthz(); h.Fleet == nil || h.Fleet.QueueDepth != 2 {
		t.Errorf("healthz fleet = %+v, want queue_depth 2", h.Fleet)
	}
}

// grepMetrics filters an exposition to lines mentioning name.
func grepMetrics(text, name string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
