// Package fleet splits the oblxd daemon into a coordinator/worker
// fleet, pushing the robustness story past the process boundary: the
// paper's throughput claim ("circuit-level designs in minutes" by
// spending huge numbers of cheap evaluations) scales horizontally only
// if many machines can anneal concurrently without losing or
// duplicating work.
//
// The coordinator owns the durable job store (a server.Manager with
// Options.ExternalExec set) and hands out leases over HTTP. A worker
// claims one run of one job, renews the lease with heartbeats that
// carry progress ticks, ships checkpoints back through durable
// envelopes, and commits the finished result. Supervision generalizes
// the standalone stall watchdog into two distinguishable failures:
//
//   - missed heartbeats → the worker died (or is partitioned); the
//     lease expires and the job is re-leased to any other worker, which
//     resumes from the last shipped checkpoint;
//   - heartbeats without eval progress → the job stalled; the
//     coordinator revokes the lease and requeues with backoff, burning
//     a supervised attempt, until the job is poisoned.
//
// Every lease carries a fencing epoch from a monotonic, durably
// persisted counter. A partitioned worker that comes back after its
// job was re-leased holds a stale epoch, so its late heartbeats,
// checkpoints, and commits are rejected ("fenced") instead of
// overwriting the successor's work — the exactly-once half the lease
// TTL alone cannot give. Multi-start jobs (Runs > 1) fan out as
// independent per-run leases with best-so-far costs exchanged through
// the coordinator, so a fleet finishes a RunBest job the way one
// process would, just wider.
package fleet

import (
	"encoding/json"
	"time"

	"astrx/internal/oblx"
	"astrx/internal/server"
	"astrx/internal/trace"
)

// Fleet protocol endpoints, all POST, mounted by Coordinator.Handler:
//
//	/v1/fleet/claim               claim one run of one job (204 when idle)
//	/v1/fleet/jobs/{id}/heartbeat renew the lease; carries a progress tick
//	/v1/fleet/jobs/{id}/checkpoint ship the run's latest checkpoint
//	/v1/fleet/jobs/{id}/complete  commit the finished result (idempotent)
//	/v1/fleet/jobs/{id}/release   hand the lease back (graceful drain)
//
// Requests identified by a (worker, epoch) pair that does not match the
// active lease answer 409 with a "fenced" error body. Workers propagate
// the job's X-Request-Id on every call, so one grep follows a job
// across machines.

// ClaimRequest is the body of POST /v1/fleet/claim.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse grants a lease over one run of one job.
type ClaimResponse struct {
	JobID string `json:"job_id"`
	// Run is the run index within a multi-start job (0 for single-run).
	Run int `json:"run"`
	// Epoch is the lease's fencing token; the worker echoes it on every
	// subsequent message about this run.
	Epoch uint64 `json:"epoch"`
	Deck  string `json:"deck"`
	// Options are the job's synthesis knobs with Runs forced to 1 and
	// Seed already offset for this run index.
	Options server.JobOptions `json:"options"`
	// Resumable marks a single-run job: the worker checkpoints locally,
	// ships snapshots, and resumes from Checkpoint when present.
	Resumable bool `json:"resumable,omitempty"`
	// CheckpointEvery is the move interval between local checkpoints.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Checkpoint is the resume point (raw checkpoint JSON), if any.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// LeaseTTL is how long the lease lives without a heartbeat;
	// HeartbeatEvery is the cadence the worker must beat at.
	LeaseTTL       time.Duration `json:"lease_ttl_ns"`
	HeartbeatEvery time.Duration `json:"heartbeat_every_ns"`
	// RequestID is the job's correlation ID, threaded through worker log
	// lines and echoed back on fleet calls.
	RequestID string `json:"request_id,omitempty"`
	// Traceparent is the job's W3C trace context (trace ID + the job
	// root span ID). The worker's anneal and eval spans join this trace
	// and parent under the root, so one trace spans the fleet hop — and
	// a re-lease after a worker death keeps extending the same tree.
	Traceparent string `json:"traceparent,omitempty"`
	// BestCost is the best cost a sibling run has reported so far
	// (multi-start jobs only).
	BestCost *float64 `json:"best_cost,omitempty"`
}

// HeartbeatRequest renews a lease. Progress carries the latest
// annealing telemetry sample; the coordinator uses Evals advancement to
// distinguish "alive and working" from "alive but stalled".
type HeartbeatRequest struct {
	Worker   string              `json:"worker"`
	Run      int                 `json:"run"`
	Epoch    uint64              `json:"epoch"`
	Progress *oblx.ProgressEvent `json:"progress,omitempty"`
	// Spans are trace spans completed on the worker since the last
	// heartbeat, shipped home so the coordinator's trace tree stays the
	// single source of truth. Ingested only when the fencing check
	// passes.
	Spans []trace.Span `json:"spans,omitempty"`
}

// HeartbeatResponse acknowledges a lease renewal.
type HeartbeatResponse struct {
	// Cancel instructs the worker to stop the run and commit its
	// best-so-far as cancelled (client DELETE propagated to the fleet).
	Cancel bool `json:"cancel,omitempty"`
	// BestCost is the best cost any sibling run has reported — the
	// multi-start best-so-far exchange.
	BestCost *float64 `json:"best_cost,omitempty"`
}

// CheckpointRequest ships a run's latest checkpoint to the coordinator,
// which seals it into the durable job store so any worker can resume.
type CheckpointRequest struct {
	Worker  string          `json:"worker"`
	Run     int             `json:"run"`
	Epoch   uint64          `json:"epoch"`
	Payload json.RawMessage `json:"payload"`
}

// CompleteRequest commits a run's terminal outcome. Completion is
// idempotent per (run, epoch): a duplicated delivery acknowledges
// instead of double-committing.
type CompleteRequest struct {
	Worker string            `json:"worker"`
	Run    int               `json:"run"`
	Epoch  uint64            `json:"epoch"`
	Result *server.JobResult `json:"result"`
	// Spans are the final trace spans of the run (the anneal span and
	// any evals since the last heartbeat).
	Spans []trace.Span `json:"spans,omitempty"`
}

// ReleaseRequest hands a lease back without a result — the graceful
// drain of a worker shutting down. The job re-enters the queue head
// with no supervised attempt burned.
type ReleaseRequest struct {
	Worker string `json:"worker"`
	Run    int    `json:"run"`
	Epoch  uint64 `json:"epoch"`
	// Spans are trace spans completed since the last heartbeat, so a
	// graceful drain loses no tracing either.
	Spans []trace.Span `json:"spans,omitempty"`
}

// apiError is the JSON error body of fleet endpoints.
type apiError struct {
	Error string `json:"error"`
}
