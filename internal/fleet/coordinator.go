package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"astrx/internal/durable"
	"astrx/internal/metrics"
	"astrx/internal/retry"
	"astrx/internal/server"
	"astrx/internal/telemetry"

	"log/slog"
)

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the worker is declared dead and the run is re-leased (0 → 15s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the cadence workers are told to beat at
	// (0 → LeaseTTL/3). Several heartbeats fit in one TTL, so isolated
	// drops don't expire a healthy worker's lease.
	HeartbeatEvery time.Duration
	// StallTimeout declares a run stalled when heartbeats keep arriving
	// but the eval counter stops advancing for this long; the lease is
	// revoked and the job requeued, burning a supervised attempt.
	// 0 → stall supervision off (death supervision stays on).
	StallTimeout time.Duration
	// Retry paces the re-lease backoff of multi-start runs and bounds
	// their attempts. Zero value → the manager's own policy (whole jobs
	// always use the manager's policy via RequeueExternal).
	Retry retry.Policy
	// CheckpointEvery is the local-checkpoint move interval workers are
	// told to use for resumable jobs (0 → 5000).
	CheckpointEvery int
	// StateDir persists the fencing-epoch high-water mark so leases
	// granted after a coordinator restart outfence everything granted
	// before it. Point it at the manager's state directory. Empty is
	// safe only because an in-memory manager forgets its jobs on
	// restart anyway: stale-epoch messages then fail the lease lookup
	// instead of the fence.
	StateDir string
	// FS is the filesystem under epoch persistence (nil → the real
	// one). Chaos tests substitute a fault-injecting wrapper.
	FS durable.FS
	// Logger receives structured fleet logs (nil → discarded).
	Logger *slog.Logger
}

// Coordinator owns the lease table, the worker registry, and the fleet
// half of the HTTP API. It drives a server.Manager built with
// Options.ExternalExec: the manager still owns jobs, durability, and
// client-facing endpoints; the coordinator decides who runs what and
// when a run is declared dead, stalled, or finished.
type Coordinator struct {
	mgr  *server.Manager
	opt  Options
	rpol retry.Policy
	fsys durable.FS
	log  *slog.Logger
	// suspectAfter is the liveness threshold between alive and suspect.
	suspectAfter time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	leases  map[leaseKey]*lease
	multis  map[string]*multiJob
	workers map[string]*workerInfo
	// committed records the epoch that successfully completed each run,
	// so a duplicated complete delivery acks instead of being fenced.
	committed map[leaseKey]uint64
	// epoch is the fencing high-water mark (see lease.go).
	epoch uint64

	mHB       map[string]*metrics.Counter // heartbeats by outcome
	mLeaseExp *metrics.Counter
	mFenced   *metrics.Counter
	mStalls   *metrics.Counter
}

// multiJob tracks the fan-out of one multi-start job: which run
// indices still need a lease, per-run attempts and outcomes, and the
// best cost any run has reported (the best-so-far exchange).
type multiJob struct {
	job      *server.Job
	runs     int
	pending  []pendingRun
	active   int
	attempts map[int]int
	results  map[int]*server.JobResult
	bestCost float64 // +Inf until a run reports
}

// pendingRun is a run awaiting (re-)lease, with its backoff deadline.
type pendingRun struct {
	run       int
	notBefore time.Time
}

// NewCoordinator wires a coordinator onto an external-exec manager and
// starts the lease reaper. Call Stop to shut it down.
func NewCoordinator(mgr *server.Manager, opt Options) *Coordinator {
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 15 * time.Second
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = opt.LeaseTTL / 3
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 5000
	}
	rpol := opt.Retry
	if rpol == (retry.Policy{}) {
		rpol = mgr.RetryPolicy()
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = durable.OS
	}
	lg := opt.Logger
	if lg == nil {
		lg = telemetry.DiscardLogger()
	}
	c := &Coordinator{
		mgr:          mgr,
		opt:          opt,
		rpol:         rpol,
		fsys:         fsys,
		log:          lg,
		suspectAfter: 3 * opt.HeartbeatEvery,
		leases:       make(map[leaseKey]*lease),
		multis:       make(map[string]*multiJob),
		workers:      make(map[string]*workerInfo),
		committed:    make(map[leaseKey]uint64),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.loadEpoch()

	reg := mgr.Registry()
	c.mHB = map[string]*metrics.Counter{}
	for _, outcome := range []string{"ok", "fenced", "unknown"} {
		c.mHB[outcome] = reg.Counter("oblxd_heartbeats_total", "outcome", outcome)
	}
	reg.SetHelp("oblxd_heartbeats_total", "worker heartbeats by outcome")
	c.mLeaseExp = reg.Counter("oblxd_lease_expirations_total")
	reg.SetHelp("oblxd_lease_expirations_total", "leases expired because the worker missed heartbeats")
	c.mFenced = reg.Counter("oblxd_fenced_commits_total")
	reg.SetHelp("oblxd_fenced_commits_total", "stale-epoch checkpoint/complete attempts rejected by fencing")
	c.mStalls = reg.Counter("oblxd_stalls_total")
	for _, st := range workerStates {
		st := st
		reg.GaugeFunc("oblxd_workers", func() float64 {
			_, by := c.workerBreakdown()
			return float64(by[st])
		}, "state", st)
	}
	reg.SetHelp("oblxd_workers", "registered fleet workers by liveness state")

	mgr.SetFleetHealth(c.fleetHealth)

	c.wg.Add(1)
	go c.reaper()
	return c
}

// Stop halts the reaper. Leases stay in memory (the process is going
// away); running jobs are re-leased by the next incarnation's recovery.
func (c *Coordinator) Stop() {
	c.cancel()
	c.wg.Wait()
}

// Handler mounts the fleet endpoints in front of the manager's own API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/claim", c.handleClaim)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/release", c.handleRelease)
	mux.Handle("/", c.mgr.Handler())
	return mux
}

// rlog scopes the fleet log to one request: job/run/worker plus the
// propagated X-Request-Id, keeping the cross-machine lifecycle
// greppable by one ID.
func (c *Coordinator) rlog(r *http.Request, job string, run int, worker string) *slog.Logger {
	lg := c.log.With("job", job, "run", run, "worker", worker)
	if req := r.Header.Get("X-Request-Id"); req != "" {
		lg = lg.With("req", req)
	}
	return lg
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("parse request: %v", err)})
		return false
	}
	return true
}

// handleClaim hands out one lease, preferring pending multi-start runs
// over fresh queue pulls so a fanned-out job finishes before new work
// starts spreading.
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "claim without worker ID"})
		return
	}
	c.noteWorker(req.Worker)

	claimStart := time.Now()
	cr := c.claimPending(req.Worker)
	if cr == nil {
		cr = c.claimFresh(req.Worker)
	}
	if cr == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Record the claim span outside c.mu: completing a span feeds the
	// span-duration histogram, and the registry's exposition path takes
	// c.mu through the worker-state gauges.
	if j := c.mgr.Get(cr.JobID); j != nil {
		j.Trace().AddTimed("claim", "", claimStart, time.Since(claimStart),
			"worker", req.Worker, "run", strconv.Itoa(cr.Run),
			"epoch", strconv.FormatUint(cr.Epoch, 10))
	}
	c.rlog(r, cr.JobID, cr.Run, req.Worker).Info("lease granted",
		"epoch", cr.Epoch, "seed", cr.Options.Seed, "resume", len(cr.Checkpoint) > 0)
	writeJSON(w, http.StatusOK, cr)
}

// claimPending re-leases a multi-start run whose previous lease died,
// once its backoff deadline passes.
func (c *Coordinator) claimPending(worker string) *ClaimResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, mj := range c.multis {
		for i, p := range mj.pending {
			if now.Before(p.notBefore) {
				continue
			}
			mj.pending = append(mj.pending[:i], mj.pending[i+1:]...)
			mj.active++
			l := c.grantLocked(mj.job, p.run, worker, mj)
			return c.claimResponseLocked(l)
		}
	}
	return nil
}

// claimFresh pulls the next queued job from the manager. A multi-start
// job fans out: this claim takes run 0 and the remaining runs become
// pending leases for other claimants.
func (c *Coordinator) claimFresh(worker string) *ClaimResponse {
	j := c.mgr.ClaimQueued()
	if j == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var mj *multiJob
	if j.Options.Runs > 1 {
		mj = &multiJob{
			job:      j,
			runs:     j.Options.Runs,
			active:   1,
			attempts: make(map[int]int),
			results:  make(map[int]*server.JobResult),
			bestCost: math.Inf(1),
		}
		for i := 1; i < mj.runs; i++ {
			mj.pending = append(mj.pending, pendingRun{run: i})
		}
		c.multis[j.ID] = mj
	}
	l := c.grantLocked(j, 0, worker, mj)
	return c.claimResponseLocked(l)
}

// claimResponseLocked projects a lease into its wire form. Callers hold
// c.mu.
func (c *Coordinator) claimResponseLocked(l *lease) *ClaimResponse {
	j := l.job
	opt := j.Options
	// The worker runs exactly one anneal; RunBest seed spreading is the
	// coordinator's job now (same offsets as oblx.RunBest).
	opt.Seed = opt.Seed + int64(l.key.run)*7919
	opt.Runs = 1
	cr := &ClaimResponse{
		JobID:          j.ID,
		Run:            l.key.run,
		Epoch:          l.epoch,
		Deck:           j.Deck,
		Options:        opt,
		LeaseTTL:       c.opt.LeaseTTL,
		HeartbeatEvery: c.opt.HeartbeatEvery,
		RequestID:      j.RequestID(),
		Traceparent:    j.TraceContext(),
	}
	if l.multi == nil {
		// Checkpoint/resume is a single-run feature, exactly as in the
		// standalone daemon.
		cr.Resumable = true
		cr.CheckpointEvery = c.opt.CheckpointEvery
		cr.Checkpoint = c.mgr.ResumePayload(j)
	} else if !math.IsInf(l.multi.bestCost, 1) {
		b := l.multi.bestCost
		cr.BestCost = &b
	}
	return cr
}

// handleHeartbeat renews a lease and feeds the progress tick through to
// the manager (SSE, metrics, flight recorder).
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var hb HeartbeatRequest
	if !readJSON(w, r, &hb) {
		return
	}
	c.noteWorker(hb.Worker)

	now := time.Now()
	c.mu.Lock()
	l, outcome := c.lookupLocked(leaseKey{job: id, run: hb.Run}, hb.Worker, hb.Epoch)
	if l == nil {
		c.mu.Unlock()
		c.mHB[outcome].Inc()
		c.rlog(r, id, hb.Run, hb.Worker).Warn("heartbeat rejected",
			"outcome", outcome, "epoch", hb.Epoch)
		writeJSON(w, http.StatusConflict, apiError{Error: outcome + ": lease not held"})
		return
	}
	l.expires = now.Add(c.opt.LeaseTTL)
	if hb.Progress != nil && hb.Progress.Evals > l.lastEvals {
		l.lastEvals = hb.Progress.Evals
		l.lastProgress = now
	}
	resp := HeartbeatResponse{Cancel: l.cancelled}
	job := l.job
	if mj := l.multi; mj != nil {
		if hb.Progress != nil && hb.Progress.BestCost < mj.bestCost {
			mj.bestCost = hb.Progress.BestCost
		}
		if !math.IsInf(mj.bestCost, 1) {
			b := mj.bestCost
			resp.BestCost = &b
		}
	}
	c.mu.Unlock()

	c.mHB["ok"].Inc()
	if len(hb.Spans) > 0 {
		// The fencing check above passed, so these spans come from the
		// live leaseholder, not a zombie.
		c.mgr.AddTraceSpans(job, hb.Spans)
	}
	if hb.Progress != nil {
		ev := *hb.Progress
		ev.Run = hb.Run
		c.mgr.RecordExternalProgress(job, ev)
	}
	if !resp.Cancel && job.UserCancelled() {
		resp.Cancel = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint stores a shipped checkpoint as the job's durable
// resume point. Fenced writers are rejected: a stale worker must never
// overwrite the successor's progress.
func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req CheckpointRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.noteWorker(req.Worker)

	c.mu.Lock()
	l, outcome := c.lookupLocked(leaseKey{job: id, run: req.Run}, req.Worker, req.Epoch)
	var job *server.Job
	if l != nil {
		job = l.job
	}
	c.mu.Unlock()
	if l == nil {
		c.mFenced.Inc()
		c.rlog(r, id, req.Run, req.Worker).Warn("checkpoint rejected",
			"outcome", outcome, "epoch", req.Epoch)
		writeJSON(w, http.StatusConflict, apiError{Error: outcome + ": lease not held"})
		return
	}
	if err := c.mgr.PutCheckpointPayload(job, req.Payload); err != nil {
		c.rlog(r, id, req.Run, req.Worker).Error("store shipped checkpoint failed", "err", err)
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleComplete commits a run's terminal outcome exactly once. The
// lease must still be held: a worker that lost it (partition healed
// after the TTL, coordinator restarted) is fenced, its result dropped,
// and the rejection logged and counted. Duplicate deliveries of an
// already-committed (run, epoch) acknowledge idempotently.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.noteWorker(req.Worker)
	if req.Result == nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "complete without result"})
		return
	}
	key := leaseKey{job: id, run: req.Run}
	lg := c.rlog(r, id, req.Run, req.Worker)

	c.mu.Lock()
	l, outcome := c.lookupLocked(key, req.Worker, req.Epoch)
	if l == nil {
		if c.committed[key] == req.Epoch && req.Epoch != 0 {
			c.mu.Unlock()
			w.WriteHeader(http.StatusOK) // duplicated delivery of a commit that won
			return
		}
		c.mu.Unlock()
		c.mFenced.Inc()
		lg.Warn("late commit rejected", "outcome", outcome, "epoch", req.Epoch,
			"state", req.Result.State)
		writeJSON(w, http.StatusConflict, apiError{Error: outcome + ": lease not held"})
		return
	}
	delete(c.leases, key)
	c.committed[key] = req.Epoch
	job := l.job

	if mj := l.multi; mj != nil {
		mj.active--
		mj.results[req.Run] = req.Result
		if v := req.Result.Result; v != nil && req.Result.State == server.StateDone && v.Cost.Total < mj.bestCost {
			mj.bestCost = v.Cost.Total
		}
		final := c.finalizeMultiLocked(mj)
		c.mu.Unlock()
		if len(req.Spans) > 0 {
			c.mgr.AddTraceSpans(job, req.Spans)
		}
		if final != nil {
			if err := c.mgr.CompleteExternal(job, final); err != nil {
				lg.Warn("multi-start completion rejected by manager", "err", err)
			} else {
				lg.Info("multi-start job finished", "state", final.State, "runs", mj.runs)
			}
		}
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	c.mu.Unlock()

	// Ingest the run's final spans before the terminal commit seals the
	// trace snapshot.
	if len(req.Spans) > 0 {
		c.mgr.AddTraceSpans(job, req.Spans)
	}
	if err := c.mgr.CompleteExternal(job, req.Result); err != nil {
		c.mFenced.Inc()
		lg.Warn("late commit rejected by manager", "err", err)
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	lg.Info("run committed", "state", req.Result.State, "epoch", req.Epoch)
	writeJSON(w, http.StatusOK, struct{}{})
}

// finalizeMultiLocked checks whether every run of a multi-start job is
// terminal and, if so, removes the fan-out record and returns the best
// result (oblx.RunBest's preference: done beats failed, dc-solved
// beats not, lower total cost wins). Callers hold c.mu.
func (c *Coordinator) finalizeMultiLocked(mj *multiJob) *server.JobResult {
	if len(mj.results) < mj.runs {
		return nil
	}
	delete(c.multis, mj.job.ID)
	better := func(a, b *server.JobResult) bool {
		if (a.State == server.StateDone) != (b.State == server.StateDone) {
			return a.State == server.StateDone
		}
		av, bv := a.Result, b.Result
		switch {
		case av == nil:
			return false
		case bv == nil:
			return true
		case av.DCSolved != bv.DCSolved:
			return av.DCSolved
		default:
			return av.Cost.Total < bv.Cost.Total
		}
	}
	var best *server.JobResult
	for _, r := range mj.results {
		if best == nil || better(r, best) {
			best = r
		}
	}
	return best
}

// handleRelease takes a lease back from a gracefully draining worker:
// the job returns to the queue head with no attempt burned, resuming
// from whatever checkpoint the worker shipped last.
func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req ReleaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.noteWorker(req.Worker)
	key := leaseKey{job: id, run: req.Run}

	c.mu.Lock()
	l, outcome := c.lookupLocked(key, req.Worker, req.Epoch)
	if l == nil {
		c.mu.Unlock()
		c.rlog(r, id, req.Run, req.Worker).Warn("release rejected", "outcome", outcome)
		writeJSON(w, http.StatusConflict, apiError{Error: outcome + ": lease not held"})
		return
	}
	delete(c.leases, key)
	job := l.job
	mj := l.multi
	if mj != nil {
		mj.active--
		mj.pending = append(mj.pending, pendingRun{run: req.Run})
	}
	c.mu.Unlock()

	if len(req.Spans) > 0 {
		c.mgr.AddTraceSpans(job, req.Spans)
	}
	if mj == nil {
		c.mgr.ReleaseExternal(job)
	}
	c.rlog(r, id, req.Run, req.Worker).Info("lease released")
	w.WriteHeader(http.StatusNoContent)
}

// reaper is the fleet generalization of the standalone stall watchdog:
// it expires leases whose worker went silent ("worker died") and
// revokes leases whose heartbeats carry no eval progress ("job
// stalled"), feeding both back into the manager's retry/poison
// supervision.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	interval := c.opt.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	for {
		if retry.Sleep(c.ctx, interval) != nil {
			return
		}
		c.reapOnce(time.Now())
	}
}

// reapOnce runs one supervision sweep.
func (c *Coordinator) reapOnce(now time.Time) {
	type revocation struct {
		l     *lease
		cause string
	}
	var revoked []revocation
	var finals []struct {
		job *server.Job
		res *server.JobResult
	}

	c.mu.Lock()
	for key, l := range c.leases {
		switch {
		case now.After(l.expires):
			delete(c.leases, key)
			c.mLeaseExp.Inc()
			revoked = append(revoked, revocation{l, fmt.Sprintf(
				"lease expired: worker %s missed heartbeats for %s", l.worker, c.opt.LeaseTTL)})
		case c.opt.StallTimeout > 0 && now.Sub(l.lastProgress) > c.opt.StallTimeout:
			delete(c.leases, key)
			c.mStalls.Inc()
			revoked = append(revoked, revocation{l, fmt.Sprintf(
				"stalled: heartbeats without eval progress for %s on worker %s", c.opt.StallTimeout, l.worker)})
		case !l.cancelled && l.job.UserCancelled():
			l.cancelled = true
		}
	}
	for _, rv := range revoked {
		mj := rv.l.multi
		if mj == nil {
			continue
		}
		// Per-run supervision of a fanned-out job: backoff re-lease while
		// attempts remain, else record the run as abandoned.
		run := rv.l.key.run
		mj.active--
		mj.attempts[run]++
		if c.rpol.Exhausted(mj.attempts[run]) {
			mj.results[run] = &server.JobResult{
				State: server.StateFailed,
				Error: fmt.Sprintf("server: run %d abandoned after %d attempts; last: %s",
					run, mj.attempts[run], rv.cause),
			}
			if final := c.finalizeMultiLocked(mj); final != nil {
				finals = append(finals, struct {
					job *server.Job
					res *server.JobResult
				}{mj.job, final})
			}
		} else {
			mj.pending = append(mj.pending, pendingRun{
				run:       run,
				notBefore: now.Add(c.rpol.Backoff(mj.attempts[run])),
			})
		}
	}
	c.mu.Unlock()

	for _, rv := range revoked {
		lg := c.log.With("job", rv.l.key.job, "run", rv.l.key.run, "worker", rv.l.worker)
		if req := rv.l.job.RequestID(); req != "" {
			lg = lg.With("req", req)
		}
		lg.Warn("lease revoked", "cause", rv.cause, "epoch", rv.l.epoch)
		if rv.l.multi == nil {
			// Whole-job supervision: requeue with backoff or poison.
			c.mgr.RequeueExternal(rv.l.job, rv.cause)
		}
	}
	for _, f := range finals {
		if err := c.mgr.CompleteExternal(f.job, f.res); err != nil {
			c.log.Warn("multi-start finalization rejected", "job", f.job.ID, "err", err)
		}
	}
}
