package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"astrx/internal/durable"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/retry"
	"astrx/internal/server"
	"astrx/internal/telemetry"
	"astrx/internal/trace"

	"log/slog"
)

// workerSynth is the worker's seam over the engine entry point, so
// chaos tests can substitute a run that stalls, blocks, or ticks
// progress deterministically.
var workerSynth = oblx.Run

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:7077".
	Coordinator string
	// ID names this worker in leases, logs, and the registry. Required.
	ID string
	// Dir holds the worker's local checkpoints (empty → no local
	// checkpointing; the run still ships nothing and restarts from the
	// coordinator's last stored checkpoint after a crash).
	Dir string
	// Client issues the fleet HTTP calls (nil → http.DefaultClient).
	// Chaos tests install a fault-injecting transport here.
	Client *http.Client
	// Poll is the idle wait between claim attempts (0 → 500ms).
	Poll time.Duration
	// Logger receives structured worker logs (nil → discarded).
	Logger *slog.Logger
}

// Worker claims runs from a coordinator and executes them: anneal,
// heartbeat, ship checkpoints, commit the result. One Worker runs one
// lease at a time; run several Workers (or several processes) to scale
// out.
type Worker struct {
	opt    WorkerOptions
	client *http.Client
	log    *slog.Logger

	// killed simulates kill -9 for chaos tests: the worker stops
	// messaging the coordinator mid-run, exactly as a dead process
	// would, and lets lease expiry discover the death.
	killed atomic.Bool

	mu     sync.Mutex
	cancel context.CancelFunc
}

// NewWorker builds a worker; call Run to start its claim loop.
func NewWorker(opt WorkerOptions) *Worker {
	if opt.Poll <= 0 {
		opt.Poll = 500 * time.Millisecond
	}
	cl := opt.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	lg := opt.Logger
	if lg == nil {
		lg = telemetry.DiscardLogger()
	}
	return &Worker{opt: opt, client: cl, log: lg.With("worker", opt.ID)}
}

// Kill simulates the worker process dying (kill -9): all in-flight work
// stops and no further message — heartbeat, checkpoint, complete —
// reaches the coordinator. Supervision must discover the death through
// lease expiry alone.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.mu.Lock()
	if w.cancel != nil {
		w.cancel()
	}
	w.mu.Unlock()
}

// Run claims and executes leases until ctx is cancelled (graceful
// drain: the current lease is released back to the coordinator with a
// final checkpoint) or Kill is called (abrupt death: silence).
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.cancel = cancel
	w.mu.Unlock()

	for {
		if ctx.Err() != nil || w.killed.Load() {
			return nil
		}
		var cr ClaimResponse
		status, err := w.postJSON(ctx, "/v1/fleet/claim", ClaimRequest{Worker: w.opt.ID}, &cr, "")
		switch {
		case err != nil || status == http.StatusNoContent:
			// Idle or coordinator unreachable: poll again. Claim carries no
			// lease yet, so retrying is always safe.
			if retry.Sleep(ctx, w.opt.Poll) != nil {
				return nil
			}
		case status != http.StatusOK:
			if retry.Sleep(ctx, w.opt.Poll) != nil {
				return nil
			}
		default:
			w.runLease(ctx, &cr)
		}
	}
}

// runLease executes one leased run end to end.
func (w *Worker) runLease(ctx context.Context, cr *ClaimResponse) {
	lg := w.log.With("job", cr.JobID, "run", cr.Run, "epoch", cr.Epoch)
	if cr.RequestID != "" {
		lg = lg.With("req", cr.RequestID)
	}
	// Join the job's distributed trace: the claim's traceparent carries
	// the trace ID and the coordinator-side root span ID, so spans
	// recorded here parent under the same root as every other
	// incarnation of this job. Shipping mode buffers completed spans for
	// the heartbeat/complete drain; a malformed or absent traceparent
	// leaves rec nil and every trace call a no-op.
	var rec *trace.Recorder
	if tc, terr := trace.Parse(cr.Traceparent); terr == nil {
		rec = trace.NewRecorder(tc, 0)
		rec.EnableShipping()
		lg = lg.With("trace", tc.TraceID)
	}
	lg.Info("lease claimed", "seed", cr.Options.Seed)

	deck, err := netlist.Parse(cr.Deck)
	if err != nil {
		w.complete(ctx, cr, rec, server.BuildJobResult(cr.JobID, nil, fmt.Errorf("fleet: reparse deck: %w", err)), lg)
		return
	}

	// Latest progress sample, exchanged with the coordinator on each
	// heartbeat. The annealing goroutine writes it; the heartbeat loop
	// reads it.
	var progMu sync.Mutex
	var latest *oblx.ProgressEvent

	opt := oblx.Options{
		Seed:          cr.Options.Seed,
		MaxMoves:      cr.Options.MaxMoves,
		NoFreeze:      cr.Options.NoFreeze,
		ProgressEvery: cr.Options.ProgressEvery,
		Trace:         rec,
		Progress: func(ev oblx.ProgressEvent) {
			ev.Run = cr.Run
			progMu.Lock()
			latest = &ev
			progMu.Unlock()
		},
	}
	if cr.Resumable && w.opt.Dir != "" {
		opt.CheckpointPath = filepath.Join(w.opt.Dir, "job-"+cr.JobID+".ckpt")
		opt.CheckpointEvery = cr.CheckpointEvery
	}
	if cr.Resumable && len(cr.Checkpoint) > 0 {
		if ck, err := oblx.DecodeCheckpoint(cr.Checkpoint); err == nil {
			opt.Resume = ck
			lg.Info("resuming from shipped checkpoint", "move", ck.Anneal.Move, "evals", ck.Evals)
		} else {
			lg.Warn("shipped checkpoint unusable, starting fresh", "err", err)
		}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	type outcome struct {
		res *oblx.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := workerSynth(runCtx, deck, opt)
		done <- outcome{res, err}
	}()

	hbEvery := cr.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = 5 * time.Second
	}
	var out outcome
	var fenced, cancelled bool
	var lastShipped []byte

beat:
	for {
		select {
		case out = <-done:
			break beat
		case <-time.After(hbEvery):
			if w.killed.Load() {
				cancelRun()
				<-done
				return // kill -9: no further messages, let the lease expire
			}
			progMu.Lock()
			prog := latest
			progMu.Unlock()
			var resp HeartbeatResponse
			status, err := w.postJSON(ctx, "/v1/fleet/jobs/"+cr.JobID+"/heartbeat",
				HeartbeatRequest{Worker: w.opt.ID, Run: cr.Run, Epoch: cr.Epoch, Progress: prog,
					Spans: rec.DrainNew()},
				&resp, cr.RequestID)
			switch {
			case err != nil:
				// Transient drop: keep annealing. If the partition outlives
				// the lease TTL the coordinator re-leases and we get fenced.
				lg.Warn("heartbeat failed", "err", err)
			case status == http.StatusConflict || status == http.StatusNotFound:
				fenced = true
				cancelRun()
			case resp.Cancel:
				cancelled = true
				cancelRun()
			}
			w.maybeShipCheckpoint(ctx, cr, opt.CheckpointPath, &lastShipped, lg)
		}
	}

	if w.killed.Load() {
		return // died mid-run: silence
	}
	if fenced {
		lg.Warn("lease fenced, abandoning run")
		return
	}
	if ctx.Err() != nil && !cancelled && out.res != nil && out.res.Cancelled {
		// Graceful drain: the worker is shutting down, not the job. Ship
		// the final checkpoint and hand the lease back so another worker
		// resumes mid-anneal with no attempt burned.
		drainCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
		defer stop()
		w.maybeShipCheckpoint(drainCtx, cr, opt.CheckpointPath, &lastShipped, lg)
		status, err := w.postJSON(drainCtx, "/v1/fleet/jobs/"+cr.JobID+"/release",
			ReleaseRequest{Worker: w.opt.ID, Run: cr.Run, Epoch: cr.Epoch,
				Spans: rec.DrainNew()}, nil, cr.RequestID)
		if err != nil || status >= 300 {
			lg.Warn("release failed", "status", status, "err", err)
		} else {
			lg.Info("lease released on drain")
		}
		return
	}
	w.complete(ctx, cr, rec, server.BuildJobResult(cr.JobID, out.res, out.err), lg)
}

// maybeShipCheckpoint posts the worker's latest local checkpoint to the
// coordinator when it changed since the last ship. The local file is a
// sealed envelope; the wire carries the raw JSON payload.
func (w *Worker) maybeShipCheckpoint(ctx context.Context, cr *ClaimResponse, path string, lastShipped *[]byte, lg *slog.Logger) {
	if path == "" {
		return
	}
	payload, err := durable.ReadSealed(nil, path)
	if err != nil || bytes.Equal(payload, *lastShipped) {
		return
	}
	status, err := w.postJSON(ctx, "/v1/fleet/jobs/"+cr.JobID+"/checkpoint",
		CheckpointRequest{Worker: w.opt.ID, Run: cr.Run, Epoch: cr.Epoch, Payload: payload},
		nil, cr.RequestID)
	if err != nil {
		lg.Warn("checkpoint ship failed", "err", err)
		return
	}
	if status >= 300 {
		lg.Warn("checkpoint ship rejected", "status", status)
		return
	}
	*lastShipped = payload
	lg.Info("checkpoint shipped", "bytes", len(payload))
}

// complete commits the run's terminal result, retrying transient
// failures. A 409 is final: the lease was fenced while we annealed and
// the result must be dropped, never committed over the successor's.
func (w *Worker) complete(ctx context.Context, cr *ClaimResponse, rec *trace.Recorder, result *server.JobResult, lg *slog.Logger) {
	if w.killed.Load() {
		return
	}
	// Completion must survive the drain cancellation of ctx.
	cctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	// Drain once, outside the retry loop, so a retried POST carries the
	// same final spans instead of an empty second drain.
	spans := rec.DrainNew()
	pol := retry.Policy{Base: 50 * time.Millisecond, Multiplier: 2, Max: time.Second, MaxAttempts: 5}
	err := retry.Do(cctx, pol, func(ctx context.Context) error {
		status, err := w.postJSON(ctx, "/v1/fleet/jobs/"+cr.JobID+"/complete",
			CompleteRequest{Worker: w.opt.ID, Run: cr.Run, Epoch: cr.Epoch, Result: result,
				Spans: spans},
			nil, cr.RequestID)
		if err != nil {
			return err
		}
		if status == http.StatusConflict {
			lg.Warn("late commit rejected, result dropped", "state", result.State)
			return nil // fenced: final, do not retry
		}
		if status >= 300 {
			return fmt.Errorf("fleet: complete: HTTP %d", status)
		}
		lg.Info("run committed", "state", result.State)
		return nil
	})
	if err != nil {
		lg.Error("commit failed, lease will expire", "err", err)
	}
}

// postJSON issues one fleet POST, decoding the response into out when
// non-nil and the status is 2xx. The job's request ID is propagated on
// X-Request-Id so coordinator and worker logs correlate.
func (w *Worker) postJSON(ctx context.Context, path string, body, out any, reqID string) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
