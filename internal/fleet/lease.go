package fleet

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"astrx/internal/durable"
	"astrx/internal/server"
)

// leaseKey identifies one leased unit of work: a (job, run) pair. A
// single-run job is run 0; a multi-start job holds one lease per run.
type leaseKey struct {
	job string
	run int
}

func (k leaseKey) String() string { return fmt.Sprintf("%s/%d", k.job, k.run) }

// lease is the coordinator's record of one granted lease. All fields
// are guarded by the coordinator's mutex.
type lease struct {
	key    leaseKey
	worker string
	// epoch is the fencing token: monotonically increasing across every
	// grant the coordinator (and, via the persisted high-water mark, any
	// successor coordinator) ever makes. A message carrying a lower
	// epoch than the active lease is from a fenced predecessor.
	epoch uint64
	// expires is pushed forward by each heartbeat; the reaper expires
	// the lease past it ("worker died").
	expires time.Time
	// lastEvals / lastProgress watermark real eval progress; heartbeats
	// that renew the lease without advancing lastEvals eventually trip
	// the stall timeout ("job stalled").
	lastEvals    int
	lastProgress time.Time
	// cancelled marks a pending cancel instruction for the worker,
	// delivered on its next heartbeat.
	cancelled bool

	job   *server.Job
	multi *multiJob // nil for single-run jobs
}

// epochFile is where the fencing high-water mark persists, relative to
// the coordinator's state directory.
const epochFile = "fleet-epoch.json"

// epochRecord is the on-disk form of the fencing counter.
type epochRecord struct {
	Epoch uint64 `json:"epoch"`
}

// loadEpoch restores the persisted fencing high-water mark, so leases
// granted by this incarnation always outfence leases granted before
// the restart. Missing file → start at zero (fresh store).
func (c *Coordinator) loadEpoch() {
	if c.opt.StateDir == "" {
		return
	}
	payload, err := durable.ReadSealed(c.fsys, filepath.Join(c.opt.StateDir, epochFile))
	if err != nil {
		return
	}
	var rec epochRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		c.log.Warn("fleet: corrupt epoch record, restarting fencing counter", "err", err)
		return
	}
	c.epoch = rec.Epoch
}

// nextEpochLocked mints the next fencing token and persists the
// high-water mark before the token can reach a worker — the invariant
// that makes post-restart leases strictly newer than anything granted
// before the crash. Callers hold c.mu.
func (c *Coordinator) nextEpochLocked() uint64 {
	c.epoch++
	if c.opt.StateDir != "" {
		data, _ := json.Marshal(epochRecord{Epoch: c.epoch})
		if err := durable.WriteSealedAtomic(c.fsys, filepath.Join(c.opt.StateDir, epochFile), data); err != nil {
			// The lease is still granted: losing the write risks epoch
			// reuse only after a coordinator restart, and recovery requeues
			// every running job anyway. Log it loudly and move on.
			c.log.Error("fleet: persist fencing epoch failed", "epoch", c.epoch, "err", err)
		}
	}
	return c.epoch
}

// grantLocked creates and registers a lease for one run of a job.
// Callers hold c.mu.
func (c *Coordinator) grantLocked(j *server.Job, run int, worker string, mj *multiJob) *lease {
	now := time.Now()
	l := &lease{
		key:          leaseKey{job: j.ID, run: run},
		worker:       worker,
		epoch:        c.nextEpochLocked(),
		expires:      now.Add(c.opt.LeaseTTL),
		lastProgress: now,
		job:          j,
		multi:        mj,
	}
	c.leases[l.key] = l
	return l
}

// lookupLocked resolves the active lease for (job, run) and checks the
// caller's identity against it. It returns the lease and "" on a match,
// or nil and the rejection outcome ("unknown" when no lease exists,
// "fenced" on a worker/epoch mismatch). Callers hold c.mu.
func (c *Coordinator) lookupLocked(key leaseKey, worker string, epoch uint64) (*lease, string) {
	l := c.leases[key]
	if l == nil {
		return nil, "unknown"
	}
	if l.worker != worker || l.epoch != epoch {
		return nil, "fenced"
	}
	return l, ""
}
