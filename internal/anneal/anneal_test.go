package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// funcProblem wraps a cost function for tests.
type funcProblem struct {
	vars []VarSpec
	cost func(x []float64) float64
}

func (p *funcProblem) Vars() []VarSpec          { return p.vars }
func (p *funcProblem) Cost(x []float64) float64 { return p.cost(x) }

func contVars(n int, lo, hi float64) []VarSpec {
	vs := make([]VarSpec, n)
	for i := range vs {
		vs[i] = VarSpec{Name: "x", Min: lo, Max: hi, Continuous: true}
	}
	return vs
}

func runOn(t *testing.T, p Problem, seed int64, maxMoves int) *Result {
	t.Helper()
	vars := p.Vars()
	moves := []Move{
		NewRandomStep("single", vars, 0.25),
		NewAllStep("all", vars),
	}
	res, err := Run(context.Background(), p, moves, Options{Seed: seed, MaxMoves: maxMoves})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQuadraticBowl(t *testing.T) {
	p := &funcProblem{
		vars: contVars(4, -10, 10),
		cost: func(x []float64) float64 {
			s := 0.0
			for i, v := range x {
				d := v - float64(i)
				s += d * d
			}
			return s
		},
	}
	res := runOn(t, p, 1, 60_000)
	if res.BestCost > 1e-3 {
		t.Errorf("quadratic best cost = %g, want < 1e-3", res.BestCost)
	}
	for i, v := range res.Best {
		if math.Abs(v-float64(i)) > 0.05 {
			t.Errorf("x[%d] = %g, want %d", i, v, i)
		}
	}
}

func TestRastriginEscapesLocalMinima(t *testing.T) {
	// Rastrigin has a lattice of local minima; a pure descent from the
	// default start gets stuck. The annealer must reach near the global
	// optimum at the (offset) origin.
	p := &funcProblem{
		vars: contVars(3, -5.12, 5.12),
		cost: func(x []float64) float64 {
			s := 10.0 * float64(len(x))
			for _, v := range x {
				s += v*v - 10*math.Cos(2*math.Pi*v)
			}
			return s
		},
	}
	res := runOn(t, p, 3, 120_000)
	if res.BestCost > 1.0 {
		t.Errorf("rastrigin best = %g, want < 1.0 (global ≈ 0)", res.BestCost)
	}
}

func TestMixedDiscreteContinuous(t *testing.T) {
	vars := []VarSpec{
		{Name: "w", Min: 1e-6, Max: 1e-3, PointsPerDecade: 50}, // discrete log grid
		{Name: "v", Min: 0, Max: 5, Continuous: true},          // continuous
		{Name: "l", Min: 1e-6, Max: 1e-4, PointsPerDecade: 25}, // discrete
	}
	target := []float64{37e-6, 2.25, 4.7e-6}
	p := &funcProblem{
		vars: vars,
		cost: func(x []float64) float64 {
			// log-scaled distance for the grid vars, linear for the volt.
			c := math.Pow(math.Log10(x[0]/target[0]), 2)
			c += math.Pow((x[1]-target[1])/5, 2)
			c += math.Pow(math.Log10(x[2]/target[2]), 2)
			return c
		},
	}
	res := runOn(t, p, 7, 80_000)
	if res.BestCost > 1e-3 {
		t.Fatalf("mixed best = %g, want < 1e-3", res.BestCost)
	}
	// Discrete results must lie exactly on their grids.
	for _, i := range []int{0, 2} {
		snapped := vars[i].Snap(res.Best[i])
		if res.Best[i] != snapped {
			t.Errorf("var %d = %g not on grid (snap %g)", i, res.Best[i], snapped)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *funcProblem {
		return &funcProblem{
			vars: contVars(3, -5, 5),
			cost: func(x []float64) float64 {
				return x[0]*x[0] + math.Abs(x[1]) + math.Pow(x[2]-1, 2)
			},
		}
	}
	r1 := runOn(t, mk(), 42, 20_000)
	r2 := runOn(t, mk(), 42, 20_000)
	if r1.BestCost != r2.BestCost || r1.Moves != r2.Moves || r1.Accepted != r2.Accepted {
		t.Errorf("same seed gave different runs: %+v vs %+v", r1, r2)
	}
	for i := range r1.Best {
		if r1.Best[i] != r2.Best[i] {
			t.Errorf("best[%d] differs: %g vs %g", i, r1.Best[i], r2.Best[i])
		}
	}
}

func TestFreezing(t *testing.T) {
	// A trivial convex problem freezes long before the move budget.
	p := &funcProblem{
		vars: contVars(1, -1, 1),
		cost: func(x []float64) float64 { return x[0] * x[0] },
	}
	res := runOn(t, p, 5, 500_000)
	if !res.Froze {
		t.Error("expected early freeze on trivial problem")
	}
	if res.Moves >= 500_000 {
		t.Error("freeze did not shorten the run")
	}
}

func TestTrace(t *testing.T) {
	p := &funcProblem{
		vars: contVars(2, -5, 5),
		cost: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
	}
	var pts []TracePoint
	moves := []Move{NewRandomStep("single", p.vars, 0.25)}
	_, err := Run(context.Background(), p, moves, Options{
		Seed: 9, MaxMoves: 10_000,
		Trace: func(tp TracePoint) { pts = append(pts, tp) }, TraceEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("trace points = %d, want ≥ 10", len(pts))
	}
	// Costs must end lower than they start, temps positive.
	if pts[len(pts)-1].BestCost > pts[0].BestCost {
		t.Error("best cost did not improve along trace")
	}
	for _, tp := range pts {
		if tp.Temp <= 0 {
			t.Fatalf("non-positive temperature %g", tp.Temp)
		}
		if len(tp.X) != 2 {
			t.Fatalf("trace X wrong length")
		}
	}
}

func TestRunErrors(t *testing.T) {
	p := &funcProblem{vars: nil, cost: func([]float64) float64 { return 0 }}
	if _, err := Run(context.Background(), p, []Move{NewAllStep("a", nil)}, Options{}); err == nil {
		t.Error("no variables must error")
	}
	p2 := &funcProblem{vars: contVars(1, 0, 1), cost: func([]float64) float64 { return 0 }}
	if _, err := Run(context.Background(), p2, nil, Options{}); err == nil {
		t.Error("no moves must error")
	}
}

func TestVarSpecSnapProperties(t *testing.T) {
	v := VarSpec{Min: 1e-6, Max: 1e-3, PointsPerDecade: 50}
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := math.Abs(math.Mod(raw, 2e-3))
		s := v.Snap(x)
		if s < v.Min || s > v.Max {
			return false
		}
		// Idempotent.
		return v.Snap(s) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarSpecStepGrid(t *testing.T) {
	v := VarSpec{Min: 1e-6, Max: 1e-3, PointsPerDecade: 10}
	x := v.Snap(1e-5)
	up := v.StepGrid(x, 1)
	dn := v.StepGrid(x, -1)
	if !(dn < x && x < up) {
		t.Errorf("grid steps not ordered: %g %g %g", dn, x, up)
	}
	// One step = 1/10 decade.
	if math.Abs(up/x-math.Pow(10, 0.1)) > 1e-9 {
		t.Errorf("step ratio = %g, want 10^0.1", up/x)
	}
	// Clamped at the ends.
	if v.StepGrid(v.Max, 5) != v.Max {
		t.Error("StepGrid must clamp at max")
	}
	if v.StepGrid(v.Min, -5) != v.Min {
		t.Error("StepGrid must clamp at min")
	}
}

func TestVarSpecStart(t *testing.T) {
	cont := VarSpec{Min: -2, Max: 4, Continuous: true}
	if cont.Start() != 1 {
		t.Errorf("continuous start = %g, want midpoint 1", cont.Start())
	}
	grid := VarSpec{Min: 1e-6, Max: 1e-4, PointsPerDecade: 50}
	s := grid.Start()
	if math.Abs(s-1e-5)/1e-5 > 0.05 {
		t.Errorf("grid start = %g, want ≈ geometric mid 1e-5", s)
	}
	withInit := VarSpec{Min: 0, Max: 10, Continuous: true, Init: 7}
	if withInit.Start() != 7 {
		t.Errorf("init start = %g, want 7", withInit.Start())
	}
}

func TestLamTargetShape(t *testing.T) {
	if lamTarget(0) < 0.95 {
		t.Errorf("lamTarget(0) = %g, want ≈ 1", lamTarget(0))
	}
	if math.Abs(lamTarget(0.4)-0.44) > 1e-12 {
		t.Errorf("lamTarget(0.4) = %g, want 0.44", lamTarget(0.4))
	}
	if lamTarget(0.99) > 0.01 {
		t.Errorf("lamTarget(0.99) = %g, want ≈ 0", lamTarget(0.99))
	}
	// Monotone nonincreasing.
	prev := 2.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := lamTarget(p)
		if v > prev+1e-9 {
			t.Fatalf("lamTarget not monotone at %g", p)
		}
		prev = v
	}
}

func TestHustinSelectorPrefersGoodMoves(t *testing.T) {
	moves := []Move{
		&FuncMove{Label: "good"},
		&FuncMove{Label: "bad"},
	}
	s := newSelector(moves)
	rng := rand.New(rand.NewSource(1))
	// Feed: class 0 accepted with big deltas, class 1 always rejected.
	for i := 0; i < 100; i++ {
		s.feedback(0, true, -5)
		s.feedback(1, false, 2)
	}
	picks := [2]int{}
	for i := 0; i < 2000; i++ {
		picks[s.pick(rng)]++
	}
	if picks[0] < picks[1]*5 {
		t.Errorf("selector picks = %v, want strong preference for class 0", picks)
	}
	// After stage reset both stay alive.
	s.stageReset()
	picks = [2]int{}
	for i := 0; i < 2000; i++ {
		picks[s.pick(rng)]++
	}
	if picks[1] == 0 {
		t.Error("stage reset must keep losing classes alive")
	}
	st := s.stats(moves, make([]int, len(moves)))
	if st[0].Name != "good" || st[0].Accepted != 100 || st[1].Accepted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMoveStatsReported(t *testing.T) {
	p := &funcProblem{
		vars: contVars(2, -5, 5),
		cost: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
	}
	res := runOn(t, p, 2, 5000)
	if len(res.MoveStats) != 2 {
		t.Fatalf("move stats = %d", len(res.MoveStats))
	}
	tot := 0
	for _, ms := range res.MoveStats {
		tot += ms.Proposed
	}
	if tot == 0 {
		t.Error("no proposals recorded")
	}
}
