package anneal

import (
	"math"
	"math/rand"
)

// StatefulMove is implemented by move classes with adaptive internal
// state (step amplitudes). Checkpointing captures and restores that
// state so resumed runs are bit-identical to uninterrupted ones; classes
// that do not implement it are assumed stateless.
type StatefulMove interface {
	Move
	// MoveState returns a copy of the class's adaptive state.
	MoveState() []float64
	// SetMoveState restores state previously returned by MoveState.
	// Mismatched lengths are ignored (the class keeps its defaults).
	SetMoveState(s []float64)
}

// RandomStep perturbs one randomly chosen variable. Continuous variables
// move by a Gaussian step whose amplitude self-adapts toward a healthy
// acceptance ratio (range-limiter style); discrete variables jump a
// random number of log-grid steps drawn from the same adaptive amplitude.
type RandomStep struct {
	Label string
	Vars  []VarSpec
	// Amp is the per-variable relative amplitude (fraction of range or
	// grid decades); it adapts in Feedback. Zero values initialize to
	// Amp0.
	Amp0 float64

	amp     []float64
	lastVar int
}

// NewRandomStep builds the standard single-variable perturbation class.
func NewRandomStep(label string, vars []VarSpec, amp0 float64) *RandomStep {
	if amp0 <= 0 {
		amp0 = 0.25
	}
	amps := make([]float64, len(vars))
	for i := range amps {
		amps[i] = amp0
	}
	return &RandomStep{Label: label, Vars: vars, Amp0: amp0, amp: amps}
}

// Name identifies the class.
func (m *RandomStep) Name() string { return m.Label }

// Propose perturbs one variable of next.
func (m *RandomStep) Propose(cur, next []float64, rng *rand.Rand) bool {
	i := rng.Intn(len(m.Vars))
	m.lastVar = i
	v := &m.Vars[i]
	if v.Continuous {
		step := (v.Max - v.Min) * m.amp[i] * rng.NormFloat64()
		next[i] = v.Clamp(cur[i] + step)
	} else {
		// Grid steps: amplitude in "decades" mapped to grid points.
		maxSteps := m.amp[i] * v.gridDensity()
		n := int(math.Round(rng.NormFloat64() * maxSteps))
		if n == 0 {
			if rng.Intn(2) == 0 {
				n = 1
			} else {
				n = -1
			}
		}
		next[i] = v.StepGrid(cur[i], n)
	}
	return next[i] != cur[i]
}

// Feedback adapts the amplitude of the last-perturbed variable: grow on
// acceptance, shrink on rejection, so each variable's step size hovers
// where roughly half its moves are accepted.
func (m *RandomStep) Feedback(accepted bool, dCost float64) {
	i := m.lastVar
	if accepted {
		m.amp[i] *= 1.03
	} else {
		m.amp[i] *= 0.985
	}
	// Keep amplitudes in a sane band: from one grid point to two ranges.
	if m.amp[i] < 0.005 {
		m.amp[i] = 0.005
	}
	if m.amp[i] > 2 {
		m.amp[i] = 2
	}
}

// MoveState implements StatefulMove: the per-variable amplitudes.
func (m *RandomStep) MoveState() []float64 {
	return append([]float64(nil), m.amp...)
}

// SetMoveState implements StatefulMove.
func (m *RandomStep) SetMoveState(s []float64) {
	if len(s) == len(m.amp) {
		copy(m.amp, s)
	}
}

// AllStep perturbs every continuous variable simultaneously by a small
// Gaussian step — useful late in the anneal to slide along valleys.
type AllStep struct {
	Label string
	Vars  []VarSpec
	amp   float64
}

// NewAllStep builds the all-variable perturbation class.
func NewAllStep(label string, vars []VarSpec) *AllStep {
	return &AllStep{Label: label, Vars: vars, amp: 0.02}
}

// Name identifies the class.
func (m *AllStep) Name() string { return m.Label }

// Propose perturbs all continuous variables of next.
func (m *AllStep) Propose(cur, next []float64, rng *rand.Rand) bool {
	moved := false
	for i := range m.Vars {
		v := &m.Vars[i]
		if !v.Continuous {
			continue
		}
		next[i] = v.Clamp(cur[i] + (v.Max-v.Min)*m.amp*rng.NormFloat64())
		moved = moved || next[i] != cur[i]
	}
	return moved
}

// Feedback adapts the shared amplitude.
func (m *AllStep) Feedback(accepted bool, dCost float64) {
	if accepted {
		m.amp *= 1.05
	} else {
		m.amp *= 0.99
	}
	if m.amp < 1e-4 {
		m.amp = 1e-4
	}
	if m.amp > 0.5 {
		m.amp = 0.5
	}
}

// MoveState implements StatefulMove: the shared amplitude.
func (m *AllStep) MoveState() []float64 { return []float64{m.amp} }

// SetMoveState implements StatefulMove.
func (m *AllStep) SetMoveState(s []float64) {
	if len(s) == 1 {
		m.amp = s[0]
	}
}

// FuncMove adapts a plain function into a Move (used by OBLX for its
// Newton-Raphson move classes).
type FuncMove struct {
	Label string
	Fn    func(cur, next []float64, rng *rand.Rand) bool
	Feedb func(accepted bool, dCost float64)
}

// Name identifies the class.
func (m *FuncMove) Name() string { return m.Label }

// Propose delegates to Fn.
func (m *FuncMove) Propose(cur, next []float64, rng *rand.Rand) bool {
	return m.Fn(cur, next, rng)
}

// Feedback delegates to Feedb when set.
func (m *FuncMove) Feedback(accepted bool, dCost float64) {
	if m.Feedb != nil {
		m.Feedb(accepted, dCost)
	}
}
