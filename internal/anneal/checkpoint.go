package anneal

import "fmt"

// Checkpoint is a complete, JSON-serializable snapshot of a Run in
// progress, captured at the top of the move loop (before move `Move` is
// proposed). It contains every piece of state the engine consults —
// vectors, temperature control, move-selection statistics, per-class
// adaptive amplitudes, and the RNG state — so a run resumed from a
// checkpoint replays the remaining moves exactly as the uninterrupted
// run would have.
type Checkpoint struct {
	// Seed and MaxMoves echo the Options the run was started with;
	// Resume validates MaxMoves (the cooling trajectory depends on it).
	Seed     int64 `json:"seed"`
	MaxMoves int   `json:"max_moves"`

	// Move is the index of the next move to execute.
	Move int `json:"move"`

	Cur      []float64 `json:"cur"`
	CurCost  float64   `json:"cur_cost"`
	Best     []float64 `json:"best"`
	BestCost float64   `json:"best_cost"`

	Temp    float64 `json:"temp"`
	TMax    float64 `json:"tmax"`
	AccRate float64 `json:"acc_rate"`

	Accepted  int `json:"accepted"`
	NonFinite int `json:"non_finite"`

	FrozenStages  int     `json:"frozen_stages"`
	StageDiscrete bool    `json:"stage_discrete"`
	StageMaxCont  float64 `json:"stage_max_cont"`

	RNGState uint64 `json:"rng_state"`

	Selector SelectorState `json:"selector"`
	// MoveStates holds the adaptive state of each move class, in palette
	// order (nil for stateless classes) — see StatefulMove.
	MoveStates [][]float64 `json:"move_states"`
	// ClassFails counts non-finite-cost rejections per move class.
	ClassFails []int `json:"class_fails"`
}

// SelectorState is the serializable Hustin-selector state.
type SelectorState struct {
	Quality  []float64 `json:"quality"`
	Proposed []int     `json:"proposed"`
	Accepted []int     `json:"accepted"`
	TotProp  []int     `json:"tot_prop"`
	TotAcc   []int     `json:"tot_acc"`
}

// validate checks a checkpoint for structural consistency against the
// problem and options it is being resumed into.
func (ck *Checkpoint) validate(nVars, nMoves, maxMoves int) error {
	switch {
	case len(ck.Cur) != nVars || len(ck.Best) != nVars:
		return fmt.Errorf("anneal: checkpoint has %d/%d variables, problem has %d",
			len(ck.Cur), len(ck.Best), nVars)
	case ck.MaxMoves != maxMoves:
		return fmt.Errorf("anneal: checkpoint was taken with MaxMoves=%d, resuming with %d",
			ck.MaxMoves, maxMoves)
	case ck.Move < 0 || ck.Move > ck.MaxMoves:
		return fmt.Errorf("anneal: checkpoint move %d out of range [0,%d]", ck.Move, ck.MaxMoves)
	case len(ck.MoveStates) != nMoves || len(ck.ClassFails) != nMoves:
		return fmt.Errorf("anneal: checkpoint has %d move classes, palette has %d",
			len(ck.MoveStates), nMoves)
	case len(ck.Selector.Quality) != nMoves || len(ck.Selector.Proposed) != nMoves ||
		len(ck.Selector.Accepted) != nMoves || len(ck.Selector.TotProp) != nMoves ||
		len(ck.Selector.TotAcc) != nMoves:
		return fmt.Errorf("anneal: checkpoint selector state does not match %d move classes", nMoves)
	}
	return nil
}

// state snapshots the selector.
func (s *selector) state() SelectorState {
	return SelectorState{
		Quality:  append([]float64(nil), s.quality...),
		Proposed: append([]int(nil), s.proposed...),
		Accepted: append([]int(nil), s.accepted...),
		TotProp:  append([]int(nil), s.totProp...),
		TotAcc:   append([]int(nil), s.totAcc...),
	}
}

// restore overwrites the selector with a snapshot (lengths pre-validated).
func (s *selector) restore(st SelectorState) {
	copy(s.quality, st.Quality)
	copy(s.proposed, st.Proposed)
	copy(s.accepted, st.Accepted)
	copy(s.totProp, st.TotProp)
	copy(s.totAcc, st.TotAcc)
}
