// Package anneal is the problem-independent simulated-annealing engine
// underneath OBLX. It implements the four components §V-A of the paper
// calls out:
//
//   - Representation: a mixed vector of continuous values and
//     logarithmically gridded discrete values (VarSpec).
//   - Move-set: pluggable move classes (Move interface) selected by the
//     adaptive quality scheme of Hustin, so the annealer itself learns
//     whether random, gradient-directed, or combined moves pay off at the
//     current point of the cooling.
//   - Cost function: any Problem implementation.
//   - Control: the Lam-Delosme cooling schedule in the "modified Lam"
//     form popularized by Swartz and Sechen (temperature chases a target
//     acceptance-ratio trajectory), plus the paper's freezing criterion —
//     stop when discrete variables stop changing and continuous ones move
//     less than a relative tolerance.
//
// The engine is deterministic for a fixed seed: all randomness flows from
// the *rand.Rand constructed in Run.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// VarSpec describes one optimization variable.
type VarSpec struct {
	Name string
	Min  float64
	Max  float64
	// Continuous variables move in ℝ; discrete ones live on a log grid.
	Continuous bool
	// PointsPerDecade is the log-grid density for discrete variables
	// (0 → 50). The paper: "because small changes in device sizes make
	// proportionally less difference on larger devices, we typically use
	// a logarithmically spaced grid."
	PointsPerDecade int
	// Init is the starting value (0 → geometric/arithmetic midpoint).
	Init float64
}

// gridDensity returns the points-per-decade with default applied.
func (v *VarSpec) gridDensity() float64 {
	if v.PointsPerDecade <= 0 {
		return 50
	}
	return float64(v.PointsPerDecade)
}

// Clamp limits x to the variable's range.
func (v *VarSpec) Clamp(x float64) float64 {
	if x < v.Min {
		return v.Min
	}
	if x > v.Max {
		return v.Max
	}
	return x
}

// Snap maps x onto the variable's representable set: clamped for
// continuous variables, nearest log-grid point for discrete ones.
func (v *VarSpec) Snap(x float64) float64 {
	x = v.Clamp(x)
	if v.Continuous {
		return x
	}
	// Discrete: log grid between Min and Max. Guard non-positive ranges
	// (grid variables are sizes/currents, positive by construction).
	if v.Min <= 0 {
		return x
	}
	n := math.Round(math.Log10(x/v.Min) * v.gridDensity())
	return v.Clamp(v.Min * math.Pow(10, n/v.gridDensity()))
}

// StepGrid moves x by n grid steps (discrete variables only).
func (v *VarSpec) StepGrid(x float64, n int) float64 {
	if v.Continuous || v.Min <= 0 {
		return v.Clamp(x)
	}
	k := math.Round(math.Log10(x/v.Min)*v.gridDensity()) + float64(n)
	return v.Clamp(v.Min * math.Pow(10, k/v.gridDensity()))
}

// Start returns the initial value of the variable.
func (v *VarSpec) Start() float64 {
	if v.Init != 0 {
		return v.Snap(v.Init)
	}
	if v.Continuous || v.Min <= 0 {
		return (v.Min + v.Max) / 2
	}
	return v.Snap(math.Sqrt(v.Min * v.Max)) // geometric midpoint
}

// Problem is a scalar minimization problem over a mixed variable vector.
type Problem interface {
	Vars() []VarSpec
	Cost(x []float64) float64
}

// Move is one move class in the annealer's palette. Propose mutates next
// (a copy of cur) and reports whether a move could be generated.
// Feedback delivers the acceptance result so classes can adapt their own
// amplitudes.
type Move interface {
	Name() string
	Propose(cur, next []float64, rng *rand.Rand) bool
	Feedback(accepted bool, dCost float64)
}

// TracePoint is a periodic snapshot for experiment instrumentation
// (Fig. 2 uses the cost terms recorded along the run) and the flight
// recorder's raw material.
type TracePoint struct {
	Move     int
	Temp     float64
	Cost     float64
	BestCost float64
	AccRate  float64
	X        []float64 // copy of the current state

	// MoveClass names the most recently proposed move class ("" before
	// the first proposal of a run); Accepted and DCost report its
	// outcome. Proposals rejected for a non-finite cost report
	// Accepted=false with DCost 0 (the delta is meaningless).
	MoveClass string
	Accepted  bool
	DCost     float64
	// LamTarget is the modified-Lam trajectory's target acceptance ratio
	// at this move; compare with AccRate to see whether the temperature
	// controller is ahead of or behind schedule.
	LamTarget float64
	// Quality is a copy of the Hustin selector's per-class quality
	// weights, indexed like the moves slice passed to Run.
	Quality []float64
}

// Options tunes a Run. The zero value gives sensible defaults.
type Options struct {
	Seed     int64
	MaxMoves int     // total move budget (0 → 200_000)
	T0       float64 // initial temperature (0 → auto-calibrated)

	// Freezing: stop early when, for FreezeStages consecutive stages
	// (one stage = StageMoves moves), no accepted move changed a discrete
	// variable and accepted continuous changes stayed below FreezeTol
	// relative to the variable range. A negative FreezeStages disables
	// freezing entirely (fixed-budget runs).
	StageMoves   int     // 0 → 1000
	FreezeStages int     // 0 → 8; < 0 → never freeze
	FreezeTol    float64 // 0 → 1e-4

	// Trace, when set, receives a TracePoint every TraceEvery moves.
	Trace      func(TracePoint)
	TraceEvery int // 0 → 500

	// Progress, when set together with a positive ProgressEvery, receives
	// a TracePoint at the top of every ProgressEvery-th move — before the
	// proposal, unconditionally. Unlike Trace (which fires on the
	// post-acceptance path and is skipped by rejected/no-op proposals),
	// Progress is a liveness signal: a run whose proposals all fail still
	// reports temperature and best-so-far on schedule. It is invoked
	// synchronously on the annealing goroutine; keep it cheap or hand off.
	Progress      func(TracePoint)
	ProgressEvery int

	// BestResetAt, when positive, re-bases the best-so-far bookkeeping
	// at that move: callers whose cost function is nonstationary early
	// in the run (e.g. OBLX's adaptive constraint weights settle during
	// the first quarter) use this so a stale early "best" cannot mask
	// later genuine improvements.
	BestResetAt int

	// OnCheckpoint, when set together with a positive CheckpointEvery,
	// receives a full state snapshot every CheckpointEvery moves —
	// captured at the top of the move loop, so resuming from it replays
	// the remaining moves exactly. On context cancellation one final
	// snapshot is emitted at the cancellation point regardless of the
	// interval, making an interrupted run resumable without losing a
	// single move.
	OnCheckpoint    func(*Checkpoint)
	CheckpointEvery int

	// Resume, when set, restores a previous run's complete state instead
	// of starting fresh. The problem, move palette, seed, and MaxMoves
	// must match the checkpointed run for the result to be meaningful;
	// structural mismatches are rejected with an error.
	Resume *Checkpoint
}

func (o *Options) defaults() {
	if o.MaxMoves == 0 {
		o.MaxMoves = 200_000
	}
	if o.StageMoves == 0 {
		o.StageMoves = 1000
	}
	if o.FreezeStages == 0 {
		o.FreezeStages = 8
	}
	if o.FreezeTol == 0 {
		o.FreezeTol = 1e-4
	}
	if o.TraceEvery == 0 {
		o.TraceEvery = 500
	}
}

// MoveStat reports per-class statistics after a run.
type MoveStat struct {
	Name     string `json:"name"`
	Proposed int    `json:"proposed"`
	Accepted int    `json:"accepted"`
	// Failed counts proposals of this class whose cost came back
	// non-finite and were rejected outright.
	Failed  int     `json:"failed"`
	Quality float64 `json:"quality"`
}

// Result is the outcome of a Run.
type Result struct {
	Best      []float64
	BestCost  float64
	FinalCost float64
	Moves     int
	Accepted  int
	Froze     bool
	// Cancelled reports that the context was cancelled; Best/BestCost
	// are the best-so-far at the point of cancellation, not an error.
	Cancelled bool
	// NonFinite counts moves rejected because the cost function returned
	// NaN or ±Inf — such moves never enter the acceptance machinery.
	NonFinite int
	FinalTemp float64
	MoveStats []MoveStat
}

// isFinite reports whether x is an ordinary float (not NaN, not ±Inf).
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Run minimizes p using the supplied move palette. Cancelling ctx stops
// the run cleanly: the best-so-far result is returned with Cancelled
// set, never an error.
func Run(ctx context.Context, p Problem, moves []Move, opt Options) (*Result, error) {
	opt.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	vars := p.Vars()
	if len(vars) == 0 {
		return nil, fmt.Errorf("anneal: problem has no variables")
	}
	if len(moves) == 0 {
		return nil, fmt.Errorf("anneal: no move classes supplied")
	}
	src := newRNGSource(opt.Seed)
	rng := rand.New(src)

	var (
		cur, best            []float64
		curCost, bestCost    float64
		temp, tMax           float64
		accRate              float64
		accepted, nonFinite  int
		frozenStages         int
		stageDiscreteChanged bool
		stageMaxContChange   float64
		startMove            int
	)
	sel := newSelector(moves)
	classFails := make([]int, len(moves))
	const lamDecay = 0.998

	if ck := opt.Resume; ck != nil {
		if err := ck.validate(len(vars), len(moves), opt.MaxMoves); err != nil {
			return nil, err
		}
		cur = append([]float64(nil), ck.Cur...)
		best = append([]float64(nil), ck.Best...)
		curCost, bestCost = ck.CurCost, ck.BestCost
		temp, tMax, accRate = ck.Temp, ck.TMax, ck.AccRate
		accepted, nonFinite = ck.Accepted, ck.NonFinite
		frozenStages = ck.FrozenStages
		stageDiscreteChanged = ck.StageDiscrete
		stageMaxContChange = ck.StageMaxCont
		src.state = ck.RNGState
		sel.restore(ck.Selector)
		copy(classFails, ck.ClassFails)
		for i, m := range moves {
			if sm, ok := m.(StatefulMove); ok && ck.MoveStates[i] != nil {
				sm.SetMoveState(ck.MoveStates[i])
			}
		}
		startMove = ck.Move
	} else {
		cur = make([]float64, len(vars))
		for i := range vars {
			cur[i] = vars[i].Start()
		}
		curCost = p.Cost(cur)
		if !isFinite(curCost) {
			// A poisoned start must not wedge the best-so-far tracking
			// (NaN comparisons are always false): pretend it is merely
			// terrible so the first finite cost becomes the best.
			nonFinite++
			curCost = math.MaxFloat64
		}
		best = append([]float64(nil), cur...)
		bestCost = curCost

		// --- Initial temperature: Aarts/White style calibration from the
		// cost deltas of a short random walk.
		temp = opt.T0
		if temp <= 0 {
			temp = calibrateT0(p, moves, cur, curCost, rng)
		}
		// Warming is bounded: cost cliffs (failed evaluations) must not
		// run the temperature away.
		tMax = temp * 1e3
		accRate = 0.5
	}

	// capture snapshots the complete engine state at the top of move mv.
	capture := func(mv int) *Checkpoint {
		ms := make([][]float64, len(moves))
		for i, m := range moves {
			if sm, ok := m.(StatefulMove); ok {
				ms[i] = sm.MoveState()
			}
		}
		return &Checkpoint{
			Seed: opt.Seed, MaxMoves: opt.MaxMoves, Move: mv,
			Cur: append([]float64(nil), cur...), CurCost: curCost,
			Best: append([]float64(nil), best...), BestCost: bestCost,
			Temp: temp, TMax: tMax, AccRate: accRate,
			Accepted: accepted, NonFinite: nonFinite,
			FrozenStages: frozenStages, StageDiscrete: stageDiscreteChanged,
			StageMaxCont: stageMaxContChange,
			RNGState:     src.state,
			Selector:     sel.state(),
			MoveStates:   ms,
			ClassFails:   append([]int(nil), classFails...),
		}
	}

	next := make([]float64, len(vars))
	mv := startMove
	froze := false
	cancelled := false

	// Last-proposal outcome, surfaced through TracePoint for the flight
	// recorder.
	var (
		lastClass    string
		lastAccepted bool
		lastDCost    float64
		target       float64
	)
	snap := func() TracePoint {
		return TracePoint{
			Move: mv, Temp: temp, Cost: curCost, BestCost: bestCost,
			AccRate: accRate, X: append([]float64(nil), cur...),
			MoveClass: lastClass, Accepted: lastAccepted, DCost: lastDCost,
			LamTarget: target, Quality: sel.qualities(),
		}
	}

	for ; mv < opt.MaxMoves; mv++ {
		select {
		case <-ctx.Done():
			cancelled = true
		default:
		}
		if cancelled {
			break
		}
		if opt.OnCheckpoint != nil && opt.CheckpointEvery > 0 &&
			mv > startMove && mv%opt.CheckpointEvery == 0 {
			opt.OnCheckpoint(capture(mv))
		}
		progress := float64(mv) / float64(opt.MaxMoves)
		target = lamTarget(progress)
		if opt.Progress != nil && opt.ProgressEvery > 0 && mv%opt.ProgressEvery == 0 {
			opt.Progress(snap())
		}

		mi := sel.pick(rng)
		lastClass = moves[mi].Name()
		lastAccepted = false
		lastDCost = 0
		copy(next, cur)
		if !moves[mi].Propose(cur, next, rng) {
			// A declined proposal (e.g. a Newton move whose solve failed)
			// still spent the move: charge the class, exactly like the
			// no-op path below — otherwise Hustin never learns a class is
			// stuck and re-picks it forever at points it cannot improve.
			sel.feedback(mi, false, 0)
			moves[mi].Feedback(false, 0)
			continue
		}
		// Snap proposed values onto the representable set.
		changed := false
		for i := range vars {
			next[i] = vars[i].Snap(next[i])
			if next[i] != cur[i] {
				changed = true
			}
		}
		if !changed {
			// A no-op proposal (e.g. a Newton move at an already
			// dc-correct point, or a clamped step at a range boundary)
			// must not pollute the acceptance-rate/temperature
			// statistics — but the move class must still be charged for
			// the wasted work, or Hustin keeps re-picking a class that
			// can make no progress and the run spins.
			sel.feedback(mi, false, 0)
			moves[mi].Feedback(false, 0)
			continue
		}
		nextCost := p.Cost(next)
		if !isFinite(nextCost) {
			// A NaN/Inf cost must never reach the acceptance test — NaN
			// comparisons would silently reject but poison the
			// acceptance-rate statistics, and -Inf would be accepted.
			// Treat it as a hard rejection and charge the class.
			nonFinite++
			classFails[mi]++
			sel.feedback(mi, false, 0)
			moves[mi].Feedback(false, 0)
			continue
		}
		d := nextCost - curCost
		acc := d <= 0
		if !acc && temp > 0 {
			acc = rng.Float64() < math.Exp(-d/temp)
		}
		sel.feedback(mi, acc, d)
		moves[mi].Feedback(acc, d)
		lastAccepted, lastDCost = acc, d

		if acc {
			accepted++
			// Track freezing signals.
			for i := range vars {
				if cur[i] == next[i] {
					continue
				}
				if vars[i].Continuous {
					rel := math.Abs(next[i]-cur[i]) / (vars[i].Max - vars[i].Min)
					if rel > stageMaxContChange {
						stageMaxContChange = rel
					}
				} else {
					stageDiscreteChanged = true
				}
			}
			cur, next = next, cur
			curCost = nextCost
			if curCost < bestCost {
				bestCost = curCost
				copy(best, cur)
			}
			accRate = lamDecay*accRate + (1 - lamDecay)
		} else {
			accRate = lamDecay * accRate
		}

		// Temperature chases the target acceptance ratio.
		if accRate > target {
			temp *= 0.999
		} else if temp < tMax {
			temp /= 0.999
		}

		// Re-base the best tracking once the cost function has settled.
		if opt.BestResetAt > 0 && mv == opt.BestResetAt {
			bestCost = curCost
			copy(best, cur)
		}

		if opt.Trace != nil && mv%opt.TraceEvery == 0 {
			opt.Trace(snap())
		}

		// Stage bookkeeping for the freezing criterion.
		if (mv+1)%opt.StageMoves == 0 {
			if !stageDiscreteChanged && stageMaxContChange < opt.FreezeTol {
				frozenStages++
			} else {
				frozenStages = 0
			}
			stageDiscreteChanged = false
			stageMaxContChange = 0
			sel.stageReset()
			if opt.FreezeStages > 0 && frozenStages >= opt.FreezeStages {
				froze = true
				mv++
				break
			}
		}
	}

	if cancelled && opt.OnCheckpoint != nil {
		// Final snapshot at the exact cancellation point: a resumed run
		// continues from this move as if never interrupted.
		opt.OnCheckpoint(capture(mv))
	}

	res := &Result{
		Best:      best,
		BestCost:  bestCost,
		FinalCost: curCost,
		Moves:     mv,
		Accepted:  accepted,
		Froze:     froze,
		Cancelled: cancelled,
		NonFinite: nonFinite,
		FinalTemp: temp,
		MoveStats: sel.stats(moves, classFails),
	}
	return res, nil
}

// lamTarget is the classic modified-Lam acceptance-ratio trajectory:
// warm (0.44→ high) start collapsing to 0.44 over the first 15% of the
// budget, flat 0.44 for the middle 50%, then exponential decay to ~0.
func lamTarget(progress float64) float64 {
	switch {
	case progress < 0.15:
		return 0.44 + 0.56*math.Pow(560, -progress/0.15)
	case progress < 0.65:
		return 0.44
	default:
		return 0.44 * math.Pow(440, -(progress-0.65)/0.35)
	}
}

// calibrateT0 estimates a starting temperature giving ≈95% initial
// acceptance, by sampling cost deltas of the move palette around the
// start state.
func calibrateT0(p Problem, moves []Move, start []float64, startCost float64, rng *rand.Rand) float64 {
	vars := p.Vars()
	cur := append([]float64(nil), start...)
	curCost := startCost
	next := make([]float64, len(cur))
	var deltas []float64
	for i := 0; i < 120; i++ {
		m := moves[rng.Intn(len(moves))]
		copy(next, cur)
		if !m.Propose(cur, next, rng) {
			continue
		}
		for j := range vars {
			next[j] = vars[j].Snap(next[j])
		}
		c := p.Cost(next)
		if !isFinite(c) {
			// A failed evaluation during calibration carries no usable
			// delta; stay at the current point and keep sampling.
			continue
		}
		if d := math.Abs(c - curCost); isFinite(d) && d < 1e300 {
			// Deltas against a sanitized (MaxFloat64) start are sentinel
			// cliffs, not real cost movement — exclude them too.
			deltas = append(deltas, d)
		}
		// Random walk: accept everything during calibration.
		cur, next = next, cur
		curCost = c
	}
	if len(deltas) == 0 {
		return 1
	}
	mean := 0.0
	for _, d := range deltas {
		mean += d
	}
	mean /= float64(len(deltas))
	if mean == 0 {
		return 1
	}
	// P(accept worst-average uphill) = exp(-mean/T0) = 0.95.
	return mean / 0.0513 // -ln(0.95)
}

// ---------------------------------------------------------------------------
// Hustin adaptive move selection.

type selector struct {
	quality  []float64
	proposed []int
	accepted []int
	totProp  []int
	totAcc   []int
}

func newSelector(moves []Move) *selector {
	n := len(moves)
	s := &selector{
		quality:  make([]float64, n),
		proposed: make([]int, n),
		accepted: make([]int, n),
		totProp:  make([]int, n),
		totAcc:   make([]int, n),
	}
	for i := range s.quality {
		s.quality[i] = 1
	}
	return s
}

// pick chooses a move class with probability proportional to its quality
// (per Hustin: classes whose accepted moves recently produced the largest
// cost movement get picked more).
func (s *selector) pick(rng *rand.Rand) int {
	tot := 0.0
	for _, q := range s.quality {
		tot += q
	}
	r := rng.Float64() * tot
	for i, q := range s.quality {
		r -= q
		if r <= 0 {
			return i
		}
	}
	return len(s.quality) - 1
}

func (s *selector) feedback(i int, accepted bool, dCost float64) {
	s.proposed[i]++
	s.totProp[i]++
	if accepted {
		s.accepted[i]++
		s.totAcc[i]++
		s.quality[i] += math.Abs(dCost)
	}
}

// qualities returns a copy of the per-class quality weights.
func (s *selector) qualities() []float64 {
	return append([]float64(nil), s.quality...)
}

// stageReset decays qualities at each temperature stage so the mix can
// shift as the optimization character changes (random early, gradient
// late), while a floor keeps every class alive.
func (s *selector) stageReset() {
	for i := range s.quality {
		used := s.proposed[i]
		if used > 0 {
			s.quality[i] = 1 + s.quality[i]/float64(used)
		} else {
			s.quality[i] = 1 + s.quality[i]*0.5
		}
		s.proposed[i] = 0
		s.accepted[i] = 0
	}
}

func (s *selector) stats(moves []Move, classFails []int) []MoveStat {
	out := make([]MoveStat, len(moves))
	for i := range moves {
		out[i] = MoveStat{
			Name:     moves[i].Name(),
			Proposed: s.totProp[i],
			Accepted: s.totAcc[i],
			Quality:  s.quality[i],
		}
		if classFails != nil {
			out[i].Failed = classFails[i]
		}
	}
	return out
}
