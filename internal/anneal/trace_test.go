package anneal

import (
	"context"
	"math"
	"testing"
)

// TestTracePointFlightFields verifies the flight-recorder fields added to
// TracePoint: move class, acceptance outcome, Δcost, Lam target, and the
// Hustin quality snapshot, on both the Progress and Trace paths.
func TestTracePointFlightFields(t *testing.T) {
	p := &funcProblem{
		vars: contVars(3, -5, 5),
		cost: func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += v * v
			}
			return s
		},
	}
	moves := []Move{
		NewRandomStep("single", p.vars, 0.25),
		NewAllStep("all", p.vars),
	}
	classNames := map[string]bool{"single": true, "all": true}

	var progress, trace []TracePoint
	_, err := Run(context.Background(), p, moves, Options{
		Seed: 7, MaxMoves: 4000, FreezeStages: -1,
		Progress: func(tp TracePoint) { progress = append(progress, tp) }, ProgressEvery: 100,
		Trace: func(tp TracePoint) { trace = append(trace, tp) }, TraceEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) == 0 || len(trace) == 0 {
		t.Fatalf("no events: %d progress, %d trace", len(progress), len(trace))
	}

	// The first progress event fires before any proposal: class empty.
	if progress[0].Move != 0 || progress[0].MoveClass != "" {
		t.Errorf("first progress = move %d class %q, want move 0 class \"\"", progress[0].Move, progress[0].MoveClass)
	}
	var sawAccepted, sawRejected bool
	for _, tp := range append(progress[1:], trace...) {
		if !classNames[tp.MoveClass] {
			t.Fatalf("move %d: unknown move class %q", tp.Move, tp.MoveClass)
		}
		if want := lamTarget(float64(tp.Move) / 4000); tp.LamTarget != want {
			t.Fatalf("move %d: LamTarget = %g, want %g", tp.Move, tp.LamTarget, want)
		}
		if len(tp.Quality) != len(moves) {
			t.Fatalf("move %d: %d quality weights, want %d", tp.Move, len(tp.Quality), len(moves))
		}
		for i, q := range tp.Quality {
			if q <= 0 || math.IsNaN(q) {
				t.Fatalf("move %d: quality[%d] = %g, want positive", tp.Move, i, q)
			}
		}
		if math.IsNaN(tp.DCost) || math.IsInf(tp.DCost, 0) {
			t.Fatalf("move %d: non-finite DCost %g", tp.Move, tp.DCost)
		}
		if tp.Accepted {
			sawAccepted = true
		} else {
			sawRejected = true
		}
	}
	if !sawAccepted {
		t.Error("no event recorded an accepted move")
	}
	if !sawRejected {
		t.Error("no event recorded a rejected move")
	}

	// Trace fires on the post-acceptance path: every trace point's DCost
	// must be consistent with its acceptance (accepted uphill moves exist,
	// but an accepted move with d <= 0 must always be accepted).
	for _, tp := range trace {
		if tp.DCost < 0 && !tp.Accepted {
			t.Fatalf("move %d: downhill move (d=%g) reported rejected", tp.Move, tp.DCost)
		}
	}

	// Quality snapshots are copies: mutating one must not corrupt the
	// selector (compare two consecutive events for independence).
	if len(progress) >= 2 {
		progress[0].Quality = append(progress[0].Quality[:0], -1)
		for _, q := range progress[1].Quality {
			if q == -1 {
				t.Fatal("Quality snapshots share backing storage")
			}
		}
	}
}
