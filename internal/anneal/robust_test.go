package anneal

import (
	"context"
	"encoding/json"
	"math"
	"testing"
)

// robustProblem is a deterministic quadratic bowl with an optional
// poisoned region where the cost comes back NaN.
func quadProblem(n int, poison func(x []float64) bool) *funcProblem {
	return &funcProblem{
		vars: contVars(n, -5, 5),
		cost: func(x []float64) float64 {
			if poison != nil && poison(x) {
				return math.NaN()
			}
			s := 0.0
			for _, v := range x {
				s += (v - 1) * (v - 1)
			}
			return s
		},
	}
}

func stdMoves(p Problem) []Move {
	return []Move{
		NewRandomStep("random", p.Vars(), 0.3),
		NewAllStep("all", p.Vars()),
	}
}

func TestRunCancellationReturnsBestSoFar(t *testing.T) {
	p := quadProblem(3, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var cancelledAt int
	opt := Options{
		Seed: 5, MaxMoves: 1_000_000, FreezeStages: -1,
		TraceEvery: 100,
		Trace: func(tp TracePoint) {
			if tp.Move >= 2000 && cancelledAt == 0 {
				cancelledAt = tp.Move
				cancel()
			}
		},
	}
	res, err := Run(ctx, p, stdMoves(p), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Cancelled not set")
	}
	if res.Moves >= opt.MaxMoves {
		t.Errorf("run consumed the whole budget (%d moves) despite cancellation", res.Moves)
	}
	if res.Moves <= cancelledAt {
		t.Errorf("moves = %d, cancelled at %d", res.Moves, cancelledAt)
	}
	if !isFinite(res.BestCost) || res.BestCost > 75 {
		t.Errorf("best-so-far cost = %g", res.BestCost)
	}
	if len(res.Best) != 3 {
		t.Errorf("best vector len = %d", len(res.Best))
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	p := quadProblem(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, p, stdMoves(p), Options{Seed: 1, MaxMoves: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Moves != 0 {
		t.Errorf("cancelled=%v moves=%d, want immediate cancellation", res.Cancelled, res.Moves)
	}
	if !isFinite(res.BestCost) {
		t.Errorf("best cost = %g, want the (finite) initial cost", res.BestCost)
	}
}

func TestNonFiniteCostsAreRejected(t *testing.T) {
	// Poison a whole half-space: any proposal with x[0] > 2 costs NaN.
	// The run must finish, count the rejections, and the best point must
	// stay outside the poisoned region.
	p := quadProblem(2, func(x []float64) bool { return x[0] > 2 })
	res, err := Run(context.Background(), p, stdMoves(p), Options{
		Seed: 3, MaxMoves: 20_000, FreezeStages: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonFinite == 0 {
		t.Error("no non-finite rejections counted in a half-poisoned space")
	}
	if !isFinite(res.BestCost) {
		t.Fatalf("best cost = %g", res.BestCost)
	}
	if res.Best[0] > 2 {
		t.Errorf("best point x[0] = %g is inside the poisoned region", res.Best[0])
	}
	// Per-class Failed counters sum to the total.
	sum := 0
	for _, ms := range res.MoveStats {
		sum += ms.Failed
	}
	if sum != res.NonFinite {
		t.Errorf("per-class failed sum %d != NonFinite %d", sum, res.NonFinite)
	}
}

func TestNonFiniteInitialCost(t *testing.T) {
	// Start point is poisoned: the run must not wedge on a NaN best.
	p := quadProblem(2, func(x []float64) bool { return x[0] == 0 && x[1] == 0 })
	res, err := Run(context.Background(), p, stdMoves(p), Options{
		Seed: 4, MaxMoves: 5_000, FreezeStages: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !isFinite(res.BestCost) || res.BestCost >= math.MaxFloat64 {
		t.Errorf("best cost = %g, want a real best found after the poisoned start", res.BestCost)
	}
}

// resumeRun runs p to completion in two legs — cancelled at cancelAt
// moves, checkpointed, JSON round-tripped, resumed — and returns the
// final result of the second leg.
func resumeRun(t *testing.T, p Problem, opt Options, cancelAt int) *Result {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	leg1 := opt
	leg1.TraceEvery = 50
	leg1.Trace = func(tp TracePoint) {
		if tp.Move >= cancelAt {
			cancel()
		}
	}
	leg1.OnCheckpoint = func(ck *Checkpoint) { last = ck }
	leg1.CheckpointEvery = 1000
	r1, err := Run(ctx, p, stdMoves(p), leg1)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Cancelled {
		t.Fatal("leg 1 was not cancelled")
	}
	if last == nil {
		t.Fatal("no checkpoint captured")
	}
	// The checkpoint must survive serialization exactly (the on-disk
	// path): Go round-trips float64 through JSON losslessly.
	data, err := json.Marshal(last)
	if err != nil {
		t.Fatal(err)
	}
	restored := &Checkpoint{}
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	leg2 := opt
	leg2.Resume = restored
	r2, err := Run(context.Background(), p, stdMoves(p), leg2)
	if err != nil {
		t.Fatal(err)
	}
	return r2
}

func TestCheckpointResumeIsDeterministic(t *testing.T) {
	mk := func() Problem { return quadProblem(3, nil) }
	opt := Options{Seed: 17, MaxMoves: 12_000, FreezeStages: -1}

	full, err := Run(context.Background(), mk(), stdMoves(mk()), opt)
	if err != nil {
		t.Fatal(err)
	}
	resumed := resumeRun(t, mk(), opt, 4000)

	if resumed.BestCost != full.BestCost {
		t.Errorf("best cost: resumed %g != uninterrupted %g", resumed.BestCost, full.BestCost)
	}
	if resumed.FinalCost != full.FinalCost {
		t.Errorf("final cost: resumed %g != uninterrupted %g", resumed.FinalCost, full.FinalCost)
	}
	for i := range full.Best {
		if resumed.Best[i] != full.Best[i] {
			t.Fatalf("best[%d]: resumed %g != uninterrupted %g", i, resumed.Best[i], full.Best[i])
		}
	}
	if resumed.Moves != full.Moves || resumed.Accepted != full.Accepted {
		t.Errorf("moves/accepted: resumed %d/%d != uninterrupted %d/%d",
			resumed.Moves, resumed.Accepted, full.Moves, full.Accepted)
	}
	if resumed.FinalTemp != full.FinalTemp {
		t.Errorf("final temp: resumed %g != uninterrupted %g", resumed.FinalTemp, full.FinalTemp)
	}
}

func TestCheckpointValidation(t *testing.T) {
	p := quadProblem(2, nil)
	good := &Checkpoint{
		Seed: 1, MaxMoves: 1000, Move: 10,
		Cur: []float64{0, 0}, Best: []float64{0, 0},
		Selector:   SelectorState{Quality: []float64{1, 1}, Proposed: []int{0, 0}, Accepted: []int{0, 0}, TotProp: []int{0, 0}, TotAcc: []int{0, 0}},
		MoveStates: [][]float64{nil, nil},
		ClassFails: []int{0, 0},
	}
	cases := map[string]func(ck *Checkpoint){
		"wrong var count":  func(ck *Checkpoint) { ck.Cur = []float64{0} },
		"wrong move count": func(ck *Checkpoint) { ck.ClassFails = []int{0} },
		"wrong budget":     func(ck *Checkpoint) { ck.MaxMoves = 99 },
		"move out of range": func(ck *Checkpoint) {
			ck.Move = 5000
		},
	}
	for name, corrupt := range cases {
		data, _ := json.Marshal(good)
		ck := &Checkpoint{}
		_ = json.Unmarshal(data, ck)
		corrupt(ck)
		_, err := Run(context.Background(), p, stdMoves(p), Options{
			Seed: 1, MaxMoves: 1000, Resume: ck,
		})
		if err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}
