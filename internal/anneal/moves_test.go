package anneal

import (
	"context"
	"math/rand"
	"testing"
)

func TestRandomStepRespectsBounds(t *testing.T) {
	vars := []VarSpec{
		{Name: "c", Min: -1, Max: 1, Continuous: true},
		{Name: "g", Min: 1e-6, Max: 1e-3, PointsPerDecade: 25},
	}
	m := NewRandomStep("r", vars, 0.5)
	rng := rand.New(rand.NewSource(2))
	cur := []float64{0, 1e-5}
	next := make([]float64, 2)
	for i := 0; i < 2000; i++ {
		copy(next, cur)
		if !m.Propose(cur, next, rng) {
			continue
		}
		for j := range vars {
			s := vars[j].Snap(next[j])
			if s < vars[j].Min || s > vars[j].Max {
				t.Fatalf("iteration %d: var %d out of range: %g", i, j, s)
			}
		}
		// Exactly one variable changed.
		changed := 0
		for j := range vars {
			if next[j] != cur[j] {
				changed++
			}
		}
		if changed > 1 {
			t.Fatalf("RandomStep changed %d variables", changed)
		}
	}
}

func TestRandomStepAmplitudeAdaptation(t *testing.T) {
	vars := []VarSpec{{Name: "c", Min: -1, Max: 1, Continuous: true}}
	m := NewRandomStep("r", vars, 0.25)
	rng := rand.New(rand.NewSource(3))
	cur := []float64{0}
	next := []float64{0}
	m.Propose(cur, next, rng)
	a0 := m.amp[0]
	for i := 0; i < 50; i++ {
		m.Feedback(false, 1)
	}
	if m.amp[0] >= a0 {
		t.Error("amplitude should shrink under rejection")
	}
	for i := 0; i < 500; i++ {
		m.Feedback(true, -1)
	}
	if m.amp[0] > 2 {
		t.Error("amplitude must stay capped")
	}
	for i := 0; i < 5000; i++ {
		m.Feedback(false, 1)
	}
	if m.amp[0] < 0.005 {
		t.Error("amplitude must stay floored")
	}
}

func TestAllStepOnlyMovesContinuous(t *testing.T) {
	vars := []VarSpec{
		{Name: "c", Min: -1, Max: 1, Continuous: true},
		{Name: "g", Min: 1e-6, Max: 1e-3, PointsPerDecade: 25},
	}
	m := NewAllStep("a", vars)
	rng := rand.New(rand.NewSource(4))
	cur := []float64{0.5, 1e-5}
	next := make([]float64, 2)
	copy(next, cur)
	if !m.Propose(cur, next, rng) {
		t.Fatal("AllStep proposed nothing")
	}
	if next[1] != cur[1] {
		t.Error("AllStep must not touch discrete variables")
	}
	if next[0] == cur[0] {
		t.Error("AllStep should move the continuous variable")
	}
	// No continuous vars → no move.
	m2 := NewAllStep("a", vars[1:])
	copy(next, cur)
	if m2.Propose(cur[1:], next[1:], rng) {
		t.Error("AllStep with only discrete vars must decline")
	}
	m.Feedback(true, -1)
	m.Feedback(false, 1)
}

func TestFuncMoveDelegation(t *testing.T) {
	called := 0
	fed := 0
	m := &FuncMove{
		Label: "f",
		Fn: func(cur, next []float64, rng *rand.Rand) bool {
			called++
			return true
		},
		Feedb: func(acc bool, d float64) { fed++ },
	}
	if m.Name() != "f" {
		t.Error("name")
	}
	if !m.Propose(nil, nil, nil) || called != 1 {
		t.Error("Fn not delegated")
	}
	m.Feedback(true, 0)
	if fed != 1 {
		t.Error("Feedb not delegated")
	}
	// Nil Feedb is safe.
	m2 := &FuncMove{Label: "g", Fn: m.Fn}
	m2.Feedback(false, 0)
}

func TestBestResetAt(t *testing.T) {
	// A cost function that *changes* at an early point (simulating
	// adaptive weights): without BestResetAt the early best would win.
	calls := 0
	p := &funcProblem{
		vars: contVars(1, -10, 10),
		cost: func(x []float64) float64 {
			calls++
			base := (x[0] - 3) * (x[0] - 3)
			if calls < 500 {
				return base * 0.001 // early costs artificially low
			}
			return base
		},
	}
	moves := []Move{NewRandomStep("r", p.vars, 0.3)}
	res, err := Run(context.Background(), p, moves, Options{Seed: 6, MaxMoves: 20_000, BestResetAt: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Best must reflect the late (true) cost scale and the optimum ≈ 3.
	if res.Best[0] < 2.5 || res.Best[0] > 3.5 {
		t.Errorf("best x = %g, want ≈ 3", res.Best[0])
	}
}
