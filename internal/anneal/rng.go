package anneal

// rngSource is a splitmix64 random source. The annealer uses it instead
// of math/rand's default source because its entire state is one uint64:
// a checkpoint can capture it exactly and a resumed run replays the
// identical random stream, which is what makes checkpoint/restart
// bit-deterministic. The generator passes the usual statistical batteries
// and is more than adequate for move proposal/acceptance sampling.
//
// rngSource implements both rand.Source and rand.Source64, and
// math/rand's Rand keeps no hidden state of its own for the draws the
// annealer performs (Float64, Intn, NormFloat64 all flow directly from
// the source), so restoring `state` restores the stream.
type rngSource struct {
	state uint64
}

func newRNGSource(seed int64) *rngSource {
	return &rngSource{state: uint64(seed)}
}

// Uint64 advances the splitmix64 state and returns the next output.
func (s *rngSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *rngSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *rngSource) Seed(seed int64) { s.state = uint64(seed) }
