// Package awe implements Asymptotic Waveform Evaluation: reduced-order
// small-signal analysis of linear circuits by moment matching (Padé
// approximation), as used by ASTRX/OBLX to predict circuit performance
// without designer-supplied equations.
//
// Given the MNA system (G + sC)·x = b·u(s), the k-th moment of the
// output is μ_k = Lᵀ·m_k with m_0 = G⁻¹b and m_k = -G⁻¹C·m_{k-1}. A
// q-pole reduced model
//
//	H(s) ≈ Σ_{i=1..q} k_i / (s - p_i)
//
// is fitted so its first 2q moments match the circuit's. All measures the
// synthesis cost function needs — DC gain, unity-gain frequency, phase
// margin, 3 dB bandwidth, pole/zero locations — are then read off the
// reduced model at negligible cost. One LU factorization of G is shared
// by all 2q moment solves, which is why AWE is orders of magnitude faster
// than a SPICE-style AC sweep.
package awe

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"astrx/internal/linalg"
	"astrx/internal/mna"
)

// DefaultOrder is the reduced-model order requested when callers pass
// q <= 0. Eight poles comfortably covers the paper's benchmark circuits
// ("as many as 6 poles and zeros may non-trivially affect the frequency
// response near the unity gain point").
const DefaultOrder = 8

// ErrNoDCPath indicates the conductance matrix was singular; the usual
// cause is a node with no DC path to ground. Callers typically add gmin
// conductances and retry.
var ErrNoDCPath = errors.New("awe: singular G matrix (node without DC path to ground?)")

// Analyzer performs AWE analyses of one assembled MNA system. The LU
// factorization of G is computed once and shared by every transfer
// function extracted from the system.
type Analyzer struct {
	sys *mna.System
	lu  *linalg.LU

	// scratch buffers for the moment recursion
	cur, nxt []float64
}

// NewAnalyzer factors the system's conductance matrix.
func NewAnalyzer(sys *mna.System) (*Analyzer, error) {
	lu, err := linalg.FactorLU(sys.G)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoDCPath, err)
	}
	return &Analyzer{
		sys: sys,
		lu:  lu,
		cur: make([]float64, sys.Size),
		nxt: make([]float64, sys.Size),
	}, nil
}

// TF is a reduced-order transfer function produced by AWE.
type TF struct {
	// Poles of the reduced model (rad/s, complex).
	Poles []complex128
	// Residues paired with Poles.
	Residues []complex128
	// Zeros of the reduced model (derived from poles+residues).
	Zeros []complex128
	// Moments are the raw matched output moments μ_0 … μ_{2q-1}.
	Moments []float64
	// Order is the model order q actually used (it may be lower than
	// requested when the circuit has fewer observable poles).
	Order int
}

// Moments computes the first n output moments for input source src and
// differential output v(outPos) - v(outNeg); outNeg may be "" or "0" for
// a single-ended measurement.
func (a *Analyzer) Moments(src, outPos, outNeg string, n int) ([]float64, error) {
	b, err := a.sys.InputVector(src)
	if err != nil {
		return nil, err
	}
	ip, okP := a.sys.NodeUnknown(outPos)
	if !okP {
		return nil, fmt.Errorf("awe: output node %q unknown or ground", outPos)
	}
	in := -1
	if outNeg != "" && outNeg != "0" {
		var okN bool
		in, okN = a.sys.NodeUnknown(outNeg)
		if !okN {
			return nil, fmt.Errorf("awe: output node %q unknown or ground", outNeg)
		}
	}

	mu := make([]float64, n)
	copy(a.cur, b)
	a.lu.SolveInPlace(a.cur) // m_0
	for k := 0; k < n; k++ {
		mu[k] = a.cur[ip]
		if in >= 0 {
			mu[k] -= a.cur[in]
		}
		if k == n-1 {
			break
		}
		// m_{k+1} = -G⁻¹ C m_k (allocation-free: the recursion runs
		// hundreds of thousands of times per synthesis).
		a.sys.C.MulVecInto(a.nxt, a.cur)
		for i := range a.nxt {
			a.nxt[i] = -a.nxt[i]
		}
		a.lu.SolveInPlace(a.nxt)
		a.cur, a.nxt = a.nxt, a.cur
	}
	return mu, nil
}

// TransferFunction runs the full AWE flow: 2q moments, scaled Padé fit,
// pole/residue extraction, and zero recovery. q <= 0 selects
// DefaultOrder. The order is automatically reduced when the Hankel
// system is singular or the fitted model fails to reproduce the moments
// (i.e. the circuit has fewer than q observable poles).
func (a *Analyzer) TransferFunction(src, outPos, outNeg string, q int) (*TF, error) {
	if q <= 0 {
		q = DefaultOrder
	}
	if max := a.sys.Size; q > max {
		q = max
	}
	mu, err := a.Moments(src, outPos, outNeg, 2*q)
	if err != nil {
		return nil, err
	}
	return FitMoments(mu, q)
}

// FitMoments fits a reduced-order model to a moment sequence. It is
// exported separately so tests can exercise the Padé machinery directly.
func FitMoments(mu []float64, q int) (*TF, error) {
	if 2*q > len(mu) {
		q = len(mu) / 2
	}
	mu0 := mu[0]
	// A (near) zero DC value with zero higher moments is a dead output.
	allZero := true
	for _, m := range mu {
		if m != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return &TF{Moments: mu, Order: 0}, nil
	}

	// Frequency scaling: μ'_k = μ_k / (μ_ref · β^k) keeps the Hankel
	// system well conditioned. β estimates the dominant time constant.
	beta := 1.0
	if mu0 != 0 && mu[1] != 0 {
		beta = math.Abs(mu[1] / mu0)
	} else {
		// Fall back to the first nonzero ratio.
		for k := 0; k+1 < len(mu); k++ {
			if mu[k] != 0 && mu[k+1] != 0 {
				beta = math.Abs(mu[k+1] / mu[k])
				break
			}
		}
	}
	if beta == 0 || math.IsInf(beta, 0) || math.IsNaN(beta) {
		beta = 1
	}
	ref := mu0
	if ref == 0 {
		ref = 1
	}
	scaled := make([]float64, len(mu))
	bk := 1.0
	for k := range mu {
		scaled[k] = mu[k] / (ref * bk)
		bk *= beta
	}

	// Search orders from high to low and stop at the first *stable*
	// validated fit — equivalent to picking the highest validated stable
	// order, but the common case costs one or two fits instead of q. An
	// unstable validated fit wins only when no stable order reproduced
	// the moments (a genuinely unstable circuit): spurious RHP poles at
	// the edge of moment resolution are rejected in favor of the stable
	// fit one order down.
	var best, validated *TF
	bestScore := math.Inf(1)
	for order := q; order >= 1; order-- {
		tf, errMax, ok := tryFit(scaled, order)
		if !ok {
			continue
		}
		tf.Order = order
		score := errMax
		if !tf.Stable() {
			score *= 1e6 // strongly prefer stable fits in the fallback
		}
		if score < bestScore {
			bestScore, best = score, tf
		}
		if errMax < 1e-9 {
			if tf.Stable() {
				validated = tf
				break
			}
			if validated == nil {
				validated = tf // keep looking for a stable one below
			}
		}
	}
	if validated != nil {
		best = validated
	}
	if best == nil {
		// Purely resistive response (or numerically dead): constant TF.
		return &TF{Moments: mu, Order: 0}, nil
	}
	// Unscale: μ'_k = Σ(c_i/ref)(λ_i/β)^k, so λ = β·λ' and hence
	// p = 1/λ = p'/β; residues k = -c·p = (ref/β)·k'.
	for i := range best.Poles {
		best.Poles[i] /= complex(beta, 0)
		best.Residues[i] *= complex(ref/beta, 0)
	}
	best.Moments = mu
	best.deriveZeros()
	return best, nil
}

// tryFit attempts a Padé fit of the given order on scaled moments, using
// the first 2q for the fit and every available moment for validation. It
// returns the worst relative moment-reproduction error.
func tryFit(mu []float64, q int) (*TF, float64, bool) {
	// Solve the Hankel system Σ_j a_j μ_{k+j} = -μ_{k+q}, k = 0..q-1.
	h := linalg.NewMatrix(q, q)
	rhs := make([]float64, q)
	for k := 0; k < q; k++ {
		for j := 0; j < q; j++ {
			h.Set(k, j, mu[k+j])
		}
		rhs[k] = -mu[k+q]
	}
	acoef, err := linalg.SolveLinear(h, rhs)
	if err != nil {
		return nil, 0, false
	}
	// Characteristic polynomial λ^q + a_{q-1} λ^{q-1} + … + a_0 = 0.
	poly := make([]complex128, q+1)
	for j := 0; j < q; j++ {
		poly[j] = complex(acoef[j], 0)
	}
	poly[q] = 1
	lambda, err := linalg.PolyRoots(poly)
	if err != nil {
		return nil, 0, false
	}
	maxL := 0.0
	for _, l := range lambda {
		if l == 0 || cmplx.IsNaN(l) || cmplx.IsInf(l) {
			return nil, 0, false
		}
		if a := cmplx.Abs(l); a > maxL {
			maxL = a
		}
	}
	// Rank-deficiency signatures: (a) duplicated characteristic roots —
	// a true root split in two plus arbitrary extras; (b) roots many
	// decades below the dominant one, i.e. "poles" far beyond what 2q
	// double-precision moments can resolve.
	for i := range lambda {
		if cmplx.Abs(lambda[i]) < 1e-9*maxL {
			return nil, 0, false
		}
		for j := i + 1; j < len(lambda); j++ {
			if cmplx.Abs(lambda[i]-lambda[j]) < 1e-6*maxL {
				return nil, 0, false
			}
		}
	}
	// Residue recovery: μ_k = Σ c_i λ_i^k for k = 0..q-1 (Vandermonde).
	v := linalg.NewCMatrix(q, q)
	for i := 0; i < q; i++ {
		p := complex128(1)
		for k := 0; k < q; k++ {
			v.Set(k, i, p)
			p *= lambda[i]
		}
	}
	fv, err := linalg.FactorCLU(v)
	if err != nil {
		return nil, 0, false
	}
	mvec := make([]complex128, q)
	for k := 0; k < q; k++ {
		mvec[k] = complex(mu[k], 0)
	}
	c := fv.Solve(mvec)

	// Rank-deficiency guard: when the circuit has fewer than q observable
	// poles the Hankel system is (numerically) rank deficient and the
	// solver returns a recurrence whose extra characteristic roots are
	// arbitrary. Those spurious poles carry essentially zero residue, so
	// their presence is detected here and the order is reduced.
	maxC := 0.0
	for _, ci := range c {
		if a := cmplx.Abs(ci); a > maxC {
			maxC = a
		}
	}
	if maxC == 0 {
		return nil, 0, false
	}
	for _, ci := range c {
		if cmplx.Abs(ci) < 1e-8*maxC {
			return nil, 0, false
		}
	}
	// Massive residue cancellation (Σc must equal μ'_0, which is O(1)
	// after scaling) marks an ill-conditioned split of a true pole.
	if maxC > 1e6*(math.Abs(mu[0])+1e-12) {
		return nil, 0, false
	}

	// Validate: the model must reproduce every available moment, not just
	// the 2q used for the fit. The worst relative error is the fit score.
	// (λ^k is carried multiplicatively — cmplx.Pow in this loop was a
	// measurable fraction of the whole synthesis runtime.)
	errMax := 0.0
	lamPow := make([]complex128, q)
	for i := range lamPow {
		lamPow[i] = cmplx.Pow(lambda[i], complex(float64(q), 0))
	}
	for k := q; k < len(mu); k++ {
		pred := complex128(0)
		for i := 0; i < q; i++ {
			pred += c[i] * lamPow[i]
			lamPow[i] *= lambda[i]
		}
		scale := math.Abs(mu[0]) + math.Abs(mu[k]) + 1e-12
		if e := math.Abs(real(pred)-mu[k]) / scale; e > errMax {
			errMax = e
		}
	}

	tf := &TF{
		Poles:    make([]complex128, q),
		Residues: make([]complex128, q),
	}
	for i := 0; i < q; i++ {
		// λ_i = 1/p_i, residue k_i = -c_i·p_i.
		p := 1 / lambda[i]
		tf.Poles[i] = p
		tf.Residues[i] = -c[i] * p
	}
	return tf, errMax, true
}

// deriveZeros expands the numerator polynomial N(s) = Σ k_i·Π_{j≠i}(s-p_j)
// in a frequency-normalized variable and roots it.
func (tf *TF) deriveZeros() {
	q := len(tf.Poles)
	if q <= 1 {
		tf.Zeros = nil
		return
	}
	// Normalize by the geometric mean pole magnitude for conditioning.
	w0 := 1.0
	prod := 1.0
	for _, p := range tf.Poles {
		prod *= cmplx.Abs(p)
	}
	if prod > 0 {
		w0 = math.Pow(prod, 1/float64(q))
	}
	// N(σ) with s = w0·σ: Σ (k_i/w0^{q-1}) Π_{j≠i}(σ - p_j/w0)
	num := make([]complex128, q) // degree q-1
	for i := 0; i < q; i++ {
		term := []complex128{tf.Residues[i]}
		for j := 0; j < q; j++ {
			if j == i {
				continue
			}
			pj := tf.Poles[j] / complex(w0, 0)
			next := make([]complex128, len(term)+1)
			for t, co := range term {
				next[t+1] += co
				next[t] -= co * pj
			}
			term = next
		}
		for t := range term {
			num[t] += term[t]
		}
	}
	// Degenerate numerators (all ~0 relative to residues) → no zeros.
	mag := 0.0
	for _, co := range num {
		if a := cmplx.Abs(co); a > mag {
			mag = a
		}
	}
	if mag == 0 {
		tf.Zeros = nil
		return
	}
	roots, err := linalg.PolyRoots(num)
	if err != nil {
		tf.Zeros = nil
		return
	}
	// Keep only zeros within a few decades of the pole cluster: roots
	// far outside are artifacts of a numerically tiny leading numerator
	// coefficient and carry no signal.
	maxPole := 0.0
	for _, p := range tf.Poles {
		if a := cmplx.Abs(p); a > maxPole {
			maxPole = a
		}
	}
	kept := roots[:0]
	for _, r := range roots {
		r *= complex(w0, 0)
		if cmplx.Abs(r) <= 1e4*maxPole {
			kept = append(kept, r)
		}
	}
	tf.Zeros = kept
}

// Eval evaluates the reduced model at the complex frequency s.
func (tf *TF) Eval(s complex128) complex128 {
	if tf.Order == 0 {
		if len(tf.Moments) > 0 {
			return complex(tf.Moments[0], 0)
		}
		return 0
	}
	h := complex128(0)
	for i := range tf.Poles {
		h += tf.Residues[i] / (s - tf.Poles[i])
	}
	return h
}

// DCGain returns H(0) (the exact zeroth moment).
func (tf *TF) DCGain() float64 {
	if len(tf.Moments) > 0 {
		return tf.Moments[0]
	}
	return real(tf.Eval(0))
}

// GainMagAt returns |H(jω)|.
func (tf *TF) GainMagAt(w float64) float64 {
	return cmplx.Abs(tf.Eval(complex(0, w)))
}

// UGF returns the unity-gain frequency in rad/s, or 0 when |H| never
// crosses 1 (e.g. DC gain below unity).
func (tf *TF) UGF() float64 {
	if math.Abs(tf.DCGain()) <= 1 {
		return 0
	}
	if tf.Order == 0 {
		return 0
	}
	// Bracket by log sweep from two decades below the slowest pole to
	// two decades above the fastest.
	lo, hi := tf.poleFreqRange()
	wLo := lo / 100
	wHi := hi * 100
	if wLo <= 0 {
		wLo = 1e-3
	}
	prevW := wLo
	prevV := tf.GainMagAt(wLo) - 1
	if prevV < 0 {
		return 0 // already below unity at the low edge
	}
	const steps = 400
	ratio := math.Pow(wHi/wLo, 1.0/steps)
	w := wLo
	for i := 0; i < steps; i++ {
		w *= ratio
		v := tf.GainMagAt(w) - 1
		if v <= 0 {
			// Bisect [prevW, w].
			a, b := prevW, w
			for it := 0; it < 80; it++ {
				mid := math.Sqrt(a * b)
				if tf.GainMagAt(mid)-1 > 0 {
					a = mid
				} else {
					b = mid
				}
			}
			return math.Sqrt(a * b)
		}
		prevW, prevV = w, v
	}
	_ = prevV
	return 0
}

// poleFreqRange returns the min and max nonzero pole/zero magnitudes.
func (tf *TF) poleFreqRange() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	consider := func(c complex128) {
		a := cmplx.Abs(c)
		if a == 0 {
			return
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	for _, p := range tf.Poles {
		consider(p)
	}
	for _, z := range tf.Zeros {
		consider(z)
	}
	if math.IsInf(lo, 1) {
		lo, hi = 1, 1
	}
	return lo, hi
}

// PhaseDegAt returns the unwrapped phase of H(jω) in degrees, computed
// from the pole/zero factorization so no numeric unwrapping is needed:
//
//	∠H = ∠K + Σ ∠(jω - z_k) - Σ ∠(jω - p_i)
func (tf *TF) PhaseDegAt(w float64) float64 {
	if tf.Order == 0 {
		if tf.DCGain() < 0 {
			return -180
		}
		return 0
	}
	phase := 0.0
	for _, z := range tf.Zeros {
		phase += contAngle(w, z)
	}
	for _, p := range tf.Poles {
		phase -= contAngle(w, p)
	}
	// Leading coefficient: H(s) ≈ (Σk_i)·s^{q-1}/s^q … the constant K
	// has the sign that reconciles the DC gain with the factored form.
	k := tf.DCGain()
	for _, z := range tf.Zeros {
		k /= cmplx.Abs(z)
	}
	for _, p := range tf.Poles {
		k *= cmplx.Abs(p)
	}
	// At ω=0 the factored sum already contributes each root's DC angle;
	// subtract it so phase(0) is 0 for K>0 and ±180 for K<0.
	dc := 0.0
	for _, z := range tf.Zeros {
		dc += contAngle(0, z)
	}
	for _, p := range tf.Poles {
		dc -= contAngle(0, p)
	}
	phase -= dc
	if k < 0 {
		phase -= math.Pi
	}
	return phase * 180 / math.Pi
}

// contAngle is the angle of (jω - r) continued from ω = 0: for a
// right-half-plane root with positive imaginary part the trajectory of
// the point (-Re r, ω - Im r) crosses the negative real axis upward at
// ω = Im r, where principal atan2 jumps by +2π relative to the
// continuous angle — exactly a full turn of spurious phase margin if
// left uncorrected.
func contAngle(w float64, r complex128) float64 {
	a := math.Atan2(w-imag(r), -real(r))
	if real(r) > 0 && imag(r) > 0 && w > imag(r) {
		a -= 2 * math.Pi
	}
	return a
}

// PhaseMarginDeg returns 180° + ∠H(j·UGF); 0 when there is no UGF.
func (tf *TF) PhaseMarginDeg() float64 {
	wu := tf.UGF()
	if wu == 0 {
		return 0
	}
	return 180 + tf.PhaseDegAt(wu)
}

// BW3dB returns the -3 dB bandwidth in rad/s (0 if the gain never drops
// below |H(0)|/√2 within the scanned range).
func (tf *TF) BW3dB() float64 {
	g0 := math.Abs(tf.DCGain())
	if g0 == 0 || tf.Order == 0 {
		return 0
	}
	target := g0 / math.Sqrt2
	lo, hi := tf.poleFreqRange()
	wLo, wHi := lo/100, hi*100
	a, b := wLo, wLo
	found := false
	const steps = 400
	ratio := math.Pow(wHi/wLo, 1.0/steps)
	w := wLo
	for i := 0; i < steps; i++ {
		next := w * ratio
		if tf.GainMagAt(next) <= target {
			a, b = w, next
			found = true
			break
		}
		w = next
	}
	if !found {
		return 0
	}
	for it := 0; it < 80; it++ {
		mid := math.Sqrt(a * b)
		if tf.GainMagAt(mid) > target {
			a = mid
		} else {
			b = mid
		}
	}
	return math.Sqrt(a * b)
}

// DominantPole returns the pole with the smallest magnitude (0 if none).
func (tf *TF) DominantPole() complex128 {
	var best complex128
	bestMag := math.Inf(1)
	for _, p := range tf.Poles {
		if a := cmplx.Abs(p); a < bestMag {
			bestMag, best = a, p
		}
	}
	if math.IsInf(bestMag, 1) {
		return 0
	}
	return best
}

// Stable reports whether all poles lie in the open left half plane.
func (tf *TF) Stable() bool {
	for _, p := range tf.Poles {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}
