// Package awe implements Asymptotic Waveform Evaluation: reduced-order
// small-signal analysis of linear circuits by moment matching (Padé
// approximation), as used by ASTRX/OBLX to predict circuit performance
// without designer-supplied equations.
//
// Given the MNA system (G + sC)·x = b·u(s), the k-th moment of the
// output is μ_k = Lᵀ·m_k with m_0 = G⁻¹b and m_k = -G⁻¹C·m_{k-1}. A
// q-pole reduced model
//
//	H(s) ≈ Σ_{i=1..q} k_i / (s - p_i)
//
// is fitted so its first 2q moments match the circuit's. All measures the
// synthesis cost function needs — DC gain, unity-gain frequency, phase
// margin, 3 dB bandwidth, pole/zero locations — are then read off the
// reduced model at negligible cost. One LU factorization of G is shared
// by all 2q moment solves, which is why AWE is orders of magnitude faster
// than a SPICE-style AC sweep.
package awe

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"astrx/internal/mna"
)

// DefaultOrder is the reduced-model order requested when callers pass
// q <= 0. Eight poles comfortably covers the paper's benchmark circuits
// ("as many as 6 poles and zeros may non-trivially affect the frequency
// response near the unity gain point").
const DefaultOrder = 8

// ErrNoDCPath indicates the conductance matrix was singular; the usual
// cause is a node with no DC path to ground. Callers typically add gmin
// conductances and retry.
var ErrNoDCPath = errors.New("awe: singular G matrix (node without DC path to ground?)")

// Analyzer performs AWE analyses of one assembled MNA system. The LU
// factorization of G is computed once and shared by every transfer
// function extracted from the system. It is a name-resolving front end
// over Engine, which hot paths drive directly with precomputed indices.
type Analyzer struct {
	sys *mna.System
	eng Engine
}

// NewAnalyzer factors the system's conductance matrix.
func NewAnalyzer(sys *mna.System) (*Analyzer, error) {
	a := &Analyzer{sys: sys}
	a.eng.G, a.eng.C = sys.G, sys.C
	if err := a.eng.Refactor(); err != nil {
		return nil, err
	}
	return a, nil
}

// TF is a reduced-order transfer function produced by AWE.
type TF struct {
	// Poles of the reduced model (rad/s, complex).
	Poles []complex128
	// Residues paired with Poles.
	Residues []complex128
	// Zeros of the reduced model (derived from poles+residues).
	Zeros []complex128
	// Moments are the raw matched output moments μ_0 … μ_{2q-1}.
	Moments []float64
	// Order is the model order q actually used (it may be lower than
	// requested when the circuit has fewer observable poles).
	Order int
}

// Moments computes the first n output moments for input source src and
// differential output v(outPos) - v(outNeg); outNeg may be "" or "0" for
// a single-ended measurement.
func (a *Analyzer) Moments(src, outPos, outNeg string, n int) ([]float64, error) {
	b, err := a.sys.InputVector(src)
	if err != nil {
		return nil, err
	}
	ip, okP := a.sys.NodeUnknown(outPos)
	if !okP {
		return nil, fmt.Errorf("awe: output node %q unknown or ground", outPos)
	}
	in := -1
	if outNeg != "" && outNeg != "0" {
		var okN bool
		in, okN = a.sys.NodeUnknown(outNeg)
		if !okN {
			return nil, fmt.Errorf("awe: output node %q unknown or ground", outNeg)
		}
	}

	mu := make([]float64, n)
	a.eng.MomentsInto(mu, b, ip, in)
	return mu, nil
}

// TransferFunction runs the full AWE flow: 2q moments, scaled Padé fit,
// pole/residue extraction, and zero recovery. q <= 0 selects
// DefaultOrder. The order is automatically reduced when the Hankel
// system is singular or the fitted model fails to reproduce the moments
// (i.e. the circuit has fewer than q observable poles).
func (a *Analyzer) TransferFunction(src, outPos, outNeg string, q int) (*TF, error) {
	if q <= 0 {
		q = DefaultOrder
	}
	if max := a.sys.Size; q > max {
		q = max
	}
	mu, err := a.Moments(src, outPos, outNeg, 2*q)
	if err != nil {
		return nil, err
	}
	return FitMoments(mu, q)
}

// FitMoments fits a reduced-order model to a moment sequence. It is
// exported separately so tests can exercise the Padé machinery directly.
// It is a convenience wrapper over FitWorkspace.FitMomentsInto, which
// the synthesis hot path uses with persistent scratch storage.
func FitMoments(mu []float64, q int) (*TF, error) {
	var ws FitWorkspace
	tf := new(TF)
	ws.FitMomentsInto(tf, mu, q)
	return tf, nil
}

// Eval evaluates the reduced model at the complex frequency s.
func (tf *TF) Eval(s complex128) complex128 {
	if tf.Order == 0 {
		if len(tf.Moments) > 0 {
			return complex(tf.Moments[0], 0)
		}
		return 0
	}
	h := complex128(0)
	for i := range tf.Poles {
		h += tf.Residues[i] / (s - tf.Poles[i])
	}
	return h
}

// DCGain returns H(0) (the exact zeroth moment).
func (tf *TF) DCGain() float64 {
	if len(tf.Moments) > 0 {
		return tf.Moments[0]
	}
	return real(tf.Eval(0))
}

// GainMagAt returns |H(jω)|.
func (tf *TF) GainMagAt(w float64) float64 {
	return cmplx.Abs(tf.Eval(complex(0, w)))
}

// UGF returns the unity-gain frequency in rad/s, or 0 when |H| never
// crosses 1 (e.g. DC gain below unity).
func (tf *TF) UGF() float64 {
	if math.Abs(tf.DCGain()) <= 1 {
		return 0
	}
	if tf.Order == 0 {
		return 0
	}
	// Bracket by log sweep from two decades below the slowest pole to
	// two decades above the fastest.
	lo, hi := tf.poleFreqRange()
	wLo := lo / 100
	wHi := hi * 100
	if wLo <= 0 {
		wLo = 1e-3
	}
	prevW := wLo
	prevV := tf.GainMagAt(wLo) - 1
	if prevV < 0 {
		return 0 // already below unity at the low edge
	}
	const steps = 400
	ratio := math.Pow(wHi/wLo, 1.0/steps)
	w := wLo
	for i := 0; i < steps; i++ {
		w *= ratio
		v := tf.GainMagAt(w) - 1
		if v <= 0 {
			// Bisect [prevW, w].
			a, b := prevW, w
			for it := 0; it < 80; it++ {
				mid := math.Sqrt(a * b)
				if tf.GainMagAt(mid)-1 > 0 {
					a = mid
				} else {
					b = mid
				}
			}
			return math.Sqrt(a * b)
		}
		prevW, prevV = w, v
	}
	_ = prevV
	return 0
}

// poleFreqRange returns the min and max nonzero pole/zero magnitudes.
func (tf *TF) poleFreqRange() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	consider := func(c complex128) {
		a := cmplx.Abs(c)
		if a == 0 {
			return
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	for _, p := range tf.Poles {
		consider(p)
	}
	for _, z := range tf.Zeros {
		consider(z)
	}
	if math.IsInf(lo, 1) {
		lo, hi = 1, 1
	}
	return lo, hi
}

// PhaseDegAt returns the unwrapped phase of H(jω) in degrees, computed
// from the pole/zero factorization so no numeric unwrapping is needed:
//
//	∠H = ∠K + Σ ∠(jω - z_k) - Σ ∠(jω - p_i)
func (tf *TF) PhaseDegAt(w float64) float64 {
	if tf.Order == 0 {
		if tf.DCGain() < 0 {
			return -180
		}
		return 0
	}
	phase := 0.0
	for _, z := range tf.Zeros {
		phase += contAngle(w, z)
	}
	for _, p := range tf.Poles {
		phase -= contAngle(w, p)
	}
	// Leading coefficient: H(s) ≈ (Σk_i)·s^{q-1}/s^q … the constant K
	// has the sign that reconciles the DC gain with the factored form.
	k := tf.DCGain()
	for _, z := range tf.Zeros {
		k /= cmplx.Abs(z)
	}
	for _, p := range tf.Poles {
		k *= cmplx.Abs(p)
	}
	// At ω=0 the factored sum already contributes each root's DC angle;
	// subtract it so phase(0) is 0 for K>0 and ±180 for K<0.
	dc := 0.0
	for _, z := range tf.Zeros {
		dc += contAngle(0, z)
	}
	for _, p := range tf.Poles {
		dc -= contAngle(0, p)
	}
	phase -= dc
	if k < 0 {
		phase -= math.Pi
	}
	return phase * 180 / math.Pi
}

// contAngle is the angle of (jω - r) continued from ω = 0: for a
// right-half-plane root with positive imaginary part the trajectory of
// the point (-Re r, ω - Im r) crosses the negative real axis upward at
// ω = Im r, where principal atan2 jumps by +2π relative to the
// continuous angle — exactly a full turn of spurious phase margin if
// left uncorrected.
func contAngle(w float64, r complex128) float64 {
	a := math.Atan2(w-imag(r), -real(r))
	if real(r) > 0 && imag(r) > 0 && w > imag(r) {
		a -= 2 * math.Pi
	}
	return a
}

// PhaseMarginDeg returns 180° + ∠H(j·UGF); 0 when there is no UGF.
func (tf *TF) PhaseMarginDeg() float64 {
	wu := tf.UGF()
	if wu == 0 {
		return 0
	}
	return 180 + tf.PhaseDegAt(wu)
}

// BW3dB returns the -3 dB bandwidth in rad/s (0 if the gain never drops
// below |H(0)|/√2 within the scanned range).
func (tf *TF) BW3dB() float64 {
	g0 := math.Abs(tf.DCGain())
	if g0 == 0 || tf.Order == 0 {
		return 0
	}
	target := g0 / math.Sqrt2
	lo, hi := tf.poleFreqRange()
	wLo, wHi := lo/100, hi*100
	a, b := wLo, wLo
	found := false
	const steps = 400
	ratio := math.Pow(wHi/wLo, 1.0/steps)
	w := wLo
	for i := 0; i < steps; i++ {
		next := w * ratio
		if tf.GainMagAt(next) <= target {
			a, b = w, next
			found = true
			break
		}
		w = next
	}
	if !found {
		return 0
	}
	for it := 0; it < 80; it++ {
		mid := math.Sqrt(a * b)
		if tf.GainMagAt(mid) > target {
			a = mid
		} else {
			b = mid
		}
	}
	return math.Sqrt(a * b)
}

// DominantPole returns the pole with the smallest magnitude (0 if none).
func (tf *TF) DominantPole() complex128 {
	var best complex128
	bestMag := math.Inf(1)
	for _, p := range tf.Poles {
		if a := cmplx.Abs(p); a < bestMag {
			bestMag, best = a, p
		}
	}
	if math.IsInf(bestMag, 1) {
		return 0
	}
	return best
}

// Stable reports whether all poles lie in the open left half plane.
func (tf *TF) Stable() bool {
	for _, p := range tf.Poles {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}

// ErrUnstable marks a reduced-order model with right-half-plane poles.
// The Padé fit prefers stable orders, so an unstable winner means no
// stable order reproduced the moments; measurements taken from such a
// model (unity-gain frequency, phase margin) are meaningless, and
// callers surface the evaluation as a counted failure instead of
// feeding bogus spec values to the cost function.
var ErrUnstable = errors.New("awe: reduced model has right-half-plane poles")
