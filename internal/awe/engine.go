package awe

import (
	"fmt"

	"astrx/internal/linalg"
)

// Engine runs the AWE moment recursion against an externally assembled
// (G, C) matrix pair whose storage the caller owns and reuses between
// evaluations. It is the allocation-free core behind Analyzer: the
// synthesis hot path re-stamps G and C in place, calls Refactor, and
// reads moments off precomputed excitation vectors and output indices,
// with no per-evaluation allocation after warm-up.
type Engine struct {
	G, C *linalg.Matrix

	lu       linalg.LU
	cur, nxt []float64 // moment recursion scratch
	cnz      []cEntry  // nonzero entries of C, row-major
}

// cEntry is one nonzero of the C matrix. Circuit C matrices are sparse
// (a handful of capacitances against n² entries), so the moment
// recursion applies C through this list instead of a dense
// matrix-vector product.
type cEntry struct {
	i, j int
	v    float64
}

// Refactor recomputes the LU factorization of G, reusing the engine's
// factor storage. It must be called after every re-stamp of G and
// before MomentsInto.
func (e *Engine) Refactor() error {
	if err := e.lu.Factor(e.G); err != nil {
		return fmt.Errorf("%w: %v", ErrNoDCPath, err)
	}
	n := e.G.Rows
	if cap(e.cur) < n {
		e.cur = make([]float64, n)
		e.nxt = make([]float64, n)
	}
	e.cur = e.cur[:n]
	e.nxt = e.nxt[:n]

	// Collect C's sparsity for the recursion. The row-major scan order
	// keeps the per-row accumulation order of a dense product.
	e.cnz = e.cnz[:0]
	for i := 0; i < n; i++ {
		row := e.C.Data[i*e.C.Cols : i*e.C.Cols+n]
		for j, v := range row {
			if v != 0 {
				e.cnz = append(e.cnz, cEntry{i: i, j: j, v: v})
			}
		}
	}
	return nil
}

// MomentsInto fills mu with the first len(mu) output moments for the
// excitation vector b and the differential output v[ip] - v[in]; in < 0
// selects a single-ended measurement. b must have length G.Rows and is
// not modified.
func (e *Engine) MomentsInto(mu, b []float64, ip, in int) {
	n := len(mu)
	copy(e.cur, b)
	e.lu.SolveInPlace(e.cur) // m_0
	for k := 0; k < n; k++ {
		mu[k] = e.cur[ip]
		if in >= 0 {
			mu[k] -= e.cur[in]
		}
		if k == n-1 {
			break
		}
		// m_{k+1} = -G⁻¹ C m_k (allocation-free: the recursion runs
		// hundreds of thousands of times per synthesis). C is applied
		// through its nonzero list — identical accumulation order to the
		// dense product, minus the zero terms.
		for i := range e.nxt {
			e.nxt[i] = 0
		}
		for _, t := range e.cnz {
			e.nxt[t.i] += t.v * e.cur[t.j]
		}
		for i := range e.nxt {
			e.nxt[i] = -e.nxt[i]
		}
		e.lu.SolveInPlace(e.nxt)
		e.cur, e.nxt = e.nxt, e.cur
	}
}
