package awe

import (
	"fmt"

	"astrx/internal/linalg"
	"astrx/internal/telemetry"
)

// Engine runs the AWE moment recursion against an externally assembled
// (G, C) matrix pair whose storage the caller owns and reuses between
// evaluations. It is the allocation-free core behind Analyzer: the
// synthesis hot path re-stamps G and C in place, calls Refactor, and
// reads moments off precomputed excitation vectors and output indices,
// with no per-evaluation allocation after warm-up.
type Engine struct {
	G, C *linalg.Matrix

	// Clock, when non-nil, splits each MomentsInto call into solve time
	// (triangular substitutions) and moment time (RHS assembly) for the
	// sampled per-stage timers. A nil clock costs a single branch.
	Clock *telemetry.Clock

	lu       linalg.AutoLU
	cur, nxt []float64 // moment recursion scratch
	cnz      []cEntry  // nonzero entries of C, row-major
}

// cEntry is one nonzero of the C matrix. Circuit C matrices are sparse
// (a handful of capacitances against n² entries), so the moment
// recursion applies C through this list instead of a dense
// matrix-vector product.
type cEntry struct {
	i, j int
	v    float64
}

// Prime seeds the engine's factorization with a precomputed symbolic
// analysis of G's sparsity pattern, so the first Factor of a matching
// matrix skips straight to the sparse numeric replay. The eval-plan
// compiler calls this once per jig at compile time.
func (e *Engine) Prime(sym *linalg.Symbolic) { e.lu.Prime(sym) }

// FactorStats reports the shape of the most recent factorization
// (rows, pattern nonzeros, fill-in, and whether the sparse path ran).
func (e *Engine) FactorStats() linalg.FactorStats { return e.lu.Stats() }

// FactorCounts reports how many factorizations took the sparse path
// versus fell back to dense since the engine was created.
func (e *Engine) FactorCounts() (sparse, dense uint64) { return e.lu.Counts() }

// Refactor recomputes the LU factorization of G, reusing the engine's
// factor storage. It must be called after every re-stamp of G and
// before MomentsInto.
func (e *Engine) Refactor() error {
	if err := e.lu.Factor(e.G); err != nil {
		return fmt.Errorf("%w: %v", ErrNoDCPath, err)
	}
	e.refreshAux()
	return nil
}

// refreshAux re-sizes the recursion scratch and rescans C's sparsity
// after a re-stamp (the non-factorization half of Refactor; the batch
// engine calls it for lanes whose factorization ran in the SoA batch).
func (e *Engine) refreshAux() {
	n := e.G.Rows
	if cap(e.cur) < n {
		e.cur = make([]float64, n)
		e.nxt = make([]float64, n)
	}
	e.cur = e.cur[:n]
	e.nxt = e.nxt[:n]

	// Collect C's sparsity for the recursion. The row-major scan order
	// keeps the per-row accumulation order of a dense product.
	e.cnz = e.cnz[:0]
	for i := 0; i < n; i++ {
		row := e.C.Data[i*e.C.Cols : i*e.C.Cols+n]
		for j, v := range row {
			if v != 0 {
				e.cnz = append(e.cnz, cEntry{i: i, j: j, v: v})
			}
		}
	}
}

// MomentsInto fills mu with the first len(mu) output moments for the
// excitation vector b and the differential output v[ip] - v[in]; in < 0
// selects a single-ended measurement. b must have length G.Rows and is
// not modified.
func (e *Engine) MomentsInto(mu, b []float64, ip, in int) {
	n := len(mu)
	copy(e.cur, b)
	e.Clock.Mark(telemetry.StageMoments)
	e.lu.SolveInPlace(e.cur) // m_0
	e.Clock.Mark(telemetry.StageSolve)
	for k := 0; k < n; k++ {
		mu[k] = e.cur[ip]
		if in >= 0 {
			mu[k] -= e.cur[in]
		}
		if k == n-1 {
			break
		}
		// m_{k+1} = -G⁻¹ C m_k (allocation-free: the recursion runs
		// hundreds of thousands of times per synthesis). C is applied
		// through its nonzero list — identical accumulation order to the
		// dense product, minus the zero terms.
		for i := range e.nxt {
			e.nxt[i] = 0
		}
		for _, t := range e.cnz {
			e.nxt[t.i] += t.v * e.cur[t.j]
		}
		for i := range e.nxt {
			e.nxt[i] = -e.nxt[i]
		}
		e.Clock.Mark(telemetry.StageMoments)
		e.lu.SolveInPlace(e.nxt)
		e.Clock.Mark(telemetry.StageSolve)
		e.cur, e.nxt = e.nxt, e.cur
	}
}
