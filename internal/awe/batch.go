package awe

import (
	"fmt"

	"astrx/internal/linalg"
)

// BatchEngine runs the factorization and moment recursion of K lane
// engines at once against one shared symbolic skeleton. The skeleton is
// chosen adaptively: every RefactorAll scans each live lane's
// re-stamped G and batches the lanes whose nonzero pattern matches the
// first live lane's, fetching that pattern's symbolic analysis from a
// cache seeded with the compile-time structural prediction. Matched
// lanes factor together in one SoA numeric replay (linalg.SparseBatchLU)
// and their moment recursions advance in lockstep, one batched
// triangular solve per moment instead of K scalar ones. Lanes whose
// pattern differs from the reference lane's — a cutoff device dropping
// a stamp, a swapped MOS — or whose batched factorization trips a pivot
// guard fall back to their own scalar engine. Either way each lane's
// arithmetic is the exact scalar operation sequence (the symbolic is a
// pure function of the scanned pattern, identical to what the lane's
// own AutoLU would compute), so batched results are bit-identical to
// evaluating the lanes one at a time.
type BatchEngine struct {
	lanes []*Engine

	cache linalg.SymCache
	sym   *linalg.Symbolic                        // current batch skeleton, nil → all scalar
	blu   *linalg.SparseBatchLU                   // batch factorizer for sym
	blus  map[*linalg.Symbolic]*linalg.SparseBatchLU // one per skeleton seen, so pattern drift doesn't churn allocations

	mats    []*linalg.Matrix
	inBatch []bool
	errs    []error
	scans   []linalg.Pattern // per-lane runtime scan, storage reused

	cur, nxt []float64 // SoA moment scratch, lane k of row i at [i*K+k]
}

// NewBatchEngine builds a batch engine over the lane engines. sym is
// the compile-time structural prediction and may be nil; it seeds the
// symbolic cache so a first batch whose runtime pattern matches the
// prediction skips the symbolic analysis entirely. The engine adapts to
// whatever pattern the lanes actually stamp either way.
func NewBatchEngine(sym *linalg.Symbolic, lanes []*Engine) *BatchEngine {
	k := len(lanes)
	be := &BatchEngine{
		lanes:   lanes,
		blus:    make(map[*linalg.Symbolic]*linalg.SparseBatchLU),
		mats:    make([]*linalg.Matrix, k),
		inBatch: make([]bool, k),
		errs:    make([]error, k),
		scans:   make([]linalg.Pattern, k),
	}
	if sym != nil {
		be.cache.Prime(sym)
		be.setSkeleton(sym)
	}
	return be
}

// setSkeleton switches the batch factorizer to sym, reusing a
// previously built SparseBatchLU when the skeleton was seen before.
func (be *BatchEngine) setSkeleton(sym *linalg.Symbolic) {
	be.sym = sym
	if blu, ok := be.blus[sym]; ok {
		be.blu = blu
	} else {
		be.blu = linalg.NewSparseBatchLU(sym, len(be.lanes))
		be.blus[sym] = be.blu
	}
	nk := sym.Pattern().N * len(be.lanes)
	if cap(be.cur) < nk {
		be.cur = make([]float64, nk)
		be.nxt = make([]float64, nk)
	}
	be.cur = be.cur[:nk]
	be.nxt = be.nxt[:nk]
}

// Errs returns the per-lane error slice of the last RefactorAll. It is
// overwritten by the next call.
func (be *BatchEngine) Errs() []error { return be.errs }

// InBatch reports whether lane i was factored in the SoA batch (false
// for scalar-fallback and skipped lanes).
func (be *BatchEngine) InBatch(i int) bool { return be.inBatch[i] }

// RefactorAll refactors every live lane's G matrix after a re-stamp.
// live may be nil (all lanes live); dead lanes are skipped entirely.
// Per-lane failures land in Errs — a batched lane cannot fail, because
// a tripped guard demotes it to the scalar path, where the dense
// fallback decides.
func (be *BatchEngine) RefactorAll(live []bool) {
	// Scan every live lane and pick the first live lane's pattern as the
	// batch reference. Candidate populations are homogeneous in the
	// common case (one deck, K perturbations), so the reference pattern
	// is almost always every lane's pattern.
	ref := -1
	for i, e := range be.lanes {
		be.errs[i] = nil
		be.mats[i] = nil
		be.inBatch[i] = false
		if live != nil && !live[i] {
			continue
		}
		be.scans[i].Scan(e.G)
		if ref < 0 {
			ref = i
		}
	}
	if ref >= 0 {
		refPat := &be.scans[ref]
		if be.sym == nil || !refPat.Equal(be.sym.Pattern()) {
			if sym, ok := be.cache.Lookup(refPat); ok {
				be.setSkeleton(sym)
			} else {
				// Structurally singular reference pattern: every lane takes
				// its scalar path (where the dense fallback decides).
				be.sym, be.blu = nil, nil
			}
		}
	}
	batchAny := false
	if be.blu != nil {
		for i := range be.lanes {
			if live != nil && !live[i] {
				continue
			}
			if be.scans[i].Equal(be.sym.Pattern()) {
				be.mats[i] = be.lanes[i].G
				batchAny = true
			}
		}
	}
	if batchAny {
		be.blu.FactorAll(be.mats)
	}
	for i, e := range be.lanes {
		if live != nil && !live[i] {
			continue
		}
		if be.mats[i] != nil && be.blu.Lane(i) {
			be.inBatch[i] = true
			e.refreshAux()
			continue
		}
		// Scalar path: pattern mismatch, guard trip, or singular
		// skeleton. The lane's own AutoLU re-scans and takes its sparse
		// or dense route, exactly as an unbatched evaluation would.
		be.errs[i] = e.Refactor()
	}
}

// MomentsAll fills mus[i] with lane i's output moments for the shared
// excitation vector b and output unknowns ip/in (see Engine.MomentsInto).
// Batched lanes advance in lockstep through SoA solves; scalar lanes
// run their own engine. Dead lanes (live[i] false, or nil mus[i]) are
// skipped. All batched mus must have equal length.
func (be *BatchEngine) MomentsAll(live []bool, mus [][]float64, b []float64, ip, in int) {
	k := len(be.lanes)
	nm := 0
	for i, e := range be.lanes {
		if (live != nil && !live[i]) || mus[i] == nil {
			continue
		}
		if !be.inBatch[i] {
			e.MomentsInto(mus[i], b, ip, in)
			continue
		}
		if len(mus[i]) > nm {
			nm = len(mus[i])
		}
	}
	if nm == 0 {
		return
	}
	n := len(b)
	cur, nxt := be.cur[:n*k], be.nxt[:n*k]
	for i := 0; i < n; i++ {
		base := i * k
		for lane := 0; lane < k; lane++ {
			cur[base+lane] = b[i]
		}
	}
	be.blu.SolveAll(cur) // m_0 in every batched lane
	for m := 0; m < nm; m++ {
		for i := range be.lanes {
			if !be.inBatch[i] {
				continue
			}
			mu := cur[ip*k+i]
			if in >= 0 {
				mu -= cur[in*k+i]
			}
			mus[i][m] = mu
		}
		if m == nm-1 {
			break
		}
		// m_{j+1} = -G⁻¹ C m_j per lane: zero, apply each lane's C
		// nonzeros in its scalar scan order, negate, batched solve.
		for i := range nxt {
			nxt[i] = 0
		}
		for i, e := range be.lanes {
			if !be.inBatch[i] {
				continue
			}
			for _, t := range e.cnz {
				nxt[t.i*k+i] += t.v * cur[t.j*k+i]
			}
		}
		for i := range nxt {
			nxt[i] = -nxt[i]
		}
		be.blu.SolveAll(nxt)
		cur, nxt = nxt, cur
	}
	be.cur, be.nxt = cur, nxt
}

// Size validates that every lane matrix matches the skeleton dimension;
// it exists for construction-time sanity checks in callers.
func (be *BatchEngine) Size() (int, error) {
	if be.sym == nil {
		return 0, nil
	}
	n := be.sym.Pattern().N
	for i, e := range be.lanes {
		if e.G != nil && e.G.Rows != n {
			return 0, fmt.Errorf("awe: batch lane %d has %d rows, skeleton has %d", i, e.G.Rows, n)
		}
	}
	return n, nil
}
