package awe

import (
	"math"
	"math/cmplx"

	"astrx/internal/linalg"
)

// FitWorkspace holds every scratch buffer the scaled Padé fit needs, so
// a steady-state fit performs no heap allocation. The zero value is
// ready to use; one workspace serves one goroutine.
type FitWorkspace struct {
	scaled []float64

	// tryFit scratch
	h      linalg.Matrix
	hlu    linalg.LU
	rhs    []float64
	acoef  []float64
	poly   []complex128
	rf     linalg.RootFinder
	v      linalg.CMatrix
	vlu    linalg.CLU
	mvec   []complex128
	cvec   []complex128
	lamPow []complex128

	// order-search candidates (value copies, not aliases, because the
	// try buffer is overwritten by the next order attempted)
	try, keepBest, keepVal TF

	// deriveZeros scratch
	num, term, tnext []complex128
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growC(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

func reuseMat(m *linalg.Matrix, r, c int) {
	if cap(m.Data) < r*c {
		m.Data = make([]float64, r*c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
}

func reuseCMat(m *linalg.CMatrix, r, c int) {
	if cap(m.Data) < r*c {
		m.Data = make([]complex128, r*c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
}

// copyInto overwrites dst's pole/residue/order fields with src's values,
// reusing dst's backing arrays.
func copyInto(dst, src *TF) {
	dst.Poles = append(dst.Poles[:0], src.Poles...)
	dst.Residues = append(dst.Residues[:0], src.Residues...)
	dst.Order = src.Order
}

// FitMomentsInto is FitMoments with caller-owned result and workspace
// storage: dst is fully overwritten (its slices are reused), and no
// allocation happens once the workspace has warmed up. The arithmetic is
// identical to the original allocating implementation, so results are
// bit-exact with FitMoments.
func (ws *FitWorkspace) FitMomentsInto(dst *TF, mu []float64, q int) {
	if 2*q > len(mu) {
		q = len(mu) / 2
	}
	mu0 := mu[0]
	// A (near) zero DC value with zero higher moments is a dead output.
	allZero := true
	for _, m := range mu {
		if m != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		ws.setConstant(dst, mu)
		return
	}

	// Frequency scaling: μ'_k = μ_k / (μ_ref · β^k) keeps the Hankel
	// system well conditioned. β estimates the dominant time constant.
	beta := 1.0
	if mu0 != 0 && mu[1] != 0 {
		beta = math.Abs(mu[1] / mu0)
	} else {
		// Fall back to the first nonzero ratio.
		for k := 0; k+1 < len(mu); k++ {
			if mu[k] != 0 && mu[k+1] != 0 {
				beta = math.Abs(mu[k+1] / mu[k])
				break
			}
		}
	}
	if beta == 0 || math.IsInf(beta, 0) || math.IsNaN(beta) {
		beta = 1
	}
	ref := mu0
	if ref == 0 {
		ref = 1
	}
	ws.scaled = growF(ws.scaled, len(mu))
	scaled := ws.scaled
	bk := 1.0
	for k := range mu {
		scaled[k] = mu[k] / (ref * bk)
		bk *= beta
	}

	// Search orders from high to low and stop at the first *stable*
	// validated fit — equivalent to picking the highest validated stable
	// order, but the common case costs one or two fits instead of q. An
	// unstable validated fit wins only when no stable order reproduced
	// the moments (a genuinely unstable circuit): spurious RHP poles at
	// the edge of moment resolution are rejected in favor of the stable
	// fit one order down.
	var best, validated *TF
	bestScore := math.Inf(1)
	for order := q; order >= 1; order-- {
		errMax, ok := ws.tryFit(scaled, order)
		if !ok {
			continue
		}
		tf := &ws.try
		tf.Order = order
		score := errMax
		if !tf.Stable() {
			score *= 1e6 // strongly prefer stable fits in the fallback
		}
		if score < bestScore {
			bestScore = score
			copyInto(&ws.keepBest, tf)
			best = &ws.keepBest
		}
		if errMax < 1e-9 {
			if tf.Stable() {
				copyInto(&ws.keepVal, tf)
				validated = &ws.keepVal
				break
			}
			if validated == nil {
				copyInto(&ws.keepVal, tf) // keep looking for a stable one below
				validated = &ws.keepVal
			}
		}
	}
	if validated != nil {
		best = validated
	}
	if best == nil {
		// Purely resistive response (or numerically dead): constant TF.
		ws.setConstant(dst, mu)
		return
	}
	copyInto(dst, best)
	// Unscale: μ'_k = Σ(c_i/ref)(λ_i/β)^k, so λ = β·λ' and hence
	// p = 1/λ = p'/β; residues k = -c·p = (ref/β)·k'.
	for i := range dst.Poles {
		dst.Poles[i] /= complex(beta, 0)
		dst.Residues[i] *= complex(ref/beta, 0)
	}
	dst.Moments = append(dst.Moments[:0], mu...)
	ws.deriveZerosInto(dst)
}

// setConstant fills dst with the order-0 (constant) model.
func (ws *FitWorkspace) setConstant(dst *TF, mu []float64) {
	dst.Poles = dst.Poles[:0]
	dst.Residues = dst.Residues[:0]
	dst.Zeros = dst.Zeros[:0]
	dst.Moments = append(dst.Moments[:0], mu...)
	dst.Order = 0
}

// tryFit attempts a Padé fit of the given order on scaled moments, using
// the first 2q for the fit and every available moment for validation. On
// success the candidate is left in ws.try and the worst relative
// moment-reproduction error is returned.
func (ws *FitWorkspace) tryFit(mu []float64, q int) (float64, bool) {
	// Solve the Hankel system Σ_j a_j μ_{k+j} = -μ_{k+q}, k = 0..q-1.
	reuseMat(&ws.h, q, q)
	ws.rhs = growF(ws.rhs, q)
	for k := 0; k < q; k++ {
		for j := 0; j < q; j++ {
			ws.h.Set(k, j, mu[k+j])
		}
		ws.rhs[k] = -mu[k+q]
	}
	if err := ws.hlu.Factor(&ws.h); err != nil {
		return 0, false
	}
	ws.acoef = growF(ws.acoef, q)
	ws.hlu.SolveInto(ws.acoef, ws.rhs)
	// Characteristic polynomial λ^q + a_{q-1} λ^{q-1} + … + a_0 = 0.
	ws.poly = growC(ws.poly, q+1)
	for j := 0; j < q; j++ {
		ws.poly[j] = complex(ws.acoef[j], 0)
	}
	ws.poly[q] = 1
	lambda, err := ws.rf.Roots(ws.poly)
	if err != nil {
		return 0, false
	}
	maxL := 0.0
	for _, l := range lambda {
		if l == 0 || cmplx.IsNaN(l) || cmplx.IsInf(l) {
			return 0, false
		}
		if a := cmplx.Abs(l); a > maxL {
			maxL = a
		}
	}
	// Rank-deficiency signatures: (a) duplicated characteristic roots —
	// a true root split in two plus arbitrary extras; (b) roots many
	// decades below the dominant one, i.e. "poles" far beyond what 2q
	// double-precision moments can resolve.
	for i := range lambda {
		if cmplx.Abs(lambda[i]) < 1e-9*maxL {
			return 0, false
		}
		for j := i + 1; j < len(lambda); j++ {
			if cmplx.Abs(lambda[i]-lambda[j]) < 1e-6*maxL {
				return 0, false
			}
		}
	}
	// Residue recovery: μ_k = Σ c_i λ_i^k for k = 0..q-1 (Vandermonde).
	reuseCMat(&ws.v, q, q)
	for i := 0; i < q; i++ {
		p := complex128(1)
		for k := 0; k < q; k++ {
			ws.v.Set(k, i, p)
			p *= lambda[i]
		}
	}
	if err := ws.vlu.Factor(&ws.v); err != nil {
		return 0, false
	}
	ws.mvec = growC(ws.mvec, q)
	for k := 0; k < q; k++ {
		ws.mvec[k] = complex(mu[k], 0)
	}
	ws.cvec = growC(ws.cvec, q)
	ws.vlu.SolveInto(ws.cvec, ws.mvec)
	c := ws.cvec

	// Rank-deficiency guard: when the circuit has fewer than q observable
	// poles the Hankel system is (numerically) rank deficient and the
	// solver returns a recurrence whose extra characteristic roots are
	// arbitrary. Those spurious poles carry essentially zero residue, so
	// their presence is detected here and the order is reduced.
	maxC := 0.0
	for _, ci := range c {
		if a := cmplx.Abs(ci); a > maxC {
			maxC = a
		}
	}
	if maxC == 0 {
		return 0, false
	}
	for _, ci := range c {
		if cmplx.Abs(ci) < 1e-8*maxC {
			return 0, false
		}
	}
	// Massive residue cancellation (Σc must equal μ'_0, which is O(1)
	// after scaling) marks an ill-conditioned split of a true pole.
	if maxC > 1e6*(math.Abs(mu[0])+1e-12) {
		return 0, false
	}

	// Validate: the model must reproduce every available moment, not just
	// the 2q used for the fit. The worst relative error is the fit score.
	// (λ^k is carried multiplicatively — cmplx.Pow in this loop was a
	// measurable fraction of the whole synthesis runtime.)
	errMax := 0.0
	ws.lamPow = growC(ws.lamPow, q)
	lamPow := ws.lamPow
	for i := range lamPow {
		lamPow[i] = cmplx.Pow(lambda[i], complex(float64(q), 0))
	}
	for k := q; k < len(mu); k++ {
		pred := complex128(0)
		for i := 0; i < q; i++ {
			pred += c[i] * lamPow[i]
			lamPow[i] *= lambda[i]
		}
		scale := math.Abs(mu[0]) + math.Abs(mu[k]) + 1e-12
		if e := math.Abs(real(pred)-mu[k]) / scale; e > errMax {
			errMax = e
		}
	}

	ws.try.Poles = ws.try.Poles[:0]
	ws.try.Residues = ws.try.Residues[:0]
	for i := 0; i < q; i++ {
		// λ_i = 1/p_i, residue k_i = -c_i·p_i.
		p := 1 / lambda[i]
		ws.try.Poles = append(ws.try.Poles, p)
		ws.try.Residues = append(ws.try.Residues, -c[i]*p)
	}
	return errMax, true
}

// deriveZeros recomputes tf.Zeros from its poles and residues with
// throwaway scratch (tests use it directly; hot paths go through
// FitWorkspace.deriveZerosInto).
func (tf *TF) deriveZeros() {
	var ws FitWorkspace
	ws.deriveZerosInto(tf)
}

// deriveZerosInto expands the numerator polynomial
// N(s) = Σ k_i·Π_{j≠i}(s-p_j) in a frequency-normalized variable and
// roots it, writing tf.Zeros in place.
func (ws *FitWorkspace) deriveZerosInto(tf *TF) {
	q := len(tf.Poles)
	if q <= 1 {
		tf.Zeros = tf.Zeros[:0]
		return
	}
	// Normalize by the geometric mean pole magnitude for conditioning.
	w0 := 1.0
	prod := 1.0
	for _, p := range tf.Poles {
		prod *= cmplx.Abs(p)
	}
	if prod > 0 {
		w0 = math.Pow(prod, 1/float64(q))
	}
	// N(σ) with s = w0·σ: Σ (k_i/w0^{q-1}) Π_{j≠i}(σ - p_j/w0)
	ws.num = growC(ws.num, q) // degree q-1
	num := ws.num
	for t := range num {
		num[t] = 0
	}
	for i := 0; i < q; i++ {
		ws.term = append(ws.term[:0], tf.Residues[i])
		term := ws.term
		for j := 0; j < q; j++ {
			if j == i {
				continue
			}
			pj := tf.Poles[j] / complex(w0, 0)
			ws.tnext = growC(ws.tnext, len(term)+1)
			next := ws.tnext
			for t := range next {
				next[t] = 0
			}
			for t, co := range term {
				next[t+1] += co
				next[t] -= co * pj
			}
			ws.term, ws.tnext = next, term
			term = ws.term
		}
		for t := range term {
			num[t] += term[t]
		}
	}
	// Degenerate numerators (all ~0 relative to residues) → no zeros.
	mag := 0.0
	for _, co := range num {
		if a := cmplx.Abs(co); a > mag {
			mag = a
		}
	}
	if mag == 0 {
		tf.Zeros = tf.Zeros[:0]
		return
	}
	roots, err := ws.rf.Roots(num)
	if err != nil {
		tf.Zeros = tf.Zeros[:0]
		return
	}
	// Keep only zeros within a few decades of the pole cluster: roots
	// far outside are artifacts of a numerically tiny leading numerator
	// coefficient and carry no signal.
	maxPole := 0.0
	for _, p := range tf.Poles {
		if a := cmplx.Abs(p); a > maxPole {
			maxPole = a
		}
	}
	tf.Zeros = tf.Zeros[:0]
	for _, r := range roots {
		r *= complex(w0, 0)
		if cmplx.Abs(r) <= 1e4*maxPole {
			tf.Zeros = append(tf.Zeros, r)
		}
	}
}
