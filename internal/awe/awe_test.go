package awe

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"astrx/internal/acsim"
	"astrx/internal/ckttest"
	"astrx/internal/expr"
	"astrx/internal/mna"
)

func mustTF(t *testing.T, a *Analyzer, src, op, on string, q int) *TF {
	t.Helper()
	tf, err := a.TransferFunction(src, op, on, q)
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestSingleRCPole(t *testing.T) {
	// R=1k, C=1n → pole at -1e6 rad/s, DC gain 1.
	nl := ckttest.RCLadder(1, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "n1", "", 4)
	if tf.Order != 1 {
		t.Fatalf("Order = %d, want 1 (exact single pole)", tf.Order)
	}
	if math.Abs(tf.DCGain()-1) > 1e-9 {
		t.Errorf("DCGain = %v, want 1", tf.DCGain())
	}
	p := tf.Poles[0]
	if cmplx.Abs(p-complex(-1e6, 0)) > 1e-3*1e6 {
		t.Errorf("pole = %v, want -1e6", p)
	}
	if bw := tf.BW3dB(); math.Abs(bw-1e6)/1e6 > 1e-3 {
		t.Errorf("BW3dB = %v, want ~1e6", bw)
	}
	if !tf.Stable() {
		t.Error("single RC pole should be stable")
	}
	// Phase at the pole frequency is -45°.
	if ph := tf.PhaseDegAt(1e6); math.Abs(ph+45) > 0.1 {
		t.Errorf("phase at pole = %v, want -45", ph)
	}
}

func TestMomentsRC(t *testing.T) {
	// Analytic: H = 1/(1+sRC) = Σ (-RC)^k s^k, so μ_k = (-RC)^k.
	nl := ckttest.RCLadder(1, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := a.Moments("vin", "n1", "", 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := 1e-6
	for k, m := range mu {
		want := math.Pow(-rc, float64(k))
		if math.Abs(m-want) > 1e-9*math.Abs(want) {
			t.Errorf("μ_%d = %g, want %g", k, m, want)
		}
	}
}

func TestVCCSAmpUGFAndPM(t *testing.T) {
	// Single-pole transconductance amp (non-inverting measurement):
	// gm = 1mS into R = 100k ∥ C = 1pF. A0 = 100, pole = 1/(RC) = 1e7,
	// GBW = gm/C = 1e9 rad/s, PM ≈ 90°.
	g1 := ckttest.E("g1", []string{"0", "out", "in", "0"}, "1m") // current into out
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		g1,
		ckttest.E("r1", []string{"out", "0"}, "100k"),
		ckttest.E("c1", []string{"out", "0"}, "1p"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "out", "", 4)
	if math.Abs(tf.DCGain()-100) > 1e-6 {
		t.Fatalf("DCGain = %v, want 100", tf.DCGain())
	}
	wu := tf.UGF()
	want := 1e7 * math.Sqrt(100*100-1) // exact single-pole crossover
	if math.Abs(wu-want)/want > 1e-3 {
		t.Errorf("UGF = %g, want %g", wu, want)
	}
	pm := tf.PhaseMarginDeg()
	wantPM := 180 - math.Atan2(wu, 1e7)*180/math.Pi
	if math.Abs(pm-wantPM) > 0.5 {
		t.Errorf("PM = %v, want %v", pm, wantPM)
	}
}

func TestLadderMatchesACSweep(t *testing.T) {
	// 6-stage RC ladder: AWE q=6 must match exact AC within 1% up to
	// well past the first pole cluster.
	nl := ckttest.RCLadder(6, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "n6", "", 6)
	ac := acsim.NewAnalyzer(sys)
	for _, w := range []float64{1e3, 1e4, 1e5, 3e5, 1e6} {
		exact, err := ac.TransferAt("vin", "n6", "", w)
		if err != nil {
			t.Fatal(err)
		}
		approx := tf.Eval(complex(0, w))
		rel := cmplx.Abs(approx-exact) / (cmplx.Abs(exact) + 1e-30)
		if rel > 0.01 {
			t.Errorf("ω=%g: AWE %v vs AC %v (rel err %g)", w, approx, exact, rel)
		}
	}
}

func TestOrderReduction(t *testing.T) {
	// A 2-node circuit has at most 2 poles; asking for 4 must back off.
	nl := ckttest.RCLadder(2, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "n2", "", 4)
	if tf.Order > 2 {
		t.Errorf("Order = %d, want ≤ 2", tf.Order)
	}
	if tf.Order < 2 {
		t.Errorf("Order = %d, want 2 (two real poles present)", tf.Order)
	}
}

func TestResistiveCircuitConstantTF(t *testing.T) {
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		ckttest.E("r1", []string{"in", "out"}, "1k"),
		ckttest.E("r2", []string{"out", "0"}, "1k"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "out", "", 4)
	if tf.Order != 0 {
		t.Fatalf("Order = %d, want 0 for resistive circuit", tf.Order)
	}
	if math.Abs(tf.DCGain()-0.5) > 1e-12 {
		t.Errorf("DCGain = %v, want 0.5", tf.DCGain())
	}
	if tf.UGF() != 0 || tf.BW3dB() != 0 {
		t.Error("constant TF has no UGF or bandwidth")
	}
	if got := tf.Eval(complex(0, 1e9)); math.Abs(real(got)-0.5) > 1e-12 {
		t.Errorf("Eval = %v, want 0.5 at all frequencies", got)
	}
}

func TestDifferentialOutput(t *testing.T) {
	// Two identical dividers driven oppositely: differential gain doubles.
	e1 := ckttest.E("e1", []string{"mid", "0", "in", "0"}, "-1")
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		e1, // mid = -in
		ckttest.E("r1", []string{"in", "op"}, "1k"),
		ckttest.E("r2", []string{"op", "0"}, "1k"),
		ckttest.E("r3", []string{"mid", "on"}, "1k"),
		ckttest.E("r4", []string{"on", "0"}, "1k"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "op", "on", 2)
	if math.Abs(tf.DCGain()-1.0) > 1e-9 {
		t.Errorf("differential DCGain = %v, want 1.0", tf.DCGain())
	}
}

func TestFitMomentsSyntheticPoles(t *testing.T) {
	// Build moments from known poles/residues, fit, and compare. The
	// pole spread (~1.5 decades) reflects what double-precision moment
	// matching can resolve — AWE's documented practical limit.
	poles := []complex128{-1e6, -3e6, complex(-2e7, 1.5e7), complex(-2e7, -1.5e7)}
	res := []complex128{-1e9, 5e8, complex(2e8, 1e8), complex(2e8, -1e8)}
	q := len(poles)
	mu := make([]float64, 2*q)
	for k := range mu {
		s := complex128(0)
		for i := range poles {
			s += -res[i] / cmplx.Pow(poles[i], complex(float64(k+1), 0))
		}
		mu[k] = real(s)
	}
	tf, err := FitMoments(mu, q)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Order != q {
		t.Fatalf("Order = %d, want %d", tf.Order, q)
	}
	// Every true pole must be recovered (match within 0.1%).
	for _, p := range poles {
		found := false
		for _, g := range tf.Poles {
			if cmplx.Abs(g-p)/cmplx.Abs(p) < 1e-3 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pole %v not recovered; got %v", p, tf.Poles)
		}
	}
}

func TestFitMomentsZeroSequence(t *testing.T) {
	tf, err := FitMoments(make([]float64, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Order != 0 || tf.DCGain() != 0 {
		t.Errorf("zero moments: Order=%d DCGain=%v", tf.Order, tf.DCGain())
	}
}

func TestDeriveZerosTwoPole(t *testing.T) {
	// H = k1/(s-p1) + k2/(s-p2) has one zero at (k1 p2 + k2 p1)/(k1+k2).
	tf := &TF{
		Poles:    []complex128{-1e5, -1e7},
		Residues: []complex128{-1e6, -2e7},
		Order:    2,
	}
	tf.deriveZeros()
	if len(tf.Zeros) != 1 {
		t.Fatalf("zeros = %v, want 1 zero", tf.Zeros)
	}
	want := (complex128(-1e6)*complex128(-1e7) + complex128(-2e7)*complex128(-1e5)) /
		(complex128(-1e6) + complex128(-2e7))
	if cmplx.Abs(tf.Zeros[0]-want)/cmplx.Abs(want) > 1e-9 {
		t.Errorf("zero = %v, want %v", tf.Zeros[0], want)
	}
}

func TestUGFBelowUnityGain(t *testing.T) {
	nl := ckttest.RCLadder(1, 1e3, 1e-9) // DC gain 1 exactly: no crossing
	sys, _ := mna.Build(nl, expr.MapEnv{})
	a, err := NewAnalyzer(sys)
	if err != nil {
		t.Fatal(err)
	}
	tf := mustTF(t, a, "vin", "n1", "", 2)
	if tf.UGF() != 0 {
		t.Errorf("UGF = %v, want 0 for unity DC gain", tf.UGF())
	}
	if tf.PhaseMarginDeg() != 0 {
		t.Errorf("PM must be 0 when no UGF exists")
	}
}

func TestDominantPole(t *testing.T) {
	tf := &TF{Poles: []complex128{-1e8, -1e4, -1e6}, Order: 3}
	if got := tf.DominantPole(); got != -1e4 {
		t.Errorf("DominantPole = %v, want -1e4", got)
	}
	empty := &TF{}
	if got := empty.DominantPole(); got != 0 {
		t.Errorf("DominantPole on empty = %v, want 0", got)
	}
}

func TestAnalyzerErrors(t *testing.T) {
	// Floating node (only capacitor to ground) → singular G.
	nl := ckttest.Netlist(
		ckttest.V("vin", "in", "0", "0", 1),
		ckttest.E("c1", []string{"in", "float"}, "1p"),
		ckttest.E("c2", []string{"float", "0"}, "1p"),
	)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalyzer(sys); err == nil {
		t.Error("floating node should produce ErrNoDCPath")
	}

	nl2 := ckttest.RCLadder(1, 1e3, 1e-9)
	sys2, _ := mna.Build(nl2, expr.MapEnv{})
	a, err := NewAnalyzer(sys2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TransferFunction("nope", "n1", "", 2); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := a.TransferFunction("vin", "nope", "", 2); err == nil {
		t.Error("unknown output node must error")
	}
	if _, err := a.TransferFunction("vin", "n1", "nope", 2); err == nil {
		t.Error("unknown negative output node must error")
	}
}

// Property: random stable RC ladders — AWE DC gain equals exact DC gain,
// and the reduced model matches the exact response at the dominant pole
// frequency within 2%.
func TestLadderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(5) + 2
		r := math.Pow(10, 2+3*rng.Float64())   // 100Ω..100kΩ
		c := math.Pow(10, -12+2*rng.Float64()) // 1pF..100pF
		nl := ckttest.RCLadder(n, r, c)
		sys, err := mna.Build(nl, expr.MapEnv{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalyzer(sys)
		if err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("n%d", n)
		tf := mustTF(t, a, "vin", out, "", 6)
		if math.Abs(tf.DCGain()-1) > 1e-6 {
			t.Fatalf("trial %d: ladder DC gain %v ≠ 1", trial, tf.DCGain())
		}
		if !tf.Stable() {
			t.Fatalf("trial %d: RC ladder fitted unstable: %v", trial, tf.Poles)
		}
		ac := acsim.NewAnalyzer(sys)
		w := 1 / (r * c) // in the interesting band
		exact, err := ac.TransferAt("vin", out, "", w)
		if err != nil {
			t.Fatal(err)
		}
		approx := tf.Eval(complex(0, w))
		if rel := cmplx.Abs(approx-exact) / cmplx.Abs(exact); rel > 0.02 {
			t.Errorf("trial %d (n=%d): rel err %g at ω=%g", trial, n, rel, w)
		}
	}
}
