// Package netlist parses ASTRX problem descriptions — the "tens of lines
// of constraints" that replace the thousands of lines of code prior
// equation-based synthesis tools required. The format follows the paper's
// examples and is "designed after the familiar SPICE notation":
//
//   - comment                      ; also "; comment"
//     .lib c2u                       ; pull in a builtin process library
//     .model mynmos nmos level=3 vto=0.8 kp=50u ...
//
//     .module amp (in+ in- out+ out- vdd vss bias)
//     m1 outn in+ tail tail nmos3 w=W1 l=L1
//     r1 a b 10k
//     .ends
//
//     .var W1 min=2u max=500u grid   ; log-grid (discrete) design variable
//     .var Vb min=0.2 max=4.8 cont   ; continuous design variable
//     .const Cl 1p                   ; named constant for expressions
//
//     .jig main
//     xamp in+ in- out+ out- nvdd nvss oa amp
//     vdd nvdd 0 5
//     vin in+ 0 0 ac 1
//     cl1 out+ 0 Cl
//     .pz tf v(out+,out-) vin        ; request a transfer function
//     .ends
//
//     .bias                          ; the large-signal bias circuit
//     xamp in+ in- out+ out- nvdd nvss oa amp
//     ...
//     .ends
//
//     .obj  adm 'db(dc_gain(tf))' good=60 bad=20
//     .spec ugf 'ugf(tf)/6.2832'    good=1Meg bad=10k
//     .region xamp.m1 sat margin=0.1 ; device operating-region constraint
//
// Element lines use SPICE conventions: R/C/L have two nodes and a value;
// V/I have two nodes, a DC value, and an optional "ac <mag>"; E/G have
// four nodes and a gain; F/H have two nodes, a controlling V-source name,
// and a gain; M has d g s b, a model name, and w=/l=/m= parameters; Q has
// c b e, a model, and an optional area=; X has nodes followed by the
// subcircuit name. Values are expressions: numbers with SPICE suffixes,
// design-variable references, or quoted forms like 'W1*2'. Lines
// beginning with "+" continue the previous line.
package netlist

import (
	"fmt"
	"strings"

	"astrx/internal/circuit"
	"astrx/internal/expr"
)

// DesignVar is one user-declared independent variable.
type DesignVar struct {
	Name string
	Min  float64
	Max  float64
	// Continuous marks voltage/current-like variables; geometry-like
	// variables default to a logarithmically spaced discrete grid, as
	// §V-A of the paper argues.
	Continuous bool
	// PointsPerDecade sets the log-grid density (0 → default 50).
	PointsPerDecade int
	// Init is an optional starting value (0 → midpoint of the range).
	Init float64
}

// Spec is one performance specification or objective.
type Spec struct {
	Name string
	// Expr is the parsed measurement expression.
	Expr expr.Node
	// ExprText preserves the source text for reporting.
	ExprText string
	// Good and Bad are the Nye-style normalization anchors. Good > Bad
	// means "bigger is better" (a ≥ constraint / maximize objective).
	Good, Bad float64
	// Objective marks .obj cards: optimized past Good rather than merely
	// constrained to reach it.
	Objective bool
}

// Maximize reports whether larger values of the spec are better.
func (s *Spec) Maximize() bool { return s.Good > s.Bad }

// TFReq is a `.pz` transfer-function request inside a jig.
type TFReq struct {
	Name   string // expression-visible name, e.g. "tf"
	OutPos string // positive output node
	OutNeg string // negative output node ("" for single-ended)
	Src    string // input source element name
}

// Jig is a test-jig circuit (or the bias circuit) at deck top level.
type Jig struct {
	Name     string
	Elements []*circuit.Element
	TFs      []*TFReq
}

// RegionReq is a `.region` device operating-region constraint.
type RegionReq struct {
	Device string // flat device path, e.g. "xamp.m1"
	Region string // "sat", "triode", or "on"
	Margin float64
}

// Deck is a parsed problem description.
type Deck struct {
	Title   string
	Modules map[string]*circuit.Subckt
	Models  map[string]*circuit.Model
	Vars    []*DesignVar
	Consts  map[string]float64
	Specs   []*Spec
	Jigs    []*Jig
	Bias    *Jig
	Regions []*RegionReq
	Corners []*Corner

	// Line accounting for Table-1-style reporting.
	NetlistLines int // module/jig/bias bodies, model and lib cards
	SynthLines   int // .var/.const/.spec/.obj/.pz/.region cards
}

// Var returns the named design variable or nil.
func (d *Deck) Var(name string) *DesignVar {
	for _, v := range d.Vars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Spec returns the named spec or nil.
func (d *Deck) Spec(name string) *Spec {
	for _, s := range d.Specs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Jig returns the named jig or nil.
func (d *Deck) Jig(name string) *Jig {
	for _, j := range d.Jigs {
		if j.Name == name {
			return j
		}
	}
	return nil
}

// Parse parses a deck from source text.
func Parse(src string) (*Deck, error) {
	d := &Deck{
		Modules: make(map[string]*circuit.Subckt),
		Models:  make(map[string]*circuit.Model),
		Consts:  make(map[string]float64),
	}
	p := &parser{deck: d}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return d, nil
}

type parser struct {
	deck *Deck
	line int

	// including tracks active .include files to reject cycles.
	including map[string]bool

	// current open block, if any
	module *circuit.Subckt
	jig    *Jig
	inBias bool
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("netlist: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// logicalLines joins "+" continuations and strips comments, returning
// (text, source line number) pairs.
type logical struct {
	text string
	line int
}

func logicalLines(src string) []logical {
	raw := strings.Split(src, "\n")
	var out []logical
	for i, ln := range raw {
		// Strip comments.
		if idx := strings.IndexAny(ln, ";"); idx >= 0 {
			ln = ln[:idx]
		}
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if strings.HasPrefix(trimmed, "+") && len(out) > 0 {
			out[len(out)-1].text += " " + strings.TrimSpace(trimmed[1:])
			continue
		}
		out = append(out, logical{text: trimmed, line: i + 1})
	}
	return out
}

// fields splits a logical line into tokens, honoring single quotes:
// a 'quoted expression' is one token (without the quotes).
func fields(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t':
			i++
		case s[i] == '\'':
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			toks = append(toks, s[i+1:i+1+j])
			i += j + 2
		case s[i] == '(' || s[i] == ')':
			// Parenthesized port lists: treat as separators.
			i++
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != '\'' && s[j] != '(' && s[j] != ')' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

func (p *parser) run(src string) error {
	for _, ll := range logicalLines(src) {
		p.line = ll.line
		toks, err := fields(ll.text)
		if err != nil {
			return p.errf("%v", err)
		}
		if len(toks) == 0 {
			continue
		}
		head := strings.ToLower(toks[0])
		if strings.HasPrefix(head, ".") {
			if err := p.card(head, toks); err != nil {
				return err
			}
			continue
		}
		// Element line: must be inside a module, jig, or bias block.
		elem, err := p.element(toks)
		if err != nil {
			return err
		}
		switch {
		case p.module != nil:
			p.module.Elements = append(p.module.Elements, elem)
		case p.jig != nil:
			p.jig.Elements = append(p.jig.Elements, elem)
		default:
			return p.errf("element %q outside any .module/.jig/.bias block", toks[0])
		}
		p.deck.NetlistLines++
	}
	if p.module != nil || p.jig != nil {
		return fmt.Errorf("netlist: unterminated block at end of input")
	}
	return nil
}
