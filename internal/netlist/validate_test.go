package netlist

import (
	"strings"
	"testing"
)

// validDeck is a minimal deck that passes both Parse and Validate.
const validDeck = `
.model nm nmos level=1 vto=0.7 kp=50u

.module amp (in out vdd)
m1 out in 0 0 nm w=W1 l=L1
r1 vdd out 10k
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u grid
.const Cl 1p

.jig main
xa in out nvdd amp
vdd nvdd 0 5
vin in 0 0 ac 1
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.bias
xa in out nvdd amp
vdd nvdd 0 5
vin in 0 2.5
.ends

.obj adm 'db(dc_gain(tf))' good=40 bad=10
.spec gbw 'ugf(tf)' good=1Meg bad=10k
.region xa.m1 sat
`

func mustParse(t *testing.T, src string) *Deck {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// preflight runs the full submit-time check: parse, then validate.
func preflight(src string) error {
	d, err := Parse(src)
	if err != nil {
		return err
	}
	return d.Validate()
}

func TestValidateCleanDeck(t *testing.T) {
	if err := mustParse(t, validDeck).Validate(); err != nil {
		t.Errorf("valid deck rejected: %v", err)
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantSub string
	}{
		{
			name:    "duplicate var",
			mutate:  func(s string) string { return s + "\n.var W1 min=1u max=2u grid\n" },
			wantSub: `duplicate variable "W1"`,
		},
		{
			name:    "inverted range",
			mutate:  func(s string) string { return strings.Replace(s, "min=2u max=500u", "min=500u max=2u", 1) },
			wantSub: "min < max",
		},
		{
			name:    "grid var with nonpositive min",
			mutate:  func(s string) string { return strings.Replace(s, ".var L1 min=2u", ".var L1 min=0", 1) },
			wantSub: "needs min > 0",
		},
		{
			name:    "unknown transfer function in spec",
			mutate:  func(s string) string { return strings.Replace(s, "ugf(tf)", "ugf(tff)", 1) },
			wantSub: `unknown transfer function "tff"`,
		},
		{
			name:    "unknown identifier in spec",
			mutate:  func(s string) string { return strings.Replace(s, "'ugf(tf)'", "'ugf(tf)/Nope'", 1) },
			wantSub: `unknown identifier "Nope"`,
		},
		{
			name:    "duplicate spec name",
			mutate:  func(s string) string { return s + "\n.spec gbw 'ugf(tf)' good=2Meg bad=20k\n" },
			wantSub: `duplicate spec "gbw"`,
		},
		{
			name:    "flat good/bad anchors",
			mutate:  func(s string) string { return strings.Replace(s, "good=1Meg bad=10k", "good=5 bad=5", 1) },
			wantSub: "good and bad must differ",
		},
		{
			name:    "pz unknown source",
			mutate:  func(s string) string { return strings.Replace(s, ".pz tf v(out) vin", ".pz tf v(out) vmissing", 1) },
			wantSub: `references source "vmissing"`,
		},
		{
			name:    "region unknown device",
			mutate:  func(s string) string { return strings.Replace(s, ".region xa.m1 sat", ".region xbogus.m1 sat", 1) },
			wantSub: `no element "xbogus"`,
		},
		{
			name: "missing bias",
			mutate: func(s string) string {
				i := strings.Index(s, ".bias")
				j := strings.Index(s[i:], ".ends") + i + len(".ends")
				return s[:i] + s[j:]
			},
			wantSub: "no .bias circuit",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Some of these mistakes are already rejected by the parser;
			// the contract is that the pre-flight as a whole (Parse +
			// Validate) catches them before any compile/anneal work.
			err := preflight(tc.mutate(validDeck))
			if err == nil {
				t.Fatalf("mutation %q not caught", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestValidateJoinsAllErrors checks that several independent mistakes
// are reported together, not first-error-only.
func TestValidateJoinsAllErrors(t *testing.T) {
	src := validDeck +
		"\n.spec bad1 'ugf(nosuch)' good=1 bad=0" + // dangling TF
		"\n.spec bad2 'Missing*2' good=1 bad=0" + // unknown identifier
		"\n.region xzz.m9 sat" // dangling device
	err := mustParse(t, src).Validate()
	if err == nil {
		t.Fatal("no error for a triply-broken deck")
	}
	for _, want := range []string{`"nosuch"`, `"Missing"`, `"xzz"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestValidateSuiteDecks: every builtin benchmark deck must pass the
// pre-flight (they all compile, so Validate rejecting one would be a
// false positive). Uses the Simple OTA source inline to avoid an import
// cycle with internal/bench.
func TestValidateAcceptsDottedPaths(t *testing.T) {
	src := strings.Replace(validDeck,
		"'ugf(tf)'", "'xa.m1.id/(2*Cl)'", 1)
	if err := mustParse(t, src).Validate(); err != nil {
		t.Errorf("dotted device path rejected: %v", err)
	}
}
