package netlist

import (
	"strings"
	"testing"
)

const corneredDeck = `
.model nmos1 nmos level=1 vto=0.8 kp=50u
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
.pz tf v(out) vin
.ends
.bias
vb in 0 Vb
r1 in out 1k
r2 out 0 R2
.ends
.var R2 min=100 max=100k grid
.const Vb 1
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
.corner slow temp=85 nmos1.vto=0.95 Vb=0.9
.corner fast temp=-40 vb=1.1
`

func TestParseCorners(t *testing.T) {
	d, err := Parse(corneredDeck)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Corners) != 2 {
		t.Fatalf("got %d corners, want 2", len(d.Corners))
	}
	slow := d.Corner("slow")
	if slow == nil {
		t.Fatal("corner slow missing")
	}
	if !slow.TempSet || slow.Temp != 85 {
		t.Errorf("slow temp = %v (set=%v), want 85", slow.Temp, slow.TempSet)
	}
	if got := slow.Model["nmos1"]["vto"]; got != 0.95 {
		t.Errorf("slow nmos1.vto = %g, want 0.95", got)
	}
	// "Vb" matches the .const (keys are lowercased, and Vb the const is
	// resolved case-sensitively at compile; the card key folds to
	// lowercase so it binds to the source vb or const).
	fast := d.Corner("fast")
	if fast == nil || fast.Set["vb"] != 1.1 {
		t.Fatalf("fast vb override missing: %+v", fast)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got, want := d.CornerNames(), []string{"slow", "fast"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("CornerNames = %v, want %v", got, want)
	}
}

func TestCornerValidation(t *testing.T) {
	cases := []struct {
		name, card, wantErr string
	}{
		{"unknown model", ".corner c1 bogus.vto=0.9", "unknown model"},
		{"unknown override", ".corner c1 nosuch=1", "matches no .const"},
		{"design var", ".corner c1 R2=5k", "design variable"},
		{"crazy temp", ".corner c1 temp=900", "plausible"},
	}
	base := strings.Replace(corneredDeck, ".corner slow temp=85 nmos1.vto=0.95 Vb=0.9\n.corner fast temp=-40 vb=1.1\n", "", 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(base + tc.card + "\n")
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCornerParseErrors(t *testing.T) {
	for _, src := range []string{
		".corner",
		".corner nominal temp=85",
		".corner c1 temp",
		".corner c1 .vto=1",
		".corner c1 nmos1.=1",
		".corner c1 temp=85\n.corner c1 temp=0",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestCornerCanonicalHash proves the rescache invariant: any change to
// the corner section changes the deck's canonical hash, so a cornered
// job can never be served a nominal (or differently-cornered) cached
// result.
func TestCornerCanonicalHash(t *testing.T) {
	base := strings.Replace(corneredDeck, ".corner fast temp=-40 vb=1.1\n", "", 1)
	variants := []string{
		corneredDeck,
		base,
		strings.Replace(base, "temp=85", "temp=86", 1),
		strings.Replace(base, ".corner slow", ".corner slo", 1),
	}
	seen := make(map[string]string, len(variants))
	for _, src := range variants {
		h, err := CanonicalHash(src)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between variants:\n%s\n--- and ---\n%s", prev, src)
		}
		seen[h] = src
	}
	// Comment/whitespace noise still canonicalizes away.
	noisy := strings.Replace(corneredDeck, ".corner slow", "* a comment\n.corner   slow", 1)
	h1, _ := CanonicalHash(corneredDeck)
	h2, err := CanonicalHash(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("whitespace/comment noise changed the canonical hash")
	}
}
