package netlist

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/expr"
)

// card dispatches one dot-card.
func (p *parser) card(head string, toks []string) error {
	if p.module != nil && head != ".ends" {
		return p.errf("card %s not allowed inside .module", head)
	}
	if p.jig != nil && head != ".ends" && head != ".pz" {
		return p.errf("card %s not allowed inside .jig/.bias", head)
	}
	switch head {
	case ".title":
		p.deck.Title = strings.Join(toks[1:], " ")
		return nil
	case ".module":
		return p.cardModule(toks)
	case ".ends":
		return p.cardEnds()
	case ".model":
		return p.cardModel(toks)
	case ".lib":
		return p.cardLib(toks)
	case ".var":
		return p.cardVar(toks)
	case ".const":
		return p.cardConst(toks)
	case ".jig":
		if len(toks) < 2 {
			return p.errf(".jig needs a name")
		}
		p.jig = &Jig{Name: toks[1]}
		return nil
	case ".bias":
		p.jig = &Jig{Name: "bias"}
		p.inBias = true
		return nil
	case ".pz":
		return p.cardPZ(toks)
	case ".obj", ".spec":
		return p.cardSpec(head == ".obj", toks)
	case ".region":
		return p.cardRegion(toks)
	case ".corner":
		return p.cardCorner(toks)
	case ".include":
		return p.cardInclude(toks)
	}
	return p.errf("unknown card %s", head)
}

// cardInclude splices another deck file in place (guarding against
// recursive inclusion).
func (p *parser) cardInclude(toks []string) error {
	if len(toks) != 2 {
		return p.errf(".include needs exactly one path")
	}
	path := toks[1]
	if p.including[path] {
		return p.errf(".include cycle through %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return p.errf(".include: %v", err)
	}
	if p.including == nil {
		p.including = make(map[string]bool)
	}
	p.including[path] = true
	defer delete(p.including, path)
	savedLine := p.line
	err = p.run(string(data))
	p.line = savedLine
	if err != nil {
		return fmt.Errorf("%v (included from line %d)", err, savedLine)
	}
	return nil
}

func (p *parser) cardModule(toks []string) error {
	if len(toks) < 2 {
		return p.errf(".module needs a name")
	}
	name := strings.ToLower(toks[1])
	if _, dup := p.deck.Modules[name]; dup {
		return p.errf("duplicate module %q", name)
	}
	p.module = &circuit.Subckt{Name: name, Ports: toks[2:]}
	p.deck.NetlistLines++
	return nil
}

func (p *parser) cardEnds() error {
	switch {
	case p.module != nil:
		p.deck.Modules[p.module.Name] = p.module
		p.module = nil
	case p.jig != nil:
		if p.inBias {
			if p.deck.Bias != nil {
				return p.errf("duplicate .bias block")
			}
			p.deck.Bias = p.jig
			p.inBias = false
		} else {
			p.deck.Jigs = append(p.deck.Jigs, p.jig)
		}
		p.jig = nil
	default:
		return p.errf(".ends without open block")
	}
	return nil
}

func (p *parser) cardModel(toks []string) error {
	if len(toks) < 3 {
		return p.errf(".model needs name and type")
	}
	m := &circuit.Model{
		Name:   strings.ToLower(toks[1]),
		Type:   strings.ToLower(toks[2]),
		Params: make(map[string]float64),
	}
	for _, kv := range toks[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p.errf(".model parameter %q is not key=value", kv)
		}
		key = strings.ToLower(key)
		if key == "level" {
			lvl, err := strconv.Atoi(val)
			if err != nil {
				return p.errf("bad level %q", val)
			}
			m.Level = lvl
			continue
		}
		v, err := expr.ParseNumber(val)
		if err != nil {
			return p.errf(".model %s: %v", m.Name, err)
		}
		m.Params[key] = v
	}
	p.deck.Models[m.Name] = m
	p.deck.NetlistLines++
	return nil
}

func (p *parser) cardLib(toks []string) error {
	if len(toks) != 2 {
		return p.errf(".lib needs exactly one process name")
	}
	lib, err := devices.Library(toks[1])
	if err != nil {
		return p.errf("%v", err)
	}
	for name, m := range lib {
		if _, dup := p.deck.Models[name]; !dup {
			p.deck.Models[name] = m
		}
	}
	p.deck.NetlistLines++
	return nil
}

func (p *parser) cardVar(toks []string) error {
	if len(toks) < 2 {
		return p.errf(".var needs a name")
	}
	v := &DesignVar{Name: toks[1]}
	for _, kv := range toks[2:] {
		key, val, hasVal := strings.Cut(kv, "=")
		key = strings.ToLower(key)
		switch key {
		case "cont":
			v.Continuous = true
		case "grid":
			v.Continuous = false
			if hasVal {
				n, err := strconv.Atoi(val)
				if err != nil || n <= 0 {
					return p.errf("bad grid density %q", val)
				}
				v.PointsPerDecade = n
			}
		case "min", "max", "init":
			if !hasVal {
				return p.errf(".var %s: %s needs a value", v.Name, key)
			}
			x, err := expr.ParseNumber(val)
			if err != nil {
				return p.errf(".var %s: %v", v.Name, err)
			}
			switch key {
			case "min":
				v.Min = x
			case "max":
				v.Max = x
			case "init":
				v.Init = x
			}
		default:
			return p.errf(".var %s: unknown attribute %q", v.Name, kv)
		}
	}
	if !(v.Min < v.Max) {
		return p.errf(".var %s: need min < max (got %g, %g)", v.Name, v.Min, v.Max)
	}
	if p.deck.Var(v.Name) != nil {
		return p.errf("duplicate variable %q", v.Name)
	}
	p.deck.Vars = append(p.deck.Vars, v)
	p.deck.SynthLines++
	return nil
}

func (p *parser) cardConst(toks []string) error {
	if len(toks) != 3 {
		return p.errf(".const needs name and value")
	}
	val, err := expr.ParseNumber(toks[2])
	if err != nil {
		return p.errf(".const %s: %v", toks[1], err)
	}
	p.deck.Consts[toks[1]] = val
	p.deck.SynthLines++
	return nil
}

// cardPZ parses `.pz <name> v(out+[,out-]) <source>`.
func (p *parser) cardPZ(toks []string) error {
	if p.jig == nil {
		return p.errf(".pz only valid inside a .jig block")
	}
	// fields() strips parentheses, so "v(out+,out-)" arrives as the two
	// tokens "v" and "out+,out-".
	if len(toks) != 5 || !strings.EqualFold(toks[2], "v") {
		return p.errf(".pz needs: name v(node[,node]) source")
	}
	req := &TFReq{Name: toks[1], Src: strings.ToLower(toks[4])}
	inner := strings.ToLower(toks[3])
	parts := strings.Split(inner, ",")
	switch len(parts) {
	case 1:
		req.OutPos = strings.TrimSpace(parts[0])
	case 2:
		req.OutPos = strings.TrimSpace(parts[0])
		req.OutNeg = strings.TrimSpace(parts[1])
	default:
		return p.errf(".pz output %q malformed", toks[3])
	}
	if req.OutPos == "" {
		return p.errf(".pz output %q malformed", toks[3])
	}
	p.jig.TFs = append(p.jig.TFs, req)
	p.deck.SynthLines++
	return nil
}

func (p *parser) cardSpec(objective bool, toks []string) error {
	if len(toks) < 3 {
		return p.errf(".spec/.obj needs: name 'expr' good=… bad=…")
	}
	s := &Spec{Name: toks[1], ExprText: toks[2], Objective: objective}
	node, err := expr.Parse(toks[2])
	if err != nil {
		return p.errf("spec %s: %v", s.Name, err)
	}
	s.Expr = node
	var haveGood, haveBad bool
	for _, kv := range toks[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p.errf("spec %s: %q is not key=value", s.Name, kv)
		}
		x, err := expr.ParseNumber(val)
		if err != nil {
			return p.errf("spec %s: %v", s.Name, err)
		}
		switch strings.ToLower(key) {
		case "good":
			s.Good, haveGood = x, true
		case "bad":
			s.Bad, haveBad = x, true
		default:
			return p.errf("spec %s: unknown attribute %q", s.Name, key)
		}
	}
	if !haveGood || !haveBad {
		return p.errf("spec %s: both good= and bad= are required", s.Name)
	}
	if s.Good == s.Bad {
		return p.errf("spec %s: good and bad must differ", s.Name)
	}
	if p.deck.Spec(s.Name) != nil {
		return p.errf("duplicate spec %q", s.Name)
	}
	p.deck.Specs = append(p.deck.Specs, s)
	p.deck.SynthLines++
	return nil
}

func (p *parser) cardRegion(toks []string) error {
	if len(toks) < 3 {
		return p.errf(".region needs: device region [margin=x]")
	}
	r := &RegionReq{Device: strings.ToLower(toks[1]), Region: strings.ToLower(toks[2])}
	switch r.Region {
	case "sat", "triode", "on":
	default:
		return p.errf(".region: unknown region %q (want sat, triode, or on)", toks[2])
	}
	for _, kv := range toks[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || strings.ToLower(key) != "margin" {
			return p.errf(".region: unknown attribute %q", kv)
		}
		x, err := expr.ParseNumber(val)
		if err != nil {
			return p.errf(".region: %v", err)
		}
		r.Margin = x
	}
	p.deck.Regions = append(p.deck.Regions, r)
	p.deck.SynthLines++
	return nil
}

// element parses one element line.
func (p *parser) element(toks []string) (*circuit.Element, error) {
	name := strings.ToLower(toks[0])
	kind, ok := circuit.KindOf(name)
	if !ok {
		return nil, p.errf("unknown element type for %q", toks[0])
	}
	e := &circuit.Element{Name: name, Kind: kind}
	args := toks[1:]

	parseExprTok := func(tok string) (expr.Node, error) {
		n, err := expr.Parse(tok)
		if err != nil {
			return nil, p.errf("element %s: bad value %q: %v", name, tok, err)
		}
		return n, nil
	}

	switch kind {
	case circuit.KindR, circuit.KindC, circuit.KindL:
		if len(args) != 3 {
			return nil, p.errf("element %s needs 2 nodes and a value", name)
		}
		e.Nodes = lowerAll(args[:2])
		v, err := parseExprTok(args[2])
		if err != nil {
			return nil, err
		}
		e.Value = v

	case circuit.KindV, circuit.KindI:
		if len(args) < 2 {
			return nil, p.errf("element %s needs 2 nodes", name)
		}
		e.Nodes = lowerAll(args[:2])
		rest := args[2:]
		e.Value = &expr.Num{V: 0}
		// Optional DC value, then optional "ac <mag>".
		if len(rest) > 0 && !strings.EqualFold(rest[0], "ac") {
			v, err := parseExprTok(rest[0])
			if err != nil {
				return nil, err
			}
			e.Value = v
			rest = rest[1:]
		}
		if len(rest) > 0 {
			if !strings.EqualFold(rest[0], "ac") || len(rest) != 2 {
				return nil, p.errf("element %s: trailing tokens %v (want: [dc] [ac mag])", name, rest)
			}
			mag, err := expr.ParseNumber(rest[1])
			if err != nil {
				return nil, p.errf("element %s: bad ac magnitude: %v", name, err)
			}
			e.ACMag = mag
		}

	case circuit.KindE, circuit.KindG:
		if len(args) != 5 {
			return nil, p.errf("element %s needs 4 nodes and a gain", name)
		}
		e.Nodes = lowerAll(args[:4])
		v, err := parseExprTok(args[4])
		if err != nil {
			return nil, err
		}
		e.Value = v

	case circuit.KindF, circuit.KindH:
		if len(args) != 4 {
			return nil, p.errf("element %s needs 2 nodes, control source, gain", name)
		}
		e.Nodes = lowerAll(args[:2])
		e.CtrlName = strings.ToLower(args[2])
		v, err := parseExprTok(args[3])
		if err != nil {
			return nil, err
		}
		e.Value = v

	case circuit.KindM:
		if len(args) < 5 {
			return nil, p.errf("mosfet %s needs d g s b model [params]", name)
		}
		e.Nodes = lowerAll(args[:4])
		e.Model = strings.ToLower(args[4])
		e.Params = make(map[string]expr.Node)
		for _, kv := range args[5:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, p.errf("mosfet %s: %q is not key=value", name, kv)
			}
			key = strings.ToLower(key)
			if key != "w" && key != "l" && key != "m" {
				return nil, p.errf("mosfet %s: unknown parameter %q", name, key)
			}
			n, err := parseExprTok(val)
			if err != nil {
				return nil, err
			}
			e.Params[key] = n
		}
		if e.Params["w"] == nil || e.Params["l"] == nil {
			return nil, p.errf("mosfet %s: w= and l= are required", name)
		}

	case circuit.KindQ:
		if len(args) < 4 {
			return nil, p.errf("bjt %s needs c b e model [area=]", name)
		}
		e.Nodes = lowerAll(args[:3])
		e.Model = strings.ToLower(args[3])
		e.Params = make(map[string]expr.Node)
		for _, kv := range args[4:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || strings.ToLower(key) != "area" {
				return nil, p.errf("bjt %s: unknown parameter %q", name, kv)
			}
			n, err := parseExprTok(val)
			if err != nil {
				return nil, err
			}
			e.Params["area"] = n
		}

	case circuit.KindX:
		if len(args) < 2 {
			return nil, p.errf("instance %s needs nodes and a subcircuit name", name)
		}
		e.Nodes = lowerAll(args[:len(args)-1])
		e.Sub = strings.ToLower(args[len(args)-1])
	}
	return e, nil
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}
