package netlist

import (
	"errors"
	"fmt"
	"strings"

	"astrx/internal/expr"
)

// Validate pre-flights a parsed deck before the expensive compile/anneal
// machinery sees it: structural problems (missing blocks, duplicate
// names, inverted variable ranges) and dangling references (a spec
// measuring a transfer function no .pz declares, a .pz naming a source
// its jig doesn't contain, a .region constraining a device the bias
// circuit doesn't instantiate) are all collected and returned as one
// joined error. The synthesis service calls this at submit time so a bad
// deck is rejected with HTTP 400 instead of failing minutes later inside
// a worker; the CLIs call it for the same early, complete diagnosis.
//
// Validate is conservative about expressions: identifiers it cannot
// classify statically (dotted device-parameter paths, node-voltage
// accessors) are left for the compiler, which resolves them against the
// flattened circuit. A nil error therefore does not guarantee the deck
// compiles — only that it is free of the mistakes detectable without
// compiling.
func (d *Deck) Validate() error {
	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("netlist: %s", fmt.Sprintf(format, args...)))
	}

	// Structural minimums — mirrors what Compile requires, but reported
	// all at once alongside everything else.
	if d.Bias == nil {
		addf("deck has no .bias circuit")
	}
	if len(d.Jigs) == 0 {
		addf("deck has no .jig circuits")
	}
	if len(d.Vars) == 0 {
		addf("deck declares no .var design variables")
	}
	if len(d.Specs) == 0 {
		addf("deck declares no .spec/.obj cards — nothing to optimize")
	}

	// Design variables: unique names, sane ranges, no collision with
	// constants.
	seenVar := make(map[string]bool, len(d.Vars))
	for _, v := range d.Vars {
		if seenVar[v.Name] {
			addf("duplicate .var %q", v.Name)
		}
		seenVar[v.Name] = true
		if _, isConst := d.Consts[v.Name]; isConst {
			addf(".var %q collides with a .const of the same name", v.Name)
		}
		if !(v.Min < v.Max) {
			addf(".var %s: min %g is not below max %g", v.Name, v.Min, v.Max)
		}
		if !v.Continuous && v.Min <= 0 {
			addf(".var %s: log-grid variable needs min > 0 (got %g)", v.Name, v.Min)
		}
		if v.Init != 0 && (v.Init < v.Min || v.Init > v.Max) {
			addf(".var %s: init %g outside [%g, %g]", v.Name, v.Init, v.Min, v.Max)
		}
	}

	// Jigs: unique names, and every .pz request must resolve inside its
	// own jig. Collect the TF names specs may reference.
	tfNames := make(map[string]bool)
	seenJig := make(map[string]bool, len(d.Jigs))
	for _, j := range d.Jigs {
		if seenJig[j.Name] {
			addf("duplicate .jig %q", j.Name)
		}
		seenJig[j.Name] = true

		elems := make(map[string]bool, len(j.Elements))
		nodes := make(map[string]bool)
		for _, e := range j.Elements {
			elems[strings.ToLower(e.Name)] = true
			for _, n := range e.Nodes {
				nodes[n] = true
			}
		}
		for _, tf := range j.TFs {
			if tfNames[tf.Name] {
				addf("jig %s: duplicate transfer function %q", j.Name, tf.Name)
			}
			tfNames[tf.Name] = true
			if !elems[strings.ToLower(tf.Src)] {
				addf("jig %s: .pz %s references source %q not in the jig", j.Name, tf.Name, tf.Src)
			}
			if !nodes[tf.OutPos] {
				addf("jig %s: .pz %s output node %q not in the jig", j.Name, tf.Name, tf.OutPos)
			}
			if tf.OutNeg != "" && !nodes[tf.OutNeg] {
				addf("jig %s: .pz %s output node %q not in the jig", j.Name, tf.Name, tf.OutNeg)
			}
		}
	}

	// Specs: unique names, distinct good/bad anchors, and no references
	// to unknown variables or transfer functions.
	seenSpec := make(map[string]bool, len(d.Specs))
	for _, s := range d.Specs {
		if seenSpec[s.Name] {
			addf("duplicate .spec/.obj %q", s.Name)
		}
		seenSpec[s.Name] = true
		if s.Good == s.Bad {
			addf("spec %s: good and bad anchors are both %g — direction is undefined", s.Name, s.Good)
		}
		if s.Expr == nil {
			continue
		}
		// Pre-pass: classify bare-identifier call arguments, so the
		// generic identifier check below doesn't misfire on them. A TF
		// measure's argument names a .pz transfer function; v()'s
		// argument names a circuit node, which only the compiler can
		// resolve against the flattened circuit.
		tfArg := make(map[*expr.Var]string) // arg → measure name
		exempt := make(map[*expr.Var]bool)
		walkExpr(s.Expr, func(n expr.Node) {
			c, ok := n.(*expr.Call)
			if !ok {
				return
			}
			for _, a := range c.Args {
				v, isVar := a.(*expr.Var)
				if !isVar {
					continue
				}
				switch {
				case tfMeasures[c.Fn]:
					tfArg[v] = c.Fn
				case c.Fn == "v":
					exempt[v] = true
				}
			}
		})
		walkExpr(s.Expr, func(n expr.Node) {
			t, ok := n.(*expr.Var)
			if !ok || exempt[t] {
				return
			}
			// Dotted paths (xamp.m1.gm) resolve against the flattened
			// circuit at compile time — out of scope here.
			if strings.Contains(t.Name, ".") {
				return
			}
			if seenVar[t.Name] || tfNames[t.Name] {
				return
			}
			if _, isConst := d.Consts[t.Name]; isConst {
				return
			}
			if fn, isTFArg := tfArg[t]; isTFArg {
				// dc_gain(tff) with a typo'd name is this class of error.
				addf("spec %s: %s() references unknown transfer function %q",
					s.Name, fn, t.Name)
				return
			}
			addf("spec %s: unknown identifier %q", s.Name, t.Name)
		})
	}

	d.validateCorners(addf)

	// Regions: the constrained device must exist on the path the bias
	// circuit instantiates. Only the first path segment is checkable
	// without flattening — it must name an element of the bias circuit.
	if d.Bias != nil {
		biasElems := make(map[string]bool, len(d.Bias.Elements))
		for _, e := range d.Bias.Elements {
			biasElems[strings.ToLower(e.Name)] = true
		}
		for _, r := range d.Regions {
			head, _, dotted := strings.Cut(r.Device, ".")
			if !dotted {
				head = r.Device
			}
			if !biasElems[strings.ToLower(head)] {
				addf(".region %s: no element %q in the .bias circuit", r.Device, head)
			}
		}
	}

	return errors.Join(errs...)
}

// tfMeasures lists the measurement functions whose bare-identifier
// arguments name transfer functions.
var tfMeasures = map[string]bool{
	"dc_gain":      true,
	"ugf":          true,
	"phase_margin": true,
	"bw3db":        true,
	"pole":         true,
	"zero":         true,
	"gain_at":      true,
}

// walkExpr visits every node of an expression tree in preorder.
func walkExpr(n expr.Node, visit func(expr.Node)) {
	if n == nil {
		return
	}
	visit(n)
	switch t := n.(type) {
	case *expr.Unary:
		walkExpr(t.X, visit)
	case *expr.Binary:
		walkExpr(t.L, visit)
		walkExpr(t.R, visit)
	case *expr.Call:
		for _, a := range t.Args {
			walkExpr(a, visit)
		}
	}
}
