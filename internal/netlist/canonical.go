package netlist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Canonical returns the canonical text of a deck: the byte sequence two
// submissions must share to be "the same problem" for result caching.
// It is computed lexically, exactly the way the parser reads the deck:
//
//   - comments ("; ..." and "* ..." lines) are stripped,
//   - "+" continuation lines are joined into their logical line,
//   - blank lines disappear,
//   - runs of spaces/tabs collapse to a single space,
//   - parenthesized port lists lose their parentheses (the tokenizer
//     treats them as separators),
//   - quoted expressions are re-quoted in a fixed form.
//
// Logical-line order is preserved — decks are programs, and reordering
// cards can change the problem — so Canonical is whitespace- and
// comment-insensitive but NOT card-order-insensitive. The result of
// canonicalizing is a fixed point: Canonical(Canonical(src)) ==
// Canonical(src).
//
// Canonical does not validate the deck beyond tokenization; callers that
// need semantic validation still run Parse + Validate.
func Canonical(src string) (string, error) {
	var b strings.Builder
	for _, ll := range logicalLines(src) {
		toks, err := fields(ll.text)
		if err != nil {
			return "", fmt.Errorf("netlist: line %d: %s", ll.line, err)
		}
		if len(toks) == 0 {
			continue
		}
		for i, tok := range toks {
			if i > 0 {
				b.WriteByte(' ')
			}
			// Tokens that came from a 'quoted expression' may carry
			// spaces or parentheses — both are token separators — so
			// re-quote them to make the canonical text re-tokenize
			// identically. (A token can never contain a quote character:
			// the tokenizer ends quoted tokens at it.)
			if strings.ContainsAny(tok, " \t()") {
				b.WriteByte('\'')
				b.WriteString(tok)
				b.WriteByte('\'')
			} else {
				b.WriteString(tok)
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// CanonicalHash returns the hex SHA-256 of the deck's canonical text —
// the deck half of a result-cache key. Two decks that differ only in
// whitespace, comments, or line continuations hash identically; any
// semantic difference (a changed value, an added card) changes the hash.
func CanonicalHash(src string) (string, error) {
	canon, err := Canonical(src)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:]), nil
}
