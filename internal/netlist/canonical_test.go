package netlist

import (
	"strings"
	"testing"
)

// TestCanonicalByteStable is the determinism table: every lexical
// variation of the same deck must canonicalize to the same bytes, and
// therefore the same hash.
func TestCanonicalByteStable(t *testing.T) {
	base := `.var W1 min=2u max=500u grid
.const Cl 1p
.obj adm 'db(dc_gain(tf))' good=60 bad=20
r1 a b 10k
`
	variants := map[string]string{
		"extra spaces": `.var   W1	min=2u   max=500u  grid
.const Cl 1p
.obj adm 'db(dc_gain(tf))' good=60 bad=20
r1 a b 10k
`,
		"comments and blanks": `* header comment

.var W1 min=2u max=500u grid   ; geometry
.const Cl 1p

; a note
.obj adm 'db(dc_gain(tf))' good=60 bad=20
r1 a b 10k
`,
		"continuation lines": `.var W1 min=2u
+ max=500u grid
.const Cl 1p
.obj adm
+ 'db(dc_gain(tf))'
+ good=60 bad=20
r1 a b 10k
`,
		"trailing whitespace and crlf padding": ".var W1 min=2u max=500u grid  \n.const Cl 1p\t\n.obj adm 'db(dc_gain(tf))' good=60 bad=20\nr1 a b 10k\n\n\n",
	}

	want, err := Canonical(base)
	if err != nil {
		t.Fatalf("Canonical(base): %v", err)
	}
	wantHash, err := CanonicalHash(base)
	if err != nil {
		t.Fatalf("CanonicalHash(base): %v", err)
	}
	for name, src := range variants {
		got, err := Canonical(src)
		if err != nil {
			t.Fatalf("%s: Canonical: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: canonical text differs:\n got %q\nwant %q", name, got, want)
		}
		h, err := CanonicalHash(src)
		if err != nil {
			t.Fatalf("%s: CanonicalHash: %v", name, err)
		}
		if h != wantHash {
			t.Errorf("%s: hash %s != base %s", name, h, wantHash)
		}
	}

	// A semantic change must change the hash.
	changed := strings.Replace(base, "max=500u", "max=400u", 1)
	h, err := CanonicalHash(changed)
	if err != nil {
		t.Fatal(err)
	}
	if h == wantHash {
		t.Error("changed deck hashes identically to the base deck")
	}
}

// TestCanonicalFixedPoint: canonicalizing twice is the identity on the
// first pass's output (quoted expressions must round-trip).
func TestCanonicalFixedPoint(t *testing.T) {
	src := `.obj adm 'db(dc_gain(tf))' good=60 bad=20
.spec ugf 'ugf(tf)/6.2832' good=1Meg bad=10k
m1 out in (tail tail) nmos3 w=W1 l=L1
`
	once, err := Canonical(src)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonical(once)
	if err != nil {
		t.Fatalf("re-canonicalize: %v", err)
	}
	if once != twice {
		t.Errorf("not a fixed point:\n once %q\ntwice %q", once, twice)
	}
}

func TestCanonicalRejectsUnterminatedQuote(t *testing.T) {
	if _, err := Canonical(".obj adm 'db(dc_gain(tf)) good=60 bad=20\n"); err == nil {
		t.Error("unterminated quote accepted")
	}
}
