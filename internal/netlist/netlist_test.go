package netlist

import (
	"math"
	"os"
	"strings"
	"testing"

	"astrx/internal/circuit"
	"astrx/internal/expr"
)

// diffAmpDeck is the paper's §IV differential-amplifier example rendered
// in our deck syntax.
const diffAmpDeck = `
* Simple differential pair from the paper's Section IV
.title diffamp example
.lib c2u

.module amp (in+ in- out+ out- vdd vss oa)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=10u l=2u
m4 out+ nb  vdd vdd pmos3 w=10u l=2u
vb  nb 0 Vb
ib  a 0 I       ; tail current sink
.ends

.var W  min=2u  max=500u grid
.var L  min=2u  max=50u  grid=30
.var I  min=1u  max=1m   cont
.var Vb min=0.5 max=4.5  cont init=3.5

.const Cl 1p
.const vddval 2.5
.const vssval -2.5

.jig main
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 vddval
vss  nvss 0 vssval
vin  in+ 0 0 ac 1
ein  in- 0 0 in+ -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 vddval
vss  nvss 0 vssval
.ends

.obj  adm 'db(dc_gain(tf))' good=60 bad=20
.spec ugf 'ugf(tf)'         good=6.28Meg bad=62.8k
.spec sr  'I/(2*(Cl+xamp.m1.cdb))' good=1Meg bad=10k
.region xamp.m1 sat margin=0.1
.region xamp.m3 sat
`

func parseDeck(t *testing.T, src string) *Deck {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseDiffAmpDeck(t *testing.T) {
	d := parseDeck(t, diffAmpDeck)
	if d.Title != "diffamp example" {
		t.Errorf("title = %q", d.Title)
	}
	amp := d.Modules["amp"]
	if amp == nil {
		t.Fatal("module amp missing")
	}
	if len(amp.Ports) != 7 {
		t.Errorf("amp ports = %v", amp.Ports)
	}
	if len(amp.Elements) != 6 {
		t.Errorf("amp has %d elements, want 6", len(amp.Elements))
	}
	m1 := amp.Elements[0]
	if m1.Name != "m1" || m1.Kind != circuit.KindM || m1.Model != "nmos3" {
		t.Errorf("m1 parsed wrong: %+v", m1)
	}
	if m1.Nodes[0] != "out-" || m1.Nodes[3] != "a" {
		t.Errorf("m1 nodes = %v", m1.Nodes)
	}
	// Parameter expressions reference design variables.
	env := expr.MapEnv{"W": 10e-6, "L": 2e-6, "I": 1e-4, "Vb": 3.0}
	w, err := m1.EvalParam("w", 0, env)
	if err != nil || w != 10e-6 {
		t.Errorf("m1 w = %g, %v", w, err)
	}

	// Process library was merged.
	if d.Models["nmos3"] == nil || d.Models["pmos3"] == nil {
		t.Error("library models missing")
	}

	// Variables.
	if len(d.Vars) != 4 {
		t.Fatalf("vars = %d, want 4", len(d.Vars))
	}
	wv := d.Var("W")
	if wv == nil || wv.Continuous || wv.Min != 2e-6 || wv.Max != 500e-6 {
		t.Errorf("W var = %+v", wv)
	}
	lv := d.Var("L")
	if lv.PointsPerDecade != 30 {
		t.Errorf("L grid density = %d, want 30", lv.PointsPerDecade)
	}
	iv := d.Var("I")
	if !iv.Continuous {
		t.Error("I must be continuous")
	}
	vb := d.Var("Vb")
	if vb.Init != 3.5 {
		t.Errorf("Vb init = %g", vb.Init)
	}

	// Constants.
	if d.Consts["Cl"] != 1e-12 || d.Consts["vddval"] != 2.5 {
		t.Errorf("consts = %v", d.Consts)
	}

	// Jig with .pz.
	if len(d.Jigs) != 1 {
		t.Fatalf("jigs = %d", len(d.Jigs))
	}
	jig := d.Jigs[0]
	if jig.Name != "main" || len(jig.Elements) != 7 {
		t.Errorf("jig = %s with %d elements", jig.Name, len(jig.Elements))
	}
	if len(jig.TFs) != 1 {
		t.Fatalf("jig TFs = %d", len(jig.TFs))
	}
	tf := jig.TFs[0]
	if tf.Name != "tf" || tf.OutPos != "out+" || tf.OutNeg != "out-" || tf.Src != "vin" {
		t.Errorf("tf = %+v", tf)
	}

	// Bias block.
	if d.Bias == nil || len(d.Bias.Elements) != 3 {
		t.Fatalf("bias block wrong: %+v", d.Bias)
	}

	// Specs.
	if len(d.Specs) != 3 {
		t.Fatalf("specs = %d", len(d.Specs))
	}
	adm := d.Spec("adm")
	if adm == nil || !adm.Objective || !adm.Maximize() {
		t.Errorf("adm spec = %+v", adm)
	}
	sr := d.Spec("sr")
	if sr == nil || sr.Objective || sr.Good != 1e6 {
		t.Errorf("sr spec = %+v", sr)
	}

	// Regions.
	if len(d.Regions) != 2 {
		t.Fatalf("regions = %d", len(d.Regions))
	}
	if d.Regions[0].Device != "xamp.m1" || d.Regions[0].Region != "sat" ||
		math.Abs(d.Regions[0].Margin-0.1) > 1e-15 {
		t.Errorf("region 0 = %+v", d.Regions[0])
	}
	if d.Regions[1].Margin != 0 {
		t.Errorf("region 1 margin = %g", d.Regions[1].Margin)
	}

	// Line accounting.
	if d.NetlistLines == 0 || d.SynthLines == 0 {
		t.Error("line accounting missing")
	}
	// 4 vars + 3 consts + 3 specs + 1 pz + 2 regions = 13 synth lines.
	if d.SynthLines != 13 {
		t.Errorf("SynthLines = %d, want 13", d.SynthLines)
	}
}

func TestControlledSources(t *testing.T) {
	d := parseDeck(t, `
.jig j
vin a 0 1 ac 1
e1 b 0 a 0 2.5
g1 c 0 a 0 '1m*2'
f1 d 0 vin 3
h1 e 0 vin 1k
r1 b 0 1k
r2 c 0 1k
r3 d 0 1k
r4 e 0 1k
.ends
`)
	j := d.Jigs[0]
	byName := map[string]*circuit.Element{}
	for _, e := range j.Elements {
		byName[e.Name] = e
	}
	if e := byName["e1"]; e.Kind != circuit.KindE || len(e.Nodes) != 4 {
		t.Errorf("e1 = %+v", e)
	}
	if g := byName["g1"]; g.Kind != circuit.KindG {
		t.Errorf("g1 = %+v", g)
	} else if v, err := g.EvalValue(expr.MapEnv{}); err != nil || math.Abs(v-2e-3) > 1e-18 {
		t.Errorf("g1 value = %g, %v", v, err)
	}
	if f := byName["f1"]; f.CtrlName != "vin" {
		t.Errorf("f1 ctrl = %q", f.CtrlName)
	}
	if h := byName["h1"]; h.CtrlName != "vin" {
		t.Errorf("h1 ctrl = %q", h.CtrlName)
	}
	if v := byName["vin"]; v.ACMag != 1 {
		t.Errorf("vin acmag = %g", v.ACMag)
	}
}

func TestContinuationAndComments(t *testing.T) {
	d := parseDeck(t, `
.jig j
r1 a
+ b
+ 10k       ; a split resistor line
.ends
`)
	r := d.Jigs[0].Elements[0]
	if len(r.Nodes) != 2 || r.Nodes[1] != "b" {
		t.Errorf("continuation failed: %+v", r)
	}
	v, _ := r.EvalValue(expr.MapEnv{})
	if v != 10000 {
		t.Errorf("value = %g", v)
	}
}

func TestBJTLine(t *testing.T) {
	d := parseDeck(t, `
.lib bicmos
.jig j
q1 c b e npn area=2
r1 c 0 1k
.ends
`)
	q := d.Jigs[0].Elements[0]
	if q.Kind != circuit.KindQ || q.Model != "npn" || len(q.Nodes) != 3 {
		t.Errorf("q1 = %+v", q)
	}
	a, err := q.EvalParam("area", 1, expr.MapEnv{})
	if err != nil || a != 2 {
		t.Errorf("area = %g, %v", a, err)
	}
}

func TestModelCard(t *testing.T) {
	d := parseDeck(t, `
.model mymos nmos level=3 vto=0.75 kp=55u tox=40n
.jig j
r1 a 0 1
.ends
`)
	m := d.Models["mymos"]
	if m == nil || m.Level != 3 || m.Type != "nmos" {
		t.Fatalf("model = %+v", m)
	}
	if m.P("vto", 0) != 0.75 || math.Abs(m.P("kp", 0)-55e-6) > 1e-20 {
		t.Errorf("params = %v", m.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"elementOutsideBlock", "r1 a b 1k\n"},
		{"unterminatedBlock", ".jig j\nr1 a b 1k\n"},
		{"unknownCard", ".bogus x\n"},
		{"unknownElement", ".jig j\nz1 a b 1\n.ends\n"},
		{"badResistor", ".jig j\nr1 a b\n.ends\n"},
		{"badMOSParams", ".jig j\nm1 d g s b mod w=1u\n.ends\n"},
		{"mosUnknownParam", ".jig j\nm1 d g s b mod w=1u l=1u q=3\n.ends\n"},
		{"duplicateVar", ".var A min=1 max=2\n.var A min=1 max=2\n"},
		{"varBadRange", ".var A min=5 max=2\n"},
		{"varUnknownAttr", ".var A min=1 max=2 wild\n"},
		{"specMissingBad", ".spec s 'a' good=1\n"},
		{"specGoodEqBad", ".spec s 'a' good=1 bad=1\n"},
		{"specBadExpr", ".spec s 'a +' good=1 bad=0\n"},
		{"duplicateSpec", ".spec s 'a' good=1 bad=0\n.spec s 'a' good=1 bad=0\n"},
		{"pzOutsideJig", ".pz tf v(a) vin\n"},
		{"pzMalformed", ".jig j\n.pz tf w(a) vin\n.ends\n"},
		{"regionBad", ".region xamp.m1 weird\n"},
		{"modelBadLevel", ".model m nmos level=abc\n"},
		{"libUnknown", ".lib c9000\n"},
		{"constBad", ".const A xx\n"},
		{"duplicateModule", ".module m (a)\n.ends\n.module m (a)\n.ends\n"},
		{"duplicateBias", ".bias\nr1 a 0 1\n.ends\n.bias\nr1 a 0 1\n.ends\n"},
		{"endsWithoutBlock", ".ends\n"},
		{"unterminatedQuote", ".spec s 'a good=1 bad=0\n"},
		{"cardInModule", ".module m (a)\n.var X min=1 max=2\n.ends\n"},
		{"vSourceTrailing", ".jig j\nv1 a 0 1 dc 2\n.ends\n"},
		{"fBadArity", ".jig j\nf1 a 0 vin\n.ends\n"},
		{"qBadParam", ".jig j\nq1 c b e npn beta=2\n.ends\n"},
		{"xTooShort", ".jig j\nx1 sub\n.ends\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
}

func TestXInstanceNodes(t *testing.T) {
	d := parseDeck(t, `
.module sub (p q)
r1 p q 1k
.ends
.jig j
x1 a b sub
.ends
`)
	x := d.Jigs[0].Elements[0]
	if x.Sub != "sub" || len(x.Nodes) != 2 || x.Nodes[0] != "a" {
		t.Errorf("x1 = %+v", x)
	}
}

func TestDeckAccessors(t *testing.T) {
	d := parseDeck(t, diffAmpDeck)
	if d.Jig("nope") != nil || d.Jig("main") == nil {
		t.Error("Jig accessor wrong")
	}
	if d.Var("nope") != nil || d.Spec("nope") != nil {
		t.Error("nil accessors wrong")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	d := parseDeck(t, `
.JIG J
R1 A B 1K
VIN A 0 0 AC 1
.ENDS
`)
	if len(d.Jigs) != 1 {
		t.Fatal("uppercase deck failed")
	}
	r := d.Jigs[0].Elements[0]
	if r.Name != "r1" || r.Nodes[0] != "a" {
		t.Errorf("case folding wrong: %+v", r)
	}
	if d.Jigs[0].Elements[1].ACMag != 1 {
		t.Error("AC keyword case folding wrong")
	}
}

func TestSpecDirections(t *testing.T) {
	d := parseDeck(t, `
.spec up 'x' good=10 bad=1
.spec dn 'x' good=1 bad=10
`)
	if !d.Spec("up").Maximize() {
		t.Error("up should maximize")
	}
	if d.Spec("dn").Maximize() {
		t.Error("dn should minimize")
	}
	if !strings.Contains(d.Spec("up").ExprText, "x") {
		t.Error("ExprText not preserved")
	}
}

func TestIncludeCard(t *testing.T) {
	dir := t.TempDir()
	libPath := dir + "/mylib.inc"
	if err := os.WriteFile(libPath, []byte(`
.model mymos nmos level=3 vto=0.75 kp=55u
.module cell (a b)
r1 a b 1k
.ends
`), 0o644); err != nil {
		t.Fatal(err)
	}
	d := parseDeck(t, `
.include `+libPath+`
.jig j
x1 p q cell
vin p 0 0 ac 1
.pz tf v(q) vin
.ends
`)
	if d.Models["mymos"] == nil {
		t.Error("included model missing")
	}
	if d.Modules["cell"] == nil {
		t.Error("included module missing")
	}
	// Missing file and cycles error.
	if _, err := Parse(".include /nonexistent/file.inc\n"); err == nil {
		t.Error("missing include must error")
	}
	cyclePath := dir + "/cycle.inc"
	if err := os.WriteFile(cyclePath, []byte(".include "+cyclePath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(".include " + cyclePath + "\n"); err == nil {
		t.Error("include cycle must error")
	}
	// Unterminated block inside an include is rejected.
	openPath := dir + "/open.inc"
	if err := os.WriteFile(openPath, []byte(".jig j\nr1 a 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(".include " + openPath + "\n"); err == nil {
		t.Error("unterminated include block must error")
	}
}
