package netlist

import (
	"strings"

	"astrx/internal/circuit"
	"astrx/internal/expr"
)

// Corner is one named operating corner: a set of deck-level overrides
// (device-model constants, supply/bias source values, ambient
// temperature) under which the circuit must still meet its specs. The
// synthesis engine compiles one evaluation plan per selected corner and
// anneals on the worst spec value over all of them.
//
// Card syntax, one card per corner at deck top level:
//
//	.corner slow  temp=85 nmos3.vto=0.95 pmos3.vto=-0.95 vdd=4.5
//	.corner fast  temp=-40 nmos3.vto=0.65 vdd=5.5
//
// Keys are classified by shape: "temp" is the ambient temperature in
// °C (nominal 27); a dotted key "model.param" overrides one parameter
// of one .model card; a bare key overrides either a .const of that name
// or the DC value of a top-level V/I source in the bias circuit or a
// jig (resolved at validation time).
type Corner struct {
	Name string
	// Temp is the corner's ambient temperature in °C; TempSet reports
	// whether the card gave one. The compiler maps the delta from the
	// nominal 27 °C onto documented model-card derates (threshold shift,
	// mobility scaling) rather than re-deriving device physics.
	Temp    float64
	TempSet bool
	// Model maps model name → parameter → override value.
	Model map[string]map[string]float64
	// Set holds the bare-key overrides: .const values or V/I source DC
	// values, by name. Which one a name binds to is resolved against the
	// deck during validation and compilation (consts win; a name that is
	// neither is a validation error).
	Set map[string]float64
}

// NominalTemp is the reference ambient temperature (°C) a corner's
// temp= delta is measured from.
const NominalTemp = 27.0

// Corner returns the named corner or nil.
func (d *Deck) Corner(name string) *Corner {
	for _, c := range d.Corners {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// CornerNames lists the declared corner names in deck order.
func (d *Deck) CornerNames() []string {
	out := make([]string, len(d.Corners))
	for i, c := range d.Corners {
		out[i] = c.Name
	}
	return out
}

// cardCorner parses `.corner <name> [temp=T] [model.param=v] [name=v]...`.
func (p *parser) cardCorner(toks []string) error {
	if len(toks) < 2 {
		return p.errf(".corner needs a name")
	}
	name := strings.ToLower(toks[1])
	if name == "nominal" {
		return p.errf(`.corner: the name "nominal" is reserved for the uncornered deck`)
	}
	if p.deck.Corner(name) != nil {
		return p.errf("duplicate .corner %q", name)
	}
	c := &Corner{Name: name}
	for _, kv := range toks[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p.errf(".corner %s: %q is not key=value", name, kv)
		}
		x, err := expr.ParseNumber(val)
		if err != nil {
			return p.errf(".corner %s: %s: %v", name, key, err)
		}
		key = strings.ToLower(key)
		switch {
		case key == "temp":
			c.Temp, c.TempSet = x, true
		case strings.Contains(key, "."):
			model, param, _ := strings.Cut(key, ".")
			if model == "" || param == "" {
				return p.errf(".corner %s: malformed model override %q (want model.param=value)", name, kv)
			}
			if c.Model == nil {
				c.Model = make(map[string]map[string]float64)
			}
			if c.Model[model] == nil {
				c.Model[model] = make(map[string]float64)
			}
			c.Model[model][param] = x
		default:
			if c.Set == nil {
				c.Set = make(map[string]float64)
			}
			c.Set[key] = x
		}
	}
	p.deck.Corners = append(p.deck.Corners, c)
	p.deck.SynthLines++
	return nil
}

// validateCorners collects corner-card errors: unreasonable
// temperatures, overrides of models that don't exist, and bare-key
// overrides that bind to neither a .const nor a top-level V/I source.
// Called from Deck.Validate with its error collector.
func (d *Deck) validateCorners(addf func(format string, args ...any)) {
	// Source-override candidates: top-level V/I elements of the bias
	// circuit and every jig, by name.
	sources := make(map[string]bool)
	jigs := d.Jigs
	if d.Bias != nil {
		jigs = append(append([]*Jig(nil), d.Jigs...), d.Bias)
	}
	for _, j := range jigs {
		for _, e := range j.Elements {
			if e.Kind == circuit.KindV || e.Kind == circuit.KindI {
				sources[strings.ToLower(e.Name)] = true
			}
		}
	}

	// Corner card keys fold to lowercase; consts and design variables are
	// declared mixed-case, so match them case-insensitively.
	consts := make(map[string]bool, len(d.Consts))
	for name := range d.Consts {
		consts[strings.ToLower(name)] = true
	}
	vars := make(map[string]bool, len(d.Vars))
	for _, v := range d.Vars {
		vars[strings.ToLower(v.Name)] = true
	}

	seen := make(map[string]bool, len(d.Corners))
	for _, c := range d.Corners {
		if seen[c.Name] {
			addf("duplicate .corner %q", c.Name)
		}
		seen[c.Name] = true
		if c.TempSet && (c.Temp < -100 || c.Temp > 300) {
			addf(".corner %s: temp %g °C outside the plausible [-100, 300] range", c.Name, c.Temp)
		}
		for model := range c.Model {
			if _, ok := d.Models[model]; !ok {
				addf(".corner %s: override of unknown model %q", c.Name, model)
			}
		}
		for key := range c.Set {
			if consts[key] || sources[key] {
				continue
			}
			if vars[key] {
				addf(".corner %s: %q is a design variable — corners may only override consts, sources, and model parameters", c.Name, key)
				continue
			}
			addf(".corner %s: override %q matches no .const and no V/I source", c.Name, key)
		}
	}
}
