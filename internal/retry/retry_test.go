package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i+1, 0); got != w {
			t.Errorf("attempt %d: delay %s, want %s", i+1, got, w)
		}
	}
}

func TestDelayJitterRange(t *testing.T) {
	p := Policy{Base: time.Second, Multiplier: 2, Jitter: 0.5}
	// u=0 → full delay; u→1 → half the delay.
	if got := p.Delay(1, 0); got != time.Second {
		t.Errorf("u=0: %s, want 1s", got)
	}
	if got := p.Delay(1, 0.999999); got < 500*time.Millisecond || got > time.Second {
		t.Errorf("u≈1: %s, want in [500ms, 1s]", got)
	}
	// Randomized draws stay inside the band.
	for i := 0; i < 100; i++ {
		if got := p.Backoff(2); got < time.Second || got > 2*time.Second {
			t.Fatalf("Backoff(2) = %s outside [1s, 2s]", got)
		}
	}
}

func TestDelayDegenerateInputs(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Multiplier: 0.1} // <1 → constant
	if got := p.Delay(5, 0); got != 50*time.Millisecond {
		t.Errorf("sub-unity multiplier: %s, want 50ms", got)
	}
	if got := p.Delay(0, 0); got != 50*time.Millisecond {
		t.Errorf("attempt 0 clamps to 1: got %s", got)
	}
	over := Policy{Base: time.Second, Multiplier: 1, Jitter: 3}
	if got := over.Delay(1, 1); got != 0 {
		t.Errorf("jitter clamped to 1 with u=1: got %s, want 0", got)
	}
}

func TestExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	for attempt, want := range map[int]bool{0: false, 1: false, 2: false, 3: true, 4: true} {
		if got := p.Exhausted(attempt); got != want {
			t.Errorf("Exhausted(%d) = %v, want %v", attempt, got, want)
		}
	}
	unbounded := Policy{}
	if unbounded.Exhausted(1 << 20) {
		t.Error("MaxAttempts=0 must never exhaust")
	}
}

func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0): %v", err)
	}
}

func TestSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx: %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
	// A non-positive duration still reports the context's state.
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep(0) on cancelled ctx: %v", err)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	p := Policy{Base: time.Millisecond, Multiplier: 1, MaxAttempts: 5}
	calls := 0
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestDoExhausts(t *testing.T) {
	p := Policy{Base: time.Microsecond, Multiplier: 1, MaxAttempts: 3}
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do error %v does not wrap the last failure", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want MaxAttempts=3", calls)
	}
}

func TestDoStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Base: time.Hour, Multiplier: 1} // unbounded attempts, long backoff
	calls := 0
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Do(ctx, p, func(context.Context) error {
		calls++
		return errors.New("always fails")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do: %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (cancelled during backoff)", calls)
	}
	// A pre-cancelled context never calls fn.
	calls = 0
	if err := Do(ctx, p, func(context.Context) error { calls++; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on cancelled ctx: %v", err)
	}
	if calls != 0 {
		t.Fatal("fn must not run on a pre-cancelled context")
	}
}

func TestDefaultIsSane(t *testing.T) {
	p := Default()
	if p.Base <= 0 || p.Max < p.Base || p.Multiplier < 1 || p.MaxAttempts < 1 {
		t.Fatalf("Default() is degenerate: %+v", p)
	}
	if p.String() == "" {
		t.Error("String() empty")
	}
}
