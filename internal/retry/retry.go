// Package retry provides the reusable backoff policy the synthesis
// service applies to supervised work: exponential delay growth with
// decorrelating jitter and a bounded attempt budget. It is deliberately
// tiny and deterministic at its core — Delay is a pure function of
// (attempt, jitter draw) — so supervision logic can be tested without
// sleeping and a fault post-mortem can reconstruct the exact schedule a
// job experienced.
package retry

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Policy describes an exponential-backoff retry schedule.
//
// The zero value is not useful; start from Default() and override
// fields, or fill in all of them. Attempt numbering is 1-based: attempt
// 1 is the first retry after the initial failure.
type Policy struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (0 → no cap).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (values below 1 are
	// treated as 1, i.e. constant backoff).
	Multiplier float64
	// Jitter is the fraction of the computed delay randomized away, in
	// [0, 1]: the returned delay is uniform in [d·(1-Jitter), d]. Jitter
	// de-synchronizes retry herds after a correlated failure.
	Jitter float64
	// MaxAttempts bounds the retries; Exhausted reports when a worker
	// should stop retrying and escalate (0 → never exhausted).
	MaxAttempts int
}

// Default returns the service's standard policy: 1s base, doubling,
// capped at 1 minute, 50% jitter, 3 attempts.
func Default() Policy {
	return Policy{
		Base:        time.Second,
		Max:         time.Minute,
		Multiplier:  2,
		Jitter:      0.5,
		MaxAttempts: 3,
	}
}

// Delay returns the backoff before the attempt-th retry, with the
// jitter draw u supplied by the caller (u must be in [0, 1)). It is a
// pure function, so tests and post-mortems can enumerate a schedule
// exactly.
func (p Policy) Delay(attempt int, u float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	d := float64(p.Base) * math.Pow(mult, float64(attempt-1))
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d·(1-j), d].
		d = d * (1 - j*u)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Backoff returns the delay before the attempt-th retry with a random
// jitter draw.
func (p Policy) Backoff(attempt int) time.Duration {
	return p.Delay(attempt, rand.Float64())
}

// Exhausted reports whether the attempt budget is spent: attempt counts
// the retries already performed.
func (p Policy) Exhausted(attempt int) bool {
	return p.MaxAttempts > 0 && attempt >= p.MaxAttempts
}

// Sleep blocks for d or until ctx is done, whichever comes first,
// returning nil after a full sleep and ctx.Err() when the wait was cut
// short. It is the context-aware replacement for the hand-rolled
// timer+select blocks supervision loops otherwise accumulate; a
// non-positive d returns immediately with ctx's current error.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn until it succeeds, the policy's attempt budget is
// exhausted, or ctx is cancelled, sleeping the policy's jittered
// backoff between attempts. Attempt numbering matches the rest of the
// package: the initial call is "attempt 1", so a policy with
// MaxAttempts=3 calls fn at most three times. A policy with
// MaxAttempts=0 retries until ctx cancellation. The returned error
// wraps fn's last failure.
func Do(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if p.Exhausted(attempt) {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		if serr := Sleep(ctx, p.Backoff(attempt)); serr != nil {
			return fmt.Errorf("retry: %w (last attempt: %w)", serr, err)
		}
	}
}

// String renders the policy for logs and runbooks.
func (p Policy) String() string {
	return fmt.Sprintf("retry{base=%s max=%s x%g jitter=%g attempts=%d}",
		p.Base, p.Max, p.Multiplier, p.Jitter, p.MaxAttempts)
}
