// Package retry provides the reusable backoff policy the synthesis
// service applies to supervised work: exponential delay growth with
// decorrelating jitter and a bounded attempt budget. It is deliberately
// tiny and deterministic at its core — Delay is a pure function of
// (attempt, jitter draw) — so supervision logic can be tested without
// sleeping and a fault post-mortem can reconstruct the exact schedule a
// job experienced.
package retry

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Policy describes an exponential-backoff retry schedule.
//
// The zero value is not useful; start from Default() and override
// fields, or fill in all of them. Attempt numbering is 1-based: attempt
// 1 is the first retry after the initial failure.
type Policy struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (0 → no cap).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (values below 1 are
	// treated as 1, i.e. constant backoff).
	Multiplier float64
	// Jitter is the fraction of the computed delay randomized away, in
	// [0, 1]: the returned delay is uniform in [d·(1-Jitter), d]. Jitter
	// de-synchronizes retry herds after a correlated failure.
	Jitter float64
	// MaxAttempts bounds the retries; Exhausted reports when a worker
	// should stop retrying and escalate (0 → never exhausted).
	MaxAttempts int
}

// Default returns the service's standard policy: 1s base, doubling,
// capped at 1 minute, 50% jitter, 3 attempts.
func Default() Policy {
	return Policy{
		Base:        time.Second,
		Max:         time.Minute,
		Multiplier:  2,
		Jitter:      0.5,
		MaxAttempts: 3,
	}
}

// Delay returns the backoff before the attempt-th retry, with the
// jitter draw u supplied by the caller (u must be in [0, 1)). It is a
// pure function, so tests and post-mortems can enumerate a schedule
// exactly.
func (p Policy) Delay(attempt int, u float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	d := float64(p.Base) * math.Pow(mult, float64(attempt-1))
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d·(1-j), d].
		d = d * (1 - j*u)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Backoff returns the delay before the attempt-th retry with a random
// jitter draw.
func (p Policy) Backoff(attempt int) time.Duration {
	return p.Delay(attempt, rand.Float64())
}

// Exhausted reports whether the attempt budget is spent: attempt counts
// the retries already performed.
func (p Policy) Exhausted(attempt int) bool {
	return p.MaxAttempts > 0 && attempt >= p.MaxAttempts
}

// String renders the policy for logs and runbooks.
func (p Policy) String() string {
	return fmt.Sprintf("retry{base=%s max=%s x%g jitter=%g attempts=%d}",
		p.Base, p.Max, p.Multiplier, p.Jitter, p.MaxAttempts)
}
