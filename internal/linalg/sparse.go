package linalg

import (
	"errors"
	"math"
)

// This file implements the sparse symbolic-LU path described in
// DESIGN.md §4 (revised): circuit MNA matrices are tiny but sparse, and
// their sparsity *pattern* is fixed per deck while only the values change
// between evaluations. The analysis is therefore split KLU-style:
//
//   - Pattern captures the nonzero positions of a matrix.
//   - Symbolic runs a structural full-Markowitz elimination on a pattern
//     once, choosing a fill-reducing pivot order (row *and* column
//     permutations — MNA branch rows for V/E/H/L elements have
//     structurally zero diagonals, so diagonal pivoting is not enough)
//     and emitting flat replay programs: a scatter map from dense
//     storage into packed factor storage, per-step divide and
//     multiply-subtract index triples for the numeric factorization, and
//     forward/backward substitution programs for the solves.
//   - SparseLU / SparseCLU / SparseBatchLU replay those programs over
//     real, complex, or K-candidate SoA numeric arrays with no branching
//     on structure and no allocation after warm-up.
//   - AutoLU / AutoCLU front the whole thing with a per-factor pattern
//     scan, a small symbolic cache, and numeric guards (tiny static
//     pivot, element growth) that fall back to the dense partial-pivot
//     factorization when the static ordering goes numerically bad.
//
// Determinism matters more than cleverness here: the symbolic analysis
// is a pure function of the scanned pattern, and the guards are pure
// functions of the matrix values, so two evaluators handed bit-identical
// matrices (the legacy evaluator and the compiled plan) always take the
// same path and produce bit-identical results.

// errSparseGuard is the internal signal that a numeric guard rejected
// the static ordering for this matrix; callers fall back to dense LU.
var errSparseGuard = errors.New("linalg: sparse factorization guard tripped")

const (
	// sparseTinyPivot rejects a static pivot too small to divide by.
	sparseTinyPivot = 1e-300
	// sparsePivRel rejects pivots at roundoff scale relative to the
	// matrix: a rank-deficient matrix eliminated in a different pivot
	// order leaves a ~eps·‖A‖ pivot instead of an exact zero, and the
	// dense partial-pivot code must issue the singularity verdict so
	// both paths agree. Legitimate MNA pivots (gmin ties ~1e-12 against
	// device conductances ~1e-3) sit many decades above this.
	sparsePivRel = 1e-14
	// sparseGrowthLimit rejects factorizations whose element growth says
	// the structural pivot order was numerically bad for these values.
	sparseGrowthLimit = 1e6
	// symCacheCap bounds the per-factorizer symbolic cache. Patterns per
	// deck number a handful (device conductances occasionally evaluate
	// to exactly zero and drop stamps), so a tiny MRU cache suffices.
	symCacheCap = 8
)

// Pattern is the set of nonzero positions of a square dense matrix,
// stored as sorted row-major flat indices. The zero value is ready to
// use; Scan reuses the backing array.
type Pattern struct {
	N   int
	Pos []int32
}

// Scan fills p with the nonzero positions of a.
func (p *Pattern) Scan(a *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: Pattern.Scan requires a square matrix")
	}
	p.N = a.Rows
	p.Pos = p.Pos[:0]
	for i, v := range a.Data {
		if v != 0 {
			p.Pos = append(p.Pos, int32(i))
		}
	}
}

// ScanComplex fills p with the nonzero positions of a.
func (p *Pattern) ScanComplex(a *CMatrix) {
	if a.Rows != a.Cols {
		panic("linalg: Pattern.ScanComplex requires a square matrix")
	}
	p.N = a.Rows
	p.Pos = p.Pos[:0]
	for i, v := range a.Data {
		if v != 0 {
			p.Pos = append(p.Pos, int32(i))
		}
	}
}

// Set fills p from an explicit position list (used by compile-time
// structural analysis). Positions must be sorted and in range.
func (p *Pattern) Set(n int, pos []int32) {
	p.N = n
	p.Pos = append(p.Pos[:0], pos...)
}

// Equal reports whether p and q describe the same pattern.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.N != q.N || len(p.Pos) != len(q.Pos) {
		return false
	}
	for i, v := range p.Pos {
		if q.Pos[i] != v {
			return false
		}
	}
	return true
}

// clone returns an independent copy (for cache keys).
func (p *Pattern) clone() Pattern {
	return Pattern{N: p.N, Pos: append([]int32(nil), p.Pos...)}
}

// FactorStats describes the last factorization a solver performed, for
// benchmark attribution (cmd/benchjson matrix stats).
type FactorStats struct {
	Rows    int  // matrix dimension
	NNZ     int  // structural nonzeros of A
	FillNNZ int  // nonzeros of L+U including fill-in
	Flops   int  // multiply-subtract ops per numeric factorization
	Sparse  bool // false → dense path (fallback or no symbolic)
}

// Symbolic is the result of structural elimination on one Pattern: a
// fill-reducing pivot order and the flat index programs that replay the
// numeric factorization and triangular solves. It is immutable after
// construction and safe to share between goroutines.
type Symbolic struct {
	n   int
	pat Pattern

	scatter []int32 // pattern nz t → packed factor index
	lunnz   int     // packed factor storage size (L+U incl fill)
	flops   int

	pivIdx []int32 // per step: packed index of the pivot

	// Factor program, per step k: first scale the L column by 1/pivot,
	// then apply every (target -= l·u) update.
	lIdx, lRow       []int32 // L column entries: packed index, permuted row
	lPtr             []int32 // n+1 offsets into lIdx/lRow
	uIdx, uCol       []int32 // U row entries: packed index, permuted col
	uPtr             []int32 // n+1 offsets into uIdx/uCol
	mulT, mulL, mulU []int32 // update triples
	mulPtr           []int32 // n+1 offsets into mulT/mulL/mulU

	rowPerm []int32 // step k eliminates original row rowPerm[k]
	colPerm []int32 // step k eliminates original col colPerm[k]
}

// NewSymbolic runs the structural full-Markowitz elimination on p and
// returns the replay programs, or nil when the pattern is structurally
// singular (no complete pivot sequence exists) and the caller must use
// dense factorization.
func NewSymbolic(p *Pattern) *Symbolic {
	n := p.N
	if n == 0 {
		return nil
	}
	occ := make([]bool, n*n)
	for _, pos := range p.Pos {
		occ[pos] = true
	}
	rowCnt := make([]int, n)
	colCnt := make([]int, n)
	for _, pos := range p.Pos {
		rowCnt[pos/int32(n)]++
		colCnt[pos%int32(n)]++
	}
	rowActive := make([]bool, n)
	colActive := make([]bool, n)
	for i := range rowActive {
		rowActive[i] = true
		colActive[i] = true
	}
	rowPerm := make([]int32, n)
	colPerm := make([]int32, n)

	for k := 0; k < n; k++ {
		// Markowitz pivot: minimize (rowCnt-1)·(colCnt-1) over active
		// nonzeros, ties broken by smallest (row, col) for determinism.
		bestR, bestC, bestM := -1, -1, 0
		for r := 0; r < n; r++ {
			if !rowActive[r] {
				continue
			}
			row := occ[r*n : r*n+n]
			for c := 0; c < n; c++ {
				if !colActive[c] || !row[c] {
					continue
				}
				m := (rowCnt[r] - 1) * (colCnt[c] - 1)
				if bestR < 0 || m < bestM {
					bestR, bestC, bestM = r, c, m
				}
			}
		}
		if bestR < 0 {
			return nil // structurally singular
		}
		r, c := bestR, bestC
		rowPerm[k], colPerm[k] = int32(r), int32(c)
		// Fill: every active (i, j) with A[i,c] and A[r,j] nonzero gains
		// an entry.
		for i := 0; i < n; i++ {
			if i == r || !rowActive[i] || !occ[i*n+c] {
				continue
			}
			for j := 0; j < n; j++ {
				if j == c || !colActive[j] || !occ[r*n+j] {
					continue
				}
				if !occ[i*n+j] {
					occ[i*n+j] = true
					rowCnt[i]++
					colCnt[j]++
				}
			}
		}
		// Retire the pivot row and column from the active submatrix.
		rowActive[r] = false
		colActive[c] = false
		for j := 0; j < n; j++ {
			if colActive[j] && occ[r*n+j] {
				colCnt[j]--
			}
			if rowActive[j] && occ[j*n+c] {
				rowCnt[j]--
			}
		}
	}

	// Pack the filled pattern in permuted row-major order.
	prow := make([]int32, n)
	pcol := make([]int32, n)
	for k := 0; k < n; k++ {
		prow[rowPerm[k]] = int32(k)
		pcol[colPerm[k]] = int32(k)
	}
	permIdx := make([]int32, n*n)
	for i := range permIdx {
		permIdx[i] = -1
	}
	idx := int32(0)
	for pk := 0; pk < n; pk++ {
		r := rowPerm[pk]
		for pj := 0; pj < n; pj++ {
			if occ[int(r)*n+int(colPerm[pj])] {
				permIdx[pk*n+pj] = idx
				idx++
			}
		}
	}

	s := &Symbolic{
		n:       n,
		pat:     p.clone(),
		lunnz:   int(idx),
		pivIdx:  make([]int32, n),
		lPtr:    make([]int32, n+1),
		uPtr:    make([]int32, n+1),
		mulPtr:  make([]int32, n+1),
		rowPerm: rowPerm,
		colPerm: colPerm,
		scatter: make([]int32, len(p.Pos)),
	}
	for t, pos := range p.Pos {
		i, j := int(pos)/n, int(pos)%n
		s.scatter[t] = permIdx[int(prow[i])*n+int(pcol[j])]
	}
	for k := 0; k < n; k++ {
		s.pivIdx[k] = permIdx[k*n+k]
		s.lPtr[k] = int32(len(s.lIdx))
		for i := k + 1; i < n; i++ {
			if fi := permIdx[i*n+k]; fi >= 0 {
				s.lIdx = append(s.lIdx, fi)
				s.lRow = append(s.lRow, int32(i))
			}
		}
		s.lPtr[k+1] = int32(len(s.lIdx))
		s.uPtr[k] = int32(len(s.uIdx))
		for j := k + 1; j < n; j++ {
			if fj := permIdx[k*n+j]; fj >= 0 {
				s.uIdx = append(s.uIdx, fj)
				s.uCol = append(s.uCol, int32(j))
			}
		}
		s.uPtr[k+1] = int32(len(s.uIdx))
		s.mulPtr[k] = int32(len(s.mulT))
		for li := s.lPtr[k]; li < s.lPtr[k+1]; li++ {
			i := int(s.lRow[li])
			lv := s.lIdx[li]
			for ui := s.uPtr[k]; ui < s.uPtr[k+1]; ui++ {
				j := int(s.uCol[ui])
				s.mulT = append(s.mulT, permIdx[i*n+j])
				s.mulL = append(s.mulL, lv)
				s.mulU = append(s.mulU, s.uIdx[ui])
			}
		}
		s.mulPtr[k+1] = int32(len(s.mulT))
	}
	s.flops = len(s.mulT)
	return s
}

// Stats describes the factorization this symbolic analysis produces.
func (s *Symbolic) Stats() FactorStats {
	return FactorStats{
		Rows:    s.n,
		NNZ:     len(s.pat.Pos),
		FillNNZ: s.lunnz,
		Flops:   s.flops,
		Sparse:  true,
	}
}

// Pattern returns the pattern the analysis was built from.
func (s *Symbolic) Pattern() *Pattern { return &s.pat }

// symCache is a tiny MRU cache of symbolic analyses keyed by pattern.
type symCache struct {
	entries []symEntry
}

type symEntry struct {
	pat Pattern
	sym *Symbolic // nil: pattern known structurally singular → dense
}

// lookup returns the cached analysis for p, computing and caching it on
// a miss. ok is false when the pattern is structurally singular.
func (c *symCache) lookup(p *Pattern) (sym *Symbolic, ok bool) {
	for i := range c.entries {
		e := &c.entries[i]
		if e.pat.Equal(p) {
			return e.sym, e.sym != nil
		}
	}
	sym = NewSymbolic(p)
	if len(c.entries) >= symCacheCap {
		copy(c.entries, c.entries[1:])
		c.entries = c.entries[:symCacheCap-1]
	}
	c.entries = append(c.entries, symEntry{pat: p.clone(), sym: sym})
	return sym, sym != nil
}

// prime inserts a precomputed analysis (compile-time structural
// priming) unless its pattern is already cached.
func (c *symCache) prime(sym *Symbolic) {
	if sym == nil {
		return
	}
	for i := range c.entries {
		if c.entries[i].pat.Equal(&sym.pat) {
			return
		}
	}
	c.entries = append(c.entries, symEntry{pat: sym.pat.clone(), sym: sym})
}

// SymCache is an exported handle on the per-factorizer symbolic cache
// for callers that manage symbolics across solver instances (the AWE
// batch engine shares one skeleton across K lane factorizers). Lookup
// is the same pure pattern → analysis function AutoLU uses internally,
// so a batch replay against a SymCache symbolic is bit-identical to a
// scalar AutoLU replay of the same matrix.
type SymCache struct{ c symCache }

// Lookup returns the symbolic analysis for p, computing and caching it
// on a miss; ok is false when p is structurally singular (negative
// results are cached too).
func (s *SymCache) Lookup(p *Pattern) (sym *Symbolic, ok bool) { return s.c.lookup(p) }

// Prime inserts a precomputed analysis (compile-time structural
// priming).
func (s *SymCache) Prime(sym *Symbolic) { s.c.prime(sym) }

// SparseLU replays a Symbolic's factor and solve programs over packed
// real numeric storage.
type SparseLU struct {
	sym    *Symbolic
	v      []float64
	pivInv []float64
	w      []float64
}

// reset points the numeric storage at sym, reallocating only on growth.
func (f *SparseLU) reset(sym *Symbolic) {
	f.sym = sym
	if cap(f.v) < sym.lunnz {
		f.v = make([]float64, sym.lunnz)
	}
	f.v = f.v[:sym.lunnz]
	if cap(f.pivInv) < sym.n {
		f.pivInv = make([]float64, sym.n)
		f.w = make([]float64, sym.n)
	}
	f.pivInv = f.pivInv[:sym.n]
	f.w = f.w[:sym.n]
}

// Factor scatters a's nonzeros (which must match the symbolic pattern)
// into packed storage and replays the factor program. It returns
// errSparseGuard when a numeric guard rejects the static pivot order.
func (f *SparseLU) Factor(a *Matrix) error {
	s := f.sym
	v := f.v
	for i := range v {
		v[i] = 0
	}
	maxA := 0.0
	for t, pos := range s.pat.Pos {
		x := a.Data[pos]
		v[s.scatter[t]] = x
		if ax := math.Abs(x); ax > maxA {
			maxA = ax
		}
	}
	for k := 0; k < s.n; k++ {
		piv := v[s.pivIdx[k]]
		apiv := math.Abs(piv)
		if !(apiv >= sparseTinyPivot && apiv >= sparsePivRel*maxA) { // catches 0 and NaN
			return errSparseGuard
		}
		inv := 1 / piv
		f.pivInv[k] = inv
		for _, d := range s.lIdx[s.lPtr[k]:s.lPtr[k+1]] {
			v[d] *= inv
		}
		mt := s.mulT[s.mulPtr[k]:s.mulPtr[k+1]]
		ml := s.mulL[s.mulPtr[k]:s.mulPtr[k+1]]
		mu := s.mulU[s.mulPtr[k]:s.mulPtr[k+1]]
		for o, t := range mt {
			v[t] -= v[ml[o]] * v[mu[o]]
		}
	}
	// Element-growth guard: large growth means the static order was
	// numerically bad for these values (the negated comparison also
	// catches NaN); the caller falls back to dense partial pivoting.
	maxU := 0.0
	for _, x := range v {
		if ax := math.Abs(x); ax > maxU {
			maxU = ax
		}
	}
	if !(maxU <= sparseGrowthLimit*maxA) {
		return errSparseGuard
	}
	return nil
}

// SolveInPlace solves A·x = b overwriting b, replaying the substitution
// programs over the packed factors.
func (f *SparseLU) SolveInPlace(b []float64) {
	s := f.sym
	w := f.w
	for k, r := range s.rowPerm {
		w[k] = b[r]
	}
	for k := 0; k < s.n; k++ {
		bk := w[k]
		if bk == 0 {
			continue
		}
		rows := s.lRow[s.lPtr[k]:s.lPtr[k+1]]
		idxs := s.lIdx[s.lPtr[k]:s.lPtr[k+1]]
		for o, r := range rows {
			w[r] -= f.v[idxs[o]] * bk
		}
	}
	for k := s.n - 1; k >= 0; k-- {
		sum := w[k]
		cols := s.uCol[s.uPtr[k]:s.uPtr[k+1]]
		idxs := s.uIdx[s.uPtr[k]:s.uPtr[k+1]]
		for o, c := range cols {
			sum -= f.v[idxs[o]] * w[c]
		}
		w[k] = sum * f.pivInv[k]
	}
	for k, c := range s.colPerm {
		b[c] = w[k]
	}
}

// AutoLU is the adaptive real factorizer used on evaluation hot paths:
// each Factor scans the matrix pattern, reuses (or builds and caches)
// the matching symbolic analysis, and replays the sparse numeric
// program, falling back to dense partial-pivot LU when the pattern is
// structurally singular or a numeric guard trips. Solves dispatch to
// whichever factorization Factor produced, so AutoLU is a drop-in
// replacement for LU in Factor/Solve call sites. Its API mirrors LU:
// after warm-up no call allocates.
type AutoLU struct {
	dense  LU
	sp     SparseLU
	scan   Pattern
	cache  symCache
	sparse bool // which factorization is current

	denseFactors  uint64
	sparseFactors uint64
}

// Prime seeds the symbolic cache (typically from compile-time
// structural analysis) so the first Factor already hits.
func (f *AutoLU) Prime(sym *Symbolic) { f.cache.prime(sym) }

// Factor factors a, choosing the sparse replay or the dense fallback.
// The choice is a deterministic function of a's values, so two solvers
// handed bit-identical matrices factor identically.
func (f *AutoLU) Factor(a *Matrix) error {
	f.scan.Scan(a)
	sym, ok := f.cache.lookup(&f.scan)
	if ok {
		f.sp.reset(sym)
		if err := f.sp.Factor(a); err == nil {
			f.sparse = true
			f.sparseFactors++
			return nil
		}
	}
	f.sparse = false
	f.denseFactors++
	return f.dense.Factor(a)
}

// SolveInPlace solves A·x = b overwriting b.
func (f *AutoLU) SolveInPlace(b []float64) {
	if f.sparse {
		f.sp.SolveInPlace(b)
	} else {
		f.dense.SolveInPlace(b)
	}
}

// SolveInto solves A·x = b writing x into dst; dst may alias b.
func (f *AutoLU) SolveInto(dst, b []float64) {
	if len(dst) != len(b) {
		panic("linalg: AutoLU.SolveInto dimension mismatch")
	}
	copy(dst, b)
	f.SolveInPlace(dst)
}

// Sparse reports whether the last Factor used the sparse path.
func (f *AutoLU) Sparse() bool { return f.sparse }

// Stats describes the last factorization.
func (f *AutoLU) Stats() FactorStats {
	if f.sparse {
		return f.sp.sym.Stats()
	}
	n := f.scan.N
	return FactorStats{Rows: n, NNZ: len(f.scan.Pos), FillNNZ: n * n, Flops: n * n * n / 3}
}

// Counts returns how many factorizations took each path.
func (f *AutoLU) Counts() (sparse, dense uint64) { return f.sparseFactors, f.denseFactors }

// SparseCLU replays a Symbolic's programs over complex numeric storage
// (the AC-analysis (G + jωC) system shares one pattern across ω).
type SparseCLU struct {
	sym    *Symbolic
	v      []complex128
	pivInv []complex128
	w      []complex128
}

func (f *SparseCLU) reset(sym *Symbolic) {
	f.sym = sym
	if cap(f.v) < sym.lunnz {
		f.v = make([]complex128, sym.lunnz)
	}
	f.v = f.v[:sym.lunnz]
	if cap(f.pivInv) < sym.n {
		f.pivInv = make([]complex128, sym.n)
		f.w = make([]complex128, sym.n)
	}
	f.pivInv = f.pivInv[:sym.n]
	f.w = f.w[:sym.n]
}

// cmag is a cheap complex magnitude for guard comparisons (within √2 of
// the 2-norm, which the order-of-magnitude guards don't care about).
func cmag(z complex128) float64 { return math.Abs(real(z)) + math.Abs(imag(z)) }

// Factor is the complex counterpart of SparseLU.Factor.
func (f *SparseCLU) Factor(a *CMatrix) error {
	s := f.sym
	v := f.v
	for i := range v {
		v[i] = 0
	}
	maxA := 0.0
	for t, pos := range s.pat.Pos {
		x := a.Data[pos]
		v[s.scatter[t]] = x
		if ax := cmag(x); ax > maxA {
			maxA = ax
		}
	}
	for k := 0; k < s.n; k++ {
		piv := v[s.pivIdx[k]]
		apiv := cmag(piv)
		if !(apiv >= sparseTinyPivot && apiv >= sparsePivRel*maxA) {
			return errSparseGuard
		}
		inv := 1 / piv
		f.pivInv[k] = inv
		for _, d := range s.lIdx[s.lPtr[k]:s.lPtr[k+1]] {
			v[d] *= inv
		}
		mt := s.mulT[s.mulPtr[k]:s.mulPtr[k+1]]
		ml := s.mulL[s.mulPtr[k]:s.mulPtr[k+1]]
		mu := s.mulU[s.mulPtr[k]:s.mulPtr[k+1]]
		for o, t := range mt {
			v[t] -= v[ml[o]] * v[mu[o]]
		}
	}
	maxU := 0.0
	for _, x := range v {
		if ax := cmag(x); ax > maxU {
			maxU = ax
		}
	}
	if !(maxU <= sparseGrowthLimit*maxA) {
		return errSparseGuard
	}
	return nil
}

// SolveInPlace solves A·x = b overwriting b.
func (f *SparseCLU) SolveInPlace(b []complex128) {
	s := f.sym
	w := f.w
	for k, r := range s.rowPerm {
		w[k] = b[r]
	}
	for k := 0; k < s.n; k++ {
		bk := w[k]
		if bk == 0 {
			continue
		}
		rows := s.lRow[s.lPtr[k]:s.lPtr[k+1]]
		idxs := s.lIdx[s.lPtr[k]:s.lPtr[k+1]]
		for o, r := range rows {
			w[r] -= f.v[idxs[o]] * bk
		}
	}
	for k := s.n - 1; k >= 0; k-- {
		sum := w[k]
		cols := s.uCol[s.uPtr[k]:s.uPtr[k+1]]
		idxs := s.uIdx[s.uPtr[k]:s.uPtr[k+1]]
		for o, c := range cols {
			sum -= f.v[idxs[o]] * w[c]
		}
		w[k] = sum * f.pivInv[k]
	}
	for k, c := range s.colPerm {
		b[c] = w[k]
	}
}

// AutoCLU is the complex counterpart of AutoLU (AC sweeps factor
// (G + jωC) per frequency against one cached symbolic analysis).
type AutoCLU struct {
	dense  CLU
	sp     SparseCLU
	scan   Pattern
	cache  symCache
	sparse bool

	denseFactors  uint64
	sparseFactors uint64
}

// Prime seeds the symbolic cache.
func (f *AutoCLU) Prime(sym *Symbolic) { f.cache.prime(sym) }

// Factor factors a, preferring the sparse replay.
func (f *AutoCLU) Factor(a *CMatrix) error {
	f.scan.ScanComplex(a)
	sym, ok := f.cache.lookup(&f.scan)
	if ok {
		f.sp.reset(sym)
		if err := f.sp.Factor(a); err == nil {
			f.sparse = true
			f.sparseFactors++
			return nil
		}
	}
	f.sparse = false
	f.denseFactors++
	return f.dense.Factor(a)
}

// SolveInPlace solves A·x = b overwriting b.
func (f *AutoCLU) SolveInPlace(b []complex128) {
	if f.sparse {
		f.sp.SolveInPlace(b)
	} else {
		f.dense.SolveInPlace(b)
	}
}

// SolveInto solves A·x = b writing x into dst; dst may alias b.
func (f *AutoCLU) SolveInto(dst, b []complex128) {
	if len(dst) != len(b) {
		panic("linalg: AutoCLU.SolveInto dimension mismatch")
	}
	copy(dst, b)
	f.SolveInPlace(dst)
}

// Sparse reports whether the last Factor used the sparse path.
func (f *AutoCLU) Sparse() bool { return f.sparse }

// Counts returns how many factorizations took each path.
func (f *AutoCLU) Counts() (sparse, dense uint64) { return f.sparseFactors, f.denseFactors }

// SparseBatchLU factors and solves K candidate matrices sharing one
// symbolic skeleton, with structure-of-arrays numeric storage: lane k of
// packed entry e lives at v[e*K+k], so every replayed op streams K
// contiguous values. Each lane's arithmetic is the exact op sequence of
// the scalar SparseLU, so per-lane results are bit-identical to the
// scalar path. Lanes whose numeric guards trip are masked out (Lane
// reports false) and must be handled by the caller on the scalar path.
type SparseBatchLU struct {
	sym    *Symbolic
	k      int
	v      []float64
	pivInv []float64
	ok     []bool
	inv    []float64 // per-step per-lane pivot reciprocal scratch
	w      []float64 // SoA solve scratch, n·K
	maxA   []float64
	maxU   []float64
}

// NewSparseBatchLU returns a K-lane batch factorizer over sym.
func NewSparseBatchLU(sym *Symbolic, k int) *SparseBatchLU {
	return &SparseBatchLU{
		sym:    sym,
		k:      k,
		v:      make([]float64, sym.lunnz*k),
		pivInv: make([]float64, sym.n*k),
		ok:     make([]bool, k),
		inv:    make([]float64, k),
		w:      make([]float64, sym.n*k),
		maxA:   make([]float64, k),
		maxU:   make([]float64, k),
	}
}

// K returns the lane count.
func (f *SparseBatchLU) K() int { return f.k }

// Symbolic returns the shared skeleton.
func (f *SparseBatchLU) Symbolic() *Symbolic { return f.sym }

// Lane reports whether lane k factored cleanly.
func (f *SparseBatchLU) Lane(k int) bool { return f.ok[k] }

// FactorAll factors as[0..K-1] (each must match the symbolic pattern;
// nil lanes are skipped and masked). Guard-tripped lanes are masked with
// their in-progress values zeroed so they cannot pollute later SoA ops
// with NaN/Inf slow paths.
func (f *SparseBatchLU) FactorAll(as []*Matrix) {
	s, K := f.sym, f.k
	v := f.v
	for i := range v {
		v[i] = 0
	}
	for lane := 0; lane < K; lane++ {
		f.ok[lane] = lane < len(as) && as[lane] != nil
		f.maxA[lane] = 0
		f.maxU[lane] = 0
	}
	for t, pos := range s.pat.Pos {
		base := int(s.scatter[t]) * K
		for lane := 0; lane < K; lane++ {
			if !f.ok[lane] {
				continue
			}
			x := as[lane].Data[pos]
			v[base+lane] = x
			if ax := math.Abs(x); ax > f.maxA[lane] {
				f.maxA[lane] = ax
			}
		}
	}
	for k := 0; k < s.n; k++ {
		pb := int(s.pivIdx[k]) * K
		for lane := 0; lane < K; lane++ {
			piv := v[pb+lane]
			apiv := math.Abs(piv)
			if f.ok[lane] && apiv >= sparseTinyPivot && apiv >= sparsePivRel*f.maxA[lane] {
				f.inv[lane] = 1 / piv
			} else {
				// A dead lane factors on zeros: every later op stays a
				// cheap finite no-op instead of spreading NaN.
				f.ok[lane] = false
				f.inv[lane] = 0
			}
			f.pivInv[k*K+lane] = f.inv[lane]
		}
		for _, d := range s.lIdx[s.lPtr[k]:s.lPtr[k+1]] {
			db := int(d) * K
			for lane := 0; lane < K; lane++ {
				v[db+lane] *= f.inv[lane]
			}
		}
		mt := s.mulT[s.mulPtr[k]:s.mulPtr[k+1]]
		ml := s.mulL[s.mulPtr[k]:s.mulPtr[k+1]]
		mu := s.mulU[s.mulPtr[k]:s.mulPtr[k+1]]
		for o, t := range mt {
			tb, lb, ub := int(t)*K, int(ml[o])*K, int(mu[o])*K
			for lane := 0; lane < K; lane++ {
				v[tb+lane] -= v[lb+lane] * v[ub+lane]
			}
		}
	}
	for i, x := range v {
		lane := i % K
		if ax := math.Abs(x); ax > f.maxU[lane] {
			f.maxU[lane] = ax
		}
	}
	for lane := 0; lane < K; lane++ {
		if f.ok[lane] && !(f.maxU[lane] <= sparseGrowthLimit*f.maxA[lane]) {
			f.ok[lane] = false
		}
	}
}

// SolveAll solves A·x = b for every lane in place. b is SoA: lane k of
// row i at b[i*K+k]. Each lane replays the exact scalar substitution op
// sequence; masked lanes produce bounded garbage the caller ignores.
func (f *SparseBatchLU) SolveAll(b []float64) {
	s, K := f.sym, f.k
	if len(b) != s.n*K {
		panic("linalg: SparseBatchLU.SolveAll dimension mismatch")
	}
	w := f.w
	for k, r := range s.rowPerm {
		copy(w[k*K:k*K+K], b[int(r)*K:int(r)*K+K])
	}
	for k := 0; k < s.n; k++ {
		kb := k * K
		rows := s.lRow[s.lPtr[k]:s.lPtr[k+1]]
		idxs := s.lIdx[s.lPtr[k]:s.lPtr[k+1]]
		for o, r := range rows {
			rb, vb := int(r)*K, int(idxs[o])*K
			for lane := 0; lane < K; lane++ {
				w[rb+lane] -= f.v[vb+lane] * w[kb+lane]
			}
		}
	}
	for k := s.n - 1; k >= 0; k-- {
		kb := k * K
		cols := s.uCol[s.uPtr[k]:s.uPtr[k+1]]
		idxs := s.uIdx[s.uPtr[k]:s.uPtr[k+1]]
		for o, c := range cols {
			cb, vb := int(c)*K, int(idxs[o])*K
			for lane := 0; lane < K; lane++ {
				w[kb+lane] -= f.v[vb+lane] * w[cb+lane]
			}
		}
		for lane := 0; lane < K; lane++ {
			w[kb+lane] *= f.pivInv[kb+lane]
		}
	}
	for k, c := range s.colPerm {
		copy(b[int(c)*K:int(c)*K+K], w[k*K:k*K+K])
	}
}
