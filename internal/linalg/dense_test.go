package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4.5)
	m.Add(1, 2, 0.5)
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := m.At(1, 2); got != -4 {
		t.Errorf("At(1,2) = %v, want -4", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares backing storage with original")
	}
	m.Zero()
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero left element %d = %v", i, v)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong length did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorLU(a); err == nil {
		t.Error("FactorLU on singular matrix returned nil error")
	}
	z := NewMatrix(3, 3) // all-zero row triggers the scaling check
	if _, err := FactorLU(z); err == nil {
		t.Error("FactorLU on zero matrix returned nil error")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-24) > 1e-12 {
		t.Errorf("Det = %v, want 24", d)
	}
	// Swap two rows: determinant flips sign.
	a.Set(0, 0, 0)
	a.Set(0, 1, 3)
	a.Set(1, 1, 0)
	a.Set(1, 0, 2)
	f, err = FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d+24) > 1e-12 {
		t.Errorf("Det after row swap = %v, want -24", d)
	}
}

// randomDiagDominant builds a random strictly diagonally dominant matrix,
// which is guaranteed nonsingular — ideal for property tests.
func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

// Property: for any diagonally dominant A and any x, Solve(A, A·x)
// recovers x to high relative accuracy.
func TestLUSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomDiagDominant(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		scale := VecNormInf(x) + 1
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8*scale {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: det(P·A) where a row permutation is applied only changes sign.
func TestLUSolveMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(15) + 2
		a := randomDiagDominant(rng, n)
		f, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := f.Solve(b)
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-9*(VecNormInf(b)+1) {
				t.Fatalf("trial %d: residual %v at row %d", trial, back[i]-b[i], i)
			}
		}
	}
}

func TestSolveInPlaceNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDiagDominant(rng, 30)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.SolveInPlace(b)
	})
	if allocs != 0 {
		t.Errorf("SolveInPlace allocates %v times per run, want 0", allocs)
	}
}

func TestVecNorms(t *testing.T) {
	v := []float64{3, -4}
	if n := Vec2Norm(v); math.Abs(n-5) > 1e-15 {
		t.Errorf("Vec2Norm = %v, want 5", n)
	}
	if n := VecNormInf(v); n != 4 {
		t.Errorf("VecNormInf = %v, want 4", n)
	}
	if n := VecNormInf(nil); n != 0 {
		t.Errorf("VecNormInf(nil) = %v, want 0", n)
	}
}

// Regression: matrices that force row pivoting (zero diagonals) exposed a
// bug where permutation swaps were interleaved with forward elimination.
func TestLUPivotHeavy(t *testing.T) {
	a := NewMatrix(4, 4)
	rows := [][]float64{
		{0, 0, 1, 0},
		{0, 1e-3, 0, 1},
		{1, 0, 0, 0},
		{-5, 1, 0, 0},
	}
	for i := range rows {
		for j := range rows[i] {
			a.Set(i, j, rows[i][j])
		}
	}
	x, err := SolveLinear(a, []float64{0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 5, 0, -5e-3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

// Property: residual check on fully random (not diagonally dominant)
// matrices, which exercise pivoting aggressively.
func TestLURandomGeneralResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(25) + 2
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Zero a few entries (including diagonals) to force permutations.
		for z := 0; z < n/2; z++ {
			a.Set(rng.Intn(n), rng.Intn(n), 0)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := FactorLU(a)
		if err != nil {
			continue // singular by chance; skip
		}
		x := f.Solve(b)
		r := a.MulVec(x)
		for i := range b {
			if math.Abs(r[i]-b[i]) > 1e-7 {
				t.Fatalf("trial %d: residual %g at row %d (n=%d)", trial, r[i]-b[i], i, n)
			}
		}
	}
}

func TestMulVecInto(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	dst := make([]float64, 2)
	m.MulVecInto(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVecInto = %v", dst)
	}
	allocs := testing.AllocsPerRun(50, func() { m.MulVecInto(dst, []float64{1, 1}) })
	_ = allocs // the literal slice allocates; the method itself must not panic
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch must panic")
		}
	}()
	m.MulVecInto(dst, []float64{1})
}
