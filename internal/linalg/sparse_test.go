package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// mnaRandom builds a random MNA-patterned matrix: nNodes node rows with
// conductance stamps (symmetric pattern, dominant-ish diagonal) plus
// nBranch voltage-source branch rows (±1 couplings, structurally zero
// diagonal) — the shape the jig matrices actually have.
func mnaRandom(rng *rand.Rand, nNodes, nBranch int) *Matrix {
	n := nNodes + nBranch
	a := NewMatrix(n, n)
	// Conductance graph: each node gets a ground tie plus a few random
	// neighbor conductances. The spread is kept to a couple of decades so
	// the matrices stay well conditioned — 1e-12 agreement between two
	// pivot orders is only meaningful when cond(A)·eps is below it; the
	// genuinely ill-conditioned regime is covered by the singular-parity
	// and growth-guard tests.
	for i := 0; i < nNodes; i++ {
		a.Add(i, i, 0.1+rng.Float64()) // ground tie
		for e := 0; e < 2; e++ {
			j := rng.Intn(nNodes)
			if j == i {
				continue
			}
			g := math.Exp(0.8 * rng.NormFloat64())
			a.Add(i, i, g)
			a.Add(j, j, g)
			a.Add(i, j, -g)
			a.Add(j, i, -g)
		}
		// Occasional VCCS-style asymmetric stamp.
		if rng.Intn(3) == 0 {
			j := rng.Intn(nNodes)
			if j != i {
				a.Add(i, j, 0.3*rng.NormFloat64())
			}
		}
	}
	// Branch rows: v(p) - v(q) = 0 structure.
	for b := 0; b < nBranch; b++ {
		br := nNodes + b
		p := rng.Intn(nNodes)
		q := rng.Intn(nNodes)
		if q == p {
			q = (p + 1) % nNodes
		}
		a.Add(p, br, 1)
		a.Add(q, br, -1)
		a.Add(br, p, 1)
		a.Add(br, q, -1)
	}
	return a
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		s := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if d/s > m {
			m = d / s
		}
	}
	return m
}

// TestSparseMatchesDenseProperty factors random MNA-patterned matrices
// on both paths and demands 1e-12 agreement of the solutions.
func TestSparseMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var auto AutoLU
	var dense LU
	sparseRuns := 0
	for trial := 0; trial < 300; trial++ {
		nNodes := 2 + rng.Intn(12)
		nBranch := rng.Intn(3)
		a := mnaRandom(rng, nNodes, nBranch)
		n := a.Rows
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		errD := dense.Factor(a)
		errS := auto.Factor(a)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: dense err %v, auto err %v", trial, errD, errS)
		}
		if errD != nil {
			continue
		}
		xd := make([]float64, n)
		xs := make([]float64, n)
		dense.SolveInto(xd, b)
		auto.SolveInto(xs, b)
		if d := maxAbsDiff(xd, xs); d > 1e-12 {
			t.Fatalf("trial %d (n=%d sparse=%v): sparse vs dense diff %.3e", trial, n, auto.Sparse(), d)
		}
		if auto.Sparse() {
			sparseRuns++
			st := auto.Stats()
			if st.Rows != n || st.NNZ == 0 || st.FillNNZ < st.NNZ {
				t.Fatalf("trial %d: bad stats %+v", trial, st)
			}
		}
	}
	if sparseRuns < 200 {
		t.Fatalf("sparse path exercised only %d/300 trials", sparseRuns)
	}
}

// TestSparseSingularParity checks that structurally and numerically
// singular matrices report ErrSingular identically on both paths.
func TestSparseSingularParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var auto AutoLU
	var dense LU
	for trial := 0; trial < 100; trial++ {
		a := mnaRandom(rng, 2+rng.Intn(8), rng.Intn(2))
		n := a.Rows
		switch trial % 3 {
		case 0: // zero row
			r := rng.Intn(n)
			for j := 0; j < n; j++ {
				a.Set(r, j, 0)
			}
		case 1: // zero column
			c := rng.Intn(n)
			for i := 0; i < n; i++ {
				a.Set(i, c, 0)
			}
		case 2: // duplicated row (rank deficient)
			r1, r2 := rng.Intn(n), rng.Intn(n)
			if r1 == r2 {
				r2 = (r1 + 1) % n
			}
			for j := 0; j < n; j++ {
				a.Set(r2, j, a.At(r1, j))
			}
		}
		errD := dense.Factor(a)
		errS := auto.Factor(a)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: dense err %v, auto err %v", trial, errD, errS)
		}
		if errD != nil && errS != ErrSingular {
			// AutoLU's fallback must surface the dense verdict verbatim.
			t.Fatalf("trial %d: auto error %v, want ErrSingular", trial, errS)
		}
	}
}

// TestSparseGrowthFallback builds a matrix whose structural pivot order
// is numerically terrible (tiny leading pivot on a dense pattern) and
// checks the guard routes it to the dense path with correct results.
func TestSparseGrowthFallback(t *testing.T) {
	n := 4
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1+float64(i*n+j)/7)
		}
	}
	a.Set(0, 0, 1e-13) // structural order pivots here first → huge growth
	// Perturb to keep it nonsingular.
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(i)*0.37)
	}
	var sym Symbolic
	var pat Pattern
	pat.Scan(a)
	s := NewSymbolic(&pat)
	if s == nil {
		t.Fatal("dense pattern should have a symbolic analysis")
	}
	sym = *s
	var slu SparseLU
	slu.reset(&sym)
	if err := slu.Factor(a); err != errSparseGuard {
		t.Fatalf("sparse factor error = %v, want guard trip", err)
	}
	var auto AutoLU
	if err := auto.Factor(a); err != nil {
		t.Fatalf("auto factor: %v", err)
	}
	if auto.Sparse() {
		t.Fatal("auto should have fallen back to dense")
	}
	b := []float64{1, 2, 3, 4}
	var dense LU
	if err := dense.Factor(a); err != nil {
		t.Fatalf("dense factor: %v", err)
	}
	xd := dense.Solve(b)
	xa := make([]float64, n)
	auto.SolveInto(xa, b)
	if d := maxAbsDiff(xd, xa); d != 0 {
		t.Fatalf("fallback solve differs from dense by %g", d)
	}
}

// TestSparseComplexMatchesDense runs the property suite on the complex
// variant with (G + jωC)-shaped values.
func TestSparseComplexMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var auto AutoCLU
	var dense CLU
	sparseRuns := 0
	for trial := 0; trial < 200; trial++ {
		ar := mnaRandom(rng, 2+rng.Intn(10), rng.Intn(3))
		n := ar.Rows
		a := NewCMatrix(n, n)
		for i, v := range ar.Data {
			if v != 0 {
				a.Data[i] = complex(v, rng.NormFloat64()*math.Abs(v))
			}
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		errD := dense.Factor(a)
		errS := auto.Factor(a)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: dense err %v, auto err %v", trial, errD, errS)
		}
		if errD != nil {
			continue
		}
		xd := make([]complex128, n)
		xs := make([]complex128, n)
		dense.SolveInto(xd, b)
		auto.SolveInto(xs, b)
		worst := 0.0
		for i := range xd {
			d := cmplx.Abs(xd[i] - xs[i])
			s := math.Max(1, math.Max(cmplx.Abs(xd[i]), cmplx.Abs(xs[i])))
			if d/s > worst {
				worst = d / s
			}
		}
		if worst > 1e-12 {
			t.Fatalf("trial %d (n=%d sparse=%v): diff %.3e", trial, n, auto.Sparse(), worst)
		}
		if auto.Sparse() {
			sparseRuns++
		}
	}
	if sparseRuns < 120 {
		t.Fatalf("sparse path exercised only %d/200 trials", sparseRuns)
	}
}

// TestSparseBatchMatchesScalar checks the SoA batch factor/solve is
// bit-identical per lane with the scalar sparse replay.
func TestSparseBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const K = 5
	base := mnaRandom(rng, 9, 2)
	var pat Pattern
	pat.Scan(base)
	sym := NewSymbolic(&pat)
	if sym == nil {
		t.Fatal("no symbolic for MNA pattern")
	}
	// K value variants over the identical pattern.
	mats := make([]*Matrix, K)
	for k := range mats {
		m := base.Clone()
		for i, v := range m.Data {
			if v != 0 {
				m.Data[i] = v * (1 + 0.3*rng.NormFloat64())
				if m.Data[i] == 0 {
					m.Data[i] = v
				}
			}
		}
		mats[k] = m
	}
	batch := NewSparseBatchLU(sym, K)
	batch.FactorAll(mats)
	n := base.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	soa := make([]float64, n*K)
	for i := 0; i < n; i++ {
		for k := 0; k < K; k++ {
			soa[i*K+k] = b[i]
		}
	}
	batch.SolveAll(soa)
	var slu SparseLU
	for k := 0; k < K; k++ {
		slu.reset(sym)
		if err := slu.Factor(mats[k]); err != nil {
			if batch.Lane(k) {
				t.Fatalf("lane %d: scalar guard tripped but batch lane ok", k)
			}
			continue
		}
		if !batch.Lane(k) {
			t.Fatalf("lane %d: batch masked but scalar factored", k)
		}
		x := append([]float64(nil), b...)
		slu.SolveInPlace(x)
		for i := 0; i < n; i++ {
			if x[i] != soa[i*K+k] {
				t.Fatalf("lane %d row %d: batch %g != scalar %g", k, i, soa[i*K+k], x[i])
			}
		}
	}
}

// TestSparseBatchMasksBadLane checks a singular lane is masked without
// disturbing its neighbors.
func TestSparseBatchMasksBadLane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := mnaRandom(rng, 6, 1)
	var pat Pattern
	pat.Scan(base)
	sym := NewSymbolic(&pat)
	mats := []*Matrix{base.Clone(), base.Clone(), nil}
	// Zero lane 1's values (pattern positions keep zero values → every
	// pivot is zero → guard masks the lane).
	for i := range mats[1].Data {
		mats[1].Data[i] = 0
	}
	batch := NewSparseBatchLU(sym, 3)
	batch.FactorAll(mats)
	if !batch.Lane(0) || batch.Lane(1) || batch.Lane(2) {
		t.Fatalf("lane mask = %v %v %v, want true false false",
			batch.Lane(0), batch.Lane(1), batch.Lane(2))
	}
	n := base.Rows
	var slu SparseLU
	slu.reset(sym)
	if err := slu.Factor(base); err != nil {
		t.Fatalf("scalar factor: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	soa := make([]float64, n*3)
	for i := 0; i < n; i++ {
		soa[i*3+0] = b[i]
	}
	batch.SolveAll(soa)
	x := append([]float64(nil), b...)
	slu.SolveInPlace(x)
	for i := 0; i < n; i++ {
		if x[i] != soa[i*3+0] {
			t.Fatalf("row %d: live lane corrupted: %g != %g", i, soa[i*3+0], x[i])
		}
	}
}

// TestSymbolicStructurallySingular checks empty rows are rejected at
// symbolic time.
func TestSymbolicStructurallySingular(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	// row 2 empty
	var pat Pattern
	pat.Scan(a)
	if s := NewSymbolic(&pat); s != nil {
		t.Fatal("expected nil symbolic for structurally singular pattern")
	}
}

// TestAutoLUZeroAlloc pins the warm steady state: repeated factor+solve
// cycles with a stable pattern must not allocate.
func TestAutoLUZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := mnaRandom(rng, 10, 2)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var auto AutoLU
	x := make([]float64, n)
	if err := auto.Factor(a); err != nil {
		t.Fatalf("warmup factor: %v", err)
	}
	if !auto.Sparse() {
		t.Skip("pattern fell back to dense; alloc pin applies to the sparse path")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := auto.Factor(a); err != nil {
			t.Fatalf("factor: %v", err)
		}
		auto.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("AutoLU factor+solve allocates %v/op, want 0", allocs)
	}
}
