// Package linalg provides the small dense linear-algebra kernel that the
// rest of the system builds on: real and complex dense matrices, LU
// factorization with partial pivoting, linear solves, and a polynomial
// root finder used by the AWE Padé step.
//
// Everything is written against the standard library only. Matrices are
// dense and row-major; the circuits in this reproduction have at most a
// few hundred MNA rows, for which dense LU is faster than a pointer-heavy
// sparse code and much simpler (see DESIGN.md §4).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at row i, column j (the natural operation for
// MNA stamping).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero resets every element to 0 without reallocating.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = m·x. The result slice is freshly allocated.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes dst = m·x without allocating; dst must have length
// m.Rows and must not alias x.
func (m *Matrix) MulVecInto(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVecInto dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .4e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU is an in-place LU factorization with partial pivoting of a square
// real matrix: P·A = L·U. L has implicit unit diagonal.
type LU struct {
	n     int
	lu    []float64 // packed L\U factors, row-major
	pivot []int     // row permutation
	sign  float64   // determinant sign from row swaps
	scale []float64 // equilibration scratch, reused across Factor calls
}

// FactorLU computes the LU factorization of the square matrix a. The
// input matrix is not modified. It returns ErrSingular when a pivot
// underflows a scaled tolerance.
func FactorLU(a *Matrix) (*LU, error) {
	f := new(LU)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factor recomputes the factorization of a in place, reusing the
// receiver's factor, pivot, and scaling storage. This is the
// reusable-workspace entry point for hot evaluation loops: after the
// first call no further allocation occurs for matrices of the same (or
// smaller) size. On error the receiver's previous factorization is
// invalid.
func (f *LU) Factor(a *Matrix) error {
	if a.Rows != a.Cols {
		panic("linalg: LU.Factor requires a square matrix")
	}
	n := a.Rows
	f.n = n
	if cap(f.lu) < n*n {
		f.lu = make([]float64, n*n)
		f.pivot = make([]int, n)
		f.scale = make([]float64, n)
	}
	f.lu = f.lu[:n*n]
	f.pivot = f.pivot[:n]
	f.scale = f.scale[:n]
	f.sign = 1
	copy(f.lu, a.Data)

	// Row scaling factors for implicit equilibration in pivot choice.
	scale := f.scale
	for i := 0; i < n; i++ {
		big := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(f.lu[i*n+j]); v > big {
				big = v
			}
		}
		if big == 0 {
			return ErrSingular
		}
		scale[i] = 1 / big
	}

	for k := 0; k < n; k++ {
		// Find pivot row.
		p, big := k, 0.0
		for i := k; i < n; i++ {
			v := scale[i] * math.Abs(f.lu[i*n+k])
			if v > big {
				big, p = v, i
			}
		}
		if p != k {
			rk := f.lu[k*n : k*n+n]
			rp := f.lu[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			scale[k], scale[p] = scale[p], scale[k]
			f.sign = -f.sign
		}
		f.pivot[k] = p
		piv := f.lu[k*n+k]
		if math.Abs(piv) < 1e-300 {
			return ErrSingular
		}
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] * inv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowi := f.lu[i*n+k+1 : i*n+n]
			rowk := f.lu[k*n+k+1 : k*n+n]
			for j := range rowi {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b using the factorization, overwriting nothing; the
// result is freshly allocated.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	x := make([]float64, f.n)
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInto solves A·x = b writing x into dst without allocating. dst
// and b must both have length n; dst may alias b.
func (f *LU) SolveInto(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic("linalg: LU.SolveInto dimension mismatch")
	}
	copy(dst, b)
	f.SolveInPlace(dst)
}

// SolveInPlace solves A·x = b with b overwritten by x. This is the hot
// path for AWE moment recursion, so it avoids all allocation.
func (f *LU) SolveInPlace(b []float64) {
	n := f.n
	// Apply the full row permutation first (LAPACK dgetrs order), then
	// forward-substitute against the unit-lower factor.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for k := 0; k < n; k++ {
		bk := b[k]
		if bk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu[i*n+k] * bk
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveLinear is a convenience that factors a and solves a·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// VecNormInf returns the infinity norm of v.
func VecNormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Vec2Norm returns the Euclidean norm of v.
func Vec2Norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
