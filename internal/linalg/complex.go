package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix, used for direct AC
// analysis where the MNA system is (G + jωC).
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets every element without reallocating.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CLU is an LU factorization with partial pivoting of a square complex
// matrix.
type CLU struct {
	n     int
	lu    []complex128
	pivot []int
}

// FactorCLU factors the square complex matrix a; a is not modified.
func FactorCLU(a *CMatrix) (*CLU, error) {
	f := new(CLU)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factor recomputes the factorization of a in place, reusing the
// receiver's storage (see LU.Factor).
func (f *CLU) Factor(a *CMatrix) error {
	if a.Rows != a.Cols {
		panic("linalg: CLU.Factor requires a square matrix")
	}
	n := a.Rows
	f.n = n
	if cap(f.lu) < n*n {
		f.lu = make([]complex128, n*n)
		f.pivot = make([]int, n)
	}
	f.lu = f.lu[:n*n]
	f.pivot = f.pivot[:n]
	copy(f.lu, a.Data)

	for k := 0; k < n; k++ {
		p, big := k, 0.0
		for i := k; i < n; i++ {
			if v := cmplx.Abs(f.lu[i*n+k]); v > big {
				big, p = v, i
			}
		}
		if big < 1e-300 {
			return ErrSingular
		}
		if p != k {
			rk := f.lu[k*n : k*n+n]
			rp := f.lu[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		f.pivot[k] = p
		inv := 1 / f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] * inv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowi := f.lu[i*n+k+1 : i*n+n]
			rowk := f.lu[k*n+k+1 : k*n+n]
			for j := range rowi {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b; the result is freshly allocated.
func (f *CLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("linalg: CLU.Solve dimension mismatch")
	}
	x := make([]complex128, f.n)
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInto solves A·x = b writing x into dst without allocating; dst
// may alias b.
func (f *CLU) SolveInto(dst, b []complex128) {
	if len(b) != f.n || len(dst) != f.n {
		panic("linalg: CLU.SolveInto dimension mismatch")
	}
	copy(dst, b)
	f.SolveInPlace(dst)
}

// SolveInPlace solves A·x = b overwriting b with x.
func (f *CLU) SolveInPlace(b []complex128) {
	n := f.n
	// Full row permutation first, then forward substitution (see the
	// real-valued LU for why the two loops must not be interleaved).
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for k := 0; k < n; k++ {
		bk := b[k]
		if bk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu[i*n+k] * bk
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// PolyRoots finds all complex roots of the polynomial
//
//	c[0] + c[1]·x + c[2]·x² + … + c[n]·xⁿ
//
// using the Aberth–Ehrlich simultaneous iteration, which is robust for
// the modest degrees (q ≤ 10) that AWE Padé reduction needs and
// converges cubically — a typical Padé characteristic polynomial
// finishes in under a dozen sweeps where Durand–Kerner needed several
// times that. Leading zero coefficients are trimmed. It returns an
// error when the iteration fails to converge.
func PolyRoots(c []complex128) ([]complex128, error) {
	var rf RootFinder
	return rf.Roots(c)
}

// RootFinder is a reusable-storage polynomial root finder. The zero
// value is ready to use; after the first call, Roots allocates nothing
// for polynomials of the same or smaller degree.
type RootFinder struct {
	coef  []complex128
	roots []complex128
	done  []bool
	hullX []int
	hullY []float64
}

// Roots behaves exactly like PolyRoots but reuses the receiver's
// buffers. The returned slice aliases the finder's storage and is only
// valid until the next Roots call.
func (rf *RootFinder) Roots(c []complex128) ([]complex128, error) {
	// Trim leading (highest-degree) zeros.
	deg := len(c) - 1
	for deg > 0 && c[deg] == 0 {
		deg--
	}
	if deg <= 0 {
		return nil, fmt.Errorf("linalg: PolyRoots degree %d polynomial has no roots", deg)
	}
	// Normalize to monic to improve conditioning.
	if cap(rf.coef) < deg+1 {
		rf.coef = make([]complex128, deg+1)
		rf.roots = make([]complex128, deg)
		rf.done = make([]bool, deg)
		rf.hullX = make([]int, deg+1)
		rf.hullY = make([]float64, deg+1)
	}
	coef := rf.coef[:deg+1]
	lead := c[deg]
	for i := 0; i <= deg; i++ {
		coef[i] = c[i] / lead
	}
	roots := rf.roots[:deg]
	done := rf.done[:deg]
	rf.initialGuesses(coef, roots, deg)
	for i := range done {
		done[i] = false
	}

	// Aberth–Ehrlich: z_i ← z_i − w/(1 − w·β) with w = p(z_i)/p'(z_i)
	// and β = Σ_{j≠i} 1/(z_i − z_j). Updates are applied in place
	// (Gauss–Seidel style), which speeds convergence further. Division
	// is inlined as the naive quotient — the runtime's scaled complex
	// division was a measurable cost on this innermost synthesis path —
	// with a fallback when intermediates leave float64 range.
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep2 := 0.0
		for i := range roots {
			if done[i] {
				continue // frozen: stays put, still seen in others' β sums
			}
			z := roots[i]
			// p and p' in one Horner pass over the monic polynomial.
			p := complex128(1)
			dp := complex128(0)
			for t := deg - 1; t >= 0; t-- {
				dp = dp*z + p
				p = p*z + coef[t]
			}
			if p == 0 {
				done[i] = true // exact root: zero step
				continue
			}
			// w = p/p'.
			wr, wi, ok := cdivInline(p, dp)
			if !ok {
				roots[i] += complex(1e-8, 1e-8) // p' ~ 0: perturb off the extremum
				continue
			}
			// β = Σ 1/(z − z_j), via conj(d)/|d|².
			br, bi := 0.0, 0.0
			coincident := false
			for j := range roots {
				if j == i {
					continue
				}
				dr := real(z) - real(roots[j])
				di := imag(z) - imag(roots[j])
				d2 := dr*dr + di*di
				if d2 == 0 {
					coincident = true
					break
				}
				br += dr / d2
				bi += -di / d2
			}
			if coincident {
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			// step = w / (1 − w·β).
			den := complex(1-(wr*br-wi*bi), -(wr*bi + wi*br))
			sr, si, ok := cdivInline(complex(wr, wi), den)
			if !ok {
				sr, si = wr, wi // degenerate denominator: plain Newton step
			}
			roots[i] = complex(real(z)-sr, imag(z)-si)
			a := sr*sr + si*si
			if a > maxStep2 {
				maxStep2 = a
			}
			// Freeze a root once its own step is below the convergence
			// tolerance at its own magnitude; later sweeps skip its
			// (dominant) Horner + β work. Frozen roots would contribute
			// nothing to maxStep2 anyway, so the global criterion is
			// unchanged.
			if a < 1e-26*math.Max(1, abs2(roots[i])) {
				done[i] = true
			}
		}
		scale2 := 1.0
		for _, r := range roots {
			if a := abs2(r); a > scale2 {
				scale2 = a
			}
		}
		// maxStep < 1e-13·scale, compared on squared magnitudes.
		if maxStep2 < 1e-26*scale2 {
			return roots, nil
		}
	}
	return roots, fmt.Errorf("linalg: PolyRoots failed to converge for degree %d", deg)
}

// initialGuesses seeds the iteration using Bini's Newton-polygon
// construction (as in MPSolve): the upper convex hull of the points
// (i, log|coef_i|) partitions the roots into groups whose magnitudes
// the hull-segment slopes estimate. Padé characteristic polynomials
// have roots spread over many decades — parasitic poles sit far from
// the dominant one — and seeding every root on a single Cauchy-bound
// circle made the small ones spiral inward for dozens of sweeps.
// Per-segment radii start each root near its own magnitude scale, so
// the Aberth sweep converges in a handful of iterations regardless of
// spread. The construction is a pure function of the coefficients,
// keeping Roots deterministic for the equivalence suite.
func (rf *RootFinder) initialGuesses(coef []complex128, roots []complex128, deg int) {
	hx := rf.hullX[:0]
	hy := rf.hullY[:0]
	for i := 0; i <= deg; i++ {
		if coef[i] == 0 {
			continue
		}
		y := math.Log(cmplx.Abs(coef[i]))
		// Monotone-chain upper hull: pop while the middle point lies on
		// or below the chord from hx[-2] to the new point.
		for len(hx) >= 2 {
			x1, y1 := hx[len(hx)-2], hy[len(hy)-2]
			x2, y2 := hx[len(hx)-1], hy[len(hy)-1]
			if (y2-y1)*float64(i-x1) >= (y-y1)*float64(x2-x1) {
				break
			}
			hx = hx[:len(hx)-1]
			hy = hy[:len(hy)-1]
		}
		hx = append(hx, i)
		hy = append(hy, y)
	}
	rf.hullX, rf.hullY = hx, hy
	idx := 0
	for s := 0; s+1 < len(hx); s++ {
		m := hx[s+1] - hx[s]
		r := math.Exp((hy[s] - hy[s+1]) / float64(m))
		for t := 0; t < m; t++ {
			theta := 2*math.Pi*float64(idx)/float64(deg) + 0.4
			roots[idx] = cmplx.Rect(r, theta)
			idx++
		}
	}
	// A zero constant term (hull starting above index 0) means the
	// remaining roots are exactly zero; p(0)=0 keeps them fixed there.
	for ; idx < deg; idx++ {
		roots[idx] = 0
	}
}

// cdivInline computes a/b as the naive quotient, reporting ok=false when
// the result is not finite (b ~ 0 or intermediates overflow); callers
// choose their own fallback. It first retries via the runtime's scaled
// complex division, which survives intermediate over/underflow.
func cdivInline(a, b complex128) (re, im float64, ok bool) {
	d2 := abs2(b)
	re = (real(a)*real(b) + imag(a)*imag(b)) / d2
	im = (imag(a)*real(b) - real(a)*imag(b)) / d2
	if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
		q := a / b
		re, im = real(q), imag(q)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return re, im, false
		}
	}
	return re, im, true
}

// abs2 is |x|² without the square root (and without Hypot's
// over/underflow guards, which the convergence tests don't need).
func abs2(x complex128) float64 {
	re, im := real(x), imag(x)
	return re*re + im*im
}

// PolyEval evaluates the polynomial c[0] + c[1]x + … at x.
func PolyEval(c []complex128, x complex128) complex128 {
	s := complex128(0)
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}
