package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix, used for direct AC
// analysis where the MNA system is (G + jωC).
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets every element without reallocating.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CLU is an LU factorization with partial pivoting of a square complex
// matrix.
type CLU struct {
	n     int
	lu    []complex128
	pivot []int
}

// FactorCLU factors the square complex matrix a; a is not modified.
func FactorCLU(a *CMatrix) (*CLU, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorCLU requires a square matrix")
	}
	n := a.Rows
	f := &CLU{n: n, lu: make([]complex128, n*n), pivot: make([]int, n)}
	copy(f.lu, a.Data)

	for k := 0; k < n; k++ {
		p, big := k, 0.0
		for i := k; i < n; i++ {
			if v := cmplx.Abs(f.lu[i*n+k]); v > big {
				big, p = v, i
			}
		}
		if big < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk := f.lu[k*n : k*n+n]
			rp := f.lu[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		f.pivot[k] = p
		inv := 1 / f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] * inv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowi := f.lu[i*n+k+1 : i*n+n]
			rowk := f.lu[k*n+k+1 : k*n+n]
			for j := range rowi {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b; the result is freshly allocated.
func (f *CLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("linalg: CLU.Solve dimension mismatch")
	}
	x := make([]complex128, f.n)
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInPlace solves A·x = b overwriting b with x.
func (f *CLU) SolveInPlace(b []complex128) {
	n := f.n
	// Full row permutation first, then forward substitution (see the
	// real-valued LU for why the two loops must not be interleaved).
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for k := 0; k < n; k++ {
		bk := b[k]
		if bk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu[i*n+k] * bk
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// PolyRoots finds all complex roots of the polynomial
//
//	c[0] + c[1]·x + c[2]·x² + … + c[n]·xⁿ
//
// using the Durand–Kerner (Weierstrass) simultaneous iteration, which is
// robust for the modest degrees (q ≤ 10) that AWE Padé reduction needs.
// Leading zero coefficients are trimmed. It returns an error when the
// iteration fails to converge.
func PolyRoots(c []complex128) ([]complex128, error) {
	// Trim leading (highest-degree) zeros.
	deg := len(c) - 1
	for deg > 0 && c[deg] == 0 {
		deg--
	}
	if deg <= 0 {
		return nil, fmt.Errorf("linalg: PolyRoots degree %d polynomial has no roots", deg)
	}
	// Normalize to monic to improve conditioning.
	coef := make([]complex128, deg+1)
	lead := c[deg]
	for i := 0; i <= deg; i++ {
		coef[i] = c[i] / lead
	}

	// Initial guesses: points on a circle whose radius follows the
	// Cauchy bound, rotated off the axes.
	radius := 0.0
	for i := 0; i < deg; i++ {
		if v := cmplx.Abs(coef[i]); v > radius {
			radius = v
		}
	}
	radius = 1 + radius
	roots := make([]complex128, deg)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(deg) + 0.4
		roots[i] = cmplx.Rect(radius*0.7, theta)
	}

	eval := func(x complex128) complex128 {
		// Horner on the monic polynomial.
		s := complex128(1)
		for i := deg - 1; i >= 0; i-- {
			s = s*x + coef[i]
		}
		return s
	}

	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			num := eval(roots[i])
			den := complex128(1)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident guesses.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			step := num / den
			roots[i] -= step
			if a := cmplx.Abs(step); a > maxStep {
				maxStep = a
			}
		}
		scale := 1.0
		for _, r := range roots {
			if a := cmplx.Abs(r); a > scale {
				scale = a
			}
		}
		if maxStep < 1e-13*scale {
			return roots, nil
		}
	}
	return roots, fmt.Errorf("linalg: PolyRoots failed to converge for degree %d", deg)
}

// PolyEval evaluates the polynomial c[0] + c[1]x + … at x.
func PolyEval(c []complex128, x complex128) complex128 {
	s := complex128(0)
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}
