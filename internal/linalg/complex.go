package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix, used for direct AC
// analysis where the MNA system is (G + jωC).
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets every element without reallocating.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CLU is an LU factorization with partial pivoting of a square complex
// matrix.
type CLU struct {
	n     int
	lu    []complex128
	pivot []int
}

// FactorCLU factors the square complex matrix a; a is not modified.
func FactorCLU(a *CMatrix) (*CLU, error) {
	f := new(CLU)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factor recomputes the factorization of a in place, reusing the
// receiver's storage (see LU.Factor).
func (f *CLU) Factor(a *CMatrix) error {
	if a.Rows != a.Cols {
		panic("linalg: CLU.Factor requires a square matrix")
	}
	n := a.Rows
	f.n = n
	if cap(f.lu) < n*n {
		f.lu = make([]complex128, n*n)
		f.pivot = make([]int, n)
	}
	f.lu = f.lu[:n*n]
	f.pivot = f.pivot[:n]
	copy(f.lu, a.Data)

	for k := 0; k < n; k++ {
		p, big := k, 0.0
		for i := k; i < n; i++ {
			if v := cmplx.Abs(f.lu[i*n+k]); v > big {
				big, p = v, i
			}
		}
		if big < 1e-300 {
			return ErrSingular
		}
		if p != k {
			rk := f.lu[k*n : k*n+n]
			rp := f.lu[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		f.pivot[k] = p
		inv := 1 / f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] * inv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowi := f.lu[i*n+k+1 : i*n+n]
			rowk := f.lu[k*n+k+1 : k*n+n]
			for j := range rowi {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b; the result is freshly allocated.
func (f *CLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("linalg: CLU.Solve dimension mismatch")
	}
	x := make([]complex128, f.n)
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInto solves A·x = b writing x into dst without allocating; dst
// may alias b.
func (f *CLU) SolveInto(dst, b []complex128) {
	if len(b) != f.n || len(dst) != f.n {
		panic("linalg: CLU.SolveInto dimension mismatch")
	}
	copy(dst, b)
	f.SolveInPlace(dst)
}

// SolveInPlace solves A·x = b overwriting b with x.
func (f *CLU) SolveInPlace(b []complex128) {
	n := f.n
	// Full row permutation first, then forward substitution (see the
	// real-valued LU for why the two loops must not be interleaved).
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for k := 0; k < n; k++ {
		bk := b[k]
		if bk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu[i*n+k] * bk
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// PolyRoots finds all complex roots of the polynomial
//
//	c[0] + c[1]·x + c[2]·x² + … + c[n]·xⁿ
//
// using the Durand–Kerner (Weierstrass) simultaneous iteration, which is
// robust for the modest degrees (q ≤ 10) that AWE Padé reduction needs.
// Leading zero coefficients are trimmed. It returns an error when the
// iteration fails to converge.
func PolyRoots(c []complex128) ([]complex128, error) {
	var rf RootFinder
	return rf.Roots(c)
}

// RootFinder is a reusable-storage polynomial root finder. The zero
// value is ready to use; after the first call, Roots allocates nothing
// for polynomials of the same or smaller degree.
type RootFinder struct {
	coef  []complex128
	roots []complex128
}

// Roots behaves exactly like PolyRoots but reuses the receiver's
// buffers. The returned slice aliases the finder's storage and is only
// valid until the next Roots call.
func (rf *RootFinder) Roots(c []complex128) ([]complex128, error) {
	// Trim leading (highest-degree) zeros.
	deg := len(c) - 1
	for deg > 0 && c[deg] == 0 {
		deg--
	}
	if deg <= 0 {
		return nil, fmt.Errorf("linalg: PolyRoots degree %d polynomial has no roots", deg)
	}
	// Normalize to monic to improve conditioning.
	if cap(rf.coef) < deg+1 {
		rf.coef = make([]complex128, deg+1)
		rf.roots = make([]complex128, deg)
	}
	coef := rf.coef[:deg+1]
	lead := c[deg]
	for i := 0; i <= deg; i++ {
		coef[i] = c[i] / lead
	}

	// Initial guesses: points on a circle whose radius follows the
	// Cauchy bound, rotated off the axes.
	radius := 0.0
	for i := 0; i < deg; i++ {
		if v := cmplx.Abs(coef[i]); v > radius {
			radius = v
		}
	}
	radius = 1 + radius
	roots := rf.roots[:deg]
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(deg) + 0.4
		roots[i] = cmplx.Rect(radius*0.7, theta)
	}

	eval := func(x complex128) complex128 {
		// Horner on the monic polynomial.
		s := complex128(1)
		for i := deg - 1; i >= 0; i-- {
			s = s*x + coef[i]
		}
		return s
	}

	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep2 := 0.0
		for i := range roots {
			num := eval(roots[i])
			den := complex128(1)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident guesses.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			// Inline num/den: the naive quotient avoids the runtime's
			// scaled complex division on this innermost path; fall back
			// to it when the intermediate products leave float64 range.
			d2 := abs2(den)
			sr := (real(num)*real(den) + imag(num)*imag(den)) / d2
			si := (imag(num)*real(den) - real(num)*imag(den)) / d2
			if math.IsNaN(sr) || math.IsInf(sr, 0) || math.IsNaN(si) || math.IsInf(si, 0) {
				q := num / den
				sr, si = real(q), imag(q)
			}
			step := complex(sr, si)
			roots[i] -= step
			if a := abs2(step); a > maxStep2 {
				maxStep2 = a
			}
		}
		scale2 := 1.0
		for _, r := range roots {
			if a := abs2(r); a > scale2 {
				scale2 = a
			}
		}
		// maxStep < 1e-13·scale, compared on squared magnitudes.
		if maxStep2 < 1e-26*scale2 {
			return roots, nil
		}
	}
	return roots, fmt.Errorf("linalg: PolyRoots failed to converge for degree %d", deg)
}

// abs2 is |x|² without the square root (and without Hypot's
// over/underflow guards, which the convergence tests don't need).
func abs2(x complex128) float64 {
	re, im := real(x), imag(x)
	return re*re + im*im
}

// PolyEval evaluates the polynomial c[0] + c[1]x + … at x.
func PolyEval(c []complex128, x complex128) complex128 {
	s := complex128(0)
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}
