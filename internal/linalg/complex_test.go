package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func TestCMatrixBasics(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 1, 1+2i)
	m.Add(0, 1, 1i)
	if got := m.At(0, 1); got != 1+3i {
		t.Errorf("At(0,1) = %v, want (1+3i)", got)
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Error("Zero did not clear matrix")
	}
}

func TestCLUSolveKnown(t *testing.T) {
	// (1+j)x = 2j  =>  x = 2j/(1+j) = 1+j
	a := NewCMatrix(1, 1)
	a.Set(0, 0, 1+1i)
	f, err := FactorCLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]complex128{2i})
	if cmplx.Abs(x[0]-(1+1i)) > 1e-14 {
		t.Errorf("x = %v, want (1+1i)", x[0])
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1i)
	a.Set(1, 0, 2)
	a.Set(1, 1, 2i)
	if _, err := FactorCLU(a); err == nil {
		t.Error("FactorCLU on singular complex matrix returned nil error")
	}
}

func randomCDiagDominant(rng *rand.Rand, n int) *CMatrix {
	a := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				a.Set(i, j, v)
				rowSum += cmplx.Abs(v)
			}
		}
		a.Set(i, i, complex(rowSum+1, rng.NormFloat64()))
	}
	return a
}

func TestCLURoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(12) + 1
		a := randomCDiagDominant(rng, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			s := complex128(0)
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			b[i] = s
		}
		f, err := FactorCLU(a)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Solve(b)
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("trial %d: element %d differs: got %v want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func sortRoots(r []complex128) {
	sort.Slice(r, func(i, j int) bool {
		if real(r[i]) != real(r[j]) {
			return real(r[i]) < real(r[j])
		}
		return imag(r[i]) < imag(r[j])
	})
}

func TestPolyRootsQuadratic(t *testing.T) {
	// (x-1)(x-2) = x² - 3x + 2
	roots, err := PolyRoots([]complex128{2, -3, 1})
	if err != nil {
		t.Fatal(err)
	}
	sortRoots(roots)
	if cmplx.Abs(roots[0]-1) > 1e-10 || cmplx.Abs(roots[1]-2) > 1e-10 {
		t.Errorf("roots = %v, want [1 2]", roots)
	}
}

func TestPolyRootsComplexPair(t *testing.T) {
	// x² + 1 = 0 → ±j
	roots, err := PolyRoots([]complex128{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if math.Abs(real(r)) > 1e-10 || math.Abs(math.Abs(imag(r))-1) > 1e-10 {
			t.Errorf("root %v not ±j", r)
		}
	}
}

func TestPolyRootsScaledLeading(t *testing.T) {
	// 3(x-5)(x+2) — non-monic input must be normalized.
	roots, err := PolyRoots([]complex128{-30, -9, 3})
	if err != nil {
		t.Fatal(err)
	}
	sortRoots(roots)
	if cmplx.Abs(roots[0]+2) > 1e-9 || cmplx.Abs(roots[1]-5) > 1e-9 {
		t.Errorf("roots = %v, want [-2 5]", roots)
	}
}

func TestPolyRootsTrimsLeadingZeros(t *testing.T) {
	// 2 - 2x + 0x² → single root at 1.
	roots, err := PolyRoots([]complex128{2, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || cmplx.Abs(roots[0]-1) > 1e-10 {
		t.Errorf("roots = %v, want [1]", roots)
	}
}

func TestPolyRootsDegreeZero(t *testing.T) {
	if _, err := PolyRoots([]complex128{5}); err == nil {
		t.Error("degree-0 polynomial should return an error")
	}
}

// Property: reconstructing the polynomial from the found roots matches at
// sample points. Uses widely spaced real roots typical of circuit poles.
func TestPolyRootsReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		deg := rng.Intn(6) + 1
		truth := make([]complex128, deg)
		for i := range truth {
			// Spread roots over several decades, as AWE pole sets are.
			mag := math.Pow(10, float64(i)-1)
			truth[i] = complex(-mag*(1+rng.Float64()), 0)
		}
		// Build coefficients from roots: Π (x - r_i)
		coef := []complex128{1}
		for _, r := range truth {
			next := make([]complex128, len(coef)+1)
			for i, c := range coef {
				next[i+1] += c
				next[i] -= c * r
			}
			coef = next
		}
		roots, err := PolyRoots(coef)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sortRoots(roots)
		sortRoots(truth)
		for i := range truth {
			rel := cmplx.Abs(roots[i]-truth[i]) / (cmplx.Abs(truth[i]) + 1e-30)
			if rel > 1e-6 {
				t.Fatalf("trial %d deg %d: root %d = %v, want %v (rel %v)", trial, deg, i, roots[i], truth[i], rel)
			}
		}
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 1 + 2x + 3x², p(2) = 17
	if got := PolyEval([]complex128{1, 2, 3}, 2); cmplx.Abs(got-17) > 1e-14 {
		t.Errorf("PolyEval = %v, want 17", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("PolyEval(nil) = %v, want 0", got)
	}
}
