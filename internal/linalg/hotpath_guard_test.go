package linalg

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEvalPathUsesInPlaceSolvers greps the evaluation-path packages for
// the allocating linalg entry points. FactorLU/FactorCLU allocate a
// factorization per call and LU.Solve/CLU.Solve/Matrix.MulVec allocate
// a result vector per call — fine for one-shot analysis code, but the
// synthesis hot path runs hundreds of thousands of evaluations and must
// route through AutoLU/AutoCLU and the *Into/InPlace variants, which
// reuse storage. The allocation benchmarks catch a regression only on
// the decks they compile; this guard catches it at the call site.
func TestEvalPathUsesInPlaceSolvers(t *testing.T) {
	pkgs := []string{"astrx", "awe", "dcsolve", "acsim", "anneal", "oblx"}
	banned := regexp.MustCompile(`\.MulVec\(|\bFactorLU\(|\bFactorCLU\(|\.Solve\(`)
	for _, pkg := range pkgs {
		dir := filepath.Join("..", pkg)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no sources under %s — package moved? update this guard", dir)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				// dcsolve.Solve is the package-level Newton driver, not a
				// dense-LU method; it is the one legitimate ".Solve(".
				scrubbed := strings.ReplaceAll(line, "dcsolve.Solve(", "")
				if m := banned.FindString(scrubbed); m != "" {
					t.Errorf("%s:%d: allocating call %q on the eval path — use the AutoLU/AutoCLU or *Into/InPlace form", f, i+1, m)
				}
			}
		}
	}
}
