// Package mna builds Modified Nodal Analysis systems from flat linear
// netlists. The result is the pair of real matrices (G, C) and excitation
// vectors such that the Laplace-domain circuit equations are
//
//	(G + s·C) · x(s) = b·u(s)
//
// where x stacks node voltages and branch currents (for voltage sources,
// controlled voltage sources, and inductors). Both AWE (package awe) and
// the direct AC sweep (package acsim) consume this system; the ASTRX
// compiler produces the linear netlists by replacing every nonlinear
// device with its small-signal model at the candidate bias point.
package mna

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/expr"
	"astrx/internal/linalg"
)

// System is an assembled MNA system.
type System struct {
	// Size is the total unknown count: node voltages then branch currents.
	Size int
	// NumNodes is the number of non-ground node voltages.
	NumNodes int
	// G and C are the conductance and susceptance matrices.
	G, C *linalg.Matrix

	net      *circuit.Netlist
	branches map[string]int // element name -> branch row index
}

// Build assembles the MNA system for a flat linear netlist. Element
// values are evaluated against env (so they may reference design
// variables). Nonlinear elements (M, Q) are rejected: callers must
// linearize devices first.
func Build(nl *circuit.Netlist, env expr.Env) (*System, error) {
	if nl.NumNodes() == 0 {
		nl.BuildIndex()
	}
	s := &System{net: nl, NumNodes: nl.NumNodes(), branches: make(map[string]int)}

	// First pass: allocate branch rows for elements that add a current
	// unknown.
	next := s.NumNodes
	for _, e := range nl.Elements {
		switch e.Kind {
		case circuit.KindV, circuit.KindE, circuit.KindH, circuit.KindL:
			s.branches[e.Name] = next
			next++
		case circuit.KindM, circuit.KindQ:
			return nil, fmt.Errorf("mna: nonlinear element %s (%v) in linear netlist", e.Name, e.Kind)
		case circuit.KindX:
			return nil, fmt.Errorf("mna: unflattened instance %s", e.Name)
		}
	}
	s.Size = next
	s.G = linalg.NewMatrix(s.Size, s.Size)
	s.C = linalg.NewMatrix(s.Size, s.Size)

	st := Stamper{G: s.G, C: s.C}
	for _, e := range nl.Elements {
		var n [4]int
		for k, nd := range e.Nodes {
			// BuildIndex covered every element node, so a miss can only
			// mean the caller handed us a stale index for a mutated
			// netlist — a programming error, not a deck error.
			i, ok := nl.NodeIndex(nd)
			if !ok {
				panic(fmt.Sprintf("mna: node %q of element %s missing from netlist index", nd, e.Name))
			}
			n[k] = i
		}
		switch e.Kind {
		case circuit.KindR:
			r, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			if r == 0 {
				return nil, fmt.Errorf("mna: resistor %s has zero resistance", e.Name)
			}
			st.Resistor(n[0], n[1], 1/r)

		case circuit.KindC:
			c, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			st.Capacitor(n[0], n[1], c)

		case circuit.KindL:
			l, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			st.Inductor(n[0], n[1], s.branches[e.Name], l)

		case circuit.KindV:
			// RHS contribution handled by InputVector.
			st.VSource(n[0], n[1], s.branches[e.Name])

		case circuit.KindI:
			// RHS contribution handled by InputVector.

		case circuit.KindG: // VCCS: i(out+→out-) = gm (v(c+) - v(c-))
			gm, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			st.VCCS(n[0], n[1], n[2], n[3], gm)

		case circuit.KindE: // VCVS: v(a)-v(b) = A (v(c+)-v(c-))
			a, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			st.VCVS(n[0], n[1], n[2], n[3], s.branches[e.Name], a)

		case circuit.KindF: // CCCS: i = F · i(ctrl V source)
			f, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			cb, ok := s.branches[e.CtrlName]
			if !ok {
				return nil, fmt.Errorf("mna: element %s controls by unknown source %q", e.Name, e.CtrlName)
			}
			st.CCCS(n[0], n[1], cb, f)

		case circuit.KindH: // CCVS: v(a)-v(b) = H · i(ctrl V source)
			h, err := e.EvalValue(env)
			if err != nil {
				return nil, err
			}
			cb, ok := s.branches[e.CtrlName]
			if !ok {
				return nil, fmt.Errorf("mna: element %s controls by unknown source %q", e.Name, e.CtrlName)
			}
			st.CCVS(n[0], n[1], s.branches[e.Name], cb, h)
		}
	}
	return s, nil
}

// InputVector builds the excitation vector b for the named independent
// source, scaled by the source's AC magnitude (or 1.0 when the magnitude
// is unset). For AC/AWE analysis every other independent source is dead
// (superposition), which the caller gets for free because b only excites
// this source.
func (s *System) InputVector(srcName string) ([]float64, error) {
	e := s.net.Element(srcName)
	if e == nil {
		return nil, fmt.Errorf("mna: unknown input source %q", srcName)
	}
	mag := e.ACMag
	if mag == 0 {
		mag = 1
	}
	b := make([]float64, s.Size)
	switch e.Kind {
	case circuit.KindV:
		b[s.branches[e.Name]] = mag
	case circuit.KindI:
		// Source current flows from node[0] through the source to
		// node[1]: it leaves node 0 and enters node 1.
		if i, _ := s.net.NodeIndex(e.Nodes[0]); i >= 0 {
			b[i] -= mag
		}
		if i, _ := s.net.NodeIndex(e.Nodes[1]); i >= 0 {
			b[i] += mag
		}
	default:
		return nil, fmt.Errorf("mna: element %s (%v) is not an independent source", srcName, e.Kind)
	}
	return b, nil
}

// NodeUnknown returns the unknown index carrying the voltage of the named
// node; ok is false for ground or unknown nodes.
func (s *System) NodeUnknown(node string) (int, bool) {
	i, ok := s.net.NodeIndex(node)
	if !ok || i < 0 {
		return 0, false
	}
	return i, true
}

// BranchUnknown returns the unknown index carrying the branch current of
// the named element (V, E, H, or L elements only).
func (s *System) BranchUnknown(elem string) (int, bool) {
	i, ok := s.branches[elem]
	return i, ok
}

// Netlist returns the netlist the system was built from.
func (s *System) Netlist() *circuit.Netlist { return s.net }
