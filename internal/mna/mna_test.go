package mna

import (
	"math"
	"testing"

	"astrx/internal/circuit"
	"astrx/internal/expr"
	"astrx/internal/linalg"
)

func elem(name string, nodes []string, value string) *circuit.Element {
	k, ok := circuit.KindOf(name)
	if !ok {
		panic("bad element name " + name)
	}
	e := &circuit.Element{Name: name, Kind: k, Nodes: nodes}
	if value != "" {
		e.Value = expr.MustParse(value)
	}
	return e
}

func netlistOf(elems ...*circuit.Element) *circuit.Netlist {
	nl := &circuit.Netlist{Elements: elems}
	nl.BuildIndex()
	return nl
}

// solveDC solves G·x = b for the DC (s=0) response.
func solveDC(t *testing.T, s *System, src string) []float64 {
	t.Helper()
	b, err := s.InputVector(src)
	if err != nil {
		t.Fatal(err)
	}
	x, err := linalg.SolveLinear(s.G, b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestVoltageDivider(t *testing.T) {
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	nl := netlistOf(
		vin,
		elem("r1", []string{"in", "out"}, "1k"),
		elem("r2", []string{"out", "0"}, "3k"),
	)
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	if math.Abs(x[iOut]-0.75) > 1e-12 {
		t.Errorf("divider out = %v, want 0.75", x[iOut])
	}
	// Branch current through the source: V/(R1+R2) = 0.25 mA flowing
	// into the + terminal (so the unknown is negative by convention).
	iBr, ok := s.BranchUnknown("vin")
	if !ok {
		t.Fatal("no branch for vin")
	}
	if math.Abs(math.Abs(x[iBr])-0.25e-3) > 1e-12 {
		t.Errorf("source current = %v, want ±0.25mA", x[iBr])
	}
}

func TestVariableResistor(t *testing.T) {
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	nl := netlistOf(
		vin,
		elem("r1", []string{"in", "out"}, "Rtop"),
		elem("r2", []string{"out", "0"}, "1k"),
	)
	s, err := Build(nl, expr.MapEnv{"Rtop": 1000})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	if math.Abs(x[iOut]-0.5) > 1e-12 {
		t.Errorf("out = %v, want 0.5", x[iOut])
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	iin := elem("iin", []string{"0", "out"}, "0")
	iin.ACMag = 1e-3
	nl := netlistOf(iin, elem("r1", []string{"out", "0"}, "2k"))
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "iin")
	iOut, _ := s.NodeUnknown("out")
	// 1mA from ground into node out through 2k: V = +2.
	if math.Abs(x[iOut]-2) > 1e-12 {
		t.Errorf("out = %v, want 2", x[iOut])
	}
}

func TestCapacitorStamp(t *testing.T) {
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	nl := netlistOf(
		vin,
		elem("r1", []string{"in", "out"}, "1k"),
		elem("c1", []string{"out", "0"}, "1u"),
	)
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	iOut, _ := s.NodeUnknown("out")
	if got := s.C.At(iOut, iOut); math.Abs(got-1e-6) > 1e-20 {
		t.Errorf("C stamp = %v, want 1e-6", got)
	}
	// G matrix must not contain the capacitor.
	if got := s.G.At(iOut, iOut); math.Abs(got-1e-3) > 1e-15 {
		t.Errorf("G diagonal = %v, want 1e-3", got)
	}
}

func TestVCCSAmplifier(t *testing.T) {
	// Common-source stage: vout = -gm·RL·vin
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	g1 := elem("g1", []string{"out", "0", "in", "0"}, "1m") // i(out→0) = gm·v(in)
	nl := netlistOf(vin, g1, elem("rl", []string{"out", "0"}, "10k"))
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	if math.Abs(x[iOut]+10) > 1e-9 {
		t.Errorf("VCCS gain = %v, want -10", x[iOut])
	}
}

func TestVCVS(t *testing.T) {
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	e1 := elem("e1", []string{"out", "0", "in", "0"}, "5")
	nl := netlistOf(vin, e1, elem("rl", []string{"out", "0"}, "1k"))
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	if math.Abs(x[iOut]-5) > 1e-9 {
		t.Errorf("VCVS out = %v, want 5", x[iOut])
	}
}

func TestCCCSAndCCVS(t *testing.T) {
	// vin drives r1; f1 mirrors i(vin)·2 into rload.
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	f1 := elem("f1", []string{"0", "out"}, "2")
	f1.CtrlName = "vin"
	nl := netlistOf(vin,
		elem("r1", []string{"in", "0"}, "1k"),
		f1,
		elem("rl", []string{"out", "0"}, "1k"),
	)
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	// i(vin) = -1mA (current into + terminal is -V/R by MNA sign
	// convention); f = 2·i flows 0→out; |vout| = 2 V.
	if math.Abs(math.Abs(x[iOut])-2) > 1e-9 {
		t.Errorf("CCCS out = %v, want ±2", x[iOut])
	}

	h1 := elem("h1", []string{"out2", "0"}, "3k")
	h1.CtrlName = "vin"
	nl2 := netlistOf(vin,
		elem("r1", []string{"in", "0"}, "1k"),
		h1,
		elem("rl", []string{"out2", "0"}, "1k"),
	)
	s2, err := Build(nl2, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	x2 := solveDC(t, s2, "vin")
	iOut2, _ := s2.NodeUnknown("out2")
	if math.Abs(math.Abs(x2[iOut2])-3) > 1e-9 {
		t.Errorf("CCVS out = %v, want ±3", x2[iOut2])
	}
}

func TestInductorStamps(t *testing.T) {
	vin := elem("vin", []string{"in", "0"}, "0")
	vin.ACMag = 1
	nl := netlistOf(vin,
		elem("l1", []string{"in", "out"}, "1m"),
		elem("r1", []string{"out", "0"}, "1k"),
	)
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	// DC: inductor is a short → out = in = 1.
	x := solveDC(t, s, "vin")
	iOut, _ := s.NodeUnknown("out")
	if math.Abs(x[iOut]-1) > 1e-9 {
		t.Errorf("DC through inductor = %v, want 1", x[iOut])
	}
	br, ok := s.BranchUnknown("l1")
	if !ok {
		t.Fatal("no branch for l1")
	}
	if got := s.C.At(br, br); math.Abs(got+1e-3) > 1e-18 {
		t.Errorf("L stamp = %v, want -1e-3", got)
	}
}

func TestBuildErrors(t *testing.T) {
	m := &circuit.Element{Name: "m1", Kind: circuit.KindM, Nodes: []string{"a", "b", "c", "d"}}
	if _, err := Build(netlistOf(m), expr.MapEnv{}); err == nil {
		t.Error("nonlinear element must be rejected")
	}
	x := &circuit.Element{Name: "x1", Kind: circuit.KindX, Nodes: []string{"a"}, Sub: "s"}
	if _, err := Build(netlistOf(x), expr.MapEnv{}); err == nil {
		t.Error("unflattened instance must be rejected")
	}
	if _, err := Build(netlistOf(elem("r1", []string{"a", "0"}, "0")), expr.MapEnv{}); err == nil {
		t.Error("zero resistance must be rejected")
	}
	f := elem("f1", []string{"a", "0"}, "1")
	f.CtrlName = "nope"
	if _, err := Build(netlistOf(f), expr.MapEnv{}); err == nil {
		t.Error("unknown control source must be rejected")
	}
	// Unresolvable value expression.
	if _, err := Build(netlistOf(elem("r1", []string{"a", "0"}, "Runknown")), expr.MapEnv{}); err == nil {
		t.Error("unknown variable in value must be rejected")
	}
}

func TestInputVectorErrors(t *testing.T) {
	nl := netlistOf(elem("r1", []string{"a", "0"}, "1k"))
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InputVector("nope"); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := s.InputVector("r1"); err == nil {
		t.Error("non-source element must error")
	}
}

func TestNodeUnknown(t *testing.T) {
	nl := netlistOf(elem("r1", []string{"a", "0"}, "1k"))
	s, err := Build(nl, expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NodeUnknown("0"); ok {
		t.Error("ground has no unknown")
	}
	if _, ok := s.NodeUnknown("zzz"); ok {
		t.Error("unknown node has no unknown")
	}
	if i, ok := s.NodeUnknown("a"); !ok || i != 0 {
		t.Errorf("NodeUnknown(a) = %d,%v", i, ok)
	}
	if s.Netlist() != nl {
		t.Error("Netlist accessor broken")
	}
}
