package mna

import "astrx/internal/linalg"

// Stamper writes element stamps into a caller-owned (G, C) matrix pair
// addressed by resolved unknown indices (node voltage rows first, then
// branch-current rows); ground is index -1 and its rows/columns are
// skipped. Build uses it with freshly allocated matrices; the ASTRX
// compiled-plan evaluator replays precompiled stamp programs through the
// same methods into reused matrices, so both paths perform the identical
// sequence of additions and agree bit-for-bit.
type Stamper struct {
	G, C *linalg.Matrix
}

// add stamps v into m[i][j], skipping ground rows/cols (index -1).
func (st Stamper) add(m *linalg.Matrix, i, j int, v float64) {
	if i >= 0 && j >= 0 {
		m.Add(i, j, v)
	}
}

// Resistor stamps a conductance g between nodes a and b.
func (st Stamper) Resistor(a, b int, g float64) {
	st.add(st.G, a, a, g)
	st.add(st.G, b, b, g)
	st.add(st.G, a, b, -g)
	st.add(st.G, b, a, -g)
}

// Capacitor stamps a capacitance c between nodes a and b.
func (st Stamper) Capacitor(a, b int, c float64) {
	st.add(st.C, a, a, c)
	st.add(st.C, b, b, c)
	st.add(st.C, a, b, -c)
	st.add(st.C, b, a, -c)
}

// Inductor stamps an inductance l between a and b with branch row br.
func (st Stamper) Inductor(a, b, br int, l float64) {
	st.add(st.G, a, br, 1)
	st.add(st.G, b, br, -1)
	st.add(st.G, br, a, 1)
	st.add(st.G, br, b, -1)
	st.C.Add(br, br, -l)
}

// VSource stamps an independent voltage source between a and b with
// branch row br; the RHS contribution is the caller's concern.
func (st Stamper) VSource(a, b, br int) {
	st.add(st.G, a, br, 1)
	st.add(st.G, b, br, -1)
	st.add(st.G, br, a, 1)
	st.add(st.G, br, b, -1)
}

// VCCS stamps i(p→q) = gm·(v(cp) - v(cq)).
func (st Stamper) VCCS(p, q, cp, cq int, gm float64) {
	st.add(st.G, p, cp, gm)
	st.add(st.G, p, cq, -gm)
	st.add(st.G, q, cp, -gm)
	st.add(st.G, q, cq, gm)
}

// VCVS stamps v(a)-v(b) = gain·(v(cp)-v(cq)) with branch row br.
func (st Stamper) VCVS(a, b, cp, cq, br int, gain float64) {
	st.add(st.G, a, br, 1)
	st.add(st.G, b, br, -1)
	st.add(st.G, br, a, 1)
	st.add(st.G, br, b, -1)
	st.add(st.G, br, cp, -gain)
	st.add(st.G, br, cq, gain)
}

// CCCS stamps i(p→q) = f·i(ctrl branch cb).
func (st Stamper) CCCS(p, q, cb int, f float64) {
	st.add(st.G, p, cb, f)
	st.add(st.G, q, cb, -f)
}

// CCVS stamps v(a)-v(b) = h·i(ctrl branch cb) with branch row br.
func (st Stamper) CCVS(a, b, br, cb int, h float64) {
	st.add(st.G, a, br, 1)
	st.add(st.G, b, br, -1)
	st.add(st.G, br, a, 1)
	st.add(st.G, br, b, -1)
	st.G.Add(br, cb, -h)
}
