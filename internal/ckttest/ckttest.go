// Package ckttest provides tiny helpers for constructing flat linear
// netlists in tests across the repository.
package ckttest

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/expr"
)

// E builds an element from a SPICE-ish description. The kind is inferred
// from the name's first letter; value may be "" for kinds without one.
func E(name string, nodes []string, value string) *circuit.Element {
	k, ok := circuit.KindOf(name)
	if !ok {
		panic(fmt.Sprintf("ckttest: bad element name %q", name))
	}
	e := &circuit.Element{Name: name, Kind: k, Nodes: nodes}
	if value != "" {
		e.Value = expr.MustParse(value)
	}
	return e
}

// V builds an independent voltage source with a DC value and AC
// magnitude.
func V(name string, np, nn string, dc string, acMag float64) *circuit.Element {
	e := E(name, []string{np, nn}, dc)
	e.ACMag = acMag
	return e
}

// Netlist builds an indexed flat netlist from elements.
func Netlist(elems ...*circuit.Element) *circuit.Netlist {
	nl := &circuit.Netlist{Elements: elems}
	nl.BuildIndex()
	return nl
}

// RCLadder builds an n-stage RC ladder driven by source vin with AC
// magnitude 1: vin - R - node1 - C to ground - R - node2 - C … The output
// is node "n<n>".
func RCLadder(n int, r, c float64) *circuit.Netlist {
	elems := []*circuit.Element{V("vin", "in", "0", "0", 1)}
	prev := "in"
	for i := 1; i <= n; i++ {
		node := fmt.Sprintf("n%d", i)
		elems = append(elems,
			E(fmt.Sprintf("r%d", i), []string{prev, node}, fmt.Sprintf("%g", r)),
			E(fmt.Sprintf("c%d", i), []string{node, "0"}, fmt.Sprintf("%g", c)),
		)
		prev = node
	}
	return Netlist(elems...)
}
