package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestTypeBeforeFirstSample audits the exposition ordering guarantee:
// for every family, the # TYPE line must appear before the family's
// first sample, including families whose labeled instances are
// registered lazily after other families already emitted samples (the
// oblxd_jobs_finished_total pattern).
func TestTypeBeforeFirstSample(t *testing.T) {
	r := New()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c_seconds", []float64{0.1, 1}).Observe(0.5)
	r.GaugeFunc("d", func() float64 { return 2 })
	// Lazy labeled registrations, interleaved across families.
	r.Counter("a_total", "state", "done").Inc()
	r.Counter("e_total", "kind", "x").Add(3)
	r.Counter("a_total", "state", "failed").Inc()
	r.SetHelp("a_total", "a help")

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	typeSeen := map[string]bool{}
	for i, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if typeSeen[name] {
				t.Errorf("line %d: duplicate # TYPE for %s", i+1, name)
			}
			typeSeen[name] = true
			continue
		}
		// A sample line: name{labels} value or name value. The family is
		// the metric name with histogram suffixes stripped.
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suf); fam != name && typeSeen[fam] {
				name = fam
				break
			}
		}
		if !typeSeen[name] {
			t.Errorf("line %d: sample %q emitted before its # TYPE", i+1, line)
		}
	}
	for _, fam := range []string{"a_total", "b", "c_seconds", "d", "e_total"} {
		if !typeSeen[fam] {
			t.Errorf("family %s has no # TYPE line", fam)
		}
	}
}

// TestHelpEscaping checks that newlines and backslashes in HELP text
// cannot corrupt the exposition stream.
func TestHelpEscaping(t *testing.T) {
	r := New()
	r.Counter("x_total").Inc()
	r.SetHelp("x_total", "line one\nline two with \\ backslash")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := `# HELP x_total line one\nline two with \\ backslash`; !strings.Contains(out, want) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "x_total") {
			t.Errorf("stray exposition line %q (HELP newline leaked?)", line)
		}
	}
}

// TestScrapeDuringRegistration races WriteText against lazy metric
// registration in existing families — the scrape path must snapshot the
// instance maps under the registry lock (run with -race).
func TestScrapeDuringRegistration(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "state", "queued").Inc()
	r.Histogram("lat_seconds", []float64{0.1, 1}, "stage", "lu").Observe(0.2)
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	states := []string{"running", "done", "failed", "poisoned", "cancelled"}
	stages := []string{"bias", "stamp", "moments", "fit", "specs"}
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Counter("jobs_total", "state", states[i%len(states)]).Inc()
				r.Histogram("lat_seconds", []float64{0.1, 1}, "stage", stages[i%len(stages)]).Observe(0.05)
				r.GaugeFunc("depth", func() float64 { return float64(i) })
			}
		}
	}()
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestLabelValueEscaping audits exposition of hostile label values —
// tenant names are operator-controlled strings that end up as label
// values, so quotes, backslashes, newlines, and multibyte UTF-8 must
// all round-trip through the text format unambiguously. Prometheus
// text exposition requires exactly `\`, `"` and newline escaped inside
// quoted label values; printable UTF-8 passes through raw.
func TestLabelValueEscaping(t *testing.T) {
	r := New()
	cases := []struct {
		value string
		want  string // the escaped sample line
	}{
		{`plain`, `t_total{tenant="plain"} 1`},
		{`he"said`, `t_total{tenant="he\"said"} 1`},
		{`back\slash`, `t_total{tenant="back\\slash"} 1`},
		{"line\nbreak", `t_total{tenant="line\nbreak"} 1`},
		{`acmé-株式会社`, `t_total{tenant="acmé-株式会社"} 1`},
	}
	for _, tc := range cases {
		r.Counter("t_total", "tenant", tc.value).Inc()
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, tc := range cases {
		if !strings.Contains(out, tc.want) {
			t.Errorf("exposition missing %s\ngot:\n%s", tc.want, out)
		}
	}
	// Every sample line must still be single-line and well-formed:
	// name{...} value — a raw newline inside a label value would split
	// a sample across lines.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "t_total{tenant=\"") || !strings.HasSuffix(line, "\"} 1") {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}
