// Package metrics is a small, dependency-free instrumentation registry
// for the synthesis service: counters, gauges, and fixed-bucket
// histograms, exported in the Prometheus text exposition format at
// GET /debug/metrics. It exists so both the oblxd daemon and the oblx
// CLI can report evals/sec, accept ratios, queue depths, and per-job
// wall times without pulling an external client library into a
// reproduction that is deliberately stdlib-only.
//
// Metrics are identified by a family name plus an optional ordered
// label list; registering the same (name, labels) twice returns the
// same metric, so call sites can look metrics up cheaply instead of
// caching them. All operations are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n is ignored — counters only
// go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative, +Inf is implicit).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DurationBuckets is a general-purpose bucket ladder for wall times in
// seconds: 10 ms .. ~30 min in roughly 3× steps.
var DurationBuckets = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 1800}

// metricKind tags a family so the exporter can emit one # TYPE line per
// family and reject kind clashes.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family groups every labeled instance of one metric name.
type family struct {
	name string
	kind metricKind
	help string
	// insertion-ordered label sets for stable output
	order []string
	byKey map[string]any // labelKey → *Counter/*Gauge/*Histogram/func() float64
	keyLb map[string]string
}

// Registry holds a set of metric families. The zero value is not usable;
// call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders an ordered k,v pair list as {k="v",...}; empty
// pairs render as "".
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the (family, labels) slot, verifying the kind.
func (r *Registry) lookup(name string, kind metricKind, kv []string, mk func() any) any {
	key := labelString(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:  name,
			kind:  kind,
			byKey: make(map[string]any),
			keyLb: make(map[string]string),
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	m, ok := f.byKey[key]
	if !ok {
		m = mk()
		f.byKey[key] = m
		f.keyLb[key] = key
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the counter for name with the given ordered label
// key/value pairs, registering it on first use.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.lookup(name, kindCounter, kv, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name with the given labels.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.lookup(name, kindGauge, kv, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name with the given labels. The
// bucket bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	return r.lookup(name, kindHistogram, kv, func() any {
		b := append([]float64(nil), buckets...)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}).(*Histogram)
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural shape for queue depths and pool sizes owned by another
// structure. Re-registering replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	key := labelString(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kindGaugeFunc, byKey: make(map[string]any), keyLb: make(map[string]string)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kindGaugeFunc {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as gauge func", name, f.kind))
	}
	if _, ok := f.byKey[key]; !ok {
		f.order = append(f.order, key)
	}
	f.byKey[key] = fn
}

// SetHelp attaches a # HELP line to a family (optional).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	}
}

// escapeHelp escapes backslashes and newlines in # HELP text per the
// exposition format; an unescaped newline would split the comment and
// corrupt the sample that follows it.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family structure AND the instance list under the lock:
	// the maps may gain new entries from concurrent registrations while we
	// write, so reading f.byKey after unlocking would race. Metric value
	// reads are individually atomic/locked and happen outside the lock.
	type inst struct {
		key string
		m   any
	}
	type fam struct {
		name  string
		kind  metricKind
		help  string
		insts []inst
	}
	fams := make([]fam, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		sf := fam{name: f.name, kind: f.kind, help: f.help, insts: make([]inst, 0, len(f.order))}
		for _, key := range f.order {
			if m, ok := f.byKey[key]; ok {
				sf.insts = append(sf.insts, inst{key: key, m: m})
			}
		}
		fams = append(fams, sf)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, in := range f.insts {
			key := in.key
			var err error
			switch v := in.m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, key, v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, key, fmtFloat(v.Value()))
			case func() float64:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, key, fmtFloat(v()))
			case *Histogram:
				err = writeHistogram(w, f.name, key, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram instance: cumulative _bucket
// series, then _sum and _count.
func writeHistogram(w io.Writer, name, key string, h *Histogram) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	// Merge the instance labels with le="...": strip the braces.
	inner := strings.TrimSuffix(strings.TrimPrefix(key, "{"), "}")
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		lb := fmt.Sprintf("le=%q", fmtFloat(b))
		if inner != "" {
			lb = inner + "," + lb
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, lb, cum); err != nil {
			return err
		}
	}
	lb := `le="+Inf"`
	if inner != "" {
		lb = inner + "," + lb
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, lb, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, fmtFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, count)
	return err
}

// Handler serves the registry at an HTTP endpoint (GET /debug/metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
