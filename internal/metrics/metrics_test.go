package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "state", "done")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "state", "done"); again != c {
		t.Error("re-registration did not return the same counter")
	}

	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := New()
	h := r.Histogram("job_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Errorf("sum = %g, want 560.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE job_seconds histogram",
		`job_seconds_bucket{le="1"} 1`,
		`job_seconds_bucket{le="10"} 3`,
		`job_seconds_bucket{le="100"} 4`,
		`job_seconds_bucket{le="+Inf"} 5`,
		"job_seconds_sum 560.5",
		"job_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := New()
	r.Counter("evals_total").Add(42)
	r.SetHelp("evals_total", "total circuit evaluations")
	r.Gauge("jobs", "state", "running").Set(2)
	r.Gauge("jobs", "state", "queued").Set(7)
	r.GaugeFunc("pool_size", func() float64 { return 8 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP evals_total total circuit evaluations",
		"# TYPE evals_total counter",
		"evals_total 42",
		"# TYPE jobs gauge",
		`jobs{state="running"} 2`,
		`jobs{state="queued"} 7`,
		"# TYPE pool_size gauge",
		"pool_size 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerServesText(t *testing.T) {
	r := New()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits 1") {
		t.Errorf("body missing hits 1: %q", buf[:n])
	}
}

// TestConcurrentUse exercises every metric type from many goroutines so
// `go test -race ./internal/metrics` proves the registry is safe to
// share between the worker pool and the scrape handler.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "w", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DurationBuckets).Observe(float64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("c", "w", "x").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
