package expr

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses an expression string into an AST.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	node, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("expr: unexpected trailing token %q in %q", p.toks[p.pos].text, src)
	}
	return node, nil
}

// MustParse is Parse that panics on error, for use with literals in
// tests and built-in circuit decks.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind int

const (
	tokNum tokKind = iota
	tokIdent
	tokOp   // + - * / ^ ( ) ,
	tokEOF_ // unused sentinel
)

type token struct {
	kind tokKind
	text string
	val  float64
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	// Dotted paths (xamp.m1.gm) and SPICE-ish names with + - are common
	// in node references; we allow letters, digits, '_', '.', and also
	// '+'/'-' only when they directly extend a name like "out+" — handled
	// in the lexer body, not here.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r >= '0' && r <= '9' || r == '.' && i+1 < len(rs) && rs[i+1] >= '0' && rs[i+1] <= '9':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '.') {
				// Allow exponent sign: 1e-9
				if (rs[j] == 'e' || rs[j] == 'E') && j+1 < len(rs) && (rs[j+1] == '+' || rs[j+1] == '-') && j+2 < len(rs) && unicode.IsDigit(rs[j+2]) {
					j += 2
				}
				j++
			}
			text := string(rs[i:j])
			v, err := ParseNumber(text)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNum, text: text, val: v})
			i = j
		case isIdentStart(r):
			j := i
			for j < len(rs) && isIdentPart(rs[j]) {
				j++
			}
			// Node names such as out+ / in- are permitted: a trailing
			// +/- is folded into the identifier when it is NOT followed
			// by something that could continue an expression operand.
			for j < len(rs) && (rs[j] == '+' || rs[j] == '-') {
				k := j + 1
				for k < len(rs) && unicode.IsSpace(rs[k]) {
					k++
				}
				if k < len(rs) && (unicode.IsDigit(rs[k]) || isIdentStart(rs[k]) || rs[k] == '(' || rs[k] == '.') {
					break // it's a binary operator
				}
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: string(rs[i:j])})
			i = j
		case strings.ContainsRune("+-*/^(),", r):
			toks = append(toks, token{kind: tokOp, text: string(r)})
			i++
		default:
			return nil, fmt.Errorf("expr: unexpected character %q in %q", r, src)
		}
	}
	return toks, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func binPrec(op string) int {
	switch op {
	case "+", "-":
		return 1
	case "*", "/":
		return 2
	case "^":
		return 3
	}
	return 0
}

// parseExpr is a Pratt/precedence-climbing expression parser.
func (p *parser) parseExpr(minPrec int) (Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp {
			return lhs, nil
		}
		prec := binPrec(t.text)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		// '^' is right-associative, others left.
		nextMin := prec + 1
		if t.text == "^" {
			nextMin = prec
		}
		rhs, err := p.parseExpr(nextMin)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: rune(t.text[0]), L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Node, error) {
	t, ok := p.peek()
	if ok && t.kind == tokOp && (t.text == "-" || t.text == "+") {
		p.pos++
		// Unary minus binds looser than '^' (so -2^2 == -(2^2)) but
		// tighter than * and /: parse the operand at '^' precedence.
		x, err := p.parseExpr(binPrec("^"))
		if err != nil {
			return nil, err
		}
		return &Unary{Op: rune(t.text[0]), X: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Node, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("expr: unexpected end of expression in %q", p.src)
	}
	switch t.kind {
	case tokNum:
		return &Num{V: t.val}, nil
	case tokIdent:
		// Function call?
		if nt, ok2 := p.peek(); ok2 && nt.kind == tokOp && nt.text == "(" {
			p.pos++
			call := &Call{Fn: strings.ToLower(t.text)}
			// Empty arg list?
			if ct, ok3 := p.peek(); ok3 && ct.kind == tokOp && ct.text == ")" {
				p.pos++
				return call, nil
			}
			for {
				arg, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				ct, ok3 := p.next()
				if !ok3 {
					return nil, fmt.Errorf("expr: unterminated call to %s in %q", call.Fn, p.src)
				}
				if ct.text == ")" {
					return call, nil
				}
				if ct.text != "," {
					return nil, fmt.Errorf("expr: expected ',' or ')' in call to %s, got %q", call.Fn, ct.text)
				}
			}
		}
		return &Var{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			inner, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			ct, ok2 := p.next()
			if !ok2 || ct.text != ")" {
				return nil, fmt.Errorf("expr: missing ')' in %q", p.src)
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q in %q", t.text, p.src)
}

// ---------------------------------------------------------------------------
// Base environment with standard math functions.

// MathCall implements the numeric built-in functions shared by every
// evaluation environment: min, max, abs, sqrt, log, log10, exp, pow, db,
// atan, floor, ceil. It returns (0, err) for unknown functions so callers
// can layer their own dispatch on top.
func MathCall(fn string, args []Arg) (float64, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case "min":
		if len(args) < 1 {
			return 0, fmt.Errorf("expr: min needs at least one argument")
		}
		m := args[0].Value
		for _, a := range args[1:] {
			if a.Value < m {
				m = a.Value
			}
		}
		return m, nil
	case "max":
		if len(args) < 1 {
			return 0, fmt.Errorf("expr: max needs at least one argument")
		}
		m := args[0].Value
		for _, a := range args[1:] {
			if a.Value > m {
				m = a.Value
			}
		}
		return m, nil
	case "abs":
		if err := need(1); err != nil {
			return 0, err
		}
		return abs(args[0].Value), nil
	case "sqrt":
		if err := need(1); err != nil {
			return 0, err
		}
		return sqrt(args[0].Value)
	case "log":
		if err := need(1); err != nil {
			return 0, err
		}
		return logE(args[0].Value)
	case "log10":
		if err := need(1); err != nil {
			return 0, err
		}
		return log10(args[0].Value)
	case "exp":
		if err := need(1); err != nil {
			return 0, err
		}
		return expF(args[0].Value), nil
	case "pow":
		if err := need(2); err != nil {
			return 0, err
		}
		return powF(args[0].Value, args[1].Value), nil
	case "db":
		if err := need(1); err != nil {
			return 0, err
		}
		// Floor the magnitude so db(0) = -600 dB instead of a domain
		// error: synthesis cost functions must remain evaluatable for
		// dead circuits.
		mag := abs(args[0].Value)
		if mag < 1e-30 {
			mag = 1e-30
		}
		v, err := log10(mag)
		if err != nil {
			return 0, err
		}
		return 20 * v, nil
	case "atan":
		if err := need(1); err != nil {
			return 0, err
		}
		return atanF(args[0].Value), nil
	case "floor":
		if err := need(1); err != nil {
			return 0, err
		}
		return floorF(args[0].Value), nil
	case "ceil":
		if err := need(1); err != nil {
			return 0, err
		}
		return ceilF(args[0].Value), nil
	}
	return 0, fmt.Errorf("expr: unknown function %q", fn)
}

// Tiny wrappers keep MathCall readable while guarding domain errors.
func abs(x float64) float64  { return mathAbs(x) }
func expF(x float64) float64 { return mathExp(x) }
func powF(x, y float64) float64 {
	return mathPow(x, y)
}
func atanF(x float64) float64  { return mathAtan(x) }
func floorF(x float64) float64 { return mathFloor(x) }
func ceilF(x float64) float64  { return mathCeil(x) }

func sqrt(x float64) (float64, error) {
	if x < 0 {
		return 0, fmt.Errorf("expr: sqrt of negative value %g", x)
	}
	return mathSqrt(x), nil
}

func logE(x float64) (float64, error) {
	if x <= 0 {
		return 0, fmt.Errorf("expr: log of non-positive value %g", x)
	}
	return mathLog(x), nil
}

func log10(x float64) (float64, error) {
	if x <= 0 {
		return 0, fmt.Errorf("expr: log10 of non-positive value %g", x)
	}
	return mathLog10(x), nil
}

// MapEnv is a simple Env backed by a variable map, with MathCall
// functions. It is handy in tests and for element-value evaluation.
type MapEnv map[string]float64

// Var looks the name up in the map.
func (m MapEnv) Var(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// Call dispatches to the shared math built-ins.
func (m MapEnv) Call(fn string, args []Arg) (float64, error) {
	return MathCall(fn, args)
}
