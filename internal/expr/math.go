package expr

import "math"

// Indirections for the math stdlib keep parse.go's function table terse.
var (
	mathAbs   = math.Abs
	mathExp   = math.Exp
	mathPow   = math.Pow
	mathSqrt  = math.Sqrt
	mathLog   = math.Log
	mathLog10 = math.Log10
	mathAtan  = math.Atan
	mathFloor = math.Floor
	mathCeil  = math.Ceil
)
