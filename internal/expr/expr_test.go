package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string, env Env) float64 {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := n.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestParseNumberSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1},
		{"-2.5", -2.5},
		{"1u", 1e-6},
		{"10pF", 10e-12},
		{"2.5Meg", 2.5e6},
		{"1MEG", 1e6},
		{"3k", 3e3},
		{"4m", 4e-3},
		{"5n", 5e-9},
		{"6f", 6e-15},
		{"7g", 7e9},
		{"8t", 8e12},
		{"1e-9", 1e-9},
		{"1.5e3", 1500},
		{"1e3k", 1e6}, // exponent then suffix
		{"100mV", 0.1},
		{"5V", 5},
	}
	for _, c := range cases {
		got, err := ParseNumber(c.in)
		if err != nil {
			t.Errorf("ParseNumber(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-18*math.Abs(c.want)+1e-30 {
			t.Errorf("ParseNumber(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseNumberErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", "1..2..3x%", "1u$", "--3"} {
		if _, err := ParseNumber(bad); err == nil {
			t.Errorf("ParseNumber(%q) succeeded, want error", bad)
		}
	}
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{}
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"2^3^2", 512}, // right associative
		{"-2^2", -4},   // unary binds looser than ^
		{"10/4", 2.5},
		{"1 - 2 - 3", -4}, // left associative
		{"1u + 2u", 3e-6},
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"abs(-4)", 4},
		{"sqrt(16)", 4},
		{"db(100)", 40},
		{"log10(1000)", 3},
		{"exp(0)", 1},
		{"pow(2, 10)", 1024},
		{"floor(2.7)", 2},
		{"ceil(2.1)", 3},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestVariablesAndDottedPaths(t *testing.T) {
	env := MapEnv{"W": 10e-6, "L": 2e-6, "xamp.m1.cd": 30e-15, "Cl": 1e-12, "I": 100e-6}
	got := evalStr(t, "I/(2*(Cl+xamp.m1.cd))", env)
	want := 100e-6 / (2 * (1e-12 + 30e-15))
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("slew expr = %g, want %g", got, want)
	}
	if got := evalStr(t, "W/L", env); math.Abs(got-5) > 1e-12 {
		t.Errorf("W/L = %g, want 5", got)
	}
}

func TestNodeNamesWithSigns(t *testing.T) {
	// out+ and in- must lex as identifiers when used as call args,
	// and "a+-b" style must still parse as arithmetic.
	env := funcEnv{vals: MapEnv{"a": 5, "b": 2}}
	got := evalStr(t, "v(out+) - v(in-)", env)
	if got != 42-10 {
		t.Errorf("v(out+)-v(in-) = %g, want 32", got)
	}
	if got := evalStr(t, "a - b", env); got != 3 {
		t.Errorf("a - b = %g, want 3", got)
	}
	if got := evalStr(t, "a + -b", env); got != 3 {
		t.Errorf("a + -b = %g, want 3", got)
	}
}

// funcEnv resolves v(node) calls for the test above.
type funcEnv struct{ vals MapEnv }

func (f funcEnv) Var(name string) (float64, bool) { return f.vals.Var(name) }

func (f funcEnv) Call(fn string, args []Arg) (float64, error) {
	if fn == "v" {
		switch args[0].Name {
		case "out+":
			return 42, nil
		case "in-":
			return 10, nil
		}
	}
	return MathCall(fn, args)
}

func TestCallPassesNames(t *testing.T) {
	// A bare identifier argument must arrive with IsName set even when it
	// also resolves as a variable.
	var seen Arg
	env := spyEnv{spy: &seen, vals: MapEnv{"tf": 7}}
	n := MustParse("dc_gain(tf)")
	if _, err := n.Eval(env); err != nil {
		t.Fatal(err)
	}
	if !seen.IsName || seen.Name != "tf" || seen.Value != 7 {
		t.Errorf("arg = %+v, want IsName with Name=tf Value=7", seen)
	}
}

type spyEnv struct {
	spy  *Arg
	vals MapEnv
}

func (s spyEnv) Var(name string) (float64, bool) { return s.vals.Var(name) }

func (s spyEnv) Call(fn string, args []Arg) (float64, error) {
	if fn == "dc_gain" {
		*s.spy = args[0]
		return 0, nil
	}
	return MathCall(fn, args)
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "1 +", "(1+2", "f(1,", "f(1 2)", "1 @ 2", "* 3", "1 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"x": 1}
	for _, bad := range []string{
		"y + 1",     // unknown var
		"1/0",       // div by zero
		"sqrt(-1)",  // domain
		"log(0)",    // domain
		"log10(-2)", // domain
		"nosuch(1)", // unknown function
		"min()",     // arity
		"abs(1,2)",  // arity
		"pow(1)",    // arity
	} {
		n, err := Parse(bad)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", bad, err)
			continue
		}
		if _, err := n.Eval(env); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must reparse to the same value.
	env := MapEnv{"a": 3, "b": 4}
	for _, src := range []string{
		"1+2*3", "a^2 + b^2", "min(a, b) * 2", "-a + 4", "sqrt(a*a + b*b)",
	} {
		n := MustParse(src)
		v1, err := n.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", n.String(), src, err)
		}
		v2, err := n2.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Errorf("round trip of %q: %g != %g", src, v1, v2)
		}
	}
}

// Property: for random a,b and ops, parse+eval matches direct computation.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b float64, opSel uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes printable and division safe.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		ops := []rune{'+', '-', '*'}
		op := ops[int(opSel)%len(ops)]
		n := &Binary{Op: op, L: &Var{Name: "a"}, R: &Var{Name: "b"}}
		got, err := n.Eval(MapEnv{"a": a, "b": b})
		if err != nil {
			return false
		}
		var want float64
		switch op {
		case '+':
			want = a + b
		case '-':
			want = a - b
		case '*':
			want = a * b
		}
		return got == want || math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsNumber(t *testing.T) {
	if !IsNumber("2.5Meg") {
		t.Error("IsNumber(2.5Meg) = false")
	}
	if IsNumber("W") {
		t.Error("IsNumber(W) = true")
	}
}

func TestCallStringContainsArgs(t *testing.T) {
	n := MustParse("pole(tf, 2)")
	s := n.String()
	if !strings.Contains(s, "pole(") || !strings.Contains(s, "tf") {
		t.Errorf("String() = %q, want pole call rendering", s)
	}
}
