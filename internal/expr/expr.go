// Package expr implements the small arithmetic expression language that
// ASTRX problem descriptions use for element values and performance
// specifications, e.g.
//
//	'I/(2*(Cl+xamp.m1.cd+xamp.m3.cd))'
//	'dc_gain(tf)'
//	'min(v(out+), v(out-)) - 0.2'
//
// Identifiers may be dotted paths (device operating-point parameters such
// as xamp.m1.gm). Function calls are resolved by the evaluation
// environment, which lets the cost-function compiler expose AWE-derived
// measures (dc_gain, ugf, phase_margin, …) alongside plain math.
// Numeric literals accept SPICE magnitude suffixes (1u, 2.5Meg, 10pF).
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Node is an expression AST node.
type Node interface {
	// Eval evaluates the node against env.
	Eval(env Env) (float64, error)
	// String renders the node as (normalized) source text.
	String() string
}

// Arg is a function-call argument as seen by an Env. Name is the raw
// identifier text when the argument was a bare identifier (so envs can
// accept object references like transfer-function names); Value is the
// numeric value when the argument evaluated successfully as a number.
type Arg struct {
	// IsName reports whether the argument was syntactically a bare
	// (possibly dotted) identifier.
	IsName bool
	// Name is the identifier text when IsName is true.
	Name string
	// Value is the argument's numeric value; NaN when the argument was a
	// name that did not resolve to a variable.
	Value float64
}

// Env resolves variables and function calls during evaluation.
type Env interface {
	// Var returns the value of a (possibly dotted) identifier.
	Var(name string) (float64, bool)
	// Call applies a named function to evaluated arguments.
	Call(fn string, args []Arg) (float64, error)
}

// ArgAllocator is an optional Env extension. An env that implements it
// supplies the argument buffers for Call.Eval instead of a fresh
// allocation per call, which matters on hot evaluation paths that run
// the same expressions millions of times. ArgBuf must return a length-n
// slice that stays valid until the env's top-level evaluation finishes
// (calls nest, so a bump arena reset per top-level Eval is the usual
// implementation; expression trees are shared between goroutines, so the
// buffer must live in the env, not the AST).
type ArgAllocator interface {
	ArgBuf(n int) []Arg
}

// ---------------------------------------------------------------------------
// AST node types

// Num is a numeric literal.
type Num struct{ V float64 }

// Eval returns the literal value.
func (n *Num) Eval(Env) (float64, error) { return n.V, nil }

func (n *Num) String() string { return strconv.FormatFloat(n.V, 'g', -1, 64) }

// Var is a (possibly dotted) identifier reference.
type Var struct{ Name string }

// Eval looks the identifier up in env.
func (v *Var) Eval(env Env) (float64, error) {
	if x, ok := env.Var(v.Name); ok {
		return x, nil
	}
	return 0, fmt.Errorf("expr: unknown identifier %q", v.Name)
}

func (v *Var) String() string { return v.Name }

// Call is a function application.
type Call struct {
	Fn   string
	Args []Node
}

// Eval evaluates the arguments (passing bare identifiers by name as well
// as by value) and dispatches to env.Call.
func (c *Call) Eval(env Env) (float64, error) {
	var args []Arg
	if aa, ok := env.(ArgAllocator); ok {
		args = aa.ArgBuf(len(c.Args))
	} else {
		args = make([]Arg, len(c.Args))
	}
	for i, a := range c.Args {
		if v, ok := a.(*Var); ok {
			val, resolved := env.Var(v.Name)
			if !resolved {
				val = math.NaN()
			}
			args[i] = Arg{IsName: true, Name: v.Name, Value: val}
			continue
		}
		val, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = Arg{Value: val}
	}
	return env.Call(c.Fn, args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// Unary is a prefix operation (only negation).
type Unary struct {
	Op rune
	X  Node
}

// Eval evaluates the operand and applies the operator.
func (u *Unary) Eval(env Env) (float64, error) {
	x, err := u.X.Eval(env)
	if err != nil {
		return 0, err
	}
	switch u.Op {
	case '-':
		return -x, nil
	case '+':
		return x, nil
	}
	return 0, fmt.Errorf("expr: unknown unary operator %q", u.Op)
}

func (u *Unary) String() string { return string(u.Op) + u.X.String() }

// Binary is an infix operation.
type Binary struct {
	Op   rune // one of + - * / ^
	L, R Node
}

// Eval evaluates both operands and applies the operator.
func (b *Binary) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("expr: division by zero in %s", b)
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("expr: unknown operator %q", b.Op)
}

func (b *Binary) String() string {
	return "(" + b.L.String() + string(b.Op) + b.R.String() + ")"
}

// ---------------------------------------------------------------------------
// SPICE-style number parsing

// spice magnitude suffixes; "meg" must be matched before "m".
var suffixes = []struct {
	text  string
	scale float64
}{
	{"meg", 1e6},
	{"mil", 25.4e-6},
	{"t", 1e12},
	{"g", 1e9},
	{"k", 1e3},
	{"m", 1e-3},
	{"u", 1e-6},
	{"n", 1e-9},
	{"p", 1e-12},
	{"f", 1e-15},
	{"a", 1e-18},
}

// ParseNumber parses a SPICE-style numeric literal: an optional sign, a
// decimal number with optional exponent, an optional magnitude suffix
// (f p n u m k meg g t, case-insensitive), and optional trailing unit
// letters that are ignored (10pF, 5V).
func ParseNumber(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("expr: empty number")
	}
	// Split leading numeric part.
	i := 0
	if t[i] == '+' || t[i] == '-' {
		i++
	}
	digits := false
	for i < len(t) && (t[i] >= '0' && t[i] <= '9' || t[i] == '.') {
		digits = true
		i++
	}
	if !digits {
		return 0, fmt.Errorf("expr: %q is not a number", s)
	}
	// Exponent must be e followed by digits (not a magnitude suffix).
	if i < len(t) && t[i] == 'e' {
		j := i + 1
		if j < len(t) && (t[j] == '+' || t[j] == '-') {
			j++
		}
		k := j
		for k < len(t) && t[k] >= '0' && t[k] <= '9' {
			k++
		}
		if k > j {
			i = k
		}
	}
	num, err := strconv.ParseFloat(t[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("expr: bad numeric literal %q: %v", s, err)
	}
	rest := t[i:]
	scale := 1.0
	for _, sfx := range suffixes {
		if strings.HasPrefix(rest, sfx.text) {
			scale = sfx.scale
			rest = rest[len(sfx.text):]
			break
		}
	}
	// Any remaining letters are units (F, V, hz, ohm…) and are ignored,
	// but stray punctuation is an error.
	for _, r := range rest {
		if !unicode.IsLetter(r) {
			return 0, fmt.Errorf("expr: trailing garbage %q in number %q", rest, s)
		}
	}
	return num * scale, nil
}

// IsNumber reports whether s parses as a SPICE-style numeric literal.
func IsNumber(s string) bool {
	_, err := ParseNumber(s)
	return err == nil
}
