package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte(`{"version":1,"id":"abc"}`),
		{},
		[]byte("binary\x00\xff\xfe data with\nnewlines\n"),
	} {
		sealed := Seal(payload)
		if !IsSealed(sealed) {
			t.Fatalf("Seal output not recognized: %q", sealed[:min(len(sealed), 32)])
		}
		got, err := Open(sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if string(got) != string(payload) {
			t.Fatalf("payload mismatch: %q != %q", got, payload)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	payload := []byte(`{"state":"queued","moves":120000}`)
	sealed := Seal(payload)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"unsealed", payload, ErrNotSealed},
		{"empty", nil, ErrNotSealed},
		{"truncated", sealed[:len(sealed)-5], ErrTruncated},
		{"mid-header cut", sealed[:20], ErrNotSealed},
	}
	// Flip one payload byte.
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)-3] ^= 0x40
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"bit flip", flipped, ErrChecksum})

	for _, tc := range cases {
		if _, err := Open(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestOpenTolleratesTrailingGarbage(t *testing.T) {
	// Extra bytes after the declared payload length (e.g. an older,
	// longer file partially overwritten on a non-atomic filesystem) must
	// not corrupt the declared span.
	payload := []byte("good payload")
	sealed := append(Seal(payload), []byte("stale tail from a previous version")...)
	got, err := Open(sealed)
	if err != nil {
		t.Fatalf("Open with trailing bytes: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestWriteSealedAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job-abc.json")
	payload := []byte(`{"id":"abc"}`)
	if err := WriteSealedAtomic(nil, path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSealed(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip: %q != %q", got, payload)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir has %d entries after atomic write, want 1", len(entries))
	}
	// Overwrite is atomic too.
	if err := WriteSealedAtomic(nil, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadSealed(nil, path); string(got) != "v2" {
		t.Fatalf("overwrite: %q", got)
	}
}

func TestReadSealedReportsMissingFile(t *testing.T) {
	_, err := ReadSealed(nil, filepath.Join(t.TempDir(), "nope.json"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err %v, want fs.ErrNotExist", err)
	}
}
