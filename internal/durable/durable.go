// Package durable is the integrity layer under the synthesis service's
// persisted state: every file that must survive a crash (job records,
// annealer checkpoints) is wrapped in a versioned, CRC32C-checksummed
// envelope and written atomically — temp file, fsync, rename, directory
// fsync — through a pluggable filesystem so fault-injection tests can
// tear writes apart deliberately.
//
// The envelope is a single ASCII header line followed by the payload:
//
//	%OBLX-ENV1 <payload-length> <crc32c-hex>\n<payload>
//
// Open rejects anything whose length or checksum disagrees with the
// header, so a torn rename, a short write, or bit rot is detected at
// read time instead of being resumed from as garbage. The payload keeps
// its own schema version (job records and checkpoints already carry
// one); the envelope only guarantees the bytes are whole.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// envelope header magic; the trailing "1" is the envelope format version.
const magic = "%OBLX-ENV1 "

// crcTable is the Castagnoli (CRC32C) polynomial table — the checksum
// with hardware support on every platform this service targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed corruption errors, distinguishable by errors.Is so a recovery
// fsck can report *why* a file was quarantined.
var (
	// ErrNotSealed marks data without an envelope header (legacy files,
	// foreign files, or total corruption of the first bytes).
	ErrNotSealed = errors.New("durable: no envelope header")
	// ErrTruncated marks an envelope whose payload is shorter than the
	// header promises — the classic torn-write signature.
	ErrTruncated = errors.New("durable: truncated payload")
	// ErrChecksum marks a whole-length payload whose CRC32C disagrees
	// with the header.
	ErrChecksum = errors.New("durable: checksum mismatch")
)

// Seal wraps payload in a checksummed envelope.
func Seal(payload []byte) []byte {
	sum := crc32.Checksum(payload, crcTable)
	hdr := fmt.Sprintf("%s%d %08x\n", magic, len(payload), sum)
	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	return append(out, payload...)
}

// IsSealed reports whether data begins with an envelope header.
func IsSealed(data []byte) bool {
	return strings.HasPrefix(string(data[:min(len(data), len(magic))]), magic)
}

// Open verifies an envelope and returns its payload. Errors wrap
// ErrNotSealed, ErrTruncated, or ErrChecksum.
func Open(data []byte) ([]byte, error) {
	if !IsSealed(data) {
		return nil, ErrNotSealed
	}
	rest := data[len(magic):]
	nl := strings.IndexByte(string(rest[:min(len(rest), 64)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: unterminated header", ErrNotSealed)
	}
	fields := strings.Fields(string(rest[:nl]))
	if len(fields) != 2 {
		return nil, fmt.Errorf("%w: malformed header", ErrNotSealed)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad length %q", ErrNotSealed, fields[0])
	}
	want, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad checksum %q", ErrNotSealed, fields[1])
	}
	payload := rest[nl+1:]
	if len(payload) < n {
		return nil, fmt.Errorf("%w: have %d of %d payload bytes", ErrTruncated, len(payload), n)
	}
	payload = payload[:n]
	if got := crc32.Checksum(payload, crcTable); got != uint32(want) {
		return nil, fmt.Errorf("%w: crc32c %08x, header says %08x", ErrChecksum, got, want)
	}
	return payload, nil
}

// File is the writable handle WriteFileAtomic drives; *os.File satisfies
// it, and fault injectors wrap it.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam under the durability layer. Production code
// uses OS; chaos tests substitute a fault-injecting wrapper (see
// faults.FS). Only the operations the persistence paths need are
// present.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// WriteFile is the non-atomic write — used for writability probes
	// and by fault injectors simulating partially committed files; the
	// durable path is WriteFileAtomic.
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a sync error on a
	// directory handle is reported, not ignored, because losing the
	// rename is exactly the failure this layer exists to surface.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic durably replaces path with data: write to a temp file
// in the same directory, fsync it, rename over path, fsync the
// directory. A crash at any point leaves either the old file or the new
// one — never a partial — and a fault at any step removes the temp file
// and reports the error.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	if fsys == nil {
		fsys = OS
	}
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: create temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func(e error) error {
		f.Close()
		fsys.Remove(tmp)
		return e
	}
	if n, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("durable: write %s: %w", path, err))
	} else if n < len(data) {
		return cleanup(fmt.Errorf("durable: write %s: short write (%d of %d bytes)", path, n, len(data)))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("durable: fsync %s: %w", path, err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: commit %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}

// WriteSealedAtomic seals payload in an envelope and writes it
// atomically — the one-call form the persistence paths use.
func WriteSealedAtomic(fsys FS, path string, payload []byte) error {
	return WriteFileAtomic(fsys, path, Seal(payload))
}

// ReadSealed reads path through fsys and verifies its envelope,
// returning the payload.
func ReadSealed(fsys FS, path string) ([]byte, error) {
	if fsys == nil {
		fsys = OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
