package oblx

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/dcsolve"
	"astrx/internal/faults"
	"astrx/internal/trace"
)

// cornerQuarantineAfter is the per-corner quarantine threshold: a corner
// whose evaluation fails (after its in-move retry) this many times in a
// row is excluded from the worst-case assembly for the rest of the run.
// The run then completes on the remaining corners with Result.Degraded
// set, instead of paying full evaluation cost forever for a lane that
// drags every candidate to the failure penalty.
const cornerQuarantineAfter = 10

// cornerLane is the failure bookkeeping of one corner (lane 0, the
// nominal, is tracked by the candidate-level machinery instead).
type cornerLane struct {
	fails       int // evaluations that still failed after the retry
	retries     int // in-move scalar re-attempts
	consec      int // consecutive failed evaluations (resets on success)
	quarantined bool
}

// cornerEval evaluates one candidate against every selected corner and
// assembles the worst-case-over-corners cost. It owns the K-lane batch
// workspace, the per-corner failure accounting, and the retry-then-
// quarantine policy; the surrounding problem wrapper keeps its existing
// candidate-level panic/NaN hardening on top.
type cornerEval struct {
	cs  *astrx.CornerSet
	bw  *astrx.BatchWorkspace
	inj *faults.Injector

	lanes     []cornerLane // indexed like cs lanes; [0] unused
	bufs      [][]float64  // per-lane candidate scratch
	xs        [][]float64  // batch argument: bufs[i] or nil (skipped)
	include   []bool
	evaluated []bool

	// span is the run's anneal span; lane-state transitions (first
	// retry, quarantine) are recorded on it as events. Nil-safe, so the
	// untraced hot path pays nothing — events fire only on the rare
	// transitions, never per eval.
	span *trace.Active
}

func newCornerEval(cs *astrx.CornerSet, inj *faults.Injector) *cornerEval {
	k := cs.K()
	return &cornerEval{
		cs:        cs,
		bw:        cs.NewCornerBatch(),
		inj:       inj,
		lanes:     make([]cornerLane, k),
		bufs:      make([][]float64, k),
		xs:        make([][]float64, k),
		include:   make([]bool, k),
		evaluated: make([]bool, k),
	}
}

// eval runs one worst-case evaluation of the master vector x. Exactly
// one adaptive-weight EMA update happens per call, like one scalar
// CostDetail — the invariant checkpoint/resume bit-exactness rests on.
func (ce *cornerEval) eval(x []float64) astrx.CostBreakdown {
	cs := ce.cs
	k := cs.K()
	for i := 0; i < k; i++ {
		ce.include[i] = i == 0 || !ce.lanes[i].quarantined
		ce.xs[i] = nil
		if ce.include[i] {
			ce.bufs[i] = cs.LaneX(i, x, ce.bufs[i])
			ce.xs[i] = ce.bufs[i]
		}
	}
	ce.bw.Run(ce.xs)

	// Nominal failure is candidate failure: WorstCase charges FailCost,
	// exactly like the scalar evaluator.
	ce.evaluated[0] = ce.bw.Lane(0).Err() == nil

	// Corners degrade instead: retry once in place, count the failure,
	// quarantine after a run of them. A failed-but-included corner
	// charges the deterministic worst-case penalty (the same
	// unmeasurable-spec units the scalar cost uses), so one diverging
	// Newton solve or unstable Padé fit never blanks the candidate.
	for i := 1; i < k; i++ {
		if !ce.include[i] {
			ce.evaluated[i] = false
			continue
		}
		name := cs.LaneName(i)
		failed := ce.bw.Lane(i).Err() != nil
		if ce.inj.CornerFail(name) {
			failed = true
		}
		if failed {
			ce.lanes[i].retries++
			if ce.lanes[i].retries == 1 {
				ce.span.Event("corner-retry", "corner", name)
			}
			failed = ce.inj.CornerFail(name) || ce.bw.RerunLane(i, ce.xs[i]) != nil
		}
		if failed {
			ce.lanes[i].fails++
			ce.lanes[i].consec++
			if ce.lanes[i].consec >= cornerQuarantineAfter {
				ce.lanes[i].quarantined = true
				ce.span.Event("corner-quarantined",
					"corner", name, "fails", strconv.Itoa(ce.lanes[i].fails))
			}
		} else {
			ce.lanes[i].consec = 0
		}
		ce.evaluated[i] = !failed
	}
	return cs.WorstCase(ce.bw, ce.include, ce.evaluated)
}

func (ce *cornerEval) cost(x []float64) float64 { return ce.eval(x).Total }

// degraded reports whether any corner has been quarantined.
func (ce *cornerEval) degraded() bool {
	for i := 1; i < len(ce.lanes); i++ {
		if ce.lanes[i].quarantined {
			return true
		}
	}
	return false
}

// unstableCount sums the Padé-instability counters over all lanes.
func (ce *cornerEval) unstableCount() int {
	n := 0
	for i := 0; i < ce.cs.K(); i++ {
		n += ce.bw.Lane(i).UnstableCount()
	}
	return n
}

// cornerCheckpoints snapshots the per-corner failure state for the
// checkpoint (corners only; the nominal lane's unstable counter rides
// in the checkpoint's existing field).
func (ce *cornerEval) cornerCheckpoints() []CornerCheckpoint {
	out := make([]CornerCheckpoint, 0, ce.cs.K()-1)
	for i := 1; i < ce.cs.K(); i++ {
		l := ce.lanes[i]
		out = append(out, CornerCheckpoint{
			Name:        ce.cs.LaneName(i),
			Fails:       l.fails,
			Retries:     l.retries,
			Consec:      l.consec,
			Quarantined: l.quarantined,
			Unstable:    ce.bw.Lane(i).UnstableCount(),
		})
	}
	return out
}

// restore rehydrates the per-corner state from a checkpoint. The
// checkpoint must carry exactly this run's corners, in order — resuming
// a cornered run under a different corner selection would silently
// change the cost function mid-run.
func (ce *cornerEval) restore(ck *Checkpoint) error {
	if len(ck.Corners) != ce.cs.K()-1 {
		return fmt.Errorf("oblx: checkpoint has %d corners, run selects %d — wrong corner set?",
			len(ck.Corners), ce.cs.K()-1)
	}
	for i, cc := range ck.Corners {
		lane := i + 1
		if name := ce.cs.LaneName(lane); cc.Name != name {
			return fmt.Errorf("oblx: checkpoint corner %d is %q, run selects %q", i, cc.Name, name)
		}
		ce.lanes[lane] = cornerLane{
			fails:       cc.Fails,
			retries:     cc.Retries,
			consec:      cc.Consec,
			quarantined: cc.Quarantined,
		}
		ce.bw.Lane(lane).SetUnstableCount(cc.Unstable)
	}
	ce.bw.Lane(0).SetUnstableCount(ck.Unstable)
	return nil
}

// failureStats builds the per-corner failure breakdown.
func (ce *cornerEval) failureStats() map[string]CornerFailures {
	out := make(map[string]CornerFailures, ce.cs.K()-1)
	for i := 1; i < ce.cs.K(); i++ {
		l := ce.lanes[i]
		out[ce.cs.LaneName(i)] = CornerFailures{
			Fails:       l.fails,
			Retries:     l.retries,
			Quarantined: l.quarantined,
		}
	}
	return out
}

// cornerResults builds the final per-lane breakdown. Call it after the
// final eval(best) so the batch lanes hold the verdict at the returned
// design; laneDC is the per-lane Newton-polish outcome.
func (ce *cornerEval) cornerResults(laneDC []bool) []CornerResult {
	out := make([]CornerResult, 0, ce.cs.K())
	for i := 0; i < ce.cs.K(); i++ {
		l := ce.lanes[i]
		cr := CornerResult{
			Name:        ce.cs.LaneName(i),
			Quarantined: l.quarantined,
			Evaluated:   ce.evaluated[i],
			DCSolved:    laneDC != nil && laneDC[i],
			Fails:       l.fails,
			Retries:     l.retries,
		}
		if cr.Evaluated {
			st := ce.bw.Lane(i).State()
			cr.SpecVals = finiteSpecVals(st.SpecVals)
			cr.AllMet = allSpecsMet(ce.cs.Lane(i), st.SpecVals)
		}
		out = append(out, cr)
	}
	return out
}

// allSpecsMet reports whether every non-objective spec is satisfied
// (normalized good→bad value ≤ 0) at the measured values.
func allSpecsMet(c *astrx.Compiled, specVals map[string]float64) bool {
	for _, s := range c.Deck.Specs {
		if s.Objective {
			continue
		}
		v, ok := specVals[s.Name]
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if astrx.Normalize(s, v) > 0 {
			return false
		}
	}
	return true
}

// cornerNewtonMove is the corner-aware Newton move: every live lane's
// relaxed-dc node-voltage section is driven toward its own corner's
// dc-correct bias (each corner has different supplies and thresholds,
// so each needs its own solve). Quarantined corners are skipped — their
// sections are annealing ballast, not worth a solve. The move proposes
// when at least one lane's section actually moved.
//
// The two variants divide the labor: the single-iteration step move
// tracks each lane's bias by continuation from its own current section,
// while the full solve warm-starts every corner lane from the nominal
// section it just solved. A corner is a small perturbation of the
// nominal operating point, so the nominal bias is an excellent initial
// guess — and, crucially, it lets a corner lane escape a dead basin
// (e.g. an all-devices-cutoff solution, a perfectly valid KCL point)
// that pure continuation from its own history would keep it in forever
// while the max-over-lanes region penalty pins the cost.
func cornerNewtonMove(ctx context.Context, ce *cornerEval, label string, iters int) anneal.Move {
	cs := ce.cs
	var (
		work     dcsolve.Workspace
		vbuf     []float64
		nomNodes []float64
		lbuf     [][]float64 = make([][]float64, cs.K())
	)
	return &anneal.FuncMove{
		Label: label,
		Fn: func(cur, next []float64, rng *rand.Rand) bool {
			any := false
			nomNodes = nomNodes[:0]
			for i := 0; i < cs.K(); i++ {
				if i > 0 && ce.lanes[i].quarantined {
					continue
				}
				lbuf[i] = cs.LaneX(i, cur, lbuf[i])
				lx := lbuf[i]
				c := cs.Lane(i)
				if i > 0 && iters > 1 && len(nomNodes) == cs.NFree {
					copy(lx[c.NUser:], nomNodes)
				}
				dp := c.DCProblem(lx)
				if dp.N() == 0 {
					continue
				}
				vbuf = append(vbuf[:0], lx[c.NUser:]...)
				if iters <= 1 {
					stepped, err := dcsolve.Step(dp, vbuf, dcsolve.Options{FailHook: ce.inj.NewtonHook(), Work: &work})
					if err != nil {
						continue
					}
					copy(lx[c.NUser:], stepped)
				} else {
					r, _ := dcsolve.Solve(ctx, dp, vbuf, dcsolve.Options{
						MaxIter: iters, BestEffort: true, FailHook: ce.inj.NewtonHook(), Work: &work,
					})
					if r == nil {
						continue
					}
					copy(lx[c.NUser:], r.V)
				}
				cs.StoreLaneNodes(i, lx, next)
				if i == 0 {
					nomNodes = append(nomNodes[:0], lx[cs.NUser:cs.NUser+cs.NFree]...)
				}
				// Any successful lane solve is a proposal, like the scalar
				// Newton move; the annealer's own no-op detection handles
				// the already-converged case.
				any = true
			}
			return any
		},
	}
}

// polishCorners runs the final full Newton polish on every live lane's
// node-voltage section (see polishDC). It returns the polished master
// vector, whether every live lane converged, and the per-lane verdict
// (quarantined lanes report false — their bias was never polished).
func polishCorners(ctx context.Context, ce *cornerEval, x []float64) ([]float64, bool, []bool) {
	cs := ce.cs
	out := append([]float64(nil), x...)
	laneDC := make([]bool, cs.K())
	allOK := true
	for i := 0; i < cs.K(); i++ {
		if i > 0 && ce.lanes[i].quarantined {
			continue
		}
		lx := cs.LaneX(i, out, nil)
		lx, ok := polishDC(ctx, cs.Lane(i), ce.inj, lx)
		laneDC[i] = ok
		if ok {
			cs.StoreLaneNodes(i, lx, out)
		} else {
			allOK = false
		}
	}
	return out, allOK, laneDC
}
