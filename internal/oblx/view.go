package oblx

import "astrx/internal/anneal"

// ResultView is the JSON-serializable projection of a Result: everything
// a service client needs (design variables, cost breakdown, spec values,
// run statistics) and nothing that isn't marshalable (the compiled cost
// closures, the full evaluation state). It is the wire format of the
// oblxd result endpoint and of the oblx CLI's machine-readable output.
type ResultView struct {
	Seed      int64 `json:"seed"`
	Moves     int   `json:"moves"`
	Accepted  int   `json:"accepted"`
	EvalCount int   `json:"eval_count"`
	Froze     bool  `json:"froze"`
	Cancelled bool  `json:"cancelled"`
	// DCSolved reports that the final Newton polish converged — the
	// design is dc-correct to simulator tolerances.
	DCSolved bool `json:"dc_solved"`

	DurationNS    int64   `json:"duration_ns"`
	TimePerEvalNS int64   `json:"time_per_eval_ns"`
	EvalsPerSec   float64 `json:"evals_per_sec"`

	Cost CostView `json:"cost"`
	// Variables are the synthesized user design variables by name.
	Variables map[string]float64 `json:"variables"`
	// SpecVals are OBLX's predicted spec values at the final point.
	SpecVals map[string]float64 `json:"spec_vals"`

	// Degraded reports a worst-case run that quarantined at least one
	// corner: the design is optimal only over the surviving corners.
	Degraded bool `json:"degraded,omitempty"`
	// Corners is the per-corner verdict of a worst-case run (nominal
	// lane first; empty for nominal-only runs).
	Corners []CornerResult `json:"corners,omitempty"`

	Failures  FailureStats      `json:"failures"`
	MoveStats []anneal.MoveStat `json:"move_stats,omitempty"`
}

// CostView is the itemized cost at the final point (the paper's
// C = C^obj + C^perf + C^dev + C^dc).
type CostView struct {
	Objective float64 `json:"objective"`
	Perf      float64 `json:"perf"`
	Dev       float64 `json:"dev"`
	DC        float64 `json:"dc"`
	Total     float64 `json:"total"`
	Failed    bool    `json:"failed,omitempty"`
}

// View builds the JSON projection of the result.
func (r *Result) View() *ResultView {
	v := &ResultView{
		Seed:       r.Seed,
		Moves:      r.Moves,
		Accepted:   r.Accepted,
		EvalCount:  r.EvalCount,
		Froze:      r.Froze,
		Cancelled:  r.Cancelled,
		DCSolved:   r.DCSolved,
		DurationNS: int64(r.Duration),
		Cost: CostView{
			Objective: r.Cost.Objective, Perf: r.Cost.Perf,
			Dev: r.Cost.Dev, DC: r.Cost.DC,
			Total: r.Cost.Total, Failed: r.Cost.Failed,
		},
		Degraded:  r.Degraded,
		Corners:   r.Corners,
		Failures:  r.Failures,
		MoveStats: r.MoveStats,
	}
	v.TimePerEvalNS = int64(r.TimePerEval())
	if secs := r.Duration.Seconds(); secs > 0 {
		v.EvalsPerSec = float64(r.EvalCount) / secs
	}
	v.Variables = make(map[string]float64, r.Compiled.NUser)
	for i := 0; i < r.Compiled.NUser; i++ {
		v.Variables[r.Compiled.Vars()[i].Name] = r.X[i]
	}
	if r.State != nil && r.State.SpecVals != nil {
		v.SpecVals = make(map[string]float64, len(r.State.SpecVals))
		for k, val := range r.State.SpecVals {
			v.SpecVals[k] = val
		}
	}
	return v
}
