package oblx

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/faults"
)

// corneredDividerCards declare two corners that move the divider's bias
// source. The divider's gain is a resistor ratio, so the corners change
// the operating point but not the spec — which is exactly what the
// failure-machinery tests want: three lanes with identical spec
// behavior, so every observable difference comes from the corner
// bookkeeping under test, not the circuit.
const corneredDividerCards = `
.corner slow vb=0.9
.corner fast vb=1.1
`

// corneredDiffAmpCards are realistic worst-case corners for the Table 2
// diff-amp: a hot slow corner (raised threshold, sagging supply) and a
// cold fast one (raised supply).
const corneredDiffAmpCards = `
.corner slow temp=85 nmos3.vto=0.95 vdd=2.4
.corner fast temp=-40 vdd=2.6
`

// TestCornerSynthesisMeetsAllCorners is the headline worst-case check:
// annealing the Table 2 diff-amp over nominal + two corners must land
// on a design whose specs hold at every corner, with every lane
// dc-solved and none degraded.
func TestCornerSynthesisMeetsAllCorners(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis run in -short mode")
	}
	// The worst-case target: the spec must hold at the slow corner too,
	// so aim the ugf requirement where the corners can still reach it.
	src := strings.Replace(diffAmpDeck, "good=1Meg", "good=300k", 1) + corneredDiffAmpCards
	deck := parse(t, src)
	res, err := Run(context.Background(), deck, Options{Seed: 3, MaxMoves: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Failed {
		t.Fatal("worst-case cost failed")
	}
	if res.Degraded {
		t.Fatal("healthy corners were quarantined")
	}
	// The master vector carries one node-voltage section per lane.
	nUser := res.Compiled.NUser
	nFree := len(res.Compiled.Vars()) - nUser
	if want := nUser + 3*nFree; len(res.X) != want {
		t.Fatalf("len(X) = %d, want %d (user + 3 lanes)", len(res.X), want)
	}
	if len(res.Corners) != 3 {
		t.Fatalf("corner breakdown has %d lanes, want 3", len(res.Corners))
	}
	for _, cr := range res.Corners {
		if !cr.Evaluated {
			t.Errorf("corner %s: not evaluated at the final design", cr.Name)
			continue
		}
		if !cr.DCSolved {
			t.Errorf("corner %s: final bias not dc-solved", cr.Name)
		}
		if !cr.AllMet {
			t.Errorf("corner %s: specs not met at the final design: %v", cr.Name, cr.SpecVals)
		}
		if cr.SpecVals["ugf"] < 300e3 {
			t.Errorf("corner %s: ugf = %g Hz, want ≥ 300 kHz", cr.Name, cr.SpecVals["ugf"])
		}
	}
	for name, cf := range res.Failures.Corners {
		if cf.Quarantined {
			t.Errorf("corner %s quarantined in a healthy run (%d fails)", name, cf.Fails)
		}
	}
}

// TestCornerPermanentFailureDegrades pins the graceful-degradation
// contract: with one corner fault-injected to fail every evaluation,
// the run must retry, then quarantine that corner after exactly
// cornerQuarantineAfter consecutive failures, finish on the surviving
// lanes with Degraded set, and still synthesize a working design.
func TestCornerPermanentFailureDegrades(t *testing.T) {
	deck := parse(t, dividerDeck+corneredDividerCards)
	inj := faults.New(7, faults.Rates{CornerFail: 1, FailCorner: "slow"})
	res, err := Run(context.Background(), deck, Options{
		Seed: 5, MaxMoves: 15_000, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("permanently failing corner did not degrade the run")
	}
	slow, ok := res.Failures.Corners["slow"]
	if !ok {
		t.Fatalf("no failure ledger for the injected corner: %+v", res.Failures.Corners)
	}
	if !slow.Quarantined {
		t.Error("slow corner not quarantined")
	}
	// Quarantine triggers after exactly the threshold of consecutive
	// post-retry failures; afterwards the lane is excluded, so the
	// counters freeze there — the accounting is fully deterministic.
	if slow.Fails != cornerQuarantineAfter {
		t.Errorf("slow corner fails = %d, want exactly %d", slow.Fails, cornerQuarantineAfter)
	}
	if slow.Retries != slow.Fails {
		t.Errorf("slow corner retries = %d, want %d (one retry per failure)", slow.Retries, slow.Fails)
	}
	if fast := res.Failures.Corners["fast"]; fast.Fails != 0 || fast.Quarantined {
		t.Errorf("healthy fast corner took collateral damage: %+v", fast)
	}
	if got, wantMin := inj.Count(faults.CornerFail), int64(2*cornerQuarantineAfter); got < wantMin {
		t.Errorf("injector fired %d times, want ≥ %d (initial + retry per eval)", got, wantMin)
	}
	// The run still optimizes the surviving lanes to a working design.
	if !isFiniteCost(res.Cost.Total) {
		t.Fatalf("degraded run cost = %g, want finite", res.Cost.Total)
	}
	if gain := res.State.SpecVals["gain"]; gain < 0.95 {
		t.Errorf("degraded run gain = %g, want ≥ 0.95", gain)
	}
	// Final per-lane breakdown: the quarantined corner is reported as
	// such and was not evaluated at the final design.
	byName := map[string]CornerResult{}
	for _, cr := range res.Corners {
		byName[cr.Name] = cr
	}
	if cr := byName["slow"]; !cr.Quarantined || cr.Evaluated || cr.AllMet || cr.DCSolved {
		t.Errorf("slow corner result = %+v, want quarantined and unevaluated", cr)
	}
	if cr := byName["fast"]; !cr.Evaluated {
		t.Errorf("fast corner result = %+v, want evaluated", cr)
	}
	if cr := byName["nominal"]; !cr.Evaluated || !cr.DCSolved {
		t.Errorf("nominal result = %+v, want evaluated and dc-solved", cr)
	}
}

// TestCornerCheckpointResumeReproducesRun is the corner-aware restart
// acceptance check: a worst-case run with a permanently failing corner,
// interrupted mid-flight and resumed from its checkpoint, must land on
// exactly the same design, counters, and per-corner ledger as the same
// run uninterrupted. The injected failure is rate-1 — it consumes no
// injector randomness, so both legs see the identical fault sequence.
func TestCornerCheckpointResumeReproducesRun(t *testing.T) {
	deck := parse(t, dividerDeck+corneredDividerCards)
	opt := Options{Seed: 21, MaxMoves: 40_000, NoFreeze: true}
	mkInj := func() *faults.Injector {
		return faults.New(7, faults.Rates{CornerFail: 1, FailCorner: "slow"})
	}

	full := opt
	full.Faults = mkInj()
	want, err := Run(context.Background(), deck, full)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Degraded {
		t.Fatal("reference run not degraded — fault injection broken?")
	}

	// Leg 1: checkpoint every 1500 moves, cancel at the first file.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20_000; i++ {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	o1 := opt
	o1.Faults = mkInj()
	o1.CheckpointPath = path
	o1.CheckpointEvery = 1500
	r1, err := Run(ctx, deck, o1)
	cancel()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if r1.CheckpointErr != nil {
		t.Fatal(r1.CheckpointErr)
	}
	if !r1.Cancelled {
		t.Skip("run finished before the cancel landed; nothing to resume")
	}

	// Leg 2: resume. The checkpoint carries the corner ledger — the
	// quarantine must not restart from zero.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Corners) != 2 {
		t.Fatalf("checkpoint carries %d corners, want 2", len(ck.Corners))
	}
	o2 := opt
	o2.Faults = mkInj()
	o2.Resume = ck
	r2, err := Run(context.Background(), deck, o2)
	if err != nil {
		t.Fatal(err)
	}

	if r2.Cost.Total != want.Cost.Total {
		t.Errorf("final cost: resumed %g != uninterrupted %g", r2.Cost.Total, want.Cost.Total)
	}
	if len(r2.X) != len(want.X) {
		t.Fatalf("len(X): %d != %d", len(r2.X), len(want.X))
	}
	for i := range want.X {
		if r2.X[i] != want.X[i] {
			t.Fatalf("X[%d]: resumed %g != uninterrupted %g", i, r2.X[i], want.X[i])
		}
	}
	if r2.EvalCount != want.EvalCount {
		t.Errorf("eval count: resumed %d != uninterrupted %d", r2.EvalCount, want.EvalCount)
	}
	if r2.Moves != want.Moves {
		t.Errorf("moves: resumed %d != uninterrupted %d", r2.Moves, want.Moves)
	}
	if r2.Degraded != want.Degraded {
		t.Errorf("degraded: resumed %v != uninterrupted %v", r2.Degraded, want.Degraded)
	}
	if !reflect.DeepEqual(r2.Failures.Corners, want.Failures.Corners) {
		t.Errorf("corner ledger: resumed %+v != uninterrupted %+v",
			r2.Failures.Corners, want.Failures.Corners)
	}
}

// TestCornerNominalOnlyMatchesUncornered: an explicit empty corner
// selection on a cornered deck must reproduce the plain nominal run of
// the same circuit bit-exactly — the .corner cards change the deck's
// canonical text but not its nominal evaluation.
func TestCornerNominalOnlyMatchesUncornered(t *testing.T) {
	opt := Options{Seed: 1, MaxMoves: 15_000}
	plain, err := Run(context.Background(), parse(t, dividerDeck), opt)
	if err != nil {
		t.Fatal(err)
	}
	nomOpt := opt
	nomOpt.Corners = []string{}
	nom, err := Run(context.Background(), parse(t, dividerDeck+corneredDividerCards), nomOpt)
	if err != nil {
		t.Fatal(err)
	}
	if nom.Degraded || len(nom.Corners) != 0 || nom.Failures.Corners != nil {
		t.Errorf("nominal-only run grew corner state: degraded=%v corners=%d",
			nom.Degraded, len(nom.Corners))
	}
	if nom.Cost.Total != plain.Cost.Total {
		t.Errorf("cost: nominal-only %g != uncornered %g", nom.Cost.Total, plain.Cost.Total)
	}
	if !reflect.DeepEqual(nom.X, plain.X) {
		t.Errorf("X: nominal-only %v != uncornered %v", nom.X, plain.X)
	}
	if nom.EvalCount != plain.EvalCount {
		t.Errorf("eval count: nominal-only %d != uncornered %d", nom.EvalCount, plain.EvalCount)
	}
}

// TestCornerSelectionErrors: unknown corner names and corner-selection
// mismatches against a checkpoint are refused up front, not silently
// reinterpreted.
func TestCornerSelectionErrors(t *testing.T) {
	deck := parse(t, dividerDeck+corneredDividerCards)
	if _, err := Run(context.Background(), deck, Options{Corners: []string{"typo"}}); err == nil {
		t.Error("unknown corner name accepted")
	}

	// A nominal-only run must refuse a checkpoint that carries corners.
	comp, err := astrx.Compile(parse(t, dividerDeck), astrx.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		Version: checkpointVersion, Vars: len(comp.Vars()),
		Anneal: &anneal.Checkpoint{}, Weights: &astrx.WeightsState{},
		Corners: []CornerCheckpoint{{Name: "slow"}, {Name: "fast"}},
	}
	if _, err := Run(context.Background(), parse(t, dividerDeck), Options{Resume: ck}); err == nil {
		t.Error("nominal-only run accepted a cornered checkpoint")
	}

	// A cornered run must refuse a checkpoint with the wrong corner set.
	cs, err := astrx.CompileCorners(deck, []string{"slow", "fast"}, astrx.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck2 := &Checkpoint{
		Version: checkpointVersion, Vars: len(cs.Vars()),
		Anneal: &anneal.Checkpoint{}, Weights: &astrx.WeightsState{},
		Corners: []CornerCheckpoint{{Name: "slow"}},
	}
	if _, err := Run(context.Background(), deck, Options{Resume: ck2}); err == nil {
		t.Error("cornered run accepted a checkpoint with a missing corner")
	}
	ck2.Corners = []CornerCheckpoint{{Name: "slow"}, {Name: "typo"}}
	if _, err := Run(context.Background(), deck, Options{Resume: ck2}); err == nil {
		t.Error("cornered run accepted a checkpoint with renamed corners")
	}
}
