package oblx

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/durable"
	"astrx/internal/faults"
	"astrx/internal/netlist"
)

// TestFaultInjectedRunCompletes is the headline robustness check: a
// ≥20k-move anneal with 1% injected evaluator panics and 1% injected NaN
// costs must complete normally, produce a finite best cost, and report
// failure counters that match the injector's ground truth.
func TestFaultInjectedRunCompletes(t *testing.T) {
	deck := parse(t, dividerDeck)
	inj := faults.New(99, faults.Rates{EvalPanic: 0.01, NaNCost: 0.01})
	res, err := Run(context.Background(), deck, Options{
		Seed: 2, MaxMoves: 25_000, NoFreeze: true, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled {
		t.Error("run reported cancellation without a cancelled context")
	}
	if !isFiniteCost(res.Cost.Total) {
		t.Fatalf("best cost = %g, want finite", res.Cost.Total)
	}
	f := res.Failures
	if f.PanicsRecovered == 0 || f.NonFiniteCosts == 0 {
		t.Fatalf("1%% fault rates over 25k moves injected nothing: %+v", f)
	}
	if got, want := int64(f.PanicsRecovered), inj.Count(faults.EvalPanic); got != want {
		t.Errorf("panics recovered = %d, injector fired %d", got, want)
	}
	if got, want := int64(f.NonFiniteCosts), inj.Count(faults.NaNCost); got != want {
		t.Errorf("non-finite costs = %d, injector fired %d", got, want)
	}
	// Every failed attempt is either retried or quarantined — the
	// retry-then-quarantine bookkeeping must balance exactly.
	if f.PanicsRecovered+f.NonFiniteCosts != f.Retries+f.Quarantined {
		t.Errorf("failure accounting does not balance: %+v", f)
	}
	// The annealer's per-class Failed counters sum to the rejected total.
	sum := 0
	for _, ms := range res.MoveStats {
		sum += ms.Failed
	}
	if sum != f.RejectedMoves {
		t.Errorf("per-class failed sum %d != rejected moves %d", sum, f.RejectedMoves)
	}
}

func isFiniteCost(x float64) bool { return x == x && x < 1e308 && x > -1e308 }

// TestRunBestTimeoutReturnsBestSoFar checks the deadline-bounded path: a
// RunBest whose context expires long before the move budget must return
// usable best-so-far results from every run, with no errors.
func TestRunBestTimeoutReturnsBestSoFar(t *testing.T) {
	deck := parse(t, dividerDeck)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	best, all, errs := RunBest(ctx, deck, 2, Options{
		Seed: 7, MaxMoves: 50_000_000, NoFreeze: true,
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if best == nil {
		t.Fatal("no best result from a timeout-bounded RunBest")
	}
	if len(all) != 2 {
		t.Fatalf("surviving runs = %d, want 2", len(all))
	}
	for i, r := range all {
		if !r.Cancelled {
			t.Errorf("run %d: Cancelled not set", i)
		}
		if !isFiniteCost(r.Cost.Total) {
			t.Errorf("run %d: best-so-far cost %g", i, r.Cost.Total)
		}
	}
}

// TestCheckpointResumeReproducesRun is the restart acceptance check: a
// run interrupted mid-flight and resumed from its checkpoint must land
// on exactly the same final design as the same run uninterrupted.
func TestCheckpointResumeReproducesRun(t *testing.T) {
	deck := parse(t, dividerDeck)
	opt := Options{Seed: 21, MaxMoves: 40_000, NoFreeze: true}

	full, err := Run(context.Background(), deck, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Leg 1: checkpoint every 1500 moves, cancel as soon as the first
	// checkpoint file lands.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20_000; i++ {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	o1 := opt
	o1.CheckpointPath = path
	o1.CheckpointEvery = 1500
	r1, err := Run(ctx, deck, o1)
	cancel()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if r1.CheckpointErr != nil {
		t.Fatal(r1.CheckpointErr)
	}
	if !r1.Cancelled {
		t.Skip("run finished before the cancel landed; nothing to resume")
	}

	// Leg 2: resume from the final (cancellation-point) checkpoint.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Anneal.Move >= opt.MaxMoves {
		t.Fatalf("checkpoint at move %d, nothing left to run", ck.Anneal.Move)
	}
	o2 := opt
	o2.Resume = ck
	r2, err := Run(context.Background(), deck, o2)
	if err != nil {
		t.Fatal(err)
	}

	if r2.Cost.Total != full.Cost.Total {
		t.Errorf("final cost: resumed %g != uninterrupted %g", r2.Cost.Total, full.Cost.Total)
	}
	if len(r2.X) != len(full.X) {
		t.Fatalf("len(X): %d != %d", len(r2.X), len(full.X))
	}
	for i := range full.X {
		if r2.X[i] != full.X[i] {
			t.Fatalf("X[%d]: resumed %g != uninterrupted %g", i, r2.X[i], full.X[i])
		}
	}
	if r2.EvalCount != full.EvalCount {
		t.Errorf("eval count: resumed %d != uninterrupted %d", r2.EvalCount, full.EvalCount)
	}
	if r2.Moves != full.Moves {
		t.Errorf("moves: resumed %d != uninterrupted %d", r2.Moves, full.Moves)
	}
}

func TestCheckpointRejectsWrongDeck(t *testing.T) {
	deck := parse(t, dividerDeck)
	ck := &Checkpoint{Version: checkpointVersion, Vars: 99,
		Anneal: &anneal.Checkpoint{}, Weights: &astrx.WeightsState{}}
	_, err := Run(context.Background(), deck, Options{Resume: ck})
	if err == nil {
		t.Error("checkpoint with wrong variable count accepted")
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	ck := &Checkpoint{Version: checkpointVersion, Seed: 5, MaxMoves: 100, Vars: 2,
		Anneal: &anneal.Checkpoint{}, Weights: &astrx.WeightsState{}}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 5 || got.MaxMoves != 100 || got.Vars != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing checkpoint loaded")
	}
	ck.Version = 99
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := SaveCheckpoint(bad, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Error("wrong-version checkpoint loaded")
	}
}

// TestCheckpointEnvelopeAndLegacy pins the durability contract of the
// checkpoint file: saves land on disk as checksummed envelopes carrying
// every counter (including Unstable), a corrupted envelope is refused,
// and raw-JSON checkpoints from releases before the envelope still load.
func TestCheckpointEnvelopeAndLegacy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	ck := &Checkpoint{Version: checkpointVersion, Seed: 5, MaxMoves: 100, Vars: 2,
		Anneal: &anneal.Checkpoint{}, Weights: &astrx.WeightsState{},
		Evals: 42, Unstable: 7}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !durable.IsSealed(raw) {
		t.Fatal("SaveCheckpoint wrote a raw file, want a sealed envelope")
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evals != 42 || got.Unstable != 7 {
		t.Errorf("counters lost in round trip: %+v", got)
	}

	// Flip a payload byte: the checksum must catch it.
	raw[len(raw)-2] ^= 0x01
	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(torn); err == nil {
		t.Error("corrupted envelope loaded without error")
	}

	// A pre-envelope checkpoint is plain JSON; it must still resume.
	legacy := filepath.Join(dir, "legacy.ckpt")
	if err := os.WriteFile(legacy, []byte(
		`{"version":1,"seed":9,"max_moves":50,"vars":2,`+
			`"anneal":{},"weights":{},"evals":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	lk, err := LoadCheckpoint(legacy)
	if err != nil {
		t.Fatalf("legacy raw-JSON checkpoint rejected: %v", err)
	}
	if lk.Seed != 9 || lk.Evals != 3 || lk.Unstable != 0 {
		t.Errorf("legacy checkpoint = %+v", lk)
	}
}

// TestRunBestRetriesFailedRun exercises the degrade-gracefully path with
// a stubbed runner: run 0 fails on its first seed, succeeds on the
// reseeded retry; run 1 succeeds outright. Nothing may be discarded.
func TestRunBestRetriesFailedRun(t *testing.T) {
	var mu sync.Mutex
	calls := map[int64]int{}
	runFn = func(ctx context.Context, deck *netlist.Deck, o Options) (*Result, error) {
		mu.Lock()
		calls[o.Seed]++
		mu.Unlock()
		if o.Seed == 11 {
			return nil, errors.New("synthetic failure")
		}
		return &Result{Seed: o.Seed, Cost: astrx.CostBreakdown{Total: float64(o.Seed)}}, nil
	}
	defer func() { runFn = Run }()

	best, all, errs := RunBest(context.Background(), nil, 2, Options{Seed: 11})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if len(all) != 2 {
		t.Fatalf("surviving runs = %d, want 2", len(all))
	}
	if best == nil || best.Seed != 11+7919 {
		t.Errorf("best = %+v, want the run-1 result (lowest cost)", best)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls[11] != 1 || calls[11+reseedOffset] != 1 || calls[11+7919] != 1 {
		t.Errorf("call pattern = %v, want one original, one retry, one sibling", calls)
	}
}

// TestRunBestAllFailed: only when every run (and its retry) fails does
// RunBest return a nil best — with every error reported per run.
func TestRunBestAllFailed(t *testing.T) {
	runFn = func(ctx context.Context, deck *netlist.Deck, o Options) (*Result, error) {
		return nil, errors.New("synthetic failure")
	}
	defer func() { runFn = Run }()

	best, all, errs := RunBest(context.Background(), nil, 3, Options{Seed: 1})
	if best != nil || len(all) != 0 {
		t.Errorf("best=%v survivors=%d, want total failure", best, len(all))
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("run %d: missing error", i)
		}
	}
}

// TestRunBestSurvivesRunPanic: a panicking runner must not take down the
// sibling runs.
func TestRunBestSurvivesRunPanic(t *testing.T) {
	runFn = func(ctx context.Context, deck *netlist.Deck, o Options) (*Result, error) {
		if o.Seed == 1 { // first attempt of run 0
			panic("synthetic panic")
		}
		return &Result{Seed: o.Seed, Cost: astrx.CostBreakdown{Total: 1}}, nil
	}
	defer func() { runFn = Run }()

	best, all, errs := RunBest(context.Background(), nil, 2, Options{Seed: 1})
	if best == nil {
		t.Fatal("sibling result discarded after a run panic")
	}
	if len(all) == 0 {
		t.Fatal("no survivors")
	}
	if errs[0] == nil {
		t.Error("panicked run not reported in its error slot")
	}
}
