package oblx

import (
	"encoding/json"
	"fmt"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/durable"
)

// checkpointVersion guards the on-disk format; bump on incompatible
// changes so a stale file fails loudly instead of resuming garbage.
const checkpointVersion = 1

// Checkpoint is the on-disk snapshot of an interrupted synthesis run:
// the annealer's complete state plus the stateful pieces OBLX layers on
// top of it (adaptive constraint weights, evaluation and failure
// counters, elapsed wall time). Resuming from it reproduces the same
// final result as the uninterrupted run with the same seed.
type Checkpoint struct {
	Version  int   `json:"version"`
	Seed     int64 `json:"seed"`
	MaxMoves int   `json:"max_moves"`
	// Vars is the total annealing-variable count (user + node voltages),
	// a cheap structural guard that the checkpoint matches the deck it
	// is resumed into.
	Vars int `json:"vars"`

	Anneal  *anneal.Checkpoint  `json:"anneal"`
	Weights *astrx.WeightsState `json:"weights"`

	Evals       int `json:"evals"`
	Panics      int `json:"panics"`
	NonFinite   int `json:"non_finite"`
	Retries     int `json:"retries"`
	Quarantined int `json:"quarantined"`
	// Unstable is the Padé-instability counter — the shared workspace's
	// for nominal-only runs, the nominal batch lane's for cornered runs.
	Unstable int `json:"unstable,omitempty"`

	// Corners carries the per-corner failure state of a worst-case run,
	// in lane order. Resuming requires the same corner selection: the
	// lane names must match exactly, and a nominal-only run refuses a
	// checkpoint that carries corner state (and vice versa — the master
	// variable count differs, so the Vars guard catches that direction).
	Corners []CornerCheckpoint `json:"corners,omitempty"`

	ElapsedNS int64 `json:"elapsed_ns"`
}

// CornerCheckpoint is one corner's resumable failure state.
type CornerCheckpoint struct {
	Name        string `json:"name"`
	Fails       int    `json:"fails"`
	Retries     int    `json:"retries"`
	Consec      int    `json:"consec"`
	Quarantined bool   `json:"quarantined"`
	Unstable    int    `json:"unstable,omitempty"`
}

// check validates the checkpoint against the compiled problem.
func (ck *Checkpoint) check(nVars int) error {
	switch {
	case ck.Version != checkpointVersion:
		return fmt.Errorf("oblx: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	case ck.Anneal == nil || ck.Weights == nil:
		return fmt.Errorf("oblx: checkpoint missing annealer or weight state")
	case ck.Vars != nVars:
		return fmt.Errorf("oblx: checkpoint has %d variables, deck compiles to %d — wrong deck?",
			ck.Vars, nVars)
	}
	return nil
}

// SaveCheckpoint durably writes a checkpoint: the JSON is sealed in a
// checksummed envelope and committed atomically (temp file, fsync,
// rename, directory fsync), so neither a crash mid-write nor a torn
// rename can leave a resumable-looking but corrupt checkpoint behind.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	return SaveCheckpointFS(nil, path, ck)
}

// SaveCheckpointFS is SaveCheckpoint through an explicit filesystem; a
// nil fsys uses the real one. Fault-injection tests substitute a
// fault-wrapped filesystem here.
func SaveCheckpointFS(fsys durable.FS, path string, ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("oblx: marshal checkpoint: %w", err)
	}
	if err := durable.WriteSealedAtomic(fsys, path, data); err != nil {
		return fmt.Errorf("oblx: checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint parses a checkpoint from raw JSON (no envelope) and
// validates its version and structure — the wire-transfer counterpart
// of LoadCheckpoint, for checkpoints shipped between fleet nodes rather
// than read from disk. The variable-count guard still runs at resume
// time, when the deck is compiled.
func DecodeCheckpoint(payload []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, fmt.Errorf("oblx: parse checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("oblx: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Anneal == nil || ck.Weights == nil {
		return nil, fmt.Errorf("oblx: checkpoint missing annealer or weight state")
	}
	return ck, nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. Sealed
// envelopes are verified; raw JSON from older releases is still
// accepted so in-flight checkpoints survive an upgrade.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return LoadCheckpointFS(nil, path)
}

// LoadCheckpointFS is LoadCheckpoint through an explicit filesystem; a
// nil fsys uses the real one.
func LoadCheckpointFS(fsys durable.FS, path string) (*Checkpoint, error) {
	if fsys == nil {
		fsys = durable.OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oblx: load checkpoint: %w", err)
	}
	if durable.IsSealed(data) {
		payload, err := durable.Open(data)
		if err != nil {
			return nil, fmt.Errorf("oblx: checkpoint %s: %w", path, err)
		}
		data = payload
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("oblx: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("oblx: checkpoint %s: version %d, want %d", path, ck.Version, checkpointVersion)
	}
	return ck, nil
}
