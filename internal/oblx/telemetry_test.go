package oblx

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"astrx/internal/telemetry"
)

// TestProgressFlightFields verifies that the enriched progress events
// carry the flight-recorder payload (move class, Lam target, Hustin
// weights, worst spec) and that a shared StageTimer collects per-stage
// timings across the run.
func TestProgressFlightFields(t *testing.T) {
	deck := parse(t, diffAmpDeck)
	timer := telemetry.NewEvalTimer(8)
	var events []ProgressEvent
	res, err := Run(context.Background(), deck, Options{
		Seed: 3, MaxMoves: 4000, NoFreeze: true,
		Progress:      func(ev ProgressEvent) { events = append(events, ev) },
		ProgressEvery: 250,
		StageTimer:    timer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(events) == 0 {
		t.Fatalf("no progress events")
	}

	classNames := map[string]bool{"random": true, "all-cont": true, "newton-full": true, "newton-step": true}
	var sawClass, sawWorst bool
	for _, ev := range events {
		if ev.MoveClass != "" {
			sawClass = true
			if !classNames[ev.MoveClass] {
				t.Fatalf("move %d: unknown class %q", ev.Move, ev.MoveClass)
			}
		}
		if ev.Move > 0 {
			if ev.LamTarget <= 0 || ev.LamTarget > 1 {
				t.Errorf("move %d: LamTarget = %g out of (0, 1]", ev.Move, ev.LamTarget)
			}
			if len(ev.Hustin) != 4 {
				t.Errorf("move %d: Hustin has %d classes, want 4: %v", ev.Move, len(ev.Hustin), ev.Hustin)
			}
			for name, q := range ev.Hustin {
				if !classNames[name] || q <= 0 {
					t.Errorf("move %d: Hustin[%q] = %g", ev.Move, name, q)
				}
			}
		}
		if ev.WorstSpec != "" {
			sawWorst = true
			if ev.WorstSpec != "ugf" {
				t.Errorf("move %d: WorstSpec = %q, want ugf (the only non-objective spec)", ev.Move, ev.WorstSpec)
			}
			if math.IsNaN(ev.WorstSpecU) || math.IsInf(ev.WorstSpecU, 0) {
				t.Errorf("move %d: WorstSpecU non-finite", ev.Move)
			}
		}
		// Every event must survive the SSE path's JSON encoding.
		if _, err := json.Marshal(ev); err != nil {
			t.Fatalf("move %d: event not JSON-encodable: %v", ev.Move, err)
		}
		rec := ev.FlightRecord()
		if rec.Move != ev.Move || rec.MoveClass != ev.MoveClass || rec.Temp != ev.Temp ||
			rec.LamTarget != ev.LamTarget || rec.BestCost != ev.BestCost {
			t.Fatalf("FlightRecord mismatch: %+v vs %+v", rec, ev)
		}
	}
	if !sawClass {
		t.Error("no event carried a move class")
	}
	if !sawWorst {
		t.Error("no event carried a worst spec")
	}

	// The stage timer saw the full pipeline.
	bd := timer.Breakdown()
	stages := map[string]bool{}
	for _, row := range bd {
		stages[row.Stage] = true
		if row.SampledEvals <= 0 || row.TotalSeconds < 0 {
			t.Errorf("stage %s: bad breakdown row %+v", row.Stage, row)
		}
	}
	for _, want := range []string{"bias", "stamp", "factor", "solve", "moments", "fit", "specs"} {
		if !stages[want] {
			t.Errorf("stage %s missing from breakdown %+v", want, bd)
		}
	}
}
