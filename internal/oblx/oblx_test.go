package oblx

import (
	"context"
	"math"
	"testing"

	"astrx/internal/netlist"
)

const dividerDeck = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends

.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
`

const diffAmpDeck = `
.lib c2u

.module amp (in+ in- out+ out- vdd vss oa)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=Wp l=2u
m4 out+ nb  vdd vdd pmos3 w=Wp l=2u
vb  nb vdd '0-Vb'
ib  a vss I
.ends

.var W  min=2u  max=500u grid
.var Wp min=2u  max=500u grid
.var L  min=2u  max=20u  grid
.var I  min=2u  max=500u cont
.var Vb min=0.5 max=2.2  cont

.const Cl 1p

.jig main
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vin  in+ 0 0 ac 1
ein  in- 0 in+ 0 -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vi1  in+ 0 0
vi2  in- 0 0
.ends

.obj  adm 'db(dc_gain(tf))'  good=40 bad=5
.spec ugf 'ugf(tf)'          good=1Meg bad=10k
.region xamp.m1 sat margin=0.05
.region xamp.m2 sat margin=0.05
.region xamp.m3 sat margin=0.05
.region xamp.m4 sat margin=0.05
`

func parse(t *testing.T, src string) *netlist.Deck {
	t.Helper()
	d, err := netlist.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSynthesizeDivider(t *testing.T) {
	deck := parse(t, dividerDeck)
	res, err := Run(context.Background(), deck, Options{Seed: 1, MaxMoves: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Failed {
		t.Fatal("final cost failed")
	}
	// The optimum pushes R2 to its maximum (gain → 0.99) with the node
	// voltage consistent.
	gain := res.State.SpecVals["gain"]
	if gain < 0.95 {
		t.Errorf("synthesized gain = %g, want ≥ 0.95", gain)
	}
	if res.State.MaxKCLError() > 1e-6 {
		t.Errorf("KCL error = %g", res.State.MaxKCLError())
	}
	if res.EvalCount == 0 || res.TimePerEval() <= 0 {
		t.Error("evaluation accounting missing")
	}
}

func TestSynthesizeDiffAmp(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis run in -short mode")
	}
	deck := parse(t, diffAmpDeck)
	res, err := Run(context.Background(), deck, Options{Seed: 3, MaxMoves: 60_000, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	// dc-correct at the end (the paper: "within tolerances not unlike
	// those used in circuit simulation"): absolute residuals below a
	// SPICE-like abstol, relative ones small.
	for n, r := range st.KCL {
		if math.Abs(r) > 5e-9 {
			t.Errorf("node %s: |KCL| = %g A, want < 5 nA", n, r)
		}
	}
	if st.MaxKCLError() > 1e-2 {
		t.Errorf("final relative KCL error = %g, want < 1e-2", st.MaxKCLError())
	}
	// Specs: gain target 40 dB, UGF ≥ 1 MHz.
	adm := st.SpecVals["adm"]
	ugf := st.SpecVals["ugf"]
	if adm < 25 {
		t.Errorf("adm = %g dB, want ≥ 25", adm)
	}
	if ugf < 0.8e6 {
		t.Errorf("ugf = %g Hz, want ≥ 0.8 MHz", ugf)
	}
	// Trace recorded and KCL error decayed along the run.
	if len(res.Trace) < 5 {
		t.Fatalf("trace too short: %d", len(res.Trace))
	}
	early := res.Trace[1].MaxKCLError
	late := res.Trace[len(res.Trace)-1].MaxKCLError
	if late > early && late > 1e-3 {
		t.Errorf("KCL error did not decay: early %g late %g", early, late)
	}
	// Hustin stats present for all four move classes.
	if len(res.MoveStats) != 4 {
		t.Errorf("move stats = %d", len(res.MoveStats))
	}
}

func TestRunBestPicksLowestCost(t *testing.T) {
	deck := parse(t, dividerDeck)
	best, all, errs := RunBest(context.Background(), deck, 3, Options{Seed: 11, MaxMoves: 6_000})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if len(all) != 3 {
		t.Fatalf("runs = %d", len(all))
	}
	for _, r := range all {
		if r.Cost.Total < best.Cost.Total {
			t.Error("RunBest did not return the lowest-cost run")
		}
	}
	if math.IsNaN(best.Cost.Total) {
		t.Error("best cost NaN")
	}
}

func TestRunErrors(t *testing.T) {
	d := parse(t, ".jig j\nr1 a 0 1\nvin a 0 0 ac 1\n.pz tf v(a) vin\n.ends\n")
	if _, err := Run(context.Background(), d, Options{}); err == nil {
		t.Error("deck without bias must error")
	}
}
