// Package oblx implements the OBLX solver: it minimizes an ASTRX-compiled
// cost function with simulated annealing, using the move palette §V-A of
// the paper describes — random single-variable perturbations, combined
// continuous steps, and full/partial Newton-Raphson moves that drive the
// relaxed-dc node voltages toward dc-correctness. Hustin's adaptive
// selection (in package anneal) learns which class pays off as cooling
// proceeds, and the constraint weights adapt so no problem-specific
// constants are needed.
package oblx

import (
	"fmt"
	"math/rand"
	"time"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/dcsolve"
	"astrx/internal/netlist"
)

// Options tunes a synthesis run.
type Options struct {
	Seed     int64
	MaxMoves int // annealing move budget (0 → 150_000)

	// Cost passes through to the compiler.
	Cost astrx.CostOptions

	// RecordTrace enables the Fig. 2 instrumentation: KCL error and cost
	// snapshots along the run.
	RecordTrace bool
	TraceEvery  int // moves between snapshots (0 → 500)
}

func (o *Options) defaults() {
	if o.MaxMoves == 0 {
		o.MaxMoves = 150_000
	}
	if o.TraceEvery == 0 {
		o.TraceEvery = 500
	}
}

// TraceSample is one Fig. 2 data point.
type TraceSample struct {
	Move     int
	Cost     float64
	BestCost float64
	Temp     float64
	// MaxKCLError is the worst relative KCL residual — the "discrepancy
	// from KCL-correct voltages" the paper plots.
	MaxKCLError float64
}

// Result is a completed synthesis run.
type Result struct {
	Compiled *astrx.Compiled
	// DCSolved reports that the final Newton polish converged: the
	// returned design is dc-correct to simulator tolerances. RunBest
	// prefers solved designs over lower-cost unsolved ones.
	DCSolved bool
	X        []float64
	Cost     astrx.CostBreakdown
	State    *astrx.EvalState

	Moves     int
	Accepted  int
	Froze     bool
	Duration  time.Duration
	EvalCount int
	MoveStats []anneal.MoveStat
	Trace     []TraceSample
	Seed      int64
}

// TimePerEval returns the mean wall time per circuit evaluation — the
// paper's "time/ckt eval" metric.
func (r *Result) TimePerEval() time.Duration {
	if r.EvalCount == 0 {
		return 0
	}
	return r.Duration / time.Duration(r.EvalCount)
}

// problem wraps the compiled cost function, counting evaluations.
type problem struct {
	c     *astrx.Compiled
	evals int
}

func (p *problem) Vars() []anneal.VarSpec { return p.c.Vars() }

func (p *problem) Cost(x []float64) float64 {
	p.evals++
	return p.c.Cost(x)
}

// Run synthesizes one deck with one seed.
func Run(deck *netlist.Deck, opt Options) (*Result, error) {
	opt.defaults()
	c, err := astrx.Compile(deck, opt.Cost)
	if err != nil {
		return nil, err
	}
	p := &problem{c: c}
	vars := c.Vars()

	moves := []anneal.Move{
		anneal.NewRandomStep("random", vars, 0.3),
		anneal.NewAllStep("all-cont", vars),
		newtonMove(c, "newton-full", 12),
		newtonMove(c, "newton-step", 1),
	}

	var trace []TraceSample
	weightFreeze := opt.MaxMoves / 4
	tracer := func(tp anneal.TracePoint) {
		// Adaptive weights settle during the first quarter of the run;
		// afterwards the cost function is stationary (the annealer's
		// best-so-far bookkeeping is re-based at the freeze point).
		if tp.Move < weightFreeze {
			c.Weights.Adapt(deck)
		}
		if opt.RecordTrace {
			st := c.EvaluateBias(tp.X)
			kcl := 0.0
			if st.Err == nil {
				kcl = st.MaxKCLError()
			}
			trace = append(trace, TraceSample{
				Move: tp.Move, Cost: tp.Cost, BestCost: tp.BestCost,
				Temp: tp.Temp, MaxKCLError: kcl,
			})
		}
	}

	start := time.Now()
	res, err := anneal.Run(p, moves, anneal.Options{
		Seed:        opt.Seed,
		MaxMoves:    opt.MaxMoves,
		Trace:       tracer,
		TraceEvery:  opt.TraceEvery,
		BestResetAt: weightFreeze,
	})
	if err != nil {
		return nil, fmt.Errorf("oblx: %w", err)
	}
	dur := time.Since(start)

	// Polish: a final full Newton solve from the best point tightens the
	// bias to simulator-grade dc-correctness (the annealer's freezing
	// tolerance is looser than a simulator's).
	best := append([]float64(nil), res.Best...)
	best, dcOK := polishDC(c, best)

	st := c.Evaluate(best)
	out := &Result{
		Compiled:  c,
		DCSolved:  dcOK,
		X:         best,
		Cost:      c.CostFromState(st),
		State:     st,
		Moves:     res.Moves,
		Accepted:  res.Accepted,
		Froze:     res.Froze,
		Duration:  dur,
		EvalCount: p.evals,
		MoveStats: res.MoveStats,
		Trace:     trace,
		Seed:      opt.Seed,
	}
	return out, nil
}

// polishDC runs a full Newton solve on the node voltages of x. A
// finished design must be dc-correct within simulator tolerances — the
// paper's formulation guarantees the predicted performance only at a
// KCL-consistent point — so a converged Newton bias is kept even when
// the (penalty-weighted) cost rises slightly: reporting performance at a
// dc-inconsistent point would be fiction. On solver failure the original
// vector is returned unchanged.
func polishDC(c *astrx.Compiled, x []float64) ([]float64, bool) {
	dp := c.DCProblem(x)
	if dp.N() == 0 {
		return x, true
	}
	v0 := append([]float64(nil), x[c.NUser:]...)
	r, err := dcsolve.Solve(dp, v0, dcsolve.Options{MaxIter: 200, GminSteps: 4})
	if err != nil {
		return x, false
	}
	out := append([]float64(nil), x...)
	copy(out[c.NUser:], r.V)
	return out, true
}

// newtonMove builds the gradient-directed move class: replace the node
// voltages with the result of iters damped Newton-Raphson steps at the
// current design variables.
func newtonMove(c *astrx.Compiled, label string, iters int) anneal.Move {
	return &anneal.FuncMove{
		Label: label,
		Fn: func(cur, next []float64, rng *rand.Rand) bool {
			dp := c.DCProblem(cur)
			n := dp.N()
			if n == 0 {
				return false
			}
			v := append([]float64(nil), cur[c.NUser:]...)
			if iters <= 1 {
				stepped, ok := dcsolve.Step(dp, v, dcsolve.Options{})
				if !ok {
					return false
				}
				copy(next[c.NUser:], stepped)
				return true
			}
			r, _ := dcsolve.Solve(dp, v, dcsolve.Options{MaxIter: iters, BestEffort: true})
			if r == nil {
				return false
			}
			// Decline no-op solutions (already dc-correct): the solve was
			// paid for, but proposing an identical point wastes a move.
			same := true
			for i, vv := range r.V {
				if vv != v[i] {
					same = false
					break
				}
			}
			if same {
				return false
			}
			copy(next[c.NUser:], r.V)
			return true
		},
	}
}

// RunBest runs n independent seeded anneals (the paper's "5-10 annealing
// runs performed overnight") in parallel goroutines and returns the
// lowest-cost result along with every per-run result.
func RunBest(deck *netlist.Deck, n int, opt Options) (*Result, []*Result, error) {
	if n <= 0 {
		n = 1
	}
	type slot struct {
		r   *Result
		err error
	}
	slots := make([]slot, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			o := opt
			o.Seed = opt.Seed + int64(i)*7919
			r, err := Run(deck, o)
			slots[i] = slot{r: r, err: err}
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	var best *Result
	all := make([]*Result, 0, n)
	better := func(a, b *Result) bool { // is a better than b?
		if a.DCSolved != b.DCSolved {
			return a.DCSolved // a dc-correct design beats any cheaper fiction
		}
		return a.Cost.Total < b.Cost.Total
	}
	for _, s := range slots {
		if s.err != nil {
			return nil, nil, s.err
		}
		all = append(all, s.r)
		if best == nil || better(s.r, best) {
			best = s.r
		}
	}
	return best, all, nil
}
