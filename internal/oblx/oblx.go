// Package oblx implements the OBLX solver: it minimizes an ASTRX-compiled
// cost function with simulated annealing, using the move palette §V-A of
// the paper describes — random single-variable perturbations, combined
// continuous steps, and full/partial Newton-Raphson moves that drive the
// relaxed-dc node voltages toward dc-correctness. Hustin's adaptive
// selection (in package anneal) learns which class pays off as cooling
// proceeds, and the constraint weights adapt so no problem-specific
// constants are needed.
//
// The solver is built for the paper's workflow — "5-10 annealing runs
// performed overnight" — so long runs are first-class citizens: every
// entry point takes a context.Context and returns the best-so-far design
// on cancellation, periodic checkpoints make interrupted runs resumable
// without losing a move, and the evaluation path absorbs evaluator
// panics and non-finite costs as counted move rejections instead of
// crashes (see DESIGN.md, "hardened evaluation contract").
package oblx

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"astrx/internal/anneal"
	"astrx/internal/astrx"
	"astrx/internal/dcsolve"
	"astrx/internal/faults"
	"astrx/internal/netlist"
	"astrx/internal/telemetry"
	"astrx/internal/trace"
)

// Options tunes a synthesis run.
type Options struct {
	Seed     int64
	MaxMoves int // annealing move budget (0 → 150_000)

	// NoFreeze disables the freezing criterion so the run consumes its
	// whole move budget — fixed-budget experiments and fault-injection
	// tests want deterministic move counts.
	NoFreeze bool

	// Cost passes through to the compiler.
	Cost astrx.CostOptions

	// Corners selects the operating corners to synthesize against: the
	// run compiles one evaluation plan per corner and anneals on the
	// worst spec value over all of them (plus the nominal). nil means
	// every corner the deck declares — a cornered deck is robust by
	// default; an explicit empty (non-nil) slice forces a nominal-only
	// run. Unknown names are an error.
	Corners []string

	// RecordTrace enables the Fig. 2 instrumentation: KCL error and cost
	// snapshots along the run.
	RecordTrace bool
	TraceEvery  int // moves between snapshots (0 → 500)

	// Progress, when set, receives a ProgressEvent every ProgressEvery
	// moves (0 → 500) — the streaming-telemetry hook the synthesis
	// service uses for its SSE feed. Each event costs one extra circuit
	// evaluation (spec values and the KCL residual are measured at the
	// current point), so the default cadence adds ~0.2% overhead. The
	// callback runs synchronously on the annealing goroutine.
	Progress      ProgressFunc
	ProgressEvery int

	// CheckpointPath, when set, makes Run write a resumable state
	// snapshot there every CheckpointEvery moves (atomically: tmp file
	// + rename), and once more at the point of context cancellation.
	CheckpointPath  string
	CheckpointEvery int // moves between checkpoints (0 → 5000)

	// Resume restores a run from a checkpoint previously written via
	// CheckpointPath (load it with LoadCheckpoint). The deck must be the
	// same; Seed and MaxMoves are taken from the checkpoint.
	Resume *Checkpoint

	// Faults, when non-nil, injects evaluator panics, NaN costs, and
	// Newton non-convergence at the injector's configured rates — the
	// test harness for the recovery machinery. Production runs leave it
	// nil (a nil injector is inert).
	Faults *faults.Injector

	// StageTimer, when non-nil, receives sampled per-stage timings of
	// the compiled cost pipeline (stamp → LU → moments → fit → specs).
	// One timer may be shared across RunBest's parallel runs: each run
	// attaches its own clock. A nil timer keeps the hot path
	// uninstrumented.
	StageTimer *telemetry.EvalTimer

	// Trace, when non-nil, receives the run's lifecycle spans: one
	// "anneal" span per Run (with a resume event when restoring from a
	// checkpoint) and one "corner:<name>" span per lane of a worst-case
	// run, with quarantine/retry events as they happen. The recorder is
	// nil-receiver safe, so a nil Trace keeps the hot path at zero
	// allocations — same contract as StageTimer. RunBest's parallel runs
	// may share one recorder (it is concurrency-safe); sampled eval
	// spans then attach to whichever run's anneal span registered last.
	Trace *trace.Recorder
}

func (o *Options) defaults() {
	if o.MaxMoves == 0 {
		o.MaxMoves = 150_000
	}
	if o.TraceEvery == 0 {
		o.TraceEvery = 500
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 5000
	}
}

// ProgressEvent is one streaming telemetry sample of a live run: where
// the annealing is (move count, temperature, acceptance ratio), how good
// the design is so far (cost, best cost, spec values), and how far from
// dc-correctness the relaxed formulation currently sits (KCL error).
type ProgressEvent struct {
	// Run is the RunBest run index (0 for single runs).
	Run      int   `json:"run"`
	Move     int   `json:"move"`
	MaxMoves int   `json:"max_moves"`
	Evals    int   `json:"evals"`
	Seed     int64 `json:"seed"`

	Temp        float64 `json:"temp"`
	AcceptRatio float64 `json:"accept_ratio"`
	Cost        float64 `json:"cost"`
	BestCost    float64 `json:"best_cost"`
	// MaxKCLError is the worst relative KCL residual at the current
	// point — the paper's Fig. 2 "discrepancy from KCL-correct voltages".
	MaxKCLError float64 `json:"max_kcl_error"`
	// SpecVals are the measured spec values at the current point (nil
	// when the point fails to evaluate).
	SpecVals map[string]float64 `json:"spec_vals,omitempty"`

	// Flight-recorder fields (see telemetry.MoveRecord): the most recent
	// proposal's class and outcome, the Lam controller's target
	// acceptance ratio, and the Hustin selector's per-class quality
	// weights at this point of the run.
	MoveClass string             `json:"move_class,omitempty"`
	Accepted  bool               `json:"accepted,omitempty"`
	DCost     float64            `json:"dcost,omitempty"`
	LamTarget float64            `json:"lam_target,omitempty"`
	Hustin    map[string]float64 `json:"hustin,omitempty"`
	// WorstSpec names the most-violated (or least-satisfied) non-objective
	// spec at the current point, with its violation in normalized "good to
	// bad" units (positive ⇒ failing). Empty when nothing measured.
	WorstSpec  string  `json:"worst_spec,omitempty"`
	WorstSpecU float64 `json:"worst_spec_u,omitempty"`

	// SpanID is the anneal span this event occurred under (empty when
	// tracing is off) — the exemplar link from a flight-recorder record
	// back into the job's span tree.
	SpanID string `json:"span_id,omitempty"`
}

// FlightRecord projects the event into the telemetry package's
// flight-recorder record — the daemon's ring buffer and oblx -trace-out
// both store this shape.
func (ev ProgressEvent) FlightRecord() telemetry.MoveRecord {
	return telemetry.MoveRecord{
		Run:         ev.Run,
		Move:        ev.Move,
		MoveClass:   ev.MoveClass,
		Accepted:    ev.Accepted,
		DCost:       ev.DCost,
		Temp:        ev.Temp,
		LamTarget:   ev.LamTarget,
		AccRatio:    ev.AcceptRatio,
		Cost:        ev.Cost,
		BestCost:    ev.BestCost,
		Hustin:      ev.Hustin,
		MaxKCLError: ev.MaxKCLError,
		WorstSpec:   ev.WorstSpec,
		WorstSpecU:  ev.WorstSpecU,
		Evals:       int64(ev.Evals),
		SpanID:      ev.SpanID,
	}
}

// ProgressFunc receives streaming progress from a running synthesis.
type ProgressFunc func(ProgressEvent)

// finiteSpecVals copies m dropping NaN/±Inf entries. Individual specs
// can legitimately fail to measure mid-anneal (e.g. an unstable reduced
// model rejects its transfer-function specs), and progress events must
// stay JSON-encodable for consumers like the oblxd SSE stream.
func finiteSpecVals(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out[k] = v
		}
	}
	return out
}

// TraceSample is one Fig. 2 data point.
type TraceSample struct {
	Move     int
	Cost     float64
	BestCost float64
	Temp     float64
	// MaxKCLError is the worst relative KCL residual — the "discrepancy
	// from KCL-correct voltages" the paper plots.
	MaxKCLError float64
}

// FailureStats counts the numerical failures a run absorbed. A healthy
// run reports zeros everywhere; fault-injected and near-singular
// problems reports how much trouble the hardened evaluation path ate.
type FailureStats struct {
	// PanicsRecovered counts evaluator panics caught and converted into
	// failed evaluations.
	PanicsRecovered int `json:"panics_recovered"`
	// NonFiniteCosts counts evaluations whose cost came back NaN/±Inf
	// (including injected NaNs).
	NonFiniteCosts int `json:"non_finite_costs"`
	// Retries counts transient-failure retry attempts of the
	// retry-then-quarantine policy.
	Retries int `json:"retries"`
	// Quarantined counts evaluations that still failed after all retries
	// and were surfaced to the annealer as rejections.
	Quarantined int `json:"quarantined"`
	// RejectedMoves counts moves the annealer rejected for a non-finite
	// cost (per move class in Result.MoveStats[].Failed).
	RejectedMoves int `json:"rejected_moves"`
	// Unstable counts transfer-function fits where the AWE Padé reduction
	// produced a model with right-half-plane poles (awe.ErrUnstable). The
	// model is still measured — the RHP pole is frequently a fit artifact
	// rather than real instability — but a run dominated by unstable fits
	// deserves scrutiny, so the count is surfaced here and as the daemon's
	// oblxd_eval_unstable_total metric.
	Unstable int `json:"unstable,omitempty"`
	// Corners itemizes the failures per corner for worst-case runs (nil
	// for nominal-only runs). These are lane-level events the run
	// degraded around, not candidate-level rejections: a corner failure
	// charges that corner the worst-case penalty, and only quarantine
	// removes it from the assembly.
	Corners map[string]CornerFailures `json:"corners,omitempty"`
}

// CornerFailures is one corner's failure ledger.
type CornerFailures struct {
	// Fails counts evaluations that still failed after the in-move retry.
	Fails int `json:"fails"`
	// Retries counts in-move scalar re-attempts after a batched failure.
	Retries int `json:"retries"`
	// Quarantined reports the corner was excluded from the worst-case
	// assembly after cornerQuarantineAfter consecutive failures.
	Quarantined bool `json:"quarantined"`
}

// Total sums all failure events.
func (f FailureStats) Total() int {
	return f.PanicsRecovered + f.NonFiniteCosts + f.Quarantined + f.RejectedMoves
}

// CornerResult is one lane's verdict at the final design of a
// worst-case run: whether its evaluation succeeded, whether its bias
// polished to dc-correctness, its measured spec values, and its failure
// history along the run.
type CornerResult struct {
	Name string `json:"name"`
	// Quarantined reports the corner was dropped from the worst-case
	// assembly (the run is Degraded).
	Quarantined bool `json:"quarantined,omitempty"`
	// Evaluated reports the final evaluation at this corner succeeded;
	// SpecVals and AllMet are meaningful only when it did.
	Evaluated bool `json:"evaluated"`
	DCSolved  bool `json:"dc_solved"`
	// AllMet reports every non-objective spec is satisfied at this
	// corner.
	AllMet   bool               `json:"all_met"`
	Fails    int                `json:"fails,omitempty"`
	Retries  int                `json:"retries,omitempty"`
	SpecVals map[string]float64 `json:"spec_vals,omitempty"`
}

// Result is a completed synthesis run.
type Result struct {
	Compiled *astrx.Compiled
	// DCSolved reports that the final Newton polish converged: the
	// returned design is dc-correct to simulator tolerances. RunBest
	// prefers solved designs over lower-cost unsolved ones.
	DCSolved bool
	X        []float64
	Cost     astrx.CostBreakdown
	State    *astrx.EvalState

	Moves     int
	Accepted  int
	Froze     bool
	Cancelled bool
	Duration  time.Duration
	EvalCount int
	MoveStats []anneal.MoveStat
	Trace     []TraceSample
	Seed      int64

	// Degraded reports that at least one corner was quarantined: the
	// returned design is the worst-case optimum over the surviving
	// corners only, and the per-corner breakdown says which dropped out.
	Degraded bool
	// Corners is the final per-lane breakdown of a worst-case run
	// (nominal first; nil for nominal-only runs).
	Corners []CornerResult

	// Failures itemizes the numerical failures absorbed along the run.
	Failures FailureStats
	// CheckpointErr records the last checkpoint-write failure, if any —
	// a checkpoint that cannot be written must not kill the run it
	// exists to protect.
	CheckpointErr error
}

// TimePerEval returns the mean wall time per circuit evaluation — the
// paper's "time/ckt eval" metric. Zero-eval runs (e.g. cancelled at
// birth) report 0 rather than dividing by zero.
func (r *Result) TimePerEval() time.Duration {
	if r.EvalCount == 0 {
		return 0
	}
	return r.Duration / time.Duration(r.EvalCount)
}

// evalRetries bounds the retry-then-quarantine policy: a failed
// evaluation (panic or non-finite cost) is retried this many times —
// absorbing transient faults — before the move is quarantined, i.e.
// surfaced to the annealer as an unconditional rejection.
const evalRetries = 2

// problem wraps the compiled cost function. It counts evaluations and
// hardens the evaluation path: evaluator panics are recovered, NaN/Inf
// costs detected, and both are converted — after bounded retries — into
// move rejections the annealer counts per move class. The contract with
// the annealer: every returned cost is either finite or NaN, and NaN
// means "reject this move" (see anneal.Run).
type problem struct {
	c   *astrx.Compiled
	inj *faults.Injector
	// ce, when non-nil, routes evaluations through the worst-case-over-
	// corners assembly instead of the scalar cost; the candidate-level
	// hardening (panic recovery, NaN retry, quarantine) stays identical.
	ce *cornerEval

	evals       int
	panics      int
	nanCosts    int
	retries     int
	quarantined int
}

func (p *problem) Vars() []anneal.VarSpec {
	if p.ce != nil {
		return p.ce.cs.Vars()
	}
	return p.c.Vars()
}

func (p *problem) Cost(x []float64) float64 {
	p.evals++
	for attempt := 0; ; attempt++ {
		c, panicked := p.tryCost(x)
		switch {
		case panicked:
			p.panics++
		case math.IsNaN(c) || math.IsInf(c, 0):
			p.nanCosts++
		default:
			return c
		}
		if attempt >= evalRetries {
			p.quarantined++
			return math.NaN() // annealer treats NaN as a hard rejection
		}
		p.retries++
	}
}

// tryCost runs one guarded evaluation attempt.
func (p *problem) tryCost(x []float64) (cost float64, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			cost, panicked = math.NaN(), true
		}
	}()
	p.inj.EvalPanic() // inert when p.inj is nil
	if p.inj.NaNCost() {
		return math.NaN(), false
	}
	if p.ce != nil {
		return p.ce.cost(x), false
	}
	return p.c.Cost(x), false
}

// Run synthesizes one deck with one seed. Cancelling ctx (SIGINT, a
// deadline) stops the run cleanly and returns the best-so-far design
// with Cancelled set — never an error.
func Run(ctx context.Context, deck *netlist.Deck, opt Options) (*Result, error) {
	opt.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	cornerNames, err := astrx.SelectCorners(deck, opt.Corners)
	if err != nil {
		return nil, err
	}
	var (
		c  *astrx.Compiled
		ce *cornerEval
	)
	if len(cornerNames) > 0 {
		cs, err := astrx.CompileCorners(deck, cornerNames, opt.Cost)
		if err != nil {
			return nil, err
		}
		c = cs.Nominal
		ce = newCornerEval(cs, opt.Faults)
	} else {
		c, err = astrx.Compile(deck, opt.Cost)
		if err != nil {
			return nil, err
		}
	}
	p := &problem{c: c, inj: opt.Faults, ce: ce}
	vars := p.Vars()
	// nomX projects a (possibly master) annealing vector onto the
	// nominal lane, for the trace/progress paths that evaluate through
	// the nominal compiled problem.
	var nomBuf []float64
	nomX := func(x []float64) []float64 {
		if ce == nil {
			return x
		}
		nomBuf = ce.cs.LaneX(0, x, nomBuf)
		return nomBuf
	}
	if opt.StageTimer != nil {
		// Each Run compiles its own problem, so the shared workspace is
		// single-goroutine here; the clock funnels into the (atomic)
		// shared timer.
		if ce != nil {
			ce.bw.Lane(0).SetClock(opt.StageTimer.NewClock())
		} else {
			c.Workspace().SetClock(opt.StageTimer.NewClock())
		}
	}

	// The anneal span covers this incarnation of the run. Errors below
	// (bad checkpoint, anneal failure) end it with status "error"; the
	// deferred End is a no-op once the span ended normally.
	asp := opt.Trace.Begin("anneal", "")
	defer asp.End("error")
	opt.Trace.SetEvalParent(asp.ID())
	if ce != nil {
		ce.span = asp
	}

	// The generic perturbation classes explore the scalar prefix only:
	// user variables plus the nominal node section. In a cornered run
	// the corner node sections are relaxation state that tracks each
	// corner's own bias — random kicks there can only add KCL violation
	// (summed over lanes, so an all-variable kick pays K× the scalar
	// uphill and is never accepted), and they dilute the user-variable
	// exploration the anneal actually needs. The corner Newton moves
	// are the sole writers of the corner sections.
	pvars := vars
	if ce != nil {
		pvars = vars[:ce.cs.NUser+ce.cs.NFree]
	}
	moves := []anneal.Move{
		anneal.NewRandomStep("random", pvars, 0.3),
		anneal.NewAllStep("all-cont", pvars),
		newtonMove(ctx, c, opt.Faults, "newton-full", 12),
		newtonMove(ctx, c, opt.Faults, "newton-step", 1),
	}
	if ce != nil {
		moves[2] = cornerNewtonMove(ctx, ce, "newton-full", 12)
		moves[3] = cornerNewtonMove(ctx, ce, "newton-step", 1)
	}
	moveNames := make([]string, len(moves))
	for i, m := range moves {
		moveNames[i] = m.Name()
	}

	var baseDur time.Duration
	if ck := opt.Resume; ck != nil {
		if err := ck.check(len(vars)); err != nil {
			return nil, err
		}
		opt.Seed = ck.Seed
		opt.MaxMoves = ck.MaxMoves
		c.Weights.Restore(ck.Weights)
		p.evals = ck.Evals
		p.panics = ck.Panics
		p.nanCosts = ck.NonFinite
		p.retries = ck.Retries
		p.quarantined = ck.Quarantined
		if ce != nil {
			if err := ce.restore(ck); err != nil {
				return nil, err
			}
		} else {
			if len(ck.Corners) > 0 {
				return nil, fmt.Errorf("oblx: checkpoint carries %d corners but the run is nominal-only — wrong corner selection?",
					len(ck.Corners))
			}
			c.Workspace().SetUnstableCount(ck.Unstable)
		}
		baseDur = time.Duration(ck.ElapsedNS)
		asp.Event("resume",
			"move", strconv.Itoa(ck.Anneal.Move),
			"evals", strconv.Itoa(ck.Evals))
	}
	asp.SetAttr("seed", strconv.FormatInt(opt.Seed, 10))
	asp.SetAttr("max_moves", strconv.Itoa(opt.MaxMoves))

	var trace []TraceSample
	weightFreeze := opt.MaxMoves / 4
	tracer := func(tp anneal.TracePoint) {
		// Adaptive weights settle during the first quarter of the run;
		// afterwards the cost function is stationary (the annealer's
		// best-so-far bookkeeping is re-based at the freeze point).
		if tp.Move < weightFreeze {
			c.Weights.Adapt(deck)
		}
		if opt.RecordTrace {
			st := c.EvaluateBias(nomX(tp.X))
			kcl := 0.0
			if st.Err == nil {
				kcl = st.MaxKCLError()
			}
			trace = append(trace, TraceSample{
				Move: tp.Move, Cost: tp.Cost, BestCost: tp.BestCost,
				Temp: tp.Temp, MaxKCLError: kcl,
			})
		}
	}

	annealOpt := anneal.Options{
		Seed:        opt.Seed,
		MaxMoves:    opt.MaxMoves,
		Trace:       tracer,
		TraceEvery:  opt.TraceEvery,
		BestResetAt: weightFreeze,
	}
	if opt.Progress != nil {
		every := opt.ProgressEvery
		if every <= 0 {
			every = 500
		}
		annealOpt.ProgressEvery = every
		annealOpt.Progress = func(tp anneal.TracePoint) {
			ev := ProgressEvent{
				Move: tp.Move, MaxMoves: opt.MaxMoves, Evals: p.evals,
				Seed: opt.Seed, Temp: tp.Temp, AcceptRatio: tp.AccRate,
				Cost: tp.Cost, BestCost: tp.BestCost,
				MoveClass: tp.MoveClass, Accepted: tp.Accepted,
				DCost: tp.DCost, LamTarget: tp.LamTarget,
			}
			if len(tp.Quality) == len(moveNames) {
				ev.Hustin = make(map[string]float64, len(moveNames))
				for i, q := range tp.Quality {
					ev.Hustin[moveNames[i]] = q
				}
			}
			if st := c.Evaluate(nomX(tp.X)); st.Err == nil {
				ev.MaxKCLError = st.MaxKCLError()
				ev.SpecVals = finiteSpecVals(st.SpecVals)
				ev.WorstSpec, ev.WorstSpecU = worstSpec(c, st)
			}
			ev.SpanID = asp.ID()
			opt.Progress(ev)
		}
	}
	if opt.NoFreeze {
		annealOpt.FreezeStages = -1
	}
	if opt.Resume != nil {
		annealOpt.Resume = opt.Resume.Anneal
	}

	start := time.Now()
	var ckErr error
	if opt.CheckpointPath != "" {
		annealOpt.CheckpointEvery = opt.CheckpointEvery
		annealOpt.OnCheckpoint = func(ack *anneal.Checkpoint) {
			ck := &Checkpoint{
				Version:     checkpointVersion,
				Seed:        opt.Seed,
				MaxMoves:    opt.MaxMoves,
				Vars:        len(vars),
				Anneal:      ack,
				Weights:     c.Weights.State(),
				Evals:       p.evals,
				Panics:      p.panics,
				NonFinite:   p.nanCosts,
				Retries:     p.retries,
				Quarantined: p.quarantined,
				ElapsedNS:   int64(baseDur + time.Since(start)),
			}
			if ce != nil {
				ck.Unstable = ce.bw.Lane(0).UnstableCount()
				ck.Corners = ce.cornerCheckpoints()
			} else {
				ck.Unstable = c.Workspace().UnstableCount()
			}
			if err := SaveCheckpoint(opt.CheckpointPath, ck); err != nil {
				ckErr = err
			}
		}
	}

	res, err := anneal.Run(ctx, p, moves, annealOpt)
	if err != nil {
		return nil, fmt.Errorf("oblx: %w", err)
	}
	dur := baseDur + time.Since(start)

	// Polish: a final full Newton solve from the best point tightens the
	// bias to simulator-grade dc-correctness (the annealer's freezing
	// tolerance is looser than a simulator's). A cancelled run still
	// gets its polish — it is bounded work and the returned design
	// should be the best usable one.
	best := append([]float64(nil), res.Best...)
	var (
		dcOK   bool
		laneDC []bool
		st     *astrx.EvalState
		cost   astrx.CostBreakdown
	)
	if ce != nil {
		best, dcOK, laneDC = polishCorners(context.WithoutCancel(ctx), ce, best)
		// One final worst-case evaluation at the polished point: the
		// result's cost, the nominal state, and the per-corner verdicts
		// all come from this single pass.
		cost = ce.eval(best)
		st = ce.bw.Lane(0).State()
	} else {
		best, dcOK = polishDC(context.WithoutCancel(ctx), c, opt.Faults, best)
		st = c.Evaluate(best)
		cost = c.CostFromState(st)
	}
	out := &Result{
		Compiled:  c,
		DCSolved:  dcOK,
		X:         best,
		Cost:      cost,
		State:     st,
		Moves:     res.Moves,
		Accepted:  res.Accepted,
		Froze:     res.Froze,
		Cancelled: res.Cancelled,
		Duration:  dur,
		EvalCount: p.evals,
		MoveStats: res.MoveStats,
		Trace:     trace,
		Seed:      opt.Seed,
		Failures: FailureStats{
			PanicsRecovered: p.panics,
			NonFiniteCosts:  p.nanCosts,
			Retries:         p.retries,
			Quarantined:     p.quarantined,
			RejectedMoves:   res.NonFinite,
			Unstable:        c.Workspace().UnstableCount(),
		},
		CheckpointErr: ckErr,
	}
	if ce != nil {
		out.Failures.Unstable = ce.unstableCount()
		out.Failures.Corners = ce.failureStats()
		out.Degraded = ce.degraded()
		out.Corners = ce.cornerResults(laneDC)
	}

	// Per-corner lane spans: lanes run in lockstep with the anneal, so
	// each span covers this incarnation's wall time and carries the
	// lane's verdict; the live quarantine/retry events landed on the
	// anneal span as they happened.
	for _, cr := range out.Corners {
		opt.Trace.AddTimed("corner:"+cr.Name, asp.ID(), start, time.Since(start),
			"evaluated", strconv.FormatBool(cr.Evaluated),
			"dc_solved", strconv.FormatBool(cr.DCSolved),
			"all_met", strconv.FormatBool(cr.AllMet),
			"quarantined", strconv.FormatBool(cr.Quarantined),
			"fails", strconv.Itoa(cr.Fails),
			"retries", strconv.Itoa(cr.Retries))
	}
	asp.SetAttr("moves", strconv.Itoa(res.Moves))
	asp.SetAttr("evals", strconv.Itoa(p.evals))
	if out.Degraded {
		asp.SetAttr("degraded", "true")
	}
	status := "ok"
	if res.Cancelled {
		status = "cancelled"
	}
	asp.End(status)
	return out, nil
}

// worstSpec finds the most-violated (or, for a fully passing design, the
// least-satisfied) finite non-objective spec, in Normalize's good→bad
// units: positive means failing. Specs that failed to measure are
// skipped — SpecVals going missing already signals that.
func worstSpec(c *astrx.Compiled, st *astrx.EvalState) (string, float64) {
	name, worst := "", math.Inf(-1)
	for _, s := range c.Deck.Specs {
		if s.Objective {
			continue
		}
		v, ok := st.SpecVals[s.Name]
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if u := astrx.Normalize(s, v); u > worst {
			name, worst = s.Name, u
		}
	}
	if name == "" {
		return "", 0
	}
	return name, worst
}

// polishDC runs a full Newton solve on the node voltages of x. A
// finished design must be dc-correct within simulator tolerances — the
// paper's formulation guarantees the predicted performance only at a
// KCL-consistent point — so a converged Newton bias is kept even when
// the (penalty-weighted) cost rises slightly: reporting performance at a
// dc-inconsistent point would be fiction. On solver failure the original
// vector is returned unchanged.
func polishDC(ctx context.Context, c *astrx.Compiled, inj *faults.Injector, x []float64) ([]float64, bool) {
	dp := c.DCProblem(x)
	if dp.N() == 0 {
		return x, true
	}
	v0 := append([]float64(nil), x[c.NUser:]...)
	r, err := dcsolve.Solve(ctx, dp, v0, dcsolve.Options{
		MaxIter: 200, GminSteps: 4, FailHook: inj.NewtonHook(),
	})
	if err != nil {
		return x, false
	}
	out := append([]float64(nil), x...)
	copy(out[c.NUser:], r.V)
	return out, true
}

// newtonMove builds the gradient-directed move class: replace the node
// voltages with the result of iters damped Newton-Raphson steps at the
// current design variables. A Newton failure (real or injected) simply
// declines the proposal — the annealer falls back to its other classes.
func newtonMove(ctx context.Context, c *astrx.Compiled, inj *faults.Injector, label string, iters int) anneal.Move {
	// The move closure owns its solver scratch: steady-state annealing
	// performs one solve per proposal, and the workspace makes the whole
	// proposal allocation-free. Moves run one at a time on the annealer
	// goroutine, so the capture is safe.
	var (
		work dcsolve.Workspace
		vbuf []float64
	)
	return &anneal.FuncMove{
		Label: label,
		Fn: func(cur, next []float64, rng *rand.Rand) bool {
			dp := c.DCProblem(cur)
			n := dp.N()
			if n == 0 {
				return false
			}
			vbuf = append(vbuf[:0], cur[c.NUser:]...)
			v := vbuf
			if iters <= 1 {
				stepped, err := dcsolve.Step(dp, v, dcsolve.Options{FailHook: inj.NewtonHook(), Work: &work})
				if err != nil {
					return false
				}
				copy(next[c.NUser:], stepped)
				return true
			}
			r, _ := dcsolve.Solve(ctx, dp, v, dcsolve.Options{
				MaxIter: iters, BestEffort: true, FailHook: inj.NewtonHook(), Work: &work,
			})
			if r == nil {
				return false
			}
			// Decline no-op solutions (already dc-correct): the solve was
			// paid for, but proposing an identical point wastes a move.
			same := true
			for i, vv := range r.V {
				if vv != v[i] {
					same = false
					break
				}
			}
			if same {
				return false
			}
			copy(next[c.NUser:], r.V)
			return true
		},
	}
}

// runFn is the seam RunBest uses to launch individual runs; tests
// substitute it to exercise the per-run failure paths deterministically.
var runFn = Run

// reseedOffset separates a retry's random stream from the failed
// attempt's (a large prime, like the per-run 7919 stride).
const reseedOffset = 104729

// RunBest runs n independent seeded anneals (the paper's "5-10 annealing
// runs performed overnight") in parallel goroutines and returns the
// lowest-cost surviving result, every successful per-run result, and a
// per-run error slice (nil entries for successes). A failed run is
// retried once with a reseeded stream after a short backoff; if it fails
// again it is reported in its error slot but no longer discards its
// successful siblings. Only when every run fails is the best result nil.
//
// Cancelling ctx stops all runs; each returns its best-so-far design, so
// a deadline-bounded RunBest still yields n usable candidates.
//
// Checkpointing is a single-run feature: CheckpointPath/Resume are
// ignored here (n parallel runs would race on one file).
func RunBest(ctx context.Context, deck *netlist.Deck, n int, opt Options) (*Result, []*Result, []error) {
	if n <= 0 {
		n = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				// A panic that escapes Run's own recovery (e.g. from
				// Compile) must not kill the sibling runs.
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("oblx: run %d panicked: %v", i, r)
				}
			}()
			o := opt
			o.Seed = opt.Seed + int64(i)*7919
			o.CheckpointPath = ""
			o.Resume = nil
			if opt.Progress != nil {
				// Tag each run's telemetry with its index so a consumer
				// multiplexing the streams can tell them apart.
				run := i
				o.Progress = func(ev ProgressEvent) {
					ev.Run = run
					opt.Progress(ev)
				}
			}
			r, err := runFn(ctx, deck, o)
			if err != nil && ctx.Err() == nil {
				// One reseeded retry with backoff: a different random
				// stream avoids deterministically replaying the failure,
				// and the backoff de-synchronizes retries from whatever
				// transient (fault burst, resource pressure) caused it.
				time.Sleep(time.Duration(20*(i+1)) * time.Millisecond)
				o.Seed += reseedOffset
				if r2, err2 := runFn(ctx, deck, o); err2 == nil {
					r, err = r2, nil
				} else {
					err = fmt.Errorf("oblx: run %d (seed %d) failed: %w (reseeded retry: %v)",
						i, opt.Seed+int64(i)*7919, err, err2)
				}
			}
			results[i], errs[i] = r, err
		}(i)
	}
	wg.Wait()

	var best *Result
	all := make([]*Result, 0, n)
	better := func(a, b *Result) bool { // is a better than b?
		if a.DCSolved != b.DCSolved {
			return a.DCSolved // a dc-correct design beats any cheaper fiction
		}
		return a.Cost.Total < b.Cost.Total
	}
	for i, r := range results {
		if errs[i] != nil || r == nil {
			continue
		}
		all = append(all, r)
		if best == nil || better(r, best) {
			best = r
		}
	}
	return best, all, errs
}
