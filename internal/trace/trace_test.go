package trace

import (
	"strings"
	"testing"
	"time"
)

func TestParseTable(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		tp   string
		ok   bool
	}{
		{"valid", valid, true},
		{"future version extra fields", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"empty", "", false},
		{"garbage", "garbage", false},
		{"three fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},
		{"version 00 extra fields", valid + "-extra", false},
		{"version ff forbidden", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"uppercase version", "0A-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"short trace id", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01", false},
		{"all-zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"non-hex parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902g7-01", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false},
		{"short flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Parse(tc.tp)
			if tc.ok != (err == nil) {
				t.Fatalf("Parse(%q) err=%v, want ok=%v", tc.tp, err, tc.ok)
			}
			if tc.ok && (got.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || got.SpanID != "00f067aa0ba902b7") {
				t.Fatalf("Parse(%q) = %+v", tc.tp, got)
			}
		})
	}
}

func TestContextRoundTrip(t *testing.T) {
	tc := Context{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	back, err := Parse(tc.Traceparent())
	if err != nil {
		t.Fatalf("Parse(Traceparent()) failed: %v", err)
	}
	if back != tc {
		t.Fatalf("round trip: got %+v want %+v", back, tc)
	}
}

func TestTraceIDFromRequest(t *testing.T) {
	hexID := strings.Repeat("5a", 16)
	if got := TraceIDFromRequest(hexID); got != hexID {
		t.Fatalf("well-formed request ID not used verbatim: %q", got)
	}
	h1, h2 := TraceIDFromRequest("job-abc"), TraceIDFromRequest("job-abc")
	if h1 != h2 {
		t.Fatalf("hashed trace ID not deterministic: %q vs %q", h1, h2)
	}
	if _, err := Parse(Context{TraceID: h1, SpanID: RootSpanID(h1)}.Traceparent()); err != nil {
		t.Fatalf("derived IDs not W3C-valid: %v", err)
	}
	r1, r2 := TraceIDFromRequest(""), TraceIDFromRequest("")
	if r1 == r2 {
		t.Fatalf("empty request IDs should get random trace IDs, got %q twice", r1)
	}
}

func TestRootSpanIDDeterministic(t *testing.T) {
	tid := TraceIDFromRequest("some-request")
	if RootSpanID(tid) != RootSpanID(tid) {
		t.Fatal("RootSpanID not deterministic")
	}
	if RootSpanID(tid) == RootSpanID(tid+"x") {
		t.Fatal("RootSpanID collision across trace IDs")
	}
}

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	a := r.Begin("x", "")
	a.SetAttr("k", "v")
	a.Event("e", "k", "v")
	a.End("")
	a.EndErr(nil)
	r.BeginRoot("root", "").End("")
	r.RecordEval("bias", time.Microsecond)
	r.AddTimed("t", "", time.Now(), 0)
	r.SetEvalParent("x")
	r.Add(Span{})
	r.EnableShipping()
	r.OnEnd(nil)
	if r.Snapshot() != nil || r.DrainNew() != nil || r.TraceID() != "" ||
		r.ParentID() != "" || r.Traceparent() != "" || r.Dropped() != 0 || a.ID() != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecorderLifecycleAndTree(t *testing.T) {
	tid := TraceIDFromRequest("req-1")
	rec := NewRecorder(Context{TraceID: tid, SpanID: RootSpanID(tid)}, 8)
	root := rec.BeginRoot("job", "00f067aa0ba902b7")
	root.SetAttr("job", "j1")
	anneal := rec.Begin("anneal", "")
	anneal.Event("resume", "move", "42")
	rec.SetEvalParent(anneal.ID())
	for i := 0; i < 20; i++ { // overflow the 8-slot eval ring
		rec.RecordEval("solve", time.Microsecond)
	}
	anneal.End("")
	root.End("")

	spans := rec.Snapshot()
	if rec.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", rec.Dropped())
	}
	var gotRoot, gotAnneal, evals int
	for _, sp := range spans {
		switch sp.Name {
		case "job":
			gotRoot++
			if sp.SpanID != RootSpanID(tid) || sp.Parent != "00f067aa0ba902b7" || sp.Attrs["job"] != "j1" {
				t.Fatalf("bad root span %+v", sp)
			}
		case "anneal":
			gotAnneal++
			if sp.Parent != RootSpanID(tid) || len(sp.Events) != 1 || sp.Events[0].Attrs["move"] != "42" {
				t.Fatalf("bad anneal span %+v", sp)
			}
		case "eval:solve":
			evals++
			if sp.Parent != anneal.ID() {
				t.Fatalf("eval span parented to %q, want anneal %q", sp.Parent, anneal.ID())
			}
		}
	}
	if gotRoot != 1 || gotAnneal != 1 || evals != 8 {
		t.Fatalf("spans: root=%d anneal=%d evals=%d", gotRoot, gotAnneal, evals)
	}

	tree := Tree(spans)
	if len(tree) != 1 || tree[0].Name != "job" {
		t.Fatalf("want single job root, got %d roots", len(tree))
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "anneal" {
		t.Fatalf("want anneal under root, got %+v", tree[0].Children)
	}
	if len(tree[0].Children[0].Children) != 8 {
		t.Fatalf("want 8 eval children, got %d", len(tree[0].Children[0].Children))
	}
}

func TestOpenSpansInSnapshot(t *testing.T) {
	tid := TraceIDFromRequest("req-open")
	rec := NewRecorder(Context{TraceID: tid, SpanID: RootSpanID(tid)}, 0)
	root := rec.BeginRoot("job", "")
	spans := rec.Snapshot()
	if len(spans) != 1 || !spans[0].Open || spans[0].Parent != "" {
		t.Fatalf("open root not materialized: %+v", spans)
	}
	root.End("")
	root.End("") // double-end is a no-op
	spans = rec.Snapshot()
	if len(spans) != 1 || spans[0].Open || spans[0].Status != "ok" {
		t.Fatalf("ended root wrong: %+v", spans)
	}
}

func TestShippingDrainAndAdd(t *testing.T) {
	tid := TraceIDFromRequest("req-ship")
	worker := NewRecorder(Context{TraceID: tid, SpanID: RootSpanID(tid)}, 0)
	worker.EnableShipping()
	sp := worker.Begin("anneal", "")
	worker.RecordEval("fit", time.Millisecond)
	sp.End("")

	batch := worker.DrainNew()
	if len(batch) != 2 {
		t.Fatalf("DrainNew = %d spans, want 2", len(batch))
	}
	if got := worker.DrainNew(); got != nil {
		t.Fatalf("second drain should be empty, got %d", len(got))
	}

	var ends []string
	coord := NewRecorder(Context{TraceID: tid, SpanID: RootSpanID(tid)}, 0)
	coord.OnEnd(func(name string, d time.Duration) { ends = append(ends, name) })
	for _, s := range batch {
		coord.Add(s)
	}
	coord.Add(Span{TraceID: "feedfeedfeedfeedfeedfeedfeedfeed", SpanID: "aaaaaaaaaaaaaaaa", Name: "stray"})
	got := coord.Snapshot()
	if len(got) != 2 {
		t.Fatalf("coordinator has %d spans, want 2 (stray trace dropped)", len(got))
	}
	if len(ends) != 2 {
		t.Fatalf("OnEnd fired %d times, want 2", len(ends))
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	tid := TraceIDFromRequest("req-snap")
	rec := NewRecorder(Context{TraceID: tid, SpanID: RootSpanID(tid)}, 0)
	rec.BeginRoot("job", "").End("")
	rec.AddTimed("queue-wait", "", time.Now(), 5*time.Millisecond, "tenant", "acme")

	data, err := EncodeSnapshot(SnapshotHeader{TraceID: tid, Label: "job-1", Cause: "done"}, rec.Snapshot())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	hdr, spans, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if hdr.Version != SnapshotVersion || hdr.TraceID != tid || hdr.Label != "job-1" {
		t.Fatalf("bad header %+v", hdr)
	}
	if len(spans) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(spans))
	}
	found := false
	for _, sp := range spans {
		if sp.Name == "queue-wait" && sp.Attrs["tenant"] == "acme" {
			found = true
		}
	}
	if !found {
		t.Fatal("queue-wait span lost in round trip")
	}

	if _, _, err := DecodeSnapshot([]byte(`{"version":99}` + "\n")); err == nil {
		t.Fatal("version mismatch not rejected")
	}
	if _, _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("empty payload not rejected")
	}
}
