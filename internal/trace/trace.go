// Package trace is a stdlib-only, W3C-traceparent-compatible span layer
// for the synthesis pipeline. A job's trace/span IDs derive from its
// existing request ID, so the same identifier correlates logs, metrics
// exemplars, flight-recorder MoveRecords, and the span tree.
//
// The Recorder is nil-receiver safe throughout, like telemetry.Clock:
// every method on a nil *Recorder or nil *Active is a no-op, so code can
// be instrumented unconditionally and pay nothing (no branches beyond a
// nil check, no allocations) when tracing is off. High-volume sampled
// eval spans go into a fixed-capacity ring; low-volume lifecycle spans
// (submit, queue-wait, claim, anneal, corner lanes) go into a separate
// pinned ring that eval traffic can never evict.
package trace

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Context is a W3C trace context: the 32-hex-digit trace ID and a
// 16-hex-digit span ID. Depending on direction the span ID is either
// the remote parent (when parsed from an incoming traceparent) or the
// local span new children should attach to (when propagated outward).
type Context struct {
	TraceID string
	SpanID  string
}

// Traceparent renders the context as a version-00 W3C traceparent
// header value with the sampled flag set.
func (c Context) Traceparent() string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// Parse validates a W3C traceparent header value strictly:
//
//   - version is 2 lowercase hex digits and not the forbidden "ff"
//   - version 00 has exactly four fields (future versions may append
//     fields, which we accept and ignore)
//   - trace-id is 32 lowercase hex digits, not all zero
//   - parent-id is 16 lowercase hex digits, not all zero
//   - trace-flags is 2 lowercase hex digits
//
// It returns the embedded trace ID and parent span ID.
func Parse(tp string) (Context, error) {
	parts := strings.Split(tp, "-")
	if len(parts) < 4 {
		return Context{}, fmt.Errorf("trace: traceparent has %d fields, want at least 4", len(parts))
	}
	ver := parts[0]
	if !isHexLower(ver, 2) {
		return Context{}, fmt.Errorf("trace: bad traceparent version %q", ver)
	}
	if ver == "ff" {
		return Context{}, fmt.Errorf("trace: traceparent version ff is forbidden")
	}
	if ver == "00" && len(parts) != 4 {
		return Context{}, fmt.Errorf("trace: version-00 traceparent has %d fields, want 4", len(parts))
	}
	tid, pid, flags := parts[1], parts[2], parts[3]
	if !isHexLower(tid, 32) || allZero(tid) {
		return Context{}, fmt.Errorf("trace: bad trace ID %q", tid)
	}
	if !isHexLower(pid, 16) || allZero(pid) {
		return Context{}, fmt.Errorf("trace: bad parent span ID %q", pid)
	}
	if !isHexLower(flags, 2) {
		return Context{}, fmt.Errorf("trace: bad trace flags %q", flags)
	}
	return Context{TraceID: tid, SpanID: pid}, nil
}

func isHexLower(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// TraceIDFromRequest derives a trace ID from a job's request ID. A
// request ID that already is a well-formed trace ID (the HTTP layer
// promotes incoming traceparent trace IDs into request IDs) is used
// verbatim, so the client's trace and the job's trace are the same
// trace. Anything else is hashed, and an empty request ID gets a
// random ID.
func TraceIDFromRequest(requestID string) string {
	if isHexLower(requestID, 32) && !allZero(requestID) {
		return requestID
	}
	if requestID == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err == nil && !allZeroBytes(b[:]) {
			return hex.EncodeToString(b[:])
		}
		requestID = "oblx-random-fallback"
	}
	sum := sha256.Sum256([]byte(requestID))
	return hex.EncodeToString(sum[:16])
}

// RootSpanID is the deterministic root span ID for a trace. Deriving
// it from the trace ID alone means the coordinator and every worker
// incarnation of a job agree on the root without coordination — a
// resumed attempt on a different machine parents to the same root and
// the trace stays one tree across worker death.
func RootSpanID(traceID string) string {
	sum := sha256.Sum256([]byte("oblx-root:" + traceID))
	id := hex.EncodeToString(sum[:8])
	if allZero(id) { // astronomically unlikely, but keep W3C-valid
		id = id[:15] + "1"
	}
	return id
}

// NewSpanID mints a random 16-hex-digit span ID. Span IDs are only
// minted off the eval hot path (span starts and sampled marks), so
// crypto/rand's cost is irrelevant.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil || allZeroBytes(b[:]) {
		b[7] = 1
	}
	return hex.EncodeToString(b[:])
}

func allZeroBytes(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Span kinds. Lifecycle spans are pinned (eval traffic cannot evict
// them); eval spans live in the sampled ring.
const (
	KindLifecycle = "lifecycle"
	KindEval      = "eval"
)

// Event is a timestamped annotation on a span (a corner quarantine, a
// checkpoint resume, ...).
type Event struct {
	Name  string            `json:"name"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one completed (or, in snapshots, still-open) operation.
type Span struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	Parent     string            `json:"parent_span_id,omitempty"`
	Name       string            `json:"name"`
	Kind       string            `json:"kind,omitempty"`
	Start      time.Time         `json:"start"`
	DurationNS int64             `json:"duration_ns"`
	Open       bool              `json:"open,omitempty"`
	Status     string            `json:"status,omitempty"` // "", "ok", "error", "cancelled"
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []Event           `json:"events,omitempty"`
}

// ring is a fixed-capacity overwrite-oldest span buffer.
type ring struct {
	buf     []Span
	start   int
	n       int
	dropped int
}

func (r *ring) push(sp Span) {
	if len(r.buf) == 0 {
		r.dropped++
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = sp
		r.n++
		return
	}
	r.buf[r.start] = sp
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

func (r *ring) appendTo(dst []Span) []Span {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	return dst
}

// DefaultRingCap is the per-job sampled-span ring capacity when the
// caller passes 0.
const DefaultRingCap = 256

// lifecycleCap bounds the pinned lifecycle ring. Lifecycle spans are a
// handful per attempt, so in practice nothing is ever evicted; the cap
// only guards against a pathological retry storm.
const lifecycleCap = 256

// pendingCap bounds the ship buffer on workers between drains.
const pendingCap = 512

// Recorder collects one job's spans: a pinned lifecycle ring, a
// fixed-capacity sampled-eval ring, the set of still-open spans, and
// (on fleet workers) a pending buffer drained into heartbeat/complete
// RPCs. All methods are safe on a nil receiver and safe for concurrent
// use.
type Recorder struct {
	mu         sync.Mutex
	tc         Context // trace ID + the span new top-level spans parent to
	life       ring
	evals      ring
	open       []*Active
	evalParent string
	shipping   bool
	pending    []Span
	onEnd      func(name string, d time.Duration)
}

// NewRecorder builds a recorder for trace tc.TraceID whose top-level
// spans parent to tc.SpanID (typically the deterministic root span
// ID). ringCap sizes the sampled-eval ring; 0 means DefaultRingCap.
func NewRecorder(tc Context, ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{
		tc:    tc,
		life:  ring{buf: make([]Span, lifecycleCap)},
		evals: ring{buf: make([]Span, ringCap)},
	}
}

// EnableShipping turns on the pending buffer: completed spans are also
// queued for DrainNew, for shipping across the fleet hop.
func (r *Recorder) EnableShipping() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.shipping = true
	r.mu.Unlock()
}

// OnEnd registers a hook called (under the recorder lock) with every
// completed span's name and duration — the span-duration histogram
// feed. Shipped spans ingested via Add fire it too.
func (r *Recorder) OnEnd(fn func(name string, d time.Duration)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onEnd = fn
	r.mu.Unlock()
}

// TraceID returns the trace ID ("" on a nil recorder).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.tc.TraceID
}

// ParentID returns the span ID top-level spans parent to.
func (r *Recorder) ParentID() string {
	if r == nil {
		return ""
	}
	return r.tc.SpanID
}

// Traceparent renders the recorder's outbound propagation context:
// children created by the receiving side parent to ParentID.
func (r *Recorder) Traceparent() string {
	if r == nil {
		return ""
	}
	return r.tc.Traceparent()
}

// Active is a started, not-yet-ended span. Nil-safe like the recorder.
type Active struct {
	r  *Recorder
	sp Span // guarded by r.mu once published in r.open
}

// Begin starts a lifecycle span. An empty parent means the recorder's
// ParentID; pass ParentNone for a genuine root.
func (r *Recorder) Begin(name, parent string) *Active {
	if r == nil { // nil check before NewSpanID: tracing-off must not pay for randomness
		return nil
	}
	return r.begin(name, parent, NewSpanID())
}

// BeginRoot starts the trace's root span using the deterministic
// per-trace root span ID, parented (remotely) to the caller-supplied
// span, e.g. the span ID from a client's traceparent header.
func (r *Recorder) BeginRoot(name, remoteParent string) *Active {
	if r == nil {
		return nil
	}
	return r.begin(name, orNone(remoteParent), r.tc.SpanID)
}

// ParentNone marks a span as a root: no parent even when the recorder
// has a default parent span.
const ParentNone = "-"

func orNone(parent string) string {
	if parent == "" {
		return ParentNone
	}
	return parent
}

func (r *Recorder) begin(name, parent, id string) *Active {
	if r == nil {
		return nil
	}
	switch parent {
	case "":
		parent = r.tc.SpanID
	case ParentNone:
		parent = ""
	}
	a := &Active{r: r, sp: Span{
		TraceID: r.tc.TraceID,
		SpanID:  id,
		Parent:  parent,
		Name:    name,
		Kind:    KindLifecycle,
		Start:   time.Now(),
	}}
	r.mu.Lock()
	r.open = append(r.open, a)
	r.mu.Unlock()
	return a
}

// ID returns the span ID ("" on nil).
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.sp.SpanID
}

// SetAttr sets a string attribute on the span.
func (a *Active) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.r.mu.Lock()
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]string, 4)
	}
	a.sp.Attrs[k] = v
	a.r.mu.Unlock()
}

// Event appends a timestamped event; kv is alternating key/value
// attribute pairs.
func (a *Active) Event(name string, kv ...string) {
	if a == nil {
		return
	}
	ev := Event{Name: name, Time: time.Now()}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	a.r.mu.Lock()
	a.sp.Events = append(a.sp.Events, ev)
	a.r.mu.Unlock()
}

// End completes the span with the given status ("" means ok) and
// commits it to the recorder. Ending twice is a no-op.
func (a *Active) End(status string) {
	if a == nil {
		return
	}
	r := a.r
	r.mu.Lock()
	idx := -1
	for i, o := range r.open {
		if o == a {
			idx = i
			break
		}
	}
	if idx < 0 { // already ended
		r.mu.Unlock()
		return
	}
	r.open = append(r.open[:idx], r.open[idx+1:]...)
	sp := a.sp
	sp.DurationNS = time.Since(sp.Start).Nanoseconds()
	if status == "" {
		status = "ok"
	}
	sp.Status = status
	r.commitLocked(sp)
	r.mu.Unlock()
}

// EndErr ends with status "error" and an error attribute, or "ok" when
// err is nil.
func (a *Active) EndErr(err error) {
	if a == nil {
		return
	}
	if err == nil {
		a.End("ok")
		return
	}
	a.SetAttr("error", err.Error())
	a.End("error")
}

// commitLocked files a completed span. Caller holds r.mu.
func (r *Recorder) commitLocked(sp Span) {
	if sp.Kind == KindEval {
		r.evals.push(sp)
	} else {
		r.life.push(sp)
	}
	if r.shipping {
		if len(r.pending) < pendingCap {
			r.pending = append(r.pending, sp)
		} else {
			r.evals.dropped++
		}
	}
	if r.onEnd != nil {
		r.onEnd(sp.Name, time.Duration(sp.DurationNS))
	}
}

// AddTimed records an already-measured lifecycle span (start and
// duration known after the fact). kv is alternating attribute pairs.
func (r *Recorder) AddTimed(name, parent string, start time.Time, d time.Duration, kv ...string) string {
	if r == nil {
		return ""
	}
	sp := Span{
		TraceID:    r.tc.TraceID,
		SpanID:     NewSpanID(),
		Parent:     parent,
		Name:       name,
		Kind:       KindLifecycle,
		Start:      start,
		DurationNS: d.Nanoseconds(),
		Status:     "ok",
	}
	if sp.Parent == "" {
		sp.Parent = r.tc.SpanID
	} else if sp.Parent == ParentNone {
		sp.Parent = ""
	}
	if len(kv) >= 2 {
		sp.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			sp.Attrs[kv[i]] = kv[i+1]
		}
	}
	r.mu.Lock()
	r.commitLocked(sp)
	r.mu.Unlock()
	return sp.SpanID
}

// SetEvalParent routes subsequent sampled eval spans under the given
// span (normally the live anneal span).
func (r *Recorder) SetEvalParent(spanID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.evalParent = spanID
	r.mu.Unlock()
}

// RecordEval records one sampled per-stage eval span into the ring.
// Only the sampled 1-in-N clock marks reach here, so the map-free span
// construction is cheap; with tracing off (nil recorder) this is a
// single nil check and zero allocations.
func (r *Recorder) RecordEval(stage string, d time.Duration) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	parent := r.evalParent
	if parent == "" {
		parent = r.tc.SpanID
	}
	r.commitLocked(Span{
		TraceID:    r.tc.TraceID,
		SpanID:     NewSpanID(),
		Parent:     parent,
		Name:       "eval:" + stage,
		Kind:       KindEval,
		Start:      now.Add(-d),
		DurationNS: d.Nanoseconds(),
		Status:     "ok",
	})
	r.mu.Unlock()
}

// Add ingests a completed span produced elsewhere (a worker's shipped
// spans, or a snapshot being re-seeded after recovery). Spans from a
// different trace are dropped.
func (r *Recorder) Add(sp Span) {
	if r == nil || sp.TraceID != r.tc.TraceID || sp.Open {
		return
	}
	r.mu.Lock()
	r.commitLocked(sp)
	r.mu.Unlock()
}

// DrainNew returns spans completed since the previous drain and clears
// the pending buffer. Spans lost to a failed ship are gone, like a
// dropped SSE frame — tracing is lossy telemetry, not an audit log.
func (r *Recorder) DrainNew() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := r.pending
	r.pending = nil
	r.mu.Unlock()
	return out
}

// Dropped reports how many spans were evicted or discarded.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.life.dropped + r.evals.dropped
}

// Snapshot materializes every recorded span plus the still-open ones
// (flagged Open with their duration so far), sorted by start time.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	out := make([]Span, 0, r.life.n+r.evals.n+len(r.open))
	out = r.life.appendTo(out)
	out = r.evals.appendTo(out)
	for _, a := range r.open {
		sp := a.sp
		sp.Open = true
		sp.DurationNS = now.Sub(sp.Start).Nanoseconds()
		if sp.Attrs != nil { // copy: the live map may still mutate
			attrs := make(map[string]string, len(sp.Attrs))
			for k, v := range sp.Attrs {
				attrs[k] = v
			}
			sp.Attrs = attrs
		}
		sp.Events = append([]Event(nil), sp.Events...)
		out = append(out, sp)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Node is one vertex of the assembled span tree.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree assembles spans into a forest: roots are spans with no parent
// or whose parent is not in the set (e.g. a remote client span).
// Children are sorted by start time.
func Tree(spans []Span) []*Node {
	byID := make(map[string]*Node, len(spans))
	nodes := make([]*Node, 0, len(spans))
	for _, sp := range spans {
		n := &Node{Span: sp}
		nodes = append(nodes, n)
		if _, dup := byID[sp.SpanID]; !dup {
			byID[sp.SpanID] = n
		}
	}
	var roots []*Node
	for _, n := range nodes {
		if p, ok := byID[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortChildren func(*Node)
	sortChildren = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, n := range roots {
		sortChildren(n)
	}
	return roots
}

// SnapshotVersion versions the durable JSONL snapshot payload.
const SnapshotVersion = 1

// SnapshotHeader is the first JSONL line of an exported snapshot.
type SnapshotHeader struct {
	Version int       `json:"version"`
	TraceID string    `json:"trace_id"`
	Label   string    `json:"label,omitempty"` // e.g. the job ID
	Cause   string    `json:"cause,omitempty"` // why the snapshot was cut
	Time    time.Time `json:"time"`
	Dropped int       `json:"dropped,omitempty"`
}

// EncodeSnapshot renders a header plus spans as JSONL — the payload
// sealed into a durable envelope by the server, and the format of
// `oblx -trace-spans`.
func EncodeSnapshot(hdr SnapshotHeader, spans []Span) ([]byte, error) {
	hdr.Version = SnapshotVersion
	var b strings.Builder
	enc := json.NewEncoder(&b)
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return nil, err
		}
	}
	return []byte(b.String()), nil
}

// DecodeSnapshot parses an EncodeSnapshot payload.
func DecodeSnapshot(data []byte) (SnapshotHeader, []Span, error) {
	var hdr SnapshotHeader
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return hdr, nil, fmt.Errorf("trace: empty snapshot")
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("trace: bad snapshot header: %w", err)
	}
	if hdr.Version != SnapshotVersion {
		return hdr, nil, fmt.Errorf("trace: snapshot version %d, want %d", hdr.Version, SnapshotVersion)
	}
	var spans []Span
	for _, ln := range lines[1:] {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		var sp Span
		if err := json.Unmarshal([]byte(ln), &sp); err != nil {
			return hdr, nil, fmt.Errorf("trace: bad snapshot span: %w", err)
		}
		spans = append(spans, sp)
	}
	return hdr, spans, nil
}
