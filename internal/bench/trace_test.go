package bench

import (
	"testing"
	"time"

	"astrx/internal/trace"
)

// TestTraceOffZeroAlloc pins the tracing-off guarantee: with tracing
// compiled in but disabled (nil *trace.Recorder, nil *trace.Active —
// exactly what the annealer and corner lanes hold when Options.Trace is
// unset), one cost evaluation wrapped in every nil-receiver trace call
// the hot path makes still performs zero heap allocations. This is the
// telemetry-guard companion to TestWorkspaceZeroAlloc: that test proves
// the eval core is alloc-free, this one proves the trace
// instrumentation adds nothing when off.
func TestTraceOffZeroAlloc(t *testing.T) {
	c, err := Compile(SimpleOTA)
	if err != nil {
		t.Fatal(err)
	}
	x := evalSequence(c, 0)[0]
	ws := c.NewWorkspace()
	ws.Cost(x) // warm up lazy scratch

	var rec *trace.Recorder // tracing off
	allocs := testing.AllocsPerRun(20, func() {
		// The span shapes the instrumented pipeline emits around an
		// eval: an anneal-scoped Active, a sampled per-stage eval span,
		// and corner-lane events — all no-ops on nil receivers.
		span := rec.Begin("anneal", "")
		rec.SetEvalParent(span.ID())
		ws.Cost(x)
		rec.RecordEval("eval", time.Microsecond)
		span.SetAttr("moves", "1")
		span.Event("corner-retry", "corner", "ss_cold")
		span.End("ok")
		rec.AddTimed("corner:tt", "", time.Now(), time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("eval with tracing off allocates %.1f/eval, want 0", allocs)
	}
}
