package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"astrx/internal/circuit"
	"astrx/internal/oblx"
)

// Table1Row is one column of the paper's Table 1 ("Result of ASTRX's
// analyses"), transposed into a row per circuit.
type Table1Row struct {
	Circuit      Circuit
	NetlistLines int
	SynthLines   int
	UserVars     int
	NodeVars     int
	Terms        int
	CLines       int
	BiasNodes    int
	BiasElems    int
	Jigs         []circuit.Stats
}

// Table1 compiles every benchmark and collects its analysis statistics.
func Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(Suite))
	for _, c := range Suite {
		comp, err := Compile(c)
		if err != nil {
			return nil, err
		}
		s := comp.Stats()
		rows = append(rows, Table1Row{
			Circuit:      c,
			NetlistLines: s.NetlistLines,
			SynthLines:   s.SynthLines,
			UserVars:     s.UserVars,
			NodeVars:     s.NodeVoltVars,
			Terms:        s.CostTerms,
			CLines:       s.EstCLines,
			BiasNodes:    s.BiasNodes,
			BiasElems:    s.BiasElements,
			Jigs:         s.JigCircuits,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 1. RESULT OF ASTRX'S ANALYSES\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %6s %7s %6s %8s %14s %s\n",
		"Circuit", "Netlist", "Synth", "UserX", "NodeVX", "Terms", "LinesC", "Bias(n,e)", "AWE circuits (n,e)")
	for _, r := range rows {
		jigs := make([]string, len(r.Jigs))
		for i, j := range r.Jigs {
			jigs[i] = fmt.Sprintf("A:%d,%d", j.Nodes, j.Elements)
		}
		fmt.Fprintf(&b, "%-22s %8d %8d %6d %7d %6d %8d %14s %s\n",
			r.Circuit, r.NetlistLines, r.SynthLines, r.UserVars, r.NodeVars,
			r.Terms, r.CLines, fmt.Sprintf("B:%d,%d", r.BiasNodes, r.BiasElems),
			strings.Join(jigs, " "))
	}
	return b.String()
}

// specUnit describes how Table 2 formats one spec.
type specUnit struct {
	label string
	scale float64 // display = value / scale
	unit  string
}

var table2Units = map[string]specUnit{
	"adm":   {"dc gain (dB)", 1, "dB"},
	"gain":  {"dc gain (dB)", 1, "dB"},
	"gbw":   {"gain bandwidth (MHz)", 1e6, "MHz"},
	"bw":    {"bandwidth (MHz)", 1e6, "MHz"},
	"pm":    {"phase margin (deg)", 1, "°"},
	"psrrn": {"PSRR (Vss) (dB)", 1, "dB"},
	"psrrp": {"PSRR (Vdd) (dB)", 1, "dB"},
	"swing": {"output swing (V)", 1, "V"},
	"sr":    {"slew rate (V/us)", 1e6, "V/µs"},
	"pwr":   {"static power (mW)", 1e-3, "mW"},
	"area":  {"active area (1e3 um^2)", 1e-9, "k µm²"},
}

// Table2Result is one synthesized benchmark with its verification.
type Table2Result struct {
	*SynthResult
}

// Table2 synthesizes the Table-2 suite. Budget and run count are per
// circuit; runs execute in parallel inside RunBest.
func Table2(ctx context.Context, opt SynthOptions) ([]Table2Result, error) {
	out := make([]Table2Result, 0, len(Table2Suite))
	for i, c := range Table2Suite {
		o := opt
		o.Seed = opt.Seed + int64(i)*1000003
		res, err := Synthesize(ctx, c, o)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Result{res})
	}
	return out, nil
}

// FormatTable2 renders the synthesis results in the paper's layout:
// "target: OBLX / Simulation" per attribute.
func FormatTable2(results []Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 2. BASIC SYNTHESIS RESULTS (spec: OBLX / Simulation)\n")
	for _, res := range results {
		fmt.Fprintf(&b, "\n-- %s --\n", res.Circuit)
		deck := res.Run.Compiled.Deck
		for _, s := range deck.Specs {
			row := res.Report.Spec(s.Name)
			if row == nil {
				continue
			}
			u, ok := table2Units[s.Name]
			if !ok {
				u = specUnit{s.Name, 1, ""}
			}
			dir := ">="
			if s.Objective {
				if s.Maximize() {
					dir = "max"
				} else {
					dir = "min"
				}
			} else if !s.Maximize() {
				dir = "<="
			}
			target := fmt.Sprintf("%s %.4g", dir, s.Good/u.scale)
			if s.Objective {
				target = dir
			}
			met := " "
			if !row.Met && !s.Objective {
				met = "!"
			}
			fmt.Fprintf(&b, "  %-24s %10s: %10.4g / %-10.4g %s%s\n",
				u.label, target, row.Predicted/u.scale, row.Simulated/u.scale, u.unit, met)
		}
		fmt.Fprintf(&b, "  %-24s %10s: %v\n", "time/ckt eval", "", res.Run.TimePerEval().Round(time.Microsecond))
		fmt.Fprintf(&b, "  %-24s %10s: %v (%d evals, froze=%v)\n", "CPU time/run", "",
			res.Run.Duration.Round(time.Millisecond), res.Run.EvalCount, res.Run.Froze)
		fmt.Fprintf(&b, "  %-24s %10s: %.3g (worst spec rel err)\n", "OBLX-vs-sim accuracy", "", res.Report.WorstRelErr)
	}
	return b.String()
}

// ManualNovelFC is the published manual design of the novel folded
// cascode (Table 3, "Manual Design" column), quoted from the paper.
var ManualNovelFC = map[string]float64{
	"adm":   71.2,    // dB
	"gbw":   47.8e6,  // Hz
	"pm":    77.4,    // degrees
	"psrrn": 92.6,    // dB
	"psrrp": 72.3,    // dB
	"swing": 2.8,     // V (±1.4)
	"sr":    76.8e6,  // V/s
	"area":  68.7e-9, // m²
	"pwr":   9.0e-3,  // W
}

// Table3 re-synthesizes the novel folded cascode (the paper's Table 3).
func Table3(ctx context.Context, opt SynthOptions) (*SynthResult, error) {
	return Synthesize(ctx, NovelFC, opt)
}

// FormatTable3 renders the manual-vs-automatic comparison.
func FormatTable3(res *SynthResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 3. NOVEL FOLDED CASCODE: MANUAL VS AUTOMATIC RE-SYNTHESIS\n")
	fmt.Fprintf(&b, "%-24s %12s %14s\n", "Attribute", "Manual", "OBLX / Sim")
	deck := res.Run.Compiled.Deck
	for _, s := range deck.Specs {
		row := res.Report.Spec(s.Name)
		if row == nil {
			continue
		}
		u, ok := table2Units[s.Name]
		if !ok {
			u = specUnit{s.Name, 1, ""}
		}
		manual, hasManual := ManualNovelFC[s.Name]
		ms := "-"
		if hasManual {
			ms = fmt.Sprintf("%.4g", manual/u.scale)
		}
		fmt.Fprintf(&b, "%-24s %12s %8.4g / %-8.4g %s\n",
			u.label, ms, row.Predicted/u.scale, row.Simulated/u.scale, u.unit)
	}
	fmt.Fprintf(&b, "%-24s %12s %14v\n", "time/ckt eval", "-", res.Run.TimePerEval().Round(time.Microsecond))
	fmt.Fprintf(&b, "%-24s %12s %14v\n", "CPU time/run", "-", res.Run.Duration.Round(time.Millisecond))
	return b.String()
}

// Fig2 runs the Simple OTA with trace recording and returns the KCL
// discrepancy series the paper plots.
func Fig2(ctx context.Context, opt SynthOptions) ([]oblx.TraceSample, error) {
	d, err := Parse(SimpleOTA)
	if err != nil {
		return nil, err
	}
	if opt.MaxMoves == 0 {
		opt.MaxMoves = 60_000
	}
	res, err := oblx.Run(ctx, d, oblx.Options{
		Seed: opt.Seed, MaxMoves: opt.MaxMoves, RecordTrace: true,
	})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// FormatFig2 renders the trace as a text series plus a crude log plot.
func FormatFig2(trace []oblx.TraceSample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 2. DISCREPANCY FROM KCL-CORRECT VOLTAGES DURING OPTIMIZATION\n")
	fmt.Fprintf(&b, "%8s %12s %12s\n", "move", "maxKCLerr", "cost")
	for i, tp := range trace {
		if i%4 != 0 && i != len(trace)-1 {
			continue
		}
		bar := ""
		if tp.MaxKCLError > 0 {
			n := int(8 + math.Log10(tp.MaxKCLError+1e-12))
			if n < 0 {
				n = 0
			}
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%8d %12.3e %12.4g %s\n", tp.Move, tp.MaxKCLError, tp.Cost, bar)
	}
	if len(trace) > 1 {
		first, last := trace[1].MaxKCLError, trace[len(trace)-1].MaxKCLError
		fmt.Fprintf(&b, "KCL discrepancy: %.3e (early) -> %.3e (frozen)\n", first, last)
	}
	return b.String()
}

// Fig3Point is one symbol of Fig. 3: preparatory-plus-CPU time for a
// first-time design vs worst-case prediction error, with complexity.
type Fig3Point struct {
	Tool       string
	Class      string  // "equation-based", "simulation-based", "astrx/oblx"
	PrepHours  float64 // designer time to pose the problem
	CPUHours   float64 // tool time
	ErrorPct   float64 // worst prediction-vs-simulation discrepancy
	Complexity int     // devices + user variables
	Source     string  // "literature" or "measured"
}

// Fig3Literature reproduces the prior-work clusters from the paper's
// figure (values read off the published scatter; see EXPERIMENTS.md).
// The paper equates 1000 lines of circuit-specific code to one month
// (~170 working hours).
var Fig3Literature = []Fig3Point{
	{Tool: "OASYS", Class: "equation-based", PrepHours: 2 * 170, CPUHours: 0.02, ErrorPct: 30, Complexity: 30, Source: "literature"},
	{Tool: "OPASYN", Class: "equation-based", PrepHours: 1.5 * 170, CPUHours: 0.01, ErrorPct: 20, Complexity: 25, Source: "literature"},
	{Tool: "STAIC", Class: "equation-based", PrepHours: 1 * 170, CPUHours: 0.05, ErrorPct: 50, Complexity: 28, Source: "literature"},
	{Tool: "ARIADNE", Class: "equation-based", PrepHours: 0.7 * 170, CPUHours: 0.5, ErrorPct: 200, Complexity: 35, Source: "literature"},
	{Tool: "Seattle/IDAC", Class: "equation-based", PrepHours: 12 * 170, CPUHours: 0.01, ErrorPct: 10, Complexity: 40, Source: "literature"},
}

// Fig3 measures the two live points: our equation-based baseline and an
// ASTRX/OBLX run on the same circuit, then merges the literature points.
func Fig3(opt SynthOptions, eqPrepHours, deckPrepHours float64,
	eqErrPct float64, eqCPU time.Duration,
	synthErrPct float64, synthCPU time.Duration, complexity int) []Fig3Point {
	pts := append([]Fig3Point(nil), Fig3Literature...)
	pts = append(pts,
		Fig3Point{
			Tool: "eqbase (this repo)", Class: "equation-based",
			PrepHours: eqPrepHours, CPUHours: eqCPU.Hours(),
			ErrorPct: eqErrPct, Complexity: complexity, Source: "measured",
		},
		Fig3Point{
			Tool: "ASTRX/OBLX (this repo)", Class: "astrx/oblx",
			PrepHours: deckPrepHours, CPUHours: synthCPU.Hours(),
			ErrorPct: synthErrPct, Complexity: complexity, Source: "measured",
		},
	)
	sort.Slice(pts, func(i, j int) bool { return pts[i].PrepHours+pts[i].CPUHours > pts[j].PrepHours+pts[j].CPUHours })
	return pts
}

// FormatFig3 renders the scatter as a table ordered by total time.
func FormatFig3(pts []Fig3Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 3. COMPLEXITY, ERROR AND FIRST-TIME DESIGN EFFORT\n")
	fmt.Fprintf(&b, "%-24s %-16s %12s %10s %10s %6s %s\n",
		"Tool", "Class", "PrepHours", "CPUHours", "Err%", "Cmplx", "Source")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-24s %-16s %12.3g %10.3g %10.3g %6d %s\n",
			p.Tool, p.Class, p.PrepHours, p.CPUHours, p.ErrorPct, p.Complexity, p.Source)
	}
	return b.String()
}

// DeckPrepHours estimates the preparatory effort of an ASTRX deck — the
// "afternoon of effort" the paper reports. We charge 2 minutes per deck
// line, which lands a ~90-line deck at roughly three hours.
func DeckPrepHours(c Circuit) (float64, error) {
	comp, err := Compile(c)
	if err != nil {
		return 0, err
	}
	s := comp.Stats()
	return float64(s.NetlistLines+s.SynthLines) * 2.0 / 60.0, nil
}
