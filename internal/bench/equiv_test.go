package bench

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"astrx/internal/astrx"
)

// The compiled evaluation plan (astrx/plan.go + workspace.go) must be a
// drop-in replacement for the map-based evaluator: same cost, same spec
// values, same KCL residuals, same transfer-function models, on every
// benchmark deck. These tests drive both implementations through
// identical evaluation sequences and require agreement to 1e-12
// relative — any divergence means the plan compiler mis-translated a
// stamp, an ordering, or an error path.

const equivTol = 1e-12

// relEq reports |a-b| <= tol·max(1, |a|, |b|), treating equal NaNs as
// equal (both evaluators flag a failed spec with NaN).
func relEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	scale := 1.0
	if v := math.Abs(a); v > scale {
		scale = v
	}
	if v := math.Abs(b); v > scale {
		scale = v
	}
	return math.Abs(a-b) <= tol*scale
}

func crelEq(a, b complex128, tol float64) bool {
	scale := 1.0
	if v := cmplx.Abs(a); v > scale {
		scale = v
	}
	if v := cmplx.Abs(b); v > scale {
		scale = v
	}
	return cmplx.Abs(a-b) <= tol*scale
}

// evalSequence builds a deterministic walk through the design space:
// the deck's start point plus pseudo-random points spread across each
// variable's range. Some land in infeasible corners on purpose — the
// two evaluators must agree on failures too.
func evalSequence(c *astrx.Compiled, n int) [][]float64 {
	vars := c.Vars()
	rng := rand.New(rand.NewSource(12345))
	seq := make([][]float64, 0, n+1)
	x0 := make([]float64, len(vars))
	for i := range vars {
		x0[i] = vars[i].Start()
	}
	seq = append(seq, x0)
	for k := 0; k < n; k++ {
		x := make([]float64, len(vars))
		for i := range vars {
			v := &vars[i]
			x[i] = v.Min + rng.Float64()*(v.Max-v.Min)
		}
		seq = append(seq, x)
	}
	return seq
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestCompiledPlanMatchesLegacyEvaluator is the equivalence suite: for
// every Table 2 deck, the workspace path (Compiled.Cost / CostDetail on
// the shared workspace) and the legacy map-based path
// (Compiled.Evaluate + CostFromState) must agree on every evaluation of
// an identical sequence. Two Compiled instances are used because the
// adaptive cost weights carry state across evaluations — each
// implementation owns its own trajectory, and the trajectories stay
// aligned only while every cost agrees.
func TestCompiledPlanMatchesLegacyEvaluator(t *testing.T) {
	for _, ckt := range Table2Suite {
		ckt := ckt
		t.Run(string(ckt), func(t *testing.T) {
			legacy, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			planned, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			for k, x := range evalSequence(legacy, 12) {
				st := legacy.Evaluate(x)
				bdL := legacy.CostFromState(st)
				ws := planned.Workspace()
				bdW := ws.CostDetail(x)
				stW := ws.State()

				if bdL.Failed != bdW.Failed {
					t.Fatalf("eval %d: failed mismatch: legacy %v, plan %v (legacy err %v, plan err %v)",
						k, bdL.Failed, bdW.Failed, st.Err, stW.Err)
				}
				comps := [][3]any{
					{"total", bdL.Total, bdW.Total},
					{"objective", bdL.Objective, bdW.Objective},
					{"perf", bdL.Perf, bdW.Perf},
					{"dev", bdL.Dev, bdW.Dev},
					{"dc", bdL.DC, bdW.DC},
				}
				for _, c := range comps {
					a, b := c[1].(float64), c[2].(float64)
					if !relEq(a, b, equivTol) {
						t.Errorf("eval %d: cost %s: legacy %.17g, plan %.17g", k, c[0], a, b)
					}
				}
				if bdL.Failed {
					continue // spec/KCL/TF values are undefined after a failure
				}

				if len(st.SpecVals) != len(stW.SpecVals) {
					t.Fatalf("eval %d: spec count: legacy %d, plan %d", k, len(st.SpecVals), len(stW.SpecVals))
				}
				for _, name := range sortedKeys(st.SpecVals) {
					if !relEq(st.SpecVals[name], stW.SpecVals[name], equivTol) {
						t.Errorf("eval %d: spec %s: legacy %.17g, plan %.17g",
							k, name, st.SpecVals[name], stW.SpecVals[name])
					}
				}
				if len(st.KCL) != len(stW.KCL) {
					t.Fatalf("eval %d: KCL node count: legacy %d, plan %d", k, len(st.KCL), len(stW.KCL))
				}
				for _, node := range sortedKeys(st.KCL) {
					if !relEq(st.KCL[node], stW.KCL[node], equivTol) {
						t.Errorf("eval %d: KCL residual at %s: legacy %.17g, plan %.17g",
							k, node, st.KCL[node], stW.KCL[node])
					}
					if !relEq(st.KCLFlow[node], stW.KCLFlow[node], equivTol) {
						t.Errorf("eval %d: KCL flow at %s: legacy %.17g, plan %.17g",
							k, node, st.KCLFlow[node], stW.KCLFlow[node])
					}
				}
				if len(st.TFs) != len(stW.TFs) {
					t.Fatalf("eval %d: TF count: legacy %d, plan %d", k, len(st.TFs), len(stW.TFs))
				}
				for _, name := range sortedKeys(st.TFs) {
					tfL, tfW := st.TFs[name], stW.TFs[name]
					if tfL.Order != tfW.Order || len(tfL.Poles) != len(tfW.Poles) || len(tfL.Zeros) != len(tfW.Zeros) {
						t.Errorf("eval %d: tf %s shape: legacy q=%d p=%d z=%d, plan q=%d p=%d z=%d",
							k, name, tfL.Order, len(tfL.Poles), len(tfL.Zeros),
							tfW.Order, len(tfW.Poles), len(tfW.Zeros))
						continue
					}
					for i := range tfL.Poles {
						if !crelEq(tfL.Poles[i], tfW.Poles[i], equivTol) {
							t.Errorf("eval %d: tf %s pole %d: legacy %v, plan %v",
								k, name, i, tfL.Poles[i], tfW.Poles[i])
						}
					}
					for i := range tfL.Zeros {
						if !crelEq(tfL.Zeros[i], tfW.Zeros[i], equivTol) {
							t.Errorf("eval %d: tf %s zero %d: legacy %v, plan %v",
								k, name, i, tfL.Zeros[i], tfW.Zeros[i])
						}
					}
				}
			}
		})
	}
}

// TestWorkspaceReuseIsDeterministic pins the zero-state-leak property
// the annealer's checkpoint/resume depends on: evaluating a sequence
// through one long-lived workspace must give bit-identical costs to
// evaluating the same sequence with a fresh workspace per point.
// (Adaptive weights live on the Compiled, not the workspace, so both
// sides see the same weight trajectory as long as the costs agree.)
func TestWorkspaceReuseIsDeterministic(t *testing.T) {
	for _, ckt := range []Circuit{SimpleOTA, BiCMOSTwoStage} {
		ckt := ckt
		t.Run(string(ckt), func(t *testing.T) {
			shared, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			for k, x := range evalSequence(shared, 20) {
				got := shared.Cost(x)                // one reused workspace
				want := fresh.NewWorkspace().Cost(x) // a new workspace every time
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("eval %d: reused workspace cost %.17g, fresh workspace cost %.17g", k, got, want)
				}
			}
		})
	}
}
