package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"astrx/internal/acsim"
	"astrx/internal/awe"
	"astrx/internal/ckttest"
	"astrx/internal/expr"
	"astrx/internal/mna"
	"astrx/internal/netlist"
)

// ModelVariant is one arm of the §VI model-comparison experiment: the
// same Simple OTA, same specs, different device model / process.
type ModelVariant struct {
	Label      string
	Lib        string
	NMod, PMod string
}

// ModelVariants are the paper's three combinations.
var ModelVariants = []ModelVariant{
	{Label: "BSIM/2u", Lib: "c2u", NMod: "nbsim", PMod: "pbsim"},
	{Label: "BSIM/1.2u", Lib: "c1.2u", NMod: "nbsim", PMod: "pbsim"},
	{Label: "MOS3/1.2u", Lib: "c1.2u", NMod: "nmos3", PMod: "pmos3"},
}

// ModelResult is one arm's outcome.
type ModelResult struct {
	Variant ModelVariant
	AreaUm2 float64 // synthesized active area in µm²
	GainDB  float64
	GBWHz   float64
	Met     bool // all constraint specs met in simulation
}

// ModelComparison re-synthesizes the Simple OTA under each variant,
// minimizing area at fixed specs — experiment E6. The paper found
// BSIM/2µ largest, then BSIM/1.2µ, then MOS3/1.2µ (580/300/140 µm²):
// the *model*, not just the process, changes the design.
func ModelComparison(ctx context.Context, opt SynthOptions) ([]ModelResult, error) {
	out := make([]ModelResult, 0, len(ModelVariants))
	for i, v := range ModelVariants {
		src := SimpleOTASource(v.Lib, v.NMod, v.PMod)
		o := opt
		o.Seed = opt.Seed + int64(i)*37
		res, err := synthesizeDeck(ctx, SimpleOTA, src, o)
		if err != nil {
			return nil, fmt.Errorf("bench: model variant %s: %w", v.Label, err)
		}
		mr := ModelResult{Variant: v, Met: true}
		if row := res.Report.Spec("area"); row != nil {
			mr.AreaUm2 = row.Simulated * 1e12
		}
		if row := res.Report.Spec("adm"); row != nil {
			mr.GainDB = row.Simulated
		}
		if row := res.Report.Spec("gbw"); row != nil {
			mr.GBWHz = row.Simulated
		}
		for _, row := range res.Report.Specs {
			if !row.Objective && !row.Met {
				mr.Met = false
			}
		}
		out = append(out, mr)
	}
	return out, nil
}

// FormatModelComparison renders E6.
func FormatModelComparison(rs []ModelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPERIMENT E6. SIMPLE OTA UNDER THREE MODEL/PROCESS COMBINATIONS\n")
	fmt.Fprintf(&b, "%-12s %14s %10s %12s %8s\n", "Variant", "Area (um^2)", "Gain (dB)", "GBW (MHz)", "AllMet")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-12s %14.4g %10.4g %12.4g %8v\n",
			r.Variant.Label, r.AreaUm2, r.GainDB, r.GBWHz/1e6, r.Met)
	}
	return b.String()
}

// AWEPoint is one size point of experiment E7.
type AWEPoint struct {
	Nodes     int
	AWETime   time.Duration // one full AWE transfer-function extraction
	ACTime    time.Duration // a 200-point AC sweep (SPICE-style)
	MaxRelErr float64       // AWE vs exact across the sweep band
	Speedup   float64
}

// AWEScaling measures AWE cost and accuracy against direct AC sweeps on
// RC ladders of growing size, supporting §IV's claims (evaluation in
// tens of milliseconds at 1994 speeds; complexity ≈ O(n^1.4); accuracy
// matching simulation).
func AWEScaling(sizes []int) ([]AWEPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 20, 40, 80, 160, 240}
	}
	const sweepPts = 200
	out := make([]AWEPoint, 0, len(sizes))
	for _, n := range sizes {
		nl := ckttest.RCLadder(n, 1e3, 1e-9)
		sys, err := mna.Build(nl, expr.MapEnv{})
		if err != nil {
			return nil, err
		}
		out1 := fmt.Sprintf("n%d", n)

		// Time AWE (build analyzer + extract TF), best of a few reps.
		reps := 5
		start := time.Now()
		var tf *awe.TF
		for r := 0; r < reps; r++ {
			an, err := awe.NewAnalyzer(sys)
			if err != nil {
				return nil, err
			}
			tf, err = an.TransferFunction("vin", out1, "", 6)
			if err != nil {
				return nil, err
			}
		}
		aweTime := time.Since(start) / time.Duration(reps)

		// Time the AC sweep.
		ac := acsim.NewAnalyzer(sys)
		wLo, wHi := 1e3, 1e9
		start = time.Now()
		sw, err := ac.LogSweep("vin", out1, "", wLo, wHi, sweepPts)
		if err != nil {
			return nil, err
		}
		acTime := time.Since(start)

		// Accuracy across the band (relative to the passband magnitude —
		// deep in the stopband both responses are ~0 and the paper's
		// measures never look there).
		maxErr := 0.0
		for _, p := range sw.Points {
			exact := p.H
			if mag := cmAbs(exact); mag < 1e-3 {
				continue
			}
			approx := tf.Eval(complex(0, p.Omega))
			rel := cmAbs(approx-exact) / cmAbs(exact)
			if rel > maxErr {
				maxErr = rel
			}
		}
		out = append(out, AWEPoint{
			Nodes:     n,
			AWETime:   aweTime,
			ACTime:    acTime,
			MaxRelErr: maxErr,
			Speedup:   float64(acTime) / float64(aweTime),
		})
	}
	return out, nil
}

func cmAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// FitExponent least-squares fits t = a·n^k over the points and returns
// k, using only the larger half of the sizes (small circuits are
// dominated by fixed per-analysis overhead, not the LU).
func FitExponent(pts []AWEPoint) float64 {
	if len(pts) > 3 {
		pts = pts[len(pts)/2-1:]
	}
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := math.Log(float64(p.Nodes))
		y := math.Log(float64(p.AWETime))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// FormatAWEScaling renders E7.
func FormatAWEScaling(pts []AWEPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPERIMENT E7. AWE VS DIRECT AC SWEEP (200 points)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %10s %12s\n", "nodes", "AWE", "AC sweep", "speedup", "maxRelErr")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %12v %12v %9.1fx %12.3g\n",
			p.Nodes, p.AWETime.Round(time.Microsecond), p.ACTime.Round(time.Microsecond),
			p.Speedup, p.MaxRelErr)
	}
	fmt.Fprintf(&b, "empirical AWE cost exponent: O(n^%.2f) (dense LU here; the paper's sparse implementation gave ~O(n^1.4))\n",
		FitExponent(pts))
	return b.String()
}

// ParseAll is a convenience for the CLI: parse every suite deck, failing
// fast with a helpful message.
func ParseAll() (map[Circuit]*netlist.Deck, error) {
	out := make(map[Circuit]*netlist.Deck, len(Suite))
	for _, c := range Suite {
		d, err := Parse(c)
		if err != nil {
			return nil, err
		}
		out[c] = d
	}
	return out, nil
}
