package bench

import "testing"

// TestTable1Snapshot pins the E1 numbers recorded in EXPERIMENTS.md so
// deck or compiler drift is caught deliberately: if a change here is
// intentional, update both this table and EXPERIMENTS.md.
func TestTable1Snapshot(t *testing.T) {
	want := map[Circuit]struct {
		userVars, nodeVars, biasNodes int
	}{
		SimpleOTA:      {7, 16, 20},
		OTA:            {11, 26, 30},
		TwoStage:       {13, 22, 26},
		FoldedCascode:  {15, 32, 38},
		Comparator:     {16, 34, 39},
		BiCMOSTwoStage: {12, 20, 24},
		NovelFC:        {19, 36, 44},
	}
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		w, ok := want[r.Circuit]
		if !ok {
			t.Errorf("unexpected circuit %s", r.Circuit)
			continue
		}
		if r.UserVars != w.userVars {
			t.Errorf("%s: user vars = %d, want %d", r.Circuit, r.UserVars, w.userVars)
		}
		if r.NodeVars != w.nodeVars {
			t.Errorf("%s: node vars = %d, want %d", r.Circuit, r.NodeVars, w.nodeVars)
		}
		if r.BiasNodes != w.biasNodes {
			t.Errorf("%s: bias nodes = %d, want %d", r.Circuit, r.BiasNodes, w.biasNodes)
		}
	}
	if len(rows) != len(want) {
		t.Errorf("rows = %d, want %d", len(rows), len(want))
	}
}
