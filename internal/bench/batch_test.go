package bench

import (
	"testing"
)

// TestBatchMatchesSequential pins the batched K-candidate evaluator to
// the scalar path bit-for-bit: for every Table 2 deck, evaluating a
// candidate sequence through BatchWorkspace.CostsInto must produce the
// identical costs, spec values, and adaptive-weight trajectory as
// evaluating the same candidates one at a time on per-candidate
// workspaces. Exact equality (not 1e-12) is intentional — the batched
// SoA factorization and lockstep moment recursion replay the exact
// scalar operation sequence per lane, so any difference at all means
// the batch plumbing reordered arithmetic.
func TestBatchMatchesSequential(t *testing.T) {
	const K = 4
	for _, ckt := range Table2Suite {
		ckt := ckt
		t.Run(string(ckt), func(t *testing.T) {
			seqC, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			batC, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			seq := evalSequence(seqC, 3*K-1) // 3 full batches
			bw := batC.NewBatchWorkspace(K)
			costs := make([]float64, K)
			for off := 0; off+K <= len(seq); off += K {
				xs := seq[off : off+K]
				// Sequential reference: fresh workspace per candidate, like
				// the batch lanes, sharing the compiled problem's weights.
				want := make([]float64, K)
				wantSpecs := make([]map[string]float64, K)
				for i, x := range xs {
					ws := seqC.NewWorkspace()
					want[i] = ws.CostDetail(x).Total
					wantSpecs[i] = ws.State().SpecVals
				}
				bw.CostsInto(costs, xs)
				for i := range xs {
					if costs[i] != want[i] {
						t.Errorf("batch %d lane %d: cost %.17g, sequential %.17g",
							off/K, i, costs[i], want[i])
					}
					gotSpecs := bw.Lane(i).State().SpecVals
					if bw.Lane(i).Err() != nil {
						continue
					}
					for name, wv := range wantSpecs[i] {
						if gv := gotSpecs[name]; gv != wv && !(gv != gv && wv != wv) {
							t.Errorf("batch %d lane %d spec %s: %.17g, sequential %.17g",
								off/K, i, name, gv, wv)
						}
					}
				}
			}
		})
	}
}

// TestBatchShortAndFailedLanes exercises a partial batch (fewer
// candidates than lanes) and a poisoned candidate: the failed lane must
// cost FailCost without disturbing its neighbors.
func TestBatchShortAndFailedLanes(t *testing.T) {
	c1, err := Compile(SimpleOTA)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(SimpleOTA)
	if err != nil {
		t.Fatal(err)
	}
	seq := evalSequence(c1, 2)
	bad := make([]float64, len(seq[1]))
	copy(bad, seq[1])
	bad[0] = 0 // zero width: device geometry fails the evaluation
	xs := [][]float64{seq[0], bad, seq[2]}

	want := make([]float64, len(xs))
	var failed []bool
	for i, x := range xs {
		ws := c1.NewWorkspace()
		want[i] = ws.CostDetail(x).Total
		failed = append(failed, ws.Err() != nil)
	}

	bw := c2.NewBatchWorkspace(5) // 2 idle lanes
	costs := make([]float64, len(xs))
	bw.CostsInto(costs, xs)
	for i := range xs {
		if costs[i] != want[i] {
			t.Errorf("lane %d: cost %.17g, sequential %.17g", i, costs[i], want[i])
		}
		if (bw.Lane(i).Err() != nil) != failed[i] {
			t.Errorf("lane %d: batch err %v, sequential failed %v", i, bw.Lane(i).Err(), failed[i])
		}
	}
}

// TestWorkspaceZeroAlloc pins the scalar hot path: after warm-up one
// cost evaluation on the compiled-plan workspace — sparse factorization
// included — performs zero heap allocations. The eval benchmarks
// measure the same thing with -benchmem, but this exact count runs in
// the plain test suite and in make telemetry-guard without timing
// noise.
func TestWorkspaceZeroAlloc(t *testing.T) {
	for _, ckt := range Table2Suite {
		ckt := ckt
		t.Run(string(ckt), func(t *testing.T) {
			c, err := Compile(ckt)
			if err != nil {
				t.Fatal(err)
			}
			x := evalSequence(c, 0)[0]
			ws := c.NewWorkspace()
			ws.Cost(x) // warm up lazy scratch
			allocs := testing.AllocsPerRun(20, func() {
				ws.Cost(x)
			})
			if allocs != 0 {
				t.Errorf("scalar eval allocates %.1f/eval, want 0", allocs)
			}
			for j, s := range ws.JigStats() {
				if !s.Sparse {
					t.Errorf("jig %d took the dense path at the start point", j)
				}
			}
		})
	}
}

// TestBatchZeroAlloc pins the batched hot path: after warm-up a full
// K-candidate evaluation performs zero heap allocations, preserving the
// scalar path's guarantee. The candidates are small perturbations of
// one design — the population shape of the batch consumers (yield
// sampling, annealer neighborhoods) — so all lanes share one operating
// region and the SoA path must engage for every lane.
func TestBatchZeroAlloc(t *testing.T) {
	c, err := Compile(BiCMOSTwoStage)
	if err != nil {
		t.Fatal(err)
	}
	const K = 4
	base := evalSequence(c, 0)[0]
	xs := make([][]float64, K)
	for i := range xs {
		x := make([]float64, len(base))
		for p, v := range base {
			x[p] = v * (1 + 1e-4*float64(i*len(base)+p%7))
		}
		xs[i] = x
	}
	bw := c.NewBatchWorkspace(K)
	costs := make([]float64, K)
	bw.CostsInto(costs, xs) // warm up lazy scratch
	allocs := testing.AllocsPerRun(20, func() {
		bw.CostsInto(costs, xs)
	})
	if allocs != 0 {
		t.Errorf("batched eval allocates %.1f/batch, want 0", allocs)
	}
	// The batch must actually engage the SoA path here — an all-scalar
	// fallback would pass the equivalence tests while silently losing the
	// batching win.
	for j := 0; j < bw.Jigs(); j++ {
		for i := 0; i < K; i++ {
			if bw.Lane(i).Err() == nil && !bw.Batched(j, i) {
				t.Errorf("jig %d lane %d fell back to the scalar path", j, i)
			}
		}
	}
}
