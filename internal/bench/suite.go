package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"astrx/internal/astrx"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/verify"
)

// Circuit identifies one benchmark.
type Circuit string

// The benchmark suite of Table 1.
const (
	SimpleOTA      Circuit = "Simple OTA"
	OTA            Circuit = "OTA"
	TwoStage       Circuit = "Two-Stage"
	FoldedCascode  Circuit = "Folded Cascode"
	Comparator     Circuit = "Comparator"
	BiCMOSTwoStage Circuit = "BiCMOS Two-Stage"
	NovelFC        Circuit = "Novel Folded Cascode"
)

// Suite lists the benchmarks in Table 1 order.
var Suite = []Circuit{
	SimpleOTA, OTA, TwoStage, FoldedCascode, Comparator, BiCMOSTwoStage, NovelFC,
}

// Table2Suite lists the circuits whose synthesis results appear in
// Table 2 (Comparator is published separately; Novel FC is Table 3).
var Table2Suite = []Circuit{SimpleOTA, OTA, TwoStage, FoldedCascode, BiCMOSTwoStage}

// DeckSource returns the ASTRX input deck for a benchmark. For SimpleOTA
// the model/process combination is selectable (experiment E6); the other
// circuits use Level-3 models on the 2µ process.
func DeckSource(c Circuit) string {
	switch c {
	case SimpleOTA:
		return SimpleOTASource("c2u", "nmos3", "pmos3")
	case OTA:
		return deckOTA
	case TwoStage:
		return deckTwoStage
	case FoldedCascode:
		return deckFoldedCascode
	case Comparator:
		return deckComparator
	case BiCMOSTwoStage:
		return deckBiCMOSTwoStage
	case NovelFC:
		return deckNovelFoldedCascode
	}
	panic(fmt.Sprintf("bench: unknown circuit %q", c))
}

// SimpleOTASource renders the Simple OTA deck for a given process
// library and NMOS/PMOS model pair — the knob experiment E6 turns.
func SimpleOTASource(lib, nmod, pmod string) string {
	body := strings.ReplaceAll(deckSimpleOTABody, "NMOD", nmod)
	body = strings.ReplaceAll(body, "PMOD", pmod)
	return ".lib " + lib + "\n" + body
}

// Parse parses a benchmark deck.
func Parse(c Circuit) (*netlist.Deck, error) {
	d, err := netlist.Parse(DeckSource(c))
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", c, err)
	}
	return d, nil
}

// Compile parses and compiles a benchmark.
func Compile(c Circuit) (*astrx.Compiled, error) {
	d, err := Parse(c)
	if err != nil {
		return nil, err
	}
	comp, err := astrx.Compile(d, astrx.CostOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", c, err)
	}
	return comp, nil
}

// SynthOptions configures a benchmark synthesis.
type SynthOptions struct {
	Seed     int64
	MaxMoves int // 0 → 120_000
	Runs     int // parallel seeded runs, best kept (0 → 1)
	Trace    bool
}

// SynthResult bundles synthesis output with its verification.
type SynthResult struct {
	Circuit Circuit
	Run     *oblx.Result
	Report  *verify.Report
}

// Synthesize runs OBLX on a benchmark and verifies the result against
// the reference simulator.
func Synthesize(ctx context.Context, c Circuit, opt SynthOptions) (*SynthResult, error) {
	return synthesizeDeck(ctx, c, DeckSource(c), opt)
}

func synthesizeDeck(ctx context.Context, c Circuit, src string, opt SynthOptions) (*SynthResult, error) {
	d, err := netlist.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", c, err)
	}
	if opt.MaxMoves == 0 {
		opt.MaxMoves = 120_000
	}
	runs := opt.Runs
	if runs <= 0 {
		runs = 1
	}
	oo := oblx.Options{Seed: opt.Seed, MaxMoves: opt.MaxMoves, RecordTrace: opt.Trace}
	var best *oblx.Result
	if runs == 1 {
		best, err = oblx.Run(ctx, d, oo)
	} else {
		var errs []error
		best, _, errs = oblx.RunBest(ctx, d, runs, oo)
		if best == nil {
			err = errors.Join(errs...)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", c, err)
	}
	rep, err := verify.Design(best.Compiled, best.X, best.State.SpecVals)
	if err != nil {
		return nil, fmt.Errorf("bench: %s verify: %w", c, err)
	}
	return &SynthResult{Circuit: c, Run: best, Report: rep}, nil
}

// netlistParse and astrxCompile are tiny aliases so tests read cleanly.
func netlistParse(src string) (*netlist.Deck, error) { return netlist.Parse(src) }

func astrxCompile(d *netlist.Deck) (*astrx.Compiled, error) {
	return astrx.Compile(d, astrx.CostOptions{})
}
