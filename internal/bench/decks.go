// Package bench holds the benchmark circuit suite of the paper's Table 1
// — Simple OTA, OTA, Two-Stage, Folded Cascode, Comparator, BiCMOS
// Two-Stage, and the Novel Folded Cascode — as ASTRX decks, plus the
// harnesses that regenerate every table and figure of the evaluation
// section (see EXPERIMENTS.md for the index).
//
// The topologies are the standard published forms of each circuit; the
// paper's exact schematics (Fig. 4) are low-resolution, so minor details
// (cascode biasing style, mirror ratios) follow the textbook versions.
// Spec targets mirror Table 2 where our synthetic process can reach
// them; EXPERIMENTS.md records paper-vs-measured for every number.
package bench

// DeckSimpleOTA is the 5T-plus-bias-mirror transconductance amplifier —
// the first column of Tables 1 and 2. Seven user variables, matching the
// paper. Process/model selection is spliced in by Deck() so experiment
// E6 can re-synthesize it under BSIM/2µ, BSIM/1.2µ, and MOS3/1.2µ.
const deckSimpleOTABody = `
.module ota (inp inn out vdd vss)
m1 n1  inp ntail ntail NMOD w=W1 l=L1
m2 out inn ntail ntail NMOD w=W1 l=L1
m3 n1  n1  vdd  vdd  PMOD w=W3 l=L3
m4 out n1  vdd  vdd  PMOD w=W3 l=L3
m5 ntail nbias vss vss NMOD w=W5 l=L5
m6 nbias nbias vss vss NMOD w=W5 l=L5
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=500u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=500u grid
.var L5 min=2u max=20u  grid
.var Ib min=2u max=250u cont

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig psdd
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfdd v(out) vdd
.ends

.jig psss
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfss v(out) vss
.ends

.bias
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm   'db(dc_gain(tf))' good=37 bad=10
.spec gbw   'ugf(tf)' good=40Meg bad=400k
.spec pm    'phase_margin(tf)' good=60 bad=20
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=20 bad=0
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=20 bad=0
.spec swing '5 - xamp.m4.vdsat - xamp.m2.vdsat - xamp.m5.vdsat' good=2.3 bad=1
.spec sr    'xamp.m5.id/(Cl+xamp.m2.cdb+xamp.m4.cdb)' good=10Meg bad=100k
.spec pwr   'power()' good=1m bad=10m
.obj  area  'active_area()' good=0.5n bad=50n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m3 sat
.region xamp.m4 sat
.region xamp.m5 sat
`

// DeckOTA is the symmetrical (mirrored) OTA: diff pair into diode loads,
// mirrored to a single-ended class-A output branch. Eleven user
// variables, as in Table 1.
const deckOTA = `
.lib c2u

.module ota (inp inn out vdd vss)
m1 n3 inp ntail ntail nmos3 w=W1 l=L1
m2 n4 inn ntail ntail nmos3 w=W1 l=L1
m3 n3 n3 vdd vdd pmos3 w=W3 l=L3
m4 n4 n4 vdd vdd pmos3 w=W3 l=L3
m5 n5  n3 vdd vdd pmos3 w=W5 l=L5
m6 out n4 vdd vdd pmos3 w=W5 l=L5
m9 n5 n5 vss vss nmos3 w=W9 l=L9
m10 out n5 vss vss nmos3 w=W9 l=L9
m7 ntail nbias vss vss nmos3 w=W7 l=L7
m8 nbias nbias vss vss nmos3 w=W7 l=L7
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=300u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=500u grid
.var L5 min=2u max=20u  grid
.var W7 min=2u max=300u grid
.var L7 min=2u max=20u  grid
.var W9 min=2u max=500u grid
.var L9 min=2u max=20u  grid
.var Ib min=2u max=250u cont

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig psdd
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfdd v(out) vdd
.ends

.jig psss
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfss v(out) vss
.ends

.bias
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm   'db(dc_gain(tf))' good=40 bad=10
.spec gbw   'ugf(tf)' good=10Meg bad=100k
.spec pm    'phase_margin(tf)' good=45 bad=15
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=40 bad=0
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=40 bad=0
.spec swing '5 - xamp.m6.vdsat - xamp.m10.vdsat' good=2.5 bad=1
.spec sr    'xamp.m10.id/(Cl+xamp.m6.cdb+xamp.m10.cdb)' good=10Meg bad=100k
.spec pwr   'power()' good=1m bad=10m
.obj  area  'active_area()' good=0.5n bad=50n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m5 sat
.region xamp.m6 sat
.region xamp.m7 sat
.region xamp.m9 sat
.region xamp.m10 sat
`

// DeckTwoStage is the Miller-compensated two-stage op-amp (compensation
// capacitor and nulling resistor included as design variables).
const deckTwoStage = `
.lib c2u

.module twostage (inp inn out vdd vss)
m1 n1 inp ntail ntail nmos3 w=W1 l=L1
m2 n2 inn ntail ntail nmos3 w=W1 l=L1
m3 n1 n1 vdd vdd pmos3 w=W3 l=L3
m4 n2 n1 vdd vdd pmos3 w=W3 l=L3
m5 ntail nbias vss vss nmos3 w=W5 l=L5
m6 nbias nbias vss vss nmos3 w=W5 l=L5
m7 out n2 vdd vdd pmos3 w=W7 l=L7
m8 out nbias vss vss nmos3 w=W8 l=L8
rz n2 nz Rz
cc nz out Cc
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=300u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=300u grid
.var L5 min=2u max=20u  grid
.var W7 min=5u max=800u grid
.var L7 min=2u max=20u  grid
.var W8 min=5u max=800u grid
.var L8 min=2u max=20u  grid
.var Ib min=2u max=200u cont
.var Cc min=0.2p max=20p grid
.var Rz min=100 max=50k grid

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss twostage
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig psdd
xamp inp inn out nvdd nvss twostage
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfdd v(out) vdd
.ends

.jig psss
xamp inp inn out nvdd nvss twostage
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfss v(out) vss
.ends

.bias
xamp inp inn out nvdd nvss twostage
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.spec adm  'db(dc_gain(tf))' good=60 bad=20
.spec gbw  'ugf(tf)' good=10Meg bad=100k
.spec pm   'phase_margin(tf)' good=45 bad=10
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=20 bad=0
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=40 bad=0
.spec swing '5 - xamp.m7.vdsat - xamp.m8.vdsat' good=2 bad=0.5
.spec sr   'min(xamp.m5.id, xamp.m8.id)/(Cl+Cc)' good=2Meg bad=20k
.spec pwr  'power()' good=2.5m bad=15m
.obj  area 'active_area()' good=0.5n bad=50n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m4 sat
.region xamp.m5 sat
.region xamp.m7 sat
.region xamp.m8 sat
`

// DeckFoldedCascode is the single-ended-output folded-cascode op-amp
// with a cascode current-mirror load.
const deckFoldedCascode = `
.lib c2u

.module fc (inp inn out vdd vss)
* input pair and tail
m1 f1 inp ntail ntail nmos3 w=W1 l=L1
m2 f2 inn ntail ntail nmos3 w=W1 l=L1
m9 ntail nbias vss vss nmos3 w=W9 l=L9
m10 nbias nbias vss vss nmos3 w=W9 l=L9
ib vdd nbias Ib
* top PMOS current sources into the folding nodes
m3 f1 pb1 vdd vdd pmos3 w=W3 l=L3
m4 f2 pb1 vdd vdd pmos3 w=W3 l=L3
* PMOS cascodes from folding nodes to outputs
m5 o1  pb2 f1 f1 pmos3 w=W5 l=L5
m6 out pb2 f2 f2 pmos3 w=W5 l=L5
* NMOS cascode mirror load
m7 o1  o1 s1 s1 nmos3 w=W7 l=L7
m8 out o1 s2 s2 nmos3 w=W7 l=L7
m7b s1 o1 vss vss nmos3 w=W7b l=L7b
m8b s2 o1 vss vss nmos3 w=W7b l=L7b
* bias voltage generators
vp1 pb1 vdd '0-Vb1'
vp2 pb2 0 Vb2
.ends

.var W1  min=2u max=500u grid
.var L1  min=2u max=10u  grid
.var W3  min=2u max=500u grid
.var L3  min=2u max=10u  grid
.var W5  min=2u max=500u grid
.var L5  min=2u max=10u  grid
.var W7  min=2u max=500u grid
.var L7  min=2u max=10u  grid
.var W7b min=2u max=500u grid
.var L7b min=2u max=10u  grid
.var W9  min=2u max=500u grid
.var L9  min=2u max=10u  grid
.var Ib  min=2u max=400u cont
.var Vb1 min=0.5 max=2.3 cont
.var Vb2 min=-2.3 max=2.3 cont

.const Cl 1.25p

.jig main
xamp inp inn out nvdd nvss fc
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig psdd
xamp inp inn out nvdd nvss fc
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfdd v(out) vdd
.ends

.jig psss
xamp inp inn out nvdd nvss fc
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfss v(out) vss
.ends

.bias
xamp inp inn out nvdd nvss fc
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.spec adm  'db(dc_gain(tf))' good=65 bad=25
.obj  gbw  'ugf(tf)' good=70Meg bad=700k
.spec pm   'phase_margin(tf)' good=60 bad=20
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=65 bad=10
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=65 bad=10
.spec swing '2.5 - xamp.m6.vdsat - xamp.m4.vdsat - (-2.5 + xamp.m8.vdsat + xamp.m8b.vdsat)' good=2 bad=0.5
.spec sr   'xamp.m9.id/(Cl+xamp.m6.cdb+xamp.m8.cdb)' good=50Meg bad=500k
.spec pwr  'power()' good=15m bad=60m
.obj  area 'active_area()' good=2n bad=200n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m3 sat
.region xamp.m4 sat
.region xamp.m5 sat
.region xamp.m6 sat
.region xamp.m7 sat
.region xamp.m8 sat
.region xamp.m7b sat
.region xamp.m8b sat
.region xamp.m9 sat
`

// DeckComparator is a three-stage open-loop comparator (two cascaded
// diff stages plus a class-A output stage). Two test jigs measure the
// full path and the preamp alone — the multi-jig case of Table 1.
const deckComparator = `
.lib c2u

.module cmp (inp inn out pre vdd vss)
* stage 1: diff pair with mirror load
m1 p1 inp t1 t1 nmos3 w=W1 l=L1
m2 pre inn t1 t1 nmos3 w=W1 l=L1
m3 p1 p1 vdd vdd pmos3 w=W3 l=L3
m4 pre p1 vdd vdd pmos3 w=W3 l=L3
m5 t1 nbias vss vss nmos3 w=W5 l=L5
* stage 2: second diff pair driven by pre, reference at vmid
m11 q1 pre t2 t2 nmos3 w=W11 l=L11
m12 s2o vref t2 t2 nmos3 w=W11 l=L11
m13 q1 q1 vdd vdd pmos3 w=W13 l=L13
m14 s2o q1 vdd vdd pmos3 w=W13 l=L13
m15 t2 nbias vss vss nmos3 w=W5 l=L5
* output stage
m7 out s2o vdd vdd pmos3 w=W7 l=L7
m8 out nbias vss vss nmos3 w=W8 l=L8
* bias mirror
m6 nbias nbias vss vss nmos3 w=W5 l=L5
ib vdd nbias Ib
vr vref 0 Vref
.ends

.var W1  min=2u max=400u grid
.var L1  min=2u max=10u  grid
.var W3  min=2u max=300u grid
.var L3  min=2u max=10u  grid
.var W5  min=2u max=300u grid
.var L5  min=2u max=10u  grid
.var W7  min=2u max=600u grid
.var L7  min=2u max=10u  grid
.var W8  min=2u max=600u grid
.var L8  min=2u max=10u  grid
.var W11 min=2u max=400u grid
.var L11 min=2u max=10u  grid
.var W13 min=2u max=300u grid
.var L13 min=2u max=10u  grid
.var Ib  min=2u max=200u cont
.var Vref min=-1.5 max=1.5 cont

.const Cl 0.5p

.jig main
xamp inp inn out pre nvdd nvss cmp
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig preamp
xamp inp inn out pre nvdd nvss cmp
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tfpre v(pre) vin
.ends

.bias
xamp inp inn out pre nvdd nvss cmp
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  gain 'db(dc_gain(tf))' good=70 bad=30
.spec pregain 'db(dc_gain(tfpre))' good=25 bad=5
.spec bw   'bw3db(tf)' good=5Meg bad=50k
.spec pwr  'power()' good=2m bad=20m
.obj  area 'active_area()' good=1n bad=100n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m4 sat
.region xamp.m5 sat
.region xamp.m11 sat
.region xamp.m12 sat
.region xamp.m14 sat
.region xamp.m15 sat
.region xamp.m7 sat
.region xamp.m8 sat
`

// DeckBiCMOSTwoStage replaces the two-stage's output device with an NPN
// common-emitter stage — the mixed MOS/bipolar benchmark.
const deckBiCMOSTwoStage = `
.lib bicmos

.module bistage (inp inn out vdd vss)
* PMOS input pair with NMOS mirror load: first-stage output sits one
* VBE above vss, directly driving the NPN common-emitter stage.
m1 n1 inp ntail ntail pmos3 w=W1 l=L1
m2 n2 inn ntail ntail pmos3 w=W1 l=L1
m3 n1 n1 vss vss nmos3 w=W3 l=L3
m4 n2 n1 vss vss nmos3 w=W3 l=L3
m5 ntail pbias vdd vdd pmos3 w=W5 l=L5
m6 pbias pbias vdd vdd pmos3 w=W5 l=L5
q1 out n2 vss npn area=AQ1
m8 out pbias vdd vdd pmos3 w=W8 l=L8
rz n2 nz Rz
cc nz out Cc
ib pbias vss Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=300u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=300u grid
.var L5 min=2u max=20u  grid
.var W8 min=5u max=800u grid
.var L8 min=2u max=20u  grid
.var AQ1 min=0.5 max=40 grid
.var Ib min=2u max=200u cont
.var Cc min=0.2p max=20p grid
.var Rz min=100 max=50k grid

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss bistage
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.jig psdd
xamp inp inn out nvdd nvss bistage
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfdd v(out) vdd
.ends

.jig psss
xamp inp inn out nvdd nvss bistage
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 out 0 Cl
.pz tfss v(out) vss
.ends

.bias
xamp inp inn out nvdd nvss bistage
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm  'db(dc_gain(tf))' good=90 bad=40
.spec gbw  'ugf(tf)' good=50Meg bad=500k
.spec pm   'phase_margin(tf)' good=45 bad=10
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=50 bad=10
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=40 bad=5
.spec sr   'min(abs(xamp.m5.id), abs(xamp.m8.id))/(Cl+Cc)' good=10Meg bad=100k
.spec pwr  'power()' good=20m bad=100m
.obj  area 'active_area()' good=2n bad=200n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m4 sat
.region xamp.m5 sat
.region xamp.m8 sat
`

// DeckNovelFoldedCascode is the fully differential folded cascode with
// cross-coupled positive-feedback load enhancement (after Nakamura &
// Carley) — the Table 3 benchmark whose performance equations "cannot be
// looked up in a textbook". Common-mode is pinned by large bleed
// resistors in the bias circuit (a CMFB stand-in; see DESIGN.md §4).
const deckNovelFoldedCascode = `
.lib c2u

.module nfc (inp inn outp outn vdd vss)
* input pair and tail
m1 f1 inp ntail ntail nmos3 w=W1 l=L1
m2 f2 inn ntail ntail nmos3 w=W1 l=L1
m9 ntail nbias vss vss nmos3 w=W9 l=L9
m10 nbias nbias vss vss nmos3 w=W9 l=L9
ib vdd nbias Ib
* top PMOS sources with cross-coupled positive-feedback pair
m3 f1 pb1 vdd vdd pmos3 w=W3 l=L3
m4 f2 pb1 vdd vdd pmos3 w=W3 l=L3
mx1 f1 f2 vdd vdd pmos3 w=Wx l=Lx
mx2 f2 f1 vdd vdd pmos3 w=Wx l=Lx
* PMOS cascodes to the differential outputs
m5 outn pb2 f1 f1 pmos3 w=W5 l=L5
m6 outp pb2 f2 f2 pmos3 w=W5 l=L5
* NMOS cascode current sinks
m7 outn nb2 s1 s1 nmos3 w=W7 l=L7
m8 outp nb2 s2 s2 nmos3 w=W7 l=L7
m7b s1 nb1 vss vss nmos3 w=W7b l=L7b
m8b s2 nb1 vss vss nmos3 w=W7b l=L7b
* bias voltages
vp1 pb1 vdd '0-Vb1'
vp2 pb2 0 Vb2
vn1 nb1 vss Vb3
vn2 nb2 0 Vb4
.ends

.var W1  min=2u max=600u grid
.var L1  min=2u max=10u  grid
.var W3  min=2u max=600u grid
.var L3  min=2u max=10u  grid
.var Wx  min=2u max=300u grid
.var Lx  min=2u max=10u  grid
.var W5  min=2u max=600u grid
.var L5  min=2u max=10u  grid
.var W7  min=2u max=600u grid
.var L7  min=2u max=10u  grid
.var W7b min=2u max=600u grid
.var L7b min=2u max=10u  grid
.var W9  min=2u max=600u grid
.var L9  min=2u max=10u  grid
.var Ib  min=5u max=800u cont
.var Vb1 min=0.5 max=2.3 cont
.var Vb2 min=-2.3 max=2.3 cont
.var Vb3 min=0.5 max=2.3 cont
.var Vb4 min=-2.3 max=2.3 cont

.const Cl 1p

.jig main
xamp inp inn outp outn nvdd nvss nfc
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
ein inn 0 inp 0 -1
cl1 outp 0 Cl
cl2 outn 0 Cl
rb1 outp 0 10meg
rb2 outn 0 10meg
.pz tf v(outp,outn) vin
.ends

.jig psdd
xamp inp inn outp outn nvdd nvss nfc
vdd nvdd 0 2.5 ac 1
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
cl1 outp 0 Cl
cl2 outn 0 Cl
rb1 outp 0 10meg
rb2 outn 0 10meg
.pz tfdd v(outp) vdd
.ends

.jig psss
xamp inp inn outp outn nvdd nvss nfc
vdd nvdd 0 2.5
vss nvss 0 -2.5 ac 1
vi1 inp 0 0
vi2 inn 0 0
cl1 outp 0 Cl
cl2 outn 0 Cl
rb1 outp 0 10meg
rb2 outn 0 10meg
.pz tfss v(outp) vss
.ends

.bias
xamp inp inn outp outn nvdd nvss nfc
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
rb1 outp 0 10meg
rb2 outn 0 10meg
.ends

.spec adm  'db(dc_gain(tf))' good=71.2 bad=30
.obj  gbw  'ugf(tf)' good=48Meg bad=480k
.spec pm   'phase_margin(tf)' good=60 bad=20
.spec psrrn 'db(abs(dc_gain(tf)/dc_gain(tfss)))' good=50 bad=10
.spec psrrp 'db(abs(dc_gain(tf)/dc_gain(tfdd)))' good=50 bad=10
.spec swing '2.5 - xamp.m6.vdsat - xamp.m4.vdsat - (-2.5 + xamp.m8.vdsat + xamp.m8b.vdsat)' good=2.8 bad=1
.spec sr   'xamp.m9.id/(2*(Cl+xamp.m6.cdb+xamp.m8.cdb))' good=76Meg bad=760k
.spec pwr  'power()' good=25m bad=100m
.obj  area 'active_area()' good=10n bad=500n
.region xamp.m1 sat
.region xamp.m2 sat
.region xamp.m3 sat
.region xamp.m4 sat
.region xamp.m5 sat
.region xamp.m6 sat
.region xamp.m7 sat
.region xamp.m8 sat
.region xamp.m7b sat
.region xamp.m8b sat
.region xamp.m9 sat
`
