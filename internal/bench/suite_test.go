package bench

import (
	"context"
	"strings"
	"testing"
)

// TestAllDecksCompile is the structural gate for the whole suite: every
// benchmark parses, compiles, and reports Table-1 statistics with the
// paper's qualitative shape (added node-voltage variables outnumber the
// user's).
func TestAllDecksCompile(t *testing.T) {
	for _, c := range Suite {
		c := c
		t.Run(string(c), func(t *testing.T) {
			comp, err := Compile(c)
			if err != nil {
				t.Fatal(err)
			}
			s := comp.Stats()
			if s.UserVars == 0 {
				t.Error("no user variables")
			}
			if s.NodeVoltVars <= s.UserVars {
				t.Errorf("node-voltage vars (%d) should outnumber user vars (%d)",
					s.NodeVoltVars, s.UserVars)
			}
			if s.BiasNodes == 0 || s.BiasElements == 0 {
				t.Error("empty bias circuit")
			}
			if len(s.JigCircuits) == 0 {
				t.Error("no jig circuits")
			}
			if s.CostTerms == 0 {
				t.Error("no cost terms")
			}
		})
	}
}

// TestSuiteOrdering checks the Table-1 complexity ordering: the folded
// cascode and novel FC are the largest problems, the simple OTA the
// smallest — the shape the paper's Table 1 exhibits.
func TestSuiteOrdering(t *testing.T) {
	stats := map[Circuit]int{}
	for _, c := range Suite {
		comp, err := Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		stats[c] = comp.Stats().NodeVoltVars
	}
	if !(stats[SimpleOTA] < stats[FoldedCascode]) {
		t.Errorf("Simple OTA (%d) should be smaller than Folded Cascode (%d)",
			stats[SimpleOTA], stats[FoldedCascode])
	}
	if !(stats[SimpleOTA] < stats[NovelFC]) {
		t.Errorf("Simple OTA (%d) should be smaller than Novel FC (%d)",
			stats[SimpleOTA], stats[NovelFC])
	}
	if !(stats[OTA] < stats[NovelFC]) {
		t.Errorf("OTA (%d) should be smaller than Novel FC (%d)", stats[OTA], stats[NovelFC])
	}
}

// TestEveryDeckEvaluates runs one cost evaluation per benchmark at the
// starting point — catching any deck whose expressions or jigs are
// inconsistent, without paying for synthesis.
func TestEveryDeckEvaluates(t *testing.T) {
	for _, c := range Suite {
		c := c
		t.Run(string(c), func(t *testing.T) {
			comp, err := Compile(c)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, len(comp.Vars()))
			for i, v := range comp.Vars() {
				x[i] = v.Start()
			}
			cb := comp.CostDetail(x)
			if cb.Failed {
				t.Fatalf("cost evaluation failed at the starting point")
			}
			if cb.Total == 0 {
				t.Error("zero cost at start is implausible")
			}
		})
	}
}

// TestModelProcessVariants compiles the Simple OTA under the three E6
// model/process combinations.
func TestModelProcessVariants(t *testing.T) {
	for _, v := range []struct{ lib, n, p string }{
		{"c2u", "nbsim", "pbsim"},
		{"c1.2u", "nbsim", "pbsim"},
		{"c1.2u", "nmos3", "pmos3"},
	} {
		src := SimpleOTASource(v.lib, v.n, v.p)
		d, err := netlistParse(src)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if _, err := astrxCompile(d); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

// TestSynthesizeSimpleOTASmoke is the end-to-end smoke test: a short
// synthesis of the smallest benchmark, verified against the simulator.
func TestSynthesizeSimpleOTASmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis in -short mode")
	}
	res, err := Synthesize(context.Background(), SimpleOTA, SynthOptions{Seed: 1, MaxMoves: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxKCL > 1e-9 {
		t.Errorf("reference-bias residual = %g A", res.Report.MaxKCL)
	}
	// AWE-vs-simulation agreement for the small-signal specs.
	for _, row := range res.Report.Specs {
		switch row.Name {
		case "adm", "gbw":
			if row.Simulated != 0 && row.RelErr > 0.05 {
				t.Errorf("spec %s: pred %g vs sim %g (rel %g)",
					row.Name, row.Predicted, row.Simulated, row.RelErr)
			}
		}
	}
	if res.Run.TimePerEval() <= 0 {
		t.Error("missing eval timing")
	}
}

// TestFig2TraceShape runs a miniature Fig. 2 trace and checks the
// paper's qualitative claim: the KCL discrepancy at the end of the run
// is orders of magnitude below its early peak.
func TestFig2TraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis in -short mode")
	}
	trace, err := Fig2(context.Background(), SynthOptions{Seed: 2, MaxMoves: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 8 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	peak := 0.0
	for _, tp := range trace[:len(trace)/2] {
		if tp.MaxKCLError > peak {
			peak = tp.MaxKCLError
		}
	}
	final := trace[len(trace)-1].MaxKCLError
	if peak < 1e-3 {
		t.Errorf("early KCL peak = %g — relaxed-dc should roam dc-incorrect space", peak)
	}
	if final > peak/10 && final > 1e-4 {
		t.Errorf("final KCL error %g did not collapse from peak %g", final, peak)
	}
	out := FormatFig2(trace)
	if len(out) == 0 {
		t.Error("empty Fig2 rendering")
	}
}

// TestDeckPrepHours sanity: an afternoon, not months.
func TestDeckPrepHours(t *testing.T) {
	h, err := DeckPrepHours(SimpleOTA)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.5 || h > 8 {
		t.Errorf("prep hours = %g, want an afternoon-scale number", h)
	}
}

// TestTableFormattersRender runs the cheapest possible synthesis to give
// the Table 2/3 formatters real data and checks the rendering contract.
func TestTableFormattersRender(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis in -short mode")
	}
	res, err := Synthesize(context.Background(), SimpleOTA, SynthOptions{Seed: 9, MaxMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	t2 := FormatTable2([]Table2Result{{res}})
	for _, frag := range []string{"Simple OTA", "dc gain", "time/ckt eval", "CPU time/run"} {
		if !strings.Contains(t2, frag) {
			t.Errorf("Table 2 rendering missing %q", frag)
		}
	}
	t3 := FormatTable3(res)
	if !strings.Contains(t3, "Manual") || !strings.Contains(t3, "OBLX / Sim") {
		t.Error("Table 3 rendering incomplete")
	}
}
