package astrx

import (
	"math"
	"testing"
)

// ladderUnstableDeck is a lightly damped five-section LC ladder — the
// textbook AWE failure case. The circuit is passive and therefore
// physically stable, but the low-order Padé approximant of its
// high-Q moment sequence carries spurious right-half-plane poles
// (Pillage & Rohrer's original caveat). This is exactly what the
// unstable counter exists for: the model must still be measured
// (rejecting it would blank every spec and strand the annealer), while
// the fit is counted so operators see how often the reduced-order
// model degraded.
const ladderUnstableDeck = `
.jig main
vin in 0 0 ac 1
rs in n0 Rs
l1 n0 n1 1u
c1 n1 0 1p
l2 n1 n2 1u
c2 n2 0 1p
l3 n2 n3 1u
c3 n3 0 1p
l4 n3 n4 1u
c4 n4 0 1p
l5 n4 out 1u
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
rs in out Rs
.ends

.var Rs min=0.1 max=10k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
.spec bw 'bw3db(tf)' good=100Meg bad=1Meg
`

// TestUnstableFitCountedNotRejected pins the policy for unstable AWE
// fits: the evaluation succeeds with a finite cost, and the workspace
// counter records that the transfer function's best validated fit
// carried a right-half-plane pole.
func TestUnstableFitCountedNotRejected(t *testing.T) {
	c := compileDeck(t, ladderUnstableDeck)
	x := make([]float64, len(c.Vars()))
	for i, v := range c.Vars() {
		x[i] = v.Start()
	}
	x[0] = 100 // Rs: light damping, high-Q moments, spurious RHP pole

	ws := c.NewWorkspace()
	cb := ws.CostDetail(x)
	if cb.Failed {
		t.Fatalf("evaluation failed outright: %+v", cb)
	}
	if math.IsNaN(cb.Total) || math.IsInf(cb.Total, 0) {
		t.Fatalf("cost = %v, want finite", cb.Total)
	}
	if ws.UnstableCount() == 0 {
		t.Fatal("expected the high-Q ladder fit to register as unstable")
	}

	// The slow path agrees: the DC gain is still measured, not blanked.
	st := c.Evaluate(x)
	if st.Err != nil {
		t.Fatalf("Evaluate: %v", st.Err)
	}
	v, ok := st.SpecVals["gain"]
	if !ok {
		t.Fatal("spec gain not measured")
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("gain = %v, want finite despite unstable fit", v)
	}
	if tf := st.TFs["tf"]; tf == nil || tf.Stable() {
		t.Errorf("fixture regressed: expected an unstable fitted model, got %+v", tf)
	}

	// Heavy damping tames the fit; the counter stays untouched.
	x[0] = 10e3
	ws2 := c.NewWorkspace()
	ws2.CostDetail(x)
	if ws2.UnstableCount() != 0 {
		t.Errorf("damped ladder counted %d unstable fits, want 0", ws2.UnstableCount())
	}

	// The counter survives a save/restore cycle (checkpoint path).
	ws2.SetUnstableCount(7)
	if ws2.UnstableCount() != 7 {
		t.Errorf("SetUnstableCount round trip: got %d, want 7", ws2.UnstableCount())
	}
}
