package astrx

import (
	"fmt"
	"math"
	"strings"

	"astrx/internal/awe"
	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/expr"
	"astrx/internal/mna"
)

// exprEnv is the basic expression environment: named values plus the
// shared math built-ins.
type exprEnv struct {
	vals map[string]float64
}

// Var looks up a named value.
func (e exprEnv) Var(name string) (float64, bool) {
	v, ok := e.vals[name]
	return v, ok
}

// Call dispatches to the math built-ins.
func (e exprEnv) Call(fn string, args []expr.Arg) (float64, error) {
	return expr.MathCall(fn, args)
}

// EvalState is the full evaluation of one candidate design x: node
// voltages, device operating points, KCL residuals, transfer functions,
// and spec values. OBLX calls Evaluate once per annealing move; the
// verification and reporting code reuses it to inspect finished designs.
type EvalState struct {
	C *Compiled

	// Vals maps design variables and constants to their values.
	Vals map[string]float64
	// NodeV maps every bias node to its voltage.
	NodeV map[string]float64
	// MOSOps and BJTOps are the device operating points by name.
	MOSOps map[string]devices.MOSOp
	BJTOps map[string]devices.BJTOp
	// KCL maps each free node to its current residual (A); KCLFlow to
	// the total current magnitude through the node (for normalization).
	KCL     map[string]float64
	KCLFlow map[string]float64
	// TFs maps .pz names to fitted reduced-order models.
	TFs map[string]*awe.TF
	// SpecVals maps spec names to measured values.
	SpecVals map[string]float64
	// Err records the first fatal evaluation problem (nil if clean).
	Err error
}

// Evaluate computes the full state for the variable vector x.
func (c *Compiled) Evaluate(x []float64) *EvalState {
	st := &EvalState{
		C:        c,
		Vals:     make(map[string]float64, c.NUser+len(c.Deck.Consts)),
		NodeV:    make(map[string]float64),
		MOSOps:   make(map[string]devices.MOSOp, len(c.Bias.DevOrder)),
		BJTOps:   make(map[string]devices.BJTOp),
		KCL:      make(map[string]float64, len(c.Bias.FreeNodes)),
		KCLFlow:  make(map[string]float64, len(c.Bias.FreeNodes)),
		TFs:      make(map[string]*awe.TF),
		SpecVals: make(map[string]float64, len(c.Deck.Specs)),
	}
	if len(x) != len(c.VarList) {
		st.Err = fmt.Errorf("astrx: state has %d values, want %d", len(x), len(c.VarList))
		return st
	}
	for i := 0; i < c.NUser; i++ {
		st.Vals[c.VarList[i].Name] = x[i]
	}
	for k, v := range c.Deck.Consts {
		st.Vals[k] = v
	}

	st.solveNodeVoltages(x)
	if st.Err != nil {
		return st
	}
	st.evalDevices()
	if st.Err != nil {
		return st
	}
	st.evalKCL()
	st.evalTFs()
	st.evalSpecs()
	return st
}

// solveNodeVoltages fills NodeV: ground, determined chain, free nodes
// from the tail of x.
func (st *EvalState) solveNodeVoltages(x []float64) {
	c := st.C
	env := exprEnv{vals: st.Vals}
	st.NodeV[circuit.Ground] = 0
	// Free nodes first: determined chains rooted at a floating-source
	// representative read the representative's (free) voltage.
	for i, n := range c.Bias.FreeNodes {
		st.NodeV[n] = x[c.NUser+i]
	}
	for _, step := range c.Bias.Determined {
		base := 0.0
		if step.From != "" {
			base = st.NodeV[step.From]
		}
		val, err := step.Src.EvalValue(env)
		if err != nil {
			st.Err = fmt.Errorf("astrx: source %s: %w", step.Src.Name, err)
			return
		}
		st.NodeV[step.Node] = base + step.Sign*val
	}
}

// geometry evaluates a MOS instance's geometry expressions.
func (st *EvalState) geometry(e *circuit.Element) (devices.MOSGeom, error) {
	env := exprEnv{vals: st.Vals}
	w, err := e.EvalParam("w", 0, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	l, err := e.EvalParam("l", 0, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	m, err := e.EvalParam("m", 1, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	if w <= 0 || l <= 0 {
		return devices.MOSGeom{}, fmt.Errorf("astrx: device %s: nonpositive geometry w=%g l=%g", e.Name, w, l)
	}
	return devices.MOSGeom{W: w, L: l, M: m}, nil
}

// evalDevices computes the operating point of every device.
func (st *EvalState) evalDevices() {
	env := exprEnv{vals: st.Vals}
	for _, name := range st.C.Bias.DevOrder {
		d := st.C.Bias.Devices[name]
		switch d.Kind {
		case DevMOS:
			g, err := st.geometry(d.Elem)
			if err != nil {
				st.Err = err
				return
			}
			r := d.MOS
			op := devices.EvalMOS(r.Model, g,
				st.NodeV[r.D], st.NodeV[r.G], st.NodeV[r.S], st.NodeV[r.B])
			st.MOSOps[name] = op
		case DevBJT:
			area, err := d.Elem.EvalParam("area", 1, env)
			if err != nil {
				st.Err = err
				return
			}
			r := d.BJT
			op := devices.EvalBJT(r.Model, area,
				st.NodeV[r.C], st.NodeV[r.B], st.NodeV[r.E])
			st.BJTOps[name] = op
		}
	}
}

// evalKCL accumulates the DC current residual at every free node.
func (st *EvalState) evalKCL() {
	res := make(map[string]float64)
	flow := make(map[string]float64)
	add := func(node string, leaving float64) {
		if circuit.IsGround(node) {
			return
		}
		res[node] += leaving
		flow[node] += math.Abs(leaving)
	}
	env := exprEnv{vals: st.Vals}

	for _, e := range st.C.Bias.Net.Elements {
		switch e.Kind {
		case circuit.KindR:
			r, err := e.EvalValue(env)
			if err != nil || r == 0 {
				st.Err = fmt.Errorf("astrx: bias resistor %s: bad value (%v)", e.Name, err)
				return
			}
			i := (st.NodeV[e.Nodes[0]] - st.NodeV[e.Nodes[1]]) / r
			add(e.Nodes[0], i)
			add(e.Nodes[1], -i)
		case circuit.KindI:
			v, err := e.EvalValue(env)
			if err != nil {
				st.Err = fmt.Errorf("astrx: bias source %s: %w", e.Name, err)
				return
			}
			add(e.Nodes[0], v)
			add(e.Nodes[1], -v)
		case circuit.KindG:
			gm, err := e.EvalValue(env)
			if err != nil {
				st.Err = fmt.Errorf("astrx: bias vccs %s: %w", e.Name, err)
				return
			}
			i := gm * (st.NodeV[e.Nodes[2]] - st.NodeV[e.Nodes[3]])
			add(e.Nodes[0], i)
			add(e.Nodes[1], -i)
		case circuit.KindM:
			op := st.MOSOps[e.Name]
			// Terminals were rewritten to the channel nodes.
			add(e.Nodes[0], op.Ids)
			add(e.Nodes[2], -op.Ids)
		case circuit.KindQ:
			op := st.BJTOps[e.Name]
			add(e.Nodes[0], op.Ic)
			add(e.Nodes[1], op.Ib)
			add(e.Nodes[2], -(op.Ic + op.Ib))
		}
		// V sources absorb any current: no residual at their nodes —
		// handled by only reading free nodes below. C: open at DC.
	}
	for _, n := range st.C.Bias.FreeNodes {
		st.KCL[n] = res[n]
		st.KCLFlow[n] = flow[n]
	}
}

// smallSignalNetlist builds the linearized AWE circuit for a jig at the
// current operating point.
func (st *EvalState) smallSignalNetlist(j *JigCkt) (*circuit.Netlist, error) {
	elems := make([]*circuit.Element, 0, len(j.Linear)+6*len(j.Devices)+len(j.AllNodes))

	num := func(v float64) expr.Node { return &expr.Num{V: v} }

	// gmin ties every node to ground so G is never singular. They come
	// first so the MNA unknown ordering is pinned to AllNodes order (the
	// ties cover every node), which the compiled evaluation plan
	// (plan.go) stamps against.
	gmin := st.C.Opt.Gmin
	for i, n := range j.AllNodes {
		elems = append(elems, &circuit.Element{
			Name: fmt.Sprintf("gmin#%d", i), Kind: circuit.KindR,
			Nodes: []string{n, circuit.Ground}, Value: num(1 / gmin),
		})
	}
	elems = append(elems, j.Linear...)
	addR := func(name, a, b string, g float64) {
		// Conductance g as a resistor; tiny conductances are legal.
		if g == 0 {
			return
		}
		elems = append(elems, &circuit.Element{
			Name: name, Kind: circuit.KindR, Nodes: []string{a, b}, Value: num(1 / g),
		})
	}
	addC := func(name, a, b string, cv float64) {
		if cv == 0 || a == b {
			return
		}
		elems = append(elems, &circuit.Element{
			Name: name, Kind: circuit.KindC, Nodes: []string{a, b}, Value: num(cv),
		})
	}
	addG := func(name, op, on, cp, cn string, gm float64) {
		if gm == 0 {
			return
		}
		elems = append(elems, &circuit.Element{
			Name: name, Kind: circuit.KindG, Nodes: []string{op, on, cp, cn}, Value: num(gm),
		})
	}

	for _, jd := range j.Devices {
		name := jd.Inst.Name
		switch jd.Inst.Kind {
		case DevMOS:
			op, ok := st.MOSOps[name]
			if !ok {
				return nil, fmt.Errorf("astrx: no operating point for %s", name)
			}
			d, g, s, b := jd.T[0], jd.T[1], jd.T[2], jd.T[3]
			if op.Swapped {
				d, s = s, d
			}
			addG(name+"#gm", d, s, g, s, op.Gm)
			addG(name+"#gmb", d, s, b, s, op.Gmbs)
			addR(name+"#gds", d, s, op.Gds)
			addC(name+"#cgs", g, s, op.Caps.Cgs)
			addC(name+"#cgd", g, d, op.Caps.Cgd)
			addC(name+"#cgb", g, b, op.Caps.Cgb)
			addC(name+"#cdb", d, b, op.Caps.Cdb)
			addC(name+"#csb", s, b, op.Caps.Csb)
		case DevBJT:
			op, ok := st.BJTOps[name]
			if !ok {
				return nil, fmt.Errorf("astrx: no operating point for %s", name)
			}
			cN, bN, eN := jd.T[0], jd.T[1], jd.T[2]
			addG(name+"#gm", cN, eN, bN, eN, op.Gm)
			addR(name+"#gpi", bN, eN, op.Gpi)
			addR(name+"#go", cN, eN, op.Go)
			addR(name+"#gmu", bN, cN, op.Gmu)
			addC(name+"#cpi", bN, eN, op.Cpi)
			addC(name+"#cmu", bN, cN, op.Cmu)
		}
	}

	nl := &circuit.Netlist{Title: j.Name, Elements: elems}
	nl.BuildIndex()
	return nl, nil
}

// evalTFs runs AWE on every jig.
func (st *EvalState) evalTFs() {
	for _, j := range st.C.Jigs {
		nl, err := st.smallSignalNetlist(j)
		if err != nil {
			st.Err = err
			return
		}
		sys, err := mna.Build(nl, exprEnv{vals: st.Vals})
		if err != nil {
			st.Err = fmt.Errorf("astrx: jig %s: %w", j.Name, err)
			return
		}
		an, err := awe.NewAnalyzer(sys)
		if err != nil {
			st.Err = fmt.Errorf("astrx: jig %s: %w", j.Name, err)
			return
		}
		for _, req := range j.TFs {
			tf, err := an.TransferFunction(req.Src, req.OutPos, req.OutNeg, st.C.Opt.AWEOrder)
			if err != nil {
				st.Err = fmt.Errorf("astrx: jig %s tf %s: %w", j.Name, req.Name, err)
				return
			}
			st.TFs[req.Name] = tf
		}
	}
}

// evalSpecs computes every spec expression. A spec whose expression
// cannot be evaluated at this design point (e.g. pole(tf,3) on a dead
// circuit with no poles) is recorded as NaN — the cost assembly turns
// that into a large penalty instead of aborting, so the annealer can
// climb out of such states.
func (st *EvalState) evalSpecs() {
	env := &specEnv{st: st}
	for _, s := range st.C.Deck.Specs {
		v, err := s.Expr.Eval(env)
		if err != nil {
			st.SpecVals[s.Name] = math.NaN()
			continue
		}
		st.SpecVals[s.Name] = v
	}
}

// ---------------------------------------------------------------------------
// specEnv: the rich environment spec expressions evaluate in.

// TFBackend measures transfer-function quantities. The default backend
// reads the AWE reduced models; package verify substitutes one backed by
// direct AC sweeps so the same spec expressions yield the "/ Simulation"
// columns of Tables 2-3.
type TFBackend interface {
	// Measure handles fn(tfName, extra...); handled=false defers to the
	// default backend.
	Measure(fn, tfName string, extra []expr.Arg) (val float64, handled bool, err error)
}

// EnvWith returns a spec-expression environment whose transfer-function
// measurements are served by backend first, falling back to the AWE
// models for anything unhandled.
func (st *EvalState) EnvWith(backend TFBackend) expr.Env {
	return &specEnv{st: st, backend: backend}
}

// Env returns the default (AWE-backed) spec environment.
func (st *EvalState) Env() expr.Env { return &specEnv{st: st} }

type specEnv struct {
	st      *EvalState
	backend TFBackend
}

// tfFuncs lists the measurement functions that take a transfer-function
// name as their first argument.
var tfFuncs = map[string]bool{
	"dc_gain": true, "ugf": true, "phase_margin": true, "bw3db": true,
	"pole": true, "zero": true, "gain_at": true,
}

// Var resolves design variables, constants, and dotted device-parameter
// paths such as "xamp.m1.gm".
func (e *specEnv) Var(name string) (float64, bool) {
	if v, ok := e.st.Vals[name]; ok {
		return v, true
	}
	// Device parameter path: <device>.<param>
	if i := strings.LastIndex(name, "."); i > 0 {
		dev, param := strings.ToLower(name[:i]), strings.ToLower(name[i+1:])
		if op, ok := e.st.MOSOps[dev]; ok {
			if v, ok2 := mosParam(op, param); ok2 {
				return v, true
			}
		}
		if op, ok := e.st.BJTOps[dev]; ok {
			if v, ok2 := bjtParam(op, param); ok2 {
				return v, true
			}
		}
	}
	return 0, false
}

// Call resolves measurement functions over transfer functions and the
// bias circuit, falling back to the math built-ins.
func (e *specEnv) Call(fn string, args []expr.Arg) (float64, error) {
	st := e.st
	if e.backend != nil && tfFuncs[fn] && len(args) >= 1 && args[0].IsName {
		v, handled, err := e.backend.Measure(fn, args[0].Name, args[1:])
		if err != nil {
			return 0, err
		}
		if handled {
			return v, nil
		}
	}
	tfArg := func() (*awe.TF, error) {
		if len(args) < 1 || !args[0].IsName {
			return nil, fmt.Errorf("astrx: %s needs a transfer function name", fn)
		}
		tf, ok := st.TFs[args[0].Name]
		if !ok {
			return nil, fmt.Errorf("astrx: unknown transfer function %q", args[0].Name)
		}
		// Unstable models (awe.ErrUnstable) are measured anyway — the fit
		// already preferred stable orders, and the workspace counter plus
		// FailureStats.Unstable surface the event to operators.
		return tf, nil
	}
	switch fn {
	case "dc_gain":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.DCGain(), nil
	case "ugf": // unity-gain frequency in Hz
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.UGF() / (2 * math.Pi), nil
	case "phase_margin":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.PhaseMarginDeg(), nil
	case "bw3db": // -3 dB bandwidth in Hz
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.BW3dB() / (2 * math.Pi), nil
	case "pole": // magnitude of i-th slowest pole, Hz (1-based)
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: pole(tf, i) needs an index")
		}
		return nthRootMag(tf.Poles, int(args[1].Value))
	case "zero":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: zero(tf, i) needs an index")
		}
		return nthRootMag(tf.Zeros, int(args[1].Value))
	case "gain_at": // |H| at frequency f (Hz)
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: gain_at(tf, hz) needs a frequency")
		}
		return tf.GainMagAt(2 * math.Pi * args[1].Value), nil
	case "v": // bias-circuit node voltage
		if len(args) != 1 || !args[0].IsName {
			return 0, fmt.Errorf("astrx: v(node) needs a node name")
		}
		node := strings.ToLower(args[0].Name)
		val, ok := st.NodeV[node]
		if !ok {
			return 0, fmt.Errorf("astrx: v(%s): unknown bias node", node)
		}
		return val, nil
	case "active_area": // total gate area of all MOS devices, m²
		return st.activeArea()
	case "power": // total supply power of the bias circuit, W
		return st.power()
	}
	return expr.MathCall(fn, args)
}

// nthRootMag returns |root_i| / 2π for the i-th smallest-magnitude root.
func nthRootMag(roots []complex128, i int) (float64, error) {
	if i < 1 || i > len(roots) {
		return 0, fmt.Errorf("astrx: root index %d out of range (have %d)", i, len(roots))
	}
	mags := make([]float64, len(roots))
	for k, r := range roots {
		mags[k] = math.Hypot(real(r), imag(r))
	}
	for a := 0; a < len(mags); a++ {
		for b := a + 1; b < len(mags); b++ {
			if mags[b] < mags[a] {
				mags[a], mags[b] = mags[b], mags[a]
			}
		}
	}
	return mags[i-1] / (2 * math.Pi), nil
}

// activeArea sums W·L·M over all MOS devices.
func (st *EvalState) activeArea() (float64, error) {
	tot := 0.0
	for _, name := range st.C.Bias.DevOrder {
		d := st.C.Bias.Devices[name]
		if d.Kind != DevMOS {
			continue
		}
		g, err := st.geometry(d.Elem)
		if err != nil {
			return 0, err
		}
		tot += g.W * g.L * g.Mult()
	}
	return tot, nil
}

// power sums |V·I| over the bias circuit's independent voltage sources.
// Source branch currents are reconstructed by iterative peeling: a
// source's current is known once every other source sharing one of its
// nodes is known, starting from nodes touched by a single source. This
// handles bias-voltage generators stacked on the supply nodes.
func (st *EvalState) power() (float64, error) {
	env := exprEnv{vals: st.Vals}
	srcs := st.C.Bias.VSources
	known := make(map[*circuit.Element]float64, len(srcs)) // branch current, + → −
	for progress := true; progress && len(known) < len(srcs); {
		progress = false
		for _, s := range srcs {
			if _, ok := known[s]; ok {
				continue
			}
			for ni, node := range s.Nodes {
				if circuit.IsGround(node) {
					continue
				}
				// All other sources at this node known?
				ready := true
				otherV := 0.0
				for _, o := range srcs {
					if o == s {
						continue
					}
					io, ok := known[o]
					touches, sign := vTouch(o, node)
					if !touches {
						continue
					}
					if !ok {
						ready = false
						break
					}
					otherV += sign * io
				}
				if !ready {
					continue
				}
				rest, err := st.currentInto(node, s)
				if err != nil {
					return 0, err
				}
				// KCL: rest + otherV + (±I_s) = 0.
				if ni == 0 {
					known[s] = -(rest + otherV)
				} else {
					known[s] = rest + otherV
				}
				progress = true
				break
			}
		}
	}
	if len(known) < len(srcs) {
		return 0, fmt.Errorf("astrx: power(): voltage-source loop prevents current recovery")
	}
	tot := 0.0
	for _, s := range srcs {
		v, err := s.EvalValue(env)
		if err != nil {
			return 0, err
		}
		tot += math.Abs(v * known[s])
	}
	return tot, nil
}

// vTouch reports whether a V source touches node and the sign its branch
// current (+→−) contributes to current leaving that node.
func vTouch(e *circuit.Element, node string) (bool, float64) {
	if e.Nodes[0] == node {
		return true, 1
	}
	if e.Nodes[1] == node {
		return true, -1
	}
	return false, 0
}

// currentInto sums the current leaving `node` into all non-V-source
// elements except `skip`.
func (st *EvalState) currentInto(node string, skip *circuit.Element) (float64, error) {
	env := exprEnv{vals: st.Vals}
	tot := 0.0
	for _, e := range st.C.Bias.Net.Elements {
		if e == skip {
			continue
		}
		touches := -1
		for k, n := range e.Nodes {
			if n == node {
				touches = k
				break
			}
		}
		if touches < 0 {
			continue
		}
		switch e.Kind {
		case circuit.KindV:
			continue // handled by the peeling loop in power()
		case circuit.KindR:
			r, err := e.EvalValue(env)
			if err != nil || r == 0 {
				return 0, fmt.Errorf("astrx: power(): resistor %s: %v", e.Name, err)
			}
			i := (st.NodeV[e.Nodes[0]] - st.NodeV[e.Nodes[1]]) / r
			if touches == 0 {
				tot += i
			} else {
				tot -= i
			}
		case circuit.KindI:
			v, err := e.EvalValue(env)
			if err != nil {
				return 0, err
			}
			if touches == 0 {
				tot += v
			} else {
				tot -= v
			}
		case circuit.KindG:
			gm, err := e.EvalValue(env)
			if err != nil {
				return 0, err
			}
			i := gm * (st.NodeV[e.Nodes[2]] - st.NodeV[e.Nodes[3]])
			switch touches {
			case 0:
				tot += i
			case 1:
				tot -= i
			}
		case circuit.KindM:
			op := st.MOSOps[e.Name]
			switch touches {
			case 0:
				tot += op.Ids
			case 2:
				tot -= op.Ids
			}
		case circuit.KindQ:
			op := st.BJTOps[e.Name]
			switch touches {
			case 0:
				tot += op.Ic
			case 1:
				tot += op.Ib
			case 2:
				tot -= op.Ic + op.Ib
			}
		}
	}
	return tot, nil
}

// mosParam exposes MOS operating-point fields to expressions.
func mosParam(op devices.MOSOp, p string) (float64, bool) {
	switch p {
	case "id", "ids":
		return op.Ids, true
	case "gm":
		return op.Gm, true
	case "gds":
		return op.Gds, true
	case "gmbs", "gmb":
		return op.Gmbs, true
	case "vth":
		return op.Vth, true
	case "vdsat":
		return op.Vdsat, true
	case "vgs":
		return op.Vgs, true
	case "vds":
		return op.Vds, true
	case "vbs":
		return op.Vbs, true
	case "vov":
		return op.Vgs - op.Vth, true
	case "cgs":
		return op.Caps.Cgs, true
	case "cgd":
		return op.Caps.Cgd, true
	case "cgb":
		return op.Caps.Cgb, true
	case "cdb", "cd":
		return op.Caps.Cdb, true
	case "csb", "cs":
		return op.Caps.Csb, true
	case "region":
		return float64(op.Region), true
	}
	return 0, false
}

// bjtParam exposes BJT operating-point fields to expressions.
func bjtParam(op devices.BJTOp, p string) (float64, bool) {
	switch p {
	case "ic":
		return op.Ic, true
	case "ib":
		return op.Ib, true
	case "gm":
		return op.Gm, true
	case "gpi":
		return op.Gpi, true
	case "go":
		return op.Go, true
	case "cpi":
		return op.Cpi, true
	case "cmu":
		return op.Cmu, true
	case "vbe":
		return op.Vbe, true
	case "vbc":
		return op.Vbc, true
	}
	return 0, false
}

// JigNetlist builds the linearized small-signal netlist for the named
// jig at this state's operating point (exported for package verify and
// the experiment harnesses).
func (st *EvalState) JigNetlist(name string) (*circuit.Netlist, *JigCkt, error) {
	for _, j := range st.C.Jigs {
		if j.Name == name {
			nl, err := st.smallSignalNetlist(j)
			return nl, j, err
		}
	}
	return nil, nil, fmt.Errorf("astrx: unknown jig %q", name)
}
