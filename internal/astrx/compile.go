// Package astrx implements the ASTRX compiler: it translates a parsed
// problem description (netlist.Deck) into the cost function C(x) that
// OBLX minimizes. Where the original tool emitted C code to be compiled
// and linked against the solver, this implementation compiles the problem
// into closures and prebuilt data structures evaluated directly — the
// mathematics of C(x) is identical (see DESIGN.md §4).
//
// Compilation performs the steps §V-A of the paper enumerates:
//
//	(a) determine the independent variables x — the user's design
//	    variables plus, per the relaxed-dc formulation, every bias-
//	    circuit node voltage that is not fixed by a chain of voltage
//	    sources (found by tree-link analysis);
//	(b) generate the large-signal equivalent bias circuit, expanding
//	    each device's parasitic series resistances into internal nodes;
//	(c) write the KCL constraint for each free node;
//	(d) generate the linearized small-signal AWE circuit for every test
//	    jig, sharing device operating points with the bias circuit;
//	(e) generate a cost term per performance specification; and
//	(f) assemble everything into an evaluatable cost function.
package astrx

import (
	"fmt"
	"sort"

	"astrx/internal/anneal"
	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/netlist"
)

// DevKind distinguishes device instance families.
type DevKind int

// Device instance kinds.
const (
	DevMOS DevKind = iota
	DevBJT
)

// DevInst is one nonlinear device instance shared between the bias
// circuit and the small-signal jigs (matched by flattened name).
type DevInst struct {
	Name string
	Kind DevKind

	MOS *MOSRef // set for DevMOS
	BJT *BJTRef // set for DevBJT

	// Elem is the original element (geometry expressions etc.).
	Elem *circuit.Element
}

// MOSRef binds a MOS element to its model and (bias-circuit) terminals.
type MOSRef struct {
	Model devices.MOSModel
	// D, G, S, B are the channel terminal node names in the bias circuit
	// after series-resistance expansion (D/S may be internal nodes).
	D, G, S, B string
	// RD, RS are the expanded series resistances (0 = none).
	RD, RS float64
}

// BJTRef binds a BJT element to its model and bias terminals.
type BJTRef struct {
	Model   *devices.BJTModel
	C, B, E string
}

// BiasCkt is the compiled large-signal bias circuit.
type BiasCkt struct {
	// Net holds the flattened elements (linear ones plus the original
	// M/Q devices; series resistances appear as explicit R elements).
	Net *circuit.Netlist
	// Devices are the nonlinear instances, by flattened name.
	Devices map[string]*DevInst
	// DevOrder lists device names deterministically.
	DevOrder []string
	// Determined is the evaluation program for source-fixed nodes.
	Determined []DetermStep
	// FreeNodes are the node names whose voltages join x (variable order
	// matches the tail of Compiled.Vars).
	FreeNodes []string
	// VSources lists independent voltage sources, for power().
	VSources []*circuit.Element
}

// DetermStep computes one determined node: V[Node] = V[From] + Sign·value
// where value is the source element's DC expression ("" From means
// ground). Steps are ordered so From is always already known.
type DetermStep struct {
	Node string
	From string
	Sign float64
	Src  *circuit.Element
}

// JigCkt is one compiled small-signal test jig.
type JigCkt struct {
	Name string
	// Linear holds the jig's linear elements (flattened, with device
	// series resistances); devices are replaced per evaluation by their
	// small-signal models.
	Linear []*circuit.Element
	// Devices are the jig's device instances, each resolved to the bias
	// instance providing its operating point.
	Devices []*JigDev
	// TFs are the transfer-function requests.
	TFs []*netlist.TFReq
	// AllNodes is the union of node names (for gmin insertion).
	AllNodes []string
}

// JigDev is a jig device occurrence bound to its bias twin.
type JigDev struct {
	Inst *DevInst // bias-circuit instance (operating-point source)
	// Terminal node names within the jig (post series expansion).
	T [4]string // MOS: d g s b; BJT: c b e ""
}

// Stats is the Table-1-style report of a compilation.
type Stats struct {
	NetlistLines int // deck netlist/model lines
	SynthLines   int // deck synthesis-specific lines
	UserVars     int // user-supplied variables
	NodeVoltVars int // node voltages added by the relaxed-dc formulation
	CostTerms    int // terms in C(x)
	EstCLines    int // synthetic "lines of C" estimate (see DESIGN.md §4)
	BiasNodes    int
	BiasElements int
	JigCircuits  []circuit.Stats // one per jig (small-signal size)
}

// Compiled is the output of Compile: everything needed to evaluate C(x).
type Compiled struct {
	Deck *netlist.Deck

	// VarList lists the annealing variables: the user's first, then one
	// per free bias node voltage.
	VarList []anneal.VarSpec
	NUser   int

	Bias *BiasCkt
	Jigs []*JigCkt

	// Weights holds the (adaptive) weight state for cost assembly.
	Weights *Weights

	// Options for cost evaluation.
	Opt CostOptions

	// plan is the precompiled evaluation program (plan.go); ws is the
	// lazily created shared workspace behind Cost (workspace.go).
	plan *evalPlan
	ws   *EvalWorkspace
}

// CostOptions tunes cost evaluation.
type CostOptions struct {
	// AWEOrder is the requested reduced-model order (0 → awe default).
	AWEOrder int
	// Gmin is the conductance tied from every small-signal node to
	// ground so AWE's G matrix is never singular (0 → 1e-12 S).
	Gmin float64
	// KCLTolAbs is τ_abs in the paper's eq. (3) (0 → 1e-9 A).
	KCLTolAbs float64
	// FailCost is returned when an evaluation cannot complete (0 → 1e9).
	FailCost float64
}

func (o *CostOptions) defaults() {
	if o.AWEOrder == 0 {
		o.AWEOrder = 8
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.KCLTolAbs == 0 {
		o.KCLTolAbs = 1e-9
	}
	if o.FailCost == 0 {
		o.FailCost = 1e9
	}
}

// Compile translates a deck into an evaluatable synthesis problem.
func Compile(deck *netlist.Deck, opt CostOptions) (*Compiled, error) {
	opt.defaults()
	if deck.Bias == nil {
		return nil, fmt.Errorf("astrx: deck has no .bias circuit")
	}
	if len(deck.Jigs) == 0 {
		return nil, fmt.Errorf("astrx: deck has no .jig circuits")
	}
	if len(deck.Vars) == 0 {
		return nil, fmt.Errorf("astrx: deck declares no .var design variables")
	}

	c := &Compiled{Deck: deck, Opt: opt}

	// (a) user variables.
	for _, v := range deck.Vars {
		c.VarList = append(c.VarList, anneal.VarSpec{
			Name: v.Name, Min: v.Min, Max: v.Max,
			Continuous: v.Continuous, PointsPerDecade: v.PointsPerDecade,
			Init: v.Init,
		})
	}
	c.NUser = len(c.VarList)

	// (b) + (c): the bias circuit.
	bias, err := compileBias(deck, opt)
	if err != nil {
		return nil, err
	}
	c.Bias = bias

	// Node-voltage variables: continuous, ranged by the supply estimate.
	lo, hi := bias.voltageBounds(c)
	for _, n := range bias.FreeNodes {
		c.VarList = append(c.VarList, anneal.VarSpec{
			Name: "v(" + n + ")", Min: lo, Max: hi, Continuous: true,
		})
	}

	// (d): the small-signal jigs.
	for _, j := range deck.Jigs {
		jc, err := compileJig(deck, j, bias)
		if err != nil {
			return nil, err
		}
		c.Jigs = append(c.Jigs, jc)
	}

	// Validate .region cards and spec references early.
	for _, r := range deck.Regions {
		if _, ok := bias.Devices[r.Device]; !ok {
			return nil, fmt.Errorf("astrx: .region references unknown device %q", r.Device)
		}
	}

	// (e)+(f): weights for the cost terms.
	c.Weights = newWeights(deck, bias)

	// (g): the compiled evaluation plan for the zero-allocation hot path.
	c.plan = buildPlan(c)
	return c, nil
}

// voltageBounds estimates the plausible node-voltage range from the
// determined (source-driven) voltages at the variable midpoint, extended
// by one volt each way.
func (b *BiasCkt) voltageBounds(c *Compiled) (lo, hi float64) {
	lo, hi = 0, 0
	env := midpointEnv(c)
	v := map[string]float64{circuit.Ground: 0}
	for _, st := range b.Determined {
		base := 0.0
		if st.From != "" {
			base = v[st.From]
		}
		val, err := st.Src.EvalValue(env)
		if err != nil {
			val = 0
		}
		v[st.Node] = base + st.Sign*val
	}
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo - 1, hi + 1
}

// midpointEnv builds an expression environment with every design variable
// at its starting value (used only for compile-time estimation).
func midpointEnv(c *Compiled) exprEnv {
	vals := make(map[string]float64, c.NUser+len(c.Deck.Consts))
	for i := 0; i < c.NUser; i++ {
		vals[c.VarList[i].Name] = c.VarList[i].Start()
	}
	for k, v := range c.Deck.Consts {
		vals[k] = v
	}
	return exprEnv{vals: vals}
}

// Stats produces the Table-1 report for this compilation.
func (c *Compiled) Stats() Stats {
	s := Stats{
		NetlistLines: c.Deck.NetlistLines,
		SynthLines:   c.Deck.SynthLines,
		UserVars:     c.NUser,
		NodeVoltVars: len(c.Bias.FreeNodes),
	}
	bs := c.Bias.Net.Stats()
	s.BiasNodes = bs.Nodes
	s.BiasElements = bs.Elements

	// Cost terms: one per objective/spec, one per region constraint, one
	// per KCL node.
	s.CostTerms = len(c.Deck.Specs) + len(c.Deck.Regions) + len(c.Bias.FreeNodes)
	for _, j := range c.Jigs {
		// Each device contributes its small-signal elements as terms the
		// generated code would have contained.
		s.CostTerms += 3 * len(j.Devices)
	}
	// The original ASTRX emitted roughly 15 lines of C per cost term
	// plus a fixed harness; this synthetic estimate keeps Table 1's
	// "Lines of C" column comparable in spirit.
	s.EstCLines = 600 + 13*s.CostTerms

	for _, j := range c.Jigs {
		nl := &circuit.Netlist{Elements: j.Linear}
		st := nl.Stats()
		// Devices expand to ~5 elements (gm, gmbs/ro, caps) each.
		st.Elements += 5 * len(j.Devices)
		s.JigCircuits = append(s.JigCircuits, st)
	}
	return s
}

// sortedNames returns map keys in deterministic order.
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
