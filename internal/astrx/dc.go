package astrx

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/linalg"
)

// EvaluateBias is the light-weight evaluation used inside Newton
// iterations: node voltages, device operating points, and KCL residuals
// only — no AWE, no specs.
func (c *Compiled) EvaluateBias(x []float64) *EvalState {
	st := &EvalState{
		C:       c,
		Vals:    make(map[string]float64, c.NUser+len(c.Deck.Consts)),
		NodeV:   make(map[string]float64),
		MOSOps:  make(map[string]devices.MOSOp, len(c.Bias.DevOrder)),
		BJTOps:  make(map[string]devices.BJTOp),
		KCL:     make(map[string]float64, len(c.Bias.FreeNodes)),
		KCLFlow: make(map[string]float64, len(c.Bias.FreeNodes)),
	}
	if len(x) != len(c.VarList) {
		st.Err = fmt.Errorf("astrx: state has %d values, want %d", len(x), len(c.VarList))
		return st
	}
	for i := 0; i < c.NUser; i++ {
		st.Vals[c.VarList[i].Name] = x[i]
	}
	for k, v := range c.Deck.Consts {
		st.Vals[k] = v
	}
	st.solveNodeVoltages(x)
	if st.Err != nil {
		return st
	}
	st.evalDevices()
	if st.Err != nil {
		return st
	}
	st.evalKCL()
	return st
}

// DCProblem adapts the compiled bias circuit to dcsolve.Problem: the
// unknowns are the free node voltages, the user design variables are
// frozen at the values carried in the prefix of x. It runs on the
// compiled problem's shared workspace: Residual and Jacobian replay the
// precompiled KCL program with no per-call allocation, and successive
// DCProblem calls on one Compiled reuse the same storage (the annealer
// builds one per Newton move).
type DCProblem struct {
	c     *Compiled
	ws    *EvalWorkspace
	userX []float64 // length NUser
	full  []float64 // scratch full vector
}

// DCProblem builds the Newton problem with the design variables taken
// from the prefix of x (the rest of x is ignored).
func (c *Compiled) DCProblem(x []float64) *DCProblem {
	ws := c.Workspace()
	p := &ws.dc
	p.c = c
	p.ws = ws
	p.userX = append(p.userX[:0], x[:c.NUser]...)
	if cap(p.full) < len(c.VarList) {
		p.full = make([]float64, len(c.VarList))
	}
	p.full = p.full[:len(c.VarList)]
	copy(p.full, p.userX)
	return p
}

// N returns the number of free node voltages.
func (p *DCProblem) N() int { return len(p.c.Bias.FreeNodes) }

// eval runs the bias-only part of the plan (node voltages, operating
// points, KCL) on the workspace.
func (p *DCProblem) eval(v []float64) error {
	copy(p.full, p.userX)
	copy(p.full[p.c.NUser:], v)
	p.ws.run(p.full, false)
	return p.ws.err
}

// Residual fills f with the KCL residual (current leaving) at each free
// node.
func (p *DCProblem) Residual(v, f []float64) error {
	if err := p.eval(v); err != nil {
		return err
	}
	for i, slot := range p.ws.plan.freeIdx {
		f[i] = p.ws.kclRes[slot]
	}
	return nil
}

// Jacobian fills j with ∂residual/∂(free node voltage) using the device
// small-signal conductances and linear element stamps. It replays the
// same precompiled KCL program as Residual, stamping only entries whose
// row and column are both free nodes.
func (p *DCProblem) Jacobian(v []float64, j *linalg.Matrix) error {
	if err := p.eval(v); err != nil {
		return err
	}
	ws := p.ws
	plan := ws.plan
	free := plan.freeSlot
	stamp := func(rs, cs int, g float64) {
		if rs < 0 || cs < 0 {
			return
		}
		r, c := free[rs], free[cs]
		if r >= 0 && c >= 0 {
			j.Add(r, c, g)
		}
	}
	env := &ws.valEnv

	for i := range plan.kcl {
		op := &plan.kcl[i]
		switch op.kind {
		case circuit.KindR:
			ws.resetArgs()
			rv, err := op.e.EvalValue(env)
			if err != nil || rv == 0 {
				return fmt.Errorf("astrx: jacobian: resistor %s: %v", op.e.Name, err)
			}
			g := 1 / rv
			stamp(op.n[0], op.n[0], g)
			stamp(op.n[1], op.n[1], g)
			stamp(op.n[0], op.n[1], -g)
			stamp(op.n[1], op.n[0], -g)
		case circuit.KindG:
			ws.resetArgs()
			gm, err := op.e.EvalValue(env)
			if err != nil {
				return err
			}
			stamp(op.n[0], op.n[2], gm)
			stamp(op.n[0], op.n[3], -gm)
			stamp(op.n[1], op.n[2], -gm)
			stamp(op.n[1], op.n[3], gm)
		case circuit.KindM:
			mop := ws.mosOpAt(op.dev)
			dd, dg, ds, db := mosTerminalPartials(mop)
			// Terminal order d g s b = n[0..3]; row d: +Ids, row s: -Ids.
			parts := [4]float64{dd, dg, ds, db}
			for k, dIds := range parts {
				stamp(op.n[0], op.n[k], dIds)
				stamp(op.n[2], op.n[k], -dIds)
			}
		case circuit.KindQ:
			qop := ws.bjtOpAt(op.dev)
			gmE := qop.Gm + qop.Go // ∂Ic'/∂vbe'
			gmC := -qop.Go         // ∂Ic'/∂vbc'
			// Terminal partials through the compile-time column
			// selection, which reproduces the tied-terminal overwrite
			// semantics of the original map-literal formulation.
			dIc := [3]float64{gmE + gmC, -gmE, -gmC}
			dIb := [3]float64{qop.Gpi + qop.Gmu, -qop.Gpi, -qop.Gmu}
			for _, s := range op.qsel {
				stamp(op.n[0], s.col, dIc[s.coef])
				stamp(op.n[2], s.col, -dIc[s.coef])
			}
			for _, s := range op.qsel {
				stamp(op.n[1], s.col, dIb[s.coef])
				stamp(op.n[2], s.col, -dIb[s.coef])
			}
		}
	}
	return nil
}

// mosTerminalPartials maps the operating point's primed-frame
// conductances onto terminal-frame partial derivatives of the drain
// terminal current: (∂Ids/∂vd, ∂vg, ∂vs, ∂vb). Polarity flips cancel;
// source/drain swaps exchange the roles of gds and the source sum and
// negate the gate/bulk terms.
func mosTerminalPartials(op devices.MOSOp) (dd, dg, ds, db float64) {
	gm, gds, gmbs := op.Gm, op.Gds, op.Gmbs
	if !op.Swapped {
		return gds, gm, -(gm + gds + gmbs), gmbs
	}
	return gm + gds + gmbs, -gm, -gds, -gmbs
}
