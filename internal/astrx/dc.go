package astrx

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/linalg"
)

// EvaluateBias is the light-weight evaluation used inside Newton
// iterations: node voltages, device operating points, and KCL residuals
// only — no AWE, no specs.
func (c *Compiled) EvaluateBias(x []float64) *EvalState {
	st := &EvalState{
		C:       c,
		Vals:    make(map[string]float64, c.NUser+len(c.Deck.Consts)),
		NodeV:   make(map[string]float64),
		MOSOps:  make(map[string]devices.MOSOp, len(c.Bias.DevOrder)),
		BJTOps:  make(map[string]devices.BJTOp),
		KCL:     make(map[string]float64, len(c.Bias.FreeNodes)),
		KCLFlow: make(map[string]float64, len(c.Bias.FreeNodes)),
	}
	if len(x) != len(c.VarList) {
		st.Err = fmt.Errorf("astrx: state has %d values, want %d", len(x), len(c.VarList))
		return st
	}
	for i := 0; i < c.NUser; i++ {
		st.Vals[c.VarList[i].Name] = x[i]
	}
	for k, v := range c.Deck.Consts {
		st.Vals[k] = v
	}
	st.solveNodeVoltages(x)
	if st.Err != nil {
		return st
	}
	st.evalDevices()
	if st.Err != nil {
		return st
	}
	st.evalKCL()
	return st
}

// DCProblem adapts the compiled bias circuit to dcsolve.Problem: the
// unknowns are the free node voltages, the user design variables are
// frozen at the values carried in the prefix of x.
type DCProblem struct {
	c     *Compiled
	userX []float64 // length NUser
	full  []float64 // scratch full vector
}

// DCProblem builds the Newton problem with the design variables taken
// from the prefix of x (the rest of x is ignored).
func (c *Compiled) DCProblem(x []float64) *DCProblem {
	p := &DCProblem{
		c:     c,
		userX: append([]float64(nil), x[:c.NUser]...),
		full:  make([]float64, len(c.VarList)),
	}
	copy(p.full, p.userX)
	return p
}

// N returns the number of free node voltages.
func (p *DCProblem) N() int { return len(p.c.Bias.FreeNodes) }

func (p *DCProblem) eval(v []float64) (*EvalState, error) {
	copy(p.full, p.userX)
	copy(p.full[p.c.NUser:], v)
	st := p.c.EvaluateBias(p.full)
	if st.Err != nil {
		return nil, st.Err
	}
	return st, nil
}

// Residual fills f with the KCL residual (current leaving) at each free
// node.
func (p *DCProblem) Residual(v, f []float64) error {
	st, err := p.eval(v)
	if err != nil {
		return err
	}
	for i, n := range p.c.Bias.FreeNodes {
		f[i] = st.KCL[n]
	}
	return nil
}

// Jacobian fills j with ∂residual/∂(free node voltage) using the device
// small-signal conductances and linear element stamps.
func (p *DCProblem) Jacobian(v []float64, j *linalg.Matrix) error {
	st, err := p.eval(v)
	if err != nil {
		return err
	}
	c := p.c
	col := make(map[string]int, len(c.Bias.FreeNodes))
	for i, n := range c.Bias.FreeNodes {
		col[n] = i
	}
	stamp := func(rowNode, colNode string, g float64) {
		r, okR := col[rowNode]
		cc, okC := col[colNode]
		if okR && okC {
			j.Add(r, cc, g)
		}
	}
	env := exprEnv{vals: st.Vals}

	for _, e := range c.Bias.Net.Elements {
		switch e.Kind {
		case circuit.KindR:
			rv, err := e.EvalValue(env)
			if err != nil || rv == 0 {
				return fmt.Errorf("astrx: jacobian: resistor %s: %v", e.Name, err)
			}
			g := 1 / rv
			a, b := e.Nodes[0], e.Nodes[1]
			stamp(a, a, g)
			stamp(b, b, g)
			stamp(a, b, -g)
			stamp(b, a, -g)
		case circuit.KindG:
			gm, err := e.EvalValue(env)
			if err != nil {
				return err
			}
			a, b, cp, cn := e.Nodes[0], e.Nodes[1], e.Nodes[2], e.Nodes[3]
			stamp(a, cp, gm)
			stamp(a, cn, -gm)
			stamp(b, cp, -gm)
			stamp(b, cn, gm)
		case circuit.KindM:
			op := st.MOSOps[e.Name]
			dd, dg, ds, db := mosTerminalPartials(op)
			d, g, s, b := e.Nodes[0], e.Nodes[1], e.Nodes[2], e.Nodes[3]
			// Row d: +Ids; row s: -Ids.
			for _, t := range []struct {
				node string
				dIds float64
			}{{d, dd}, {g, dg}, {s, ds}, {b, db}} {
				stamp(d, t.node, t.dIds)
				stamp(s, t.node, -t.dIds)
			}
		case circuit.KindQ:
			op := st.BJTOps[e.Name]
			cN, bN, eN := e.Nodes[0], e.Nodes[1], e.Nodes[2]
			gmE := op.Gm + op.Go // ∂Ic'/∂vbe'
			gmC := -op.Go        // ∂Ic'/∂vbc'
			// Terminal partials (polarity cancels, as with MOS).
			dIc := map[string]float64{bN: gmE + gmC, eN: -gmE, cN: -gmC}
			dIb := map[string]float64{bN: op.Gpi + op.Gmu, eN: -op.Gpi, cN: -op.Gmu}
			for node, g := range dIc {
				stamp(cN, node, g)
				stamp(eN, node, -g)
			}
			for node, g := range dIb {
				stamp(bN, node, g)
				stamp(eN, node, -g)
			}
		}
	}
	return nil
}

// mosTerminalPartials maps the operating point's primed-frame
// conductances onto terminal-frame partial derivatives of the drain
// terminal current: (∂Ids/∂vd, ∂vg, ∂vs, ∂vb). Polarity flips cancel;
// source/drain swaps exchange the roles of gds and the source sum and
// negate the gate/bulk terms.
func mosTerminalPartials(op devices.MOSOp) (dd, dg, ds, db float64) {
	gm, gds, gmbs := op.Gm, op.Gds, op.Gmbs
	if !op.Swapped {
		return gds, gm, -(gm + gds + gmbs), gmbs
	}
	return gm + gds + gmbs, -gm, -gds, -gmbs
}
