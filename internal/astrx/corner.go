package astrx

import (
	"fmt"
	"math"
	"strings"

	"astrx/internal/anneal"
	"astrx/internal/circuit"
	"astrx/internal/expr"
	"astrx/internal/netlist"
)

// This file implements corner-aware compilation: each .corner card of a
// deck derives a sibling deck (model constants, const values, source DC
// values, and temperature-dependent parameters swapped in) that compiles
// to its own evaluation plan sharing the nominal plan's structure. A
// CornerSet bundles the nominal and per-corner plans behind one master
// variable vector — shared user design variables plus an independent
// copy of the relaxed-dc node voltages per corner, so every corner can
// be driven to its own dc-correct bias — and assembles a single
// worst-case-over-corners cost with the nominal deck's adaptive weights.

// tempVtoSlope is the threshold-voltage derate applied per °C above the
// nominal 27 °C: |vto| drops ~2 mV/K, the standard first-order MOS
// temperature behavior. Applied symmetrically (pmos thresholds move
// toward zero as temperature rises).
const tempVtoSlope = 0.002

// DeriveCornerDeck clones a deck with one corner's overrides applied:
// temperature derates on every MOS model card, then the corner's
// explicit model-parameter overrides (explicit wins over the derate),
// const overrides, and V/I source DC-value overrides. The returned deck
// shares everything the corner does not touch (modules, specs, vars).
func DeriveCornerDeck(deck *netlist.Deck, c *netlist.Corner) (*netlist.Deck, error) {
	d := *deck // shallow copy; replace only what the corner changes

	// Models: temperature derates first, explicit overrides second.
	dT := 0.0
	if c.TempSet {
		dT = c.Temp - netlist.NominalTemp
	}
	d.Models = make(map[string]*circuit.Model, len(deck.Models))
	for name, m := range deck.Models {
		nm := *m
		params := m.Params
		cloned := false
		clone := func() {
			if !cloned {
				cp := make(map[string]float64, len(params)+2)
				for k, v := range params {
					cp[k] = v
				}
				params, cloned = cp, true
			}
		}
		if dT != 0 && (m.Type == "nmos" || m.Type == "pmos") {
			clone()
			if vto := nm.P("vto", 0); vto != 0 {
				shift := tempVtoSlope * dT
				if vto > 0 {
					params["vto"] = vto - shift
				} else {
					params["vto"] = vto + shift
				}
			}
			// Mobility (and the derived transconductance factor) follows
			// the classic (T/Tnom)^-1.5 power law.
			scale := math.Pow((273.15+netlist.NominalTemp+dT)/(273.15+netlist.NominalTemp), -1.5)
			if u0 := nm.P("u0", 0); u0 != 0 {
				params["u0"] = u0 * scale
			}
			if kp := nm.P("kp", 0); kp != 0 {
				params["kp"] = kp * scale
			}
		}
		if ov, ok := c.Model[name]; ok {
			clone()
			for p, v := range ov {
				params[strings.ToLower(p)] = v
			}
		}
		nm.Params = params
		d.Models[name] = &nm
	}
	for model := range c.Model {
		if _, ok := deck.Models[model]; !ok {
			return nil, fmt.Errorf("astrx: corner %s: override of unknown model %q", c.Name, model)
		}
	}

	// Bare-key overrides: consts win, then top-level V/I sources.
	constOv := make(map[string]float64)  // resolved const name -> value
	sourceOv := make(map[string]float64) // element name -> value
	for key, v := range c.Set {
		resolved := false
		for name := range deck.Consts {
			if strings.ToLower(name) == key {
				constOv[name] = v
				resolved = true
				break
			}
		}
		if resolved {
			continue
		}
		sourceOv[key] = v
	}
	if len(constOv) > 0 {
		d.Consts = make(map[string]float64, len(deck.Consts))
		for k, v := range deck.Consts {
			d.Consts[k] = v
		}
		for k, v := range constOv {
			d.Consts[k] = v
		}
	}
	if len(sourceOv) > 0 {
		applied := make(map[string]bool, len(sourceOv))
		d.Jigs = make([]*netlist.Jig, len(deck.Jigs))
		for i, j := range deck.Jigs {
			d.Jigs[i] = overrideJigSources(j, sourceOv, applied)
		}
		if deck.Bias != nil {
			d.Bias = overrideJigSources(deck.Bias, sourceOv, applied)
		}
		for name := range sourceOv {
			if !applied[name] {
				return nil, fmt.Errorf("astrx: corner %s: override %q matches no .const and no V/I source", c.Name, name)
			}
		}
	}
	return &d, nil
}

// overrideJigSources returns j with any overridden V/I source's DC value
// replaced by a literal; j is returned unchanged (same pointer) when no
// override applies to it.
func overrideJigSources(j *netlist.Jig, ov map[string]float64, applied map[string]bool) *netlist.Jig {
	touched := false
	for _, e := range j.Elements {
		if _, ok := ov[e.Name]; ok && (e.Kind == circuit.KindV || e.Kind == circuit.KindI) {
			touched = true
		}
	}
	if !touched {
		return j
	}
	nj := *j
	nj.Elements = make([]*circuit.Element, len(j.Elements))
	for i, e := range j.Elements {
		if v, ok := ov[e.Name]; ok && (e.Kind == circuit.KindV || e.Kind == circuit.KindI) {
			ne := *e
			ne.Value = &expr.Num{V: v}
			nj.Elements[i] = &ne
			applied[e.Name] = true
		} else {
			nj.Elements[i] = e
		}
	}
	return &nj
}

// CornerSet is a nominal compilation plus one compiled plan per selected
// corner, sharing the nominal plan's structural pattern (same topology →
// same MNA skeleton and the same free bias nodes, asserted at build
// time). The master annealing vector is the nominal's user variables
// followed by one node-voltage section per lane (nominal first), so each
// corner's relaxed-dc bias is independently optimizable.
type CornerSet struct {
	Deck    *netlist.Deck
	Nominal *Compiled
	// Names lists the selected corner names, in deck declaration order.
	Names   []string
	Corners []*Compiled

	// VarList is the master variable vector; NUser and NFree describe
	// its layout: NUser user vars, then K() sections of NFree node
	// voltages each.
	VarList []anneal.VarSpec
	NUser   int
	NFree   int
}

// SelectCorners resolves a job's corner selection against the deck:
// nil → every declared corner; an explicit list → those corners, in
// deck declaration order (unknown names error); an explicit empty,
// non-nil list → nominal only (returns an empty selection).
func SelectCorners(deck *netlist.Deck, names []string) ([]string, error) {
	if names == nil {
		return deck.CornerNames(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.ToLower(n)
		if deck.Corner(n) == nil {
			return nil, fmt.Errorf("astrx: deck declares no .corner %q (have %v)", n, deck.CornerNames())
		}
		want[n] = true
	}
	var out []string
	for _, c := range deck.Corners {
		if want[c.Name] {
			out = append(out, c.Name)
		}
	}
	return out, nil
}

// CompileCorners compiles the nominal deck and one derived deck per
// selected corner name. An empty selection still returns a usable
// single-lane set (nominal only).
func CompileCorners(deck *netlist.Deck, names []string, opt CostOptions) (*CornerSet, error) {
	nom, err := Compile(deck, opt)
	if err != nil {
		return nil, err
	}
	cs := &CornerSet{
		Deck:    deck,
		Nominal: nom,
		NUser:   nom.NUser,
		NFree:   len(nom.Bias.FreeNodes),
		VarList: append([]anneal.VarSpec(nil), nom.VarList...),
	}
	for _, name := range names {
		cn := deck.Corner(name)
		if cn == nil {
			return nil, fmt.Errorf("astrx: deck declares no .corner %q", name)
		}
		cd, err := DeriveCornerDeck(deck, cn)
		if err != nil {
			return nil, err
		}
		cc, err := Compile(cd, opt)
		if err != nil {
			return nil, fmt.Errorf("astrx: corner %s: %w", name, err)
		}
		// Corners change values, never topology: the relaxed-dc free
		// nodes are determined by the element graph alone and must match
		// the nominal's exactly for the shared-variable layout to hold.
		if len(cc.Bias.FreeNodes) != cs.NFree {
			return nil, fmt.Errorf("astrx: corner %s: %d free bias nodes, nominal has %d",
				name, len(cc.Bias.FreeNodes), cs.NFree)
		}
		for i, n := range cc.Bias.FreeNodes {
			if n != nom.Bias.FreeNodes[i] {
				return nil, fmt.Errorf("astrx: corner %s: free node %d is %q, nominal has %q",
					name, i, n, nom.Bias.FreeNodes[i])
			}
		}
		for i := 0; i < cs.NFree; i++ {
			vs := cc.VarList[cc.NUser+i]
			vs.Name = vs.Name + "@" + name
			cs.VarList = append(cs.VarList, vs)
		}
		cs.Names = append(cs.Names, name)
		cs.Corners = append(cs.Corners, cc)
	}
	return cs, nil
}

// K returns the lane count: nominal plus the selected corners.
func (cs *CornerSet) K() int { return 1 + len(cs.Corners) }

// Lane returns lane i's compiled problem (lane 0 is the nominal).
func (cs *CornerSet) Lane(i int) *Compiled {
	if i == 0 {
		return cs.Nominal
	}
	return cs.Corners[i-1]
}

// LaneName returns lane i's display name.
func (cs *CornerSet) LaneName(i int) string {
	if i == 0 {
		return "nominal"
	}
	return cs.Names[i-1]
}

// Vars returns the master annealing variables.
func (cs *CornerSet) Vars() []anneal.VarSpec { return cs.VarList }

// NVars is the master vector length.
func (cs *CornerSet) NVars() int { return cs.NUser + cs.K()*cs.NFree }

// LaneX writes lane i's evaluation vector (shared user head + that
// lane's node-voltage section) into dst, allocating when dst is nil.
func (cs *CornerSet) LaneX(i int, x []float64, dst []float64) []float64 {
	n := cs.NUser + cs.NFree
	if dst == nil {
		dst = make([]float64, n)
	}
	copy(dst[:cs.NUser], x[:cs.NUser])
	off := cs.NUser + i*cs.NFree
	copy(dst[cs.NUser:n], x[off:off+cs.NFree])
	return dst
}

// StoreLaneNodes copies a lane vector's node-voltage section back into
// the master vector's section for lane i.
func (cs *CornerSet) StoreLaneNodes(i int, laneX, x []float64) {
	off := cs.NUser + i*cs.NFree
	copy(x[off:off+cs.NFree], laneX[cs.NUser:cs.NUser+cs.NFree])
}

// WorstCase assembles the worst-case-over-corners cost from a corner
// batch's last Run, mirroring the scalar costFromRun arithmetic with the
// nominal deck's adaptive weights (one EMA update per call, so
// checkpoint/resume reproduces the weight trajectory exactly):
//
//   - per spec, the violation u is the max over participating lanes; a
//     lane that failed to evaluate contributes the deterministic
//     specFailUnits penalty, exactly like an unmeasurable spec;
//   - the region violation is the max over lanes;
//   - the relaxed-dc KCL violation is the sum over lanes — every lane's
//     own node-voltage section must reach dc-correctness;
//   - a lane with include[i] == false (quarantined corner) is skipped
//     entirely: the run has degraded to the remaining corners.
//
// A failed nominal lane fails the whole candidate (FailCost), matching
// single-corner semantics.
func (cs *CornerSet) WorstCase(bw *BatchWorkspace, include, evaluated []bool) CostBreakdown {
	var out CostBreakdown
	c := cs.Nominal
	w := c.Weights
	if !include[0] || !evaluated[0] {
		out.Failed = true
		out.Total = c.Opt.FailCost
		return out
	}
	k := cs.K()

	for i, s := range c.Deck.Specs {
		worst := math.Inf(-1)
		anyVal, anyFail := false, false
		for l := 0; l < k; l++ {
			if !include[l] {
				continue
			}
			if !evaluated[l] {
				anyFail = true
				continue
			}
			val := bw.lanes[l].specVals[i]
			if math.IsNaN(val) || math.IsInf(val, 0) {
				anyFail = true
				continue
			}
			if u := Normalize(s, val); u > worst {
				worst = u
			}
			anyVal = true
		}
		if anyFail && (!anyVal || specFailUnits >= worst) {
			// The binding corner is one that failed: charge the same
			// deterministic penalty an unmeasurable spec gets.
			out.Perf += w.Spec[s.Name] * specFailUnits
			if !s.Objective {
				w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1 - emaDecay)
			}
			continue
		}
		u := worst
		if s.Objective {
			term := u
			if u < 0 {
				term = 0.05 * u
			}
			out.Objective += w.Spec[s.Name] * term
		} else {
			viol := math.Max(0, u)
			out.Perf += w.Spec[s.Name] * viol
			w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1-emaDecay)*math.Min(viol, 1)
		}
	}

	regViol := 0.0
	kclViol := 0.0
	for l := 0; l < k; l++ {
		if !include[l] || !evaluated[l] {
			continue
		}
		ws := bw.lanes[l]
		if v := ws.regionViolation(); v > regViol {
			regViol = v
		}
		kclViol += ws.kclViolation()
	}
	out.Dev = w.Region * regViol
	w.emaReg = emaDecay*w.emaReg + (1-emaDecay)*math.Min(regViol, 1)
	out.DC = w.KCL * kclViol
	w.emaKCL = emaDecay*w.emaKCL + (1-emaDecay)*math.Min(kclViol, 1)

	out.Total = out.Objective + out.Perf + out.Dev + out.DC
	if math.IsNaN(out.Total) || math.IsInf(out.Total, 0) {
		out.Failed = true
		out.Total = c.Opt.FailCost
	}
	return out
}
