package astrx

import (
	"math"
	"strings"
	"testing"

	"astrx/internal/expr"
)

// bjtDeck exercises the BJT paths of the compiler.
const bjtDeck = `
.lib bicmos

.module ce (in out vdd vss)
q1 out in vss npn area=AQ
m8 out pb vdd vdd pmos3 w=W8 l=4u
vpb pb vdd -1.2
rb in2 in 10k
.ends

.var AQ min=0.5 max=20 grid
.var W8 min=2u max=200u grid
.var Vbias min=0.4 max=1 cont

.jig main
xamp b out nvdd nvss ce
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin b 0 Vbias ac 1
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
xamp b out nvdd nvss ce
vdd nvdd 0 2.5
vss nvss 0 -2.5
vb2 b 0 Vbias
.ends

.obj gain 'db(abs(dc_gain(tf)))' good=40 bad=5
.spec ic 'xamp.q1.ic' good=1u bad=1n
.spec beta 'xamp.q1.ic/xamp.q1.ib' good=50 bad=5
`

func TestCompileBJTStage(t *testing.T) {
	c := compileDeck(t, bjtDeck)
	if len(c.Bias.DevOrder) != 2 {
		t.Fatalf("devices = %v", c.Bias.DevOrder)
	}
	var q *DevInst
	for _, d := range c.Bias.Devices {
		if d.Kind == DevBJT {
			q = d
		}
	}
	if q == nil {
		t.Fatal("no BJT instance")
	}
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	// Bias the base near 0.65+vss… base is driven by Vbias vs ground;
	// emitter at vss=-2.5 would put vbe ≈ 3 V — instead the emitter is
	// tied to vss so pick Vbias ≈ -1.85 for vbe ≈ 0.65. Range is
	// 0.4..1 though, so the BJT will be hard on; the evaluation must
	// still complete (limexp guards overflow).
	st := c.Evaluate(x)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	op, ok := st.BJTOps[q.Name]
	if !ok {
		t.Fatal("BJT op missing")
	}
	if math.IsNaN(op.Ic) || math.IsInf(op.Ic, 0) {
		t.Errorf("Ic = %g", op.Ic)
	}
	// The spec env resolves BJT dotted params.
	env := &specEnv{st: st}
	for _, p := range []string{"ic", "ib", "gm", "gpi", "go", "cpi", "cmu", "vbe", "vbc"} {
		if _, ok := env.Var(q.Name + "." + p); !ok {
			t.Errorf("bjt param %s unresolved", p)
		}
	}
	// Jig small-signal with BJT elements.
	nl, _, err := st.JigNetlist("main")
	if err != nil {
		t.Fatal(err)
	}
	foundGm := false
	for _, e := range nl.Elements {
		if strings.Contains(e.Name, "#gm") {
			foundGm = true
		}
	}
	if !foundGm {
		t.Error("BJT small-signal gm element missing")
	}
}

func TestSpecEnvMoreFunctions(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	st := c.Evaluate([]float64{9000, 0.9})
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	env := st.Env()
	for _, call := range []struct {
		fn   string
		args []expr.Arg
		ok   bool
	}{
		{"ugf", []expr.Arg{{IsName: true, Name: "tf"}}, true},
		{"phase_margin", []expr.Arg{{IsName: true, Name: "tf"}}, true},
		{"bw3db", []expr.Arg{{IsName: true, Name: "tf"}}, true},
		{"gain_at", []expr.Arg{{IsName: true, Name: "tf"}, {Value: 1e3}}, true},
		{"gain_at", []expr.Arg{{IsName: true, Name: "tf"}}, false},
		{"zero", []expr.Arg{{IsName: true, Name: "tf"}, {Value: 1}}, false}, // single pole: no zeros
		{"pole", []expr.Arg{{IsName: true, Name: "tf"}}, false},
		{"ugf", nil, false},
		{"active_area", nil, true}, // zero MOS devices → 0, no error
	} {
		_, err := env.Call(call.fn, call.args)
		if call.ok && err != nil {
			t.Errorf("%s: %v", call.fn, err)
		}
		if !call.ok && err == nil {
			t.Errorf("%s: expected error", call.fn)
		}
	}
	// gain_at magnitude at low ω equals |dc gain|.
	v, err := env.Call("gain_at", []expr.Arg{{IsName: true, Name: "tf"}, {Value: 1}})
	if err != nil || math.Abs(v-0.9) > 1e-3 {
		t.Errorf("gain_at(1Hz) = %g, %v", v, err)
	}
}

func TestRegionVariants(t *testing.T) {
	src := strings.Replace(diffAmpDeck,
		".region xamp.m1 sat", ".region xamp.m1 triode", 1)
	src = strings.Replace(src,
		".region xamp.m3 sat", ".region xamp.m3 on margin=0.2", 1)
	c := compileDeck(t, src)
	st := evalDiffAmp(t, c)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	cb := c.CostFromState(st)
	if cb.Failed {
		t.Fatal("cost failed")
	}
	if cb.Dev < 0 {
		t.Error("negative region penalty")
	}
}

func TestCostOptionsDefaults(t *testing.T) {
	var o CostOptions
	o.defaults()
	if o.AWEOrder == 0 || o.Gmin == 0 || o.KCLTolAbs == 0 || o.FailCost == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestSeriesRExpr(t *testing.T) {
	e := &seriesRExpr{rw: 8e-4, w: expr.MustParse("W"), m: expr.MustParse("2")}
	env := expr.MapEnv{"W": 10e-6}
	v, err := e.Eval(env)
	if err != nil || math.Abs(v-40) > 1e-9 {
		t.Errorf("seriesR = %g, %v; want 40", v, err)
	}
	if e.String() == "" {
		t.Error("empty String")
	}
	// Nonpositive width errors.
	bad := &seriesRExpr{rw: 8e-4, w: expr.MustParse("0-1u")}
	if _, err := bad.Eval(expr.MapEnv{}); err == nil {
		t.Error("negative width must error")
	}
}

func TestDCProblemWrongSizes(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	p := c.DCProblem([]float64{1000, 0})
	f := make([]float64, p.N())
	// Residual with a non-finite design var: expression still evaluates,
	// so drive the error path via a broken value instead.
	if err := p.Residual([]float64{0.5}, f); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
}

func TestNormalizeAndSpecFail(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	st := c.Evaluate([]float64{1000, 0.5})
	st.SpecVals["gain"] = math.NaN()
	cb := c.CostFromState(st)
	if cb.Perf <= 0 {
		t.Error("NaN spec must incur a penalty")
	}
}
