package astrx

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/netlist"
)

// compileJig flattens one test jig, expands its devices, and binds every
// device occurrence to the bias-circuit instance (matched by flattened
// name) that will supply its operating point. Jig and bias instantiate
// the same circuit module, so names line up by construction.
func compileJig(deck *netlist.Deck, j *netlist.Jig, bias *BiasCkt) (*JigCkt, error) {
	flat, err := circuit.Flatten(j.Name, j.Elements, deck.Modules, deck.Models)
	if err != nil {
		return nil, fmt.Errorf("astrx: jig %s: %w", j.Name, err)
	}
	net, devs, err := expandDevices(flat, deck)
	if err != nil {
		return nil, fmt.Errorf("astrx: jig %s: %w", j.Name, err)
	}

	jc := &JigCkt{Name: j.Name, TFs: j.TFs}
	nodeSet := map[string]bool{}
	addNodes := func(ns ...string) {
		for _, n := range ns {
			if !circuit.IsGround(n) && n != "" {
				nodeSet[n] = true
			}
		}
	}

	for _, e := range net.Elements {
		if e.Kind == circuit.KindM || e.Kind == circuit.KindQ {
			continue // replaced per evaluation by small-signal models
		}
		jc.Linear = append(jc.Linear, e)
		addNodes(e.Nodes...)
	}
	for _, d := range devs {
		inst, ok := bias.Devices[d.Name]
		if !ok {
			return nil, fmt.Errorf("astrx: jig %s: device %s has no twin in the bias circuit — the jig and bias must instantiate the circuit under design with the same instance name", j.Name, d.Name)
		}
		if inst.Kind != d.Kind {
			return nil, fmt.Errorf("astrx: jig %s: device %s kind differs between jig and bias", j.Name, d.Name)
		}
		jd := &JigDev{Inst: inst}
		if d.Kind == DevMOS {
			jd.T = [4]string{d.MOS.D, d.MOS.G, d.MOS.S, d.MOS.B}
		} else {
			jd.T = [4]string{d.BJT.C, d.BJT.B, d.BJT.E, ""}
		}
		addNodes(jd.T[:]...)
		jc.Devices = append(jc.Devices, jd)
	}

	// Validate the transfer-function requests against the jig circuit.
	if len(jc.TFs) == 0 {
		return nil, fmt.Errorf("astrx: jig %s declares no .pz transfer function", j.Name)
	}
	for _, tf := range jc.TFs {
		src := net.Element(tf.Src)
		if src == nil {
			return nil, fmt.Errorf("astrx: jig %s: .pz %s references unknown source %q", j.Name, tf.Name, tf.Src)
		}
		if src.Kind != circuit.KindV && src.Kind != circuit.KindI {
			return nil, fmt.Errorf("astrx: jig %s: .pz %s input %q is not an independent source", j.Name, tf.Name, tf.Src)
		}
		if !nodeSet[tf.OutPos] {
			return nil, fmt.Errorf("astrx: jig %s: .pz %s output node %q not in circuit", j.Name, tf.Name, tf.OutPos)
		}
		if tf.OutNeg != "" && !nodeSet[tf.OutNeg] && !circuit.IsGround(tf.OutNeg) {
			return nil, fmt.Errorf("astrx: jig %s: .pz %s output node %q not in circuit", j.Name, tf.Name, tf.OutNeg)
		}
	}

	jc.AllNodes = sortedNames(nodeSet)
	return jc, nil
}
