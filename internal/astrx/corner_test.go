package astrx

import (
	"context"
	"math"
	"testing"
	"time"

	"astrx/internal/netlist"
)

const cornerCards = `
.corner slow temp=85 nmos3.vto=0.95 vdd=2.4
.corner fast temp=-40 vdd=2.6
`

func parseCornered(t *testing.T) *netlist.Deck {
	t.Helper()
	d, err := netlist.Parse(diffAmpDeck + cornerCards)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeriveCornerDeck(t *testing.T) {
	deck := parseCornered(t)
	nomVto := deck.Models["nmos3"].P("vto", 0)
	nomU0 := deck.Models["nmos3"].P("u0", 0)

	slow, err := DeriveCornerDeck(deck, deck.Corner("slow"))
	if err != nil {
		t.Fatal(err)
	}
	// Explicit model override wins over the temperature derate.
	if got := slow.Models["nmos3"].P("vto", 0); got != 0.95 {
		t.Errorf("slow nmos3 vto = %g, want explicit 0.95", got)
	}
	// Mobility derated by (T/Tnom)^-1.5 at +58 °C.
	wantU0 := nomU0 * math.Pow((273.15+85)/(273.15+27), -1.5)
	if got := slow.Models["nmos3"].P("u0", 0); math.Abs(got-wantU0) > 1e-9*math.Abs(wantU0) {
		t.Errorf("slow nmos3 u0 = %g, want %g", got, wantU0)
	}
	// pmos threshold magnitude shrinks when hot, whatever sign the lib
	// stores it with.
	nomPVto := deck.Models["pmos3"].P("vto", 0)
	if got := slow.Models["pmos3"].P("vto", 0); !(math.Abs(got) < math.Abs(nomPVto)) {
		t.Errorf("slow pmos3 vto = %g, want |vto| < nominal %g (hot)", got, nomPVto)
	}

	fast, err := DeriveCornerDeck(deck, deck.Corner("fast"))
	if err != nil {
		t.Fatal(err)
	}
	// Cold: nmos threshold rises.
	if got := fast.Models["nmos3"].P("vto", 0); !(got > nomVto) {
		t.Errorf("fast nmos3 vto = %g, want > nominal %g (cold)", got, nomVto)
	}
	// Source override rewrote the vdd elements in jig and bias.
	for _, j := range []*netlist.Jig{fast.Bias, fast.Jig("main")} {
		found := false
		for _, e := range j.Elements {
			if e.Name == "vdd" {
				v, err := e.EvalValue(nil)
				if err != nil || v != 2.6 {
					t.Errorf("%s: fast vdd = %g (%v), want 2.6", j.Name, v, err)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no vdd element", j.Name)
		}
	}

	// The nominal deck is untouched.
	if deck.Models["nmos3"].P("vto", 0) != nomVto || deck.Models["nmos3"].P("u0", 0) != nomU0 {
		t.Error("DeriveCornerDeck mutated the nominal models")
	}
	for _, e := range deck.Bias.Elements {
		if e.Name == "vdd" {
			if v, _ := e.EvalValue(nil); v != 2.5 {
				t.Errorf("nominal bias vdd mutated to %g", v)
			}
		}
	}
}

func TestCompileCornersLayout(t *testing.T) {
	deck := parseCornered(t)
	set, err := CompileCorners(deck, deck.CornerNames(), CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if set.K() != 3 {
		t.Fatalf("K = %d, want 3", set.K())
	}
	if got := len(set.Vars()); got != set.NUser+3*set.NFree || got != set.NVars() {
		t.Fatalf("master vars = %d, want NUser %d + 3*NFree %d", got, set.NUser, set.NFree)
	}
	// Per-corner node-voltage sections carry the lane tag.
	name := set.Vars()[set.NUser+set.NFree].Name
	if want := set.Nominal.Vars()[set.NUser].Name + "@slow"; name != want {
		t.Errorf("first slow-section var = %q, want %q", name, want)
	}

	// LaneX slices the shared head plus the lane's own section.
	x := make([]float64, set.NVars())
	for i := range x {
		x[i] = float64(i)
	}
	lx := set.LaneX(2, x, nil)
	if lx[0] != 0 || lx[set.NUser] != float64(set.NUser+2*set.NFree) {
		t.Errorf("LaneX(2) = %v", lx)
	}
	lx[set.NUser] = -1
	set.StoreLaneNodes(2, lx, x)
	if x[set.NUser+2*set.NFree] != -1 {
		t.Error("StoreLaneNodes did not write lane 2's section")
	}
}

// startX builds a master vector with every variable at its start value.
func startX(set *CornerSet) []float64 {
	x := make([]float64, set.NVars())
	for i, v := range set.Vars() {
		x[i] = v.Start()
	}
	return x
}

// TestCornerBatchMatchesScalar is the corner analogue of the batch
// equivalence guarantee: evaluating K corner lanes through the shared
// SoA batch must be bit-identical to evaluating each corner's compiled
// plan sequentially.
func TestCornerBatchMatchesScalar(t *testing.T) {
	deck := parseCornered(t)
	set, err := CompileCorners(deck, deck.CornerNames(), CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bw := set.NewCornerBatch()
	x := startX(set)
	xs := make([][]float64, set.K())
	for i := range xs {
		xs[i] = set.LaneX(i, x, nil)
	}
	bw.Run(xs)

	for i := 0; i < set.K(); i++ {
		ref := set.Lane(i).Evaluate(xs[i])
		lane := bw.Lane(i)
		if (lane.Err() == nil) != (ref.Err == nil) {
			t.Fatalf("lane %s: batch err %v, scalar err %v", set.LaneName(i), lane.Err(), ref.Err)
		}
		st := lane.State()
		for name, want := range ref.SpecVals {
			got := st.SpecVals[name]
			if math.IsNaN(want) && math.IsNaN(got) {
				continue
			}
			if got != want {
				t.Errorf("lane %s spec %s: batch %g != scalar %g", set.LaneName(i), name, got, want)
			}
		}
	}

	// Corners genuinely differ from the nominal: the slow corner's vdd
	// and thresholds moved, so at the same point at least one spec value
	// must change.
	nom := set.Lane(0).Evaluate(xs[0])
	slow := set.Lane(1).Evaluate(xs[1])
	if nom.Err == nil && slow.Err == nil {
		same := true
		for name, v := range nom.SpecVals {
			if sv, ok := slow.SpecVals[name]; ok && sv != v {
				same = false
				break
			}
		}
		if same {
			t.Error("slow corner produced identical spec values to nominal — overrides not applied?")
		}
	}
}

// TestWorstCaseQuarantineDegrades checks the graceful-degradation
// contract of the worst-case assembly: excluding a corner (quarantine)
// reproduces the assembly over the remaining lanes, and a failed
// nominal lane fails the whole candidate.
func TestWorstCaseQuarantineDegrades(t *testing.T) {
	deck := parseCornered(t)
	mk := func() (*CornerSet, *BatchWorkspace, [][]float64) {
		set, err := CompileCorners(deck, deck.CornerNames(), CostOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bw := set.NewCornerBatch()
		x := startX(set)
		xs := make([][]float64, set.K())
		for i := range xs {
			xs[i] = set.LaneX(i, x, nil)
		}
		bw.Run(xs)
		return set, bw, xs
	}

	// All lanes in: finite total.
	set, bw, _ := mk()
	all := []bool{true, true, true}
	cb := set.WorstCase(bw, all, all)
	if cb.Failed || math.IsNaN(cb.Total) {
		t.Fatalf("worst-case over healthy lanes failed: %+v", cb)
	}

	// Quarantining the corners degrades to a nominal-only assembly:
	// fresh weights on both sides, bit-exact.
	set2, bw2, _ := mk()
	onlyNom := set2.WorstCase(bw2, []bool{true, false, false}, []bool{true, false, false})
	// Selection semantics: nil → all declared corners, empty → nominal only.
	if all3, err := SelectCorners(deck, nil); err != nil || len(all3) != 2 {
		t.Fatalf("SelectCorners(nil) = %v, %v; want both corners", all3, err)
	}
	if _, err := SelectCorners(deck, []string{"typo"}); err == nil {
		t.Fatal("SelectCorners accepted an undeclared corner name")
	}
	nomOnly2, err := CompileCorners(deck, nil, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nomOnly2.K() != 1 {
		t.Fatalf("empty selection → %d lanes, want 1", nomOnly2.K())
	}
	bwN := nomOnly2.NewCornerBatch()
	xN := startX(nomOnly2)
	bwN.Run([][]float64{nomOnly2.LaneX(0, xN, nil)})
	nomCB := nomOnly2.WorstCase(bwN, []bool{true}, []bool{true})
	if onlyNom.Total != nomCB.Total {
		t.Errorf("quarantined-corner assembly %g != nominal-only assembly %g", onlyNom.Total, nomCB.Total)
	}

	// A corner that failed to evaluate charges the deterministic
	// penalty: cost strictly rises vs. the healthy assembly.
	set3, bw3, _ := mk()
	failedSlow := set3.WorstCase(bw3, []bool{true, true, true}, []bool{true, false, true})
	if !(failedSlow.Total > onlyNom.Total) {
		t.Errorf("failed-corner penalty missing: %g vs %g", failedSlow.Total, onlyNom.Total)
	}

	// Nominal failure fails the candidate.
	set4, bw4, _ := mk()
	dead := set4.WorstCase(bw4, all, []bool{false, true, true})
	if !dead.Failed || dead.Total != set4.Nominal.Opt.FailCost {
		t.Errorf("dead nominal: %+v, want Failed at FailCost", dead)
	}
}

// stageCtx reports cancellation only from the nth Err() call onward,
// simulating a deadline landing mid-batch.
type stageCtx struct {
	context.Context
	calls, fireAt int
}

func (s *stageCtx) Err() error {
	s.calls++
	if s.calls >= s.fireAt {
		return context.Canceled
	}
	return nil
}

func (s *stageCtx) Done() <-chan struct{} { return nil }
func (s *stageCtx) Deadline() (time.Time, bool) {
	return time.Time{}, false
}

// TestBatchRunCtxCancellation covers the cancellation contract: a
// cancelled context returns promptly with every lane marked failed, and
// the workspace is not corrupted — the next uncancelled Run reproduces
// a fresh batch bit-exactly.
func TestBatchRunCtxCancellation(t *testing.T) {
	deck, err := netlist.Parse(diffAmpDeck)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(deck, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	bw := c.NewBatchWorkspace(k)
	xs := make([][]float64, k)
	for i := range xs {
		xs[i] = make([]float64, len(c.Vars()))
		for j, v := range c.Vars() {
			xs[i][j] = v.Start()
		}
		xs[i][0] *= 1 + 0.1*float64(i)
	}

	// Pre-cancelled: immediate return, every lane reports the error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bw.RunCtx(ctx, xs); err == nil {
		t.Fatal("RunCtx with cancelled ctx returned nil")
	}
	for i := 0; i < k; i++ {
		if bw.Lane(i).Err() == nil {
			t.Fatalf("lane %d: no error after cancelled run", i)
		}
	}

	// Mid-batch: cancellation lands between pipeline stages.
	mid := &stageCtx{Context: context.Background(), fireAt: 2}
	if err := bw.RunCtx(mid, xs); err == nil {
		t.Fatal("mid-batch cancellation not reported")
	}
	for i := 0; i < k; i++ {
		if bw.Lane(i).Err() == nil {
			t.Fatalf("lane %d: no error after mid-batch cancel", i)
		}
	}

	// Recovery: the same workspace, uncancelled, matches a fresh batch
	// lane for lane (costs consume the EMA stream, so compare states).
	if err := bw.RunCtx(context.Background(), xs); err != nil {
		t.Fatal(err)
	}
	fresh := c.NewBatchWorkspace(k)
	fresh.Run(xs)
	for i := 0; i < k; i++ {
		a, b := bw.Lane(i).State(), fresh.Lane(i).State()
		if (bw.Lane(i).Err() == nil) != (fresh.Lane(i).Err() == nil) {
			t.Fatalf("lane %d: err mismatch after recovery", i)
		}
		for name, want := range b.SpecVals {
			got := a.SpecVals[name]
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("lane %d spec %s: %g != fresh %g (post-cancel corruption)", i, name, got, want)
			}
		}
	}
}
