package astrx

import (
	"math"

	"astrx/internal/anneal"
	"astrx/internal/netlist"
)

// Weights holds the scalar weights of eq. (2)/(5): per-spec weights, a
// region-constraint weight, and the relaxed-dc KCL weight. The paper
// replaces hand-tuned constants with an adaptive scheme (§V-A, "Control
// Mechanisms"); Adapt implements a simple version — weights of
// persistently violated constraint groups grow, so no problem-specific
// tuning is ever required from the user.
type Weights struct {
	Spec   map[string]float64
	Region float64
	KCL    float64

	// violation EMAs per group, updated during Cost evaluation.
	emaSpec map[string]float64
	emaReg  float64
	emaKCL  float64
}

const (
	// weightCap bounds adaptive growth: a runaway weight makes the cost
	// landscape a cliff the annealer cannot traverse.
	weightCap   = 300.0
	emaDecay    = 0.999
	adaptFactor = 1.2
	adaptThresh = 1e-2
	// specFailUnits is the normalized-violation equivalent charged for a
	// spec that could not be evaluated at all (≫ 1 = "bad").
	specFailUnits = 10.0
)

func newWeights(deck *netlist.Deck, bias *BiasCkt) *Weights {
	w := &Weights{
		Spec:    make(map[string]float64, len(deck.Specs)),
		Region:  20,
		KCL:     100, // dc-correctness must not be tradable against specs
		emaSpec: make(map[string]float64, len(deck.Specs)),
	}
	for _, s := range deck.Specs {
		if s.Objective {
			w.Spec[s.Name] = 1
		} else {
			w.Spec[s.Name] = 10
		}
	}
	return w
}

// WeightsState is the serializable snapshot of the adaptive-weight
// state. The cost function is stateful (weights and violation EMAs
// evolve during annealing), so checkpoint/restart must capture it for a
// resumed run to reproduce an uninterrupted one exactly.
type WeightsState struct {
	Spec    map[string]float64 `json:"spec"`
	Region  float64            `json:"region"`
	KCL     float64            `json:"kcl"`
	EMASpec map[string]float64 `json:"ema_spec"`
	EMAReg  float64            `json:"ema_reg"`
	EMAKCL  float64            `json:"ema_kcl"`
}

// State snapshots the weights.
func (w *Weights) State() *WeightsState {
	s := &WeightsState{
		Spec:    make(map[string]float64, len(w.Spec)),
		Region:  w.Region,
		KCL:     w.KCL,
		EMASpec: make(map[string]float64, len(w.emaSpec)),
		EMAReg:  w.emaReg,
		EMAKCL:  w.emaKCL,
	}
	for k, v := range w.Spec {
		s.Spec[k] = v
	}
	for k, v := range w.emaSpec {
		s.EMASpec[k] = v
	}
	return s
}

// Restore overwrites the weights with a snapshot.
func (w *Weights) Restore(s *WeightsState) {
	if s == nil {
		return
	}
	for k, v := range s.Spec {
		w.Spec[k] = v
	}
	for k, v := range s.EMASpec {
		w.emaSpec[k] = v
	}
	w.Region, w.KCL = s.Region, s.KCL
	w.emaReg, w.emaKCL = s.EMAReg, s.EMAKCL
}

// Adapt grows the weight of any constraint group whose violation EMA
// remains above threshold. OBLX calls it periodically during annealing.
func (w *Weights) Adapt(deck *netlist.Deck) {
	for _, s := range deck.Specs {
		if s.Objective {
			continue
		}
		if w.emaSpec[s.Name] > adaptThresh && w.Spec[s.Name] < weightCap {
			w.Spec[s.Name] *= adaptFactor
		}
	}
	if w.emaReg > adaptThresh && w.Region < weightCap {
		w.Region *= adaptFactor
	}
	if w.emaKCL > adaptThresh && w.KCL < weightCap {
		w.KCL *= adaptFactor
	}
}

// Normalize maps a measured spec value onto the Nye-style scale: 0 at
// good, 1 at bad, linear in between and beyond.
func Normalize(s *netlist.Spec, v float64) float64 {
	return (s.Good - v) / (s.Good - s.Bad)
}

// CostBreakdown itemizes C(x) per eq. (5).
type CostBreakdown struct {
	Objective float64 // C^obj
	Perf      float64 // C^perf — spec constraint penalties
	Dev       float64 // C^dev — region constraint penalties
	DC        float64 // C^dc — relaxed-dc KCL penalties
	Failed    bool    // evaluation failed; Total = FailCost
	Total     float64
}

// Cost evaluates C(x) (implements anneal.Problem together with Vars).
// It runs on the compiled-plan workspace — the annealer's allocation-free
// hot path; CostDetail below keeps the map-based evaluator so the two
// implementations can be checked against each other.
func (c *Compiled) Cost(x []float64) float64 {
	return c.Workspace().Cost(x)
}

// Vars implements anneal.Problem.
func (c *Compiled) Vars() []anneal.VarSpec { return c.VarList }

// CostDetail evaluates the full state and itemizes the cost.
func (c *Compiled) CostDetail(x []float64) CostBreakdown {
	st := c.Evaluate(x)
	return c.CostFromState(st)
}

// CostFromState assembles C(x) from an evaluated state, updating the
// adaptive-weight statistics as a side effect.
func (c *Compiled) CostFromState(st *EvalState) CostBreakdown {
	var out CostBreakdown
	w := c.Weights
	if st.Err != nil {
		out.Failed = true
		out.Total = c.Opt.FailCost
		return out
	}

	// C^obj and C^perf.
	for _, s := range c.Deck.Specs {
		val := st.SpecVals[s.Name]
		if math.IsNaN(val) || math.IsInf(val, 0) {
			// Unevaluatable spec: treat as far beyond "bad".
			out.Perf += w.Spec[s.Name] * specFailUnits
			if !s.Objective {
				w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1 - emaDecay)
			}
			continue
		}
		u := Normalize(s, val)
		if s.Objective {
			// Keep optimizing past "good", but gently, so objectives
			// cannot drown the penalty terms.
			term := u
			if u < 0 {
				term = 0.05 * u
			}
			out.Objective += w.Spec[s.Name] * term
		} else {
			viol := math.Max(0, u)
			out.Perf += w.Spec[s.Name] * viol
			w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1-emaDecay)*math.Min(viol, 1)
		}
	}

	// C^dev: operating-region constraints.
	regViol := 0.0
	for _, r := range c.Deck.Regions {
		op, ok := st.MOSOps[r.Device]
		if !ok {
			continue // BJT region constraints not defined
		}
		v := 0.0
		switch r.Region {
		case "sat":
			v = math.Max(0, op.Vdsat+r.Margin-op.Vds)
		case "triode":
			v = math.Max(0, op.Vds-(op.Vdsat-r.Margin))
		case "on":
			v = math.Max(0, op.Vth+r.Margin-op.Vgs)
		}
		regViol += v // volts of violation
	}
	out.Dev = w.Region * regViol
	w.emaReg = emaDecay*w.emaReg + (1-emaDecay)*math.Min(regViol, 1)

	// C^dc: the relaxed-dc KCL penalties of eq. (3), normalized by the
	// current magnitude flowing through each node.
	kclViol := 0.0
	for _, n := range c.Bias.FreeNodes {
		res := math.Abs(st.KCL[n])
		if res <= c.Opt.KCLTolAbs {
			continue
		}
		kclViol += (res - c.Opt.KCLTolAbs) / (st.KCLFlow[n] + 1e-6)
	}
	out.DC = w.KCL * kclViol
	w.emaKCL = emaDecay*w.emaKCL + (1-emaDecay)*math.Min(kclViol, 1)

	out.Total = out.Objective + out.Perf + out.Dev + out.DC
	if math.IsNaN(out.Total) || math.IsInf(out.Total, 0) {
		out.Failed = true
		out.Total = c.Opt.FailCost
	}
	return out
}

// MaxKCLError returns the worst relative KCL residual of a state — the
// quantity Fig. 2 tracks along the optimization.
func (st *EvalState) MaxKCLError() float64 {
	worst := 0.0
	for _, n := range st.C.Bias.FreeNodes {
		rel := math.Abs(st.KCL[n]) / (st.KCLFlow[n] + 1e-12)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
