package astrx

import (
	"fmt"

	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/expr"
	"astrx/internal/netlist"
)

// compileBias flattens the .bias block, expands device parasitics into
// internal nodes, resolves models, and runs the tree-link analysis that
// splits nodes into determined (source-fixed) and free (relaxed-dc
// variables).
func compileBias(deck *netlist.Deck, opt CostOptions) (*BiasCkt, error) {
	flat, err := circuit.Flatten("bias", deck.Bias.Elements, deck.Modules, deck.Models)
	if err != nil {
		return nil, fmt.Errorf("astrx: bias: %w", err)
	}
	b := &BiasCkt{Devices: make(map[string]*DevInst)}
	net, devs, err := expandDevices(flat, deck)
	if err != nil {
		return nil, fmt.Errorf("astrx: bias: %w", err)
	}
	b.Net = net
	for _, d := range devs {
		b.Devices[d.Name] = d
		b.DevOrder = append(b.DevOrder, d.Name)
	}

	// Reject elements the DC formulation cannot handle.
	for _, e := range net.Elements {
		switch e.Kind {
		case circuit.KindR, circuit.KindC, circuit.KindV, circuit.KindI,
			circuit.KindG, circuit.KindM, circuit.KindQ:
		default:
			return nil, fmt.Errorf("astrx: bias: element %s (%v) unsupported in bias circuits", e.Name, e.Kind)
		}
		if e.Kind == circuit.KindV {
			b.VSources = append(b.VSources, e)
		}
	}

	// Tree-link analysis over the V-source graph: nodes reachable from
	// ground through voltage sources are determined; every other node
	// voltage becomes a variable in x.
	if err := b.analyzeDetermined(); err != nil {
		return nil, err
	}
	return b, nil
}

// analyzeDetermined builds the Determined program and FreeNodes list.
func (b *BiasCkt) analyzeDetermined() error {
	known := map[string]bool{circuit.Ground: true}
	// adjacency over V sources
	type edge struct {
		src   *circuit.Element
		other string
		sign  float64 // v(node) = v(other) + sign·value
	}
	adj := make(map[string][]edge)
	for _, e := range b.Net.Elements {
		if e.Kind != circuit.KindV {
			continue
		}
		p, n := e.Nodes[0], e.Nodes[1]
		if circuit.IsGround(p) {
			p = circuit.Ground
		}
		if circuit.IsGround(n) {
			n = circuit.Ground
		}
		// v(p) - v(n) = value
		adj[p] = append(adj[p], edge{src: e, other: n, sign: +1})
		adj[n] = append(adj[n], edge{src: e, other: p, sign: -1})
	}

	// BFS from ground.
	queue := []string{circuit.Ground}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ed := range adj[cur] {
			if known[ed.other] {
				continue
			}
			known[ed.other] = true
			// v(other) = v(cur) - sign·value when edge stored at cur…
			// easier to re-derive: the edge at `other` pointing back to
			// cur has the right orientation, so look it up there.
			for _, back := range adj[ed.other] {
				if back.src == ed.src && back.other == cur {
					from := cur
					if from == circuit.Ground {
						from = ""
					}
					b.Determined = append(b.Determined, DetermStep{
						Node: ed.other, From: from, Sign: back.sign, Src: ed.src,
					})
					break
				}
			}
			queue = append(queue, ed.other)
		}
	}

	// Floating V-source chains (no path to ground): pick the component's
	// first-seen node as a free representative, then determine the rest.
	for _, e := range b.Net.Elements {
		if e.Kind != circuit.KindV {
			continue
		}
		for _, n := range e.Nodes {
			if !known[n] && !circuit.IsGround(n) {
				// representative stays free; BFS its component
				known[n] = true
				comp := []string{n}
				for len(comp) > 0 {
					cur := comp[0]
					comp = comp[1:]
					for _, ed := range adj[cur] {
						if known[ed.other] || circuit.IsGround(ed.other) {
							continue
						}
						known[ed.other] = true
						for _, back := range adj[ed.other] {
							if back.src == ed.src && back.other == cur {
								b.Determined = append(b.Determined, DetermStep{
									Node: ed.other, From: cur, Sign: back.sign, Src: ed.src,
								})
								break
							}
						}
						comp = append(comp, ed.other)
					}
				}
				// n itself stays free: fall through to FreeNodes below.
				delete(known, n)
			}
		}
	}

	determined := map[string]bool{}
	for _, st := range b.Determined {
		determined[st.Node] = true
	}
	for _, n := range b.Net.NodeNames() {
		if !determined[n] && !circuit.IsGround(n) {
			b.FreeNodes = append(b.FreeNodes, n)
		}
	}
	return nil
}

// expandDevices resolves models for every M/Q element of a flat netlist
// and rewrites series drain/source resistances as explicit resistors with
// internal nodes ("<dev>#d"/"<dev>#s"). The returned netlist contains
// the linear elements plus the original devices (with rewritten channel
// terminals); device instances are returned separately.
func expandDevices(flat *circuit.Netlist, deck *netlist.Deck) (*circuit.Netlist, []*DevInst, error) {
	out := &circuit.Netlist{Title: flat.Title, Models: flat.Models}
	var devs []*DevInst
	models := make(map[string]interface{})

	lookup := func(name string) (interface{}, error) {
		if m, ok := models[name]; ok {
			return m, nil
		}
		card, ok := deck.Models[name]
		if !ok {
			return nil, fmt.Errorf("unknown model %q", name)
		}
		m, err := devices.FromModel(card)
		if err != nil {
			return nil, err
		}
		models[name] = m
		return m, nil
	}

	// Geometry expressions may reference design variables; series
	// resistance depends on W, so evaluate it at the midpoint for the
	// *structure* (whether to create internal nodes) but recompute the
	// value per evaluation via an expression tying RD to W.
	for _, e := range flat.Elements {
		switch e.Kind {
		case circuit.KindM:
			raw, err := lookup(e.Model)
			if err != nil {
				return nil, nil, fmt.Errorf("device %s: %v", e.Name, err)
			}
			mm, ok := raw.(devices.MOSModel)
			if !ok {
				return nil, nil, fmt.Errorf("device %s: model %q is not a MOS model", e.Name, e.Model)
			}
			d := &DevInst{Name: e.Name, Kind: DevMOS, Elem: e, MOS: &MOSRef{Model: mm}}
			dN, gN, sN, bN := e.Nodes[0], e.Nodes[1], e.Nodes[2], e.Nodes[3]

			// Structure decision: does this model card carry series R?
			rdw := modelParam(deck, e.Model, "rdw")
			rsw := modelParam(deck, e.Model, "rsw")
			newElem := *e
			newElem.Nodes = append([]string(nil), e.Nodes...)
			if rdw > 0 {
				inner := e.Name + "#d"
				out.Elements = append(out.Elements, seriesResistor(e, "rd", dN, inner, rdw))
				dN = inner
				newElem.Nodes[0] = inner
			}
			if rsw > 0 {
				inner := e.Name + "#s"
				out.Elements = append(out.Elements, seriesResistor(e, "rs", sN, inner, rsw))
				sN = inner
				newElem.Nodes[2] = inner
			}
			d.MOS.D, d.MOS.G, d.MOS.S, d.MOS.B = dN, gN, sN, bN
			out.Elements = append(out.Elements, &newElem)
			devs = append(devs, d)

		case circuit.KindQ:
			raw, err := lookup(e.Model)
			if err != nil {
				return nil, nil, fmt.Errorf("device %s: %v", e.Name, err)
			}
			bm, ok := raw.(*devices.BJTModel)
			if !ok {
				return nil, nil, fmt.Errorf("device %s: model %q is not a BJT model", e.Name, e.Model)
			}
			d := &DevInst{Name: e.Name, Kind: DevBJT, Elem: e, BJT: &BJTRef{
				Model: bm, C: e.Nodes[0], B: e.Nodes[1], E: e.Nodes[2],
			}}
			out.Elements = append(out.Elements, e)
			devs = append(devs, d)

		default:
			out.Elements = append(out.Elements, e)
		}
	}
	out.BuildIndex()
	return out, devs, nil
}

// seriesResistor builds the R element for a device's parasitic series
// resistance: value = RDW / (W·M), recomputed every evaluation from the
// device's geometry expressions.
func seriesResistor(dev *circuit.Element, which, outer, inner string, rw float64) *circuit.Element {
	wExpr := dev.Param("w")
	mExpr := dev.Param("m")
	val := &seriesRExpr{rw: rw, w: wExpr, m: mExpr}
	return &circuit.Element{
		Name:  dev.Name + "#" + which,
		Kind:  circuit.KindR,
		Nodes: []string{outer, inner},
		Value: val,
	}
}

// seriesRExpr is an expr.Node computing RDW/(W·M) from the device's
// geometry expressions.
type seriesRExpr struct {
	rw float64
	w  expr.Node
	m  expr.Node
}

// Eval computes the series resistance.
func (s *seriesRExpr) Eval(env expr.Env) (float64, error) {
	w, err := s.w.Eval(env)
	if err != nil {
		return 0, err
	}
	mult := 1.0
	if s.m != nil {
		mult, err = s.m.Eval(env)
		if err != nil {
			return 0, err
		}
		if mult <= 0 {
			mult = 1
		}
	}
	if w <= 0 {
		return 0, fmt.Errorf("astrx: nonpositive device width %g", w)
	}
	return s.rw / (w * mult), nil
}

// String renders the synthetic expression.
func (s *seriesRExpr) String() string {
	return fmt.Sprintf("%g/(W*M)", s.rw)
}

// modelParam fetches a raw model-card parameter (0 when missing).
func modelParam(deck *netlist.Deck, model, key string) float64 {
	if card, ok := deck.Models[model]; ok {
		return card.P(key, 0)
	}
	return 0
}
