package astrx

import (
	"context"
	"math"
	"testing"

	"astrx/internal/dcsolve"
	"astrx/internal/linalg"
)

func TestDCProblemDivider(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	p := c.DCProblem([]float64{1000})
	if p.N() != 1 {
		t.Fatalf("N = %d", p.N())
	}
	r, err := dcsolve.Solve(context.Background(), p, []float64{0}, dcsolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.V[0]-0.5) > 1e-9 {
		t.Errorf("divider node = %g, want 0.5", r.V[0])
	}
}

func TestDCProblemJacobianMatchesFD(t *testing.T) {
	// The analytic Jacobian must match finite differences of the
	// residual — including MOS rows with possible source/drain swaps.
	c := compileDeck(t, diffAmpDeck)
	st := evalDiffAmp(t, c)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	p := c.DCProblem(x)
	n := p.N()
	v := make([]float64, n)
	for i := range v {
		v[i] = -0.3 + 0.17*float64(i%5) // deliberately scattered
	}
	j := linalg.NewMatrix(n, n)
	if err := p.Jacobian(v, j); err != nil {
		t.Fatal(err)
	}
	f0 := make([]float64, n)
	if err := p.Residual(v, f0); err != nil {
		t.Fatal(err)
	}
	const dv = 1e-6
	f1 := make([]float64, n)
	for col := 0; col < n; col++ {
		v[col] += dv
		if err := p.Residual(v, f1); err != nil {
			t.Fatal(err)
		}
		v[col] -= dv
		for row := 0; row < n; row++ {
			fd := (f1[row] - f0[row]) / dv
			an := j.At(row, col)
			scale := math.Abs(fd) + math.Abs(an) + 1e-9
			if math.Abs(fd-an)/scale > 2e-2 {
				t.Errorf("J[%d][%d] (d res(%s)/d v(%s)): analytic %g vs FD %g",
					row, col, c.Bias.FreeNodes[row], c.Bias.FreeNodes[col], an, fd)
			}
		}
	}
}

func TestDCProblemSolvesDiffAmpBias(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	// Reasonable design-variable values: W=50u, L=2u, I=50u, Vb=1.2.
	x[0], x[1], x[2], x[3] = 50e-6, 2e-6, 50e-6, 1.2
	p := c.DCProblem(x)
	n := p.N()
	v0 := make([]float64, n)
	r, err := dcsolve.Solve(context.Background(), p, v0, dcsolve.Options{GminSteps: 8, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Residuals essentially zero.
	f := make([]float64, n)
	if err := p.Residual(r.V, f); err != nil {
		t.Fatal(err)
	}
	if linalg.VecNormInf(f) > 1e-9 {
		t.Errorf("KCL residual after Newton = %g", linalg.VecNormInf(f))
	}

	// Inject the solved voltages and check the full state.
	copy(x[c.NUser:], r.V)
	st := c.Evaluate(x)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if st.MaxKCLError() > 1e-6 {
		t.Errorf("relative KCL error = %g", st.MaxKCLError())
	}
	// Physical sanity: the tail node sits below the inputs (NMOS pair
	// needs vgs > vth ≈ 0.8), outputs between the rails.
	tail := st.NodeV["xamp.a"]
	if tail > -0.6 || tail < -2.5 {
		t.Errorf("tail voltage = %g, want in (-2.5, -0.6)", tail)
	}
	outP := st.NodeV["out+"]
	if outP < -2.5 || outP > 2.5 {
		t.Errorf("out+ = %g outside rails", outP)
	}
	// The mirror devices conduct: tail current splits between m1/m2.
	i1 := st.MOSOps["xamp.m1"].Ids
	i2 := st.MOSOps["xamp.m2"].Ids
	if i1 <= 0 || i2 <= 0 {
		t.Errorf("pair currents = %g, %g; want positive", i1, i2)
	}
	if math.Abs(i1+i2-50e-6)/50e-6 > 0.05 {
		t.Errorf("tail sum = %g, want ≈ 50µA", i1+i2)
	}
	// With a dc-correct bias the differential gain is above unity even
	// though the hand-picked Vb leaves the loads mismatched (finding the
	// Vb that maximizes gain is the annealer's job, not this test's).
	gain := st.SpecVals["adm"]
	if gain < 3 {
		t.Errorf("adm = %g dB, want > 3 dB at a dc-correct bias", gain)
	}
}
