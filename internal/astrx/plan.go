package astrx

import (
	"fmt"
	"strings"

	"astrx/internal/awe"
	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/expr"
	"astrx/internal/linalg"
)

// This file compiles the evaluation plan: the fixed index tables and
// stamp programs that let an EvalWorkspace replay a full cost evaluation
// with no map construction, no string formatting, and no per-evaluation
// allocation. The plan is pure data — every name lookup, node ordering
// decision, and matrix coordinate is resolved once at Compile time; the
// per-move hot path (workspace.go) only reads it.
//
// Equivalence with the map-based evaluator (eval.go) is bit-exact, which
// requires replaying the legacy code's floating-point operations in the
// same order, including its quirks: conductances stamped as 1/(1/g)
// (the legacy path emitted a resistor with value 1/g and mna recomputed
// the conductance), element skip rules (zero-valued stamps and
// self-capacitances are not emitted), and the map-literal overwrite
// semantics of the BJT Jacobian when terminals are tied.

// constInit writes one .const value into the workspace value table. It
// is applied after the design vector prefix each evaluation so a const
// that shadows a design variable wins, as in the legacy map fill order.
type constInit struct {
	idx int
	v   float64
}

// detStep computes one determined node voltage:
// nodeV[node] = nodeV[from] + sign·value(src); from = -1 reads 0.
type detStep struct {
	node, from int
	sign       float64
	src        *circuit.Element
}

// devPlan evaluates one nonlinear device's operating point.
type devPlan struct {
	name string
	kind DevKind
	elem *circuit.Element
	mos  *MOSRef
	bjt  *BJTRef
	// t holds bias node slots: MOS d g s b; BJT c b e -1.
	t [4]int
	// op indexes the workspace mosOps (DevMOS) or bjtOps (DevBJT) array.
	op int
}

// qjacSel selects one surviving column of the BJT Jacobian stamp. The
// legacy code built map literals keyed by terminal node name in the
// order base, emitter, collector; a duplicate key (tied terminals)
// keeps the last coefficient. coef selects position 0/1/2 in that
// literal order.
type qjacSel struct {
	col  int // node slot
	coef int
}

// kclOp accumulates one element's DC current contributions.
type kclOp struct {
	kind circuit.Kind
	e    *circuit.Element
	n    [4]int
	// dev indexes mosOps (KindM) or bjtOps (KindQ); -1 reads a zero
	// operating point, matching the legacy zero-value map read.
	dev int
	// qsel is the Jacobian column-selection program for KindQ.
	qsel []qjacSel
}

// devParamRef resolves a dotted spec identifier such as "xamp.m1.gm".
type devParamRef struct {
	mos   bool
	op    int
	param string
}

// powerOther is a previously peeled source's contribution at a node.
type powerOther struct {
	src  int
	sign float64
}

// powerContrib is one element's current contribution in the power()
// peeling (the currentInto cases). touches is the first terminal index
// matching the candidate node, as in the legacy first-match scan.
type powerContrib struct {
	kind    circuit.Kind
	e       *circuit.Element
	n       [4]int
	dev     int
	touches int
}

// powerStep recovers one voltage source's branch current.
type powerStep struct {
	src    int
	negate bool // candidate node was the source's + terminal
	others []powerOther
	conts  []powerContrib
}

// linOp replays one jig linear element through the MNA stamper.
type linOp struct {
	kind circuit.Kind
	e    *circuit.Element
	n    [4]int
	br   int // own branch row (V/E/H/L), else -1
	cb   int // controlling branch row (F/H), else -1
	// err surfaces a compile-detected problem (unknown controlling
	// source) at evaluation time, where the legacy path reported it.
	err error
}

// jigDevOp stamps one device's small-signal model into a jig.
type jigDevOp struct {
	mos bool
	op  int
	// Node slots within the jig: MOS d g s b (pre-swap); BJT c b e -1.
	d, g, s, b int
}

// tfPlan is one precompiled transfer-function request.
type tfPlan struct {
	name  string
	b     []float64 // excitation vector (static: ACMag only)
	ip    int       // output + unknown index
	in    int       // output − unknown index, -1 for single-ended
	q     int       // clamped AWE order
	tfIdx int
	err   error
}

// jigPlan is the compiled stamp program for one test jig. Node slots
// are positions in JigCkt.AllNodes (sorted, ground excluded); the
// runtime netlist emits the gmin ties first so the MNA first-appearance
// node order matches this canonical order.
type jigPlan struct {
	name   string
	nNodes int
	size   int
	gstamp float64 // gmin conductance as mna computes it: 1/(1/gmin)
	lin    []linOp
	devs   []jigDevOp
	tfs    []tfPlan

	// sym is the symbolic sparse factorization of the jig's expected G
	// pattern, computed once at compile time and primed into each
	// workspace engine so the per-eval numeric factorization is a
	// branch-light replay over flat arrays (see buildJigSymbolic).
	sym *linalg.Symbolic
}

// evalPlan is the complete compiled evaluation program.
type evalPlan struct {
	nVals  int
	valIdx map[string]int
	consts []constInit

	nNodes   int
	nodeIdx  map[string]int
	freeIdx  []int // free-variable position -> node slot
	freeSlot []int // node slot -> free-variable position or -1
	det      []detStep

	devs       []devPlan
	nMOS, nBJT int

	kcl []kclOp

	// regions maps each .region card to a mosOps index (-1 = skip).
	regions []int

	// devRefs resolves dotted spec identifiers; vIdx resolves v(node)
	// reads with legacy NodeV membership semantics (ground + free +
	// determined nodes only; -1 reads 0).
	devRefs map[string]devParamRef
	vIdx    map[string]int

	tfIdx map[string]int
	nTFs  int

	vsrcs    []*circuit.Element
	power    []powerStep
	powerErr error

	jigs []*jigPlan
}

type devIdxEntry struct {
	kind DevKind
	op   int
}

// buildPlan compiles the evaluation plan for a compiled problem. It
// never fails: deck conditions the legacy evaluator only detected at
// evaluation time are recorded in the plan and surfaced per evaluation.
func buildPlan(c *Compiled) *evalPlan {
	p := &evalPlan{
		valIdx:  make(map[string]int, c.NUser+len(c.Deck.Consts)),
		nodeIdx: make(map[string]int),
		devRefs: make(map[string]devParamRef),
		vIdx:    make(map[string]int),
		tfIdx:   make(map[string]int),
		vsrcs:   c.Bias.VSources,
	}

	// Value table: user variables by position, then consts (a const
	// sharing a variable's name reuses its slot and overwrites it each
	// evaluation, matching the legacy map fill order).
	for i := 0; i < c.NUser; i++ {
		p.valIdx[c.VarList[i].Name] = i
	}
	p.nVals = c.NUser
	for _, k := range sortedNames(c.Deck.Consts) {
		idx, ok := p.valIdx[k]
		if !ok {
			idx = p.nVals
			p.nVals++
			p.valIdx[k] = idx
		}
		p.consts = append(p.consts, constInit{idx: idx, v: c.Deck.Consts[k]})
	}

	slot := func(name string) int {
		if name == "" || circuit.IsGround(name) {
			return -1
		}
		if i, ok := p.nodeIdx[name]; ok {
			return i
		}
		i := p.nNodes
		p.nNodes++
		p.nodeIdx[name] = i
		return i
	}

	// Node slots: free nodes first (their position in the x tail), then
	// determined nodes, then everything the bias net and devices touch.
	for _, n := range c.Bias.FreeNodes {
		p.freeIdx = append(p.freeIdx, slot(n))
	}
	for _, stp := range c.Bias.Determined {
		from := -1
		if stp.From != "" {
			from = slot(stp.From)
		}
		p.det = append(p.det, detStep{
			node: slot(stp.Node), from: from, sign: stp.Sign, src: stp.Src,
		})
	}
	for _, e := range c.Bias.Net.Elements {
		for _, nd := range e.Nodes {
			slot(nd)
		}
	}

	// Devices in deterministic order; terminal names come from the
	// bias-side references (series expansion may have renamed them).
	devIdx := make(map[string]devIdxEntry, len(c.Bias.DevOrder))
	for _, name := range c.Bias.DevOrder {
		d := c.Bias.Devices[name]
		dp := devPlan{name: name, kind: d.Kind, elem: d.Elem, mos: d.MOS, bjt: d.BJT}
		if d.Kind == DevMOS {
			dp.t = [4]int{slot(d.MOS.D), slot(d.MOS.G), slot(d.MOS.S), slot(d.MOS.B)}
			dp.op = p.nMOS
			p.nMOS++
		} else {
			dp.t = [4]int{slot(d.BJT.C), slot(d.BJT.B), slot(d.BJT.E), -1}
			dp.op = p.nBJT
			p.nBJT++
		}
		devIdx[name] = devIdxEntry{kind: d.Kind, op: dp.op}
		p.devs = append(p.devs, dp)
	}

	p.freeSlot = make([]int, p.nNodes)
	for i := range p.freeSlot {
		p.freeSlot[i] = -1
	}
	for i, s := range p.freeIdx {
		if s >= 0 {
			p.freeSlot[s] = i
		}
	}

	// KCL accumulation program (shared by the Jacobian replay).
	for _, e := range c.Bias.Net.Elements {
		switch e.Kind {
		case circuit.KindR, circuit.KindI, circuit.KindG, circuit.KindM, circuit.KindQ:
			op := kclOp{kind: e.Kind, e: e, dev: -1}
			for k, nd := range e.Nodes {
				if k < 4 {
					op.n[k] = slot(nd)
				}
			}
			for k := len(e.Nodes); k < 4; k++ {
				op.n[k] = -1
			}
			if di, ok := devIdx[e.Name]; ok {
				switch {
				case e.Kind == circuit.KindM && di.kind == DevMOS:
					op.dev = di.op
				case e.Kind == circuit.KindQ && di.kind == DevBJT:
					op.dev = di.op
				}
			}
			if e.Kind == circuit.KindQ {
				op.qsel = qJacSelection(op.n[1], op.n[2], op.n[0])
			}
			p.kcl = append(p.kcl, op)
		}
	}

	// Region constraints resolve to MOS operating-point indices.
	for _, r := range c.Deck.Regions {
		idx := -1
		if di, ok := devIdx[r.Device]; ok && di.kind == DevMOS {
			idx = di.op
		}
		p.regions = append(p.regions, idx)
	}

	// Dotted spec identifiers: resolve the device and validate the
	// parameter name once (both are value-independent).
	for _, s := range c.Deck.Specs {
		walkVarNames(s.Expr, func(name string) {
			if _, ok := p.valIdx[name]; ok {
				return
			}
			if _, ok := p.devRefs[name]; ok {
				return
			}
			i := strings.LastIndex(name, ".")
			if i <= 0 {
				return
			}
			dev, param := strings.ToLower(name[:i]), strings.ToLower(name[i+1:])
			di, ok := devIdx[dev]
			if !ok {
				return
			}
			if di.kind == DevMOS {
				if _, ok := mosParam(devices.MOSOp{}, param); ok {
					p.devRefs[name] = devParamRef{mos: true, op: di.op, param: param}
				}
			} else {
				if _, ok := bjtParam(devices.BJTOp{}, param); ok {
					p.devRefs[name] = devParamRef{mos: false, op: di.op, param: param}
				}
			}
		})
	}

	// v(node) membership: exactly the keys the legacy NodeV map carried.
	p.vIdx[circuit.Ground] = -1
	for i, n := range c.Bias.FreeNodes {
		p.vIdx[n] = p.freeIdx[i]
	}
	for i, stp := range c.Bias.Determined {
		p.vIdx[stp.Node] = p.det[i].node
	}

	// Transfer-function slots, in jig declaration order (a duplicate
	// name resolves to the last request, like the legacy map).
	for _, j := range c.Jigs {
		for _, req := range j.TFs {
			p.tfIdx[req.Name] = p.nTFs
			p.nTFs++
		}
	}

	p.buildPowerPlan(c, slot, devIdx)

	tfSlot := 0
	for _, j := range c.Jigs {
		jp := buildJigPlan(c, j, devIdx, &tfSlot)
		jp.sym = buildJigSymbolic(jp)
		p.jigs = append(p.jigs, jp)
	}
	return p
}

// qJacSelection replicates the legacy BJT Jacobian map literals keyed
// (base, emitter, collector): duplicate keys keep the last coefficient;
// surviving entries are emitted in first-occurrence order (stamp order
// between distinct matrix cells does not affect the accumulated sums).
func qJacSelection(bN, eN, cN int) []qjacSel {
	cols := [3]int{bN, eN, cN}
	sel := make([]qjacSel, 0, 3)
	for i, col := range cols {
		found := false
		for k := range sel {
			if sel[k].col == col {
				sel[k].coef = i // later literal entry overwrites
				found = true
				break
			}
		}
		if !found {
			sel = append(sel, qjacSel{col: col, coef: i})
		}
	}
	return sel
}

// walkVarNames visits every bare identifier in an expression tree,
// including function-call arguments (Call.Eval resolves those through
// Env.Var as well).
func walkVarNames(n expr.Node, fn func(string)) {
	switch t := n.(type) {
	case *expr.Var:
		fn(t.Name)
	case *expr.Call:
		for _, a := range t.Args {
			walkVarNames(a, fn)
		}
	case *expr.Unary:
		walkVarNames(t.X, fn)
	case *expr.Binary:
		walkVarNames(t.L, fn)
		walkVarNames(t.R, fn)
	}
}

// buildPowerPlan simulates the legacy power() peeling loop, which is
// purely structural: which sources share nodes decides the recovery
// order, never the element values. The step sequence is recorded so the
// evaluation replays only the arithmetic.
func (p *evalPlan) buildPowerPlan(c *Compiled, slot func(string) int, devIdx map[string]devIdxEntry) {
	srcs := c.Bias.VSources
	known := make([]bool, len(srcs))
	nKnown := 0
	for progress := true; progress && nKnown < len(srcs); {
		progress = false
		for si, s := range srcs {
			if known[si] {
				continue
			}
			for ni, node := range s.Nodes {
				if circuit.IsGround(node) {
					continue
				}
				ready := true
				var others []powerOther
				for oi, o := range srcs {
					if oi == si {
						continue
					}
					touches, sign := vTouch(o, node)
					if !touches {
						continue
					}
					if !known[oi] {
						ready = false
						break
					}
					others = append(others, powerOther{src: oi, sign: sign})
				}
				if !ready {
					continue
				}
				step := powerStep{src: si, negate: ni == 0, others: others}
				step.conts = powerContribs(c, node, s, slot, devIdx)
				p.power = append(p.power, step)
				known[si] = true
				nKnown++
				progress = true
				break
			}
		}
	}
	if nKnown < len(srcs) {
		p.powerErr = fmt.Errorf("astrx: power(): voltage-source loop prevents current recovery")
	}
}

// powerContribs records the currentInto contributions at node for the
// peeling step of source skip. Elements whose legacy case evaluates an
// expression are kept even when they contribute no current (a VCCS
// touched only through its control nodes still surfaces value errors).
func powerContribs(c *Compiled, node string, skip *circuit.Element, slot func(string) int, devIdx map[string]devIdxEntry) []powerContrib {
	var out []powerContrib
	for _, e := range c.Bias.Net.Elements {
		if e == skip {
			continue
		}
		touches := -1
		for k, n := range e.Nodes {
			if n == node {
				touches = k
				break
			}
		}
		if touches < 0 {
			continue
		}
		keep := false
		switch e.Kind {
		case circuit.KindR, circuit.KindI, circuit.KindG:
			keep = true
		case circuit.KindM:
			keep = touches == 0 || touches == 2
		case circuit.KindQ:
			keep = touches <= 2
		}
		if !keep {
			continue
		}
		cn := powerContrib{kind: e.Kind, e: e, touches: touches, dev: -1}
		for k, nd := range e.Nodes {
			if k < 4 {
				cn.n[k] = slot(nd)
			}
		}
		for k := len(e.Nodes); k < 4; k++ {
			cn.n[k] = -1
		}
		if di, ok := devIdx[e.Name]; ok {
			cn.dev = di.op
		}
		out = append(out, cn)
	}
	return out
}

// buildJigPlan compiles one jig's stamp program. Node slots are
// positions in j.AllNodes; branch rows follow in Linear declaration
// order, exactly as mna.Build assigns them for the gmin-first netlist
// that smallSignalNetlist now emits.
func buildJigPlan(c *Compiled, j *JigCkt, devIdx map[string]devIdxEntry, tfSlot *int) *jigPlan {
	jp := &jigPlan{name: j.Name, nNodes: len(j.AllNodes)}
	jp.gstamp = 1 / (1 / c.Opt.Gmin)

	idx := make(map[string]int, len(j.AllNodes))
	for i, n := range j.AllNodes {
		idx[n] = i
	}
	nslot := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		return -1 // ground (AllNodes covers every non-ground jig node)
	}

	branches := make(map[string]int)
	next := jp.nNodes
	for _, e := range j.Linear {
		switch e.Kind {
		case circuit.KindV, circuit.KindE, circuit.KindH, circuit.KindL:
			branches[e.Name] = next
			next++
		}
	}
	jp.size = next

	for _, e := range j.Linear {
		op := linOp{kind: e.Kind, e: e, br: -1, cb: -1}
		for k, nd := range e.Nodes {
			if k < 4 {
				op.n[k] = nslot(nd)
			}
		}
		for k := len(e.Nodes); k < 4; k++ {
			op.n[k] = -1
		}
		if br, ok := branches[e.Name]; ok {
			op.br = br
		}
		if e.Kind == circuit.KindF || e.Kind == circuit.KindH {
			if cb, ok := branches[e.CtrlName]; ok {
				op.cb = cb
			} else {
				op.err = fmt.Errorf("mna: element %s controls by unknown source %q", e.Name, e.CtrlName)
			}
		}
		jp.lin = append(jp.lin, op)
	}

	for _, jd := range j.Devices {
		di := devIdx[jd.Inst.Name] // validated by compileJig
		jp.devs = append(jp.devs, jigDevOp{
			mos: di.kind == DevMOS, op: di.op,
			d: nslot(jd.T[0]), g: nslot(jd.T[1]), s: nslot(jd.T[2]), b: nslot(jd.T[3]),
		})
	}

	q := c.Opt.AWEOrder
	if q <= 0 {
		q = awe.DefaultOrder
	}
	if q > jp.size {
		q = jp.size
	}
	for _, req := range j.TFs {
		tp := tfPlan{name: req.Name, ip: nslot(req.OutPos), in: -1, q: q}
		// Slots were numbered in declaration order across all jigs.
		tp.tfIdx = *tfSlot
		*tfSlot++
		if req.OutNeg != "" && req.OutNeg != "0" {
			if circuit.IsGround(req.OutNeg) {
				// Legacy: NodeUnknown rejects ground aliases at
				// evaluation time.
				tp.err = fmt.Errorf("awe: output node %q unknown or ground", req.OutNeg)
			} else {
				tp.in = nslot(req.OutNeg)
			}
		}
		tp.b = make([]float64, jp.size)
		src := findJigSource(j, req.Src)
		mag := src.ACMag
		if mag == 0 {
			mag = 1
		}
		switch src.Kind {
		case circuit.KindV:
			tp.b[branches[src.Name]] = mag
		case circuit.KindI:
			if i := nslot(src.Nodes[0]); i >= 0 {
				tp.b[i] -= mag
			}
			if i := nslot(src.Nodes[1]); i >= 0 {
				tp.b[i] += mag
			}
		}
		jp.tfs = append(jp.tfs, tp)
	}
	return jp
}

// buildJigSymbolic precomputes the sparse elimination order for the G
// pattern the jig's stamp program produces at a typical operating point:
// every linear stamp present, every device conductance nonzero, and MOS
// drain/source not swapped. The runtime pattern is still scanned per
// factorization and matched exactly — priming is a warm start, not an
// assumption — so a cutoff device or swapped MOS simply computes (and
// caches) its own ordering on first sight. Positions mirror the G-matrix
// writes in mna.Stamper; C-only stamps (capacitors) don't factor.
func buildJigSymbolic(jp *jigPlan) *linalg.Symbolic {
	n := jp.size
	grid := make([]bool, n*n)
	mark := func(i, j int) {
		if i >= 0 && j >= 0 {
			grid[i*n+j] = true
		}
	}
	cond := func(a, b int) { // Resistor-style conductance stamp
		mark(a, a)
		mark(b, b)
		mark(a, b)
		mark(b, a)
	}
	branch := func(a, b, br int) { // V/E/H/L branch coupling rows
		mark(a, br)
		mark(b, br)
		mark(br, a)
		mark(br, b)
	}
	vccs := func(p, q, cp, cq int) {
		mark(p, cp)
		mark(p, cq)
		mark(q, cp)
		mark(q, cq)
	}
	for i := 0; i < jp.nNodes; i++ {
		mark(i, i) // gmin ground ties
	}
	for i := range jp.lin {
		op := &jp.lin[i]
		switch op.kind {
		case circuit.KindR:
			cond(op.n[0], op.n[1])
		case circuit.KindL, circuit.KindV:
			branch(op.n[0], op.n[1], op.br)
		case circuit.KindG:
			vccs(op.n[0], op.n[1], op.n[2], op.n[3])
		case circuit.KindE:
			branch(op.n[0], op.n[1], op.br)
			mark(op.br, op.n[2])
			mark(op.br, op.n[3])
		case circuit.KindF:
			if op.err == nil {
				mark(op.n[0], op.cb)
				mark(op.n[1], op.cb)
			}
		case circuit.KindH:
			if op.err == nil {
				branch(op.n[0], op.n[1], op.br)
				mark(op.br, op.cb)
			}
		}
	}
	for i := range jp.devs {
		d := &jp.devs[i]
		if d.mos {
			// Gmbs is omitted on purpose: the runtime stamp is gated on
			// op.Gmbs != 0 and the finite-difference body-effect derivative
			// is exactly zero for the shipped model cards, so predicting
			// its entries would make the structural pattern a strict
			// superset of every runtime scan and the prediction would
			// never prime a cache hit. A card with real body effect just
			// means the first factorization computes (and caches) its own
			// symbolic — the adaptive batch path keys on runtime scans.
			vccs(d.d, d.s, d.g, d.s) // Gm
			cond(d.d, d.s)           // Gds
		} else {
			vccs(d.d, d.s, d.g, d.s) // Gm (c, e, b, e)
			cond(d.g, d.s)           // Gpi (b-e)
			cond(d.d, d.s)           // Go (c-e)
			cond(d.g, d.d)           // Gmu (b-c)
		}
	}
	nnz := 0
	for _, set := range grid {
		if set {
			nnz++
		}
	}
	pos := make([]int32, 0, nnz)
	for i, set := range grid {
		if set {
			pos = append(pos, int32(i))
		}
	}
	var p linalg.Pattern
	p.Set(n, pos)
	return linalg.NewSymbolic(&p)
}

// findJigSource locates the TF input source among the jig's linear
// elements (first match by name, like Netlist.Element).
func findJigSource(j *JigCkt, name string) *circuit.Element {
	for _, e := range j.Linear {
		if e.Name == name {
			return e
		}
	}
	// compileJig validated the source exists and is V/I (thus linear).
	panic(fmt.Sprintf("astrx: jig %s: tf source %q not in linear elements", j.Name, name))
}
