package astrx

import (
	"fmt"
	"math"
	"strings"

	"astrx/internal/awe"
	"astrx/internal/circuit"
	"astrx/internal/devices"
	"astrx/internal/expr"
	"astrx/internal/linalg"
	"astrx/internal/mna"
	"astrx/internal/telemetry"
)

// EvalWorkspace evaluates the compiled cost function by replaying the
// precompiled plan (plan.go) into persistent, index-addressed storage:
// matrices are re-stamped in place, LU factors and AWE scratch are
// reused, and all name-keyed maps of the legacy evaluator are replaced
// by slices addressed through compile-time index tables. After warm-up
// a steady-state evaluation performs no heap allocation and no string
// work, which is what makes the annealer's move loop cheap.
//
// A workspace is single-goroutine state, like the adaptive weights it
// updates; every annealing run owns one via Compiled.Workspace. Results
// are bit-identical to Compiled.Evaluate/CostDetail: the plan replays
// the same floating-point operations in the same order.
type EvalWorkspace struct {
	c    *Compiled
	plan *evalPlan

	vals     []float64
	nodeV    []float64
	mosOps   []devices.MOSOp
	bjtOps   []devices.BJTOp
	kclRes   []float64
	kclFlow  []float64
	specVals []float64
	tfs      []awe.TF
	err      error
	// unstable counts transfer-function fits that produced a model with
	// right-half-plane poles (see awe.ErrUnstable). The model is still
	// measured; the count surfaces how often the fit degraded.
	unstable int

	jigs []jigWS
	fit  awe.FitWorkspace

	// Bump arena for expression-call argument buffers (expr.ArgAllocator).
	args   []expr.Arg
	argOff int

	mags []float64 // nthRootMag scratch
	vI   []float64 // power() recovered branch currents

	valEnv  wsValEnv
	specEnv wsSpecEnv

	// clock samples per-stage wall time for the cost pipeline. nil (the
	// default) keeps every instrumentation site a single pointer check;
	// even an armed clock allocates nothing (telemetry.Clock).
	clock *telemetry.Clock

	dc DCProblem
}

// jigWS is the per-jig matrix and AWE state.
type jigWS struct {
	G, C linalg.Matrix
	eng  awe.Engine
	mu   []float64
}

// NewWorkspace allocates a fresh evaluation workspace for this compiled
// problem.
func (c *Compiled) NewWorkspace() *EvalWorkspace {
	p := c.plan
	ws := &EvalWorkspace{
		c:        c,
		plan:     p,
		vals:     make([]float64, p.nVals),
		nodeV:    make([]float64, p.nNodes),
		mosOps:   make([]devices.MOSOp, p.nMOS),
		bjtOps:   make([]devices.BJTOp, p.nBJT),
		kclRes:   make([]float64, p.nNodes),
		kclFlow:  make([]float64, p.nNodes),
		specVals: make([]float64, len(c.Deck.Specs)),
		tfs:      make([]awe.TF, p.nTFs),
		jigs:     make([]jigWS, len(p.jigs)),
		vI:       make([]float64, len(p.vsrcs)),
	}
	ws.valEnv.ws = ws
	ws.specEnv.ws = ws
	for _, ci := range p.consts {
		ws.vals[ci.idx] = ci.v
	}
	for i, jp := range p.jigs {
		jw := &ws.jigs[i]
		jw.G = *linalg.NewMatrix(jp.size, jp.size)
		jw.C = *linalg.NewMatrix(jp.size, jp.size)
		jw.eng.G, jw.eng.C = &jw.G, &jw.C
		if jp.sym != nil {
			jw.eng.Prime(jp.sym)
		}
		maxMu := 0
		for _, tp := range jp.tfs {
			if 2*tp.q > maxMu {
				maxMu = 2 * tp.q
			}
		}
		jw.mu = make([]float64, maxMu)
	}
	return ws
}

// Workspace returns the compiled problem's lazily created shared
// workspace. Like the adaptive weights, it is not safe for concurrent
// use: parallel annealing runs each compile their own problem.
func (c *Compiled) Workspace() *EvalWorkspace {
	if c.ws == nil {
		c.ws = c.NewWorkspace()
	}
	return c.ws
}

// SetClock attaches a sampled per-stage timer to this workspace's cost
// evaluations (nil detaches). The clock must not be shared with another
// workspace; obtain one per workspace from a shared telemetry.EvalTimer.
func (ws *EvalWorkspace) SetClock(c *telemetry.Clock) {
	ws.clock = c
	for i := range ws.jigs {
		ws.jigs[i].eng.Clock = c
	}
}

// Err returns the first fatal problem of the last evaluation (nil if it
// completed).
func (ws *EvalWorkspace) Err() error { return ws.err }

// JigStats reports the factorization shape of each small-signal jig
// from the most recent evaluation: matrix dimension, structural
// nonzeros, factor fill-in, and whether the sparse replay ran (false →
// dense fallback). The benchmark harness exports these as per-deck
// matrix metrics.
func (ws *EvalWorkspace) JigStats() []linalg.FactorStats {
	out := make([]linalg.FactorStats, len(ws.jigs))
	for i := range ws.jigs {
		out[i] = ws.jigs[i].eng.FactorStats()
	}
	return out
}

// UnstableCount returns how many evaluations this workspace has rejected
// for right-half-plane poles in the reduced model.
func (ws *EvalWorkspace) UnstableCount() int { return ws.unstable }

// SetUnstableCount restores the rejection counter when resuming from a
// checkpoint.
func (ws *EvalWorkspace) SetUnstableCount(n int) { ws.unstable = n }

// resetArgs rewinds the call-argument arena; only legal between
// top-level expression evaluations (calls nest within one).
func (ws *EvalWorkspace) resetArgs() { ws.argOff = 0 }

// argBuf serves expr.ArgAllocator from the bump arena. Growth leaves
// outstanding buffers pointing at the old backing array, so nested
// calls stay valid.
func (ws *EvalWorkspace) argBuf(n int) []expr.Arg {
	if ws.argOff+n > len(ws.args) {
		ws.args = make([]expr.Arg, 2*len(ws.args)+n+8)
		ws.argOff = 0
	}
	b := ws.args[ws.argOff : ws.argOff+n]
	ws.argOff += n
	return b
}

// nv reads a node voltage slot; -1 is ground (0 V).
func (ws *EvalWorkspace) nv(slot int) float64 {
	if slot < 0 {
		return 0
	}
	return ws.nodeV[slot]
}

func (ws *EvalWorkspace) mosOpAt(i int) devices.MOSOp {
	if i < 0 {
		return devices.MOSOp{}
	}
	return ws.mosOps[i]
}

func (ws *EvalWorkspace) bjtOpAt(i int) devices.BJTOp {
	if i < 0 {
		return devices.BJTOp{}
	}
	return ws.bjtOps[i]
}

// wsValEnv is the plain value environment (design variables and consts
// plus math built-ins) — the workspace counterpart of exprEnv.
type wsValEnv struct{ ws *EvalWorkspace }

func (e *wsValEnv) Var(name string) (float64, bool) {
	i, ok := e.ws.plan.valIdx[name]
	if !ok {
		return 0, false
	}
	return e.ws.vals[i], true
}

func (e *wsValEnv) Call(fn string, args []expr.Arg) (float64, error) {
	return expr.MathCall(fn, args)
}

func (e *wsValEnv) ArgBuf(n int) []expr.Arg { return e.ws.argBuf(n) }

// run replays the plan for the design vector x. full=false stops after
// the KCL residuals (the Newton path); full=true continues through AWE
// and the spec expressions.
func (ws *EvalWorkspace) run(x []float64, full bool) {
	ws.err = nil
	c, p := ws.c, ws.plan
	if len(x) != len(c.VarList) {
		ws.err = fmt.Errorf("astrx: state has %d values, want %d", len(x), len(c.VarList))
		return
	}
	copy(ws.vals[:c.NUser], x[:c.NUser])
	for _, ci := range p.consts {
		ws.vals[ci.idx] = ci.v
	}
	env := &ws.valEnv

	// Node voltages: free nodes from the x tail, then determined chains.
	// Slots that are neither stay 0, like the legacy map misses.
	for i, slot := range p.freeIdx {
		ws.nodeV[slot] = x[c.NUser+i]
	}
	for i := range p.det {
		stp := &p.det[i]
		base := 0.0
		if stp.from >= 0 {
			base = ws.nodeV[stp.from]
		}
		ws.resetArgs()
		val, err := stp.src.EvalValue(env)
		if err != nil {
			ws.err = fmt.Errorf("astrx: source %s: %w", stp.src.Name, err)
			return
		}
		ws.nodeV[stp.node] = base + stp.sign*val
	}

	// Device operating points.
	for i := range p.devs {
		d := &p.devs[i]
		if d.kind == DevMOS {
			g, err := ws.geometry(d.elem)
			if err != nil {
				ws.err = err
				return
			}
			ws.mosOps[d.op] = devices.EvalMOS(d.mos.Model, g,
				ws.nv(d.t[0]), ws.nv(d.t[1]), ws.nv(d.t[2]), ws.nv(d.t[3]))
		} else {
			ws.resetArgs()
			area, err := d.elem.EvalParam("area", 1, env)
			if err != nil {
				ws.err = err
				return
			}
			ws.bjtOps[d.op] = devices.EvalBJT(d.bjt.Model, area,
				ws.nv(d.t[0]), ws.nv(d.t[1]), ws.nv(d.t[2]))
		}
	}

	if err := ws.evalKCL(); err != nil {
		ws.err = err
		return
	}
	ws.clock.Mark(telemetry.StageBias)
	if !full {
		return
	}

	for i := range p.jigs {
		if err := ws.evalJig(p.jigs[i], &ws.jigs[i]); err != nil {
			ws.err = err
			return
		}
	}

	ws.evalSpecs()
}

// evalSpecs evaluates the compiled spec expressions against the last
// jig results (the tail of a full run, split out so the batched
// evaluator can replay it per lane).
func (ws *EvalWorkspace) evalSpecs() {
	for i, s := range ws.c.Deck.Specs {
		ws.resetArgs()
		v, err := s.Expr.Eval(&ws.specEnv)
		if err != nil {
			ws.specVals[i] = math.NaN()
			continue
		}
		ws.specVals[i] = v
	}
	ws.clock.Mark(telemetry.StageSpecs)
}

// geometry is the workspace counterpart of EvalState.geometry.
func (ws *EvalWorkspace) geometry(e *circuit.Element) (devices.MOSGeom, error) {
	env := &ws.valEnv
	w, err := e.EvalParam("w", 0, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	l, err := e.EvalParam("l", 0, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	m, err := e.EvalParam("m", 1, env)
	if err != nil {
		return devices.MOSGeom{}, err
	}
	if w <= 0 || l <= 0 {
		return devices.MOSGeom{}, fmt.Errorf("astrx: device %s: nonpositive geometry w=%g l=%g", e.Name, w, l)
	}
	return devices.MOSGeom{W: w, L: l, M: m}, nil
}

// evalKCL accumulates the DC current residuals by replaying the KCL
// program in element order (identical accumulation order to the legacy
// map-based loop).
func (ws *EvalWorkspace) evalKCL() error {
	p := ws.plan
	for i := range ws.kclRes {
		ws.kclRes[i] = 0
		ws.kclFlow[i] = 0
	}
	add := func(slot int, leaving float64) {
		if slot < 0 {
			return
		}
		ws.kclRes[slot] += leaving
		ws.kclFlow[slot] += math.Abs(leaving)
	}
	env := &ws.valEnv
	for i := range p.kcl {
		op := &p.kcl[i]
		switch op.kind {
		case circuit.KindR:
			ws.resetArgs()
			r, err := op.e.EvalValue(env)
			if err != nil || r == 0 {
				return fmt.Errorf("astrx: bias resistor %s: bad value (%v)", op.e.Name, err)
			}
			iR := (ws.nv(op.n[0]) - ws.nv(op.n[1])) / r
			add(op.n[0], iR)
			add(op.n[1], -iR)
		case circuit.KindI:
			ws.resetArgs()
			v, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: bias source %s: %w", op.e.Name, err)
			}
			add(op.n[0], v)
			add(op.n[1], -v)
		case circuit.KindG:
			ws.resetArgs()
			gm, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: bias vccs %s: %w", op.e.Name, err)
			}
			iG := gm * (ws.nv(op.n[2]) - ws.nv(op.n[3]))
			add(op.n[0], iG)
			add(op.n[1], -iG)
		case circuit.KindM:
			mop := ws.mosOpAt(op.dev)
			add(op.n[0], mop.Ids)
			add(op.n[2], -mop.Ids)
		case circuit.KindQ:
			qop := ws.bjtOpAt(op.dev)
			add(op.n[0], qop.Ic)
			add(op.n[1], qop.Ib)
			add(op.n[2], -(qop.Ic + qop.Ib))
		}
	}
	return nil
}

// evalJig re-stamps one jig's (G, C) pair, refactors, and fits every
// requested transfer function.
func (ws *EvalWorkspace) evalJig(jp *jigPlan, jw *jigWS) error {
	if err := ws.stampJig(jp, jw); err != nil {
		return err
	}
	if err := jw.eng.Refactor(); err != nil {
		return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
	}
	ws.clock.Mark(telemetry.StageFactor)
	for i := range jp.tfs {
		tp := &jp.tfs[i]
		if tp.err != nil {
			return fmt.Errorf("astrx: jig %s tf %s: %w", jp.name, tp.name, tp.err)
		}
		mu := jw.mu[:2*tp.q]
		jw.eng.MomentsInto(mu, tp.b, tp.ip, tp.in)
		ws.clock.Mark(telemetry.StageMoments)
		ws.fitTF(tp, mu)
	}
	return nil
}

// fitTF reduces one transfer function's moments to a pole/zero model.
// An unstable winner means no stable order reproduced the moments
// (awe.ErrUnstable). The model is still measured — often the RHP pole
// is a Padé artifact at the edge of moment resolution, not a physically
// unstable circuit — but the event is counted so runs dominated by
// unstable fits are visible in FailureStats.Unstable and the daemon's
// oblxd_eval_unstable_total metric.
func (ws *EvalWorkspace) fitTF(tp *tfPlan, mu []float64) {
	ws.fit.FitMomentsInto(&ws.tfs[tp.tfIdx], mu, tp.q)
	if tf := &ws.tfs[tp.tfIdx]; tf.Order > 0 && !tf.Stable() {
		ws.unstable++
	}
	ws.clock.Mark(telemetry.StageFit)
}

// stampJig re-stamps one jig's (G, C) pair. The stamp order — gmin
// ties, linear elements, device models — matches the node and branch
// ordering the jig plan was compiled against.
func (ws *EvalWorkspace) stampJig(jp *jigPlan, jw *jigWS) error {
	jw.G.Zero()
	jw.C.Zero()
	st := mna.Stamper{G: &jw.G, C: &jw.C}
	for i := 0; i < jp.nNodes; i++ {
		st.Resistor(i, -1, jp.gstamp)
	}
	env := &ws.valEnv
	for i := range jp.lin {
		op := &jp.lin[i]
		switch op.kind {
		case circuit.KindR:
			ws.resetArgs()
			r, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			if r == 0 {
				return fmt.Errorf("astrx: jig %s: %w", jp.name,
					fmt.Errorf("mna: resistor %s has zero resistance", op.e.Name))
			}
			st.Resistor(op.n[0], op.n[1], 1/r)
		case circuit.KindC:
			ws.resetArgs()
			cv, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			st.Capacitor(op.n[0], op.n[1], cv)
		case circuit.KindL:
			ws.resetArgs()
			l, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			st.Inductor(op.n[0], op.n[1], op.br, l)
		case circuit.KindV:
			st.VSource(op.n[0], op.n[1], op.br)
		case circuit.KindI:
			// Excitation handled by the precomputed input vectors.
		case circuit.KindG:
			ws.resetArgs()
			gm, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			st.VCCS(op.n[0], op.n[1], op.n[2], op.n[3], gm)
		case circuit.KindE:
			ws.resetArgs()
			a, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			st.VCVS(op.n[0], op.n[1], op.n[2], op.n[3], op.br, a)
		case circuit.KindF:
			ws.resetArgs()
			f, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			if op.err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, op.err)
			}
			st.CCCS(op.n[0], op.n[1], op.cb, f)
		case circuit.KindH:
			ws.resetArgs()
			h, err := op.e.EvalValue(env)
			if err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, err)
			}
			if op.err != nil {
				return fmt.Errorf("astrx: jig %s: %w", jp.name, op.err)
			}
			st.CCVS(op.n[0], op.n[1], op.br, op.cb, h)
		}
	}
	for i := range jp.devs {
		d := &jp.devs[i]
		if d.mos {
			op := ws.mosOps[d.op]
			dn, sn := d.d, d.s
			if op.Swapped {
				dn, sn = sn, dn
			}
			// Conductances stamp as 1/(1/g): the legacy path emitted a
			// resistor of value 1/g and mna recomputed the conductance.
			if op.Gm != 0 {
				st.VCCS(dn, sn, d.g, sn, op.Gm)
			}
			if op.Gmbs != 0 {
				st.VCCS(dn, sn, d.b, sn, op.Gmbs)
			}
			if op.Gds != 0 {
				st.Resistor(dn, sn, 1/(1/op.Gds))
			}
			if cv := op.Caps.Cgs; cv != 0 && d.g != sn {
				st.Capacitor(d.g, sn, cv)
			}
			if cv := op.Caps.Cgd; cv != 0 && d.g != dn {
				st.Capacitor(d.g, dn, cv)
			}
			if cv := op.Caps.Cgb; cv != 0 && d.g != d.b {
				st.Capacitor(d.g, d.b, cv)
			}
			if cv := op.Caps.Cdb; cv != 0 && dn != d.b {
				st.Capacitor(dn, d.b, cv)
			}
			if cv := op.Caps.Csb; cv != 0 && sn != d.b {
				st.Capacitor(sn, d.b, cv)
			}
		} else {
			op := ws.bjtOps[d.op]
			cN, bN, eN := d.d, d.g, d.s
			if op.Gm != 0 {
				st.VCCS(cN, eN, bN, eN, op.Gm)
			}
			if op.Gpi != 0 {
				st.Resistor(bN, eN, 1/(1/op.Gpi))
			}
			if op.Go != 0 {
				st.Resistor(cN, eN, 1/(1/op.Go))
			}
			if op.Gmu != 0 {
				st.Resistor(bN, cN, 1/(1/op.Gmu))
			}
			if cv := op.Cpi; cv != 0 && bN != eN {
				st.Capacitor(bN, eN, cv)
			}
			if cv := op.Cmu; cv != 0 && bN != cN {
				st.Capacitor(bN, cN, cv)
			}
		}
	}
	ws.clock.Mark(telemetry.StageStamp)
	return nil
}

// Cost evaluates C(x) in the workspace (the annealer's hot path).
func (ws *EvalWorkspace) Cost(x []float64) float64 {
	return ws.CostDetail(x).Total
}

// CostDetail evaluates the full state in the workspace and itemizes the
// cost, updating the compiled problem's adaptive-weight statistics
// exactly as Compiled.CostDetail does.
func (ws *EvalWorkspace) CostDetail(x []float64) CostBreakdown {
	ws.clock.Begin()
	ws.run(x, true)
	out := ws.costFromRun()
	ws.clock.End()
	return out
}

// costFromRun mirrors CostFromState's arithmetic over the workspace
// slices, including the adaptive-weight EMA side effects.
func (ws *EvalWorkspace) costFromRun() CostBreakdown {
	var out CostBreakdown
	c := ws.c
	w := c.Weights
	if ws.err != nil {
		out.Failed = true
		out.Total = c.Opt.FailCost
		return out
	}

	for i, s := range c.Deck.Specs {
		val := ws.specVals[i]
		if math.IsNaN(val) || math.IsInf(val, 0) {
			out.Perf += w.Spec[s.Name] * specFailUnits
			if !s.Objective {
				w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1 - emaDecay)
			}
			continue
		}
		u := Normalize(s, val)
		if s.Objective {
			term := u
			if u < 0 {
				term = 0.05 * u
			}
			out.Objective += w.Spec[s.Name] * term
		} else {
			viol := math.Max(0, u)
			out.Perf += w.Spec[s.Name] * viol
			w.emaSpec[s.Name] = emaDecay*w.emaSpec[s.Name] + (1-emaDecay)*math.Min(viol, 1)
		}
	}

	regViol := ws.regionViolation()
	out.Dev = w.Region * regViol
	w.emaReg = emaDecay*w.emaReg + (1-emaDecay)*math.Min(regViol, 1)

	kclViol := ws.kclViolation()
	out.DC = w.KCL * kclViol
	w.emaKCL = emaDecay*w.emaKCL + (1-emaDecay)*math.Min(kclViol, 1)

	out.Total = out.Objective + out.Perf + out.Dev + out.DC
	if math.IsNaN(out.Total) || math.IsInf(out.Total, 0) {
		out.Failed = true
		out.Total = c.Opt.FailCost
	}
	return out
}

// regionViolation accumulates the operating-region violation (volts)
// from the last run — the raw C^dev quantity, without weights or EMA
// side effects, shared by the scalar and worst-case-corner assemblies.
func (ws *EvalWorkspace) regionViolation() float64 {
	regViol := 0.0
	for i, r := range ws.c.Deck.Regions {
		opIdx := ws.plan.regions[i]
		if opIdx < 0 {
			continue
		}
		op := ws.mosOps[opIdx]
		v := 0.0
		switch r.Region {
		case "sat":
			v = math.Max(0, op.Vdsat+r.Margin-op.Vds)
		case "triode":
			v = math.Max(0, op.Vds-(op.Vdsat-r.Margin))
		case "on":
			v = math.Max(0, op.Vth+r.Margin-op.Vgs)
		}
		regViol += v
	}
	return regViol
}

// kclViolation accumulates the normalized relaxed-dc KCL violation from
// the last run — the raw C^dc quantity of eq. (3).
func (ws *EvalWorkspace) kclViolation() float64 {
	kclViol := 0.0
	for _, slot := range ws.plan.freeIdx {
		res := math.Abs(ws.kclRes[slot])
		if res <= ws.c.Opt.KCLTolAbs {
			continue
		}
		kclViol += (res - ws.c.Opt.KCLTolAbs) / (ws.kclFlow[slot] + 1e-6)
	}
	return kclViol
}

// State projects the workspace's last evaluation into a map-based
// EvalState for inspection and verification code. The maps are freshly
// allocated, but TF pointers alias workspace storage: they are valid
// only until the next evaluation. Contents are meaningful when Err is
// nil; after a failed run they are best-effort, like the legacy
// partially filled state.
func (ws *EvalWorkspace) State() *EvalState {
	c, p := ws.c, ws.plan
	st := &EvalState{
		C:        c,
		Vals:     make(map[string]float64, p.nVals),
		NodeV:    make(map[string]float64, len(p.vIdx)),
		MOSOps:   make(map[string]devices.MOSOp, p.nMOS),
		BJTOps:   make(map[string]devices.BJTOp, p.nBJT),
		KCL:      make(map[string]float64, len(c.Bias.FreeNodes)),
		KCLFlow:  make(map[string]float64, len(c.Bias.FreeNodes)),
		TFs:      make(map[string]*awe.TF, p.nTFs),
		SpecVals: make(map[string]float64, len(c.Deck.Specs)),
		Err:      ws.err,
	}
	for name, i := range p.valIdx {
		st.Vals[name] = ws.vals[i]
	}
	for name, slot := range p.vIdx {
		st.NodeV[name] = ws.nv(slot)
	}
	for i := range p.devs {
		d := &p.devs[i]
		if d.kind == DevMOS {
			st.MOSOps[d.name] = ws.mosOps[d.op]
		} else {
			st.BJTOps[d.name] = ws.bjtOps[d.op]
		}
	}
	for i, n := range c.Bias.FreeNodes {
		st.KCL[n] = ws.kclRes[p.freeIdx[i]]
		st.KCLFlow[n] = ws.kclFlow[p.freeIdx[i]]
	}
	for _, jp := range p.jigs {
		for i := range jp.tfs {
			tp := &jp.tfs[i]
			st.TFs[tp.name] = &ws.tfs[tp.tfIdx]
		}
	}
	for i, s := range c.Deck.Specs {
		st.SpecVals[s.Name] = ws.specVals[i]
	}
	return st
}

// ---------------------------------------------------------------------------
// wsSpecEnv: the workspace counterpart of specEnv.

type wsSpecEnv struct{ ws *EvalWorkspace }

func (e *wsSpecEnv) ArgBuf(n int) []expr.Arg { return e.ws.argBuf(n) }

// Var resolves design variables, constants, and precompiled dotted
// device-parameter paths.
func (e *wsSpecEnv) Var(name string) (float64, bool) {
	ws := e.ws
	if i, ok := ws.plan.valIdx[name]; ok {
		return ws.vals[i], true
	}
	if ref, ok := ws.plan.devRefs[name]; ok {
		if ref.mos {
			return mosParam(ws.mosOps[ref.op], ref.param)
		}
		return bjtParam(ws.bjtOps[ref.op], ref.param)
	}
	return 0, false
}

// Call resolves the measurement functions over the workspace state,
// falling back to the math built-ins — the same dispatch as
// specEnv.Call without the (verification-only) backend hook.
func (e *wsSpecEnv) Call(fn string, args []expr.Arg) (float64, error) {
	ws := e.ws
	tfArg := func() (*awe.TF, error) {
		if len(args) < 1 || !args[0].IsName {
			return nil, fmt.Errorf("astrx: %s needs a transfer function name", fn)
		}
		i, ok := ws.plan.tfIdx[args[0].Name]
		if !ok {
			return nil, fmt.Errorf("astrx: unknown transfer function %q", args[0].Name)
		}
		// An unstable model (see awe.ErrUnstable) is still measured: the
		// fitter already preferred any stable order that reproduced the
		// moments, so this is the best available model. The fit site
		// counted the event; FailureStats.Unstable and the daemon's
		// oblxd_eval_unstable_total metric tell operators how much to
		// trust the numbers.
		return &ws.tfs[i], nil
	}
	switch fn {
	case "dc_gain":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.DCGain(), nil
	case "ugf":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.UGF() / (2 * math.Pi), nil
	case "phase_margin":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.PhaseMarginDeg(), nil
	case "bw3db":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		return tf.BW3dB() / (2 * math.Pi), nil
	case "pole":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: pole(tf, i) needs an index")
		}
		return ws.nthRootMag(tf.Poles, int(args[1].Value))
	case "zero":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: zero(tf, i) needs an index")
		}
		return ws.nthRootMag(tf.Zeros, int(args[1].Value))
	case "gain_at":
		tf, err := tfArg()
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("astrx: gain_at(tf, hz) needs a frequency")
		}
		return tf.GainMagAt(2 * math.Pi * args[1].Value), nil
	case "v":
		if len(args) != 1 || !args[0].IsName {
			return 0, fmt.Errorf("astrx: v(node) needs a node name")
		}
		node := strings.ToLower(args[0].Name)
		slot, ok := ws.plan.vIdx[node]
		if !ok {
			return 0, fmt.Errorf("astrx: v(%s): unknown bias node", node)
		}
		return ws.nv(slot), nil
	case "active_area":
		return ws.activeArea()
	case "power":
		return ws.power()
	}
	return expr.MathCall(fn, args)
}

// nthRootMag is the workspace counterpart of the package-level
// nthRootMag, with reusable magnitude scratch.
func (ws *EvalWorkspace) nthRootMag(roots []complex128, i int) (float64, error) {
	if i < 1 || i > len(roots) {
		return 0, fmt.Errorf("astrx: root index %d out of range (have %d)", i, len(roots))
	}
	if cap(ws.mags) < len(roots) {
		ws.mags = make([]float64, len(roots))
	}
	mags := ws.mags[:len(roots)]
	for k, r := range roots {
		mags[k] = math.Hypot(real(r), imag(r))
	}
	for a := 0; a < len(mags); a++ {
		for b := a + 1; b < len(mags); b++ {
			if mags[b] < mags[a] {
				mags[a], mags[b] = mags[b], mags[a]
			}
		}
	}
	return mags[i-1] / (2 * math.Pi), nil
}

// activeArea sums W·L·M over all MOS devices (device order matches the
// legacy DevOrder walk).
func (ws *EvalWorkspace) activeArea() (float64, error) {
	tot := 0.0
	for i := range ws.plan.devs {
		d := &ws.plan.devs[i]
		if d.kind != DevMOS {
			continue
		}
		g, err := ws.geometry(d.elem)
		if err != nil {
			return 0, err
		}
		tot += g.W * g.L * g.Mult()
	}
	return tot, nil
}

// power replays the precompiled peeling schedule: each step recovers
// one voltage source's branch current from the already known ones and
// the non-source element currents at the chosen node.
func (ws *EvalWorkspace) power() (float64, error) {
	p := ws.plan
	if p.powerErr != nil {
		return 0, p.powerErr
	}
	env := &ws.valEnv
	for si := range p.power {
		stp := &p.power[si]
		otherV := 0.0
		for _, o := range stp.others {
			otherV += o.sign * ws.vI[o.src]
		}
		rest := 0.0
		for ci := range stp.conts {
			cn := &stp.conts[ci]
			switch cn.kind {
			case circuit.KindR:
				r, err := cn.e.EvalValue(env)
				if err != nil || r == 0 {
					return 0, fmt.Errorf("astrx: power(): resistor %s: %v", cn.e.Name, err)
				}
				iR := (ws.nv(cn.n[0]) - ws.nv(cn.n[1])) / r
				if cn.touches == 0 {
					rest += iR
				} else {
					rest -= iR
				}
			case circuit.KindI:
				v, err := cn.e.EvalValue(env)
				if err != nil {
					return 0, err
				}
				if cn.touches == 0 {
					rest += v
				} else {
					rest -= v
				}
			case circuit.KindG:
				gm, err := cn.e.EvalValue(env)
				if err != nil {
					return 0, err
				}
				iG := gm * (ws.nv(cn.n[2]) - ws.nv(cn.n[3]))
				switch cn.touches {
				case 0:
					rest += iG
				case 1:
					rest -= iG
				}
			case circuit.KindM:
				op := ws.mosOpAt(cn.dev)
				switch cn.touches {
				case 0:
					rest += op.Ids
				case 2:
					rest -= op.Ids
				}
			case circuit.KindQ:
				op := ws.bjtOpAt(cn.dev)
				switch cn.touches {
				case 0:
					rest += op.Ic
				case 1:
					rest += op.Ib
				case 2:
					rest -= op.Ic + op.Ib
				}
			}
		}
		if stp.negate {
			ws.vI[stp.src] = -(rest + otherV)
		} else {
			ws.vI[stp.src] = rest + otherV
		}
	}
	tot := 0.0
	for i, s := range p.vsrcs {
		v, err := s.EvalValue(env)
		if err != nil {
			return 0, err
		}
		tot += math.Abs(v * ws.vI[i])
	}
	return tot, nil
}
