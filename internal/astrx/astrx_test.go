package astrx

import (
	"math"
	"strings"
	"testing"

	"astrx/internal/expr"
	"astrx/internal/netlist"
)

// dividerDeck is a device-free problem: size R2 so the divider gain is
// high. It exercises the relaxed-dc machinery in isolation.
const dividerDeck = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends

.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
`

const diffAmpDeck = `
.lib c2u

.module amp (in+ in- out+ out- vdd vss oa)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=50u l=2u
m4 out+ nb  vdd vdd pmos3 w=50u l=2u
vb  nb vdd '0-Vb'
ib  a vss I
.ends

.var W  min=2u  max=500u grid
.var L  min=2u  max=20u  grid
.var I  min=1u  max=1m   cont
.var Vb min=0.5 max=4    cont

.const Cl 1p

.jig main
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vin  in+ 0 0 ac 1
ein  in- 0 in+ 0 -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vi1  in+ 0 0
vi2  in- 0 0
.ends

.obj  adm 'db(dc_gain(tf))'  good=40 bad=5
.spec ugf 'ugf(tf)'          good=1Meg bad=10k
.spec sr  'I/(2*(Cl+xamp.m1.cdb))' good=1Meg bad=10k
.spec pwr 'power()'          good=1m  bad=20m
.spec area 'active_area()'   good=5n  bad=100n
.region xamp.m1 sat
.region xamp.m3 sat
`

func compileDeck(t *testing.T, src string) *Compiled {
	t.Helper()
	d, err := netlist.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(d, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileDivider(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	if c.NUser != 1 {
		t.Fatalf("NUser = %d, want 1", c.NUser)
	}
	// "in" is determined by vb; "out" is the single free node.
	if len(c.Bias.FreeNodes) != 1 || c.Bias.FreeNodes[0] != "out" {
		t.Fatalf("FreeNodes = %v, want [out]", c.Bias.FreeNodes)
	}
	if len(c.VarList) != 2 {
		t.Fatalf("VarList = %d, want 2", len(c.VarList))
	}
	if !c.VarList[1].Continuous || !strings.Contains(c.VarList[1].Name, "out") {
		t.Errorf("node var = %+v", c.VarList[1])
	}

	// KCL-correct point: R2 = 1k → v(out) = 0.5.
	st := c.Evaluate([]float64{1000, 0.5})
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if math.Abs(st.KCL["out"]) > 1e-12 {
		t.Errorf("KCL residual at balanced point = %g, want ≈ 0", st.KCL["out"])
	}
	if math.Abs(st.SpecVals["gain"]-0.5) > 1e-6 {
		t.Errorf("divider gain = %g, want 0.5", st.SpecVals["gain"])
	}

	// Off-balance point has a residual and a higher cost.
	st2 := c.Evaluate([]float64{1000, 0.9})
	if math.Abs(st2.KCL["out"]) < 1e-6 {
		t.Error("off-balance KCL residual should be significant")
	}
	cb1 := c.CostFromState(st)
	cb2 := c.CostFromState(st2)
	if cb2.DC <= cb1.DC {
		t.Errorf("DC penalty: balanced %g vs off %g", cb1.DC, cb2.DC)
	}

	// Max KCL error metric.
	if st2.MaxKCLError() <= st.MaxKCLError() {
		t.Error("MaxKCLError ordering wrong")
	}
}

func TestCompileDiffAmp(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	if c.NUser != 4 {
		t.Fatalf("NUser = %d, want 4", c.NUser)
	}
	// Devices: 4 MOS.
	if len(c.Bias.DevOrder) != 4 {
		t.Fatalf("devices = %v", c.Bias.DevOrder)
	}
	// Free nodes: out+, out-, tail a, plus 2 internal nodes per device.
	wantFree := 3 + 8
	if len(c.Bias.FreeNodes) != wantFree {
		t.Errorf("free nodes = %d (%v), want %d", len(c.Bias.FreeNodes), c.Bias.FreeNodes, wantFree)
	}
	// Node voltages must outnumber user variables (the paper's Table 1
	// phenomenon).
	if len(c.Bias.FreeNodes) <= c.NUser {
		t.Error("relaxed-dc variables should outnumber user variables")
	}
	// xamp.nb is determined via the vb chain from vdd.
	for _, st := range c.Bias.Determined {
		if st.Node == "xamp.nb" && st.From != "nvdd" {
			t.Errorf("xamp.nb determined from %q, want nvdd", st.From)
		}
	}

	st := evalDiffAmp(t, c)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	// Devices evaluated.
	if len(st.MOSOps) != 4 {
		t.Fatalf("MOS ops = %d", len(st.MOSOps))
	}
	// TF present and the differential gain positive (measured out+ vs
	// out- with anti-phase drive).
	tf := st.TFs["tf"]
	if tf == nil {
		t.Fatal("tf missing")
	}
	if st.SpecVals["adm"] == 0 {
		t.Error("adm spec not evaluated")
	}
	// Spec expressions saw device caps and bias functions.
	if st.SpecVals["sr"] <= 0 {
		t.Errorf("sr = %g, want > 0", st.SpecVals["sr"])
	}
	if st.SpecVals["pwr"] <= 0 {
		t.Errorf("power = %g, want > 0", st.SpecVals["pwr"])
	}
	if st.SpecVals["area"] <= 0 {
		t.Errorf("area = %g, want > 0", st.SpecVals["area"])
	}

	cb := c.CostFromState(st)
	if cb.Failed {
		t.Fatal("cost evaluation failed")
	}
	if cb.Total == 0 {
		t.Error("cost should not be exactly zero at an arbitrary point")
	}
}

// evalDiffAmp builds a plausible starting state: variables at their
// starting values, node voltages at rough hand-picked values.
func evalDiffAmp(t *testing.T, c *Compiled) *EvalState {
	t.Helper()
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	// Hand-pick a conducting operating region: outputs near mid-supply,
	// NMOS sources (tail side) low so vgs > vth, PMOS internals at the
	// top rail.
	for i := c.NUser; i < len(c.VarList); i++ {
		name := c.VarList[i].Name
		pmos := strings.Contains(name, "m3") || strings.Contains(name, "m4")
		switch {
		case strings.Contains(name, "#s") && pmos:
			x[i] = 2.5
		case strings.Contains(name, "#d") && pmos:
			x[i] = 0.5
		case strings.Contains(name, "#s"):
			x[i] = -1.2
		case strings.Contains(name, "#d"):
			x[i] = 0.5
		case strings.Contains(name, "out"):
			x[i] = 0.5
		case strings.Contains(name, ".a"):
			x[i] = -1.2
		}
	}
	return c.Evaluate(x)
}

func TestStatsTable1Shape(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	s := c.Stats()
	if s.UserVars != 4 {
		t.Errorf("UserVars = %d", s.UserVars)
	}
	if s.NodeVoltVars != 11 {
		t.Errorf("NodeVoltVars = %d, want 11", s.NodeVoltVars)
	}
	if s.CostTerms <= 0 || s.EstCLines <= 600 {
		t.Errorf("terms/lines = %d/%d", s.CostTerms, s.EstCLines)
	}
	if s.BiasNodes == 0 || s.BiasElements == 0 {
		t.Error("bias stats empty")
	}
	if len(s.JigCircuits) != 1 || s.JigCircuits[0].Nodes == 0 {
		t.Errorf("jig stats = %+v", s.JigCircuits)
	}
	if s.NetlistLines == 0 || s.SynthLines == 0 {
		t.Error("line counts missing")
	}
}

func TestCompileErrors(t *testing.T) {
	parse := func(src string) *netlist.Deck {
		d, err := netlist.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		src  string
	}{
		{"noBias", ".jig j\nvin a 0 0 ac 1\nr1 a 0 1\n.pz tf v(a) vin\n.ends\n.var R min=1 max=2\n"},
		{"noJig", ".bias\nr1 a 0 1\n.ends\n.var R min=1 max=2\n"},
		{"noVars", dividerNoVars},
		{"unknownModel", `
.module m (a b)
m1 a b 0 0 nosuchmodel w=1u l=1u
.ends
.var W min=1u max=2u
.jig j
xm a b m
vin a 0 0 ac 1
.pz tf v(b) vin
.ends
.bias
xm a b m
vb a 0 1
.ends
`},
		{"jigDeviceNotInBias", `
.lib c2u
.module m (a b)
m1 b a 0 0 nmos3 w=W l=2u
.ends
.var W min=1u max=2u
.jig j
xj a b m
vin a 0 0 ac 1
.pz tf v(b) vin
.ends
.bias
vb a 0 1
rb b 0 1k
.ends
`},
		{"pzUnknownSource", `
.jig j
vin a 0 0 ac 1
r1 a b 1k
r2 b 0 1k
.pz tf v(b) nosrc
.ends
.bias
vb a 0 1
.ends
.var R min=1 max=2
`},
		{"pzUnknownNode", `
.jig j
vin a 0 0 ac 1
r1 a b 1k
r2 b 0 1k
.pz tf v(zzz) vin
.ends
.bias
vb a 0 1
.ends
.var R min=1 max=2
`},
		{"regionUnknownDevice", `
.jig j
vin a 0 0 ac 1
r1 a b 1k
.pz tf v(b) vin
.ends
.bias
vb a 0 1
.ends
.var R min=1 max=2
.region xamp.m9 sat
`},
		{"inductorInBias", `
.jig j
vin a 0 0 ac 1
r1 a b 1k
.pz tf v(b) vin
.ends
.bias
vb a 0 1
l1 a b 1m
.ends
.var R min=1 max=2
`},
	}
	for _, cse := range cases {
		if _, err := Compile(parse(cse.src), CostOptions{}); err == nil {
			t.Errorf("%s: Compile succeeded, want error", cse.name)
		}
	}
}

const dividerNoVars = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
.pz tf v(out) vin
.ends
.bias
vb in 0 1
.ends
`

func TestCostFailurePath(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	// Wrong length vector → failed evaluation → FailCost.
	cb := c.CostDetail([]float64{1})
	if !cb.Failed || cb.Total != c.Opt.FailCost {
		t.Errorf("bad-length cost = %+v", cb)
	}
}

func TestNormalizeDirections(t *testing.T) {
	up := &netlist.Spec{Name: "up", Good: 100, Bad: 10}
	if Normalize(up, 100) != 0 {
		t.Error("Normalize at good must be 0")
	}
	if Normalize(up, 10) != 1 {
		t.Error("Normalize at bad must be 1")
	}
	if Normalize(up, 190) >= 0 {
		t.Error("beyond good must be negative")
	}
	dn := &netlist.Spec{Name: "dn", Good: 1, Bad: 10}
	if Normalize(dn, 1) != 0 || Normalize(dn, 10) != 1 {
		t.Error("minimize direction broken")
	}
	if Normalize(dn, 20) <= 1 {
		t.Error("worse than bad must exceed 1")
	}
}

func TestAdaptiveWeights(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	d, _ := netlist.Parse(dividerDeck)
	_ = d
	// Force the KCL EMA high, then adapt.
	c.Weights.emaKCL = 1
	w0 := c.Weights.KCL
	c.Weights.Adapt(c.Deck)
	if c.Weights.KCL <= w0 {
		t.Error("KCL weight should grow under persistent violation")
	}
	// Satisfied constraints do not grow.
	c.Weights.emaKCL = 0
	w1 := c.Weights.KCL
	c.Weights.Adapt(c.Deck)
	if c.Weights.KCL != w1 {
		t.Error("satisfied KCL weight must stay put")
	}
}

func TestRegionPenalty(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	st := evalDiffAmp(t, c)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	cb := c.CostFromState(st)
	// Build a state that forces m1 deep into triode by collapsing its
	// drain voltage; penalty must not decrease.
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	for i := c.NUser; i < len(c.VarList); i++ {
		x[i] = -2.4 // everything at the bottom rail
	}
	st2 := c.Evaluate(x)
	if st2.Err != nil {
		t.Fatal(st2.Err)
	}
	cb2 := c.CostFromState(st2)
	_ = cb
	if cb2.Dev < 0 {
		t.Error("region penalty must be nonnegative")
	}
}

func TestSpecEnvDeviceParams(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	st := evalDiffAmp(t, c)
	env := &specEnv{st: st}
	for _, p := range []string{"gm", "gds", "id", "vth", "vdsat", "vgs", "vds", "cgs", "cdb", "region", "vov"} {
		if _, ok := env.Var("xamp.m1." + p); !ok {
			t.Errorf("device param %s not resolvable", p)
		}
	}
	if _, ok := env.Var("xamp.m9.gm"); ok {
		t.Error("unknown device must not resolve")
	}
	if _, ok := env.Var("xamp.m1.bogus"); ok {
		t.Error("unknown param must not resolve")
	}
	// v(node) on bias nodes.
	if _, err := env.Call("v", nil); err == nil {
		t.Error("v() without args must error")
	}
	v, err := env.Call("v", []expr.Arg{{IsName: true, Name: "nvdd"}})
	if err != nil || v != 2.5 {
		t.Errorf("v(nvdd) = %g, %v; want 2.5", v, err)
	}
	if _, err := env.Call("v", []expr.Arg{{IsName: true, Name: "zzz"}}); err == nil {
		t.Error("v(unknown) must error")
	}
	// TF measurement dispatch.
	if _, err := env.Call("dc_gain", []expr.Arg{{IsName: true, Name: "tf"}}); err != nil {
		t.Errorf("dc_gain(tf): %v", err)
	}
	if _, err := env.Call("dc_gain", []expr.Arg{{IsName: true, Name: "zz"}}); err == nil {
		t.Error("dc_gain(unknown tf) must error")
	}
	if _, err := env.Call("pole", []expr.Arg{{IsName: true, Name: "tf"}, {Value: 1}}); err != nil {
		t.Errorf("pole(tf,1): %v", err)
	}
	if _, err := env.Call("pole", []expr.Arg{{IsName: true, Name: "tf"}, {Value: 99}}); err == nil {
		t.Error("pole index out of range must error")
	}
	// Math fallthrough still works.
	if got, err := env.Call("abs", []expr.Arg{{Value: -3}}); err != nil || got != 3 {
		t.Errorf("abs via specEnv = %g, %v", got, err)
	}
}

func TestFloatingVSourceChain(t *testing.T) {
	// A voltage source floating between two non-ground nodes (battery
	// between a and b, both otherwise only resistively connected): the
	// tree-link analysis keeps one node free and derives the other.
	c := compileDeck(t, `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 1k
.pz tf v(out) vin
.ends
.bias
vb in 0 1
r1 in a 1k
vf a b 0.5
r2 b 0 1k
rload out 0 1k
r3 in out R
.ends
.var R min=100 max=10k grid
.obj g 'dc_gain(tf)' good=0.9 bad=0.1
`)
	// Exactly one of {a, b} is free, the other determined, plus "out".
	freeAB := 0
	for _, n := range c.Bias.FreeNodes {
		if n == "a" || n == "b" {
			freeAB++
		}
	}
	if freeAB != 1 {
		t.Errorf("free nodes = %v, want exactly one of a/b free", c.Bias.FreeNodes)
	}
	determined := map[string]bool{}
	for _, st := range c.Bias.Determined {
		determined[st.Node] = true
	}
	if !(determined["a"] || determined["b"]) {
		t.Error("one of a/b must be determined relative to the other")
	}
	// The chain evaluates consistently: v(a) - v(b) = 0.5 at any x.
	x := make([]float64, len(c.VarList))
	for i, v := range c.VarList {
		x[i] = v.Start()
	}
	st := c.Evaluate(x)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if diff := st.NodeV["a"] - st.NodeV["b"]; math.Abs(diff-0.5) > 1e-12 {
		t.Errorf("v(a)-v(b) = %g, want 0.5", diff)
	}
}

func TestEvaluateBiasLightweight(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	st := c.EvaluateBias([]float64{1000, 0.5})
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if len(st.TFs) != 0 || len(st.SpecVals) != 0 {
		t.Error("EvaluateBias must not run AWE or specs")
	}
	if math.Abs(st.KCL["out"]) > 1e-12 {
		t.Errorf("KCL = %g", st.KCL["out"])
	}
	// Wrong length.
	if st := c.EvaluateBias([]float64{1}); st.Err == nil {
		t.Error("short vector must error")
	}
}

func TestJigNetlistExported(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	st := evalDiffAmp(t, c)
	nl, jig, err := st.JigNetlist("main")
	if err != nil || nl == nil || jig == nil {
		t.Fatalf("JigNetlist: %v", err)
	}
	if nl.NumNodes() == 0 {
		t.Error("empty jig netlist")
	}
	if _, _, err := st.JigNetlist("nope"); err == nil {
		t.Error("unknown jig must error")
	}
}

func TestPowerWithStackedSources(t *testing.T) {
	// The diff-amp deck stacks vb on the vdd node inside the module;
	// power() must peel the source currents rather than erroring.
	c := compileDeck(t, diffAmpDeck)
	st := evalDiffAmp(t, c)
	env := st.Env()
	v, err := env.Call("power", nil)
	if err != nil {
		t.Fatalf("power(): %v", err)
	}
	if v <= 0 || v > 1 {
		t.Errorf("power = %g W, implausible", v)
	}
}
