package astrx

import (
	"fmt"

	"astrx/internal/awe"
)

// BatchWorkspace evaluates K candidate design vectors against one
// compiled problem at once. Each candidate owns a full EvalWorkspace
// lane, but the jig factorizations and AWE moment recursions of lanes
// whose matrices share the deck's compile-time sparsity skeleton run as
// one SoA batch (awe.BatchEngine): one symbolic structure, K numeric
// replays, one batched triangular solve per moment. Everything outside
// the linear algebra — bias, stamping, Padé fits, spec expressions —
// replays per lane in the scalar order.
//
// Results are bit-identical to evaluating the candidates sequentially
// through EvalWorkspace.CostDetail on fresh workspaces: the adaptive
// cost-weight EMA updates are applied in lane order after all lanes
// have run, which is exactly the sequence of side effects K sequential
// evaluations produce. After warm-up a batch evaluation performs zero
// heap allocations, like the scalar hot path.
type BatchWorkspace struct {
	c     *Compiled
	lanes []*EvalWorkspace
	bes   []*awe.BatchEngine
	live  []bool
	mus   [][]float64
}

// NewBatchWorkspace allocates a K-lane batch evaluator for this
// compiled problem. K must be at least 1.
func (c *Compiled) NewBatchWorkspace(k int) *BatchWorkspace {
	if k < 1 {
		panic(fmt.Sprintf("astrx: NewBatchWorkspace: k = %d", k))
	}
	p := c.plan
	bw := &BatchWorkspace{
		c:     c,
		lanes: make([]*EvalWorkspace, k),
		bes:   make([]*awe.BatchEngine, len(p.jigs)),
		live:  make([]bool, k),
		mus:   make([][]float64, k),
	}
	for i := range bw.lanes {
		bw.lanes[i] = c.NewWorkspace()
	}
	for j := range p.jigs {
		engs := make([]*awe.Engine, k)
		for i := range bw.lanes {
			engs[i] = &bw.lanes[i].jigs[j].eng
		}
		bw.bes[j] = awe.NewBatchEngine(p.jigs[j].sym, engs)
	}
	return bw
}

// K returns the number of candidate lanes.
func (bw *BatchWorkspace) K() int { return len(bw.lanes) }

// Lane exposes lane i's workspace for post-evaluation inspection
// (State, Err, UnstableCount). Its contents are valid until the next
// CostsInto call.
func (bw *BatchWorkspace) Lane(i int) *EvalWorkspace { return bw.lanes[i] }

// Batched reports whether lane's factorization for jig j ran in the SoA
// batch during the last CostsInto (false means the lane fell back to
// its scalar engine: pattern mismatch, tripped pivot guard, or a dead
// lane). Exposed for telemetry and tests.
func (bw *BatchWorkspace) Batched(j, lane int) bool { return bw.bes[j].InBatch(lane) }

// Jigs returns the number of small-signal jigs in the compiled plan.
func (bw *BatchWorkspace) Jigs() int { return len(bw.bes) }

// CostsInto evaluates the candidates xs (len(xs) ≤ K) and writes each
// total cost into dst[:len(xs)]. Failed candidates cost Opt.FailCost,
// as in the scalar path; per-lane detail is available via Lane(i).Err.
func (bw *BatchWorkspace) CostsInto(dst []float64, xs [][]float64) {
	bw.Run(xs)
	// Cost in lane order so the adaptive-weight EMA sees the identical
	// update sequence as len(xs) sequential evaluations.
	for i := range xs {
		dst[i] = bw.lanes[i].costFromRun().Total
	}
}

// Run evaluates the candidates xs (len(xs) ≤ K) without computing costs
// or touching the compiled problem's adaptive-weight statistics — the
// batch analogue of Compiled.Evaluate. Per-lane results are read via
// Lane(i).State and Lane(i).Err.
func (bw *BatchWorkspace) Run(xs [][]float64) {
	k := len(xs)
	if k > len(bw.lanes) {
		panic(fmt.Sprintf("astrx: batch: %d candidates > %d lanes", k, len(bw.lanes)))
	}
	// live stays full-length: lanes beyond len(xs) are dead this call.
	live := bw.live
	for i := range live {
		live[i] = false
	}

	// Bias prefix per lane: node voltages, device operating points, KCL.
	for i := 0; i < k; i++ {
		ws := bw.lanes[i]
		ws.run(xs[i], false)
		live[i] = ws.err == nil
	}

	// Jigs: stamp per lane, factor as a batch, advance every transfer
	// function's moment recursion in lockstep, fit per lane. A lane that
	// fails is dead for all remaining work, exactly like the scalar
	// evaluator's early return.
	p := bw.c.plan
	for j := range p.jigs {
		jp := p.jigs[j]
		be := bw.bes[j]
		for i := 0; i < k; i++ {
			if !live[i] {
				continue
			}
			ws := bw.lanes[i]
			if err := ws.stampJig(jp, &ws.jigs[j]); err != nil {
				ws.err = err
				live[i] = false
			}
		}
		be.RefactorAll(live)
		for i, err := range be.Errs()[:k] {
			if live[i] && err != nil {
				bw.lanes[i].err = fmt.Errorf("astrx: jig %s: %w", jp.name, err)
				live[i] = false
			}
		}
		for t := range jp.tfs {
			tp := &jp.tfs[t]
			if tp.err != nil {
				for i := 0; i < k; i++ {
					if live[i] {
						bw.lanes[i].err = fmt.Errorf("astrx: jig %s tf %s: %w", jp.name, tp.name, tp.err)
						live[i] = false
					}
				}
				break
			}
			for i := range bw.mus {
				bw.mus[i] = nil
				if live[i] {
					bw.mus[i] = bw.lanes[i].jigs[j].mu[:2*tp.q]
				}
			}
			be.MomentsAll(live, bw.mus, tp.b, tp.ip, tp.in)
			for i := 0; i < k; i++ {
				if live[i] {
					bw.lanes[i].fitTF(tp, bw.mus[i])
				}
			}
		}
	}

	// Specs per lane.
	for i := 0; i < k; i++ {
		if live[i] {
			bw.lanes[i].evalSpecs()
		}
	}
}
