package astrx

import (
	"context"
	"fmt"

	"astrx/internal/awe"
)

// BatchWorkspace evaluates K candidate design vectors against one
// compiled problem at once. Each candidate owns a full EvalWorkspace
// lane, but the jig factorizations and AWE moment recursions of lanes
// whose matrices share the deck's compile-time sparsity skeleton run as
// one SoA batch (awe.BatchEngine): one symbolic structure, K numeric
// replays, one batched triangular solve per moment. Everything outside
// the linear algebra — bias, stamping, Padé fits, spec expressions —
// replays per lane in the scalar order.
//
// Results are bit-identical to evaluating the candidates sequentially
// through EvalWorkspace.CostDetail on fresh workspaces: the adaptive
// cost-weight EMA updates are applied in lane order after all lanes
// have run, which is exactly the sequence of side effects K sequential
// evaluations produce. After warm-up a batch evaluation performs zero
// heap allocations, like the scalar hot path.
type BatchWorkspace struct {
	c *Compiled
	// laneC is the compiled problem behind each lane. For the plain
	// K-candidate batch every entry is c; a corner batch points each
	// lane at its corner's plan (same structure, corner-specific
	// values), so stamping and fitting replay that corner's program
	// while the factorizations still share the SoA batch.
	laneC []*Compiled
	lanes []*EvalWorkspace
	bes   []*awe.BatchEngine
	live  []bool
	mus   [][]float64
}

// NewBatchWorkspace allocates a K-lane batch evaluator for this
// compiled problem. K must be at least 1.
func (c *Compiled) NewBatchWorkspace(k int) *BatchWorkspace {
	if k < 1 {
		panic(fmt.Sprintf("astrx: NewBatchWorkspace: k = %d", k))
	}
	cs := make([]*Compiled, k)
	for i := range cs {
		cs[i] = c
	}
	return newBatch(c, cs)
}

// NewCornerBatch builds a K-lane batch evaluator with one lane per
// corner-set lane (nominal first). Lanes share the nominal plan's
// sparsity skeleton; the batch engine verifies each lane's runtime
// pattern, so a corner that drifts structurally just falls back to its
// scalar factorization instead of corrupting the batch.
func (set *CornerSet) NewCornerBatch() *BatchWorkspace {
	cs := make([]*Compiled, set.K())
	for i := range cs {
		cs[i] = set.Lane(i)
	}
	nom := set.Nominal
	for i, c := range cs[1:] {
		if len(c.plan.jigs) != len(nom.plan.jigs) {
			panic(fmt.Sprintf("astrx: corner %s: %d jigs, nominal has %d",
				set.Names[i], len(c.plan.jigs), len(nom.plan.jigs)))
		}
		for j := range c.plan.jigs {
			if len(c.plan.jigs[j].tfs) != len(nom.plan.jigs[j].tfs) ||
				c.plan.jigs[j].size != nom.plan.jigs[j].size {
				panic(fmt.Sprintf("astrx: corner %s: jig %s shape differs from nominal",
					set.Names[i], c.plan.jigs[j].name))
			}
		}
	}
	return newBatch(nom, cs)
}

func newBatch(c *Compiled, laneC []*Compiled) *BatchWorkspace {
	k := len(laneC)
	p := c.plan
	bw := &BatchWorkspace{
		c:     c,
		laneC: laneC,
		lanes: make([]*EvalWorkspace, k),
		bes:   make([]*awe.BatchEngine, len(p.jigs)),
		live:  make([]bool, k),
		mus:   make([][]float64, k),
	}
	for i := range bw.lanes {
		bw.lanes[i] = laneC[i].NewWorkspace()
	}
	for j := range p.jigs {
		engs := make([]*awe.Engine, k)
		for i := range bw.lanes {
			engs[i] = &bw.lanes[i].jigs[j].eng
		}
		bw.bes[j] = awe.NewBatchEngine(p.jigs[j].sym, engs)
	}
	return bw
}

// K returns the number of candidate lanes.
func (bw *BatchWorkspace) K() int { return len(bw.lanes) }

// Lane exposes lane i's workspace for post-evaluation inspection
// (State, Err, UnstableCount). Its contents are valid until the next
// CostsInto call.
func (bw *BatchWorkspace) Lane(i int) *EvalWorkspace { return bw.lanes[i] }

// Batched reports whether lane's factorization for jig j ran in the SoA
// batch during the last CostsInto (false means the lane fell back to
// its scalar engine: pattern mismatch, tripped pivot guard, or a dead
// lane). Exposed for telemetry and tests.
func (bw *BatchWorkspace) Batched(j, lane int) bool { return bw.bes[j].InBatch(lane) }

// Jigs returns the number of small-signal jigs in the compiled plan.
func (bw *BatchWorkspace) Jigs() int { return len(bw.bes) }

// CostsInto evaluates the candidates xs (len(xs) ≤ K) and writes each
// total cost into dst[:len(xs)]. Failed candidates cost Opt.FailCost,
// as in the scalar path; per-lane detail is available via Lane(i).Err.
func (bw *BatchWorkspace) CostsInto(dst []float64, xs [][]float64) {
	bw.Run(xs)
	// Cost in lane order so the adaptive-weight EMA sees the identical
	// update sequence as len(xs) sequential evaluations.
	for i := range xs {
		dst[i] = bw.lanes[i].costFromRun().Total
	}
}

// RerunLane re-evaluates lane i alone through its compiled plan's
// scalar path (bias → jigs → specs), overwriting the lane's state from
// the last batch run. The per-corner retry policy uses it: a lane whose
// batched evaluation failed gets one sequential re-attempt before the
// failure is charged to its corner.
func (bw *BatchWorkspace) RerunLane(i int, x []float64) error {
	ws := bw.lanes[i]
	ws.run(x, true)
	return ws.err
}

// Run evaluates the candidates xs (len(xs) ≤ K) without computing costs
// or touching the compiled problem's adaptive-weight statistics — the
// batch analogue of Compiled.Evaluate. A nil xs[i] skips lane i for
// this call (its Err reports the skip) — how corner batches avoid
// paying for quarantined corners. Per-lane results are read via
// Lane(i).State and Lane(i).Err.
func (bw *BatchWorkspace) Run(xs [][]float64) {
	bw.runCtx(nil, xs) //nolint:errcheck // nil ctx never cancels
}

// RunCtx is Run with cooperative cancellation: the context is checked
// between pipeline stages (cheap — never inside the linear-algebra
// inner loops), and on cancellation every lane still pending is marked
// failed with the context's error and RunCtx returns it promptly.
// Already-completed stages are untouched and the workspace remains
// fully reusable: the next Run starts from a clean slate, with lane
// death semantics identical to an uncancelled call.
func (bw *BatchWorkspace) RunCtx(ctx context.Context, xs [][]float64) error {
	return bw.runCtx(ctx, xs)
}

func (bw *BatchWorkspace) runCtx(ctx context.Context, xs [][]float64) error {
	k := len(xs)
	if k > len(bw.lanes) {
		panic(fmt.Sprintf("astrx: batch: %d candidates > %d lanes", k, len(bw.lanes)))
	}
	// live stays full-length: lanes beyond len(xs) are dead this call.
	live := bw.live
	for i := range live {
		live[i] = false
	}
	cancelled := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			for i := 0; i < k; i++ {
				if live[i] {
					bw.lanes[i].err = fmt.Errorf("astrx: batch cancelled: %w", err)
					live[i] = false
				}
			}
			return err
		}
		return nil
	}
	if err := cancelled(); err != nil {
		// Even lanes that never started report the cancellation, so a
		// caller reading Lane(i).Err cannot mistake stale results for
		// this call's.
		for i := 0; i < k; i++ {
			bw.lanes[i].err = fmt.Errorf("astrx: batch cancelled: %w", ctx.Err())
		}
		return err
	}

	// Bias prefix per lane: node voltages, device operating points, KCL.
	for i := 0; i < k; i++ {
		ws := bw.lanes[i]
		if xs[i] == nil {
			ws.err = fmt.Errorf("astrx: batch lane %d skipped", i)
			continue
		}
		ws.run(xs[i], false)
		live[i] = ws.err == nil
	}

	// Jigs: stamp per lane, factor as a batch, advance every transfer
	// function's moment recursion in lockstep, fit per lane. A lane that
	// fails is dead for all remaining work, exactly like the scalar
	// evaluator's early return. Corner batches stamp and fit each lane
	// through its own corner's plan; the reference (nominal) plan drives
	// the shared structure.
	p := bw.c.plan
	for j := range p.jigs {
		if err := cancelled(); err != nil {
			return err
		}
		jp := p.jigs[j]
		be := bw.bes[j]
		for i := 0; i < k; i++ {
			if !live[i] {
				continue
			}
			ws := bw.lanes[i]
			if err := ws.stampJig(bw.laneC[i].plan.jigs[j], &ws.jigs[j]); err != nil {
				ws.err = err
				live[i] = false
			}
		}
		be.RefactorAll(live)
		for i, err := range be.Errs()[:k] {
			if live[i] && err != nil {
				bw.lanes[i].err = fmt.Errorf("astrx: jig %s: %w", jp.name, err)
				live[i] = false
			}
		}
		for t := range jp.tfs {
			tp := &jp.tfs[t]
			for i := 0; i < k; i++ {
				if tpl := &bw.laneC[i].plan.jigs[j].tfs[t]; live[i] && tpl.err != nil {
					bw.lanes[i].err = fmt.Errorf("astrx: jig %s tf %s: %w", jp.name, tpl.name, tpl.err)
					live[i] = false
				}
			}
			for i := range bw.mus {
				bw.mus[i] = nil
				if live[i] {
					bw.mus[i] = bw.lanes[i].jigs[j].mu[:2*tp.q]
				}
			}
			be.MomentsAll(live, bw.mus, tp.b, tp.ip, tp.in)
			for i := 0; i < k; i++ {
				if live[i] {
					bw.lanes[i].fitTF(&bw.laneC[i].plan.jigs[j].tfs[t], bw.mus[i])
				}
			}
		}
	}
	if err := cancelled(); err != nil {
		return err
	}

	// Specs per lane.
	for i := 0; i < k; i++ {
		if live[i] {
			bw.lanes[i].evalSpecs()
		}
	}
	return nil
}
