package astrx

import (
	"testing"

	"astrx/internal/telemetry"
)

// TestWorkspaceStageClock verifies that an attached stage clock sees
// every pipeline stage, that the timing does not perturb the cost, and
// that the instrumented hot path still performs zero heap allocations —
// even with sampling armed on every evaluation.
func TestWorkspaceStageClock(t *testing.T) {
	c := compileDeck(t, diffAmpDeck)
	x := make([]float64, len(c.Vars()))
	for i, v := range c.Vars() {
		x[i] = v.Start()
	}

	// Baseline: no clock attached.
	plain := c.NewWorkspace()
	want := plain.CostDetail(x).Total

	timer := telemetry.NewEvalTimer(1)
	ws := c.NewWorkspace()
	ws.SetClock(timer.NewClock())
	const evals = 8
	for i := 0; i < evals; i++ {
		if got := ws.CostDetail(x).Total; got != want {
			t.Fatalf("instrumented cost %v != plain cost %v", got, want)
		}
	}

	bd := timer.Breakdown()
	got := map[string]int64{}
	for _, row := range bd {
		got[row.Stage] = row.SampledEvals
	}
	for _, stage := range []string{"bias", "stamp", "factor", "solve", "moments", "fit", "specs"} {
		if got[stage] != evals {
			t.Errorf("stage %s sampled %d evals, want %d (breakdown %+v)", stage, got[stage], evals, bd)
		}
	}

	// The annealer's promise: zero allocations per evaluation, clock or not.
	ws.Cost(x) // warm any lazy scratch
	if allocs := testing.AllocsPerRun(200, func() { ws.Cost(x) }); allocs != 0 {
		t.Errorf("instrumented Cost allocates %.1f/eval, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { plain.Cost(x) }); allocs != 0 {
		t.Errorf("plain Cost allocates %.1f/eval, want 0", allocs)
	}

	// Detach: sampling stops, costs unchanged.
	ws.SetClock(nil)
	before := timer.Breakdown()
	if cost := ws.CostDetail(x).Total; cost != want {
		t.Fatalf("detached cost %v != %v", cost, want)
	}
	after := timer.Breakdown()
	for i := range before {
		if after[i].SampledEvals != before[i].SampledEvals {
			t.Errorf("detached workspace still sampled stage %s", after[i].Stage)
		}
	}
}

// TestWorkspaceStageClockSampling checks the 1-in-N cadence end to end
// through the workspace.
func TestWorkspaceStageClockSampling(t *testing.T) {
	c := compileDeck(t, dividerDeck)
	x := []float64{1000, 0.5}
	timer := telemetry.NewEvalTimer(4)
	ws := c.NewWorkspace()
	ws.SetClock(timer.NewClock())
	for i := 0; i < 40; i++ {
		ws.CostDetail(x)
	}
	for _, row := range timer.Breakdown() {
		if row.SampledEvals != 10 {
			t.Errorf("stage %s sampled %d evals, want 10", row.Stage, row.SampledEvals)
		}
	}
}
