package yield

import (
	"context"
	"math"
	"testing"

	"astrx/internal/astrx"
	"astrx/internal/netlist"
)

const dividerDeck = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends

.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
.spec bw 'bw3db(tf)' good=1Meg bad=10k
`

const otaDeck = `
.lib c2u

.module amp (inp inn out vdd vss)
m1 n1  inp ntail ntail nmos3 w=W1 l=4u
m2 out inn ntail ntail nmos3 w=W1 l=4u
m3 n1  n1  vdd  vdd  pmos3 w=W3 l=4u
m4 out n1  vdd  vdd  pmos3 w=W3 l=4u
m5 ntail nbias vss vss nmos3 w=W5 l=4u
m6 nbias nbias vss vss nmos3 w=W5 l=4u
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var W3 min=2u max=500u grid
.var W5 min=2u max=500u grid
.var Ib min=2u max=250u cont

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss amp
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.bias
xamp inp inn out nvdd nvss amp
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm 'db(dc_gain(tf))' good=40 bad=10
.spec gbw 'ugf(tf)' good=1Meg bad=10k
`

func compileAt(t *testing.T, src string) (*astrx.Compiled, []float64) {
	t.Helper()
	d, err := netlist.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := astrx.Compile(d, astrx.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(c.Vars()))
	for i, v := range c.Vars() {
		x[i] = v.Start()
	}
	return c, x
}

func TestSensitivitiesDivider(t *testing.T) {
	c, x := compileAt(t, dividerDeck)
	x[0] = 9000 // gain = 0.9
	ss, err := Sensitivities(context.Background(), c, x)
	if err != nil {
		t.Fatal(err)
	}
	// For gain = R2/(R1+R2): d(gain)/gain ÷ d(R2)/R2 = R1/(R1+R2) = 0.1.
	var gainSens *Sensitivity
	for i := range ss {
		if ss[i].Spec == "gain" && ss[i].Var == "R2" {
			gainSens = &ss[i]
		}
	}
	if gainSens == nil {
		t.Fatal("gain/R2 sensitivity missing")
	}
	if math.Abs(gainSens.Rel-0.1) > 0.01 {
		t.Errorf("gain sensitivity = %g, want ≈ 0.1", gainSens.Rel)
	}
	// Bandwidth falls with R2: negative sensitivity.
	for i := range ss {
		if ss[i].Spec == "bw" && ss[i].Var == "R2" && ss[i].Rel >= 0 {
			t.Errorf("bw/R2 sensitivity = %g, want negative", ss[i].Rel)
		}
	}
	top := TopSensitivities(ss, 1)
	if len(top) != 1 {
		t.Fatalf("top = %v", top)
	}
	if math.Abs(top[0].Rel) < math.Abs(gainSens.Rel)-1e-12 {
		t.Error("TopSensitivities did not sort by magnitude")
	}
}

func TestSensitivitiesOTA(t *testing.T) {
	c, x := compileAt(t, otaDeck)
	x[3] = 40e-6 // Ib
	ss, err := Sensitivities(context.Background(), c, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) == 0 {
		t.Fatal("no sensitivities computed")
	}
	// GBW must respond to the input-pair width (gm ∝ sqrt(W1)).
	found := false
	for _, s := range ss {
		if s.Spec == "gbw" && s.Var == "W1" {
			found = true
			if s.Rel <= 0 {
				t.Errorf("gbw/W1 sensitivity = %g, want positive", s.Rel)
			}
		}
	}
	if !found {
		t.Error("gbw/W1 sensitivity missing")
	}
}

func TestMonteCarloDivider(t *testing.T) {
	// Resistor-only circuit: no MOS mismatch applies, so all samples are
	// identical — yield is 0 or 1 depending on the nominal point.
	_, x := compileAt(t, dividerDeck)
	x[0] = 9000
	res, err := MonteCarlo(context.Background(), dividerDeck, x, 10, MismatchModel{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 10 || res.Failed != 0 {
		t.Fatalf("samples/failed = %d/%d", res.Samples, res.Failed)
	}
	// bw at R2=9k is ≈177 MHz wait — 1/(2π·900·1p) ≈ 177 MHz > 1 MHz: met.
	if res.Yield != 1 {
		t.Errorf("yield = %g, want 1 for a deterministic passing circuit", res.Yield)
	}
	for _, st := range res.Specs {
		if st.Spec == "bw" && st.Std > 1e-6*st.Mean {
			t.Errorf("bw spread = %g on a mismatch-free circuit", st.Std)
		}
	}
}

func TestMonteCarloOTA(t *testing.T) {
	if testing.Short() {
		t.Skip("MC in -short mode")
	}
	c, x := compileAt(t, otaDeck)
	x[0], x[1], x[2], x[3] = 60e-6, 30e-6, 20e-6, 40e-6
	_ = c
	res, err := MonteCarlo(context.Background(), otaDeck, x, 24, MismatchModel{VthSigma: 0.03}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > res.Samples/2 {
		t.Fatalf("too many failed samples: %d", res.Failed)
	}
	// The gain must show real spread under Vth mismatch.
	for _, st := range res.Specs {
		if st.Spec == "adm" {
			if st.SampleSize == 0 {
				t.Fatal("no adm samples")
			}
			if st.Std == 0 {
				t.Error("no adm spread under mismatch")
			}
			if st.Min > st.Mean || st.Max < st.Mean {
				t.Error("min/max inconsistent")
			}
		}
	}
	if res.Yield < 0 || res.Yield > 1 {
		t.Errorf("yield = %g", res.Yield)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarlo(context.Background(), "garbage (", nil, 5, MismatchModel{}, 1); err == nil {
		t.Error("bad deck must error")
	}
	if _, err := MonteCarlo(context.Background(), dividerDeck, []float64{}, 5, MismatchModel{}, 1); err == nil {
		t.Error("short x must error")
	}
}

func TestCornersOTA(t *testing.T) {
	_, x := compileAt(t, otaDeck)
	x[0], x[1], x[2], x[3] = 60e-6, 30e-6, 20e-6, 40e-6
	rs, err := Corners(context.Background(), otaDeck, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(StandardCorners) {
		t.Fatalf("corners = %d", len(rs))
	}
	var typ, slow, fast *CornerResult
	for i := range rs {
		switch rs[i].Corner.Name {
		case "typ":
			typ = &rs[i]
		case "slow":
			slow = &rs[i]
		case "fast":
			fast = &rs[i]
		}
	}
	if typ == nil || typ.Err != nil {
		t.Fatalf("typ corner failed: %+v", typ)
	}
	if slow == nil || slow.Err != nil || fast == nil || fast.Err != nil {
		t.Fatalf("process corners failed")
	}
	// GBW ordering: fast silicon beats slow silicon.
	if fast.Specs["gbw"] <= slow.Specs["gbw"] {
		t.Errorf("gbw fast (%g) should exceed slow (%g)",
			fast.Specs["gbw"], slow.Specs["gbw"])
	}
}

func TestCornersResistorOnlyUnaffected(t *testing.T) {
	_, x := compileAt(t, dividerDeck)
	x[0] = 9000
	rs, err := Corners(context.Background(), dividerDeck, x, []Corner{{Name: "a", DVth: 0.1, BetaScale: 0.5}, {Name: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Err != nil || rs[1].Err != nil {
		t.Fatalf("corner errors: %+v", rs)
	}
	if math.Abs(rs[0].Specs["gain"]-rs[1].Specs["gain"]) > 1e-12 {
		t.Error("resistive circuit must be corner-invariant")
	}
}
