// Package yield implements the paper's declared next step: §VI closes by
// noting that the manual designer of the novel folded cascode "was
// willing to trade nominal performance for better estimated yield and
// performance over varying operating conditions. Adding this ability to
// ASTRX/OBLX is one of our highest priorities for future effort."
//
// This package provides that ability for finished designs:
//
//   - Sensitivities: finite-difference derivatives of every spec with
//     respect to every design variable at the synthesized point — the
//     designer's first-order picture of how fragile the design is.
//   - MonteCarlo: mismatch/yield estimation by re-simulating the design
//     under random per-device threshold and mobility perturbations,
//     reporting per-spec spread and the fraction of samples that still
//     meet every constraint.
//
// Both use the reference-simulation path (true Newton bias solve per
// sample), not the annealer's relaxed-dc shortcut, so the numbers are
// simulator-grade.
package yield

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"astrx/internal/astrx"
	"astrx/internal/dcsolve"
	"astrx/internal/netlist"
)

// Sensitivity is ∂spec/∂var scaled to relative terms.
type Sensitivity struct {
	Spec string
	Var  string
	// Rel is the normalized sensitivity d(spec)/spec ÷ d(var)/var — the
	// percent change in the spec per percent change in the variable.
	Rel float64
}

// sensBatchK is the lane count of the batched spec evaluator behind
// Sensitivities. The ±h perturbation points cluster tightly around one
// design, so their MNA patterns agree and the SoA factorization path
// engages for essentially every lane.
const sensBatchK = 8

// Sensitivities computes the relative sensitivity matrix of all specs to
// all user design variables at x, using central differences with a true
// Newton bias re-solve per perturbation. The Newton solves run point by
// point (each needs its own iteration history), but the small-signal
// spec evaluations of the solved bias points run through the batched
// K-candidate evaluator. Cancelling ctx aborts between batches.
func Sensitivities(ctx context.Context, c *astrx.Compiled, x []float64) ([]Sensitivity, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Build the evaluation schedule: the base point, then ±h per user
	// variable.
	pts := make([][]float64, 0, 2*c.NUser+1)
	pts = append(pts, append([]float64(nil), x...))
	hs := make([]float64, c.NUser)
	for vi := 0; vi < c.NUser; vi++ {
		v := c.Vars()[vi]
		h := 0.01 * math.Abs(x[vi])
		if h == 0 {
			h = 0.01 * (v.Max - v.Min)
		}
		hs[vi] = h
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[vi] += h
		xm[vi] -= h
		pts = append(pts, xp, xm)
	}
	label := func(p int) string {
		if p == 0 {
			return "base"
		}
		sign := "+"
		if (p-1)%2 == 1 {
			sign = "-"
		}
		return sign + c.Vars()[(p-1)/2].Name
	}

	vals, err := simulateBatch(ctx, c, pts, label)
	if err != nil {
		return nil, err
	}
	base := vals[0]

	var out []Sensitivity
	for vi := 0; vi < c.NUser; vi++ {
		v := c.Vars()[vi]
		up, dn := vals[1+2*vi], vals[2+2*vi]
		for _, s := range c.Deck.Specs {
			b := base[s.Name]
			if b == 0 || math.IsNaN(b) {
				continue
			}
			d := (up[s.Name] - dn[s.Name]) / (2 * hs[vi])
			out = append(out, Sensitivity{
				Spec: s.Name,
				Var:  v.Name,
				Rel:  d * x[vi] / b,
			})
		}
	}
	return out, nil
}

// simulateBatch evaluates all specs at each point's true (Newton-solved)
// bias, batching the spec evaluations sensBatchK points at a time. Any
// failed point aborts with an error naming it via label.
func simulateBatch(ctx context.Context, c *astrx.Compiled, pts [][]float64, label func(int) string) ([]map[string]float64, error) {
	// Newton-solve every bias point first; each solved full vector feeds
	// one batch lane.
	xrs := make([][]float64, len(pts))
	for p, x := range pts {
		xr := append([]float64(nil), x...)
		dp := c.DCProblem(xr)
		if dp.N() > 0 {
			v0 := append([]float64(nil), xr[c.NUser:]...)
			r, err := dcsolve.Solve(ctx, dp, v0, dcsolve.Options{MaxIter: 250, GminSteps: 5})
			if err != nil {
				return nil, fmt.Errorf("yield: %s: %w", label(p), err)
			}
			copy(xr[c.NUser:], r.V)
		}
		xrs[p] = xr
	}

	bw := c.NewBatchWorkspace(sensBatchK)
	vals := make([]map[string]float64, len(pts))
	for off := 0; off < len(xrs); off += sensBatchK {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("yield: %w", err)
		}
		end := off + sensBatchK
		if end > len(xrs) {
			end = len(xrs)
		}
		bw.Run(xrs[off:end])
		for i := off; i < end; i++ {
			ws := bw.Lane(i - off)
			if err := ws.Err(); err != nil {
				return nil, fmt.Errorf("yield: %s: %w", label(i), err)
			}
			st := ws.State()
			out := make(map[string]float64, len(st.SpecVals))
			for k, v := range st.SpecVals {
				out[k] = v
			}
			vals[i] = out
		}
	}
	return vals, nil
}

// TopSensitivities returns the n largest-magnitude entries.
func TopSensitivities(ss []Sensitivity, n int) []Sensitivity {
	out := append([]Sensitivity(nil), ss...)
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Rel) > math.Abs(out[j].Rel)
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// simulateAt evaluates all specs at a true (Newton-solved) bias point.
func simulateAt(ctx context.Context, c *astrx.Compiled, x []float64) (map[string]float64, error) {
	xr := append([]float64(nil), x...)
	dp := c.DCProblem(xr)
	if dp.N() > 0 {
		v0 := append([]float64(nil), xr[c.NUser:]...)
		r, err := dcsolve.Solve(ctx, dp, v0, dcsolve.Options{MaxIter: 250, GminSteps: 5})
		if err != nil {
			return nil, err
		}
		copy(xr[c.NUser:], r.V)
	}
	st := c.Evaluate(xr)
	if st.Err != nil {
		return nil, st.Err
	}
	out := make(map[string]float64, len(st.SpecVals))
	for k, v := range st.SpecVals {
		out[k] = v
	}
	return out, nil
}

// MismatchModel describes the random per-device process variation
// applied in a Monte Carlo sample.
type MismatchModel struct {
	// VthSigma is the 1σ threshold shift in volts (default 15 mV).
	VthSigma float64
	// BetaSigma is the 1σ relative current-factor variation (default 2%).
	BetaSigma float64
}

func (m *MismatchModel) defaults() {
	if m.VthSigma == 0 {
		m.VthSigma = 0.015
	}
	if m.BetaSigma == 0 {
		m.BetaSigma = 0.02
	}
}

// SpecStats summarizes one spec over the Monte Carlo samples.
type SpecStats struct {
	Spec       string
	Mean, Std  float64
	Min, Max   float64
	FailCount  int // samples where the constraint is violated
	Objective  bool
	Good, Bad  float64
	SampleSize int
}

// MCResult is a Monte Carlo run summary.
type MCResult struct {
	Samples int
	// Yield is the fraction of samples meeting every constraint spec.
	Yield float64
	Specs []SpecStats
	// Failed counts samples whose bias solve or evaluation failed
	// outright (these also count against yield).
	Failed int
}

// MonteCarlo estimates mismatch yield: n samples of per-device Vth/beta
// perturbations, each re-simulated at a true bias point. The perturbation
// mechanism uses the deck-level model cards (vto and u0/kp shifts applied
// per *instance* via cloned models), which keeps the encapsulated
// evaluators untouched — variation enters exactly where a foundry's
// statistical models would.
func MonteCarlo(ctx context.Context, deckSrc string, x []float64, n int, mm MismatchModel, seed int64) (*MCResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mm.defaults()
	if n <= 0 {
		n = 50
	}
	rng := rand.New(rand.NewSource(seed))

	baseDeck, err := netlist.Parse(deckSrc)
	if err != nil {
		return nil, err
	}
	baseComp, err := astrx.Compile(baseDeck, astrx.CostOptions{})
	if err != nil {
		return nil, err
	}
	if len(x) < baseComp.NUser {
		return nil, fmt.Errorf("yield: x has %d values, need ≥ %d user variables", len(x), baseComp.NUser)
	}

	type sampleResult struct {
		specs map[string]float64
		ok    bool
	}
	results := make([]sampleResult, 0, n)

	for s := 0; s < n; s++ {
		if ctx.Err() != nil {
			// Cancellation degrades gracefully: the estimate is built from
			// the samples already simulated instead of being thrown away.
			break
		}
		// Clone the deck's model cards with per-sample global shifts plus
		// per-device mismatch folded into a per-sample process tilt.
		// (True per-instance mismatch would need one model per device;
		// we approximate with a global lot shift plus a smaller random
		// component per device family, which captures the yield picture
		// the paper's future-work note is after.)
		deck, err := netlist.Parse(deckSrc)
		if err != nil {
			return nil, err
		}
		lot := rng.NormFloat64()
		for _, mcard := range deck.Models {
			switch mcard.Type {
			case "nmos", "pmos":
				dv := mm.VthSigma * (lot + 0.5*rng.NormFloat64())
				db := 1 + mm.BetaSigma*(lot+0.5*rng.NormFloat64())
				if db < 0.5 {
					db = 0.5
				}
				p := cloneParams(mcard.Params)
				p["vto"] = mcard.P("vto", 0.8) + dv
				if u0 := mcard.P("u0", 0); u0 != 0 {
					p["u0"] = u0 * db
				}
				if kp := mcard.P("kp", 0); kp != 0 {
					p["kp"] = kp * db
				}
				mcard.Params = p
			case "npn", "pnp":
				p := cloneParams(mcard.Params)
				p["is"] = mcard.P("is", 1e-16) * (1 + 0.1*rng.NormFloat64())
				mcard.Params = p
			}
		}
		comp, err := astrx.Compile(deck, astrx.CostOptions{})
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(comp.Vars()))
		copy(xs, x[:comp.NUser])
		if len(x) == len(comp.Vars()) {
			copy(xs[comp.NUser:], x[comp.NUser:])
		}
		specs, err := simulateAt(ctx, comp, xs)
		results = append(results, sampleResult{specs: specs, ok: err == nil})
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("yield: no samples completed: %w", ctx.Err())
	}
	// Aggregate over the samples that actually ran.
	n = len(results)
	res := &MCResult{Samples: n}
	acc := map[string][]float64{}
	pass := 0
	for _, r := range results {
		if !r.ok {
			res.Failed++
			continue
		}
		allMet := true
		for _, s := range baseDeck.Specs {
			v := r.specs[s.Name]
			acc[s.Name] = append(acc[s.Name], v)
			if s.Objective {
				continue
			}
			met := v >= s.Good
			if !s.Maximize() {
				met = v <= s.Good
			}
			if !met {
				allMet = false
			}
		}
		if allMet {
			pass++
		}
	}
	res.Yield = float64(pass) / float64(n)
	for _, s := range baseDeck.Specs {
		vals := acc[s.Name]
		st := SpecStats{
			Spec: s.Name, Objective: s.Objective, Good: s.Good, Bad: s.Bad,
			SampleSize: len(vals), Min: math.Inf(1), Max: math.Inf(-1),
		}
		for _, v := range vals {
			st.Mean += v
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			met := v >= s.Good
			if !s.Maximize() {
				met = v <= s.Good
			}
			if !s.Objective && !met {
				st.FailCount++
			}
		}
		if len(vals) > 0 {
			st.Mean /= float64(len(vals))
			for _, v := range vals {
				st.Std += (v - st.Mean) * (v - st.Mean)
			}
			st.Std = math.Sqrt(st.Std / float64(len(vals)))
		}
		res.Specs = append(res.Specs, st)
	}
	return res, nil
}

func cloneParams(p map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Corner is one deterministic operating/process condition, expressed as
// shifts applied to every MOS model card (temperature enters through its
// dominant effects: threshold shift ≈ -2 mV/K and mobility ∝ T^-1.5).
type Corner struct {
	Name string
	// DVth is added to every MOS vto (V).
	DVth float64
	// BetaScale multiplies every MOS mobility / transconductance factor.
	BetaScale float64
}

// StandardCorners covers slow/fast process and hot/cold operation.
var StandardCorners = []Corner{
	{Name: "typ", DVth: 0, BetaScale: 1},
	{Name: "slow", DVth: +0.06, BetaScale: 0.85},
	{Name: "fast", DVth: -0.06, BetaScale: 1.15},
	{Name: "hot(85C)", DVth: -0.12, BetaScale: 0.77},
	{Name: "cold(-40C)", DVth: +0.13, BetaScale: 1.33},
}

// CornerResult is one corner's spec set.
type CornerResult struct {
	Corner Corner
	Specs  map[string]float64
	AllMet bool
	Err    error // non-nil when the bias would not converge at this corner
}

// CompiledCornerResult is one deck-declared corner's verification
// verdict from VerifyCompiledCorners.
type CompiledCornerResult struct {
	// Name is the lane name ("nominal" for lane 0).
	Name   string
	Specs  map[string]float64
	AllMet bool
	Err    error // non-nil when the bias would not converge at this corner
}

// VerifyCompiledCorners re-simulates a finished design at every lane of
// an already-compiled corner set — the deck's own .corner cards rather
// than the generic StandardCorners shifts — with a true Newton bias
// solve per lane. It reuses the synthesis run's compiled plans, so
// verification costs no re-parse and no recompile. x is either the
// run's full master vector (per-lane node sections are used as Newton
// starting points) or just the user design variables (each lane starts
// from its compiled defaults).
func VerifyCompiledCorners(ctx context.Context, cs *astrx.CornerSet, x []float64) ([]CompiledCornerResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(x) != cs.NVars() && len(x) < cs.NUser {
		return nil, fmt.Errorf("yield: x has %d values, need the %d-long master vector or ≥ %d user variables",
			len(x), cs.NVars(), cs.NUser)
	}
	out := make([]CompiledCornerResult, 0, cs.K())
	for i := 0; i < cs.K(); i++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("yield: %w", err)
		}
		c := cs.Lane(i)
		var lx []float64
		if len(x) == cs.NVars() {
			lx = cs.LaneX(i, x, nil)
		} else {
			lx = make([]float64, len(c.Vars()))
			copy(lx, x[:cs.NUser])
			for j := cs.NUser; j < len(lx); j++ {
				lx[j] = c.Vars()[j].Start()
			}
		}
		cr := CompiledCornerResult{Name: cs.LaneName(i)}
		specs, err := simulateAt(ctx, c, lx)
		if err != nil {
			cr.Err = err
			out = append(out, cr)
			continue
		}
		cr.Specs = specs
		cr.AllMet = true
		for _, s := range cs.Deck.Specs {
			if s.Objective {
				continue
			}
			v := specs[s.Name]
			met := v >= s.Good
			if !s.Maximize() {
				met = v <= s.Good
			}
			if !met {
				cr.AllMet = false
			}
		}
		out = append(out, cr)
	}
	return out, nil
}

// Corners re-simulates a finished design at each corner — the
// "performance over varying operating conditions" view the paper's
// conclusion asks for.
func Corners(ctx context.Context, deckSrc string, x []float64, corners []Corner) ([]CornerResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(corners) == 0 {
		corners = StandardCorners
	}
	baseDeck, err := netlist.Parse(deckSrc)
	if err != nil {
		return nil, err
	}
	out := make([]CornerResult, 0, len(corners))
	for _, cn := range corners {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("yield: %w", err)
		}
		deck, err := netlist.Parse(deckSrc)
		if err != nil {
			return nil, err
		}
		for _, mcard := range deck.Models {
			if mcard.Type != "nmos" && mcard.Type != "pmos" {
				continue
			}
			p := cloneParams(mcard.Params)
			p["vto"] = mcard.P("vto", 0.8) + cn.DVth
			if u0 := mcard.P("u0", 0); u0 != 0 {
				p["u0"] = u0 * cn.BetaScale
			}
			if kp := mcard.P("kp", 0); kp != 0 {
				p["kp"] = kp * cn.BetaScale
			}
			mcard.Params = p
		}
		comp, err := astrx.Compile(deck, astrx.CostOptions{})
		if err != nil {
			return nil, err
		}
		if len(x) < comp.NUser {
			return nil, fmt.Errorf("yield: x has %d values, need ≥ %d", len(x), comp.NUser)
		}
		xs := make([]float64, len(comp.Vars()))
		copy(xs, x[:comp.NUser])
		if len(x) == len(comp.Vars()) {
			copy(xs[comp.NUser:], x[comp.NUser:])
		}
		cr := CornerResult{Corner: cn}
		specs, err := simulateAt(ctx, comp, xs)
		if err != nil {
			cr.Err = err
			out = append(out, cr)
			continue
		}
		cr.Specs = specs
		cr.AllMet = true
		for _, s := range baseDeck.Specs {
			if s.Objective {
				continue
			}
			v := specs[s.Name]
			met := v >= s.Good
			if !s.Maximize() {
				met = v <= s.Good
			}
			if !met {
				cr.AllMet = false
			}
		}
		out = append(out, cr)
	}
	return out, nil
}
