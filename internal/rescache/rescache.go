// Package rescache is oblxd's content-addressed result cache. Real
// sizing traffic is dominated by near-duplicate submissions — layout
// loops resubmit the same deck with updated parasitics, parameter
// sweeps re-POST a deck they already ran — so a finished job's result
// is stored under a key derived from *what was asked*, and an
// identical later submission completes instantly instead of burning
// another 120k-move anneal.
//
// The key is a SHA-256 over (canonical deck text, the result-affecting
// job options, a schema version): see Key. Canonicalization lives in
// internal/netlist so the CLIs can print the same hash (astrx -hash).
// Because annealing is deterministic given (deck, seed policy), a hit
// returns the byte-identical result the original run produced — the
// cache is a memoization, not an approximation.
//
// Entries persist in a cache/ subdirectory of the daemon's state dir as
// CRC-sealed durable envelopes. A corrupt entry is never served: the
// startup scan and every read verify the seal, the embedded key, and
// the schema version, and quarantine anything that fails — a cache
// problem degrades to a miss (re-run the job), never to a wrong answer.
package rescache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"astrx/internal/durable"
	"astrx/internal/metrics"
	"astrx/internal/telemetry"
)

// Mode selects the cache behavior: Off (no lookups, no stores), RO
// (serve hits, store nothing — useful while validating a prewarmed
// cache), RW (serve hits and store completed results).
type Mode string

const (
	Off Mode = "off"
	RO  Mode = "ro"
	RW  Mode = "rw"
)

// ParseMode validates a -cache-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case Off, RO, RW:
		return Mode(s), nil
	}
	return "", fmt.Errorf("rescache: mode must be off, ro, or rw (got %q)", s)
}

// SchemaVersion is folded into every key. Bump it when the synthesis
// engine changes in a result-affecting way (cost function, annealing
// schedule, verification): every pre-bump entry then misses and ages
// out of the LRU, which is exactly cache invalidation on version bump.
//
// v2: corner-aware synthesis — KeyOptions gained Corners, and the deck's
// .corner cards flow through the canonical text, so pre-corner entries
// (computed by an engine that ignored both) must not be served.
const SchemaVersion = 2

// KeyOptions are the result-affecting job options folded into a key.
// Progress cadence and other observability knobs are deliberately
// absent: they change what you watch, not what you get.
type KeyOptions struct {
	Seed     int64 `json:"seed"`
	MaxMoves int   `json:"max_moves"`
	Runs     int   `json:"runs"`
	NoFreeze bool  `json:"no_freeze"`
	// Corners is the job's corner selection, with the oblx convention:
	// nil (marshals "null") selects every corner the deck declares, an
	// empty slice (marshals "[]") forces nominal-only. The two encode
	// differently on purpose — an all-corners job and a nominal-only job
	// of the same deck must never collide. No omitempty for the same
	// reason.
	Corners []string `json:"corners"`
}

// Key computes the content address of a job: hex SHA-256 over a
// length-prefixed encoding of the schema version, the canonical deck
// text, and the canonical JSON of the options. The encoding is
// deterministic by construction — struct fields marshal in declaration
// order, encoding/json sorts map keys, and the canonical deck text is
// whitespace-normalized — so the same request always produces the same
// key regardless of the submitted JSON's field order or formatting.
// Extra strings (e.g. an engine build tag) extend the key.
func Key(canonicalDeck string, opt KeyOptions, extra ...string) string {
	optJSON, err := json.Marshal(opt)
	if err != nil { // a struct of scalars cannot fail to marshal
		panic(fmt.Sprintf("rescache: marshal key options: %v", err))
	}
	h := sha256.New()
	var lenBuf [8]byte
	section := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	section([]byte(fmt.Sprintf("rescache-v%d", SchemaVersion)))
	section([]byte(canonicalDeck))
	section(optJSON)
	for _, e := range extra {
		section([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryRecord is the on-disk form of one cache entry (cache/res-<key>.json,
// sealed in a durable envelope).
type entryRecord struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Stored  time.Time       `json:"stored"`
	Payload json.RawMessage `json:"payload"`
}

// Options configures a Cache.
type Options struct {
	// Mode is the cache behavior (Off disables everything; New then
	// returns a nil Cache, which every method accepts).
	Mode Mode
	// Dir is the durable entry directory (empty → memory-only cache).
	Dir string
	// MaxEntries bounds the LRU (0 → 4096).
	MaxEntries int
	// FS is the filesystem seam (nil → the real one); chaos tests
	// inject faults through it.
	FS durable.FS
	// Registry receives oblxd_cache_* metrics (nil → a private one).
	Registry *metrics.Registry
	// Logger receives structured cache logs (nil → discarded).
	Logger *slog.Logger
}

// Cache is the LRU index over durable result entries. A nil *Cache is
// a valid always-miss, never-store cache, so call sites need no mode
// checks. All methods are safe for concurrent use.
type Cache struct {
	mode Mode
	dir  string
	max  int
	fsys durable.FS
	log  *slog.Logger

	mu sync.Mutex
	// entries maps key → payload; lruOrder tracks recency, most recent
	// last. Payloads are small (one JobResult), so they stay resident.
	entries  map[string]json.RawMessage
	lruOrder []string

	mHits   *metrics.Counter
	mMisses *metrics.Counter
	mEvict  *metrics.Counter
	mQuar   *metrics.Counter
}

// quarantineDir mirrors the server's state-dir convention.
const quarantineDir = "quarantine"

// New builds a cache in the given mode, scanning Dir for surviving
// entries. Mode Off returns (nil, nil). Entries that fail verification
// are quarantined, never trusted.
func New(opt Options) (*Cache, error) {
	if opt.Mode == "" || opt.Mode == Off {
		return nil, nil
	}
	if opt.MaxEntries <= 0 {
		opt.MaxEntries = 4096
	}
	if opt.FS == nil {
		opt.FS = durable.OS
	}
	if opt.Logger == nil {
		opt.Logger = telemetry.DiscardLogger()
	}
	reg := opt.Registry
	if reg == nil {
		reg = metrics.New()
	}
	c := &Cache{
		mode:    opt.Mode,
		dir:     opt.Dir,
		max:     opt.MaxEntries,
		fsys:    opt.FS,
		log:     opt.Logger,
		entries: make(map[string]json.RawMessage),
	}
	c.mHits = reg.Counter("oblxd_cache_hits_total")
	reg.SetHelp("oblxd_cache_hits_total", "submissions served from the result cache")
	c.mMisses = reg.Counter("oblxd_cache_misses_total")
	reg.SetHelp("oblxd_cache_misses_total", "cache lookups that found no usable entry")
	c.mEvict = reg.Counter("oblxd_cache_evictions_total")
	reg.SetHelp("oblxd_cache_evictions_total", "entries dropped by the LRU bound")
	c.mQuar = reg.Counter("oblxd_cache_quarantined_total")
	reg.SetHelp("oblxd_cache_quarantined_total", "cache files quarantined as corrupt or mismatched")
	reg.GaugeFunc("oblxd_cache_entries", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
	reg.SetHelp("oblxd_cache_entries", "resident result-cache entries")

	if c.dir != "" {
		if err := c.scan(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Mode reports the cache mode ("off" on a nil cache).
func (c *Cache) Mode() Mode {
	if c == nil {
		return Off
	}
	return c.mode
}

// scan loads surviving entries from the cache directory, oldest first
// so the LRU order approximates store order across restarts.
func (c *Cache) scan() error {
	if err := c.fsys.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("rescache: cache dir: %w", err)
	}
	ents, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("rescache: read cache dir: %w", err)
	}
	type loaded struct {
		key    string
		stored time.Time
		pay    json.RawMessage
	}
	var ok []loaded
	for _, e := range ents {
		name := e.Name()
		switch {
		case e.IsDir():
			continue
		case strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-"):
			c.fsys.Remove(filepath.Join(c.dir, name))
			continue
		case !strings.HasPrefix(name, "res-") || !strings.HasSuffix(name, ".json"):
			continue
		}
		rec, why := c.loadEntry(name)
		if rec == nil {
			c.quarantine(name, why)
			continue
		}
		ok = append(ok, loaded{key: rec.Key, stored: rec.Stored, pay: rec.Payload})
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a].stored.Before(ok[b].stored) })
	for _, l := range ok {
		c.entries[l.key] = l.pay
		c.lruOrder = append(c.lruOrder, l.key)
	}
	// Respect the bound on a restart with a shrunken -cache-max.
	for len(c.entries) > c.max {
		c.evictOldestLocked()
	}
	if n := len(c.entries); n > 0 {
		c.log.Info("result cache loaded", "entries", n, "dir", c.dir)
	}
	return nil
}

// loadEntry reads and verifies one res-<key>.json. On failure it
// returns nil and the quarantine reason.
func (c *Cache) loadEntry(name string) (*entryRecord, string) {
	data, err := c.fsys.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		return nil, fmt.Sprintf("unreadable: %v", err)
	}
	if len(data) == 0 {
		return nil, "zero-byte entry"
	}
	if !durable.IsSealed(data) {
		return nil, "not a sealed envelope"
	}
	payload, err := durable.Open(data)
	if err != nil {
		return nil, fmt.Sprintf("envelope verification failed: %v", err)
	}
	var rec entryRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Sprintf("corrupt JSON: %v", err)
	}
	if rec.Version != SchemaVersion {
		// Pre-bump entries are stale by definition; quarantining them is
		// the version-bump invalidation path.
		return nil, fmt.Sprintf("schema version %d, want %d", rec.Version, SchemaVersion)
	}
	if want := "res-" + rec.Key + ".json"; name != want {
		return nil, fmt.Sprintf("filename does not match embedded key %s", rec.Key)
	}
	if len(rec.Payload) == 0 {
		return nil, "entry has no payload"
	}
	return &rec, ""
}

// quarantine moves an untrusted cache file aside with a .reason
// sidecar, so corruption is inspectable and never re-served.
func (c *Cache) quarantine(name, reason string) {
	c.mQuar.Inc()
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := c.fsys.MkdirAll(qdir, 0o755); err != nil {
		c.log.Error("cache: cannot create quarantine dir, removing entry instead",
			"file", name, "err", err)
		c.fsys.Remove(filepath.Join(c.dir, name))
		return
	}
	dst := filepath.Join(qdir, name)
	if err := c.fsys.Rename(filepath.Join(c.dir, name), dst); err != nil {
		c.log.Error("cache: cannot quarantine entry", "file", name, "err", err)
		return
	}
	if err := c.fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644); err != nil {
		c.log.Error("cache: cannot record quarantine reason", "file", name, "err", err)
	}
	c.log.Warn("cache: quarantined entry", "file", name, "reason", reason)
}

// Get returns the cached payload for key, updating recency. A nil
// cache always misses.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pay, ok := c.entries[key]
	if !ok {
		c.mMisses.Inc()
		return nil, false
	}
	c.touchLocked(key)
	c.mHits.Inc()
	return pay, true
}

// Put stores a payload under key: into memory, and — when the cache has
// a directory — durably as a sealed envelope. RO caches and nil caches
// store nothing. A durable write failure is logged and the entry kept
// in memory: the cache is an optimization, not a system of record.
func (c *Cache) Put(key string, payload json.RawMessage) {
	if c == nil || c.mode != RW || len(payload) == 0 {
		return
	}
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.max {
		c.evictOldestLocked()
	}
	fresh := make(json.RawMessage, len(payload))
	copy(fresh, payload)
	exists := false
	if _, exists = c.entries[key]; !exists {
		c.lruOrder = append(c.lruOrder, key)
	} else {
		c.touchLocked(key)
	}
	c.entries[key] = fresh
	c.mu.Unlock()

	if c.dir == "" {
		return
	}
	// Compact marshal: an indented write would re-indent the embedded
	// payload, and a reloaded entry must return byte-identical payload.
	rec := entryRecord{Version: SchemaVersion, Key: key, Stored: time.Now(), Payload: fresh}
	data, err := json.Marshal(&rec)
	if err != nil {
		c.log.Error("cache: marshal entry", "key", key, "err", err)
		return
	}
	if err := durable.WriteSealedAtomic(c.fsys, c.entryPath(key), data); err != nil {
		c.log.Warn("cache: durable store failed, entry is memory-only", "key", key, "err", err)
	}
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, "res-"+key+".json")
}

// touchLocked moves key to the most-recent end. Callers hold c.mu.
func (c *Cache) touchLocked(key string) {
	for i, k := range c.lruOrder {
		if k == key {
			c.lruOrder = append(c.lruOrder[:i], c.lruOrder[i+1:]...)
			break
		}
	}
	c.lruOrder = append(c.lruOrder, key)
}

// evictOldestLocked drops the least-recently-used entry, memory and
// disk both. Callers hold c.mu.
func (c *Cache) evictOldestLocked() {
	if len(c.lruOrder) == 0 {
		return
	}
	victim := c.lruOrder[0]
	c.lruOrder = c.lruOrder[1:]
	delete(c.entries, victim)
	c.mEvict.Inc()
	if c.dir != "" {
		if err := c.fsys.Remove(c.entryPath(victim)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			c.log.Warn("cache: evict remove failed", "key", victim, "err", err)
		}
	}
}

