package rescache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"fmt"
	"testing"

	"astrx/internal/durable"
	"astrx/internal/netlist"
)

// writeSealedRecord writes a properly sealed envelope at path, so tests
// can plant records that pass the CRC but fail semantic verification.
func writeSealedRecord(t *testing.T, path, payload string) {
	t.Helper()
	if err := durable.WriteSealedAtomic(durable.OS, path, []byte(payload)); err != nil {
		t.Fatal(err)
	}
}

// TestKeyDeterminism: the same logical request must produce the same
// key regardless of deck whitespace, JSON field order in the submitted
// request (irrelevant by construction — the key hashes a fixed struct,
// not raw JSON), or map iteration order anywhere upstream.
func TestKeyDeterminism(t *testing.T) {
	deckA := ".var W1 min=2u max=500u grid\n.const Cl 1p\n"
	deckB := "* a comment\n.var   W1  min=2u max=500u   grid ; note\n.const Cl 1p\n"

	canonA, err := netlist.Canonical(deckA)
	if err != nil {
		t.Fatal(err)
	}
	canonB, err := netlist.Canonical(deckB)
	if err != nil {
		t.Fatal(err)
	}
	opt := KeyOptions{Seed: 1, MaxMoves: 5000, Runs: 1}
	if ka, kb := Key(canonA, opt), Key(canonB, opt); ka != kb {
		t.Errorf("whitespace-variant decks keyed differently: %s vs %s", ka, kb)
	}

	// JSON field reordering in the submitted request: both orderings
	// decode into the same KeyOptions, hence the same key.
	var o1, o2 KeyOptions
	if err := json.Unmarshal([]byte(`{"seed":7,"max_moves":100,"runs":2,"no_freeze":true}`), &o1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"no_freeze":true,"runs":2,"seed":7,"max_moves":100}`), &o2); err != nil {
		t.Fatal(err)
	}
	if Key(canonA, o1) != Key(canonA, o2) {
		t.Error("field-reordered options keyed differently")
	}

	// Stability across repeated computation (no map-iteration leakage).
	first := Key(canonA, opt, "extra")
	for i := 0; i < 100; i++ {
		if k := Key(canonA, opt, "extra"); k != first {
			t.Fatalf("iteration %d: key drifted: %s vs %s", i, k, first)
		}
	}

	// Every input dimension must matter.
	if Key(canonA, KeyOptions{Seed: 2, MaxMoves: 5000, Runs: 1}) == Key(canonA, opt) {
		t.Error("seed did not affect the key")
	}
	if Key(canonA, opt, "x") == Key(canonA, opt) {
		t.Error("extra section did not affect the key")
	}
	if Key(canonA+".const X 2\n", opt) == Key(canonA, opt) {
		t.Error("deck content did not affect the key")
	}
}

// TestKeyCornerSensitivity: the corner-selection dimension of a job
// must be part of the key. A cornered job's worst-case result and the
// nominal result of the same deck are different answers; serving one
// for the other would be a silent correctness bug, not a cache win.
func TestKeyCornerSensitivity(t *testing.T) {
	deck := ".var W1 min=2u max=500u grid\n.const Cl 1p\n"
	cornered := deck + ".corner slow temp=85\n"
	canon, err := netlist.Canonical(deck)
	if err != nil {
		t.Fatal(err)
	}
	base := KeyOptions{Seed: 1, MaxMoves: 5000, Runs: 1}

	// All-corners (nil) and nominal-only (empty non-nil) are different
	// jobs: nil means "robust over every corner the deck declares".
	nom := base
	nom.Corners = []string{}
	if Key(canon, base) == Key(canon, nom) {
		t.Error("all-corners (nil) and nominal-only ([]) jobs share a key")
	}

	// A named selection differs from both, and from other selections.
	slow := base
	slow.Corners = []string{"slow"}
	both := base
	both.Corners = []string{"slow", "fast"}
	keys := map[string]string{
		"all":     Key(canon, base),
		"nominal": Key(canon, nom),
		"slow":    Key(canon, slow),
		"both":    Key(canon, both),
	}
	seen := make(map[string]string, len(keys))
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("corner selections %q and %q collided on key %s", name, prev, k)
		}
		seen[k] = name
	}

	// The corner selection survives the JSON round trip persisted jobs
	// go through: nil must come back nil, [] must come back [].
	for _, opts := range []KeyOptions{base, nom, slow} {
		blob, err := json.Marshal(opts)
		if err != nil {
			t.Fatal(err)
		}
		var back KeyOptions
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if Key(canon, back) != Key(canon, opts) {
			t.Errorf("corner selection %#v changed key across a JSON round trip (%s)", opts.Corners, blob)
		}
	}

	// Adding a .corner card changes the canonical deck, hence the key —
	// even for a nominal-only run of the cornered deck (the card changes
	// the deck text; selection is a separate dimension).
	canonC, err := netlist.Canonical(cornered)
	if err != nil {
		t.Fatal(err)
	}
	if Key(canonC, base) == Key(canon, base) {
		t.Error("adding a .corner card did not change the key")
	}

	// The remaining solver options each still perturb the key.
	for name, vary := range map[string]KeyOptions{
		"max_moves": {Seed: 1, MaxMoves: 6000, Runs: 1},
		"runs":      {Seed: 1, MaxMoves: 5000, Runs: 2},
		"no_freeze": {Seed: 1, MaxMoves: 5000, Runs: 1, NoFreeze: true},
	} {
		if Key(canon, vary) == Key(canon, base) {
			t.Errorf("%s did not affect the key", name)
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, ok := range []string{"off", "ro", "rw"} {
		if _, err := ParseMode(ok); err != nil {
			t.Errorf("ParseMode(%q): %v", ok, err)
		}
	}
	if _, err := ParseMode("readwrite"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache hit")
	}
	c.Put("k", json.RawMessage(`{}`)) // must not panic
	if c.Len() != 0 || c.Mode() != Off {
		t.Error("nil cache not empty/off")
	}
}

func TestOffModeReturnsNil(t *testing.T) {
	c, err := New(Options{Mode: Off})
	if err != nil || c != nil {
		t.Fatalf("New(off) = %v, %v; want nil, nil", c, err)
	}
}

func TestPutGetDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	pay := json.RawMessage(`{"state":"done","best":1.5}`)
	c.Put("abc", pay)
	got, ok := c.Get("abc")
	if !ok || string(got) != string(pay) {
		t.Fatalf("Get = %s, %v", got, ok)
	}

	// A second cache over the same dir sees the entry (durable).
	c2, err := New(Options{Mode: RO, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get("abc")
	if !ok || string(got) != string(pay) {
		t.Fatalf("restarted Get = %s, %v", got, ok)
	}
	// RO caches never store.
	c2.Put("def", pay)
	if _, ok := c2.Get("def"); ok {
		t.Error("RO cache stored an entry")
	}
}

func TestLRUBound(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Mode: RW, Dir: dir, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", json.RawMessage(`1`))
	c.Put("k2", json.RawMessage(`2`))
	c.Get("k1") // k1 now most recent; k2 is the LRU victim
	c.Put("k3", json.RawMessage(`3`))
	if _, ok := c.Get("k2"); ok {
		t.Error("LRU victim k2 survived")
	}
	for _, k := range []string{"k1", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted wrongly", k)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "res-k2.json")); !os.IsNotExist(err) {
		t.Error("evicted entry file still on disk")
	}
}

// TestCorruptEntryQuarantined: a flipped byte in a durable entry must
// degrade to a miss with the file quarantined — never a served wrong
// answer, never a startup failure.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("victim", json.RawMessage(`{"answer":42}`))

	path := filepath.Join(dir, "res-victim.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatalf("New over corrupt dir: %v", err)
	}
	if _, ok := c2.Get("victim"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) == 0 {
		t.Fatalf("no quarantined files: %v", err)
	}
	found := false
	for _, e := range q {
		if e.Name() == "res-victim.json" {
			found = true
		}
	}
	if !found {
		t.Error("victim not in quarantine")
	}
}

// TestSchemaVersionBumpInvalidates: an entry recorded under another
// schema version is quarantined on scan, not served.
func TestSchemaVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("old", json.RawMessage(`{"v":"stale"}`))

	// Rewrite the entry claiming a previous schema version, properly
	// sealed so only the version check can reject it.
	path := filepath.Join(dir, "res-old.json")
	stale := fmt.Sprintf(`{"version":%d,"key":"old","stored":"2020-01-01T00:00:00Z","payload":{"v":"stale"}}`,
		SchemaVersion-1)
	writeSealedRecord(t, path, stale)

	c2, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("old"); ok {
		t.Error("stale-schema entry served")
	}
}

// TestKeyMismatchQuarantined: an entry renamed to another key's file
// (or an attacker-planted file) must not be served under that key.
func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("real", json.RawMessage(`{"v":1}`))
	if err := os.Rename(filepath.Join(dir, "res-real.json"), filepath.Join(dir, "res-fake.json")); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Options{Mode: RW, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("fake"); ok {
		t.Error("mismatched entry served under the wrong key")
	}
}
