// Package faults provides deterministic, rate-based fault injection for
// exercising the synthesis engine's robustness machinery: recovered
// evaluator panics, NaN costs, and forced Newton non-convergence. An
// *Injector is wired behind nil-safe hooks (a nil injector is inert and
// costs one pointer check), so production call sites carry no fault
// logic of their own and no build tags are needed.
//
// All randomness flows from the injector's own seeded generator, so a
// fault schedule is reproducible for a fixed seed, and every injected
// fault is counted — tests compare the engine's recovery counters
// against the injector's ground truth.
package faults

import (
	"fmt"
	"sync"
)

// Kind enumerates the injectable fault classes.
type Kind int

// The injectable fault classes.
const (
	EvalPanic  Kind = iota // evaluator panics mid-evaluation
	NaNCost                // evaluator returns a NaN cost
	NewtonFail             // Newton solver reports non-convergence
	CornerFail             // one named corner's evaluation fails
	nKinds
)

// String names a fault kind.
func (k Kind) String() string {
	switch k {
	case EvalPanic:
		return "eval-panic"
	case NaNCost:
		return "nan-cost"
	case NewtonFail:
		return "newton-fail"
	case CornerFail:
		return "corner-fail"
	}
	if name, ok := fsKindNames[k]; ok {
		return name
	}
	if name, ok := netKindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Injected is the panic value thrown by EvalPanic injections, so
// recovery sites can distinguish injected faults from real bugs.
type Injected struct {
	K Kind
	N int64 // ordinal of this injection
}

// Error implements error.
func (f *Injected) Error() string {
	return fmt.Sprintf("faults: injected %s #%d", f.K, f.N)
}

// Rates configures per-call injection probabilities (0 = never, 1 =
// always).
type Rates struct {
	EvalPanic  float64
	NaNCost    float64
	NewtonFail float64
	// CornerFail fails the evaluation of the corner named FailCorner at
	// this rate. Other corners and the nominal lane are never targeted.
	CornerFail float64
	FailCorner string
}

// Injector is a seeded, thread-safe fault source. The zero value and
// the nil pointer are both inert.
type Injector struct {
	mu    sync.Mutex
	state uint64
	rates Rates
	// counts covers the evaluation kinds above plus the filesystem kinds
	// of fs.go and the network kinds of net.go (which continue the same
	// enumeration).
	counts [nNetKinds]int64
}

// New builds an injector with the given seed and rates.
func New(seed int64, rates Rates) *Injector {
	return &Injector{state: uint64(seed), rates: rates}
}

// roll draws one uniform float and reports whether a fault of kind k
// fires, counting it if so. Safe on a nil receiver (never fires).
func (in *Injector) roll(k Kind, rate float64) bool {
	if in == nil || rate <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// splitmix64, same generator the annealer uses.
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	if u >= rate {
		return false
	}
	in.counts[k]++
	return true
}

// EvalPanic panics with an *Injected value at the configured rate; call
// it at the top of a panic-recovered evaluation path.
func (in *Injector) EvalPanic() {
	if in.roll(EvalPanic, in.rateOf(EvalPanic)) {
		panic(&Injected{K: EvalPanic, N: in.Count(EvalPanic)})
	}
}

// NaNCost reports whether the evaluation should return a NaN cost.
func (in *Injector) NaNCost() bool {
	return in.roll(NaNCost, in.rateOf(NaNCost))
}

// CornerFail reports whether the named corner's evaluation should be
// failed. Rates of 0 and ≥1 short-circuit without consuming the
// injector's random stream: a permanently failing corner injects the
// same fault schedule whether or not the run was killed and resumed
// from a checkpoint (injector rng state is not checkpointed), which the
// corner-chaos bit-exact-resume tests depend on.
func (in *Injector) CornerFail(name string) bool {
	if in == nil || in.rates.CornerFail <= 0 || name != in.rates.FailCorner {
		return false
	}
	if in.rates.CornerFail >= 1 {
		in.mu.Lock()
		in.counts[CornerFail]++
		in.mu.Unlock()
		return true
	}
	return in.roll(CornerFail, in.rates.CornerFail)
}

// NewtonHook returns a dcsolve.Options.FailHook that forces
// non-convergence at the configured rate, or nil for a nil injector.
func (in *Injector) NewtonHook() func() bool {
	if in == nil || in.rates.NewtonFail <= 0 {
		return nil
	}
	return func() bool { return in.roll(NewtonFail, in.rateOf(NewtonFail)) }
}

func (in *Injector) rateOf(k Kind) float64 {
	if in == nil {
		return 0
	}
	switch k {
	case EvalPanic:
		return in.rates.EvalPanic
	case NaNCost:
		return in.rates.NaNCost
	case NewtonFail:
		return in.rates.NewtonFail
	case CornerFail:
		return in.rates.CornerFail
	}
	return 0
}

// Count returns how many faults of kind k have been injected.
func (in *Injector) Count(k Kind) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	t := int64(0)
	for _, c := range in.counts {
		t += c
	}
	return t
}
