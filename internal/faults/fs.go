package faults

import (
	"fmt"
	"io/fs"
	"os"
	"syscall"

	"astrx/internal/durable"
)

// The injectable filesystem fault classes, continuing the Kind
// enumeration in faults.go. They model the ways persisted state is torn
// apart in the field: a write that errors outright, a write that lands
// short and claims success, an fsync that returns EIO, a rename that
// leaves a truncated destination behind, and a full disk.
const (
	FSWriteErr   Kind = nKinds + iota // File.Write fails with EIO
	FSShortWrite                      // File.Write persists a prefix, reports success
	FSFsyncErr                        // File.Sync fails with EIO
	FSRenameTorn                      // Rename leaves a truncated destination
	FSNoSpace                         // File.Write fails with ENOSPC
	nFSKinds
)

// fsKindNames names the filesystem fault kinds for Kind.String.
var fsKindNames = map[Kind]string{
	FSWriteErr:   "fs-write-err",
	FSShortWrite: "fs-short-write",
	FSFsyncErr:   "fs-fsync-eio",
	FSRenameTorn: "fs-rename-torn",
	FSNoSpace:    "fs-enospc",
}

// FSRates configures per-operation filesystem fault probabilities.
type FSRates struct {
	WriteErr   float64
	ShortWrite float64
	FsyncErr   float64
	RenameTorn float64
	NoSpace    float64
}

// FS wraps a durable.FS with this injector's filesystem faults. The
// returned filesystem is what chaos tests hand to the synthesis
// service's persistence layer; a nil injector returns under unchanged.
//
// Rename torn-write simulation needs to materialize a truncated
// destination, which it does with under's own WriteFile — so the
// wrapper composes over any durable.FS, not just the real one.
func (in *Injector) FS(under durable.FS, rates FSRates) durable.FS {
	if under == nil {
		under = durable.OS
	}
	if in == nil {
		return under
	}
	return &faultFS{in: in, under: under, rates: rates}
}

type faultFS struct {
	in    *Injector
	under durable.FS
	rates FSRates
}

func (f *faultFS) injected(k Kind) error {
	return &Injected{K: k, N: f.in.Count(k)}
}

func (f *faultFS) CreateTemp(dir, pattern string) (durable.File, error) {
	file, err := f.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, under: file}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.in.roll(FSRenameTorn, f.rates.RenameTorn) {
		// Crash-equivalent torn rename: the destination ends up with a
		// truncated copy of the new content, the source is gone, and the
		// caller sees a failure. Recovery fsck must catch this file by
		// its checksum, not by its name.
		if data, rerr := f.under.ReadFile(oldpath); rerr == nil {
			f.under.WriteFile(newpath, data[:len(data)/2], 0o644)
		}
		f.under.Remove(oldpath)
		return fmt.Errorf("rename %s: %w", newpath, f.injected(FSRenameTorn))
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error             { return f.under.Remove(name) }
func (f *faultFS) ReadFile(name string) ([]byte, error) { return f.under.ReadFile(name) }

func (f *faultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if f.in.roll(FSNoSpace, f.rates.NoSpace) {
		return fmt.Errorf("write %s: %w: %w", name, f.injected(FSNoSpace), syscall.ENOSPC)
	}
	if f.in.roll(FSWriteErr, f.rates.WriteErr) {
		return fmt.Errorf("write %s: %w: %w", name, f.injected(FSWriteErr), syscall.EIO)
	}
	return f.under.WriteFile(name, data, perm)
}

func (f *faultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.under.ReadDir(name) }
func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.under.MkdirAll(path, perm)
}
func (f *faultFS) SyncDir(dir string) error { return f.under.SyncDir(dir) }

// faultFile injects write- and sync-level faults on one open file.
type faultFile struct {
	fs    *faultFS
	under durable.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch {
	case f.fs.in.roll(FSNoSpace, f.fs.rates.NoSpace):
		return 0, fmt.Errorf("%w: %w", f.fs.injected(FSNoSpace), syscall.ENOSPC)
	case f.fs.in.roll(FSWriteErr, f.fs.rates.WriteErr):
		return 0, fmt.Errorf("%w: %w", f.fs.injected(FSWriteErr), syscall.EIO)
	case f.fs.in.roll(FSShortWrite, f.fs.rates.ShortWrite) && len(p) > 1:
		// The nastiest variant: half the bytes land but the call claims
		// every byte did, like a page-cache write the crash never
		// flushed. The in-flight writer cannot detect it; only the
		// recovery fsck's checksum can.
		if _, err := f.under.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.under.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.in.roll(FSFsyncErr, f.fs.rates.FsyncErr) {
		return fmt.Errorf("%w: %w", f.fs.injected(FSFsyncErr), syscall.EIO)
	}
	return f.under.Sync()
}

func (f *faultFile) Close() error { return f.under.Close() }
func (f *faultFile) Name() string { return f.under.Name() }
