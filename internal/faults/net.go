package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// The injectable network fault classes, continuing the Kind enumeration
// in fs.go. They model what a coordinator/worker hop sees in the field:
// a request that never arrives, one that arrives late, one that arrives
// twice, and a partition that blocks everything until it heals.
const (
	NetDrop      Kind = nFSKinds + iota // request dropped on the floor
	NetDelay                            // request delayed before sending
	NetDup                              // request delivered twice
	NetPartition                        // request blocked by an open partition
	nNetKinds
)

// netKindNames names the network fault kinds for Kind.String.
var netKindNames = map[Kind]string{
	NetDrop:      "net-drop",
	NetDelay:     "net-delay",
	NetDup:       "net-dup",
	NetPartition: "net-partition",
}

// NetRates configures per-request network fault probabilities. DelayBy
// is how long a delayed request waits before being sent (0 → 10ms).
type NetRates struct {
	Drop    float64
	Delay   float64
	Dup     float64
	DelayBy time.Duration
}

// Transport wraps an http.RoundTripper with this injector's network
// faults: dropped, delayed, and duplicated requests, plus an explicit
// partition toggle for partition-then-heal scenarios. A nil injector
// returns a transport that only supports the partition toggle (all
// rates inert). Chaos tests hand the result to a fleet worker's HTTP
// client, so every coordinator/worker message crosses the faulty link.
func (in *Injector) Transport(under http.RoundTripper, rates NetRates) *Transport {
	if under == nil {
		under = http.DefaultTransport
	}
	if rates.DelayBy <= 0 {
		rates.DelayBy = 10 * time.Millisecond
	}
	return &Transport{in: in, under: under, rates: rates}
}

// Transport is a fault-injecting http.RoundTripper. See
// Injector.Transport.
type Transport struct {
	in          *Injector
	under       http.RoundTripper
	rates       NetRates
	partitioned atomic.Bool
}

// Partition opens the partition: every subsequent request errors
// without reaching the wire, as if the link were cut.
func (t *Transport) Partition() { t.partitioned.Store(true) }

// Heal closes the partition; requests flow again.
func (t *Transport) Heal() { t.partitioned.Store(false) }

// Partitioned reports whether the partition is currently open.
func (t *Transport) Partitioned() bool { return t.partitioned.Load() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body up front when duplication is possible — a request
	// can only be replayed from a rewindable copy.
	var body []byte
	if t.rates.Dup > 0 && req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
	}

	if t.partitioned.Load() {
		if t.in != nil {
			t.in.mu.Lock()
			t.in.counts[NetPartition]++
			t.in.mu.Unlock()
		}
		drainBody(req)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path,
			&Injected{K: NetPartition, N: t.in.Count(NetPartition)})
	}
	if t.in.roll(NetDrop, t.rates.Drop) {
		drainBody(req)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path,
			&Injected{K: NetDrop, N: t.in.Count(NetDrop)})
	}
	if t.in.roll(NetDelay, t.rates.Delay) {
		select {
		case <-time.After(t.rates.DelayBy):
		case <-req.Context().Done():
			drainBody(req)
			return nil, req.Context().Err()
		}
	}
	if t.in.roll(NetDup, t.rates.Dup) && body != nil {
		// Deliver the request twice: the first response is discarded, the
		// caller sees the second. The receiver must be idempotent.
		dup := req.Clone(req.Context())
		dup.Body = io.NopCloser(bytes.NewReader(body))
		if resp, err := t.under.RoundTrip(dup); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	return t.under.RoundTrip(req)
}

// drainBody honors the RoundTripper contract: the transport owns the
// request body and must close it even when the request never ships.
func drainBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}
