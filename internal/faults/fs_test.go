package faults

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"astrx/internal/durable"
)

func TestFSNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	if got := in.FS(durable.OS, FSRates{WriteErr: 1}); got != durable.OS {
		t.Fatal("nil injector must return the underlying FS unchanged")
	}
	if got := in.FS(nil, FSRates{}); got != durable.OS {
		t.Fatal("nil under must default to durable.OS")
	}
}

func TestFSWriteFaultsSurfaceThroughAtomicWrite(t *testing.T) {
	cases := []struct {
		name  string
		rates FSRates
		kind  Kind
		errno error
	}{
		{"enospc", FSRates{NoSpace: 1}, FSNoSpace, syscall.ENOSPC},
		{"eio", FSRates{WriteErr: 1}, FSWriteErr, syscall.EIO},
		{"fsync-eio", FSRates{FsyncErr: 1}, FSFsyncErr, syscall.EIO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := New(1, Rates{})
			fsys := in.FS(durable.OS, tc.rates)
			dir := t.TempDir()
			path := filepath.Join(dir, "job-x.json")
			err := durable.WriteSealedAtomic(fsys, path, []byte("payload"))
			if err == nil {
				t.Fatal("atomic write succeeded under a rate-1 fault")
			}
			var inj *Injected
			if !errors.As(err, &inj) || inj.K != tc.kind {
				t.Fatalf("err %v, want injected %s", err, tc.kind)
			}
			if tc.errno != nil && !errors.Is(err, tc.errno) {
				t.Fatalf("err %v, want wrapped %v", err, tc.errno)
			}
			if in.Count(tc.kind) == 0 {
				t.Fatalf("injector did not count %s", tc.kind)
			}
			// Failed atomic writes must not litter temp files or leave a
			// destination behind.
			entries, _ := os.ReadDir(dir)
			if len(entries) != 0 {
				t.Fatalf("dir has %d entries after failed write, want 0", len(entries))
			}
		})
	}
}

func TestFSShortWriteClaimsSuccessButCorrupts(t *testing.T) {
	in := New(7, Rates{})
	fsys := in.FS(durable.OS, FSRates{ShortWrite: 1})
	path := filepath.Join(t.TempDir(), "ckpt.json")
	// The writer cannot see the fault: the write "succeeds".
	if err := durable.WriteSealedAtomic(fsys, path, []byte(`{"version":1,"vars":[1,2,3]}`)); err != nil {
		t.Fatalf("short write must claim success, got %v", err)
	}
	if in.Count(FSShortWrite) == 0 {
		t.Fatal("short write not counted")
	}
	// But the checksum catches it at read time.
	if _, err := durable.ReadSealed(durable.OS, path); !errors.Is(err, durable.ErrTruncated) && !errors.Is(err, durable.ErrChecksum) && !errors.Is(err, durable.ErrNotSealed) {
		t.Fatalf("read of short-written file: err %v, want a corruption error", err)
	}
}

func TestFSTornRenameLeavesCorruptDestination(t *testing.T) {
	in := New(3, Rates{})
	fsys := in.FS(durable.OS, FSRates{RenameTorn: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "job-y.json")
	err := durable.WriteSealedAtomic(fsys, path, []byte(`{"id":"y","state":"queued"}`))
	if err == nil {
		t.Fatal("torn rename must report failure")
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.K != FSRenameTorn {
		t.Fatalf("err %v, want injected %s", err, FSRenameTorn)
	}
	// The destination exists but fails envelope verification — exactly the
	// on-disk state a recovery fsck must quarantine.
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("torn rename left no destination: %v", statErr)
	}
	if _, rerr := durable.ReadSealed(durable.OS, path); rerr == nil {
		t.Fatal("torn destination passed envelope verification")
	}
}

func TestFSDeterministicScheduleAndCounts(t *testing.T) {
	run := func() (int64, int64) {
		in := New(42, Rates{})
		fsys := in.FS(durable.OS, FSRates{WriteErr: 0.3, FsyncErr: 0.3})
		dir := t.TempDir()
		for i := 0; i < 50; i++ {
			durable.WriteSealedAtomic(fsys, filepath.Join(dir, "f.json"), []byte("x"))
		}
		return in.Count(FSWriteErr), in.Count(FSFsyncErr)
	}
	w1, s1 := run()
	w2, s2 := run()
	if w1 != w2 || s1 != s2 {
		t.Fatalf("same seed produced different schedules: (%d,%d) vs (%d,%d)", w1, s1, w2, s2)
	}
	if w1 == 0 || s1 == 0 {
		t.Fatalf("rate-0.3 over 50 writes injected nothing: writes=%d syncs=%d", w1, s1)
	}
	if total := New(0, Rates{}).Total(); total != 0 {
		t.Fatalf("fresh injector Total() = %d", total)
	}
}

func TestFSKindNames(t *testing.T) {
	for k, want := range fsKindNames {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
