package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.EvalPanic() // must not panic
	if in.NaNCost() {
		t.Error("nil injector fired NaNCost")
	}
	if in.NewtonHook() != nil {
		t.Error("nil injector must return a nil Newton hook")
	}
	if in.Count(EvalPanic) != 0 || in.Total() != 0 {
		t.Error("nil injector reported counts")
	}
}

func TestZeroRatesNeverFire(t *testing.T) {
	in := New(1, Rates{})
	for i := 0; i < 1000; i++ {
		in.EvalPanic()
		if in.NaNCost() {
			t.Fatal("zero-rate NaNCost fired")
		}
	}
	if in.NewtonHook() != nil {
		t.Error("zero-rate injector must return a nil Newton hook")
	}
	if in.Total() != 0 {
		t.Errorf("total = %d, want 0", in.Total())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a := New(42, Rates{NaNCost: 0.1})
	b := New(42, Rates{NaNCost: 0.1})
	for i := 0; i < 5000; i++ {
		if a.NaNCost() != b.NaNCost() {
			t.Fatalf("schedules diverged at draw %d", i)
		}
	}
	if a.Count(NaNCost) == 0 {
		t.Error("rate 0.1 over 5000 draws never fired")
	}
}

func TestApproximateRate(t *testing.T) {
	in := New(7, Rates{NaNCost: 0.1})
	const n = 20000
	for i := 0; i < n; i++ {
		in.NaNCost()
	}
	got := in.Count(NaNCost)
	if got < n/10/2 || got > n/10*2 {
		t.Errorf("rate 0.1: %d fires in %d draws", got, n)
	}
}

func TestEvalPanicValue(t *testing.T) {
	in := New(3, Rates{EvalPanic: 1})
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("panic value = %T, want *Injected", r)
		}
		if inj.K != EvalPanic || inj.N != 1 {
			t.Errorf("injected = %+v", inj)
		}
		var err error = inj
		if !errors.As(err, &inj) || inj.Error() == "" {
			t.Error("Injected must be a usable error")
		}
		if in.Count(EvalPanic) != 1 {
			t.Errorf("count = %d", in.Count(EvalPanic))
		}
	}()
	in.EvalPanic()
	t.Fatal("rate-1 EvalPanic did not panic")
}

func TestNewtonHookFires(t *testing.T) {
	in := New(9, Rates{NewtonFail: 1})
	hook := in.NewtonHook()
	if hook == nil {
		t.Fatal("hook nil with nonzero rate")
	}
	if !hook() {
		t.Error("rate-1 hook did not fire")
	}
	if in.Count(NewtonFail) != 1 {
		t.Errorf("count = %d", in.Count(NewtonFail))
	}
}

func TestConcurrentUse(t *testing.T) {
	in := New(11, Rates{NaNCost: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.NaNCost()
			}
		}()
	}
	wg.Wait()
	if in.Total() != in.Count(NaNCost) {
		t.Error("total does not match per-kind count")
	}
	if c := in.Count(NaNCost); c < 2000 || c > 6000 {
		t.Errorf("concurrent fires = %d, want ≈ 4000", c)
	}
}
