package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportPartitionThenHeal: an open partition blocks every
// request (counted), and healing restores the link.
func TestTransportPartitionThenHeal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()

	in := New(1, Rates{})
	tr := in.Transport(nil, NetRates{})
	client := &http.Client{Transport: tr}

	tr.Partition()
	if !tr.Partitioned() {
		t.Fatal("Partitioned() false after Partition()")
	}
	if _, err := client.Post(ts.URL, "text/plain", strings.NewReader("x")); err == nil {
		t.Fatal("request succeeded across an open partition")
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	if in.Count(NetPartition) != 1 {
		t.Fatalf("partition count %d, want 1", in.Count(NetPartition))
	}

	tr.Heal()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server hits after heal: %d, want 1", hits.Load())
	}
}

// TestTransportDrop: rate-1 drops fail every request with an *Injected
// error and count each one.
func TestTransportDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("dropped request reached the server")
	}))
	defer ts.Close()

	in := New(2, Rates{})
	client := &http.Client{Transport: in.Transport(nil, NetRates{Drop: 1})}
	_, err := client.Post(ts.URL, "text/plain", strings.NewReader("payload"))
	if err == nil {
		t.Fatal("drop did not fail the request")
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.K != NetDrop {
		t.Fatalf("error %v is not an injected net-drop", err)
	}
	if in.Count(NetDrop) != 1 {
		t.Fatalf("drop count %d, want 1", in.Count(NetDrop))
	}
}

// TestTransportDup: a duplicated POST delivers the same body twice; the
// caller sees one (the second) response.
func TestTransportDup(t *testing.T) {
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
	}))
	defer ts.Close()

	in := New(3, Rates{})
	client := &http.Client{Transport: in.Transport(nil, NetRates{Dup: 1})}
	resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatalf("dup request: %v", err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != "hello" || bodies[1] != "hello" {
		t.Fatalf("server saw bodies %q, want two copies of \"hello\"", bodies)
	}
	if in.Count(NetDup) != 1 {
		t.Fatalf("dup count %d, want 1", in.Count(NetDup))
	}
}

// TestTransportDelay: a delayed request still arrives, after DelayBy.
func TestTransportDelay(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	in := New(4, Rates{})
	client := &http.Client{Transport: in.Transport(nil, NetRates{Delay: 1, DelayBy: 30 * time.Millisecond})}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("delayed request: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request completed in %s, want >= 30ms delay", d)
	}
	if in.Count(NetDelay) != 1 {
		t.Fatalf("delay count %d, want 1", in.Count(NetDelay))
	}
}

// TestTransportKindNames: the new kinds stringify for logs.
func TestTransportKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		NetDrop: "net-drop", NetDelay: "net-delay", NetDup: "net-dup", NetPartition: "net-partition",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
